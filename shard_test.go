package smartsouth

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"smartsouth/internal/core"
)

// TestShardGoldenSingleShard pins the sharded engine's single-shard mode
// to the same golden file as the classic loop: WithShards(1) must be
// byte-identical to not passing the option at all, down to hop order,
// trace content and metrics.
func TestShardGoldenSingleShard(t *testing.T) {
	got := ring20SweepFingerprint(WithBackend("of13"), WithShards(1))
	want, err := os.ReadFile(filepath.Join("testdata", "ring20_sweep.golden"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got != string(want) {
		g, w := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(g) && i < len(w); i++ {
			if g[i] != w[i] {
				t.Fatalf("WithShards(1) diverges from golden at line %d:\n got: %s\nwant: %s",
					i+1, g[i], w[i])
			}
		}
		t.Fatalf("fingerprint length %d, golden %d", len(got), len(want))
	}
}

// table2Fingerprint deploys snapshot + anycast + priocast + critical on
// the graph, runs one request of each, and renders every Table-2
// observable that must not depend on the shard count: per-EtherType
// in-band accounting, out-of-band controller counters, service results
// and the final clock. Hop-level orderings are deliberately excluded —
// simultaneous independent events may interleave differently across
// shard counts; the paper's counters may not.
func table2Fingerprint(t *testing.T, g *Graph, shards int) string {
	t.Helper()
	d := Deploy(g, WithSeed(7), WithShards(shards))

	snap, err := d.InstallSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	any, err := d.InstallAnycast(map[uint32][]int{1: {g.NumNodes() - 1}})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := d.InstallPriocast(map[uint32][]PrioMember{1: {
		{Node: g.NumNodes() / 3, Prio: 2}, {Node: g.NumNodes() / 2, Prio: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := d.InstallCritical()
	if err != nil {
		t.Fatal(err)
	}

	snap.Trigger(0, 0)
	any.Send(0, 1, nil, 0)
	pc.Send(0, 1, nil, 0)
	cr.Check(0, 0)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	res, err := snap.Collect()
	if err != nil || res == nil {
		t.Fatalf("snapshot: %v %v", res, err)
	}
	fmt.Fprintf(&b, "snapshot nodes=%d edges=%d\n", len(res.Nodes), len(res.Edges))
	crit, ok := cr.Verdict()
	fmt.Fprintf(&b, "critical verdict=%v ok=%v\n", crit, ok)
	fmt.Fprintf(&b, "simtime=%d\n", int64(d.Net.Sim.Now()))

	msgs, bytes := d.Net.InBandMsgs(), d.Net.InBandBytes()
	eths := make([]int, 0, len(msgs))
	for eth := range msgs {
		eths = append(eths, int(eth))
	}
	sort.Ints(eths)
	for _, eth := range eths {
		fmt.Fprintf(&b, "inband eth=%#04x msgs=%d bytes=%d\n",
			eth, msgs[uint16(eth)], bytes[uint16(eth)])
	}
	fmt.Fprintf(&b, "total-inband=%d\n", d.Net.TotalInBand())
	fmt.Fprintf(&b, "outband msgs=%d bytes=%d pktins=%d\n",
		d.Ctl.Stats.RuntimeMsgs(), d.Ctl.Stats.OutBandBytes, d.Ctl.Stats.PacketIns)

	// The paper's Table-2 bound: a DFS traversal costs at most 4|E|
	// in-band messages. Every traversal-based service must respect it.
	bound := 4 * g.NumEdges()
	for _, eth := range []uint16{core.EthSnapshot, core.EthCritical} {
		if m := msgs[eth]; m > bound {
			t.Errorf("shards=%d eth=%#04x in-band msgs %d exceed 4|E|=%d", shards, eth, m, bound)
		}
	}
	return b.String()
}

// TestShardCountInvariance runs the same deployment under 1, 2, 4 and 8
// shards and asserts identical Table-2 counters: partitioning the
// simulation must be invisible in every figure the paper reports.
func TestShardCountInvariance(t *testing.T) {
	topos := []struct {
		name string
		g    *Graph
	}{
		{"ring20", Ring(20)},
		{"fattree4", mustGraph(FatTree(4))},
		{"isp", mustGraph(ISP(8, 6, 3))},
	}
	for _, tc := range topos {
		want := table2Fingerprint(t, tc.g, 1)
		for _, shards := range []int{2, 4, 8} {
			if got := table2Fingerprint(t, tc.g, shards); got != want {
				t.Errorf("%s: shards=%d diverged from single loop:\n got:\n%s\nwant:\n%s",
					tc.name, shards, got, want)
			}
		}
	}
}

func mustGraph(g *Graph, err error) *Graph {
	if err != nil {
		panic(err)
	}
	return g
}

// snapDigest runs one splitting-snapshot traversal on an already-deployed
// network and folds every per-run Table-2 observable — in-band accounting
// deltas, packet-ins, snapshot result, fragment count, run duration —
// into one FNV-64 digest. The 4|E| message bound is asserted along the
// way. Accounting is reset first, so the digest is a pure per-run
// quantity and repeat runs on the same deployment are comparable (the
// monitoring-loop idiom: reset, trigger, run, collect).
func snapDigest(t *testing.T, d *Deployment, snap *SnapshotSplit, edges int) uint64 {
	t.Helper()
	d.Net.ResetAccounting()
	d.Ctl.ResetRuntimeStats()
	start := d.Net.Sim.Now()
	snap.Trigger(0, start+1)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	res, frags, err := snap.Collect()
	if err != nil || res == nil {
		t.Fatalf("snapshot: %v %v", res, err)
	}
	msgs, bytes := d.Net.InBandMsgs(), d.Net.InBandBytes()
	if m, bound := msgs[core.EthSnapSplit], 4*edges; m > bound {
		t.Errorf("snapshot in-band msgs %d exceed 4|E|=%d", m, bound)
	}
	eths := make([]int, 0, len(msgs))
	for eth := range msgs {
		eths = append(eths, int(eth))
	}
	sort.Ints(eths)
	h := fnv.New64a()
	for _, eth := range eths {
		fmt.Fprintf(h, "%d=%d/%d;", eth, msgs[uint16(eth)], bytes[uint16(eth)])
	}
	fmt.Fprintf(h, "nodes=%d edges=%d frags=%d pktins=%d took=%d",
		len(res.Nodes), len(res.Edges), frags, d.Ctl.Stats.PacketIns, int64(d.Net.Sim.Now()-start))
	return h.Sum64()
}

// TestSharded10kDeterministicDigest builds a 10 000-switch ISP topology,
// deploys the splitting snapshot once under 8 shards, runs the full
// traversal three times, and asserts the per-run digests agree —
// large-scale determinism, not just small-graph luck. Installing ~700k
// rules dominates the wall clock at this size, so the three runs share
// one deployment; fresh-deployment shard invariance is pinned separately
// by TestShardCountInvariance, and a single-loop deployment here pins
// the 10k counters to the classic engine too.
func TestSharded10kDeterministicDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-switch digest skipped in -short mode")
	}
	g := mustGraph(ISP(500, 20, 3))
	if g.NumNodes() != 10_000 {
		t.Fatalf("ISP(500,20) has %d nodes, want 10000", g.NumNodes())
	}
	d := Deploy(g, WithSeed(7), WithShards(8))
	snap, err := d.InstallSnapshotSplit(4)
	if err != nil {
		t.Fatal(err)
	}
	first := snapDigest(t, d, snap, g.NumEdges())
	for run := 1; run < 3; run++ {
		if dig := snapDigest(t, d, snap, g.NumEdges()); dig != first {
			t.Fatalf("run %d digest %#x, want %#x", run, dig, first)
		}
	}
	ds := Deploy(g, WithSeed(7), WithShards(1))
	ss, err := ds.InstallSnapshotSplit(4)
	if err != nil {
		t.Fatal(err)
	}
	if dig := snapDigest(t, ds, ss, g.NumEdges()); dig != first {
		t.Fatalf("single-loop digest %#x, sharded %#x — Table-2 counters must agree", dig, first)
	}
}
