GO ?= go

.PHONY: all build vet test race bench tables soak fuzz reproduce clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ofconn/ ./internal/remote/

bench:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtable

soak:
	$(GO) run ./cmd/soak -iters 500

fuzz:
	$(GO) test -fuzz FuzzParseFlowMod -fuzztime 30s ./internal/ofwire/

reproduce:
	./scripts/reproduce.sh

clean:
	rm -f test_output.txt bench_output.txt benchtable_output.txt
