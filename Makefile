GO ?= go
TMPDIR ?= /tmp

.PHONY: all build vet lint analyze test race bench tables soak fuzz reproduce clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own vettool (pooled-packet discipline) on top of
# go vet. CI additionally runs staticcheck (pinned; see staticcheck.conf).
lint: vet
	$(GO) build -o $(TMPDIR)/poollint ./tools/poollint
	$(GO) vet -vettool=$(TMPDIR)/poollint ./...

# analyze statically checks the four paper services sharing Ring(20):
# cross-service conflicts, loops, blackholes, and the DFS invariant.
analyze:
	$(GO) run ./cmd/smartsouth -topo ring -n 20 -service snapshot \
		-install anycast,blackhole-counter,critical \
		-programs $(TMPDIR)/progs.json -topo-json $(TMPDIR)/topo.json >/dev/null
	$(GO) run ./cmd/oflint -topo $(TMPDIR)/topo.json -prove-dfs snapshot $(TMPDIR)/progs.json

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ofconn/ ./internal/remote/

bench:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtable

soak:
	$(GO) run ./cmd/soak -iters 500

fuzz:
	$(GO) test -fuzz FuzzParseFlowMod -fuzztime 30s ./internal/ofwire/

reproduce:
	./scripts/reproduce.sh

clean:
	rm -f test_output.txt bench_output.txt benchtable_output.txt
