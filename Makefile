GO ?= go
TMPDIR ?= /tmp

.PHONY: all build vet lint lint-negative analyze test race bench tables soak fuzz reproduce clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own multi-analyzer vettool — hot-path allocation,
# lane affinity, determinism, and pooled-packet discipline (see
# docs/LINTS.md) — on top of go vet, then staticcheck when it is
# installed. CI pins the staticcheck release (see staticcheck.conf).
lint: vet
	$(GO) build -o $(TMPDIR)/simlint ./tools/simlint
	$(GO) vet -vettool=$(TMPDIR)/simlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs it pinned)"; \
	fi

# lint-negative proves the linter bites: a heap allocation seeded into
# ExecBatch must fail the vettool build.
lint-negative:
	./scripts/simlint_negative.sh

# analyze statically checks the four paper services sharing Ring(20):
# cross-service conflicts, loops, blackholes, and the DFS invariant.
analyze:
	$(GO) run ./cmd/smartsouth -topo ring -n 20 -service snapshot \
		-install anycast,blackhole-counter,critical \
		-programs $(TMPDIR)/progs.json -topo-json $(TMPDIR)/topo.json >/dev/null
	$(GO) run ./cmd/oflint -topo $(TMPDIR)/topo.json -prove-dfs snapshot $(TMPDIR)/progs.json

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtable

soak:
	$(GO) run ./cmd/soak -iters 500

fuzz:
	$(GO) test -fuzz FuzzParseFlowMod -fuzztime 30s ./internal/ofwire/

reproduce:
	./scripts/reproduce.sh

clean:
	rm -f test_output.txt bench_output.txt benchtable_output.txt
