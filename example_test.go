package smartsouth_test

import (
	"fmt"
	"sort"

	"smartsouth"
)

// ExampleDeployment_snapshot takes an in-band topology snapshot: one
// controller message in, one report out, everything else in the data
// plane.
func ExampleDeployment_snapshot() {
	g := smartsouth.Ring(5)
	d := smartsouth.Deploy(g, smartsouth.Options{})

	snap, err := d.InstallSnapshot()
	if err != nil {
		panic(err)
	}
	snap.Trigger(0, 0)
	if err := d.Run(); err != nil {
		panic(err)
	}
	res, err := snap.Collect()
	if err != nil {
		panic(err)
	}
	fmt.Printf("nodes=%d links=%d\n", len(res.Nodes), len(res.Edges))
	// Output: nodes=5 links=5
}

// ExampleDeployment_anycast delivers to the nearest group member with no
// controller interaction at all.
func ExampleDeployment_anycast() {
	g := smartsouth.Line(6)
	d := smartsouth.Deploy(g, smartsouth.Options{})

	a, err := d.InstallAnycast(map[uint32][]int{7: {4, 5}})
	if err != nil {
		panic(err)
	}
	d.OnDeliver(func(sw int, pkt *smartsouth.Packet) {
		fmt.Printf("delivered at %d: %s\n", sw, pkt.Payload)
	})
	a.Send(0, 7, []byte("hello"), 0)
	if err := d.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("controller messages: %d\n", d.Ctl.Stats.RuntimeMsgs())
	// Output:
	// delivered at 4: hello
	// controller messages: 0
}

// ExampleDeployment_critical asks a switch whether it may be powered off.
func ExampleDeployment_critical() {
	g := smartsouth.Line(5) // node 2 is a cut vertex
	d := smartsouth.Deploy(g, smartsouth.Options{})

	cr, err := d.InstallCritical()
	if err != nil {
		panic(err)
	}
	for _, node := range []int{0, 2} {
		d.Ctl.ClearInbox()
		cr.Check(node, d.Net.Sim.Now()+1)
		if err := d.Run(); err != nil {
			panic(err)
		}
		crit, _ := cr.Verdict()
		fmt.Printf("node %d critical: %v\n", node, crit)
	}
	// Output:
	// node 0 critical: false
	// node 2 critical: true
}

// ExampleDeployment_blackhole locates a silent failure with three
// controller messages, wherever it hides.
func ExampleDeployment_blackhole() {
	g := smartsouth.Grid(3, 3)
	d := smartsouth.Deploy(g, smartsouth.Options{})

	bh, err := d.InstallBlackholeCounter()
	if err != nil {
		panic(err)
	}
	if err := d.Net.SetBlackhole(4, 5, false); err != nil {
		panic(err)
	}
	bh.Detect(0, 0, 0)
	if err := d.Run(); err != nil {
		panic(err)
	}
	rep, found, _ := bh.Outcome()
	ends := []int{rep.Switch, rep.Peer}
	sort.Ints(ends)
	fmt.Printf("found=%v link=%v controller-messages=%d\n", found, ends, d.Ctl.Stats.RuntimeMsgs())
	// Output: found=true link=[4 5] controller-messages=3
}
