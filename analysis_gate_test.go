package smartsouth_test

import (
	"strings"
	"testing"

	"smartsouth"
	"smartsouth/internal/analysis"
	"smartsouth/internal/core"
)

// TestAnalysisGateAcceptsCleanServices: with the gate on, the paper
// services install normally and the on-demand analysis stays clean.
func TestAnalysisGateAcceptsCleanServices(t *testing.T) {
	g := smartsouth.Ring(8)
	d := smartsouth.Deploy(g, smartsouth.WithAnalysis())
	if _, err := d.InstallSnapshot(); err != nil {
		t.Fatalf("snapshot rejected: %v", err)
	}
	if _, err := d.InstallBlackholeCounter(); err != nil {
		t.Fatalf("blackhole counter rejected: %v", err)
	}
	if errs := analysis.Errors(d.Analyze()); len(errs) != 0 {
		t.Fatalf("clean deployment analyzes dirty: %v", errs)
	}
}

// TestAnalysisGateRejectsSlotCollision: forcing a second service into an
// occupied slot (bypassing the facade's allocator) is caught by the gate
// before any rule is installed.
func TestAnalysisGateRejectsSlotCollision(t *testing.T) {
	g := smartsouth.Ring(8)
	d := smartsouth.Deploy(g, smartsouth.WithAnalysis())
	if _, err := d.InstallSnapshot(); err != nil { // takes slot 0
		t.Fatalf("snapshot rejected: %v", err)
	}
	flowsBefore := d.FlowEntries()

	_, err := core.InstallAnycast(d.CP, d.Graph, 0, map[uint32][]int{1: {2}}) // slot 0 again
	if err == nil {
		t.Fatal("conflicting install was not rejected")
	}
	if !strings.Contains(err.Error(), "deployment gate") {
		t.Errorf("rejection not attributed to the gate: %v", err)
	}
	if got := d.FlowEntries(); got != flowsBefore {
		t.Errorf("rejected program still changed the rule count: %d -> %d", flowsBefore, got)
	}

	// The same install into a free slot passes.
	if _, err := core.InstallAnycast(d.CP, d.Graph, d.Slot(), map[uint32][]int{1: {2}}); err != nil {
		t.Fatalf("anycast in a free slot rejected: %v", err)
	}
}

// TestAnalysisGateOffByDefault: without WithAnalysis the same collision
// is not intercepted (the per-program checks don't see across programs),
// preserving the previous behaviour for existing callers.
func TestAnalysisGateOffByDefault(t *testing.T) {
	g := smartsouth.Ring(8)
	d := smartsouth.Deploy(g)
	if _, err := d.InstallSnapshot(); err != nil {
		t.Fatalf("snapshot rejected: %v", err)
	}
	if _, err := core.InstallAnycast(d.CP, d.Graph, 0, map[uint32][]int{1: {2}}); err != nil {
		t.Fatalf("install unexpectedly gated: %v", err)
	}
}
