package smartsouth

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"smartsouth/internal/telemetry"
)

// TestTimelineCrossShardReconstruction pins the tentpole property of the
// causal tracer: a traversal on a sharded network reconstructs into ONE
// complete trace whose span count equals the observed hop count plus the
// root execution (every delivered link crossing causes exactly one
// pipeline execution; the trigger's injection causes one more without a
// preceding hop), and whose tree contains cross-shard parent→child edges
// stitched at the window barriers.
func TestTimelineCrossShardReconstruction(t *testing.T) {
	g := Ring(20)
	d := Deploy(g, WithShards(4), WithTimeline(1<<14))
	if got := d.Net.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	delivered := 0
	d.Net.ObserveHops(func(_ Hop, _ *Packet, ok bool) {
		if ok {
			delivered++
		}
	})
	snap, err := d.InstallSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Trigger(0, 0)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if res, err := snap.Collect(); err != nil || res == nil {
		t.Fatalf("snapshot did not complete: res=%v err=%v", res, err)
	}

	traces := d.Traces()
	if len(traces) != 1 {
		t.Fatalf("reconstructed %d traces, want 1 (one injection)", len(traces))
	}
	tr := traces[0]
	if !tr.Complete {
		t.Fatalf("trace %d not complete: %d roots over %d spans", tr.Trace, len(tr.Roots), tr.Spans)
	}
	if delivered == 0 {
		t.Fatal("hop observer saw no delivered hops")
	}
	if tr.Spans != delivered+1 {
		t.Fatalf("trace has %d spans, want delivered hops + root = %d + 1", tr.Spans, delivered)
	}
	if tr.CrossLane < 1 {
		t.Fatalf("trace has %d cross-shard edges, want >= 1 on a 4-shard ring", tr.CrossLane)
	}
	if recs := d.SpanRecords(); len(recs) != tr.Spans {
		t.Fatalf("SpanRecords() returned %d records, trace holds %d", len(recs), tr.Spans)
	}
}

// TestTimelineDeterministic runs the same sharded traced workload twice
// and requires byte-identical span dumps: span ids, ordering and edges
// must not depend on goroutine interleaving.
func TestTimelineDeterministic(t *testing.T) {
	run := func() []byte {
		g := Ring(20)
		d := Deploy(g, WithShards(4), WithTimeline(1<<14))
		snap, err := d.InstallSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		snap.Trigger(0, 0)
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.WriteSpanJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty span dump")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two identical traced runs produced different span dumps")
	}
}

// TestTimelineDisabled pins the opt-in contract: without WithTimeline
// there are no spans, no traces, and /traces has nothing to serve from
// this deployment.
func TestTimelineDisabled(t *testing.T) {
	d := Deploy(Ring(8))
	snap, err := d.InstallSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Trigger(0, 0)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if recs := d.SpanRecords(); recs != nil {
		t.Fatalf("SpanRecords() = %d records without WithTimeline, want nil", len(recs))
	}
	if tr := d.Traces(); tr != nil {
		t.Fatalf("Traces() = %d trees without WithTimeline, want nil", len(tr))
	}
}

// TestConcurrentScrapesDuringShardedRun exercises the whole telemetry
// HTTP surface while a sharded network is actively running: /metrics
// scrapes must stay well-formed and monotone (counters only ever grow),
// /healthz and /debug/vars must answer JSON, and /traces must serve the
// registered timeline — all race-clean against the worker lanes (run
// with -race in CI).
func TestConcurrentScrapesDuringShardedRun(t *testing.T) {
	srv := httptest.NewServer(telemetry.Handler())
	defer srv.Close()

	g := Ring(16)
	d := Deploy(g, WithShards(4), WithTimeline(0))
	snap, err := d.InstallSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return nil, nil
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Errorf("GET %s: read: %v", path, err)
			return nil, nil
		}
		return resp, body
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		last := int64(-1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, body := get("/metrics")
			if resp == nil {
				return
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
				t.Errorf("/metrics Content-Type = %q", ct)
				return
			}
			hops := int64(-1)
			sc := bufio.NewScanner(bytes.NewReader(body))
			for sc.Scan() {
				line := sc.Text()
				if rest, ok := strings.CutPrefix(line, "smartsouth_hops_total "); ok {
					v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
					if err != nil {
						t.Errorf("/metrics: bad hops_total %q: %v", rest, err)
						return
					}
					hops = v
				}
			}
			if hops < 0 {
				t.Error("/metrics: smartsouth_hops_total missing")
				return
			}
			if hops < last {
				t.Errorf("/metrics: hops_total went backwards mid-run: %d -> %d", last, hops)
				return
			}
			last = hops
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, body := get("/healthz")
			if resp == nil {
				return
			}
			var h struct {
				Status string `json:"status"`
				Shards int64  `json:"shards"`
			}
			if err := json.Unmarshal(body, &h); err != nil || h.Status != "ok" {
				t.Errorf("/healthz: status=%q err=%v", h.Status, err)
				return
			}
			if resp, body = get("/debug/vars"); resp == nil {
				return
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("/debug/vars Content-Type = %q", ct)
				return
			}
			if !json.Valid(body) {
				t.Error("/debug/vars: invalid JSON")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, body := get("/traces")
			if resp == nil {
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/traces status = %d", resp.StatusCode)
				return
			}
			var events []map[string]any
			if err := json.Unmarshal(body, &events); err != nil {
				t.Errorf("/traces: not a JSON array: %v", err)
				return
			}
		}
	}()

	iters := 30
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters; i++ {
		snap.Trigger(i%g.NumNodes(), d.Net.Sim.Now()+1)
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
