package smartsouth

// Benchmark harness: one benchmark per row of the paper's Table 2 and per
// numbered claim (see DESIGN.md §5). Each benchmark reports, via
// b.ReportMetric, the measured in-band / out-of-band message counts next
// to the paper's closed-form expectation, so `go test -bench .` regenerates
// the evaluation. cmd/benchtable prints the same data as formatted tables.

import (
	"fmt"
	"testing"
	"time"

	"smartsouth/internal/controller"
	"smartsouth/internal/core"
	"smartsouth/internal/network"
	"smartsouth/internal/topo"
)

// benchSizes are the network sizes swept by the Table-2 benchmarks; the
// paper's scalability claim is "a few hundred nodes".
var benchSizes = []int{20, 60, 120, 240}

func benchGraph(n int) *topo.Graph { return topo.RandomConnected(n, n/2, int64(n)) }

// fullSweep is the exact cost of one SmartSouth traversal in this model;
// the paper reports the same quantity as 4E-2n (boundary terms elided).
func fullSweep(g *topo.Graph) int { return 4*g.NumEdges() - 2*g.NumNodes() + 2 }

func BenchmarkTable2Snapshot(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d/E=%d", n, g.NumEdges()), func(b *testing.B) {
			d := Deploy(g, Options{})
			snap, err := d.InstallSnapshot()
			if err != nil {
				b.Fatal(err)
			}
			var inband, outband, reportBytes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Net.ResetAccounting()
				d.Ctl.ResetRuntimeStats()
				snap.Trigger(0, d.Net.Sim.Now()+1)
				if err := d.Run(); err != nil {
					b.Fatal(err)
				}
				res, err := snap.Collect()
				if err != nil || res == nil || len(res.Edges) != g.NumEdges() {
					b.Fatal("bad snapshot")
				}
				inband = d.Net.InBandCount(core.EthSnapshot)
				outband = d.Ctl.Stats.RuntimeMsgs()
				for _, pi := range d.Ctl.Inbox() {
					reportBytes = pi.Pkt.Size()
				}
			}
			b.ReportMetric(float64(inband), "inband-msgs")
			b.ReportMetric(float64(fullSweep(g)), "paper-4E-2n")
			b.ReportMetric(float64(outband), "outband-msgs") // paper: 2
			b.ReportMetric(float64(reportBytes), "report-bytes")
		})
	}
}

func BenchmarkTable2Anycast(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d/E=%d", n, g.NumEdges()), func(b *testing.B) {
			d := Deploy(g, Options{})
			member := n - 1
			a, err := d.InstallAnycast(map[uint32][]int{1: {member}})
			if err != nil {
				b.Fatal(err)
			}
			delivered := 0
			d.OnDeliver(func(sw int, _ *Packet) { delivered++ })
			var inband, outband int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Net.ResetAccounting()
				d.Ctl.ResetRuntimeStats()
				before := delivered
				a.Send(0, 1, nil, d.Net.Sim.Now()+1)
				if err := d.Run(); err != nil {
					b.Fatal(err)
				}
				if delivered != before+1 {
					b.Fatal("not delivered")
				}
				inband = d.Net.InBandCount(core.EthAnycast)
				outband = d.Ctl.Stats.RuntimeMsgs()
			}
			b.ReportMetric(float64(inband), "inband-msgs")
			b.ReportMetric(float64(fullSweep(g)), "paper-bound-4E-2n")
			b.ReportMetric(float64(outband), "outband-msgs") // paper: 0
		})
	}
}

func BenchmarkTable2Priocast(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d/E=%d", n, g.NumEdges()), func(b *testing.B) {
			d := Deploy(g, Options{})
			members := []PrioMember{{Node: n / 3, Prio: 3}, {Node: n - 1, Prio: 9}, {Node: n / 2, Prio: 5}}
			p, err := d.InstallPriocast(map[uint32][]PrioMember{1: members})
			if err != nil {
				b.Fatal(err)
			}
			delivered := -1
			d.OnDeliver(func(sw int, _ *Packet) { delivered = sw })
			var inband, outband int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Net.ResetAccounting()
				d.Ctl.ResetRuntimeStats()
				p.Send(0, 1, nil, d.Net.Sim.Now()+1)
				if err := d.Run(); err != nil {
					b.Fatal(err)
				}
				if delivered != n-1 {
					b.Fatalf("delivered at %d, want the prio-9 member %d", delivered, n-1)
				}
				inband = d.Net.InBandCount(core.EthPriocast)
				outband = d.Ctl.Stats.RuntimeMsgs()
			}
			b.ReportMetric(float64(inband), "inband-msgs")
			b.ReportMetric(float64(2*fullSweep(g)), "paper-bound-8E-4n")
			b.ReportMetric(float64(outband), "outband-msgs") // paper: 0
		})
	}
}

func BenchmarkTable2Blackhole1(b *testing.B) {
	// The 8-bit TTL bounds the searchable sweep length; stay within it.
	for _, n := range []int{10, 20, 30} {
		g := topo.RandomConnected(n, n/4, int64(n))
		if 4*g.NumEdges()+2 > 255 {
			continue
		}
		b.Run(fmt.Sprintf("n=%d/E=%d", n, g.NumEdges()), func(b *testing.B) {
			hole := g.Edges()[g.NumEdges()/2]
			var inband, outband int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d := Deploy(g, Options{})
				bh, err := d.InstallBlackholeTTL()
				if err != nil {
					b.Fatal(err)
				}
				if err := d.Net.SetBlackhole(hole.U, hole.V, false); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				rep, err := bh.Locate(0, 0)
				if err != nil || rep == nil {
					b.Fatalf("locate failed: %v %v", rep, err)
				}
				inband = d.Net.InBandCount(core.EthBlackhole)
				outband = d.Ctl.Stats.RuntimeMsgs()
			}
			b.ReportMetric(float64(outband), "outband-msgs")
			b.ReportMetric(float64(2*log2ceil(g.NumEdges())), "paper-2logE")
			b.ReportMetric(float64(inband), "inband-msgs")
			b.ReportMetric(float64(2*fullSweep(g)), "paper-8E-4n")
		})
	}
}

func log2ceil(x int) int {
	n := 0
	for v := 1; v < x; v <<= 1 {
		n++
	}
	return n
}

func BenchmarkTable2Blackhole2(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d/E=%d", n, g.NumEdges()), func(b *testing.B) {
			hole := g.Edges()[g.NumEdges()/2]
			var inband, outband int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d := Deploy(g, Options{})
				bh, err := d.InstallBlackholeCounter()
				if err != nil {
					b.Fatal(err)
				}
				if err := d.Net.SetBlackhole(hole.U, hole.V, false); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				bh.Detect(0, d.Net.Sim.Now()+1, 0)
				if err := d.Run(); err != nil {
					b.Fatal(err)
				}
				if _, found, done := bh.Outcome(); !done || !found {
					b.Fatal("detection failed")
				}
				inband = d.Net.InBandCount(core.EthBlackhole) + d.Net.InBandCount(core.EthBlackholeChk)
				outband = d.Ctl.Stats.RuntimeMsgs()
			}
			b.ReportMetric(float64(outband), "outband-msgs") // paper: 3
			b.ReportMetric(float64(inband), "inband-msgs")
			b.ReportMetric(float64(4*g.NumEdges()), "paper-4E")
		})
	}
}

func BenchmarkTable2Critical(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph(n)
		// A non-critical node exercises the full sweep (worst case).
		node := -1
		cuts := topo.ArticulationPoints(g)
		for v := 0; v < n; v++ {
			if !cuts[v] {
				node = v
				break
			}
		}
		b.Run(fmt.Sprintf("n=%d/E=%d", n, g.NumEdges()), func(b *testing.B) {
			d := Deploy(g, Options{})
			cr, err := d.InstallCritical()
			if err != nil {
				b.Fatal(err)
			}
			var inband, outband int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Net.ResetAccounting()
				d.Ctl.ResetRuntimeStats()
				cr.Check(node, d.Net.Sim.Now()+1)
				if err := d.Run(); err != nil {
					b.Fatal(err)
				}
				if crit, ok := cr.Verdict(); !ok || crit {
					b.Fatal("wrong verdict")
				}
				inband = d.Net.InBandCount(core.EthCritical)
				outband = d.Ctl.Stats.RuntimeMsgs()
			}
			b.ReportMetric(float64(inband), "inband-msgs")
			b.ReportMetric(float64(fullSweep(g)), "paper-4E-2n")
			b.ReportMetric(float64(outband), "outband-msgs") // paper: 2
		})
	}
}

// BenchmarkTagSize quantifies the Table-2 footnote: the DFS tag adds
// O(n log Δ) bits to the packet header.
func BenchmarkTagSize(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				l := core.NewLayout(g)
				bytes = l.TagBytes()
			}
			b.ReportMetric(float64(bytes), "tag-bytes")
			b.ReportMetric(float64(n), "nodes")
		})
	}
}

// BenchmarkPacketLoss exercises claim C1: the monitor sweep with
// three prime counters per port direction.
func BenchmarkPacketLoss(b *testing.B) {
	g := topo.Grid(5, 5)
	b.Run("monitor-sweep", func(b *testing.B) {
		d := Deploy(g, Options{})
		pl, err := d.InstallPktLoss(nil)
		if err != nil {
			b.Fatal(err)
		}
		var inband int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Net.ResetAccounting()
			d.Ctl.ResetRuntimeStats()
			d.Ctl.ClearInbox()
			pl.Monitor(0, d.Net.Sim.Now()+1)
			if err := d.Run(); err != nil {
				b.Fatal(err)
			}
			if _, done := pl.Reports(); !done {
				b.Fatal("monitor incomplete")
			}
			inband = d.Net.InBandCount(core.EthPktLoss)
		}
		b.ReportMetric(float64(inband), "inband-msgs")
		b.ReportMetric(float64(fullSweep(g)), "paper-4E-2n")
	})
}

// BenchmarkFailover exercises claim C2: traversals complete over degraded
// topologies with zero controller involvement and bounded extra cost.
// Pinned to of13: surviving failures is a fast-failover group property;
// the stateful lowering resolves its port scan at compile time.
func BenchmarkFailover(b *testing.B) {
	g := topo.Grid(6, 6)
	for _, kills := range []int{0, 3, 6, 9} {
		b.Run(fmt.Sprintf("failed-links=%d", kills), func(b *testing.B) {
			d := Deploy(g, Options{}, WithBackend("of13"))
			tr, err := d.InstallTraversal()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < kills; i++ {
				e := g.Edges()[i*5%g.NumEdges()]
				if err := d.Net.SetLinkDown(e.U, e.V, true); err != nil {
					b.Fatal(err)
				}
			}
			var inband int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Net.ResetAccounting()
				d.Ctl.ResetRuntimeStats()
				d.Ctl.ClearInbox()
				tr.Trigger(0, d.Net.Sim.Now()+1)
				if err := d.Run(); err != nil {
					b.Fatal(err)
				}
				if !tr.Completed() {
					b.Fatal("traversal lost")
				}
				inband = d.Net.InBandCount(core.EthTraversal)
			}
			b.ReportMetric(float64(inband), "inband-msgs")
			b.ReportMetric(0, "outband-msgs-during-failover")
		})
	}
}

// BenchmarkRuleSpace exercises claim C3: flow/group table footprint per
// switch, against the NoviKit 250's 32 MB ("scales to a few hundred
// nodes").
func BenchmarkRuleSpace(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var perSwitch float64
			for i := 0; i < b.N; i++ {
				d := Deploy(g, Options{})
				if _, err := d.InstallSnapshot(); err != nil {
					b.Fatal(err)
				}
				if _, err := d.InstallCritical(); err != nil {
					b.Fatal(err)
				}
				if _, err := d.InstallBlackholeCounter(); err != nil {
					b.Fatal(err)
				}
				perSwitch = float64(d.ConfigBytes()) / float64(n)
			}
			b.ReportMetric(perSwitch, "bytes/switch")
			b.ReportMetric(32*1024*1024/perSwitch, "switches-per-32MB")
		})
	}
}

// BenchmarkChaincast exercises extension X1: chained anycast over
// middlebox stages.
func BenchmarkChaincast(b *testing.B) {
	g := benchGraph(60)
	for _, stages := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("stages=%d", stages), func(b *testing.B) {
			chain := make([][]int, stages)
			for s := range chain {
				chain[s] = []int{(s*17 + 23) % g.NumNodes()}
			}
			d := Deploy(g, Options{})
			cc, err := d.InstallChaincast(chain)
			if err != nil {
				b.Fatal(err)
			}
			visits := 0
			d.OnDeliver(func(int, *Packet) { visits++ })
			var inband int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Net.ResetAccounting()
				before := visits
				cc.Send(0, nil, d.Net.Sim.Now()+1)
				if err := d.Run(); err != nil {
					b.Fatal(err)
				}
				if visits != before+stages {
					b.Fatal("chain incomplete")
				}
				inband = d.Net.InBandCount(core.EthChaincast)
			}
			b.ReportMetric(float64(inband), "inband-msgs")
			b.ReportMetric(float64(stages*fullSweep(g)), "bound-stages-x-sweep")
			b.ReportMetric(0, "outband-msgs")
		})
	}
}

// BenchmarkAblationDegree exercises ablation A1: per-node compiled state
// grows as O(Δ²) with the node degree (star centre).
func BenchmarkAblationDegree(b *testing.B) {
	for _, delta := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			g := topo.Star(delta + 1) // centre has degree delta
			var flows, groups, bytes float64
			for i := 0; i < b.N; i++ {
				d := Deploy(g, Options{})
				if _, err := d.InstallTraversal(); err != nil {
					b.Fatal(err)
				}
				sw := d.Net.Switch(0)
				flows = float64(sw.FlowEntryCount())
				groups = float64(sw.GroupCount())
				bytes = float64(sw.ConfigBytes())
			}
			b.ReportMetric(flows, "flows@centre")
			b.ReportMetric(groups, "groups@centre")
			b.ReportMetric(bytes, "bytes@centre")
		})
	}
}

// BenchmarkAblationDance exercises ablation A2: the dance traversal's
// in-band overhead over a plain sweep on a healthy network — the price of
// counting every link in both directions.
func BenchmarkAblationDance(b *testing.B) {
	g := benchGraph(60)
	b.Run("plain-sweep", func(b *testing.B) {
		d := Deploy(g, Options{})
		tr, err := d.InstallTraversal()
		if err != nil {
			b.Fatal(err)
		}
		var inband int
		for i := 0; i < b.N; i++ {
			d.Net.ResetAccounting()
			d.Ctl.ClearInbox()
			tr.Trigger(0, d.Net.Sim.Now()+1)
			if err := d.Run(); err != nil {
				b.Fatal(err)
			}
			inband = d.Net.InBandCount(core.EthTraversal)
		}
		b.ReportMetric(float64(inband), "inband-msgs")
	})
	b.Run("dance-sweep", func(b *testing.B) {
		var inband int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d := Deploy(g, Options{})
			bh, err := d.InstallBlackholeCounter()
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			bh.Detect(0, d.Net.Sim.Now()+1, 0)
			if err := d.Run(); err != nil {
				b.Fatal(err)
			}
			if _, found, done := bh.Outcome(); !done || found {
				b.Fatal("healthy detection failed")
			}
			inband = d.Net.InBandCount(core.EthBlackhole)
		}
		b.ReportMetric(float64(inband), "inband-msgs-dance-only")
		b.ReportMetric(float64(6*g.NumEdges()-2*g.NumNodes()+2), "bound-6E-2n")
	})
}

// BenchmarkMonitorRound measures the troubleshooting monitor's per-round
// cost against network size: the out-of-band message count must stay
// constant (2) while the in-band sweep grows with E.
func BenchmarkMonitorRound(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d/E=%d", n, g.NumEdges()), func(b *testing.B) {
			d := Deploy(g, Options{})
			m, err := d.InstallMonitor(0, false)
			if err != nil {
				b.Fatal(err)
			}
			var outband, inband int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Net.ResetAccounting()
				d.Ctl.ResetRuntimeStats()
				if _, err := m.Round(); err != nil {
					b.Fatal(err)
				}
				outband = d.Ctl.Stats.RuntimeMsgs()
				inband = d.Net.InBandCount(core.EthSnapshot)
			}
			b.ReportMetric(float64(outband), "outband-msgs/round") // constant 2
			b.ReportMetric(float64(inband), "inband-msgs/round")
		})
	}
}

// BenchmarkSnapshotSplit measures the splitting snapshot: fragments scale
// with E/budget while each fragment stays bounded.
func BenchmarkSnapshotSplit(b *testing.B) {
	g := benchGraph(60)
	for _, budget := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			d := Deploy(g, Options{})
			s, err := d.InstallSnapshotSplit(budget)
			if err != nil {
				b.Fatal(err)
			}
			var frags, maxLabels int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Ctl.ResetRuntimeStats()
				d.Ctl.ClearInbox()
				s.Trigger(0, d.Net.Sim.Now()+1)
				if err := d.Run(); err != nil {
					b.Fatal(err)
				}
				res, f, err := s.Collect()
				if err != nil || res == nil || len(res.Edges) != g.NumEdges() {
					b.Fatal("bad split snapshot")
				}
				frags = f
				maxLabels = 0
				for _, pi := range d.Ctl.Inbox() {
					if l := len(pi.Pkt.Labels); l > maxLabels {
						maxLabels = l
					}
				}
			}
			b.ReportMetric(float64(frags), "fragments")
			b.ReportMetric(float64(maxLabels), "max-labels/fragment")
			b.ReportMetric(float64(budget+2), "bound")
		})
	}
}

// BenchmarkBaselineControlLoad exercises claim C4: controller load of the
// out-of-band baselines versus the in-band services.
func BenchmarkBaselineControlLoad(b *testing.B) {
	g := benchGraph(60)
	b.Run("lldp-discovery", func(b *testing.B) {
		var msgs int
		for i := 0; i < b.N; i++ {
			net := network.New(g, network.Options{})
			c := controller.New(net)
			c.InstallPuntRules(controller.EthLLDP, 100)
			c.ResetRuntimeStats()
			tc := c.DiscoverTopology(0)
			if _, err := net.Run(); err != nil {
				b.Fatal(err)
			}
			if len(tc.Edges()) != g.NumEdges() {
				b.Fatal("incomplete discovery")
			}
			msgs = c.Stats.RuntimeMsgs()
		}
		b.ReportMetric(float64(msgs), "outband-msgs") // grows as 4E
	})
	b.Run("smartsouth-snapshot", func(b *testing.B) {
		var msgs int
		d := Deploy(g, Options{})
		snap, err := d.InstallSnapshot()
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			d.Ctl.ResetRuntimeStats()
			snap.Trigger(0, d.Net.Sim.Now()+1)
			if err := d.Run(); err != nil {
				b.Fatal(err)
			}
			msgs = d.Ctl.Stats.RuntimeMsgs()
		}
		b.ReportMetric(float64(msgs), "outband-msgs") // constant 2
	})
	b.Run("reactive-anycast", func(b *testing.B) {
		var msgs int
		for i := 0; i < b.N; i++ {
			net := network.New(g, network.Options{})
			c := controller.New(net)
			if _, _, ok := c.ReactiveAnycast(g, 0, []int{g.NumNodes() - 1}, uint32(i), 0); !ok {
				b.Fatal("no path")
			}
			if _, err := net.Run(); err != nil {
				b.Fatal(err)
			}
			msgs = c.Stats.RuntimeMsgs() + c.Stats.FlowMods
		}
		b.ReportMetric(float64(msgs), "ctl-msgs-per-flow") // grows with path length
	})
	b.Run("inband-anycast", func(b *testing.B) {
		d := Deploy(g, Options{})
		a, err := d.InstallAnycast(map[uint32][]int{1: {g.NumNodes() - 1}})
		if err != nil {
			b.Fatal(err)
		}
		var msgs int
		for i := 0; i < b.N; i++ {
			d.Ctl.ResetRuntimeStats()
			a.Send(0, 1, nil, d.Net.Sim.Now()+1)
			if err := d.Run(); err != nil {
				b.Fatal(err)
			}
			msgs = d.Ctl.Stats.RuntimeMsgs()
		}
		b.ReportMetric(float64(msgs), "ctl-msgs-per-flow") // 0
	})
}

// BenchmarkTelemetryOverhead measures the cost of the always-on
// instrumentation (per-event counters, latency histograms, flight
// recorder) by running the Table2Snapshot workload with telemetry on
// (the default) and off, plus a "timeline" arm with causal span tracing
// enabled on top of the defaults. The acceptance budget for the "on"
// and "timeline" arms is <=5% over "off"; benchguard and
// docs/OBSERVABILITY.md track the measured number.
//
// The "paired" sub-benchmark is the one to trust for the ratio: it
// alternates one on-iteration with one off-iteration inside a single
// timing loop, so load bursts from a shared machine hit both arms
// equally, and reports on/off directly. The sequential arms time each
// configuration in its own window and are only comparable on a quiet
// machine.
func BenchmarkTelemetryOverhead(b *testing.B) {
	g := benchGraph(60)
	iter := func(b *testing.B, d *Deployment, snap *Snapshot) {
		d.Net.ResetAccounting()
		d.Ctl.ResetRuntimeStats()
		snap.Trigger(0, d.Net.Sim.Now()+1)
		if err := d.Run(); err != nil {
			b.Fatal(err)
		}
		if res, err := snap.Collect(); err != nil || res == nil {
			b.Fatal("bad snapshot")
		}
	}
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"on", nil},
		{"noflight", []Option{WithFlightCap(-1)}},
		{"timeline", []Option{WithTimeline(1 << 14)}},
		{"off", []Option{WithoutTelemetry()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			d := Deploy(g, mode.opts...)
			snap, err := d.InstallSnapshot()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				iter(b, d, snap)
			}
		})
	}
	b.Run("paired", func(b *testing.B) {
		dOn := Deploy(g)
		dNf := Deploy(g, WithFlightCap(-1))
		dTl := Deploy(g, WithTimeline(1<<14))
		dOff := Deploy(g, WithoutTelemetry())
		snapOn, err := dOn.InstallSnapshot()
		if err != nil {
			b.Fatal(err)
		}
		snapNf, err := dNf.InstallSnapshot()
		if err != nil {
			b.Fatal(err)
		}
		snapTl, err := dTl.InstallSnapshot()
		if err != nil {
			b.Fatal(err)
		}
		snapOff, err := dOff.InstallSnapshot()
		if err != nil {
			b.Fatal(err)
		}
		var onNs, nfNs, tlNs, offNs int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			iter(b, dOn, snapOn)
			t1 := time.Now()
			iter(b, dNf, snapNf)
			t2 := time.Now()
			iter(b, dTl, snapTl)
			t3 := time.Now()
			iter(b, dOff, snapOff)
			t4 := time.Now()
			onNs += t1.Sub(t0).Nanoseconds()
			nfNs += t2.Sub(t1).Nanoseconds()
			tlNs += t3.Sub(t2).Nanoseconds()
			offNs += t4.Sub(t3).Nanoseconds()
		}
		b.ReportMetric(float64(onNs)/float64(b.N), "on-ns/op")
		b.ReportMetric(float64(nfNs)/float64(b.N), "noflight-ns/op")
		b.ReportMetric(float64(tlNs)/float64(b.N), "timeline-ns/op")
		b.ReportMetric(float64(offNs)/float64(b.N), "off-ns/op")
		if offNs > 0 {
			b.ReportMetric(float64(onNs)/float64(offNs), "on/off-ratio")
			b.ReportMetric(float64(nfNs)/float64(offNs), "noflight/off-ratio")
			b.ReportMetric(float64(tlNs)/float64(offNs), "timeline/off-ratio")
		}
	})
}
