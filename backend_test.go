package smartsouth

import (
	"strings"
	"testing"
)

// TestFacadeStatefulBackend drives the stateful backend through the
// public API: the deployment reports its backend, services land as state
// tables instead of flow/group entries, and a snapshot sweep completes
// with the same result shape as of13.
func TestFacadeStatefulBackend(t *testing.T) {
	g := Ring(10)
	d := Deploy(g, WithBackend("stateful"))
	if d.BackendName() != "stateful" {
		t.Fatalf("BackendName = %q, want stateful", d.BackendName())
	}
	snap, err := d.InstallSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d.StateEntries() == 0 {
		t.Error("stateful deployment installed no state-table entries")
	}
	if d.GroupEntries() != 0 {
		t.Errorf("stateful deployment installed %d groups, want 0", d.GroupEntries())
	}
	snap.Trigger(0, 0)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := snap.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Nodes) != g.NumNodes() {
		t.Fatalf("stateful snapshot incomplete: %+v", res)
	}

	// The of13 backend compiles the same service to pure OF13. (Pinned
	// explicitly so the assertion holds under a SMARTSOUTH_BACKEND
	// matrix run; TestBackendEnvDefault covers the default resolution.)
	d2 := Deploy(g, WithBackend("of13"))
	if d2.BackendName() != "of13" {
		t.Fatalf("BackendName = %q, want of13", d2.BackendName())
	}
	if _, err := d2.InstallSnapshot(); err != nil {
		t.Fatal(err)
	}
	if d2.StateEntries() != 0 {
		t.Errorf("of13 deployment installed %d state entries, want 0", d2.StateEntries())
	}
}

// TestBackendEnvDefault: SMARTSOUTH_BACKEND selects the backend when no
// option is given, and an explicit WithBackend overrides it.
func TestBackendEnvDefault(t *testing.T) {
	t.Setenv("SMARTSOUTH_BACKEND", "stateful")
	if got := Deploy(Line(3)).BackendName(); got != "stateful" {
		t.Errorf("env-selected backend = %q, want stateful", got)
	}
	if got := Deploy(Line(3), WithBackend("of13")).BackendName(); got != "of13" {
		t.Errorf("explicit of13 over env = %q, want of13", got)
	}
}

// TestUnknownBackendPanics: Deploy has no error path, and a typo in the
// backend name must not silently fall back to of13.
func TestUnknownBackendPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Deploy accepted an unknown backend")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "backend") {
			t.Errorf("panic %v does not name the backend", r)
		}
	}()
	Deploy(Line(3), WithBackend("quantum"))
}

// TestDeployRemoteRejectsStateful: state tables cannot cross the
// OpenFlow 1.3 wire, so the remote control plane must refuse the
// stateful backend up front instead of failing mid-install.
func TestDeployRemoteRejectsStateful(t *testing.T) {
	if _, err := DeployRemote(Line(3), WithBackend("stateful")); err == nil {
		t.Fatal("DeployRemote accepted the stateful backend")
	}
}
