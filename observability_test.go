package smartsouth

import (
	"encoding/json"
	"strings"
	"testing"

	"smartsouth/internal/core"
)

func sweepMsgs(g *Graph) int { return 4*g.NumEdges() - 2*g.NumNodes() + 2 }

// TestTraceAndMetricsOnSnapshot is the tentpole end-to-end: one snapshot
// sweep must yield decoded hop-trace events, per-service metrics whose
// in-band count equals the paper's 4E-2n+2, and live rule-hit counters.
func TestTraceAndMetricsOnSnapshot(t *testing.T) {
	g := Grid(3, 3)
	// Pinned: the trace assertions decode of13 DFS tag bits, which the
	// stateful backend keeps in switch state tables instead.
	d := Deploy(g, WithTrace(4096), WithBackend("of13"))
	snap, err := d.InstallSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Trigger(0, 0)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if res, err := snap.Collect(); err != nil || res == nil {
		t.Fatalf("snapshot broken under observability: %v %v", res, err)
	}

	events := d.TraceEvents()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	if events[0].Switch != 0 || events[0].Seq != 0 {
		t.Fatalf("first event: %+v, want the trigger at switch 0", events[0])
	}
	for i, e := range events {
		if e.Eth != core.EthSnapshot || e.Service != "snapshot" {
			t.Fatalf("event %d not labeled: eth=%#x svc=%q", i, e.Eth, e.Service)
		}
		if !e.Matched || len(e.Rules) == 0 {
			t.Fatalf("event %d recorded no matched rules: %+v", i, e)
		}
		if e.Rules[0].Cookie != "svc8802/dispatch" {
			t.Fatalf("event %d first rule %q, want the table-0 dispatcher", i, e.Rules[0].Cookie)
		}
		if len(e.Tags) != 3 || e.Tags[0].Name != "start" {
			t.Fatalf("event %d tags not decoded: %+v", i, e.Tags)
		}
	}

	ms := d.MetricsSnapshot()
	if len(ms) != 1 {
		t.Fatalf("metrics services: %d", len(ms))
	}
	m := ms[0]
	if m.Service != "snapshot" || m.Slot != 0 {
		t.Fatalf("metrics identity: %+v", m)
	}
	if m.InBandMsgs != sweepMsgs(g) {
		t.Fatalf("in-band %d, want 4E-2n+2 = %d", m.InBandMsgs, sweepMsgs(g))
	}
	if m.InBandMsgs != d.Net.InBandCount(core.EthSnapshot) {
		t.Fatal("metrics and network accounting disagree")
	}
	if m.TriggerPackets != 1 || m.PacketIns != 1 {
		t.Fatalf("trigger/collect: %+v", m)
	}
	if m.WallClock <= 0 {
		t.Fatalf("wallclock %d, want positive", m.WallClock)
	}
	if m.FlowMods == 0 || m.InstallTxns != g.NumNodes() {
		t.Fatalf("install cost: %+v", m)
	}
	if len(m.RuleHits) == 0 {
		t.Fatal("no rule hits attached")
	}
	hits := 0
	for _, h := range m.RuleHits {
		if h.Cookie == "svc8802/dispatch" && h.Packets > 0 {
			hits++
		}
	}
	if hits != g.NumNodes() {
		t.Fatalf("dispatch rule hit on %d switches, want all %d", hits, g.NumNodes())
	}
	if len(m.GroupHits) == 0 {
		t.Fatal("no group-bucket hits attached")
	}
}

// TestTraceAndMetricsDeterministic runs the same multi-service scenario
// twice under a fixed seed: trace and metrics must be bit-identical.
func TestTraceAndMetricsDeterministic(t *testing.T) {
	run := func() (traceStr string, metricsJS string) {
		g := Grid(3, 3)
		d := Deploy(g, WithSeed(42), WithTrace(4096))
		snap, err := d.InstallSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		cr, err := d.InstallCritical()
		if err != nil {
			t.Fatal(err)
		}
		snap.Trigger(0, 0)
		cr.Check(4, 1_000_000)
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, e := range d.TraceEvents() {
			sb.WriteString(e.String())
			sb.WriteByte('\n')
		}
		js, err := d.MetricsJSON()
		if err != nil {
			t.Fatal(err)
		}
		return sb.String(), string(js)
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 {
		t.Error("hop trace not deterministic under fixed seed")
	}
	if m1 != m2 {
		t.Error("metrics not deterministic under fixed seed")
	}
	if !strings.Contains(m1, "\"service\": \"critical\"") {
		t.Errorf("metrics JSON missing critical service:\n%s", m1)
	}
}

// TestMetricsSeparateCohabitingServices checks per-EtherType attribution:
// two services on one network must not pollute each other's counters.
func TestMetricsSeparateCohabitingServices(t *testing.T) {
	g := Ring(8)
	d := Deploy(g)
	snap, err := d.InstallSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	cr, err := d.InstallCritical()
	if err != nil {
		t.Fatal(err)
	}
	snap.Trigger(0, 0)
	cr.Check(0, 10_000_000)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	ms := d.MetricsSnapshot()
	if len(ms) != 2 {
		t.Fatalf("%d services", len(ms))
	}
	want := sweepMsgs(g)
	for _, m := range ms {
		if m.InBandMsgs != want {
			t.Errorf("%s in-band %d, want %d", m.Service, m.InBandMsgs, want)
		}
		if m.TriggerPackets != 1 {
			t.Errorf("%s triggers %d", m.Service, m.TriggerPackets)
		}
	}
	total := ms[0].InBandMsgs + ms[1].InBandMsgs
	if total != d.Net.TotalInBand() {
		t.Errorf("attributed %d of %d in-band messages", total, d.Net.TotalInBand())
	}
}

// TestHitCountersFollowTraffic reads per-slot hit counters directly.
func TestHitCountersFollowTraffic(t *testing.T) {
	g := Ring(5)
	// Pinned: asserts group-bucket hit counters; the stateful lowering
	// emits no advance groups.
	d := Deploy(g, WithBackend("of13"))
	snap, err := d.InstallSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	rules, _ := d.HitCounters(0)
	for _, r := range rules {
		if r.Packets != 0 {
			t.Fatalf("pre-traffic hit: %+v", r)
		}
	}
	snap.Trigger(0, 0)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	rules, groups := d.HitCounters(0)
	var hit uint64
	for _, r := range rules {
		hit += r.Packets
	}
	if hit == 0 {
		t.Fatal("no rule hits after a full sweep")
	}
	var ghit uint64
	for _, gh := range groups {
		ghit += gh.Packets
	}
	if ghit == 0 {
		t.Fatal("no group-bucket executions after a full sweep")
	}
}

// TestUninstallDerivesSlotSpanFromPrograms: uninstalling ANY slot of a
// multi-slot service (chaincast) must remove the whole service while a
// neighbouring single-slot service keeps running.
func TestUninstallDerivesSlotSpanFromPrograms(t *testing.T) {
	g := Grid(3, 3)
	d := Deploy(g)
	cc, err := d.InstallChaincast([][]int{{4}, {8}}) // slots 0 and 1
	if err != nil {
		t.Fatal(err)
	}
	any, err := d.InstallAnycast(map[uint32][]int{1: {6}}) // slot 2
	if err != nil {
		t.Fatal(err)
	}
	_ = cc

	d.Uninstall(1) // second chain stage: must take the whole chaincast
	if got := len(d.Programs()); got != 1 {
		t.Fatalf("%d programs retained, want only anycast", got)
	}
	if d.Programs()[0].Service != "anycast" {
		t.Fatalf("survivor is %q", d.Programs()[0].Service)
	}
	for i := 0; i < d.Net.NumSwitches(); i++ {
		sw := d.Net.Switch(i)
		for _, slot := range []int{0, 1} {
			lo, hi := core.SlotTables(slot)
			for tb := lo; tb < hi; tb++ {
				if sw.Table(tb).Len() != 0 {
					t.Fatalf("switch %d table %d not cleared", i, tb)
				}
			}
		}
	}
	delivered := 0
	d.OnDeliver(func(int, *Packet) { delivered++ })
	any.Send(0, 1, nil, d.Net.Sim.Now()+1)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatal("anycast broken by chaincast uninstall")
	}
}

// TestFunctionalOptionsAndStructCompat: the legacy Options struct and the
// functional options must configure identically, and compose.
func TestFunctionalOptionsAndStructCompat(t *testing.T) {
	g := Ring(4)
	run := func(opts ...Option) []byte {
		d := Deploy(g, opts...)
		pl, err := d.InstallPktLoss(nil)
		if err != nil {
			t.Fatal(err)
		}
		// Both of node 0's links are lossy, so every data packet crosses a
		// lossy link whichever way BFS routes it and the seed matters.
		if err := d.Net.SetLoss(0, 1, 0.5); err != nil {
			t.Fatal(err)
		}
		if err := d.Net.SetLoss(3, 0, 0.5); err != nil {
			t.Fatal(err)
		}
		var at Time
		for i := 0; i < 20; i++ {
			pl.SendData(0, 2, at)
			at += 10_000
		}
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(d.Net.InBandMsgs())
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	structRes := run(Options{Seed: 7})
	funcRes := run(WithSeed(7))
	if string(structRes) != string(funcRes) {
		t.Errorf("struct %s vs functional %s", structRes, funcRes)
	}
	if string(run(Options{Seed: 9})) == string(structRes) {
		t.Skip("seeds 7 and 9 coincide on this workload; loss path untested")
	}
}

// TestWithEventLimit bounds a run via the functional option.
func TestWithEventLimit(t *testing.T) {
	g := Ring(12)
	d := Deploy(g, WithEventLimit(5))
	snap, err := d.InstallSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Trigger(0, 0)
	if err := d.Run(); err == nil {
		t.Fatal("a 5-event budget must not complete a Ring(12) sweep")
	}
}

// TestTraceOffByDefault: without WithTrace there is no recorder and no
// per-switch recording cost. The always-on flight recorder labels its
// records from Result.LastCookie (scalar stores), not Steps, so it does
// not force structured recording on either.
func TestTraceOffByDefault(t *testing.T) {
	d := Deploy(Ring(3))
	if d.Trace != nil || d.TraceEvents() != nil {
		t.Fatal("tracing must be opt-in")
	}
	if d.Net.Switch(0).Record {
		t.Fatal("structured recording enabled without observers")
	}
}
