// In-band controller failover: the paper's §3.2 motivating scenario for
// priocast. A distributed control plane runs controller instances at
// several switches with different preference levels. When a switch loses
// its management connection, it uses priocast to reach the *best still
// reachable* controller entirely in-band — no topology knowledge, no
// controller help, surviving link failures along the way.
package main

import (
	"fmt"
	"log"

	"smartsouth"
)

func main() {
	// A 4x4 grid fabric. Controller instances are co-located with
	// switches 0 (primary, priority 9), 12 (secondary, 5) and 15
	// (tertiary, 2).
	g := smartsouth.Grid(4, 4)
	d := smartsouth.Deploy(g, smartsouth.Options{})

	const ctlGroup = 100
	prio, err := d.InstallPriocast(map[uint32][]smartsouth.PrioMember{
		ctlGroup: {
			{Node: 0, Prio: 9},
			{Node: 12, Prio: 5},
			{Node: 15, Prio: 2},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	d.OnDeliver(func(sw int, pkt *smartsouth.Packet) {
		fmt.Printf("  -> controller instance at switch %d received %q\n", sw, pkt.Payload)
	})

	// Scenario 1: switch 6 lost its management port and asks for *any*
	// controller, best first.
	fmt.Println("== switch 6 reaches the control plane in-band ==")
	prio.Send(6, ctlGroup, []byte("flow-request from 6"), 0)
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}

	// Scenario 2: the primary controller's region is cut off. Priocast
	// falls back to the best reachable instance, with zero controller
	// messages and no reconfiguration.
	fmt.Println("\n== isolating the primary controller (cutting links around switch 0) ==")
	for _, nb := range []int{1, 4} {
		if err := d.Net.SetLinkDown(0, nb, true); err != nil {
			log.Fatal(err)
		}
	}
	prio.Send(6, ctlGroup, []byte("flow-request after partition"), d.Net.Sim.Now()+1)
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}

	// Scenario 3: secondary also gone — tertiary picks up.
	fmt.Println("\n== also isolating the secondary (switch 12) ==")
	for _, nb := range []int{8, 13} {
		if err := d.Net.SetLinkDown(12, nb, true); err != nil {
			log.Fatal(err)
		}
	}
	prio.Send(6, ctlGroup, []byte("flow-request, twice degraded"), d.Net.Sim.Now()+1)
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nout-of-band messages used for all three requests: %d (priocast is fully in-band)\n",
		d.Ctl.Stats.RuntimeMsgs())
}
