// Maintenance planning (§3.4): before switching nodes off for maintenance
// or energy conservation, ask each switch — in the data plane — whether it
// is critical for connectivity. The answers are compared against the
// graph-theoretic ground truth (articulation points).
package main

import (
	"fmt"
	"log"

	"smartsouth"
)

func main() {
	// A deliberately fragile topology: two well-meshed regions joined by
	// a single bridge node.
	g := smartsouth.NewGraph(11)
	edges := [][2]int{
		// Region A: a ring over 0..4 with a chord.
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 4},
		// Bridge node 5.
		{2, 5},
		// Region B: ring over 6..10 with a chord, attached to the bridge.
		{5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 10}, {10, 6}, {7, 9},
	}
	for _, e := range edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}

	d := smartsouth.Deploy(g)
	crit, err := d.InstallCritical()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("node  critical?  safe to power off?")
	safe := 0
	for v := 0; v < g.NumNodes(); v++ {
		d.Ctl.ClearInbox()
		crit.Check(v, d.Net.Sim.Now()+1)
		if err := d.Run(); err != nil {
			log.Fatal(err)
		}
		isCrit, ok := crit.Verdict()
		if !ok {
			log.Fatalf("node %d: no verdict", v)
		}
		verdict := "yes"
		if isCrit {
			verdict = "NO — would partition the network"
		} else {
			safe++
		}
		fmt.Printf("%4d  %-9v  %s\n", v, isCrit, verdict)
	}
	fmt.Printf("\n%d of %d switches can be powered off one at a time.\n", safe, g.NumNodes())
	fmt.Printf("control-plane cost: %d messages total (2 per check: request + verdict)\n",
		d.Ctl.Stats.RuntimeMsgs())
}
