// Quickstart: take an in-band topology snapshot of a random network —
// including after link failures, with no recompilation — and print what
// the data plane reported back.
package main

import (
	"fmt"
	"log"
	"sort"

	"smartsouth"
)

func printSnapshot(res *smartsouth.SnapshotResult) {
	nodes := make([]int, 0, len(res.Nodes))
	for n := range res.Nodes {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	fmt.Printf("  %d nodes: %v\n", len(nodes), nodes)
	edges := append([]smartsouth.Edge(nil), res.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	fmt.Printf("  %d links:\n", len(edges))
	for _, e := range edges {
		fmt.Printf("    %d(port %d) -- %d(port %d)\n", e.U, e.PU, e.V, e.PV)
	}
}

func main() {
	// A random connected 12-switch network with a few redundant links.
	// WithTrace turns on the per-packet hop trace so we can watch the DFS
	// walk the network rule by rule.
	g := smartsouth.RandomConnected(12, 6, 42)
	d := smartsouth.Deploy(g, smartsouth.WithTrace(2048))

	snap, err := d.InstallSnapshot()
	if err != nil {
		log.Fatal(err)
	}

	// One out-of-band message to any single switch starts the snapshot;
	// the DFS trigger packet does the rest in the data plane.
	fmt.Println("== snapshot of the healthy network (triggered at switch 0) ==")
	snap.Trigger(0, 0)
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}
	res, err := snap.Collect()
	if err != nil {
		log.Fatal(err)
	}
	printSnapshot(res)
	fmt.Printf("  ground truth: %d nodes, %d links — match: %v\n",
		g.NumNodes(), g.NumEdges(), len(res.Nodes) == g.NumNodes() && len(res.Edges) == g.NumEdges())

	// Fail two links. Nothing is reinstalled: the fast-failover groups
	// route the traversal around the failures.
	e1, e2 := g.Edges()[0], g.Edges()[3]
	fmt.Printf("\n== failing links %d-%d and %d-%d, snapshotting again ==\n", e1.U, e1.V, e2.U, e2.V)
	if err := d.Net.SetLinkDown(e1.U, e1.V, true); err != nil {
		log.Fatal(err)
	}
	if err := d.Net.SetLinkDown(e2.U, e2.V, true); err != nil {
		log.Fatal(err)
	}
	d.Ctl.ClearInbox()
	d.Trace.Reset() // keep only the post-failure sweep in the trace
	snap.Trigger(0, d.Net.Sim.Now()+1)
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}
	res, err = snap.Collect()
	if err != nil {
		log.Fatal(err)
	}
	printSnapshot(res)
	fmt.Println("  (the failed links are gone; everything still reachable is reported)")

	fmt.Printf("\ncontrol-plane cost: %d packet-outs, %d packet-ins for two snapshots\n",
		d.Ctl.Stats.PacketOuts, d.Ctl.Stats.PacketIns)

	// The observability layer saw every hop: show the first few pipeline
	// executions (switch, matched rules, decoded DFS tag state) and the
	// aggregated per-service metrics.
	fmt.Println("\n== first hops of the second sweep, from the trace ==")
	events := d.TraceEvents()
	for i, ev := range events {
		if i >= 5 {
			fmt.Printf("  ... %d more\n", len(events)-i)
			break
		}
		fmt.Printf("  %s\n", ev)
	}
	for _, m := range d.MetricsSnapshot() {
		fmt.Printf("\nservice %q: %d in-band messages (%d bytes) over %d ns, %d flow-mods to install\n",
			m.Service, m.InBandMsgs, m.InBandBytes, int64(m.WallClock), m.FlowMods)
	}
}
