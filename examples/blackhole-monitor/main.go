// Blackhole and packet-loss monitoring (§3.3): a silent failure is
// planted in a fat-tree fabric and localised twice — by the TTL
// binary-search detector and by the smart-counter detector — and a lossy
// link is caught by the per-port prime-sized counter pairs.
package main

import (
	"fmt"
	"log"

	"smartsouth"
)

func main() {
	g, err := smartsouth.FatTree(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: 4-ary fat-tree, %d switches, %d links\n\n", g.NumNodes(), g.NumEdges())

	// --- Detector 1: TTL binary search -----------------------------------
	{
		d := smartsouth.Deploy(g, smartsouth.Options{})
		bh, err := d.InstallBlackholeTTL()
		if err != nil {
			log.Fatal(err)
		}
		// Plant a silent unidirectional failure on an aggregation-core
		// link: liveness still reports it up.
		hole := g.Edges()[5]
		if err := d.Net.SetBlackhole(hole.U, hole.V, false); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== TTL binary search (planted: %d -> %d) ==\n", hole.U, hole.V)
		rep, err := bh.Locate(0, 0)
		if err != nil {
			log.Fatal(err)
		}
		if rep == nil {
			fmt.Println("  no blackhole found (unexpected!)")
		} else {
			fmt.Printf("  located: %v\n", rep)
		}
		fmt.Printf("  out-of-band messages: %d (≈ 2·log E)\n\n", d.Ctl.Stats.RuntimeMsgs())
	}

	// --- Detector 2: smart counters ---------------------------------------
	{
		d := smartsouth.Deploy(g, smartsouth.Options{})
		bh, err := d.InstallBlackholeCounter()
		if err != nil {
			log.Fatal(err)
		}
		hole := g.Edges()[5]
		if err := d.Net.SetBlackhole(hole.U, hole.V, false); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== smart counters (planted: %d -> %d) ==\n", hole.U, hole.V)
		bh.Detect(0, 0, 0)
		if err := d.Run(); err != nil {
			log.Fatal(err)
		}
		rep, found, done := bh.Outcome()
		switch {
		case !done:
			fmt.Println("  detection inconclusive (checker swallowed) — controller would retry")
		case found:
			fmt.Printf("  located: %v\n", rep)
		default:
			fmt.Println("  network healthy")
		}
		fmt.Printf("  out-of-band messages: %d (constant: 2 triggers + 1 report)\n\n", d.Ctl.Stats.RuntimeMsgs())
	}

	// --- Packet-loss monitoring -------------------------------------------
	{
		d := smartsouth.Deploy(g, smartsouth.Options{})
		pl, err := d.InstallPktLoss(nil) // default primes 7, 11, 13
		if err != nil {
			log.Fatal(err)
		}
		// Exercise the fabric, losing exactly 5 packets on one link by
		// opening a temporary silent-drop window.
		e := g.Edges()[10]
		var at smartsouth.Time
		if err := d.Net.SetBlackhole(e.U, e.V, false); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			pl.SendData(e.U, e.V, at)
			at += 100_000
		}
		if err := d.Run(); err != nil {
			log.Fatal(err)
		}
		if err := d.Net.SetLinkDown(e.U, e.V, false); err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== packet-loss monitor (5 packets dropped on %d -> %d) ==\n", e.U, e.V)
		pl.Monitor(0, at+1_000_000)
		if err := d.Run(); err != nil {
			log.Fatal(err)
		}
		losses, done := pl.Reports()
		fmt.Printf("  monitor completed: %v\n", done)
		for _, r := range losses {
			fmt.Printf("  loss detected: packets from %d vanish before reaching %d (port %d)\n",
				r.Peer, r.Switch, r.Port)
		}
		if len(losses) == 0 {
			fmt.Println("  no loss reported")
		}
	}
}
