// Service chaining (§3.2): a packet must traverse a firewall, then a DPI
// box, then reach an egress proxy — each role provided by a *group* of
// switches — without any controller involvement. The chaincast service
// performs one in-band anycast sweep per stage, surviving link failures
// between stages via fast failover.
package main

import (
	"fmt"
	"log"

	"smartsouth"
)

func main() {
	g, err := smartsouth.FatTree(4)
	if err != nil {
		log.Fatal(err)
	}
	// Roles: firewalls at two aggregation switches, DPI at a core switch,
	// egress proxies at two edge switches.
	firewalls := []int{5, 9}
	dpi := []int{1}
	proxies := []int{14, 18}
	roles := map[int]string{5: "firewall", 9: "firewall", 1: "dpi", 14: "proxy", 18: "proxy"}

	d := smartsouth.Deploy(g, smartsouth.Options{})
	cc, err := d.InstallChaincast([][]int{firewalls, dpi, proxies})
	if err != nil {
		log.Fatal(err)
	}

	d.OnDeliver(func(sw int, pkt *smartsouth.Packet) {
		fmt.Printf("  -> %s at switch %d processed the packet\n", roles[sw], sw)
	})

	fmt.Println("== chain firewall -> dpi -> proxy, healthy fabric ==")
	cc.Send(12, []byte("flow"), 0)
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== firewall 5 isolated (all its links down) ==")
	for p := 1; p <= g.Degree(5); p++ {
		v, _, _ := g.Neighbor(5, p)
		if err := d.Net.SetLinkDown(5, v, true); err != nil {
			log.Fatal(err)
		}
	}
	cc.Send(12, []byte("flow-2"), d.Net.Sim.Now()+1)
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nout-of-band messages for both chained flows: %d\n", d.Ctl.Stats.RuntimeMsgs())
	if errs := d.VerifyErrors(); len(errs) == 0 {
		fmt.Println("static verification of the installed chain: clean")
	} else {
		fmt.Printf("verification errors: %v\n", errs)
	}
}
