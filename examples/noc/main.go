// NOC: a network-operations-centre loop built from SmartSouth functions.
// Each monitoring round costs two controller messages (one snapshot),
// plus three more only when something shrinks and the blackhole watchdog
// fires — regardless of network size. The demo walks a fat-tree through a
// link failure, a recovery, a silent failure, and a lost switch.
package main

import (
	"fmt"
	"log"

	"smartsouth"
)

func main() {
	g, err := smartsouth.FatTree(4)
	if err != nil {
		log.Fatal(err)
	}
	d := smartsouth.Deploy(g)
	mon, err := d.InstallMonitor(0, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring %d switches / %d links from switch 0 (cost per round: %s)\n\n",
		g.NumNodes(), g.NumEdges(), mon.OutBandPerRound())

	round := func(label string) {
		events, err := mon.Round()
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-32s", label)
		if len(events) == 0 {
			fmt.Println("no changes")
			return
		}
		fmt.Println()
		for _, e := range events {
			fmt.Printf("    %s\n", e)
		}
	}

	round("round 1 (baseline):")

	must(d.Net.SetLinkDown(5, 2, true))
	round("round 2 (link 5-2 failed):")

	must(d.Net.SetLinkDown(5, 2, false))
	round("round 3 (link repaired):")

	must(d.Net.SetBlackhole(4, 12, false))
	round("round 4 (silent failure 4->12):")

	must(d.Net.SetLinkDown(4, 12, false)) // heal before losing a node
	round("round 5 (healed):")

	for p := 1; p <= g.Degree(17); p++ {
		v, _, _ := g.Neighbor(17, p)
		must(d.Net.SetLinkDown(17, v, true))
	}
	round("round 6 (switch 17 dark):")

	fmt.Printf("\ntotal controller messages across 6 rounds on %d switches: %d\n",
		g.NumNodes(), d.Ctl.Stats.RuntimeMsgs())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
