// Wire controller: the same SmartSouth services, but with the control
// plane speaking binary OpenFlow 1.3 over real TCP sockets — one session
// per switch. Every flow-mod, group-mod, packet-out and packet-in in this
// example crosses a loopback TCP connection as wire bytes, demonstrating
// that the compiler emits nothing beyond standard OpenFlow.
package main

import (
	"fmt"
	"log"

	"smartsouth"
)

func main() {
	g := smartsouth.Grid(3, 4)
	d, err := smartsouth.DeployRemote(g, smartsouth.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	snap, err := d.InstallSnapshot()
	if err != nil {
		log.Fatal(err)
	}
	crit, err := d.InstallCritical()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed 2 services over TCP: %d flow-mods, %d group-mods on the wire\n",
		d.Fabric.Stats.FlowMods, d.Fabric.Stats.GroupMods)

	snap.Trigger(0, 0)
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}
	res, err := snap.Collect()
	if err != nil || res == nil {
		log.Fatalf("snapshot failed: %v %v", res, err)
	}
	fmt.Printf("snapshot over the wire: %d nodes, %d links (ground truth %d/%d)\n",
		len(res.Nodes), len(res.Edges), g.NumNodes(), g.NumEdges())

	d.Fabric.ClearInbox()
	crit.Check(5, d.Fabric.Now()+1)
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}
	c, ok := crit.Verdict()
	fmt.Printf("criticality of switch 5 over the wire: critical=%v (ok=%v)\n", c, ok)

	fmt.Printf("total wire messages: %d packet-outs, %d packet-ins, %d bytes out-of-band\n",
		d.Fabric.Stats.PacketOuts, d.Fabric.Stats.PacketIns, d.Fabric.Stats.OutBandBytes)
}
