package simlint

import "testing"

const laneFixture = `package x

import "sync"

type lane struct {
	id   int
	heap []int //simlint:lanelocal
	// scratch is the per-lane exec buffer.
	//simlint:lanelocal
	scratch []byte
	wg      sync.WaitGroup
}

type network struct{ lanes []lane }

// Lane methods own their state.
func (l *lane) push(v int) { l.heap = append(l.heap, v) }

//simlint:barrier lanes are parked at the window edge when merge runs
func (n *network) merge() {
	for i := range n.lanes {
		_ = n.lanes[i].heap
	}
}
`

func TestLaneAffinityAllowed(t *testing.T) {
	got := lint(t, []string{AnalyzerLaneAffinity}, laneFixture)
	wantDiags(t, got)
}

func TestLaneAffinityViolation(t *testing.T) {
	got := lint(t, []string{AnalyzerLaneAffinity}, laneFixture+`
func (n *network) steal() []int {
	return n.lanes[0].heap
}

func peek(l *lane) []byte {
	return l.scratch
}
`)
	wantDiags(t, got,
		`fixture.go:27:20: [laneaffinity] access to lane-local field lane.heap from network.steal, which is neither a lane method nor marked //simlint:barrier`,
		`fixture.go:31:11: [laneaffinity] access to lane-local field lane.scratch from peek, which is neither a lane method nor marked //simlint:barrier`)
}

// TestLaneAffinityTestFilesExempt: _test.go files poke lane state
// single-threaded and are not checked.
func TestLaneAffinityTestFilesExempt(t *testing.T) {
	got := lintFiles(t, []string{AnalyzerLaneAffinity}, map[string]string{
		"fixture.go": laneFixture,
		"fixture_test.go": `package x

func probe(l *lane) []int { return l.heap }
`,
	})
	wantDiags(t, got)
}

// TestLaneAffinityIgnore: the escape hatch applies here too.
func TestLaneAffinityIgnore(t *testing.T) {
	got := lint(t, []string{AnalyzerLaneAffinity}, laneFixture+`
func dump(l *lane) []int {
	//simlint:ignore laneaffinity: read-only snapshot taken after Wait
	return l.heap
}
`)
	wantDiags(t, got)
}
