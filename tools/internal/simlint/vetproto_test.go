package simlint

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the suite's entry points into a temp dir
// and returns the binary path.
func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), filepath.Base(pkg))
	build := exec.Command("go", "build", "-o", tool, "./"+filepath.Join("tools", filepath.Base(pkg)))
	build.Dir = "../../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return tool
}

// writeModule lays out a throwaway module the real go vet can chew on.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// govet runs `go vet -vettool=tool ./...` inside dir and returns the
// combined output and whether vet failed.
func govet(t *testing.T, tool, dir string) (string, bool) {
	t.Helper()
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = dir
	vet.Env = append(os.Environ(), "GOFLAGS=")
	out, err := vet.CombinedOutput()
	return string(out), err != nil
}

const violatingSrc = `package scratch

type pkt struct{ used bool }

func (p *pkt) ClonePooled() *pkt { return &pkt{} }
func (p *pkt) Release()          {}

//simlint:hotpath
func Exec(n int) []byte {
	return make([]byte, n)
}

func leak(p *pkt, sink func(*pkt)) {
	c := p.ClonePooled()
	c.Release()
	sink(c)
}
`

// TestVetProtocolFlagsViolations drives the real `go vet -vettool`
// protocol over a throwaway module seeded with one violation per
// entry-point analyzer and asserts the exact positions survive the
// round trip through the unit-config machinery.
func TestVetProtocolFlagsViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets a module; skipped with -short")
	}
	tool := buildTool(t, "tools/simlint")
	dir := writeModule(t, map[string]string{"scratch.go": violatingSrc})
	out, failed := govet(t, tool, dir)
	if !failed {
		t.Fatalf("go vet -vettool=simlint passed on a violating module\n%s", out)
	}
	for _, want := range []string{
		"scratch.go:10:9: [hotpath] heap allocation (make) in hot path Exec",
		`scratch.go:16:7: [pool] use of pooled packet "c" after Release (released at line 15)`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vet output missing %q\n%s", want, out)
		}
	}
}

// TestVetProtocolCleanModule: the same machinery stays quiet on clean
// code, including a hot function whose helpers are clean.
func TestVetProtocolCleanModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets a module; skipped with -short")
	}
	tool := buildTool(t, "tools/simlint")
	dir := writeModule(t, map[string]string{"scratch.go": `package scratch

import "sync/atomic"

var hits atomic.Int64

//simlint:hotpath
func Exec(buf []int, v int) []int {
	hits.Add(1)
	return append(buf, v)
}
`})
	if out, failed := govet(t, tool, dir); failed {
		t.Fatalf("go vet -vettool=simlint flagged a clean module:\n%s", out)
	}
}

// TestVetProtocolCrossPackageFacts: the allocation facts of one package
// must reach hot callers in another package through the vetx files —
// the part of the protocol poollint v1 never exercised.
func TestVetProtocolCrossPackageFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets a module; skipped with -short")
	}
	tool := buildTool(t, "tools/simlint")
	dir := writeModule(t, map[string]string{
		"hot.go": `package scratch

import "scratch/helper"

//simlint:hotpath
func Exec(n int) []byte {
	return helper.Grow(n)
}
`,
	})
	if err := os.MkdirAll(filepath.Join(dir, "helper"), 0o755); err != nil {
		t.Fatal(err)
	}
	helperSrc := `package helper

func Grow(n int) []byte { return make([]byte, n) }
`
	if err := os.WriteFile(filepath.Join(dir, "helper", "helper.go"), []byte(helperSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	out, failed := govet(t, tool, dir)
	if !failed {
		t.Fatalf("cross-package allocation not flagged\n%s", out)
	}
	want := "hot.go:7:9: [hotpath] call to scratch/helper.Grow, which may allocate (heap allocation (make)), in hot path Exec"
	if !strings.Contains(out, want) {
		t.Errorf("vet output missing %q\n%s", want, out)
	}
}

// TestPoollintAliasSubset: the retired entry point still runs the pool
// discipline and nothing else — a hotpath violation must pass it.
func TestPoollintAliasSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets a module; skipped with -short")
	}
	tool := buildTool(t, "tools/poollint")
	dir := writeModule(t, map[string]string{"scratch.go": violatingSrc})
	out, failed := govet(t, tool, dir)
	if !failed {
		t.Fatalf("poollint alias missed the pool violation\n%s", out)
	}
	if !strings.Contains(out, `use of pooled packet "c" after Release`) {
		t.Errorf("poollint alias lost the pool diagnostic\n%s", out)
	}
	if strings.Contains(out, "hotpath") {
		t.Errorf("poollint alias ran the hotpath analyzer\n%s", out)
	}
}

// TestStandaloneJSONMode: `simlint -json dir` emits findings in the
// oflint codec: kind simlint-<analyzer>, severity error, coordinates
// -1, position+message in detail.
func TestStandaloneJSONMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool; skipped with -short")
	}
	tool := buildTool(t, "tools/simlint")
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(violatingSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(tool, "-json", dir)
	out, err := cmd.Output()
	if err == nil {
		t.Fatalf("simlint -json exited 0 on a violating package\n%s", out)
	}
	var findings []struct {
		Kind     string `json:"kind"`
		Severity string `json:"severity"`
		Service  string `json:"service"`
		Switch   int    `json:"switch"`
		Detail   string `json:"detail"`
	}
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("output is not findings JSON: %v\n%s", err, out)
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded")
	}
	sawHot := false
	for _, f := range findings {
		if !strings.HasPrefix(f.Kind, "simlint-") {
			t.Errorf("kind %q lacks the simlint- prefix", f.Kind)
		}
		if f.Switch != -1 || f.Service != "simlint" {
			t.Errorf("finding coordinates not source-shaped: %+v", f)
		}
		if f.Kind == "simlint-hotpath" && strings.Contains(f.Detail, "heap allocation (make)") {
			sawHot = true
		}
	}
	if !sawHot {
		t.Errorf("hotpath finding missing from %s", out)
	}
}

// TestTreeCleanGate is the whole-repo gate: the same invocation CI runs
// must be clean — every annotation and every //simlint:ignore in the
// tree accounted for.
func TestTreeCleanGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the whole repo; skipped with -short")
	}
	tool := buildTool(t, "tools/simlint")
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	if out, failed := govet(t, tool, root); failed {
		t.Fatalf("go vet -vettool=simlint reported findings on the tree:\n%s", out)
	}
}
