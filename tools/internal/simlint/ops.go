package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// scanMode selects which operations scanOps reports.
type scanMode int

const (
	// scanForFacts summarizes whole-function behavior for the vetx
	// export: allocation-relevant ops everywhere in the body, cold
	// branches included (a callee's tracing branch is still reachable).
	scanForFacts scanMode = iota
	// scanForHot checks a function on the hot path: cold-guarded
	// branches (//simlint:cold, or an if on a bare tracing/record flag)
	// are excluded, and order-sensitive ops (map range) are reported
	// too.
	scanForHot
)

// opKind classifies one reported operation.
type opKind int

const (
	opAlloc   opKind = iota // heap allocation (desc says which)
	opHotOnly               // prohibited on hot paths but allocation-free (map range)
	opCall                  // a resolved static call (samePkg or pkgPath+callee)
	opDynamic               // interface-method or func-value call
)

// op is one operation of interest found in a function body.
type op struct {
	pos  token.Pos
	kind opKind
	desc string

	samePkg string // funcKey of a same-package callee (opCall)
	pkgPath string // import path of a cross-package callee (opCall)
	callee  string // funcKey within pkgPath (opCall)
}

// scanOps walks one function body and reports allocations, prohibited
// statements and calls. It never descends into func literals (the
// literal itself is the allocation; its body runs elsewhere) and, in
// hot mode, never into cold if-bodies.
func scanOps(u *Unit, fd *ast.FuncDecl, mode scanMode) []op {
	if fd.Body == nil {
		return nil
	}
	var ops []op
	cold := make(map[*ast.BlockStmt]bool)
	if mode == scanForHot {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			if u.pragmas.coldIfs[ifs] || coldCond(ifs.Cond) {
				cold[ifs.Body] = true
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			if cold[n] {
				return false
			}
		case *ast.FuncLit:
			ops = append(ops, op{pos: n.Pos(), kind: opAlloc, desc: "heap allocation (func literal)"})
			return false
		case *ast.GoStmt:
			ops = append(ops, op{pos: n.Pos(), kind: opAlloc, desc: "go statement"})
			return false
		case *ast.DeferStmt:
			ops = append(ops, op{pos: n.Pos(), kind: opAlloc, desc: "defer"})
			return false
		case *ast.CompositeLit:
			if d := compositeDesc(u, n, false); d != "" {
				ops = append(ops, op{pos: n.Pos(), kind: opAlloc, desc: d})
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					ops = append(ops, op{pos: n.Pos(), kind: opAlloc, desc: "heap allocation (&composite literal)"})
					// Don't double-report the literal itself.
					ops = append(ops, scanComposite(u, cl)...)
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(u, n) {
				ops = append(ops, op{pos: n.Pos(), kind: opAlloc, desc: "string concatenation"})
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(u, n.Lhs[0]) {
				ops = append(ops, op{pos: n.Pos(), kind: opAlloc, desc: "string concatenation"})
			}
		case *ast.RangeStmt:
			if mode == scanForHot && isMapExpr(u, n.X) {
				ops = append(ops, op{pos: n.Pos(), kind: opHotOnly, desc: "range over map"})
			}
		case *ast.CallExpr:
			ops = append(ops, classifyCall(u, n)...)
		}
		return true
	})
	return ops
}

// scanComposite reports allocations nested inside a composite literal
// whose outer &-allocation was already reported.
func scanComposite(u *Unit, cl *ast.CompositeLit) []op {
	var ops []op
	for _, el := range cl.Elts {
		ast.Inspect(el, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if d := compositeDesc(u, n, false); d != "" {
					ops = append(ops, op{pos: n.Pos(), kind: opAlloc, desc: d})
				}
			case *ast.CallExpr:
				ops = append(ops, classifyCall(u, n)...)
			case *ast.FuncLit:
				ops = append(ops, op{pos: n.Pos(), kind: opAlloc, desc: "heap allocation (func literal)"})
				return false
			}
			return true
		})
	}
	return ops
}

// coldCond recognizes the repo's hoisted-flag guards: a bare (possibly
// &&-joined) identifier or selector whose final name is tracing/record.
// `if x.tracing { ... }` bodies are debug-only and excluded from hot
// checks without needing an annotation.
func coldCond(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return coldFlagName(e.Name)
	case *ast.SelectorExpr:
		return coldFlagName(e.Sel.Name)
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return coldCond(e.X) && coldCond(e.Y)
		}
	}
	return false
}

func coldFlagName(name string) bool {
	switch strings.ToLower(name) {
	case "tracing", "record":
		return true
	}
	return false
}

// compositeDesc reports whether a composite literal allocates on the
// heap: map, slice and func-typed literals do; bare struct and array
// literals are values. addressed is true when the caller already
// reported an enclosing &.
func compositeDesc(u *Unit, cl *ast.CompositeLit, addressed bool) string {
	if addressed {
		return ""
	}
	if u.Info != nil {
		if tv, ok := u.Info.Types[cl]; ok && tv.Type != nil {
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				return "heap allocation (map literal)"
			case *types.Slice:
				return "heap allocation (slice literal)"
			}
			return ""
		}
	}
	// Syntactic fallback for untypeable code.
	switch t := cl.Type.(type) {
	case *ast.MapType:
		return "heap allocation (map literal)"
	case *ast.ArrayType:
		if t.Len == nil {
			return "heap allocation (slice literal)"
		}
	}
	return ""
}

func isNonConstString(u *Unit, e *ast.BinaryExpr) bool {
	if u.Info == nil {
		return false
	}
	tv, ok := u.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false // untyped or constant-folded
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringExpr(u *Unit, e ast.Expr) bool {
	if u.Info == nil {
		return false
	}
	tv, ok := u.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isMapExpr(u *Unit, e ast.Expr) bool {
	if u.Info == nil {
		return false
	}
	tv, ok := u.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// classifyCall resolves one call expression into ops: the call edge
// itself (static, dynamic, builtin or conversion) plus any interface
// boxing its arguments perform. Unresolvable calls (missing type info)
// yield nothing: degradation hides findings, it must not invent them.
func classifyCall(u *Unit, call *ast.CallExpr) []op {
	var ops []op
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: F[T](x) / F[T1, T2](x).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if isFuncExpr(u, idx.X) {
			fun = ast.Unparen(idx.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		obj := objOf(u, fn)
		switch o := obj.(type) {
		case *types.Builtin:
			ops = append(ops, builtinOp(call, o.Name())...)
			return ops
		case *types.TypeName:
			ops = append(ops, conversionOp(u, call)...)
			return ops
		case *types.Func:
			ops = append(ops, staticCallOp(u, call, o))
		case *types.Var:
			ops = append(ops, op{pos: call.Pos(), kind: opDynamic, desc: "dynamic call (interface method or function value)"})
		default:
			// No type info. Builtins are still recognizable by name;
			// other idents degrade to a same-package edge for facts.
			switch fn.Name {
			case "make", "new":
				ops = append(ops, builtinOp(call, fn.Name)...)
				return ops
			case "len", "cap", "append", "copy", "delete", "panic", "recover", "print", "println", "min", "max", "clear":
				return ops
			}
			ops = append(ops, op{pos: call.Pos(), kind: opCall, samePkg: fn.Name})
		}
	case *ast.SelectorExpr:
		if u.Info != nil {
			if sel, ok := u.Info.Selections[fn]; ok {
				switch sel.Kind() {
				case types.MethodVal:
					f, _ := sel.Obj().(*types.Func)
					if f == nil {
						return ops
					}
					if types.IsInterface(sel.Recv()) {
						ops = append(ops, op{pos: call.Pos(), kind: opDynamic, desc: "dynamic call (interface method or function value)"})
					} else {
						ops = append(ops, staticCallOp(u, call, f))
					}
				case types.FieldVal:
					ops = append(ops, op{pos: call.Pos(), kind: opDynamic, desc: "dynamic call (interface method or function value)"})
				}
				ops = append(ops, boxingOps(u, call)...)
				return ops
			}
		}
		// Qualified: pkg.Func, pkg.Type conversion, or pkg.Var.
		obj := objOf(u, fn.Sel)
		switch o := obj.(type) {
		case *types.Func:
			ops = append(ops, staticCallOp(u, call, o))
		case *types.TypeName:
			ops = append(ops, conversionOp(u, call)...)
			return ops
		case *types.Var:
			ops = append(ops, op{pos: call.Pos(), kind: opDynamic, desc: "dynamic call (interface method or function value)"})
		}
	case *ast.ArrayType, *ast.MapType, *ast.InterfaceType, *ast.StarExpr, *ast.ChanType:
		// Conversion spelled with a type expression: []byte(s) etc.
		ops = append(ops, conversionOp(u, call)...)
		return ops
	case *ast.FuncLit:
		// Immediately-invoked literal: the literal op is reported by the
		// walker; the call adds nothing.
	default:
		if u.Info != nil {
			if tv, ok := u.Info.Types[fun]; ok && tv.IsType() {
				ops = append(ops, conversionOp(u, call)...)
				return ops
			}
		}
	}
	ops = append(ops, boxingOps(u, call)...)
	return ops
}

func isFuncExpr(u *Unit, e ast.Expr) bool {
	if u.Info == nil {
		return false
	}
	tv, ok := u.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}

func objOf(u *Unit, id *ast.Ident) types.Object {
	if u.Info == nil {
		return nil
	}
	return u.Info.Uses[id]
}

// staticCallOp builds the call edge for a resolved *types.Func: a
// same-package funcKey when the callee lives in this unit, else the
// (import path, funcKey) pair looked up in the callee's exported facts.
func staticCallOp(u *Unit, call *ast.CallExpr, f *types.Func) op {
	key := typesFuncKey(f)
	if f.Pkg() != nil && u.Pkg != nil && f.Pkg() == u.Pkg {
		return op{pos: call.Pos(), kind: opCall, samePkg: key}
	}
	path := ""
	if f.Pkg() != nil {
		path = f.Pkg().Path()
	}
	return op{pos: call.Pos(), kind: opCall, pkgPath: path, callee: key}
}

// typesFuncKey mirrors funcKey for type-checker objects: "Recv.Method"
// with pointer stars and generic instantiations stripped, else "Func".
func typesFuncKey(f *types.Func) string {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return f.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + f.Name()
	}
	return f.Name()
}

// builtinOp reports allocating builtins.
func builtinOp(call *ast.CallExpr, name string) []op {
	switch name {
	case "make":
		return []op{{pos: call.Pos(), kind: opAlloc, desc: "heap allocation (make)"}}
	case "new":
		return []op{{pos: call.Pos(), kind: opAlloc, desc: "heap allocation (new)"}}
	}
	// append is deliberately not flagged: the hot paths grow their
	// scratch buffers amortized and are steady-state allocation-free —
	// that's what the AllocsPerRun tests pin.
	return nil
}

// conversionOp flags the conversions that copy: string <-> []byte/[]rune
// and integer -> string.
func conversionOp(u *Unit, call *ast.CallExpr) []op {
	if u.Info == nil || len(call.Args) != 1 {
		return nil
	}
	dst, ok := u.Info.Types[call]
	if !ok || dst.Type == nil {
		return nil
	}
	if dst.Value != nil {
		return nil // constant conversion, folded at compile time
	}
	src, ok := u.Info.Types[call.Args[0]]
	if !ok || src.Type == nil {
		return nil
	}
	d, s := dst.Type.Underlying(), src.Type.Underlying()
	alloc := false
	if db, ok := d.(*types.Basic); ok && db.Info()&types.IsString != 0 {
		switch sb := s.(type) {
		case *types.Slice:
			alloc = true
		case *types.Basic:
			alloc = sb.Info()&types.IsInteger != 0
		}
	}
	if ds, ok := d.(*types.Slice); ok {
		if sb, ok := s.(*types.Basic); ok && sb.Info()&types.IsString != 0 {
			_ = ds
			alloc = true
		}
	}
	if !alloc {
		return nil
	}
	return []op{{pos: call.Pos(), kind: opAlloc, desc: "allocating string conversion"}}
}

// pointerShaped reports types the runtime stores directly in an
// interface's data word: pointers, maps, channels, funcs and
// unsafe.Pointer. Boxing those never allocates.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// boxingOps flags arguments converted to interface types at a call: the
// convT path heap-allocates the boxed copy. Passing an interface to an
// interface, the untyped nil, or a pointer-shaped value does not box.
func boxingOps(u *Unit, call *ast.CallExpr) []op {
	if u.Info == nil {
		return nil
	}
	tv, ok := u.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	var ops []op
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through, no boxing
			}
			last, _ := params.At(params.Len() - 1).Type().(*types.Slice)
			if last == nil {
				continue
			}
			pt = last.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := u.Info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if at.IsNil() || types.IsInterface(at.Type) {
			continue
		}
		if pointerShaped(at.Type) {
			continue // stored directly in the iface word, no convT copy
		}
		ops = append(ops, op{pos: arg.Pos(), kind: opAlloc, desc: "interface boxing of argument"})
	}
	return ops
}
