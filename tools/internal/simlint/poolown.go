package simlint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// runPoolOwn extends the pool discipline to the batch APIs poollint v1
// predates:
//
//   - ExecBatch steal semantics: when a Result reports StoleInput, the
//     last emission IS the input packet — releasing the input anyway
//     double-frees it into the pool. Any `in[i].Release()` downstream
//     of an ExecBatch(x, in, res) call must sit under an if whose
//     condition consults StoleInput.
//   - ClearInbox recycling: controller.ClearInbox releases every inbox
//     packet back to the pool, so a slice previously obtained from
//     Inbox() points at recycled packets. Using it afterwards reads
//     pool-owned memory.
//
// Both checks are syntactic, like pool: the method names are unique in
// this tree, and test files are checked too.
func runPoolOwn(u *Unit) []Diagnostic {
	var diags []Diagnostic
	for _, file := range u.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			diags = append(diags, checkStealStmts(u.Fset, list)...)
			diags = append(diags, checkInboxStmts(u.Fset, list)...)
			return true
		})
	}
	return diags
}

// checkStealStmts finds ExecBatch calls in a statement list and checks
// every later release of an element of the input slice for a StoleInput
// guard.
func checkStealStmts(fset *token.FileSet, list []ast.Stmt) []Diagnostic {
	var diags []Diagnostic
	var inNames []string // input-slice idents of ExecBatch calls seen so far
	for _, st := range list {
		for _, name := range inNames {
			diags = append(diags, uncheckedReleases(fset, st, name)...)
		}
		if name, ok := execBatchInput(st); ok {
			inNames = append(inNames, name)
		}
		for _, rb := range reboundNames(st) {
			inNames = deleteName(inNames, rb)
		}
	}
	return diags
}

// execBatchInput matches a statement containing a call
// `recv.ExecBatch(x, in, res)` and returns the identifier of the input
// slice (unwrapping `arr[:]` slicing).
func execBatchInput(st ast.Stmt) (string, bool) {
	var name string
	ast.Inspect(st, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 3 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "ExecBatch" {
			return true
		}
		arg := ast.Unparen(call.Args[1])
		if sl, ok := arg.(*ast.SliceExpr); ok {
			arg = ast.Unparen(sl.X)
		}
		if id, ok := arg.(*ast.Ident); ok {
			name = id.Name
		}
		return true
	})
	return name, name != ""
}

// uncheckedReleases reports `name[i].Release()` calls in the statement
// subtree that are not under an if consulting StoleInput. An if whose
// condition mentions StoleInput blesses its whole subtree: both the
// then branch (`if !res[i].StoleInput { in[i].Release() }`) and the
// else shape consult the flag.
func uncheckedReleases(fset *token.FileSet, st ast.Stmt, name string) []Diagnostic {
	var diags []Diagnostic
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if mentionsStoleInput(n.Cond) {
				return false
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Release" || len(n.Args) != 0 {
				return true
			}
			idx, ok := ast.Unparen(sel.X).(*ast.IndexExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(idx.X).(*ast.Ident); ok && id.Name == name {
				diags = append(diags, Diagnostic{
					Pos:      fset.Position(n.Pos()),
					Analyzer: AnalyzerPoolOwn,
					Message: fmt.Sprintf("release of ExecBatch input %s[...] without checking Result.StoleInput; a stolen input is owned by its emission",
						name),
				})
			}
		}
		return true
	}
	ast.Inspect(st, walk)
	return diags
}

func mentionsStoleInput(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "StoleInput" {
			found = true
			return false
		}
		return true
	})
	return found
}

func deleteName(names []string, name string) []string {
	out := names[:0]
	for _, n := range names {
		if n != name {
			out = append(out, n)
		}
	}
	return out
}

// checkInboxStmts tracks `v := recv.Inbox()` bindings through a
// statement list; after a later `recv.ClearInbox()` on the same
// receiver path, any use of v is reported. Rebinding v (or refreshing
// it from Inbox again) ends the tracking.
func checkInboxStmts(fset *token.FileSet, list []ast.Stmt) []Diagnostic {
	var diags []Diagnostic
	type binding struct {
		recv    string
		cleared token.Pos
	}
	bound := make(map[string]*binding)
	for _, st := range list {
		for name, b := range bound {
			if !b.cleared.IsValid() {
				continue
			}
			if use, ok := firstUse(st, name); ok {
				diags = append(diags, Diagnostic{
					Pos:      fset.Position(use),
					Analyzer: AnalyzerPoolOwn,
					Message: fmt.Sprintf("use of inbox packets %q after ClearInbox (cleared at line %d); the pool may have recycled them",
						name, fset.Position(b.cleared).Line),
				})
				delete(bound, name) // one report per clear
			}
		}
		for _, rb := range reboundNames(st) {
			delete(bound, rb)
		}
		if name, recv, ok := inboxBinding(st); ok {
			bound[name] = &binding{recv: recv}
		}
		if recv, pos, ok := clearInboxCall(st); ok {
			for _, b := range bound {
				if b.recv == recv && !b.cleared.IsValid() {
					b.cleared = pos
				}
			}
		}
	}
	return diags
}

// inboxBinding matches `v := recv.Inbox()` (or =) with a single LHS and
// returns v and the flattened receiver path.
func inboxBinding(st ast.Stmt) (name, recv string, ok bool) {
	as, isAssign := st.(*ast.AssignStmt)
	if !isAssign || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", "", false
	}
	id, isIdent := as.Lhs[0].(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	call, isCall := as.Rhs[0].(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Inbox" {
		return "", "", false
	}
	path, pathOK := flattenPath(sel.X)
	if !pathOK {
		return "", "", false
	}
	return id.Name, path, true
}

// clearInboxCall matches a statement `recv.ClearInbox()`.
func clearInboxCall(st ast.Stmt) (recv string, pos token.Pos, ok bool) {
	call := callStmt(st)
	if call == nil || len(call.Args) != 0 {
		return "", token.NoPos, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "ClearInbox" {
		return "", token.NoPos, false
	}
	path, pathOK := flattenPath(sel.X)
	if !pathOK {
		return "", token.NoPos, false
	}
	return path, call.Pos(), true
}

// flattenPath renders a chain of identifiers and field selections
// ("net.ctl", "c") as a comparable string; anything else (calls,
// indexes) is not a stable path.
func flattenPath(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := flattenPath(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}
