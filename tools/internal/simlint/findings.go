package simlint

import (
	"fmt"

	"smartsouth/internal/analysis"
	"smartsouth/internal/verify"
)

// ToFindings bridges simlint diagnostics into the oflint findings
// codec, so `simlint -json` output is consumable by the same tooling
// that reads `oflint -json`: Kind carries the analyzer
// ("simlint-hotpath", ...), the deployment coordinates are -1 (these
// are source findings, not switch findings), and Detail carries the
// position and message.
func ToFindings(diags []Diagnostic) []analysis.Finding {
	fs := make([]analysis.Finding, 0, len(diags))
	for _, d := range diags {
		fs = append(fs, analysis.Finding{
			Kind:     analysis.Kind("simlint-" + d.Analyzer),
			Severity: verify.Err,
			Service:  "simlint",
			Slot:     -1,
			Switch:   -1,
			Table:    -1,
			Detail:   fmt.Sprintf("%s: %s", d.Pos, d.Message),
		})
	}
	return fs
}
