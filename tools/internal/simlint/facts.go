package simlint

import (
	"encoding/json"
	"go/ast"
	"os"
)

// FuncFacts is what one package exports about one function, keyed by
// funcKey ("Recv.Method" or "Func"). Alloc is empty when the function is
// allocation-free as far as the syntactic summary can tell, else a short
// reason ("make", "calls fmt.Sprintf", ...). Facts are the vet-protocol
// currency: the go command caches them per package (vetx files) and
// hands each unit the facts of its import closure, which is how the
// hotpath analyzer sees across package boundaries.
type FuncFacts struct {
	Hotpath bool   `json:"hotpath,omitempty"`
	Alloc   string `json:"alloc,omitempty"`
}

// PackageFacts maps funcKey -> facts for one package.
type PackageFacts map[string]FuncFacts

// readFacts loads a vetx facts file. Empty files (written by vet tools
// that export no facts, including poollint v1) decode as empty facts.
func readFacts(path string) (PackageFacts, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pf := make(PackageFacts)
	if len(raw) == 0 {
		return pf, nil
	}
	if err := json.Unmarshal(raw, &pf); err != nil {
		return nil, err
	}
	return pf, nil
}

// WriteFacts computes this unit's facts and writes them to the given
// vetx path. encoding/json sorts map keys, so the output is byte-stable
// and safe for the go command's build cache.
func WriteFacts(u *Unit, path string) error {
	pf := ComputeFacts(u)
	raw, err := json.Marshal(pf)
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o666)
}

// ComputeFacts summarizes every function in the unit: does it (or
// anything it calls, transitively within the package, or across
// packages via imported facts) allocate? The summary is syntactic where
// type information is missing and type-assisted where it is present; a
// function with no body (assembler or intrinsic) is assumed clean.
func ComputeFacts(u *Unit) PackageFacts {
	type fn struct {
		decl  *ast.FuncDecl
		alloc string   // direct reason, "" if none found yet
		calls []string // same-package callee keys
	}
	fns := make(map[string]*fn)
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name == "_" {
				continue
			}
			e := &fn{decl: fd}
			fns[funcKey(fd)] = e
		}
	}
	for key, e := range fns {
		if e.decl.Body == nil {
			continue
		}
		ops := scanOps(u, e.decl, scanForFacts)
		for _, op := range ops {
			switch op.kind {
			case opCall:
				switch {
				case op.samePkg != "":
					e.calls = append(e.calls, op.samePkg)
				case op.pkgPath != "":
					if allowlisted(op.pkgPath) {
						continue
					}
					if pf, ok := u.ImportFacts[op.pkgPath]; ok {
						if ff, ok := pf[op.callee]; ok && ff.Alloc != "" && e.alloc == "" {
							e.alloc = "calls " + op.pkgPath + "." + op.callee
						}
						continue
					}
					// No facts for the import (std unit analyzed without
					// them, or in-process run): stay quiet here — the
					// hotpath analyzer applies the strict rule at hot
					// call sites itself.
				}
			default:
				if e.alloc == "" {
					e.alloc = op.desc
				}
			}
		}
		_ = key
	}
	// Propagate "calls an allocating function" to a fixpoint within the
	// package (handles helper chains and mutual recursion).
	for changed := true; changed; {
		changed = false
		for _, e := range fns {
			if e.alloc != "" {
				continue
			}
			for _, callee := range e.calls {
				ce, ok := fns[callee]
				if ok && ce.alloc != "" {
					e.alloc = "calls " + callee
					changed = true
					break
				}
			}
		}
	}
	pf := make(PackageFacts)
	for key, e := range fns {
		ff := FuncFacts{Alloc: e.alloc}
		if u.pragmas != nil {
			if _, ok := u.pragmas.hotpathFuncs[key]; ok {
				ff.Hotpath = true
			}
		}
		// Clean functions are recorded too: "key present, Alloc empty"
		// is the proof a hot caller needs, while a missing key reads as
		// unknown and is flagged at the call site.
		pf[key] = ff
	}
	return pf
}

// allowlisted reports packages hot code may always call: their exported
// operations are compiler intrinsics or pointer arithmetic and never
// heap-allocate.
func allowlisted(pkgPath string) bool {
	switch pkgPath {
	case "sync/atomic", "math/bits", "unsafe", "runtime/internal/atomic", "internal/runtime/atomic":
		return true
	}
	return false
}
