package simlint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// runHotpath verifies every //simlint:hotpath function: no heap
// allocation, defer, go, map range, interface boxing or dynamic call on
// any path, recursing through same-package callees and consulting vetx
// facts for cross-package ones. Cold branches (if x.tracing { ... },
// //simlint:cold) are exempt: they are the documented debug paths.
//
// This is the path-complete complement of the AllocsPerRun tests: those
// prove the branches a benchmark happens to take are clean, this proves
// every branch is.
func runHotpath(u *Unit) []Diagnostic {
	if len(u.pragmas.hotpathFuncs) == 0 {
		return nil
	}
	decls := make(map[string]*ast.FuncDecl)
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				decls[funcKey(fd)] = fd
			}
		}
	}
	roots := make([]string, 0, len(u.pragmas.hotpathFuncs))
	for key := range u.pragmas.hotpathFuncs {
		roots = append(roots, key)
	}
	sort.Strings(roots)

	var diags []Diagnostic
	for _, root := range roots {
		h := &hotWalk{u: u, decls: decls, visited: map[string]bool{root: true}}
		h.visit(u.pragmas.hotpathFuncs[root], []string{root})
		diags = append(diags, h.diags...)
	}
	return diags
}

type hotWalk struct {
	u       *Unit
	decls   map[string]*ast.FuncDecl
	visited map[string]bool
	diags   []Diagnostic
}

func (h *hotWalk) add(o op, chain []string) {
	h.diags = append(h.diags, Diagnostic{
		Pos:      h.u.Fset.Position(o.pos),
		Analyzer: AnalyzerHotpath,
		Message:  fmt.Sprintf("%s in hot path %s", o.desc, strings.Join(chain, " -> ")),
	})
}

func (h *hotWalk) visit(fd *ast.FuncDecl, chain []string) {
	for _, o := range scanOps(h.u, fd, scanForHot) {
		switch o.kind {
		case opAlloc, opHotOnly, opDynamic:
			h.add(o, chain)
		case opCall:
			switch {
			case o.samePkg != "":
				h.callSame(o, chain)
			case o.pkgPath != "":
				h.callCross(o, chain)
			}
		}
	}
}

// callSame recurses into a same-package callee. Callees that carry
// their own //simlint:hotpath annotation are trusted here: they are
// verified as roots of their own traversal.
func (h *hotWalk) callSame(o op, chain []string) {
	if _, hot := h.u.pragmas.hotpathFuncs[o.samePkg]; hot {
		return
	}
	if h.visited[o.samePkg] {
		return
	}
	h.visited[o.samePkg] = true
	callee, ok := h.decls[o.samePkg]
	if !ok {
		return // resolved to something we have no body for; nothing to prove
	}
	sub := make([]string, len(chain), len(chain)+1)
	copy(sub, chain)
	h.visit(callee, append(sub, o.samePkg))
}

// callCross judges a cross-package call by the callee's exported facts:
// allowlisted packages and fact-proven-clean (or hotpath-annotated,
// hence separately verified) functions pass; anything else — a function
// whose facts say it allocates, or one with no facts at all — is
// reported at the call site.
func (h *hotWalk) callCross(o op, chain []string) {
	if allowlisted(o.pkgPath) {
		return
	}
	pf, havePkg := h.u.ImportFacts[o.pkgPath]
	if havePkg {
		if ff, ok := pf[o.callee]; ok {
			if ff.Hotpath || ff.Alloc == "" {
				return
			}
			h.diags = append(h.diags, Diagnostic{
				Pos:      h.u.Fset.Position(o.pos),
				Analyzer: AnalyzerHotpath,
				Message: fmt.Sprintf("call to %s.%s, which may allocate (%s), in hot path %s",
					o.pkgPath, o.callee, ff.Alloc, strings.Join(chain, " -> ")),
			})
			return
		}
	}
	h.diags = append(h.diags, Diagnostic{
		Pos:      h.u.Fset.Position(o.pos),
		Analyzer: AnalyzerHotpath,
		Message: fmt.Sprintf("call to %s.%s (no allocation facts, not allowlisted) in hot path %s",
			o.pkgPath, o.callee, strings.Join(chain, " -> ")),
	})
}
