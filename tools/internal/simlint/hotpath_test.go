package simlint

import "testing"

func hotLint(t *testing.T, src string) []string {
	t.Helper()
	return lint(t, []string{AnalyzerHotpath}, src)
}

func TestHotpathDirectAllocations(t *testing.T) {
	got := hotLint(t, `package x

//simlint:hotpath
func Exec(n int) []int {
	buf := make([]int, n)
	p := new(int)
	_ = p
	m := map[int]int{}
	_ = m
	return buf
}`)
	wantDiags(t, got,
		`fixture.go:5:9: [hotpath] heap allocation (make) in hot path Exec`,
		`fixture.go:6:7: [hotpath] heap allocation (new) in hot path Exec`,
		`fixture.go:8:7: [hotpath] heap allocation (map literal) in hot path Exec`)
}

func TestHotpathStatements(t *testing.T) {
	got := hotLint(t, `package x

//simlint:hotpath
func Exec(m map[int]int, f func()) {
	defer f()
	go f()
	for k := range m {
		_ = k
	}
}`)
	wantDiags(t, got,
		`fixture.go:5:2: [hotpath] defer in hot path Exec`,
		`fixture.go:6:2: [hotpath] go statement in hot path Exec`,
		`fixture.go:7:2: [hotpath] range over map in hot path Exec`)
}

// TestHotpathTransitive: the check recurses through same-package
// callees; the diagnostic lands on the offending op with the call chain
// in the message.
func TestHotpathTransitive(t *testing.T) {
	got := hotLint(t, `package x

type T struct{ n int }

//simlint:hotpath
func (t *T) Exec() { t.helper() }

func (t *T) helper() {
	_ = make([]byte, t.n)
}`)
	wantDiags(t, got,
		`fixture.go:9:6: [hotpath] heap allocation (make) in hot path T.Exec -> T.helper`)
}

// TestHotpathBoxingAndDynamic: interface boxing at call arguments and
// dynamic calls are flagged; so is the un-fact-ed cross-package call
// that performs them.
func TestHotpathBoxingAndDynamic(t *testing.T) {
	got := hotLint(t, `package x

import "fmt"

type doer interface{ Do() }

//simlint:hotpath
func Exec(d doer, v int) {
	fmt.Sprintf("%d", v)
	d.Do()
}`)
	wantDiags(t, got,
		`fixture.go:9:2: [hotpath] call to fmt.Sprintf (no allocation facts, not allowlisted) in hot path Exec`,
		`fixture.go:9:20: [hotpath] interface boxing of argument in hot path Exec`,
		`fixture.go:10:2: [hotpath] dynamic call (interface method or function value) in hot path Exec`)
}

// TestHotpathCleanOps: the sanctioned steady-state shapes pass — append
// (amortized growth), bare struct literals, &ident, map reads/writes,
// allowlisted atomics, and calls to other annotated hot functions.
func TestHotpathCleanOps(t *testing.T) {
	got := hotLint(t, `package x

import "sync/atomic"

type rec struct{ a, b int }

var n atomic.Int64

//simlint:hotpath
func Step(r *rec) { r.a++ }

//simlint:hotpath
func Exec(buf []rec, m map[int]int) []rec {
	buf = append(buf, rec{a: 1})
	r := rec{a: 2, b: 3}
	p := &r
	Step(p)
	m[1] = m[2]
	n.Add(1)
	return buf
}`)
	wantDiags(t, got)
}

// TestHotpathColdGuards: bodies guarded by a hoisted tracing/record
// flag are the documented debug path and exempt, as is an if annotated
// //simlint:cold.
func TestHotpathColdGuards(t *testing.T) {
	got := hotLint(t, `package x

type ctx struct {
	tracing bool
	slow    bool
	log     []string
}

//simlint:hotpath
func Exec(x *ctx) {
	if x.tracing {
		x.log = append(x.log, string(rune(42)))
	}
	//simlint:cold
	if x.slow {
		_ = make([]byte, 1)
	}
}`)
	wantDiags(t, got)
}

// TestHotpathIgnore: the escape hatch works per line with a reason.
func TestHotpathIgnore(t *testing.T) {
	got := hotLint(t, `package x

//simlint:hotpath
func Exec(n int) []byte {
	//simlint:ignore hotpath: scratch grows once then steady-state reuses it
	return make([]byte, n)
}`)
	wantDiags(t, got)
}

// TestHotpathStringOps: concatenation and allocating conversions.
func TestHotpathStringOps(t *testing.T) {
	got := hotLint(t, `package x

//simlint:hotpath
func Exec(a, b string, raw []byte) string {
	s := a + b
	t := string(raw)
	return s + t
}`)
	wantDiags(t, got,
		`fixture.go:5:7: [hotpath] string concatenation in hot path Exec`,
		`fixture.go:6:7: [hotpath] allocating string conversion in hot path Exec`,
		`fixture.go:7:9: [hotpath] string concatenation in hot path Exec`)
}

// TestHotpathCompositeAddress: &T{} escapes.
func TestHotpathCompositeAddress(t *testing.T) {
	got := hotLint(t, `package x

type node struct{ next *node }

//simlint:hotpath
func Exec() *node {
	return &node{}
}`)
	wantDiags(t, got,
		`fixture.go:7:9: [hotpath] heap allocation (&composite literal) in hot path Exec`)
}

// TestHotpathFuncLit: closures allocate; their bodies run elsewhere and
// are not double-reported.
func TestHotpathFuncLit(t *testing.T) {
	got := hotLint(t, `package x

//simlint:hotpath
func Exec() func() []byte {
	return func() []byte { return make([]byte, 1) }
}`)
	wantDiags(t, got,
		`fixture.go:5:9: [hotpath] heap allocation (func literal) in hot path Exec`)
}

// TestHotpathSpanClaimFill models the span-record path in the sharded
// engine: the hot batch loop claims pre-allocated ring slots and fills
// them in place, which must lint clean even though the claim helper
// zeroes and hands back a pointer. The naive variant that materializes
// a record per packet is the regression the annotation exists to catch.
func TestHotpathSpanClaimFill(t *testing.T) {
	got := hotLint(t, `package x

type span struct {
	id, parent uint64
	at         int64
}

type ring struct {
	buf  []span
	head uint64
}

func (r *ring) slot() *span {
	s := &r.buf[r.head&uint64(len(r.buf)-1)]
	r.head++
	*s = span{}
	return s
}

//simlint:hotpath
func Exec(r *ring, ids []uint64, at int64) {
	for _, id := range ids {
		s := r.slot()
		s.id = id
		s.at = at
	}
}

//simlint:hotpath
func ExecAlloc(ids []uint64, at int64) []*span {
	out := make([]*span, 0, len(ids))
	for _, id := range ids {
		out = append(out, &span{id: id, at: at})
	}
	return out
}`)
	wantDiags(t, got,
		`fixture.go:31:9: [hotpath] heap allocation (make) in hot path ExecAlloc`,
		`fixture.go:33:21: [hotpath] heap allocation (&composite literal) in hot path ExecAlloc`)
}
