package simlint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// Main is the shared entry point for the suite's vet tools: simlint
// (all analyzers) and the poollint alias (pool discipline only). It
// speaks the protocol `go vet -vettool` expects — -V=full for build
// caching, -flags for flag discovery, and a JSON .cfg unit file per
// package — and doubles as a standalone checker over source
// directories:
//
//	go build -o /tmp/simlint ./tools/simlint
//	go vet -vettool=/tmp/simlint ./...        # vet protocol
//	/tmp/simlint [-json] ./internal/network   # standalone, oflint-codec JSON
//
// Exit status: 0 clean, 2 when any diagnostic is reported.
func Main(toolName string, analyzers []string) {
	log.SetFlags(0)
	log.SetPrefix(toolName + ": ")
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No analyzer flags; the go command wants a JSON list.
			fmt.Println("[]")
			return
		}
	}
	jsonOut := false
	var rest []string
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		default:
			rest = append(rest, a)
		}
	}
	switch {
	case len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg"):
		runVetUnit(rest[0], analyzers, jsonOut)
	case len(rest) >= 1:
		runDirs(rest, analyzers, jsonOut)
	default:
		log.Fatalf("usage: %s unit.cfg (via go vet -vettool) | %s [-json] dir...", toolName, toolName)
	}
}

// runVetUnit analyzes one package unit described by a JSON config file.
// The facts file is always written — the go command caches it and feeds
// it to dependent units, which is how hotpath sees across packages.
func runVetUnit(cfgPath string, analyzers []string, jsonOut bool) {
	u, cfg, err := LoadUnit(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.VetxOutput != "" {
		if err := WriteFacts(u, cfg.VetxOutput); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		// Dependency-only run: facts written, nothing to report.
		return
	}
	diags := Run(u, analyzers)
	emit(diags, jsonOut)
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// runDirs analyzes source directories in-process (no vet protocol, no
// cross-package facts): the entry point for spot checks and the -json
// findings mode.
func runDirs(dirs []string, analyzers []string, jsonOut bool) {
	var diags []Diagnostic
	for _, dir := range dirs {
		u, err := LoadDir(dir, filepath.ToSlash(filepath.Clean(dir)), false)
		if err != nil {
			log.Fatal(err)
		}
		diags = append(diags, Run(u, analyzers)...)
	}
	emit(diags, jsonOut)
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func emit(diags []Diagnostic, jsonOut bool) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ToFindings(diags)); err != nil {
			log.Fatal(err)
		}
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
}

// printVersion emits the fingerprint line the go command's build cache
// requires from a -vettool: "<name> version devel ... buildID=<hex>",
// where the hex digest covers the executable so rebuilding the tool
// invalidates cached vet results.
func printVersion() {
	name := os.Args[0]
	f, err := os.Open(name)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(name), h.Sum(nil))
}
