package simlint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// VetConfig is the JSON unit description the go command hands a vettool
// per package. Unlike poollint v1 we decode the import-resolution fields
// too: the hotpath analyzer typechecks against the compiler's export
// data so it can see interface boxing and resolve cross-package calls.
type VetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// Unit is one package loaded for analysis: parsed files plus (when
// available) type information and the facts of its imports.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Path  string // import path

	// Pkg and Info are nil when typechecking was impossible (export
	// data unavailable). Info may be partially filled when checking
	// degraded: analyzers must treat missing type info as "unknown",
	// never as a violation — degradation hides findings, it must not
	// invent them.
	Pkg  *types.Package
	Info *types.Info

	// ImportFacts maps import path -> that package's function facts,
	// loaded from the vetx files of direct imports.
	ImportFacts map[string]PackageFacts

	pragmas *pragmaIndex
}

// LoadUnit reads a vet unit config, parses its files (with comments, so
// pragmas survive), typechecks when export data is on hand, and loads
// import facts.
func LoadUnit(cfgPath string) (*Unit, *VetConfig, error) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, nil, fmt.Errorf("%s: %v", cfgPath, err)
	}
	u, err := loadFiles(&cfg)
	if err != nil {
		return nil, nil, err
	}
	return u, &cfg, nil
}

func loadFiles(cfg *VetConfig) (*Unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		file, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, file)
	}
	u := &Unit{
		Fset:        fset,
		Files:       files,
		Path:        cfg.ImportPath,
		ImportFacts: make(map[string]PackageFacts),
	}
	u.typecheck(cfg)
	for path, vetx := range cfg.PackageVetx {
		pf, err := readFacts(vetx)
		if err != nil {
			// A missing or stale facts file degrades the cross-package
			// hotpath check for that import; it is not fatal.
			continue
		}
		u.ImportFacts[path] = pf
	}
	u.pragmas = scanPragmas(u)
	return u, nil
}

// typecheck attaches type information using the compiler export data the
// go command lists in the unit config. Failures are tolerated: Info
// stays partially filled and analyzers degrade to syntax-only checks.
func (u *Unit) typecheck(cfg *VetConfig) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	lookup := func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		return file, ok
	}
	var imp types.Importer
	if compiler == "source" {
		imp = importer.ForCompiler(u.Fset, "source", nil)
	} else {
		imp = importer.ForCompiler(u.Fset, compiler, func(path string) (io.ReadCloser, error) {
			file, ok := lookup(path)
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		})
	}
	u.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tc := &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return imp.Import(path)
		}),
		Error: func(error) {}, // collect nothing; partial Info is enough
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, _ := tc.Check(u.Path, u.Fset, u.Files, u.Info)
	u.Pkg = pkg
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// LoadDir parses and typechecks a directory of Go source in-process —
// the fixture-test entry point, bypassing the vet protocol. The source
// importer resolves std imports from source, so no export data files
// are needed. Test files (_test.go) are included when withTests is set.
func LoadDir(dir, importPath string, withTests bool) (*Unit, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		if !withTests && strings.HasSuffix(fi.Name(), "_test.go") {
			return false
		}
		return true
	}, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue // external test packages analyze separately if ever needed
		}
		for _, f := range pkg.Files {
			files = append(files, f)
		}
	}
	u := &Unit{
		Fset:        fset,
		Files:       files,
		Path:        importPath,
		ImportFacts: make(map[string]PackageFacts),
	}
	u.typecheckSource()
	u.pragmas = scanPragmas(u)
	return u, nil
}

func (u *Unit) typecheckSource() {
	u.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	imp := importer.ForCompiler(u.Fset, "source", nil)
	tc := &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return imp.Import(path)
		}),
		Error: func(error) {},
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, _ := tc.Check(u.Path, u.Fset, u.Files, u.Info)
	u.Pkg = pkg
}
