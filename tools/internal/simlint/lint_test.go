package simlint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintFiles writes the fixture files into a temp dir, loads them as one
// package and runs the given analyzers, returning diagnostics formatted
// "file:line:col: [analyzer] message" (file basename only) for exact
// assertion.
func lintFiles(t *testing.T, analyzers []string, files map[string]string) []string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	u, err := LoadDir(dir, "fixture", true)
	if err != nil {
		t.Fatalf("fixture does not load: %v", err)
	}
	var out []string
	for _, d := range Run(u, analyzers) {
		out = append(out, fmt.Sprintf("%s:%d:%d: [%s] %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message))
	}
	return out
}

// lint runs one single-file fixture.
func lint(t *testing.T, analyzers []string, src string) []string {
	t.Helper()
	return lintFiles(t, analyzers, map[string]string{"fixture.go": src})
}

// wantDiags asserts got matches want pairwise: each got diagnostic must
// contain the corresponding want substring (which includes the position
// prefix when the test pins it).
func wantDiags(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %q, want %d %q", len(got), got, len(want), want)
	}
	for i := range want {
		if !strings.Contains(got[i], want[i]) {
			t.Errorf("diagnostic %d = %q, want it to contain %q", i, got[i], want[i])
		}
	}
}
