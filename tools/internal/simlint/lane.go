package simlint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// runLaneAffinity enforces the sharded simulator's ownership rule:
// struct fields marked //simlint:lanelocal (the per-lane event heap,
// exec scratch, pool staging, interned counters, flight ring) may only
// be accessed from methods of the owning struct, or from functions
// annotated //simlint:barrier — the merge/fan-in points that run while
// the lanes are parked. Any other access is a cross-shard data race
// waiting for the right schedule; this check catches it statically
// where -race can only catch the schedules CI happens to see.
//
// Test files are exempt: tests poke lane state single-threaded.
func runLaneAffinity(u *Unit) []Diagnostic {
	if len(u.pragmas.laneLocal) == 0 || u.Info == nil {
		return nil
	}
	var diags []Diagnostic
	for _, f := range u.Files {
		name := u.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if u.pragmas.barrierFuncs[funcKey(fd)] {
				continue
			}
			owner := recvTypeName(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := u.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				structName, ok := namedRecv(s.Recv())
				if !ok {
					return true
				}
				key := structName + "." + sel.Sel.Name
				if _, marked := u.pragmas.laneLocal[key]; !marked {
					return true
				}
				if owner == structName {
					return true // lane-owned method
				}
				diags = append(diags, Diagnostic{
					Pos:      u.Fset.Position(sel.Sel.Pos()),
					Analyzer: AnalyzerLaneAffinity,
					Message: fmt.Sprintf("access to lane-local field %s from %s, which is neither a %s method nor marked //simlint:barrier",
						key, funcKey(fd), structName),
				})
				return true
			})
		}
	}
	return diags
}

// recvTypeName is the receiver's named type, "" for plain functions.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	key := funcKey(fd)
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[:i]
	}
	return ""
}

// namedRecv unwraps a selection's receiver to its named struct type.
func namedRecv(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	return named.Obj().Name(), true
}
