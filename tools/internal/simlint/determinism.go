package simlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runDeterminism guards the golden-pinned property: a package marked
// //simlint:deterministic must produce identical output for identical
// inputs, run to run. Flagged:
//
//   - time.Now / time.Since / time.Until — wall-clock reads; the
//     simulator injects virtual time instead.
//   - global math/rand functions — unseeded process-global state; use a
//     seeded rand.New(rand.NewSource(...)).
//   - map iteration whose order can leak into output. Three body shapes
//     are recognized as order-insensitive and allowed: delete-only
//     cleanup, key-collection followed by a sort in the same function,
//     and commutative aggregation (map writes, += style accumulation).
//
// Test files are exempt; goldens live there and already pin the result.
func runDeterminism(u *Unit) []Diagnostic {
	if !u.pragmas.deterministic {
		return nil
	}
	var diags []Diagnostic
	for _, f := range u.Files {
		name := u.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, detFunc(u, fd)...)
		}
	}
	return diags
}

func detFunc(u *Unit, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pkg, name, ok := qualifiedCall(u, n); ok {
				switch {
				case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
					diags = append(diags, Diagnostic{
						Pos:      u.Fset.Position(n.Pos()),
						Analyzer: AnalyzerDeterminism,
						Message:  fmt.Sprintf("call to time.%s in deterministic package (inject sim time instead)", name),
					})
				case (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructor(name):
					diags = append(diags, Diagnostic{
						Pos:      u.Fset.Position(n.Pos()),
						Analyzer: AnalyzerDeterminism,
						Message:  fmt.Sprintf("global %s.%s in deterministic package (use a seeded rand.New(rand.NewSource(...)))", pkg, name),
					})
				}
			}
		case *ast.RangeStmt:
			if !isMapExpr(u, n.X) {
				return true
			}
			if safeMapRange(n, fd.Body) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      u.Fset.Position(n.Pos()),
				Analyzer: AnalyzerDeterminism,
				Message:  "map iteration order can reach output in deterministic package (collect keys and sort, aggregate commutatively, or delete-only)",
			})
		}
		return true
	})
	return diags
}

// randConstructor reports whether name is a math/rand constructor —
// rand.New(rand.NewSource(seed)) is the sanctioned seeded pattern, and
// constructors never consult the process-global source.
func randConstructor(name string) bool {
	return strings.HasPrefix(name, "New")
}

// qualifiedCall resolves pkg.Func package-level calls. Only package-
// level functions match: rand.Rand methods (a seeded generator) resolve
// to a method selection and return ok=false.
func qualifiedCall(u *Unit, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	if u.Info != nil {
		if _, isMethodOrField := u.Info.Selections[sel]; isMethodOrField {
			return "", "", false
		}
		if f, isFunc := u.Info.Uses[sel.Sel].(*types.Func); isFunc && f.Pkg() != nil {
			return f.Pkg().Path(), f.Name(), true
		}
		return "", "", false
	}
	// Syntactic fallback when type information degraded.
	if x, isIdent := sel.X.(*ast.Ident); isIdent {
		switch x.Name {
		case "time":
			return "time", sel.Sel.Name, true
		case "rand":
			return "math/rand", sel.Sel.Name, true
		}
	}
	return "", "", false
}

// safeMapRange recognizes the three order-insensitive body shapes. For
// key-collection, any slice appended to inside the body must feed a
// sort call later in the enclosing function; otherwise the collection
// itself just re-materializes the unordered map.
func safeMapRange(rng *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	collected := make(map[string]bool)
	if !safeStmts(rng.Body.List, collected) {
		return false
	}
	for name := range collected {
		if !sortedLater(name, rng, enclosing) {
			return false
		}
	}
	return true
}

// safeStmts reports whether every statement is order-insensitive:
// deletes, map-index or accumulate assignments, appends (recorded in
// collected for the sort look-ahead), and ifs/blocks of the same.
func safeStmts(list []ast.Stmt, collected map[string]bool) bool {
	for _, st := range list {
		if !safeStmt(st, collected) {
			return false
		}
	}
	return true
}

func safeStmt(st ast.Stmt, collected map[string]bool) bool {
	switch st := st.(type) {
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "delete"
	case *ast.AssignStmt:
		return safeAssign(st, collected)
	case *ast.IncDecStmt:
		return lvalueOK(st.X)
	case *ast.IfStmt:
		if st.Init != nil && !safeStmt(st.Init, collected) {
			return false
		}
		if !safeStmts(st.Body.List, collected) {
			return false
		}
		if st.Else != nil {
			return safeStmt(st.Else, collected)
		}
		return true
	case *ast.BlockStmt:
		return safeStmts(st.List, collected)
	case *ast.RangeStmt, *ast.ForStmt:
		// A nested loop is order-insensitive iff its body is; a nested
		// map range gets its own diagnostic from the walk if unsafe.
		switch st := st.(type) {
		case *ast.RangeStmt:
			return safeStmts(st.Body.List, collected)
		case *ast.ForStmt:
			return safeStmts(st.Body.List, collected)
		}
		return false
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE || st.Tok == token.BREAK
	case *ast.EmptyStmt:
		return true
	}
	return false
}

// safeAssign allows commutative accumulation (m[k] op= v, x op= v,
// x++-style ops), plain map-index writes, and s = append(s, ...) — the
// latter recorded for the sort look-ahead. Plain `x = v` to a simple
// variable is order-sensitive (last write wins by iteration order)
// unless the value doesn't depend on the loop; being conservative, it
// is rejected.
func safeAssign(st *ast.AssignStmt, collected map[string]bool) bool {
	// v, ok := m[k] — a comma-ok read keyed by the loop variable is a
	// pure per-key probe.
	if st.Tok == token.DEFINE && len(st.Lhs) == 2 && len(st.Rhs) == 1 {
		if _, isIndex := ast.Unparen(st.Rhs[0]).(*ast.IndexExpr); isIndex {
			_, aOK := st.Lhs[0].(*ast.Ident)
			_, bOK := st.Lhs[1].(*ast.Ident)
			return aOK && bOK
		}
	}
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return false
	}
	lhs, rhs := st.Lhs[0], st.Rhs[0]
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.MUL_ASSIGN:
		return lvalueOK(lhs)
	case token.ASSIGN, token.DEFINE:
		// s = append(s, ...) collects; m[k] = v writes a keyed slot.
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) >= 1 {
				if dst, ok := lhs.(*ast.Ident); ok {
					if src, ok := call.Args[0].(*ast.Ident); ok && src.Name == dst.Name {
						collected[dst.Name] = true
						return true
					}
				}
			}
			return false
		}
		_, isIndex := lhs.(*ast.IndexExpr)
		return isIndex
	}
	return false
}

// lvalueOK accepts the accumulation targets: an identifier, a map/slice
// index, or a field selector.
func lvalueOK(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.IndexExpr, *ast.SelectorExpr:
		return true
	}
	return false
}

// sortedLater reports whether a sort call mentioning name appears in
// the enclosing function after the range statement: sort.X(name...),
// slices.Sort(name), or any call whose arguments reference name and
// whose callee name starts with Sort/sort.
func sortedLater(name string, rng *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.Pos() {
			return true
		}
		if !isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			hit := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && id.Name == name {
					hit = true
					return false
				}
				return true
			})
			if hit {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall matches sort.<X>(...), slices.Sort*(...), and local
// helpers whose name starts with "sort".
func isSortCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok && (x.Name == "sort" || x.Name == "slices") {
			return true
		}
		return strings.HasPrefix(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.HasPrefix(strings.ToLower(fun.Name), "sort")
	}
	return false
}
