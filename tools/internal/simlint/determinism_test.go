package simlint

import "testing"

func detLint(t *testing.T, src string) []string {
	t.Helper()
	return lint(t, []string{AnalyzerDeterminism}, src)
}

func TestDeterminismWallClock(t *testing.T) {
	got := detLint(t, `package x

//simlint:deterministic

import "time"

func stamp() (time.Time, time.Duration) {
	t0 := time.Now()
	return t0, time.Since(t0)
}`)
	wantDiags(t, got,
		`fixture.go:8:8: [determinism] call to time.Now in deterministic package (inject sim time instead)`,
		`fixture.go:9:13: [determinism] call to time.Since in deterministic package (inject sim time instead)`)
}

func TestDeterminismGlobalRand(t *testing.T) {
	got := detLint(t, `package x

//simlint:deterministic

import "math/rand"

func roll() int { return rand.Intn(6) }

func seeded(r *rand.Rand) int { return r.Intn(6) } // seeded generator: fine

func mk(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) } // constructors: fine
`)
	wantDiags(t, got,
		`fixture.go:7:26: [determinism] global math/rand.Intn in deterministic package (use a seeded rand.New(rand.NewSource(...)))`)
}

func TestDeterminismMapOrderToOutput(t *testing.T) {
	got := detLint(t, `package x

//simlint:deterministic

func emit(m map[string]int, out func(string)) {
	for k := range m {
		out(k)
	}
}`)
	wantDiags(t, got,
		`fixture.go:6:2: [determinism] map iteration order can reach output in deterministic package (collect keys and sort, aggregate commutatively, or delete-only)`)
}

// TestDeterminismSafeShapes: the three order-insensitive shapes pass —
// delete-only cleanup, key collection followed by a sort, and
// commutative aggregation (including the two-loop, if-wrapped collect
// that Switch.TableIDs uses).
func TestDeterminismSafeShapes(t *testing.T) {
	got := detLint(t, `package x

//simlint:deterministic

import "sort"

func cleanup(m map[int]bool) {
	for k := range m {
		delete(m, k)
	}
}

func keys(a, b map[int]bool) []int {
	var ids []int
	for k := range a {
		ids = append(ids, k)
	}
	for k := range b {
		if !a[k] {
			ids = append(ids, k)
		}
	}
	sort.Ints(ids)
	return ids
}

func tally(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func nested(m map[int]map[string]int) int {
	n := 0
	for _, inner := range m {
		for _, v := range inner {
			n += v
		}
	}
	return n
}

func commaOK(m map[int]bool, seen map[int]bool) []int {
	var ids []int
	for k := range m {
		if v, ok := seen[k]; !ok || !v {
			ids = append(ids, k)
		}
	}
	sort.Ints(ids)
	return ids
}`)
	wantDiags(t, got)
}

// TestDeterminismCollectWithoutSort: collecting keys without sorting
// just re-materializes the unordered map and is flagged.
func TestDeterminismCollectWithoutSort(t *testing.T) {
	got := detLint(t, `package x

//simlint:deterministic

func keys(m map[int]bool) []int {
	var ids []int
	for k := range m {
		ids = append(ids, k)
	}
	return ids
}`)
	wantDiags(t, got, `fixture.go:7:2: [determinism] map iteration order can reach output`)
}

// TestDeterminismUnmarkedPackage: without the //simlint:deterministic
// pragma nothing is checked.
func TestDeterminismUnmarkedPackage(t *testing.T) {
	got := detLint(t, `package x

import "time"

func stamp() time.Time { return time.Now() }`)
	wantDiags(t, got)
}

// TestDeterminismTestFilesExempt: goldens and benchmarks may time
// themselves.
func TestDeterminismTestFilesExempt(t *testing.T) {
	got := lintFiles(t, []string{AnalyzerDeterminism}, map[string]string{
		"fixture.go": `package x

//simlint:deterministic
`,
		"clock_test.go": `package x

import "time"

func wall() time.Time { return time.Now() }
`,
	})
	wantDiags(t, got)
}

// TestDeterminismIgnore: sampled wall-clock telemetry is the sanctioned
// exception, recorded with a reason.
func TestDeterminismIgnore(t *testing.T) {
	got := detLint(t, `package x

//simlint:deterministic

import "time"

func sample() time.Time {
	//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
	return time.Now()
}`)
	wantDiags(t, got)
}
