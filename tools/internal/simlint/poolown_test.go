package simlint

import "testing"

func ownLint(t *testing.T, src string) []string {
	t.Helper()
	return lint(t, []string{AnalyzerPoolOwn}, src)
}

// TestStealUncheckedRelease: releasing an ExecBatch input without
// consulting Result.StoleInput double-frees a stolen packet.
func TestStealUncheckedRelease(t *testing.T) {
	got := ownLint(t, `package x
func f(sw *Switch, x *Ctx, in []*Packet, res []Result) {
	sw.ExecBatch(x, in, res)
	for i := range in {
		in[i].Release()
	}
}`)
	wantDiags(t, got,
		`fixture.go:5:3: [poolown] release of ExecBatch input in[...] without checking Result.StoleInput; a stolen input is owned by its emission`)
}

// TestStealGuardedRelease: the sanctioned shape — the release sits
// under an if that consults the flag (either polarity).
func TestStealGuardedRelease(t *testing.T) {
	got := ownLint(t, `package x
func f(sw *Switch, x *Ctx, in []*Packet, res []Result) {
	sw.ExecBatch(x, in, res)
	for i := range in {
		if !res[i].StoleInput {
			in[i].Release()
		}
	}
	arr := [1]*Packet{}
	out := [1]Result{}
	sw.ExecBatch(x, arr[:], out[:])
	if out[0].StoleInput {
		_ = out[0]
	} else {
		arr[0].Release()
	}
}`)
	wantDiags(t, got)
}

// TestStealSliceExprInput: `arr[:]` unwraps to the backing array ident.
func TestStealSliceExprInput(t *testing.T) {
	got := ownLint(t, `package x
func f(sw *Switch, x *Ctx) {
	arr := [1]*Packet{}
	out := [1]Result{}
	sw.ExecBatch(x, arr[:], out[:])
	arr[0].Release()
}`)
	wantDiags(t, got,
		`fixture.go:6:2: [poolown] release of ExecBatch input arr[...] without checking Result.StoleInput`)
}

// TestStealRebindEndsTracking: a rebound input slice holds different
// packets.
func TestStealRebindEndsTracking(t *testing.T) {
	got := ownLint(t, `package x
func f(sw *Switch, x *Ctx, in []*Packet, res []Result, fresh []*Packet) {
	sw.ExecBatch(x, in, res)
	in = fresh
	in[0].Release()
}`)
	wantDiags(t, got)
}

// TestInboxUseAfterClear: ClearInbox recycles the inbox packets; the
// previously fetched slice now points into the pool.
func TestInboxUseAfterClear(t *testing.T) {
	got := ownLint(t, `package x
func f(c *Controller, sink func(PacketIn)) {
	msgs := c.Inbox()
	c.ClearInbox()
	sink(msgs[0])
}`)
	wantDiags(t, got,
		`fixture.go:5:7: [poolown] use of inbox packets "msgs" after ClearInbox (cleared at line 4); the pool may have recycled them`)
}

// TestInboxCleanPatterns: consume-then-clear, clearing a different
// controller, and refreshing the binding are all fine.
func TestInboxCleanPatterns(t *testing.T) {
	got := ownLint(t, `package x
func f(c, other *Controller, sink func(PacketIn)) {
	msgs := c.Inbox()
	for _, m := range msgs {
		sink(m)
	}
	c.ClearInbox()

	a := c.Inbox()
	other.ClearInbox() // different receiver: a is still live
	sink(a[0])
	c.ClearInbox()
	a = c.Inbox() // refreshed binding
	sink(a[0])
}`)
	wantDiags(t, got)
}

// TestInboxSelectorReceiver: receiver paths are matched structurally
// (net.ctl style), not just single idents.
func TestInboxSelectorReceiver(t *testing.T) {
	got := ownLint(t, `package x
func f(net *Network, sink func(PacketIn)) {
	msgs := net.ctl.Inbox()
	net.ctl.ClearInbox()
	sink(msgs[0])
}`)
	wantDiags(t, got,
		`fixture.go:5:7: [poolown] use of inbox packets "msgs" after ClearInbox (cleared at line 4)`)
}

// TestPoolOwnIgnore: the escape hatch applies.
func TestPoolOwnIgnore(t *testing.T) {
	got := ownLint(t, `package x
func f(c *Controller, sink func(PacketIn)) {
	msgs := c.Inbox()
	c.ClearInbox()
	//simlint:ignore poolown: fixture reads the recycled slot on purpose
	sink(msgs[0])
}`)
	wantDiags(t, got)
}
