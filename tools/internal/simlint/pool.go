package simlint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// runPool is poollint v1, folded into the suite unchanged: the
// pooled-packet single-owner discipline. openflow.Packet values from
// ClonePooled are freelist-backed; once Release is called the pool may
// recycle and overwrite them, so any later use is a use-after-free-style
// bug that corrupts an unrelated in-flight packet.
//
// Checks:
//
//   - use-after-release: a statement that reads a variable after an
//     earlier x.Release() in the same statement list (including a second
//     Release — a double release poisons the pool with duplicates).
//   - discarded clone: x.ClonePooled() used as a statement, dropping the
//     result; the clone can never be handed off or released.
//
// The checks are purely syntactic: Release and ClonePooled name exactly
// one type in this tree. Test files are checked too — tests manage
// packet lifetimes by hand and are where the historical bugs lived.
func runPool(u *Unit) []Diagnostic {
	var diags []Diagnostic
	for _, file := range u.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			diags = append(diags, checkPoolStmts(u.Fset, list)...)
			return true
		})
	}
	return diags
}

// checkPoolStmts scans one statement list in order, tracking which plain
// identifiers have been passed to Release. Any later statement that
// reads such an identifier — including a second Release — is reported.
// An assignment that rebinds the identifier ends the tracking: the name
// now holds a different packet.
//
// The scan is deliberately shallow: only a top-level `x.Release()`
// statement starts tracking (a Release buried in a branch may not
// execute), and only identifier receivers are tracked (selector
// receivers like em.Pkt are re-evaluated each use, so name identity
// says nothing). Both choices trade missed bugs for zero false
// positives on correct code.
func checkPoolStmts(fset *token.FileSet, list []ast.Stmt) []Diagnostic {
	var diags []Diagnostic
	released := make(map[string]token.Pos)
	for _, st := range list {
		if len(released) > 0 {
			for name, rpos := range released {
				if use, ok := firstUse(st, name); ok {
					diags = append(diags, Diagnostic{
						Pos:      fset.Position(use),
						Analyzer: AnalyzerPool,
						Message: fmt.Sprintf("use of pooled packet %q after Release (released at line %d); the pool may have recycled it",
							name, fset.Position(rpos).Line),
					})
					delete(released, name) // one report per release
				}
			}
		}
		for _, name := range reboundNames(st) {
			delete(released, name)
		}
		if name, ok := releaseReceiver(st); ok {
			released[name] = st.Pos()
		}
		if call, ok := discardedClone(st); ok {
			diags = append(diags, Diagnostic{
				Pos:      fset.Position(call.Pos()),
				Analyzer: AnalyzerPool,
				Message:  "result of ClonePooled discarded; the clone can never be handed off or released",
			})
		}
	}
	return diags
}

// releaseReceiver reports the identifier x of a statement of the exact
// form `x.Release()`.
func releaseReceiver(st ast.Stmt) (string, bool) {
	call := callStmt(st)
	if call == nil || len(call.Args) != 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// discardedClone matches a statement of the form `expr.ClonePooled()`
// whose result is dropped.
func discardedClone(st ast.Stmt) (*ast.CallExpr, bool) {
	call := callStmt(st)
	if call == nil {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ClonePooled" {
		return nil, false
	}
	return call, true
}

// callStmt unwraps an expression statement holding a call.
func callStmt(st ast.Stmt) *ast.CallExpr {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	return call
}

// firstUse reports the position of the first read of name anywhere in
// the statement subtree. Idents that are not variable reads — selector
// fields, struct-literal keys, declared names, assignment targets — are
// excluded, as are occurrences rebound deeper in the subtree (they name
// a different packet by the time they run).
func firstUse(st ast.Stmt, name string) (token.Pos, bool) {
	skip := make(map[*ast.Ident]bool)
	rebound := false
	bind := func(id *ast.Ident) {
		skip[id] = true
		if id.Name == name {
			rebound = true
		}
	}
	ast.Inspect(st, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			skip[n.Sel] = true
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				skip[id] = true
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					bind(id)
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				bind(id)
			}
		case *ast.Field:
			for _, id := range n.Names {
				bind(id)
			}
		case *ast.RangeStmt:
			if id, ok := n.Key.(*ast.Ident); ok {
				bind(id)
			}
			if id, ok := n.Value.(*ast.Ident); ok {
				bind(id)
			}
		case *ast.LabeledStmt:
			skip[n.Label] = true
		case *ast.BranchStmt:
			if n.Label != nil {
				skip[n.Label] = true
			}
		}
		return true
	})
	// If the subtree rebinds the name anywhere (:=, =, var, range var,
	// func-literal parameter), reads inside it are ambiguous; stay quiet.
	if rebound {
		return token.NoPos, false
	}
	var pos token.Pos
	ast.Inspect(st, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name && !skip[id] {
			pos = id.Pos()
		}
		return true
	})
	return pos, pos.IsValid()
}

// reboundNames lists plain identifiers this statement assigns or
// declares at its top level, ending use-after-release tracking for them.
func reboundNames(st ast.Stmt) []string {
	var names []string
	switch st := st.(type) {
	case *ast.AssignStmt:
		for _, l := range st.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				names = append(names, id.Name)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						names = append(names, id.Name)
					}
				}
			}
		}
	}
	return names
}
