package simlint

import "testing"

// The pool fixtures migrated verbatim from the standalone poollint
// (tools/poollint/check_test.go before the suite absorbed it); messages
// and positions are unchanged so existing suppressions keep matching.

func poolLint(t *testing.T, src string) []string {
	t.Helper()
	return lint(t, []string{AnalyzerPool}, src)
}

func TestUseAfterRelease(t *testing.T) {
	got := poolLint(t, `package x
func f(pkt *Packet, sink func(*Packet)) {
	p := pkt.ClonePooled()
	sink(p)
	p.Release()
	sink(p)
}`)
	wantDiags(t, got, `fixture.go:6:7: [pool] use of pooled packet "p" after Release (released at line 5); the pool may have recycled it`)
}

func TestDoubleRelease(t *testing.T) {
	got := poolLint(t, `package x
func f(pkt *Packet) {
	p := pkt.ClonePooled()
	p.Release()
	p.Release()
}`)
	wantDiags(t, got, `fixture.go:5:2: [pool] use of pooled packet "p" after Release`)
}

func TestFieldReadAfterRelease(t *testing.T) {
	got := poolLint(t, `package x
func f(pkt *Packet) int {
	p := pkt.ClonePooled()
	p.Release()
	return len(p.Tag)
}`)
	wantDiags(t, got, `use of pooled packet "p" after Release`)
}

func TestDiscardedClone(t *testing.T) {
	got := poolLint(t, `package x
func f(pkt *Packet) {
	pkt.ClonePooled()
}`)
	wantDiags(t, got, "fixture.go:3:2: [pool] result of ClonePooled discarded; the clone can never be handed off or released")
}

// TestCleanPatterns covers every sanctioned shape that appears in the
// simulator: release as last use, deferred release, rebinding after
// release, selector receivers, and release inside a loop body whose next
// iteration rebinds.
func TestCleanPatterns(t *testing.T) {
	got := poolLint(t, `package x
func f(pkt *Packet, ems []Emission, sink func(*Packet)) {
	p := pkt.ClonePooled()
	sink(p)
	p.Release()

	q := pkt.ClonePooled()
	defer q.Release()
	sink(q)

	p = pkt.ClonePooled() // rebinding ends the tracking
	sink(p)
	p.Release()

	for _, em := range ems {
		em.Pkt.Release() // selector receiver: not tracked
	}
	for range ems {
		c := pkt.ClonePooled()
		sink(c)
		c.Release()
	}
}`)
	wantDiags(t, got)
}

// TestReleaseInBranchNotTracked: a conditional Release may not execute,
// so a later use must not be reported.
func TestReleaseInBranchNotTracked(t *testing.T) {
	got := poolLint(t, `package x
func f(pkt *Packet, drop bool, sink func(*Packet)) {
	p := pkt.ClonePooled()
	if drop {
		p.Release()
		return
	}
	sink(p)
}`)
	wantDiags(t, got)
}

// TestSwitchCaseBodies: case clauses are statement lists of their own.
func TestSwitchCaseBodies(t *testing.T) {
	got := poolLint(t, `package x
func f(pkt *Packet, mode int, sink func(*Packet)) {
	switch mode {
	case 1:
		p := pkt.ClonePooled()
		p.Release()
		sink(p)
	}
}`)
	wantDiags(t, got, `use of pooled packet "p" after Release`)
}

// TestPoolIgnoreEscapeHatch: a reasoned //simlint:ignore on the line
// above suppresses, and an unreasoned one is itself reported.
func TestPoolIgnoreEscapeHatch(t *testing.T) {
	got := poolLint(t, `package x
func f(pkt *Packet, sink func(*Packet)) {
	p := pkt.ClonePooled()
	p.Release()
	//simlint:ignore pool: fixture exercises the recycled path on purpose
	sink(p)
}`)
	wantDiags(t, got)

	got = poolLint(t, `package x
func f(pkt *Packet, sink func(*Packet)) {
	p := pkt.ClonePooled()
	p.Release()
	//simlint:ignore
	sink(p)
}`)
	wantDiags(t, got,
		`fixture.go:5:2: [simlint] //simlint:ignore requires a reason`,
		`fixture.go:6:7: [pool] use of pooled packet "p" after Release`)
}
