// Package simlint is the engine behind the repo's `go vet -vettool`
// static-analysis suite. It mechanizes the simulator's hand-maintained
// engine invariants so refactors cannot silently break them:
//
//   - hotpath: functions annotated //simlint:hotpath (the zero-alloc
//     pipeline: ExecBatch, FlowTable.Lookup, the compiled matcher walk,
//     the telemetry Counter record path, the flight-ring claim) must not
//     heap-allocate, defer, range over maps, box into interfaces, or
//     call functions that do — checked path-completely, transitively
//     through same-package callees and, via vet facts, across packages.
//   - laneaffinity: fields marked //simlint:lanelocal (the sharded
//     simulator's per-lane heap, scratch, counters and flight ring) may
//     only be touched from methods of their struct or from functions
//     annotated //simlint:barrier — the static complement of the
//     schedule-dependent race detector.
//   - determinism: in packages marked //simlint:deterministic, flag
//     wall-clock reads (time.Now/Since/Until), global math/rand, and
//     map iteration whose order can feed emissions or output — the
//     exact bug class the determinism goldens pin.
//   - pool: poollint's original pooled-packet discipline (use after
//     Release, double Release, discarded ClonePooled).
//   - poolown: the PR 7 batch-API extension of pool — releasing an
//     ExecBatch input without consulting Result.StoleInput, and using
//     inbox packets after ClearInbox recycled them.
//
// Any diagnostic can be suppressed with a reasoned escape hatch,
// `//simlint:ignore reason` (optionally scoped: `//simlint:ignore
// hotpath: reason`), placed on the flagged line or the line above. An
// ignore without a reason is itself a diagnostic. docs/LINTS.md
// catalogues every invariant, its failure mode and its suppression.
package simlint

import (
	"fmt"
	"go/token"
	"sort"
)

// Analyzer names, in reporting order. These are the values accepted by
// scoped ignore directives and by the drivers' analyzer selection.
const (
	AnalyzerHotpath      = "hotpath"
	AnalyzerLaneAffinity = "laneaffinity"
	AnalyzerDeterminism  = "determinism"
	AnalyzerPool         = "pool"
	AnalyzerPoolOwn      = "poolown"
)

// AllAnalyzers lists every analyzer in the suite.
var AllAnalyzers = []string{
	AnalyzerHotpath,
	AnalyzerLaneAffinity,
	AnalyzerDeterminism,
	AnalyzerPool,
	AnalyzerPoolOwn,
}

// PoolAnalyzers is the subset the retired poollint entry point keeps
// running: the pooled-packet ownership discipline only.
var PoolAnalyzers = []string{AnalyzerPool, AnalyzerPoolOwn}

// Diagnostic is one finding, positioned for vet's file:line:col output.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Run executes the named analyzers over one loaded unit and returns the
// surviving diagnostics: suppressions (//simlint:ignore) are applied,
// malformed ignore directives are reported, and the result is sorted by
// position for deterministic output.
func Run(u *Unit, analyzers []string) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		switch a {
		case AnalyzerHotpath:
			diags = append(diags, runHotpath(u)...)
		case AnalyzerLaneAffinity:
			diags = append(diags, runLaneAffinity(u)...)
		case AnalyzerDeterminism:
			diags = append(diags, runDeterminism(u)...)
		case AnalyzerPool:
			diags = append(diags, runPool(u)...)
		case AnalyzerPoolOwn:
			diags = append(diags, runPoolOwn(u)...)
		}
	}
	diags = append(diags, u.pragmas.badIgnores()...)
	diags = u.pragmas.suppress(diags)
	sortDiags(diags)
	return dedupe(diags)
}

// sortDiags orders by file, line, column, analyzer for stable output.
func sortDiags(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// dedupe removes identical findings (the same op reached through two
// hot roots, say); input must be sorted.
func dedupe(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 && d == ds[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
