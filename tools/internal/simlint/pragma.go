package simlint

import (
	"go/ast"
	"go/token"
	"strings"
)

// simlint's comment directives. All use the Go directive style (no space
// after //, so gofmt leaves them alone):
//
//	//simlint:hotpath                 — on a func: must be allocation-free
//	//simlint:barrier <why>           — on a func: may touch lane-local state
//	//simlint:lanelocal               — on a struct field: lane-affine
//	//simlint:deterministic           — in a file: package is sim-deterministic
//	//simlint:cold                    — on an if statement: body is off the hot path
//	//simlint:ignore [analyzer:] why  — suppress findings on this or the next line
const (
	pragmaHotpath       = "hotpath"
	pragmaBarrier       = "barrier"
	pragmaLaneLocal     = "lanelocal"
	pragmaDeterministic = "deterministic"
	pragmaCold          = "cold"
	pragmaIgnore        = "ignore"
)

// ignoreDirective is one parsed //simlint:ignore comment.
type ignoreDirective struct {
	pos      token.Position // of the comment
	analyzer string         // "" = all analyzers
	reason   string
	used     bool
}

// pragmaIndex holds every directive found in a unit, pre-resolved to the
// declarations they annotate.
type pragmaIndex struct {
	fset *token.FileSet

	// hotpathFuncs and barrierFuncs are keyed by funcKey (recv.name or
	// name) of the annotated declaration.
	hotpathFuncs map[string]*ast.FuncDecl
	barrierFuncs map[string]bool

	// laneLocal maps "StructName.field" for every field whose doc or
	// line comment carries //simlint:lanelocal.
	laneLocal map[string]token.Pos

	// deterministic is set when any file in the unit declares
	// //simlint:deterministic.
	deterministic bool

	// coldIfs holds the *ast.IfStmt nodes annotated //simlint:cold.
	coldIfs map[*ast.IfStmt]bool

	ignores []*ignoreDirective
}

// directive splits a comment of the form "//simlint:verb rest" and
// reports ok=false for any other comment.
func directive(c *ast.Comment) (verb, rest string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, "//simlint:") {
		return "", "", false
	}
	body := strings.TrimPrefix(text, "//simlint:")
	verb, rest, _ = strings.Cut(body, " ")
	return verb, strings.TrimSpace(rest), true
}

// funcKey names a declaration the way the facts table does: "recv.name"
// for methods (pointer stars stripped), plain "name" otherwise.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
			continue
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
			continue
		}
		break
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// scanPragmas walks every comment in the unit and builds the index.
func scanPragmas(u *Unit) *pragmaIndex {
	px := &pragmaIndex{
		fset:         u.Fset,
		hotpathFuncs: make(map[string]*ast.FuncDecl),
		barrierFuncs: make(map[string]bool),
		laneLocal:    make(map[string]token.Pos),
		coldIfs:      make(map[*ast.IfStmt]bool),
	}
	for _, f := range u.Files {
		// File- and package-level: deterministic pragma anywhere in the
		// file, and the position-keyed ignore directives.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, rest, ok := directive(c)
				if !ok {
					continue
				}
				switch verb {
				case pragmaDeterministic:
					px.deterministic = true
				case pragmaIgnore:
					analyzer, reason := splitIgnore(rest)
					px.ignores = append(px.ignores, &ignoreDirective{
						pos:      u.Fset.Position(c.Pos()),
						analyzer: analyzer,
						reason:   reason,
					})
				}
			}
		}
		// Declaration-attached: hotpath/barrier on funcs, lanelocal on
		// struct fields, cold on ifs.
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil {
					for _, c := range d.Doc.List {
						verb, _, ok := directive(c)
						if !ok {
							continue
						}
						switch verb {
						case pragmaHotpath:
							px.hotpathFuncs[funcKey(d)] = d
						case pragmaBarrier:
							px.barrierFuncs[funcKey(d)] = true
						}
					}
				}
			case *ast.GenDecl:
				px.scanStructFields(d)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			if px.hasColdComment(f, ifs) {
				px.coldIfs[ifs] = true
			}
			return true
		})
	}
	return px
}

// scanStructFields records //simlint:lanelocal markers on struct fields,
// from either the field's doc comment or its trailing line comment.
func (px *pragmaIndex) scanStructFields(gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			marked := false
			for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
				if cg == nil {
					continue
				}
				for _, c := range cg.List {
					if verb, _, ok := directive(c); ok && verb == pragmaLaneLocal {
						marked = true
					}
				}
			}
			if !marked {
				continue
			}
			for _, name := range field.Names {
				px.laneLocal[ts.Name.Name+"."+name.Name] = name.Pos()
			}
		}
	}
}

// hasColdComment reports whether an //simlint:cold comment sits on the
// line of the if statement or the line above it.
func (px *pragmaIndex) hasColdComment(f *ast.File, ifs *ast.IfStmt) bool {
	line := px.fset.Position(ifs.Pos()).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			verb, _, ok := directive(c)
			if !ok || verb != pragmaCold {
				continue
			}
			cl := px.fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// splitIgnore parses the body of an ignore directive: an optional
// "analyzer:" scope followed by the mandatory reason.
func splitIgnore(rest string) (analyzer, reason string) {
	head, tail, found := strings.Cut(rest, ":")
	if found {
		head = strings.TrimSpace(head)
		for _, a := range AllAnalyzers {
			if head == a {
				return a, strings.TrimSpace(tail)
			}
		}
	}
	return "", strings.TrimSpace(rest)
}

// suppress drops diagnostics covered by an ignore directive on the same
// line or the line immediately above, in the same file, with a matching
// analyzer scope. Matched directives are marked used.
func (px *pragmaIndex) suppress(diags []Diagnostic) []Diagnostic {
	if len(px.ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, ig := range px.ignores {
			if ig.reason == "" {
				continue // malformed; reported separately, never suppresses
			}
			if ig.analyzer != "" && ig.analyzer != d.Analyzer {
				continue
			}
			if ig.pos.Filename != d.Pos.Filename {
				continue
			}
			if ig.pos.Line == d.Pos.Line || ig.pos.Line == d.Pos.Line-1 {
				ig.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// badIgnores reports ignore directives with no reason: the escape hatch
// exists to record *why* an invariant is waived, so a bare waiver is
// itself a finding.
func (px *pragmaIndex) badIgnores() []Diagnostic {
	var diags []Diagnostic
	for _, ig := range px.ignores {
		if ig.reason == "" {
			diags = append(diags, Diagnostic{
				Pos:      ig.pos,
				Analyzer: "simlint",
				Message:  "//simlint:ignore requires a reason (and optionally an analyzer scope: //simlint:ignore hotpath: reason)",
			})
		}
	}
	return diags
}
