// poollint is a go vet tool (-vettool) that checks the simulator's
// pooled-packet discipline. openflow.Packet values obtained from
// ClonePooled are freelist-backed: once Release is called the pool may
// recycle and overwrite them, so any later use is a use-after-free-style
// bug that corrupts an unrelated in-flight packet (see the ownership
// rules on openflow.ClonePooled).
//
// Checks:
//
//   - use-after-release: a statement that reads a variable after an
//     earlier x.Release() in the same statement list (including a second
//     Release — a double release poisons the pool with duplicates).
//   - discarded clone: x.ClonePooled() used as a statement, dropping the
//     result; the clone can never be handed off or released.
//
// The checks are purely syntactic (go/ast, no type information): Release
// and ClonePooled name exactly one type in this tree, and keeping the
// tool free of golang.org/x/tools lets it build from a clean module
// cache. It speaks the protocol `go vet -vettool` expects: -V=full for
// build caching, -flags for flag discovery, and a JSON .cfg unit file
// per package. Run it as:
//
//	go build -o /tmp/poollint ./tools/poollint
//	go vet -vettool=/tmp/poollint ./...
//
// Exit status: 0 clean, 2 when any diagnostic is reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig is the subset of the JSON unit config the go command hands a
// vettool; fields we don't use (ImportMap, PackageFile, facts inputs) are
// simply not decoded.
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("poollint: ")
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No analyzer flags; the go command wants a JSON list.
			fmt.Println("[]")
			return
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("usage: poollint unit.cfg (invoke via go vet -vettool)")
	}
	diags, err := runUnit(args[0])
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.pos, d.msg)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// printVersion emits the fingerprint line the go command's build cache
// requires from a -vettool: "<name> version devel ... buildID=<hex>",
// where the hex digest covers the executable so rebuilding the tool
// invalidates cached vet results.
func printVersion() {
	name := os.Args[0]
	f, err := os.Open(name)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(name), h.Sum(nil))
}

// runUnit analyzes one package unit described by a JSON config file and
// returns its diagnostics. The (empty) facts file is always written:
// the go command caches it and feeds it to dependent units.
func runUnit(cfgPath string) ([]diagnostic, error) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("%s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only run: facts written, nothing to report.
		return nil, nil
	}
	var diags []diagnostic
	fset := token.NewFileSet()
	for _, name := range cfg.GoFiles {
		file, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		diags = append(diags, checkFile(fset, file)...)
	}
	return diags, nil
}
