// poollint is the retired standalone pooled-packet checker, kept as a
// thin alias so `make lint` invocations and docs predating the simlint
// suite keep working. It runs exactly the pool-discipline subset of
// simlint (the pool and poolown analyzers); the analyzer implementations
// and their fixtures live in tools/internal/simlint. New setups should
// run tools/simlint, which adds the hotpath, laneaffinity and
// determinism analyzers on top:
//
//	go build -o /tmp/poollint ./tools/poollint
//	go vet -vettool=/tmp/poollint ./...
//
// Exit status: 0 clean, 2 when any diagnostic is reported.
package main

import "smartsouth/tools/internal/simlint"

func main() {
	simlint.Main("poollint", simlint.PoolAnalyzers)
}
