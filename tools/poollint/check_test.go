package main

import (
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// lint parses src as a file and returns the diagnostics, formatted as
// "line: message" for easy assertion.
func lint(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	var out []string
	for _, d := range checkFile(fset, file) {
		out = append(out, strings.TrimPrefix(d.pos.String(), "fixture.go:")+": "+d.msg)
	}
	return out
}

func wantDiags(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %q, want %d %q", len(got), got, len(want), want)
	}
	for i := range want {
		if !strings.Contains(got[i], want[i]) {
			t.Errorf("diagnostic %d = %q, want it to contain %q", i, got[i], want[i])
		}
	}
}

func TestUseAfterRelease(t *testing.T) {
	got := lint(t, `package x
func f(pkt *Packet, sink func(*Packet)) {
	p := pkt.ClonePooled()
	sink(p)
	p.Release()
	sink(p)
}`)
	wantDiags(t, got, `6:7: use of pooled packet "p" after Release (released at line 5)`)
}

func TestDoubleRelease(t *testing.T) {
	got := lint(t, `package x
func f(pkt *Packet) {
	p := pkt.ClonePooled()
	p.Release()
	p.Release()
}`)
	wantDiags(t, got, `5:2: use of pooled packet "p" after Release`)
}

func TestFieldReadAfterRelease(t *testing.T) {
	got := lint(t, `package x
func f(pkt *Packet) int {
	p := pkt.ClonePooled()
	p.Release()
	return len(p.Tag)
}`)
	wantDiags(t, got, `use of pooled packet "p" after Release`)
}

func TestDiscardedClone(t *testing.T) {
	got := lint(t, `package x
func f(pkt *Packet) {
	pkt.ClonePooled()
}`)
	wantDiags(t, got, "3:2: result of ClonePooled discarded")
}

// TestCleanPatterns covers every sanctioned shape that appears in the
// simulator: release as last use, deferred release, rebinding after
// release, selector receivers, and release inside a loop body whose next
// iteration rebinds.
func TestCleanPatterns(t *testing.T) {
	got := lint(t, `package x
func f(pkt *Packet, ems []Emission, sink func(*Packet)) {
	p := pkt.ClonePooled()
	sink(p)
	p.Release()

	q := pkt.ClonePooled()
	defer q.Release()
	sink(q)

	p = pkt.ClonePooled() // rebinding ends the tracking
	sink(p)
	p.Release()

	for _, em := range ems {
		em.Pkt.Release() // selector receiver: not tracked
	}
	for range ems {
		c := pkt.ClonePooled()
		sink(c)
		c.Release()
	}
}`)
	wantDiags(t, got)
}

// TestReleaseInBranchNotTracked: a conditional Release may not execute,
// so a later use must not be reported.
func TestReleaseInBranchNotTracked(t *testing.T) {
	got := lint(t, `package x
func f(pkt *Packet, drop bool, sink func(*Packet)) {
	p := pkt.ClonePooled()
	if drop {
		p.Release()
		return
	}
	sink(p)
}`)
	wantDiags(t, got)
}

// TestSwitchCaseBodies: case clauses are statement lists of their own.
func TestSwitchCaseBodies(t *testing.T) {
	got := lint(t, `package x
func f(pkt *Packet, mode int, sink func(*Packet)) {
	switch mode {
	case 1:
		p := pkt.ClonePooled()
		p.Release()
		sink(p)
	}
}`)
	wantDiags(t, got, `use of pooled packet "p" after Release`)
}

// TestVetProtocol builds the tool and runs it under the real
// `go vet -vettool` protocol over the packages that use the pool. The
// tree must be clean — this is the same invocation CI runs.
func TestVetProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets packages; skipped with -short")
	}
	tool := filepath.Join(t.TempDir(), "poollint")
	root := "../.."
	build := exec.Command("go", "build", "-o", tool, "./tools/poollint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building poollint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool,
		"./internal/openflow/", "./internal/network/", "./internal/core/")
	vet.Dir = root
	vet.Env = append(os.Environ(), "GOFLAGS=")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=poollint reported findings on a clean tree: %v\n%s", err, out)
	}
}
