// simlint is the repo's multi-analyzer static-analysis suite, run as a
// go vet tool (-vettool). It mechanizes the simulator's engine
// invariants — the ones previously enforced only by AllocsPerRun spot
// checks, goldens and whatever schedules -race happened to see:
//
//	hotpath       //simlint:hotpath functions must be allocation-free
//	              on every path (no make/new/defer/go/map-range/boxing/
//	              dynamic calls), transitively through their callees.
//	laneaffinity  //simlint:lanelocal fields of the sharded simulator
//	              are only touched from owner methods or //simlint:barrier
//	              functions.
//	determinism   //simlint:deterministic packages don't read wall
//	              clocks, global math/rand, or leak map order into output.
//	pool          pooled-packet discipline (use-after-Release, double
//	              Release, discarded ClonePooled) — poollint v1.
//	poolown       the batch extensions: ExecBatch StoleInput stealing
//	              and controller ClearInbox recycling.
//
// Usage:
//
//	go build -o /tmp/simlint ./tools/simlint
//	go vet -vettool=/tmp/simlint ./...        # whole-tree, with facts
//	/tmp/simlint [-json] ./internal/network   # standalone spot check
//
// Suppress a finding with `//simlint:ignore [analyzer:] reason` on the
// flagged line or the line above. Every invariant, its failure mode and
// its suppression etiquette is catalogued in docs/LINTS.md.
//
// Exit status: 0 clean, 2 when any diagnostic is reported.
package main

import "smartsouth/tools/internal/simlint"

func main() {
	simlint.Main("simlint", simlint.AllAnalyzers)
}
