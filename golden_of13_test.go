package smartsouth

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"smartsouth/internal/dump"
	"smartsouth/internal/openflow"
)

// goldenRing20Programs compiles every service in the suite on Ring(20)
// with the OF1.3 backend and returns the retained Programs as one
// canonical JSON document. Services that claim conflicting EtherTypes are
// split across deployments exactly like the parity tests do; fixtures
// with configurable membership use single members so map iteration cannot
// leak into the output.
func goldenRing20Programs(t *testing.T) []byte {
	t.Helper()
	g := Ring(20)

	a := Deploy(g, WithBackend("of13"))
	if _, err := a.InstallTraversal(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.InstallSnapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.InstallSnapshotSplit(8); err != nil {
		t.Fatal(err)
	}
	if _, err := a.InstallAnycast(map[uint32][]int{1: {2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.InstallPriocast(map[uint32][]PrioMember{1: {{Node: 2, Prio: 3}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.InstallBlackholeTTL(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.InstallPktLoss(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.InstallCritical(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.InstallChaincast([][]int{{4}, {6}}); err != nil {
		t.Fatal(err)
	}

	b := Deploy(g, WithBackend("of13"))
	if _, err := b.InstallBlackholeCounter(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.InstallLoadMap(); err != nil {
		t.Fatal(err)
	}

	c := Deploy(g, WithBackend("of13"))
	if _, err := c.InstallMonitor(0, true); err != nil {
		t.Fatal(err)
	}

	var progs []*openflow.Program
	for _, d := range []*Deployment{a, b, c} {
		progs = append(progs, d.Programs()...)
	}
	sort.SliceStable(progs, func(i, j int) bool {
		if progs[i].Service != progs[j].Service {
			return progs[i].Service < progs[j].Service
		}
		return progs[i].Slot < progs[j].Slot
	})
	data, err := dump.MarshalPrograms(progs)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGoldenOF13Programs pins the OF1.3 lowering byte-for-byte: the
// compiled Programs of every service on Ring(20) must match the fixture
// captured before the backend-agnostic IR split. Any refactor of the
// compiler must keep this output identical.
func TestGoldenOF13Programs(t *testing.T) {
	got := goldenRing20Programs(t)
	path := filepath.Join("testdata", "golden_of13_ring20.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %d bytes", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("OF1.3 programs diverge from golden fixture (%d vs %d bytes); "+
			"if the change is intentional, regenerate with -update", len(got), len(want))
	}
}

// TestGoldenOF13Deterministic compiles the suite twice in one process and
// demands identical bytes, so the golden comparison above cannot be
// defeated by map-iteration order.
func TestGoldenOF13Deterministic(t *testing.T) {
	if string(goldenRing20Programs(t)) != string(goldenRing20Programs(t)) {
		t.Fatal("two compiles of the same suite produced different program dumps")
	}
}
