package smartsouth

import "testing"

// TestAllServicesCoexist deploys every service on one network and runs
// them in sequence: the slot mechanism must keep their tables, groups and
// EtherTypes from colliding.
func TestAllServicesCoexist(t *testing.T) {
	g := Grid(3, 4)
	d := Deploy(g, Options{})

	snap, err := d.InstallSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	any, err := d.InstallAnycast(map[uint32][]int{1: {11}})
	if err != nil {
		t.Fatal(err)
	}
	prio, err := d.InstallPriocast(map[uint32][]PrioMember{2: {{Node: 7, Prio: 3}, {Node: 10, Prio: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	crit, err := d.InstallCritical()
	if err != nil {
		t.Fatal(err)
	}
	bh, err := d.InstallBlackholeCounter()
	if err != nil {
		t.Fatal(err)
	}

	var delivered []int
	d.OnDeliver(func(sw int, pkt *Packet) { delivered = append(delivered, sw) })

	var at Time
	step := Time(10_000_000)
	snap.Trigger(0, at)
	at += step
	any.Send(0, 1, []byte("a"), at)
	at += step
	prio.Send(0, 2, []byte("p"), at)
	at += step
	crit.Check(5, at)
	at += step
	bh.Detect(0, at, 0)

	if err := d.Run(); err != nil {
		t.Fatal(err)
	}

	res, err := snap.Collect()
	if err != nil || res == nil {
		t.Fatalf("snapshot: %v %v", res, err)
	}
	if len(res.Nodes) != g.NumNodes() || len(res.Edges) != g.NumEdges() {
		t.Errorf("snapshot %d nodes %d edges, want %d/%d",
			len(res.Nodes), len(res.Edges), g.NumNodes(), g.NumEdges())
	}
	if len(delivered) != 2 || delivered[0] != 11 || delivered[1] != 10 {
		t.Errorf("deliveries = %v, want [11 10]", delivered)
	}
	if critical, ok := crit.Verdict(); !ok || critical {
		t.Errorf("criticality of grid node 5: got %v/%v, want false", critical, ok)
	}
	if rep, found, done := bh.Outcome(); !done || found {
		t.Errorf("blackhole outcome %v/%v/%v, want healthy", rep, found, done)
	}
}

func TestFacadeChaincastLoadMapAndVerify(t *testing.T) {
	g := Grid(3, 3)
	d := Deploy(g, Options{})
	cc, err := d.InstallChaincast([][]int{{4}, {8}})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := d.InstallLoadMap()
	if err != nil {
		t.Fatal(err)
	}
	var hits []int
	d.OnDeliver(func(sw int, _ *Packet) { hits = append(hits, sw) })
	cc.Send(0, nil, 0)
	lm.SendData(0, 8, 1_000_000)
	lm.Monitor(0, 2_000_000)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 || hits[0] != 4 || hits[1] != 8 || hits[2] != 8 {
		t.Errorf("deliveries = %v, want chain [4 8] plus data at 8", hits)
	}
	loads, done := lm.Loads()
	if !done || len(loads) != 2*g.NumEdges() {
		t.Errorf("loadmap: done=%v samples=%d", done, len(loads))
	}
	if errs := d.VerifyErrors(); len(errs) != 0 {
		t.Errorf("verify errors: %v", errs)
	}
}

func TestDeploymentAccounting(t *testing.T) {
	g := Ring(6)
	// Pinned: asserts group accounting; the stateful lowering installs
	// state entries instead of groups (covered by backend_test.go).
	d := Deploy(g, Options{}, WithBackend("of13"))
	if d.FlowEntries() != 0 || d.GroupEntries() != 0 || d.ConfigBytes() != 0 {
		t.Fatal("fresh deployment must be empty")
	}
	if _, err := d.InstallTraversal(); err != nil {
		t.Fatal(err)
	}
	if d.FlowEntries() == 0 || d.GroupEntries() == 0 || d.ConfigBytes() == 0 {
		t.Fatal("installation must account for rules and groups")
	}
}

func TestUninstallRemovesOneServiceLeavesOthers(t *testing.T) {
	g := Grid(3, 3)
	d := Deploy(g, Options{})
	snap, err := d.InstallSnapshot() // slot 0
	if err != nil {
		t.Fatal(err)
	}
	any, err := d.InstallAnycast(map[uint32][]int{1: {8}}) // slot 1
	if err != nil {
		t.Fatal(err)
	}
	before := d.FlowEntries()

	d.Uninstall(0) // remove the snapshot service
	if d.FlowEntries() >= before {
		t.Fatal("uninstall removed nothing")
	}
	if errs := d.VerifyErrors(); len(errs) != 0 {
		t.Fatalf("post-uninstall verify: %v", errs)
	}

	// The anycast service still works…
	delivered := 0
	d.OnDeliver(func(int, *Packet) { delivered++ })
	any.Send(0, 1, nil, d.Net.Sim.Now()+1)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatal("surviving service broken after uninstall")
	}
	// …and the removed snapshot no longer answers.
	d.Ctl.ClearInbox()
	snap.Trigger(0, d.Net.Sim.Now()+1)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if res, _ := snap.Collect(); res != nil {
		t.Fatal("uninstalled service still reporting")
	}
}

func TestGeneratorsReexported(t *testing.T) {
	if Line(3).NumEdges() != 2 || Ring(4).NumEdges() != 4 || Star(4).NumEdges() != 3 {
		t.Error("generator aliases broken")
	}
	if g, err := FatTree(4); err != nil || g.NumNodes() != 20 {
		t.Error("fat-tree alias broken")
	}
	if Tree(7, 2).NumEdges() != 6 || Grid(2, 2).NumEdges() != 4 {
		t.Error("tree/grid aliases broken")
	}
	if RandomConnected(9, 3, 1).NumNodes() != 9 || NewGraph(2).NumNodes() != 2 {
		t.Error("random/new aliases broken")
	}
}
