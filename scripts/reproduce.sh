#!/usr/bin/env bash
# Regenerate the full evaluation: unit/integration/property tests, every
# Table-2 and claims table, the benchmark metrics, and a randomized soak.
# Outputs land next to the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build + vet =="
go build ./...
go vet ./...

echo "== test suite =="
go test ./... 2>&1 | tee test_output.txt

echo "== benchmarks (paper-vs-measured metrics) =="
go test -bench=. -benchmem -benchtime=5x ./... 2>&1 | tee bench_output.txt

echo "== evaluation tables =="
go run ./cmd/benchtable -sizes 20,60,120,240 | tee benchtable_output.txt

echo "== randomized soak (oracle cross-checks) =="
go run ./cmd/soak -iters 300

echo "done: test_output.txt, bench_output.txt, benchtable_output.txt"
