#!/usr/bin/env bash
# simlint_negative.sh — proves the linter bites.
#
# A static-analysis gate that never fires is indistinguishable from one
# that is broken, so CI runs this leg alongside the tree-clean gate: copy
# the repo to a scratch dir, seed one heap allocation into the hot
# ExecBatch loop, and require `go vet -vettool=simlint` to fail on it
# with the hotpath diagnostic.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

tar -C "$root" --exclude=.git -cf - . | tar -C "$work" -xf -

# Seed the violation: one make() on the first line of ExecBatch.
sed -i 's|^func (sw \*Switch) ExecBatch(x \*ExecContext, in \[\]\*Packet, out \[\]Result) {$|&\n\t_ = make([]byte, 1)|' \
  "$work/internal/openflow/switch.go"
grep -q 'make(\[\]byte, 1)' "$work/internal/openflow/switch.go" || {
  echo "simlint_negative: failed to seed the allocation (ExecBatch signature changed?)" >&2
  exit 1
}

cd "$work"
go build -o "$work/simlint" ./tools/simlint

if out=$(GOFLAGS= go vet -vettool="$work/simlint" ./internal/openflow/ 2>&1); then
  echo "simlint_negative: vet PASSED on a seeded ExecBatch allocation — the linter is not biting" >&2
  echo "$out" >&2
  exit 1
fi
echo "$out" | grep -q '\[hotpath\]' || {
  echo "simlint_negative: vet failed but not with a hotpath finding:" >&2
  echo "$out" >&2
  exit 1
}
echo "$out" | grep -q 'heap allocation (make)' || {
  echo "simlint_negative: hotpath finding is not the seeded make():" >&2
  echo "$out" >&2
  exit 1
}
echo "simlint negative smoke: seeded ExecBatch allocation correctly flagged"
