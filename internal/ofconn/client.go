package ofconn

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"smartsouth/internal/ofwire"
	"smartsouth/internal/openflow"
)

// Client is the controller side of the control channel to one switch.
// After Start, a background goroutine demultiplexes incoming messages:
// packet-ins are delivered on PacketIns(), barrier replies complete
// pending Barrier calls, echo requests are answered automatically.
type Client struct {
	conn *Conn

	mu           sync.Mutex
	pending      map[uint32]chan struct{}          // barrier waiters by xid
	statsPending map[uint32]chan ofwire.GroupStats // group-stats waiters
	flowPending  map[uint32]chan []ofwire.FlowStat // flow-stats waiters
	features     *ofwire.Features

	packetIns chan ofwire.PacketIn
	readErr   error
	done      chan struct{}

	// OnPortStatus, if set before Start, observes port-status messages
	// (called from the receive goroutine).
	OnPortStatus func(ofwire.PortStatus)
}

// NewClient wraps a transport connection; call Start before use.
func NewClient(c net.Conn) *Client {
	return &Client{
		conn:         New(c),
		pending:      make(map[uint32]chan struct{}),
		statsPending: make(map[uint32]chan ofwire.GroupStats),
		flowPending:  make(map[uint32]chan []ofwire.FlowStat),
		packetIns:    make(chan ofwire.PacketIn, 64),
		done:         make(chan struct{}),
	}
}

// Dial connects to a switch agent over TCP and starts the session.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ofconn: dial %s: %w", addr, err)
	}
	cl := NewClient(c)
	if err := cl.Start(); err != nil {
		c.Close()
		return nil, err
	}
	return cl, nil
}

// Start performs the handshake, requests switch features and launches the
// receive loop.
func (cl *Client) Start() error {
	if err := cl.conn.Handshake(); err != nil {
		return err
	}
	if err := cl.conn.Send(ofwire.FeaturesRequest(cl.conn.NextXID())); err != nil {
		return err
	}
	h, body, err := cl.conn.Recv()
	if err != nil {
		return err
	}
	if h.Type != ofwire.TypeFeaturesReply {
		return fmt.Errorf("ofconn: expected FEATURES_REPLY, got type %d", h.Type)
	}
	f, err := ofwire.ParseFeaturesReply(body)
	if err != nil {
		return err
	}
	cl.features = &f
	go cl.readLoop()
	return nil
}

// Features returns the switch's advertised features (after Start).
func (cl *Client) Features() ofwire.Features {
	if cl.features == nil {
		return ofwire.Features{}
	}
	return *cl.features
}

// PacketIns returns the channel of packet-ins; it is closed when the
// session ends.
func (cl *Client) PacketIns() <-chan ofwire.PacketIn { return cl.packetIns }

func (cl *Client) readLoop() {
	defer close(cl.packetIns)
	defer close(cl.done)
	for {
		h, body, err := cl.conn.Recv()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				cl.mu.Lock()
				cl.readErr = err
				cl.mu.Unlock()
			}
			return
		}
		switch h.Type {
		case ofwire.TypePacketIn:
			pi, err := ofwire.ParsePacketIn(body)
			if err != nil {
				continue
			}
			cl.packetIns <- pi
		case ofwire.TypeBarrierReply:
			cl.mu.Lock()
			if ch, ok := cl.pending[h.XID]; ok {
				delete(cl.pending, h.XID)
				close(ch)
			}
			cl.mu.Unlock()
		case ofwire.TypeMultipartReply:
			kind, err := ofwire.MultipartKind(body)
			if err != nil {
				continue
			}
			switch kind {
			case ofwire.MultipartGroup:
				if gs, err := ofwire.ParseGroupStatsReply(body); err == nil {
					cl.mu.Lock()
					if ch, ok := cl.statsPending[h.XID]; ok {
						delete(cl.statsPending, h.XID)
						ch <- gs
					}
					cl.mu.Unlock()
				}
			case ofwire.MultipartFlow:
				if fs, err := ofwire.ParseFlowStatsReply(body); err == nil {
					cl.mu.Lock()
					if ch, ok := cl.flowPending[h.XID]; ok {
						delete(cl.flowPending, h.XID)
						ch <- fs
					}
					cl.mu.Unlock()
				}
			}
		case ofwire.TypePortStatus:
			if cl.OnPortStatus != nil {
				if ps, err := ofwire.ParsePortStatus(body); err == nil {
					cl.OnPortStatus(ps)
				}
			}
		case ofwire.TypeEchoRequest:
			_ = cl.conn.Send(ofwire.EchoReply(h.XID, body))
		case ofwire.TypeError:
			// Errors are recorded; rule installation is fire-and-forget
			// like real OpenFlow, and the barrier surfaces ordering.
			cl.mu.Lock()
			cl.readErr = fmt.Errorf("ofconn: switch reported error for xid %d", h.XID)
			cl.mu.Unlock()
		}
	}
}

// Err returns the first asynchronous session error, if any.
func (cl *Client) Err() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.readErr
}

// InstallFlow sends a FLOW_MOD adding e to the table.
func (cl *Client) InstallFlow(table int, e *openflow.FlowEntry) error {
	msg, err := ofwire.MarshalFlowMod(cl.conn.NextXID(), table, e)
	if err != nil {
		return err
	}
	return cl.conn.Send(msg)
}

// InstallGroup sends a GROUP_MOD adding g.
func (cl *Client) InstallGroup(g *openflow.GroupEntry) error {
	msg, err := ofwire.MarshalGroupMod(cl.conn.NextXID(), g)
	if err != nil {
		return err
	}
	return cl.conn.Send(msg)
}

// InstallBatch sends one switch's share of a compiled program — groups
// first (flow rules may reference them), then flow rules — framed into as
// few TypeBatch messages as the size cap allows. It returns the number of
// control-channel messages actually written, the figure the batched-vs-
// per-rule comparison is made of.
func (cl *Client) InstallBatch(flows []openflow.FlowRule, groups []*openflow.GroupEntry) (int, error) {
	subs := make([][]byte, 0, len(flows)+len(groups))
	for _, g := range groups {
		msg, err := ofwire.MarshalGroupMod(cl.conn.NextXID(), g)
		if err != nil {
			return 0, err
		}
		subs = append(subs, msg)
	}
	for _, fr := range flows {
		msg, err := ofwire.MarshalFlowMod(cl.conn.NextXID(), fr.Table, fr.Entry)
		if err != nil {
			return 0, err
		}
		subs = append(subs, msg)
	}
	batches := ofwire.MarshalBatches(cl.conn.NextXID, subs)
	for i, b := range batches {
		if err := cl.conn.Send(b); err != nil {
			return i, err
		}
	}
	return len(batches), nil
}

// PacketOut injects a packet at the switch, optionally with an explicit
// action list (none means "run the pipeline").
func (cl *Client) PacketOut(inPort int, actions []openflow.Action, pkt *openflow.Packet) error {
	msg, err := ofwire.MarshalPacketOut(cl.conn.NextXID(), ofwire.PacketOut{
		InPort: inPort, Actions: actions, Pkt: pkt,
	})
	if err != nil {
		return err
	}
	return cl.conn.Send(msg)
}

// GroupStats requests one group's statistics and blocks for the reply.
func (cl *Client) GroupStats(groupID uint32) (ofwire.GroupStats, error) {
	xid := cl.conn.NextXID()
	ch := make(chan ofwire.GroupStats, 1)
	cl.mu.Lock()
	cl.statsPending[xid] = ch
	cl.mu.Unlock()
	if err := cl.conn.Send(ofwire.MarshalGroupStatsRequest(xid, groupID)); err != nil {
		return ofwire.GroupStats{}, err
	}
	select {
	case gs := <-ch:
		return gs, nil
	case <-cl.done:
		return ofwire.GroupStats{}, fmt.Errorf("ofconn: session closed awaiting group stats: %w", cl.Err())
	}
}

// FlowStats requests the statistics of every entry of one table and
// blocks for the reply.
func (cl *Client) FlowStats(table int) ([]ofwire.FlowStat, error) {
	xid := cl.conn.NextXID()
	ch := make(chan []ofwire.FlowStat, 1)
	cl.mu.Lock()
	cl.flowPending[xid] = ch
	cl.mu.Unlock()
	if err := cl.conn.Send(ofwire.MarshalFlowStatsRequest(xid, table)); err != nil {
		return nil, err
	}
	select {
	case fs := <-ch:
		return fs, nil
	case <-cl.done:
		return nil, fmt.Errorf("ofconn: session closed awaiting flow stats: %w", cl.Err())
	}
}

// SendRaw pushes a pre-encoded message down the channel (testing and
// extensions).
func (cl *Client) SendRaw(msg []byte) error { return cl.conn.Send(msg) }

// Barrier sends a BARRIER_REQUEST and blocks until the reply arrives —
// the guarantee that everything sent before it has been applied.
func (cl *Client) Barrier() error {
	xid := cl.conn.NextXID()
	ch := make(chan struct{})
	cl.mu.Lock()
	cl.pending[xid] = ch
	cl.mu.Unlock()
	if err := cl.conn.Send(ofwire.BarrierRequest(xid)); err != nil {
		return err
	}
	select {
	case <-ch:
		return nil
	case <-cl.done:
		return fmt.Errorf("ofconn: session closed while waiting for barrier: %w", cl.Err())
	}
}

// Close terminates the session.
func (cl *Client) Close() error { return cl.conn.Close() }
