package ofconn

import (
	"net"
	"testing"

	"smartsouth/internal/openflow"
)

// BenchmarkInstallThroughput measures end-to-end flow-mod throughput over
// a real loopback TCP session (marshal + framing + parse + install).
func BenchmarkInstallThroughput(b *testing.B) {
	sw := openflow.NewSwitch(1, 8)
	ag := &Agent{SW: sw}
	l, addr := listenBench(b)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		_ = ag.Serve(c)
	}()
	cl, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	f := openflow.Field{Off: 3, Bits: 9}
	e := &openflow.FlowEntry{
		Priority: 10, Match: openflow.MatchEth(0x8801).WithField(f, 7),
		Actions: []openflow.Action{openflow.SetField{F: f, Value: 1}, openflow.Output{Port: 2}},
		Goto:    openflow.NoGoto, Cookie: "bench",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.InstallFlow(1, e); err != nil {
			b.Fatal(err)
		}
	}
	if err := cl.Barrier(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if sw.FlowEntryCount() != b.N {
		b.Fatalf("installed %d of %d", sw.FlowEntryCount(), b.N)
	}
}

// BenchmarkBarrierRoundTrip measures the request/reply latency floor of
// the session.
func BenchmarkBarrierRoundTrip(b *testing.B) {
	sw := openflow.NewSwitch(1, 2)
	ag := &Agent{SW: sw}
	l, addr := listenBench(b)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		_ = ag.Serve(c)
	}()
	cl, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Barrier(); err != nil {
			b.Fatal(err)
		}
	}
}

func listenBench(b *testing.B) (net.Listener, string) {
	b.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	return l, l.Addr().String()
}
