package ofconn

import (
	"net"
	"sync"
	"testing"
	"time"

	"smartsouth/internal/controller"
	"smartsouth/internal/core"
	"smartsouth/internal/network"
	"smartsouth/internal/ofwire"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// tcpPair returns two connected TCP endpoints on loopback. (net.Pipe is
// unusable here: the handshake is write-first on both sides and the pipe
// is unbuffered, so both peers would block in the write.)
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	a, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { a.Close(); r.c.Close() })
	return a, r.c
}

func TestHandshakeAndEcho(t *testing.T) {
	a, b := tcpPair(t)

	errc := make(chan error, 1)
	go func() {
		ca := New(a)
		if err := ca.Handshake(); err != nil {
			errc <- err
			return
		}
		// Serve one echo.
		h, body, err := ca.Recv()
		if err != nil {
			errc <- err
			return
		}
		if h.Type != ofwire.TypeEchoRequest {
			errc <- err
			return
		}
		errc <- ca.Send(ofwire.EchoReply(h.XID, body))
	}()

	cb := New(b)
	if err := cb.Handshake(); err != nil {
		t.Fatal(err)
	}
	if err := cb.Send(ofwire.EchoRequest(cb.NextXID(), []byte("hi"))); err != nil {
		t.Fatal(err)
	}
	h, body, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != ofwire.TypeEchoReply || string(body) != "hi" {
		t.Fatalf("echo reply: %+v %q", h, body)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestHandshakeRejectsWrongVersion(t *testing.T) {
	a, b := tcpPair(t)
	go func() {
		// A peer speaking version 1 (OpenFlow 1.0).
		msg := ofwire.Hello(1)
		msg[0] = 0x01
		b.Write(msg)
		// Drain our hello.
		buf := make([]byte, 16)
		b.Read(buf)
	}()
	if err := New(a).Handshake(); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

// agentRig starts a TCP listener backed by an Agent for the switch.
func agentRig(t *testing.T, ag *Agent) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			return
		}
		_ = ag.Serve(c)
	}()
	return l.Addr().String(), func() { l.Close(); wg.Wait() }
}

func TestAgentInstallsAndFeatures(t *testing.T) {
	sw := openflow.NewSwitch(7, 4)
	ag := &Agent{SW: sw}
	addr, stop := agentRig(t, ag)
	defer stop()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Features().DatapathID != 7 {
		t.Errorf("datapath id = %d", cl.Features().DatapathID)
	}

	f := openflow.Field{Off: 3, Bits: 5}
	e := &openflow.FlowEntry{
		Priority: 42,
		Match:    openflow.MatchEth(0x8801).WithInPort(2).WithField(f, 9),
		Actions:  []openflow.Action{openflow.SetField{F: f, Value: 3}, openflow.Output{Port: 1}},
		Goto:     5, Cookie: "tcp-rule",
	}
	if err := cl.InstallFlow(1, e); err != nil {
		t.Fatal(err)
	}
	if err := cl.InstallGroup(&openflow.GroupEntry{ID: 3, Type: openflow.GroupFF,
		Buckets: []openflow.Bucket{{WatchPort: 1, Actions: []openflow.Action{openflow.Output{Port: 1}}}}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Barrier(); err != nil {
		t.Fatal(err)
	}
	// The barrier guarantees the installs are applied.
	if sw.FlowEntryCount() != 1 || sw.GroupCount() != 1 {
		t.Fatalf("switch has %d flows %d groups", sw.FlowEntryCount(), sw.GroupCount())
	}
	got := sw.Table(1).Entries()[0]
	if got.Priority != 42 || got.Goto != 5 || got.Match.InPort != 2 {
		t.Fatalf("installed entry: %v", got)
	}
}

func TestAgentPacketOutAndPacketIn(t *testing.T) {
	sw := openflow.NewSwitch(1, 2)
	var mu sync.Mutex
	var injected []*openflow.Packet
	ag := &Agent{SW: sw, Inject: func(inPort int, actions []openflow.Action, pkt *openflow.Packet) {
		mu.Lock()
		injected = append(injected, pkt)
		mu.Unlock()
	}}
	addr, stop := agentRig(t, ag)
	defer stop()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	pkt := openflow.NewPacket(0x8802, 6)
	pkt.PushLabel(0x99)
	pkt.Payload = []byte("pp")
	if err := cl.PacketOut(openflow.PortController, nil, pkt); err != nil {
		t.Fatal(err)
	}
	if err := cl.Barrier(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(injected)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("injected %d packets", n)
	}

	// Packet-in the other way.
	if err := ag.SendPacketIn(2, pkt); err != nil {
		t.Fatal(err)
	}
	select {
	case pi := <-cl.PacketIns():
		if pi.InPort != 2 || pi.Pkt.EthType != 0x8802 || len(pi.Pkt.Labels) != 1 {
			t.Fatalf("packet-in %+v", pi)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet-in timed out")
	}
}

// TestAgentSurvivesMalformedMessage: a bad flow-mod must produce an
// OFPT_ERROR (surfaced via Client.Err) without killing the session.
func TestAgentSurvivesMalformedMessage(t *testing.T) {
	sw := openflow.NewSwitch(1, 2)
	ag := &Agent{SW: sw}
	addr, stop := agentRig(t, ag)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A flow-mod whose body parses but whose command is DELETE
	// (unsupported here): the agent replies with OFPT_ERROR, then the
	// session must keep working for a good install.
	e := &openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll(), Goto: openflow.NoGoto}
	bad, _ := ofwire.MarshalFlowMod(2, 0, e)
	bad[ofwire.HeaderLen+17] = 3 // OFPFC_DELETE
	if err := cl.SendRaw(bad); err != nil {
		t.Fatal(err)
	}
	if err := cl.InstallFlow(0, e); err != nil {
		t.Fatal(err)
	}
	if err := cl.Barrier(); err != nil {
		t.Fatal(err)
	}
	if sw.FlowEntryCount() != 1 {
		t.Fatalf("flows = %d, want 1 (bad mod rejected, good applied)", sw.FlowEntryCount())
	}
	if cl.Err() == nil {
		t.Error("error report from switch not surfaced")
	}
}

// TestFlowStatsOverTCP: the controller reads rule-hit counters through a
// flow-stats multipart round trip.
func TestFlowStatsOverTCP(t *testing.T) {
	sw := openflow.NewSwitch(1, 2)
	sw.AddFlow(3, &openflow.FlowEntry{Priority: 7, Match: openflow.MatchAll(),
		Goto: openflow.NoGoto, Actions: []openflow.Action{openflow.Output{Port: 1}}, Cookie: "hot"})
	// Generate 4 hits locally.
	for i := 0; i < 4; i++ {
		sw.Receive(openflow.NewPacket(1, 1), 2)
	}
	// No hits: packets start at table 0 which is empty… install a feeder.
	sw.AddFlow(0, &openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll(), Goto: 3, Cookie: "feed"})
	for i := 0; i < 4; i++ {
		sw.Receive(openflow.NewPacket(1, 1), 2)
	}

	ag := &Agent{SW: sw}
	addr, stop := agentRig(t, ag)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	stats, err := cl.FlowStats(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Packets != 4 || stats[0].Priority != 7 ||
		stats[0].Cookie != ofwire.CookieHash("hot") {
		t.Fatalf("stats = %+v", stats)
	}
	// Empty table: empty stats, no error.
	empty, err := cl.FlowStats(9)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty table stats: %v %v", empty, err)
	}
}

// TestSmartSouthOverTCP is the end-to-end proof: compile a real SmartSouth
// traversal, stream every flow and group entry to TCP agents as binary
// OpenFlow, trigger the service with a wire packet-out, and receive the
// completion report as a wire packet-in. The wire-installed network must
// behave identically to a directly-installed one.
func TestSmartSouthOverTCP(t *testing.T) {
	g := topo.RandomConnected(8, 5, 4)

	// Reference: direct installation.
	refNet := network.New(g, network.Options{})
	refCtl := controller.New(refNet)
	refTr, err := core.InstallTraversal(refCtl, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var refHops []network.Hop
	refNet.OnHop = func(h network.Hop, _ *openflow.Packet, _ bool) { refHops = append(refHops, h) }
	refTr.Trigger(0, 0)
	if _, err := refNet.Run(); err != nil {
		t.Fatal(err)
	}

	// Target: a fresh network whose switches are configured exclusively
	// over TCP. The compiled rules are read out of the reference switches
	// and replayed through the wire.
	tcpNet := network.New(g, network.Options{})
	var mu sync.Mutex
	type pending struct {
		sw     int
		inPort int
		pkt    *openflow.Packet
	}
	var queue []pending

	agents := make([]*Agent, g.NumNodes())
	clients := make([]*Client, g.NumNodes())
	var stops []func()
	for i := 0; i < g.NumNodes(); i++ {
		i := i
		agents[i] = &Agent{
			SW: tcpNet.Switch(i),
			Inject: func(inPort int, actions []openflow.Action, pkt *openflow.Packet) {
				mu.Lock()
				queue = append(queue, pending{sw: i, inPort: inPort, pkt: pkt})
				mu.Unlock()
			},
		}
		addr, stop := agentRig(t, agents[i])
		stops = append(stops, stop)
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
		for _, s := range stops {
			s()
		}
	}()

	// Stream the compiled configuration.
	for i := 0; i < g.NumNodes(); i++ {
		src := refNet.Switch(i)
		for _, tid := range src.TableIDs() {
			for _, e := range src.Table(tid).Entries() {
				if err := clients[i].InstallFlow(tid, e); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, grp := range src.Groups() {
			if err := clients[i].InstallGroup(grp); err != nil {
				t.Fatal(err)
			}
		}
		if err := clients[i].Barrier(); err != nil {
			t.Fatal(err)
		}
	}

	// Trigger over the wire at switch 0.
	l := core.NewLayout(g)
	trigger := l.NewPacket(core.EthTraversal)
	if err := clients[0].PacketOut(openflow.PortController, nil, trigger); err != nil {
		t.Fatal(err)
	}
	if err := clients[0].Barrier(); err != nil {
		t.Fatal(err)
	}

	// Drain the packet-out queue into the simulator and run.
	var tcpHops []network.Hop
	tcpNet.OnHop = func(h network.Hop, _ *openflow.Packet, _ bool) { tcpHops = append(tcpHops, h) }
	reports := 0
	tcpNet.OnPacketIn = func(sw int, pkt *openflow.Packet) {
		reports++
		// Forward the report to the controller over the wire.
		if err := agents[sw].SendPacketIn(pkt.InPort, pkt); err != nil {
			t.Errorf("packet-in relay: %v", err)
		}
	}
	mu.Lock()
	for _, p := range queue {
		tcpNet.Inject(p.sw, p.inPort, p.pkt, 0)
	}
	mu.Unlock()
	if _, err := tcpNet.Run(); err != nil {
		t.Fatal(err)
	}

	// The wire-configured data plane must walk exactly the same hops.
	if len(tcpHops) != len(refHops) {
		t.Fatalf("tcp run: %d hops, direct run: %d", len(tcpHops), len(refHops))
	}
	for i := range tcpHops {
		if tcpHops[i] != refHops[i] {
			t.Fatalf("hop %d differs: %v vs %v", i, tcpHops[i], refHops[i])
		}
	}
	if reports != 1 {
		t.Fatalf("completion reports = %d", reports)
	}
	// And the completion report arrives at the controller as a wire
	// packet-in.
	select {
	case pi := <-clients[0].PacketIns():
		if pi.Pkt.EthType != core.EthTraversal {
			t.Fatalf("unexpected packet-in %+v", pi)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no packet-in over the wire")
	}
}
