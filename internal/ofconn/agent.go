package ofconn

import (
	"errors"
	"fmt"
	"io"
	"net"

	"smartsouth/internal/ofwire"
	"smartsouth/internal/openflow"
)

// Agent is the switch side of the control channel: it owns an
// openflow.Switch and applies the controller's messages to it.
//
// The agent's Serve loop is the only goroutine touching the switch while
// it runs; embedders that also drive the data plane (e.g. the simulator)
// must sequence their access, which the OnBarrier hook supports: the
// controller sends a barrier after a batch, the hook fires before the
// reply, and the embedder knows all earlier messages have been applied.
type Agent struct {
	SW *openflow.Switch

	// Inject delivers a PACKET_OUT into the data plane: actions carried
	// by the message (possibly none), plus the in_port hint.
	Inject func(inPort int, actions []openflow.Action, pkt *openflow.Packet)

	// OnBarrier, if set, runs when a BARRIER_REQUEST has been processed,
	// before the reply is sent.
	OnBarrier func()

	conn *Conn
}

// Serve runs the agent message loop on the transport until the peer
// disconnects. It performs the server side of the handshake first.
func (a *Agent) Serve(c net.Conn) error {
	conn := New(c)
	a.conn = conn
	if err := conn.Handshake(); err != nil {
		return err
	}
	for {
		h, body, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		if err := a.handle(conn, h, body); err != nil {
			// Report the failure to the controller and keep serving; a
			// single malformed message must not kill the channel.
			_ = conn.Send(ofwire.Error(h.XID, 1, 1, nil))
		}
	}
}

func (a *Agent) handle(conn *Conn, h ofwire.Header, body []byte) error {
	switch h.Type {
	case ofwire.TypeEchoRequest:
		return conn.Send(ofwire.EchoReply(h.XID, body))
	case ofwire.TypeFeaturesRequest:
		return conn.Send(ofwire.FeaturesReply(h.XID, ofwire.Features{
			DatapathID: uint64(a.SW.ID),
			NumTables:  255,
		}))
	case ofwire.TypeFlowMod:
		fm, err := ofwire.ParseFlowMod(body)
		if err != nil {
			return err
		}
		a.SW.AddFlow(fm.Table, fm.Entry)
		return nil
	case ofwire.TypeGroupMod:
		g, err := ofwire.ParseGroupMod(body)
		if err != nil {
			return err
		}
		a.SW.AddGroup(g)
		return nil
	case ofwire.TypeBatch:
		subs, err := ofwire.ParseBatch(body)
		if err != nil {
			return err
		}
		for _, sub := range subs {
			sh, err := ofwire.ParseHeader(sub)
			if err != nil {
				return err
			}
			sb := sub[ofwire.HeaderLen:sh.Length]
			switch sh.Type {
			case ofwire.TypeFlowMod:
				fm, err := ofwire.ParseFlowMod(sb)
				if err != nil {
					return err
				}
				a.SW.AddFlow(fm.Table, fm.Entry)
			case ofwire.TypeGroupMod:
				g, err := ofwire.ParseGroupMod(sb)
				if err != nil {
					return err
				}
				a.SW.AddGroup(g)
			default:
				// Only installation messages batch; anything else would
				// need its own reply correlation.
				return fmt.Errorf("ofconn: agent: message type %d not allowed in a batch", sh.Type)
			}
		}
		// A batch is the remote install transaction; recompiling here gives
		// wire-installed programs the same compiled dispatch as local ones.
		a.SW.CompileDispatch()
		return nil
	case ofwire.TypePacketOut:
		po, err := ofwire.ParsePacketOut(body)
		if err != nil {
			return err
		}
		if a.Inject != nil {
			a.Inject(po.InPort, po.Actions, po.Pkt)
		}
		return nil
	case ofwire.TypeMultipartRequest:
		kind, err := ofwire.MultipartKind(body)
		if err != nil {
			return err
		}
		switch kind {
		case ofwire.MultipartGroup:
			gid, err := ofwire.ParseGroupStatsRequest(body)
			if err != nil {
				return err
			}
			g := a.SW.GroupByID(gid)
			if g == nil {
				return fmt.Errorf("ofconn: stats for missing group %d", gid)
			}
			gs := ofwire.GroupStats{ID: gid}
			for _, bk := range g.Buckets {
				gs.BucketPackets = append(gs.BucketPackets, bk.Packets)
			}
			return conn.Send(ofwire.MarshalGroupStatsReply(h.XID, gs))
		case ofwire.MultipartFlow:
			table, err := ofwire.ParseFlowStatsRequest(body)
			if err != nil {
				return err
			}
			var stats []ofwire.FlowStat
			a.SW.Table(table).Each(func(e *openflow.FlowEntry) bool {
				stats = append(stats, ofwire.FlowStat{
					Priority: e.Priority,
					Cookie:   ofwire.CookieHash(e.Cookie),
					Packets:  e.Packets,
				})
				return true
			})
			return conn.Send(ofwire.MarshalFlowStatsReply(h.XID, stats))
		default:
			return fmt.Errorf("ofconn: unsupported multipart kind %d", kind)
		}
	case ofwire.TypeBarrierRequest:
		if a.OnBarrier != nil {
			a.OnBarrier()
		}
		return conn.Send(ofwire.BarrierReply(h.XID))
	case ofwire.TypeEchoReply, ofwire.TypeHello:
		return nil // tolerated
	default:
		return fmt.Errorf("ofconn: agent: unsupported message type %d", h.Type)
	}
}

// SendPacketIn pushes a packet-in up the channel; safe to call from any
// goroutine (the Conn serialises writes).
func (a *Agent) SendPacketIn(inPort int, pkt *openflow.Packet) error {
	if a.conn == nil {
		return fmt.Errorf("ofconn: agent not serving")
	}
	return a.conn.Send(ofwire.MarshalPacketIn(a.conn.NextXID(), ofwire.PacketIn{InPort: inPort, Pkt: pkt}))
}

// SendPortStatus notifies the controller of a port liveness change.
func (a *Agent) SendPortStatus(port int, up bool) error {
	if a.conn == nil {
		return fmt.Errorf("ofconn: agent not serving")
	}
	return a.conn.Send(ofwire.MarshalPortStatus(a.conn.NextXID(), ofwire.PortStatus{Port: port, Up: up}))
}
