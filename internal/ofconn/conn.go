// Package ofconn implements an OpenFlow 1.3 control channel over any
// net.Conn: length-prefixed message framing, the HELLO handshake, ECHO
// keepalives, and the two roles SmartSouth needs — a switch-side Agent
// that applies FLOW_MOD/GROUP_MOD/PACKET_OUT messages to an
// openflow.Switch, and a controller-side Client that installs rules,
// injects packets and receives packet-ins.
//
// Everything on the wire uses package ofwire's encodings, so a SmartSouth
// controller built on this package speaks binary OpenFlow to its switches
// instead of calling them in-process.
package ofconn

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"smartsouth/internal/ofwire"
)

// maxMessage bounds a single OpenFlow message (the ofp_header length
// field is 16 bits, so this is the protocol maximum).
const maxMessage = 1 << 16

// Conn frames OpenFlow messages over a byte stream. Writes are
// serialised; Recv must be called from a single goroutine.
type Conn struct {
	c  net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	xid atomic.Uint32
}

// New wraps a transport connection.
func New(c net.Conn) *Conn {
	return &Conn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

// NextXID returns a fresh transaction id.
func (c *Conn) NextXID() uint32 { return c.xid.Add(1) }

// Send writes one complete message (header already included) and flushes.
func (c *Conn) Send(msg []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.bw.Write(msg); err != nil {
		return fmt.Errorf("ofconn: send: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("ofconn: flush: %w", err)
	}
	return nil
}

// Recv reads the next message, returning its header and body.
func (c *Conn) Recv() (ofwire.Header, []byte, error) {
	var hb [ofwire.HeaderLen]byte
	if _, err := io.ReadFull(c.br, hb[:]); err != nil {
		return ofwire.Header{}, nil, fmt.Errorf("ofconn: read header: %w", err)
	}
	h, err := ofwire.ParseHeader(hb[:])
	if err != nil {
		return ofwire.Header{}, nil, err
	}
	if int(h.Length) > maxMessage {
		return ofwire.Header{}, nil, fmt.Errorf("ofconn: message length %d exceeds protocol maximum", h.Length)
	}
	body := make([]byte, int(h.Length)-ofwire.HeaderLen)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return ofwire.Header{}, nil, fmt.Errorf("ofconn: read body: %w", err)
	}
	return h, body, nil
}

// Handshake exchanges HELLO messages and verifies the peer's version.
// Both sides call it; ordering does not matter.
func (c *Conn) Handshake() error {
	if err := c.Send(ofwire.Hello(c.NextXID())); err != nil {
		return err
	}
	h, _, err := c.Recv()
	if err != nil {
		return err
	}
	if h.Type != ofwire.TypeHello {
		return fmt.Errorf("ofconn: expected HELLO, got type %d", h.Type)
	}
	if h.Version != ofwire.Version {
		return fmt.Errorf("ofconn: peer speaks version %#x, want %#x", h.Version, ofwire.Version)
	}
	return nil
}

// Close closes the transport.
func (c *Conn) Close() error { return c.c.Close() }
