package metrics

import (
	"encoding/json"
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/core"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

func TestRegistryAttribution(t *testing.T) {
	r := NewRegistry()
	a := r.Register("snapshot", 0, 1, 0x8802)
	b := r.Register("blackhole", 1, 1, 0x8805, 0x8808)

	// EtherType ownership: first registrant wins.
	r.Register("imposter", 2, 1, 0x8802)
	if r.ByEth(0x8802) != a {
		t.Fatal("first EtherType registrant must win")
	}

	r.NotePacketOut(100, 0x8802, 50)
	r.NoteHostInject(200, 0x8805, 60)
	r.NotePacketIn(900, 0x8802, 70)
	r.NoteHop(150, 0x8802, 40)
	r.NoteHop(300, 0x8808, 40)
	r.NoteHop(999, 0xFFFF, 40) // unclaimed: dropped silently

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d services", len(snap))
	}
	sa, sb := snap[0], snap[1]
	if sa.Service != "snapshot" || sb.Service != "blackhole" {
		t.Fatalf("snapshot order: %s, %s (want by slot)", sa.Service, sb.Service)
	}
	if sa.PacketOuts != 1 || sa.PacketIns != 1 || sa.TriggerPackets != 1 {
		t.Fatalf("snapshot counters: %+v", sa)
	}
	if sa.OutBandMsgs != 2 || sa.OutBandBytes != 120 {
		t.Fatalf("out-band: %d msgs %d bytes", sa.OutBandMsgs, sa.OutBandBytes)
	}
	if sa.InBandMsgs != 1 || sa.InBandBytes != 40 {
		t.Fatalf("in-band: %+v", sa)
	}
	if sa.FirstAt != 100 || sa.LastAt != 900 || sa.WallClock != 800 {
		t.Fatalf("wallclock: first=%d last=%d wall=%d", sa.FirstAt, sa.LastAt, sa.WallClock)
	}
	if sb.HostInjects != 1 || sb.TriggerPackets != 1 || sb.InBandMsgs != 1 {
		t.Fatalf("blackhole counters: %+v", sb)
	}
	_ = b
}

func TestRegistryInstallAttributionBySlot(t *testing.T) {
	r := NewRegistry()
	r.Register("chaincast", 0, 2, 0x8809) // spans slots 0 and 1
	r.Register("critical", 2, 1, 0x8806)

	p := openflow.NewProgram("chaincast", 1) // second stage, covered by span
	p.Ensure(0, 2)
	p.AddFlow(0, 11, &openflow.FlowEntry{Cookie: "x"})
	p.AddGroup(0, &openflow.GroupEntry{ID: 1 << 20})
	r.NoteInstall(p)

	snap := r.Snapshot()
	if snap[0].FlowMods != 1 || snap[0].GroupMods != 1 || snap[0].InstallTxns != 1 {
		t.Fatalf("span attribution: %+v", snap[0])
	}
	if snap[1].FlowMods != 0 {
		t.Fatal("critical must not be credited")
	}
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Register("snapshot", 0, 1, 0x8802)
	r.NotePacketOut(1, 0x8802, 10)
	js, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []ServiceMetrics
	if err := json.Unmarshal(js, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0].Service != "snapshot" || decoded[0].PacketOuts != 1 {
		t.Fatalf("round trip: %+v", decoded)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Register("snapshot", 0, 1, 0x8802)
	r.NotePacketOut(1, 0x8802, 10)
	r.NoteHop(2, 0x8802, 10)
	p := openflow.NewProgram("snapshot", 0)
	p.Ensure(0, 2)
	p.AddFlow(0, 1, &openflow.FlowEntry{Cookie: "k"})
	r.NoteInstall(p)
	r.Reset()
	m := r.Snapshot()[0]
	if m.PacketOuts != 0 || m.InBandMsgs != 0 || m.WallClock != 0 {
		t.Fatalf("runtime counters survive reset: %+v", m)
	}
	if m.FlowMods != 1 {
		t.Fatal("install counters must survive reset")
	}
}

// TestMeteredControlPlane runs a real snapshot through the decorator and
// checks installs and trigger packets are attributed while the underlying
// controller still sees everything.
func TestMeteredControlPlane(t *testing.T) {
	g := topo.Ring(6)
	nw := network.New(g, network.Options{})
	ctl := controller.New(nw)
	reg := NewRegistry()
	cp := Meter(ctl, reg)

	reg.Register("snapshot", 0, 1, core.EthSnapshot)
	snap, err := core.InstallSnapshot(cp, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap.Trigger(0, 0)
	if _, err := cp.RunNetwork(); err != nil {
		t.Fatal(err)
	}

	m := reg.Snapshot()[0]
	if m.FlowMods == 0 || m.GroupMods == 0 || m.InstallTxns != g.NumNodes() {
		t.Fatalf("install attribution: %+v", m)
	}
	if m.FlowMods != ctl.Stats.FlowMods || m.GroupMods != ctl.Stats.GroupMods {
		t.Fatalf("decorator and controller disagree: %d/%d vs %d/%d",
			m.FlowMods, m.GroupMods, ctl.Stats.FlowMods, ctl.Stats.GroupMods)
	}
	if m.PacketOuts != 1 || m.TriggerPackets != 1 {
		t.Fatalf("trigger attribution: %+v", m)
	}
	if res, err := snap.Collect(); err != nil || res == nil || len(res.Nodes) != 6 {
		t.Fatalf("service broken under metering: %v %v", res, err)
	}
}
