package metrics

import (
	"smartsouth/internal/core"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
)

// Metered decorates a core.ControlPlane with per-service attribution:
// installs are credited to the service occupying the program's slot, and
// trigger packets to the service claiming the packet's EtherType. All
// other calls pass through unchanged, so services run on a Metered plane
// exactly as on the bare one.
type Metered struct {
	core.ControlPlane
	Reg *Registry
}

// Meter wraps a control plane with a registry.
func Meter(cp core.ControlPlane, reg *Registry) *Metered {
	return &Metered{ControlPlane: cp, Reg: reg}
}

var _ core.ControlPlane = (*Metered)(nil)

// InstallProgram attributes the program's rule counts, then installs.
func (m *Metered) InstallProgram(p *openflow.Program) {
	m.Reg.NoteInstall(p)
	m.ControlPlane.InstallProgram(p)
}

// PacketOut attributes a controller trigger by EtherType.
func (m *Metered) PacketOut(sw, inPort int, pkt *openflow.Packet, at network.Time) {
	m.Reg.NotePacketOut(at, pkt.EthType, pkt.Size())
	m.ControlPlane.PacketOut(sw, inPort, pkt, at)
}

// InjectHost attributes an in-band host trigger by EtherType.
func (m *Metered) InjectHost(sw int, pkt *openflow.Packet, at network.Time) {
	m.Reg.NoteHostInject(at, pkt.EthType, pkt.Size())
	m.ControlPlane.InjectHost(sw, pkt, at)
}
