// Package metrics aggregates per-service observability counters for a
// SmartSouth deployment: how many rules a service installed, how many
// trigger packets the controller sent, how many in-band messages its
// traversals generated (the Table 2 columns of the paper), how many
// packet-ins came back, and the traversal wall-clock in simulation time.
//
// The registry is fed from three directions: a Metered control-plane
// decorator attributes installs and trigger packets, a hop observer
// attributes in-band link crossings by EtherType, and packet-in hooks
// attribute collect messages. Services are identified by the slot range
// they occupy and by the EtherTypes of their tagged packets — the same
// two keys the data plane itself uses.
package metrics

import (
	"encoding/json"
	"sort"
	"sync"

	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
)

// ServiceMetrics is the aggregated view of one deployed service. All
// counters are monotonic since registration (or the last Reset).
type ServiceMetrics struct {
	Service    string   `json:"service"`
	Slot       int      `json:"slot"`
	Slots      int      `json:"slots"`
	EtherTypes []uint16 `json:"etherTypes,omitempty"`

	// Install-time cost: one InstallTxn per switch touched by a program
	// (the batched wire transaction), FlowMods/GroupMods the individual
	// rule messages inside them.
	InstallTxns int `json:"installTxns"`
	FlowMods    int `json:"flowMods"`
	StateMods   int `json:"stateMods,omitempty"`
	GroupMods   int `json:"groupMods"`

	// Runtime control-channel cost. TriggerPackets = PacketOuts +
	// HostInjects: every packet that entered the data plane to start a
	// traversal. PacketIns are the collect messages that came back.
	TriggerPackets int `json:"triggerPackets"`
	PacketOuts     int `json:"packetOuts"`
	HostInjects    int `json:"hostInjects"`
	PacketIns      int `json:"packetIns"`
	OutBandMsgs    int `json:"outBandMsgs"`
	OutBandBytes   int `json:"outBandBytes"`

	// In-band cost: link transmissions of the service's EtherTypes,
	// delivered or not — the "#msgs / size" columns of Table 2.
	InBandMsgs  int `json:"inBandMsgs"`
	InBandBytes int `json:"inBandBytes"`

	// FirstAt/LastAt bracket the service's data-plane activity in
	// simulation time; WallClock is their difference (0 if idle).
	FirstAt   network.Time `json:"firstAt"`
	LastAt    network.Time `json:"lastAt"`
	WallClock network.Time `json:"wallClock"`

	// RuleHits/GroupHits are the live data-plane counters of the rules the
	// service installed, read from its retained Programs at snapshot time.
	RuleHits  []openflow.RuleHit  `json:"ruleHits,omitempty"`
	GroupHits []openflow.GroupHit `json:"groupHits,omitempty"`

	active bool // FirstAt is meaningful only after the first activity
}

func (m *ServiceMetrics) touch(at network.Time) {
	if !m.active {
		m.active = true
		m.FirstAt, m.LastAt = at, at
		return
	}
	if at < m.FirstAt {
		m.FirstAt = at
	}
	if at > m.LastAt {
		m.LastAt = at
	}
}

// Registry holds the per-service metrics of one deployment. Safe for
// concurrent use: remote deployments feed it from the simulator and the
// packet-in reader goroutines.
type Registry struct {
	mu       sync.Mutex
	services []*ServiceMetrics
	byEth    map[uint16]*ServiceMetrics
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byEth: make(map[uint16]*ServiceMetrics)}
}

// Register creates the metrics entry for a service occupying slots
// [slot, slot+slots) and claiming the given EtherTypes for attribution.
// The first registrant of an EtherType wins (a monitor's inner snapshot
// does not steal a standalone snapshot's traffic). Returns the entry.
func (r *Registry) Register(service string, slot, slots int, eths ...uint16) *ServiceMetrics {
	if slots < 1 {
		slots = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := &ServiceMetrics{Service: service, Slot: slot, Slots: slots}
	for _, eth := range eths {
		if _, taken := r.byEth[eth]; !taken {
			r.byEth[eth] = m
			m.EtherTypes = append(m.EtherTypes, eth)
		}
	}
	r.services = append(r.services, m)
	return m
}

// bySlotLocked returns the entry whose slot range covers slot, or nil.
// Later registrations win so a slot reused after Uninstall attributes to
// the new occupant.
func (r *Registry) bySlotLocked(slot int) *ServiceMetrics {
	for i := len(r.services) - 1; i >= 0; i-- {
		m := r.services[i]
		if slot >= m.Slot && slot < m.Slot+m.Slots {
			return m
		}
	}
	return nil
}

// NoteInstall attributes a compiled program's installation cost to the
// service occupying the program's slot. Transient programs (runtime
// group-mods like a smart-counter reset) count as group mods only.
func (r *Registry) NoteInstall(p *openflow.Program) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.bySlotLocked(p.Slot)
	if m == nil {
		return
	}
	m.InstallTxns += len(p.SwitchIDs())
	m.FlowMods += p.FlowCount()
	m.StateMods += p.StateCount()
	m.GroupMods += p.GroupCount()
}

// NotePacketOut attributes a controller trigger packet by EtherType.
func (r *Registry) NotePacketOut(at network.Time, eth uint16, bytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byEth[eth]; m != nil {
		m.PacketOuts++
		m.OutBandMsgs++
		m.OutBandBytes += bytes
		m.touch(at)
	}
}

// NoteHostInject attributes an in-band host trigger by EtherType.
func (r *Registry) NoteHostInject(at network.Time, eth uint16, bytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byEth[eth]; m != nil {
		m.HostInjects++
		m.touch(at)
	}
}

// NotePacketIn attributes a collect message (packet-in) by EtherType.
func (r *Registry) NotePacketIn(at network.Time, eth uint16, bytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byEth[eth]; m != nil {
		m.PacketIns++
		m.OutBandMsgs++
		m.OutBandBytes += bytes
		m.touch(at)
	}
}

// NoteHop attributes one in-band link transmission by EtherType. Every
// attempt counts, delivered or not, matching network.InBandMsgs.
func (r *Registry) NoteHop(at network.Time, eth uint16, bytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byEth[eth]; m != nil {
		m.InBandMsgs++
		m.InBandBytes += bytes
		m.touch(at)
	}
}

// ByEth returns the service entry claiming the EtherType, or nil.
func (r *Registry) ByEth(eth uint16) *ServiceMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byEth[eth]
}

// Snapshot returns a copy of every service's metrics, ordered by slot,
// with TriggerPackets and WallClock computed.
func (r *Registry) Snapshot() []ServiceMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ServiceMetrics, len(r.services))
	for i, m := range r.services {
		c := *m
		c.TriggerPackets = c.PacketOuts + c.HostInjects
		if c.active {
			c.WallClock = c.LastAt - c.FirstAt
		}
		c.RuleHits = append([]openflow.RuleHit(nil), m.RuleHits...)
		c.GroupHits = append([]openflow.GroupHit(nil), m.GroupHits...)
		out[i] = c
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out
}

// ClearHits discards the attached hit counters of every service; call it
// before re-attaching a fresh read.
func (r *Registry) ClearHits() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.services {
		m.RuleHits, m.GroupHits = nil, nil
	}
}

// AttachHits appends rule/group hit counters to the service occupying
// slot. A multi-slot service accumulates the hits of all its programs;
// ClearHits first to replace rather than grow.
func (r *Registry) AttachHits(slot int, rules []openflow.RuleHit, groups []openflow.GroupHit) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.bySlotLocked(slot); m != nil {
		m.RuleHits = append(m.RuleHits, rules...)
		m.GroupHits = append(m.GroupHits, groups...)
	}
}

// JSON renders the snapshot as indented JSON.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

// Reset zeroes the runtime counters of every service (install counters
// survive, mirroring ResetRuntimeStats on the controller).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.services {
		m.PacketOuts, m.HostInjects, m.PacketIns = 0, 0, 0
		m.OutBandMsgs, m.OutBandBytes = 0, 0
		m.InBandMsgs, m.InBandBytes = 0, 0
		m.FirstAt, m.LastAt, m.active = 0, 0, false
		m.RuleHits, m.GroupHits = nil, nil
	}
}
