// Package remote implements core.ControlPlane over binary OpenFlow 1.3:
// every switch of a simulated network gets an ofconn.Agent behind a real
// TCP listener, the fabric dials one ofconn.Client per switch, and all
// rule installation, packet injection and packet-in collection crosses
// those sockets as wire messages. SmartSouth services run unchanged on
// top — which is the strongest evidence that the compiler emits nothing
// beyond standard OpenFlow.
package remote

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/ofconn"
	"smartsouth/internal/ofwire"
	"smartsouth/internal/openflow"
)

// Fabric couples a simulated network with per-switch OpenFlow sessions.
// It satisfies core.ControlPlane.
type Fabric struct {
	Net *network.Network
	// Stats counts control-channel traffic like the local controller.
	Stats controller.Stats
	// OnPacketIn, if set, observes every packet-in as it arrives off the
	// wire (the inbox is appended regardless). Set it before RunNetwork;
	// it is called from the per-session reader goroutines.
	OnPacketIn func(controller.PacketIn)

	agents    []*ofconn.Agent
	clients   []*ofconn.Client
	listeners []net.Listener
	serving   sync.WaitGroup
	programs  []*openflow.Program

	mu        sync.Mutex
	cond      *sync.Cond
	inbox     []controller.PacketIn
	queue     []pendingInject
	pendingAt map[int][]network.Time
	inTimes   map[int][]network.Time // punt times per switch, FIFO
	portDown  map[[2]int]bool        // built from OFPT_PORT_STATUS messages
	expectIns int
	gotIns    int
	expectPS  int
	gotPS     int
	firstErr  error
}

type pendingInject struct {
	sw     int
	inPort int
	pkt    *openflow.Packet
	at     network.Time
}

// New wires agents and clients around the network. Callers must Close the
// fabric when done.
func New(nw *network.Network) (*Fabric, error) {
	f := &Fabric{
		Net:       nw,
		pendingAt: make(map[int][]network.Time),
		inTimes:   make(map[int][]network.Time),
		portDown:  make(map[[2]int]bool),
	}
	f.cond = sync.NewCond(&f.mu)
	f.agents = make([]*ofconn.Agent, nw.NumSwitches())
	f.clients = make([]*ofconn.Client, nw.NumSwitches())

	nw.OnPortChange = func(sw, port int, up bool) {
		// The switch announces the flip with a port-status message.
		f.mu.Lock()
		f.expectPS++
		f.mu.Unlock()
		if err := f.agents[sw].SendPortStatus(port, up); err != nil {
			f.fail(fmt.Errorf("remote: port-status from %d: %w", sw, err))
		}
	}

	nw.OnPacketIn = func(sw int, pkt *openflow.Packet) {
		// Runs inside RunNetwork (the simulator's goroutine): relay the
		// report through the switch's TCP session. The punt time is
		// remembered per switch (TCP preserves per-session order) so the
		// inbox can be ordered across switches — different sessions race,
		// exactly like real packet-ins from different switches.
		f.mu.Lock()
		f.expectIns++
		f.inTimes[sw] = append(f.inTimes[sw], f.Net.Sim.Now())
		f.mu.Unlock()
		if err := f.agents[sw].SendPacketIn(pkt.InPort, pkt); err != nil {
			f.fail(fmt.Errorf("remote: packet-in relay from %d: %w", sw, err))
		}
	}

	for i := 0; i < nw.NumSwitches(); i++ {
		i := i
		f.agents[i] = &ofconn.Agent{
			SW: nw.Switch(i),
			Inject: func(inPort int, actions []openflow.Action, pkt *openflow.Packet) {
				f.mu.Lock()
				at := network.Time(0)
				if q := f.pendingAt[i]; len(q) > 0 {
					at, f.pendingAt[i] = q[0], q[1:]
				}
				f.queue = append(f.queue, pendingInject{sw: i, inPort: inPort, pkt: pkt, at: at})
				f.mu.Unlock()
			},
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("remote: listen for switch %d: %w", i, err)
		}
		f.listeners = append(f.listeners, l)
		f.serving.Add(1)
		go func(l net.Listener, ag *ofconn.Agent) {
			defer f.serving.Done()
			c, err := l.Accept()
			if err != nil {
				return
			}
			if err := ag.Serve(c); err != nil {
				f.fail(fmt.Errorf("remote: agent: %w", err))
			}
		}(l, f.agents[i])

		tc, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("remote: dial switch %d: %w", i, err)
		}
		cl := ofconn.NewClient(tc)
		cl.OnPortStatus = func(ps ofwire.PortStatus) {
			f.mu.Lock()
			if ps.Up {
				delete(f.portDown, [2]int{i, ps.Port})
			} else {
				f.portDown[[2]int{i, ps.Port}] = true
			}
			f.gotPS++
			f.cond.Broadcast()
			f.mu.Unlock()
		}
		if err := cl.Start(); err != nil {
			tc.Close()
			f.Close()
			return nil, fmt.Errorf("remote: session with switch %d: %w", i, err)
		}
		f.clients[i] = cl
		f.serving.Add(1)
		go func(sw int, cl *ofconn.Client) {
			defer f.serving.Done()
			for pi := range cl.PacketIns() {
				f.mu.Lock()
				f.Stats.PacketIns++
				f.Stats.OutBandBytes += pi.Pkt.Size()
				at := network.Time(0)
				if q := f.inTimes[sw]; len(q) > 0 {
					at, f.inTimes[sw] = q[0], q[1:]
				}
				rec := controller.PacketIn{Switch: sw, Pkt: pi.Pkt, At: at}
				f.inbox = append(f.inbox, rec)
				f.gotIns++
				hook := f.OnPacketIn
				f.cond.Broadcast()
				f.mu.Unlock()
				if hook != nil {
					hook(rec)
				}
			}
		}(i, cl)
	}
	return f, nil
}

func (f *Fabric) fail(err error) {
	f.mu.Lock()
	if f.firstErr == nil {
		f.firstErr = err
	}
	f.mu.Unlock()
}

// Err returns the first asynchronous fabric error.
func (f *Fabric) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstErr
}

// InstallProgram flushes a compiled program over the wire, batched: each
// switch's rules and groups travel in as few TypeBatch messages as the
// size cap allows, instead of one flow-mod/group-mod message per rule.
// FlowMods/GroupMods keep counting logical rules; InstallMsgs counts the
// messages actually written, which is where batching shows.
func (f *Fabric) InstallProgram(p *openflow.Program) {
	if p.StateCount() > 0 {
		// Binary OpenFlow 1.3 has no state-table messages; programs from
		// the stateful backend cannot cross this wire. The deployment
		// layer refuses the combination up front, so reaching this is a
		// programming error worth surfacing.
		f.fail(fmt.Errorf("remote: program %q contains %d state-table transitions, which OpenFlow 1.3 cannot carry", p.Service, p.StateCount()))
		return
	}
	for _, id := range p.SwitchIDs() {
		sp := p.At(id)
		msgs, err := f.clients[id].InstallBatch(sp.Flows, sp.Groups)
		f.mu.Lock()
		f.Stats.FlowMods += len(sp.Flows)
		f.Stats.GroupMods += len(sp.Groups)
		f.Stats.InstallMsgs += msgs
		f.mu.Unlock()
		if err != nil {
			f.fail(err)
			return
		}
	}
	if !p.Transient {
		f.mu.Lock()
		f.programs = append(f.programs, p)
		f.mu.Unlock()
	}
}

// Programs returns every program installed so far, in install order.
func (f *Fabric) Programs() []*openflow.Program {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*openflow.Program(nil), f.programs...)
}

// DropPrograms forgets retained programs covering the given slot; the
// deployment layer calls it when it uninstalls a service. Switch state is
// not touched here — rule removal stays with the caller.
func (f *Fabric) DropPrograms(slot int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	kept := f.programs[:0]
	for _, p := range f.programs {
		if !p.CoversSlot(slot) {
			kept = append(kept, p)
		}
	}
	f.programs = kept
}

// InstallFlow sends the entry as a wire FLOW_MOD (per-rule compatibility
// path; InstallProgram is the batched path).
func (f *Fabric) InstallFlow(sw, table int, e *openflow.FlowEntry) {
	f.mu.Lock()
	f.Stats.FlowMods++
	f.Stats.InstallMsgs++
	f.mu.Unlock()
	if err := f.clients[sw].InstallFlow(table, e); err != nil {
		f.fail(err)
	}
}

// InstallGroup sends the group as a wire GROUP_MOD.
func (f *Fabric) InstallGroup(sw int, g *openflow.GroupEntry) {
	f.mu.Lock()
	f.Stats.GroupMods++
	f.Stats.InstallMsgs++
	f.mu.Unlock()
	if err := f.clients[sw].InstallGroup(g); err != nil {
		f.fail(err)
	}
}

// ResetState is a no-op: an OpenFlow 1.3 fabric has no state tables to
// reset (stateful programs are rejected at install time).
func (f *Fabric) ResetState(tables ...int) {}

// ReadState reports "no such state table": OpenFlow 1.3 has no
// state-stats request.
func (f *Fabric) ReadState(sw, table int, key uint64) (uint64, bool) { return 0, false }

// PacketOut sends a wire PACKET_OUT; the agent's inject callback queues it
// for the simulator with the requested activation time (matched FIFO per
// switch, which TCP ordering guarantees).
func (f *Fabric) PacketOut(sw, inPort int, pkt *openflow.Packet, at network.Time) {
	f.mu.Lock()
	f.Stats.PacketOuts++
	f.Stats.OutBandBytes += pkt.Size()
	f.pendingAt[sw] = append(f.pendingAt[sw], at)
	f.mu.Unlock()
	if err := f.clients[sw].PacketOut(inPort, nil, pkt); err != nil {
		f.fail(err)
	}
}

// InjectHost injects in-band host traffic directly — hosts are part of
// the data plane, not the control channel.
func (f *Fabric) InjectHost(sw int, pkt *openflow.Packet, at network.Time) {
	f.Net.Inject(sw, openflow.PortController, pkt, at)
}

// Inbox returns the packet-ins received over the wire so far, ordered by
// their punt time: different switches' sessions race each other on the
// way up, so the controller reorders by the per-switch timestamps
// (services like the splitting snapshot depend on report order).
func (f *Fabric) Inbox() []controller.PacketIn {
	f.mu.Lock()
	out := append([]controller.PacketIn(nil), f.inbox...)
	f.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// ClearInbox empties the inbox.
func (f *Fabric) ClearInbox() {
	f.mu.Lock()
	f.inbox = nil
	f.mu.Unlock()
}

// RunNetwork synchronises with every session (barrier), moves the queued
// packet-outs into the simulator, runs it to quiescence, and waits for
// all relayed packet-ins to arrive back over TCP.
func (f *Fabric) RunNetwork() (int, error) {
	for _, cl := range f.clients {
		if err := cl.Barrier(); err != nil {
			return 0, fmt.Errorf("remote: barrier: %w", err)
		}
	}
	f.mu.Lock()
	queue := f.queue
	f.queue = nil
	f.mu.Unlock()
	for _, p := range queue {
		f.Net.Inject(p.sw, p.inPort, p.pkt, p.at)
	}

	steps, err := f.Net.Run()
	if err != nil {
		return steps, err
	}

	// Wait for the packet-in relays to land (bounded).
	deadline := time.Now().Add(5 * time.Second)
	f.mu.Lock()
	for f.gotIns < f.expectIns && time.Now().Before(deadline) && f.firstErr == nil {
		f.mu.Unlock()
		time.Sleep(time.Millisecond)
		f.mu.Lock()
	}
	lag := f.expectIns - f.gotIns
	err = f.firstErr
	f.mu.Unlock()
	if err != nil {
		return steps, err
	}
	if lag > 0 {
		return steps, fmt.Errorf("remote: %d packet-ins never arrived", lag)
	}
	return steps, f.WaitPortStatus()
}

// Now returns the simulator clock.
func (f *Fabric) Now() network.Time { return f.Net.Sim.Now() }

// PortLive reports the controller's port-status view, built exclusively
// from the OFPT_PORT_STATUS messages received over the wire (ports start
// up; a down message marks them, an up message clears them). Callers
// should WaitPortStatus (or RunNetwork, which waits) after failure
// injection so in-flight messages settle.
func (f *Fabric) PortLive(sw, port int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.portDown[[2]int{sw, port}]
}

// WaitPortStatus blocks until every announced port-status message has
// been received.
func (f *Fabric) WaitPortStatus() error {
	deadline := time.Now().Add(5 * time.Second)
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.gotPS < f.expectPS {
		if time.Now().After(deadline) {
			return fmt.Errorf("remote: %d port-status messages missing", f.expectPS-f.gotPS)
		}
		f.mu.Unlock()
		time.Sleep(time.Millisecond)
		f.mu.Lock()
	}
	return nil
}

// GroupCounter recovers a round-robin group's counter value with a
// group-stats multipart request: the bucket packet counters sum to the
// number of fetch-and-increments, so value = total mod bucket count.
func (f *Fabric) GroupCounter(sw int, id uint32) int {
	gs, err := f.clients[sw].GroupStats(id)
	if err != nil {
		f.fail(err)
		return -1
	}
	return gs.Value()
}

// FlowStats reads one table's rule-hit statistics over the wire.
func (f *Fabric) FlowStats(sw, table int) ([]ofwire.FlowStat, error) {
	return f.clients[sw].FlowStats(table)
}

// Close tears down all sessions and listeners.
func (f *Fabric) Close() {
	for _, cl := range f.clients {
		if cl != nil {
			cl.Close()
		}
	}
	for _, l := range f.listeners {
		l.Close()
	}
	f.serving.Wait()
}
