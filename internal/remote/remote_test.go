package remote

import (
	"fmt"
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/core"
	"smartsouth/internal/monitor"
	"smartsouth/internal/network"
	"smartsouth/internal/ofwire"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// The fabric must satisfy the services' control-plane contract.
var _ core.ControlPlane = (*Fabric)(nil)

func fabricRig(t *testing.T, g *topo.Graph) (*Fabric, *network.Network) {
	t.Helper()
	nw := network.New(g, network.Options{})
	f, err := New(nw)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, nw
}

// TestSnapshotOverWire runs the full snapshot service with every control
// message crossing real TCP sockets as binary OpenFlow, and checks the
// result is identical to a locally-installed run.
func TestSnapshotOverWire(t *testing.T) {
	g := topo.RandomConnected(10, 7, 9)

	// Local reference.
	refNet := network.New(g, network.Options{})
	refCtl := controller.New(refNet)
	refSnap, err := core.InstallSnapshot(refCtl, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	refSnap.Trigger(0, 0)
	if _, err := refNet.Run(); err != nil {
		t.Fatal(err)
	}
	refRes, err := refSnap.Collect()
	if err != nil || refRes == nil {
		t.Fatal("reference snapshot failed")
	}

	// Remote run.
	f, _ := fabricRig(t, g)
	snap, err := core.InstallSnapshot(f, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap.Trigger(0, 0)
	if _, err := f.RunNetwork(); err != nil {
		t.Fatal(err)
	}
	res, err := snap.Collect()
	if err != nil || res == nil {
		t.Fatalf("remote snapshot failed: %v %v", res, err)
	}
	if len(res.Nodes) != len(refRes.Nodes) || len(res.Edges) != len(refRes.Edges) {
		t.Fatalf("remote snapshot %d/%d, reference %d/%d",
			len(res.Nodes), len(res.Edges), len(refRes.Nodes), len(refRes.Edges))
	}
	for _, e := range refRes.Edges {
		if !res.HasEdge(e.U, e.V) {
			t.Errorf("edge %d-%d missing from remote snapshot", e.U, e.V)
		}
	}
	// The wire stats must show the same runtime message pattern: one
	// packet-out, one packet-in.
	if f.Stats.PacketOuts != 1 || f.Stats.PacketIns != 1 {
		t.Errorf("wire runtime stats: %+v", f.Stats)
	}
	if f.Stats.FlowMods == 0 || f.Stats.GroupMods == 0 {
		t.Error("offline installation not counted")
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalOverWire(t *testing.T) {
	g := topo.Line(5)
	f, _ := fabricRig(t, g)
	cr, err := core.InstallCritical(f, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for node, want := range map[int]bool{0: false, 2: true} {
		f.ClearInbox()
		cr.Check(node, f.Now()+1)
		if _, err := f.RunNetwork(); err != nil {
			t.Fatal(err)
		}
		crit, ok := cr.Verdict()
		if !ok || crit != want {
			t.Errorf("node %d: critical=%v ok=%v, want %v", node, crit, ok, want)
		}
	}
}

func TestAnycastOverWire(t *testing.T) {
	g := topo.Ring(6)
	f, nw := fabricRig(t, g)
	a, err := core.InstallAnycast(f, g, 0, map[uint32][]int{3: {4}})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	nw.OnSelf = func(sw int, _ *openflow.Packet) { got = append(got, sw) }
	a.Send(0, 3, []byte("w"), 0)
	if _, err := f.RunNetwork(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("deliveries %v", got)
	}
	// In-band service: no runtime wire messages at all.
	if f.Stats.PacketOuts != 0 || f.Stats.PacketIns != 0 {
		t.Errorf("wire runtime stats: %+v", f.Stats)
	}
}

func TestBlackholeCounterOverWire(t *testing.T) {
	g := topo.Grid(3, 3)
	f, nw := fabricRig(t, g)
	bh, err := core.InstallBlackholeCounter(f, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetBlackhole(4, 5, false); err != nil {
		t.Fatal(err)
	}
	// Activation times ride beside the wire messages (matched FIFO per
	// switch), so the standard twice-max-delay guard works unchanged.
	bh.Detect(0, 0, 0)
	if _, err := f.RunNetwork(); err != nil {
		t.Fatal(err)
	}
	rep, found, done := bh.Outcome()
	if !done || !found || rep == nil {
		t.Fatalf("no detection over the wire: %v %v %v", rep, found, done)
	}
	okFwd := rep.Switch == 4 && rep.Peer == 5
	okRev := rep.Switch == 5 && rep.Peer == 4
	if !okFwd && !okRev {
		t.Errorf("located %v, want an endpoint of 4-5", rep)
	}
	if f.Stats.RuntimeMsgs() != 3 {
		t.Errorf("wire runtime msgs = %d, want 3", f.Stats.RuntimeMsgs())
	}
}

// TestBatchedInstallUsesFewerWireMessages installs one service through the
// batched program path and then replays the identical program rule by rule
// on a fresh fabric: the per-rule compat path must cost one control-channel
// message per entry, the batched path a small fraction of that.
func TestBatchedInstallUsesFewerWireMessages(t *testing.T) {
	g := topo.Grid(3, 3)

	f, _ := fabricRig(t, g)
	tr, err := core.InstallTraversal(f, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	batched := f.Stats.InstallMsgs
	if batched == 0 {
		t.Fatal("batched install sent no messages")
	}

	f2, nw2 := fabricRig(t, g)
	p := tr.Prog
	for _, id := range p.SwitchIDs() {
		sp := p.At(id)
		for _, gr := range sp.Groups {
			f2.InstallGroup(id, gr)
		}
		for _, fr := range sp.Flows {
			f2.InstallFlow(id, fr.Table, fr.Entry)
		}
	}
	perRule := f2.Stats.InstallMsgs
	if want := p.FlowCount() + p.GroupCount(); perRule != want {
		t.Errorf("per-rule path sent %d messages, want one per entry (%d)", perRule, want)
	}
	if batched*4 > perRule {
		t.Errorf("batching ineffective: %d batched messages vs %d per-rule", batched, perRule)
	}
	// Logical rule counts are path-independent.
	if f.Stats.FlowMods != f2.Stats.FlowMods || f.Stats.GroupMods != f2.Stats.GroupMods {
		t.Errorf("logical counts diverge: batched %d/%d, per-rule %d/%d",
			f.Stats.FlowMods, f.Stats.GroupMods, f2.Stats.FlowMods, f2.Stats.GroupMods)
	}
	// Both installs produce a working traversal.
	tr.Trigger(0, f.Now()+1)
	if _, err := f.RunNetwork(); err != nil {
		t.Fatal(err)
	}
	if !tr.Completed() {
		t.Error("batched-installed traversal did not complete")
	}
	// Barrier with f2's sessions before reading its switches: per-rule
	// installs are applied by the agent goroutines asynchronously.
	if _, err := f2.RunNetwork(); err != nil {
		t.Fatal(err)
	}
	if nw2.Switch(0).FlowEntryCount() != f.Net.Switch(0).FlowEntryCount() {
		t.Errorf("switch 0 entry counts diverge: per-rule %d, batched %d",
			nw2.Switch(0).FlowEntryCount(), f.Net.Switch(0).FlowEntryCount())
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f2.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestPortStatusOverWire verifies the controller's liveness view is built
// from OFPT_PORT_STATUS messages, and that a failed link routes the wire-
// installed traversal around it.
func TestPortStatusOverWire(t *testing.T) {
	g := topo.Ring(6)
	f, nw := fabricRig(t, g)
	tr, err := core.InstallTraversal(f, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := g.PortTo(2, 3)
	if !f.PortLive(2, p) {
		t.Fatal("port should start live")
	}
	if err := nw.SetLinkDown(2, 3, true); err != nil {
		t.Fatal(err)
	}
	if err := f.WaitPortStatus(); err != nil {
		t.Fatal(err)
	}
	if f.PortLive(2, p) || f.PortLive(3, g.PortTo(3, 2)) {
		t.Error("port-status messages not reflected in the view")
	}
	tr.Trigger(0, f.Now()+1)
	if _, err := f.RunNetwork(); err != nil {
		t.Fatal(err)
	}
	if !tr.Completed() {
		t.Error("traversal must survive the failed link")
	}
	// Restore and check the view clears.
	if err := nw.SetLinkDown(2, 3, false); err != nil {
		t.Fatal(err)
	}
	if err := f.WaitPortStatus(); err != nil {
		t.Fatal(err)
	}
	if !f.PortLive(2, p) {
		t.Error("restored port still marked down")
	}
}

// TestGroupStatsOverWire verifies the controller can read smart counters
// out of band through group-stats multipart messages.
func TestGroupStatsOverWire(t *testing.T) {
	g := topo.Line(2)
	f, nw := fabricRig(t, g)
	l := core.NewLayout(g)
	field := l.Alloc("ctr", 3)
	sc, err := core.InstallSmartCounter(f, 0, 77, field, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Drive 7 fetch-and-increments through the pipeline locally.
	f.InstallFlow(0, 0, &openflow.FlowEntry{
		Priority: 1, Match: openflow.MatchAll(),
		Actions: []openflow.Action{sc.FetchInc(), openflow.Output{Port: openflow.PortSelf}},
		Goto:    openflow.NoGoto, Cookie: "drive",
	})
	for i := 0; i < 7; i++ {
		nw.Inject(0, 1, openflow.NewPacket(1, l.TagBytes()), network.Time(i)*1000)
	}
	if _, err := f.RunNetwork(); err != nil {
		t.Fatal(err)
	}
	if v := sc.Value(f); v != 7%5 {
		t.Errorf("wire-read counter = %d, want %d", v, 7%5)
	}
}

// TestRemainingServicesOverWire sweeps the rest of the service suite
// through the TCP control plane: priocast, chaincast, snapshot-split,
// packet-loss and load inference.
func TestRemainingServicesOverWire(t *testing.T) {
	g := topo.Grid(3, 3)
	f, nw := fabricRig(t, g)
	var deliveries []int
	nw.OnSelf = func(sw int, _ *openflow.Packet) { deliveries = append(deliveries, sw) }

	prio, err := core.InstallPriocast(f, g, 0, map[uint32][]core.PrioMember{
		1: {{Node: 2, Prio: 3}, {Node: 8, Prio: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	cc, err := core.InstallChaincast(f, g, 1, [][]int{{4}, {6}})
	if err != nil {
		t.Fatal(err)
	}
	split, err := core.InstallSnapshotSplit(f, g, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := core.InstallLoadMap(f, g, 4)
	if err != nil {
		t.Fatal(err)
	}

	prio.Send(0, 1, nil, f.Now()+1)
	if _, err := f.RunNetwork(); err != nil {
		t.Fatal(err)
	}
	cc.Send(0, nil, f.Now()+1)
	if _, err := f.RunNetwork(); err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 3 || deliveries[0] != 8 || deliveries[1] != 4 || deliveries[2] != 6 {
		t.Fatalf("deliveries = %v, want [8 4 6]", deliveries)
	}

	split.Trigger(0, f.Now()+1)
	if _, err := f.RunNetwork(); err != nil {
		t.Fatal(err)
	}
	res, frags, err := split.Collect()
	if err != nil || res == nil || len(res.Edges) != g.NumEdges() || frags < 2 {
		t.Fatalf("split over wire: res=%v frags=%d err=%v", res, frags, err)
	}

	f.ClearInbox()
	lm.SendData(0, 8, f.Now()+1)
	lm.SendData(0, 8, f.Now()+2)
	if _, err := f.RunNetwork(); err != nil {
		t.Fatal(err)
	}
	lm.Monitor(0, f.Now()+1)
	if _, err := f.RunNetwork(); err != nil {
		t.Fatal(err)
	}
	loads, done := lm.Loads()
	if !done {
		t.Fatal("loadmap incomplete over wire")
	}
	total := 0
	for _, v := range loads {
		total += v
	}
	if total == 0 {
		t.Error("no load inferred over wire")
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFlowStatsOverWireProfile reads rule-hit counters over the wire
// after a traversal: the root's start rule fired exactly once.
func TestFlowStatsOverWireProfile(t *testing.T) {
	g := topo.Ring(5)
	f, _ := fabricRig(t, g)
	tr, err := core.InstallTraversal(f, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Trigger(0, f.Now()+1)
	if _, err := f.RunNetwork(); err != nil {
		t.Fatal(err)
	}
	stats, err := f.FlowStats(0, 1) // root's entry table
	if err != nil {
		t.Fatal(err)
	}
	startCookie := ofwire.CookieHash(fmt.Sprintf("svc%04x/n%d/start", core.EthTraversal, 0))
	found := false
	for _, s := range stats {
		if s.Cookie == startCookie {
			found = true
			if s.Packets != 1 {
				t.Errorf("start rule hits = %d, want 1", s.Packets)
			}
		}
	}
	if !found {
		t.Fatal("start rule not present in wire stats")
	}
}

// TestMonitorOverWire runs the troubleshooting monitor with the TCP
// control plane.
func TestMonitorOverWire(t *testing.T) {
	g := topo.Ring(6)
	f, nw := fabricRig(t, g)
	m, err := monitor.New(f, g, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Round(); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetBlackhole(2, 3, false); err != nil {
		t.Fatal(err)
	}
	events, err := m.Round()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range events {
		if e.Kind == monitor.BlackholeFound {
			found = true
		}
	}
	if !found {
		t.Fatalf("watchdog over wire missed the hole: %v", events)
	}
}

func TestTTLBlackholeOverWire(t *testing.T) {
	g := topo.Ring(6)
	f, nw := fabricRig(t, g)
	bh, err := core.InstallBlackholeTTL(f, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetBlackhole(2, 3, false); err != nil {
		t.Fatal(err)
	}
	rep, err := bh.Locate(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Switch != 2 || rep.Peer != 3 {
		t.Fatalf("located %v, want 2->3", rep)
	}
}
