package topo

import (
	"fmt"
	"math"
	"math/rand"
)

// Line returns the path graph 0-1-…-(n-1).
func Line(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

// Ring returns the cycle graph on n nodes (n >= 3).
func Ring(n int) *Graph {
	g := Line(n)
	if n >= 3 {
		g.MustAddEdge(n-1, 0)
	}
	return g
}

// Star returns a star with node 0 at the centre.
func Star(n int) *Graph {
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
	}
	return g
}

// Tree returns a complete arity-ary tree on n nodes (node i's parent is
// (i-1)/arity).
func Tree(n, arity int) *Graph {
	if arity < 1 {
		arity = 2
	}
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge((i-1)/arity, i)
	}
	return g
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph {
	g := NewGraph(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// RandomConnected returns a connected random graph on n nodes with
// approximately extra additional non-tree edges, built from a random
// spanning tree plus uniformly chosen extra edges. Deterministic for a
// given seed.
func RandomConnected(n, extra int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		// Attach each node to a random earlier node: a uniform random
		// recursive tree over a random labelling.
		g.MustAddEdge(perm[i], perm[rng.Intn(i)])
	}
	maxExtra := n*(n-1)/2 - (n - 1)
	if extra > maxExtra {
		extra = maxExtra
	}
	for added := 0; added < extra; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
		added++
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment random graph: each new
// node attaches to m existing nodes with probability proportional to
// their degree — the classic heavy-tailed "internet-like" topology.
// Deterministic for a given seed; always connected.
func BarabasiAlbert(n, m int, seed int64) *Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	if n < 2 {
		return g
	}
	// Repeated-node list: each edge endpoint appears once per incident
	// edge, so uniform sampling is degree-proportional.
	var pool []int
	g.MustAddEdge(0, 1)
	pool = append(pool, 0, 1)
	for v := 2; v < n; v++ {
		attach := m
		if attach > v {
			attach = v
		}
		chosen := map[int]bool{}
		var order []int // keep insertion order: map iteration would break determinism
		for len(chosen) < attach {
			var cand int
			if rng.Intn(4) == 0 { // mix in uniform choice to avoid stalls
				cand = rng.Intn(v)
			} else {
				cand = pool[rng.Intn(len(pool))]
			}
			if cand != v && !chosen[cand] {
				chosen[cand] = true
				order = append(order, cand)
			}
		}
		for _, u := range order {
			g.MustAddEdge(v, u)
			pool = append(pool, v, u)
		}
	}
	return g
}

// Waxman returns a random geometric graph on the unit square: nodes pick
// random positions and each pair connects with probability
// alpha*exp(-dist/(beta*sqrt(2))) — the classic Waxman model for
// router-level topologies. A spanning tree over near neighbours is added
// first so the result is always connected. Deterministic for a seed.
func Waxman(n int, alpha, beta float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	if n < 2 {
		return g
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	dist := func(a, b int) float64 {
		dx, dy := xs[a]-xs[b], ys[a]-ys[b]
		return math.Sqrt(dx*dx + dy*dy)
	}
	// Connectivity backbone: attach each node to its nearest earlier one.
	for v := 1; v < n; v++ {
		best, bestD := 0, dist(v, 0)
		for u := 1; u < v; u++ {
			if d := dist(v, u); d < bestD {
				best, bestD = u, d
			}
		}
		g.MustAddEdge(v, best)
	}
	maxD := math.Sqrt2
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.HasEdge(u, v) {
				continue
			}
			if rng.Float64() < alpha*math.Exp(-dist(u, v)/(beta*maxD)) {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// FatTree returns the switch-level k-ary fat-tree (k even): (k/2)^2 core
// switches, k pods of k/2 aggregation and k/2 edge switches each. Hosts
// are not modelled; edge-switch host ports are left unconnected, exactly
// like an unpopulated physical switch. Total switches: 5k^2/4.
func FatTree(k int) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree arity must be even and >= 2, got %d", k)
	}
	h := k / 2
	numCore := h * h
	numAgg := k * h
	numEdge := k * h
	g := NewGraph(numCore + numAgg + numEdge)
	core := func(i int) int { return i }
	agg := func(pod, i int) int { return numCore + pod*h + i }
	edge := func(pod, i int) int { return numCore + numAgg + pod*h + i }
	for pod := 0; pod < k; pod++ {
		for a := 0; a < h; a++ {
			// Aggregation a of each pod connects to core row a.
			for c := 0; c < h; c++ {
				g.MustAddEdge(agg(pod, a), core(a*h+c))
			}
			for e := 0; e < h; e++ {
				g.MustAddEdge(agg(pod, a), edge(pod, e))
			}
		}
	}
	return g, nil
}

// Clos returns a two-stage folded-Clos (leaf-spine) fabric: nodes
// 0..spines-1 are spine switches, spines..spines+leaves-1 are leaves, and
// every leaf connects to every spine — the non-blocking datacenter fabric
// one tier flatter than a fat-tree. Total switches: spines + leaves;
// edges: spines * leaves.
func Clos(spines, leaves int) (*Graph, error) {
	if spines < 1 || leaves < 1 {
		return nil, fmt.Errorf("topo: clos needs >= 1 spine and >= 1 leaf, got %d/%d", spines, leaves)
	}
	g := NewGraph(spines + leaves)
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			g.MustAddEdge(spines+l, s)
		}
	}
	return g, nil
}

// ISP returns an ISP-style hierarchical topology: pops points of presence
// on a backbone ring with seeded random long-haul chords, each PoP holding
// routersPerPop routers — two gateways that carry the backbone links plus
// dual-homed access routers attached to both gateways. With
// routersPerPop == 1 the single router is the gateway. Node IDs are
// contiguous per PoP (PoP p owns p*routersPerPop..(p+1)*routersPerPop-1),
// which gives a BFS partitioner natural shard locality. Deterministic for
// a given seed; always connected for pops >= 1.
func ISP(pops, routersPerPop int, seed int64) (*Graph, error) {
	if pops < 1 || routersPerPop < 1 {
		return nil, fmt.Errorf("topo: isp needs >= 1 pop and >= 1 router per pop, got %d/%d", pops, routersPerPop)
	}
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(pops * routersPerPop)
	gw := func(pop, i int) int { return pop*routersPerPop + i }
	numGw := 1
	if routersPerPop >= 2 {
		numGw = 2
	}
	// Backbone ring over the PoP gateways; the second gateway, when
	// present, carries a parallel ring so a single gateway loss never
	// partitions the backbone. Two PoPs get a single pair of edges, one
	// PoP no backbone at all.
	ringEdges := pops
	if pops == 2 {
		ringEdges = 1
	} else if pops < 2 {
		ringEdges = 0
	}
	for p := 0; p < ringEdges; p++ {
		q := (p + 1) % pops
		g.MustAddEdge(gw(p, 0), gw(q, 0))
		if numGw == 2 {
			g.MustAddEdge(gw(p, 1), gw(q, 1))
		}
	}
	// Long-haul chords: ~pops/4 seeded shortcuts between distant PoPs,
	// giving the backbone the low diameter of a real core mesh.
	for added, want := 0, pops/4; added < want; {
		a, b := rng.Intn(pops), rng.Intn(pops)
		if a == b || g.HasEdge(gw(a, 0), gw(b, 0)) {
			continue
		}
		g.MustAddEdge(gw(a, 0), gw(b, 0))
		added++
	}
	// Intra-PoP: gateways interconnect; access routers dual-home.
	for p := 0; p < pops; p++ {
		if numGw == 2 {
			g.MustAddEdge(gw(p, 0), gw(p, 1))
		}
		for r := numGw; r < routersPerPop; r++ {
			g.MustAddEdge(gw(p, r), gw(p, 0))
			if numGw == 2 {
				g.MustAddEdge(gw(p, r), gw(p, 1))
			}
		}
	}
	return g, nil
}
