package topo

// Partition assigns every node to one of k shards and returns the
// node-to-shard map. The assignment is a greedy BFS growth: each shard is
// seeded at the lowest-numbered unassigned node and grown breadth-first
// (neighbours visited in port order) until it reaches its size target
// ceil(n/k), so connected regions of the graph land on the same shard and
// the edge cut stays low on topologies with locality (rings, grids,
// trees, pods of a fat-tree). The walk is fully deterministic: same graph
// and k, same partition — which is what makes a sharded simulation run
// reproducible.
//
// k <= 1 (or an empty graph) yields the all-zero partition; k > n is
// clamped to n so no shard is empty on non-empty graphs.
func Partition(g *Graph, k int) []int {
	n := g.NumNodes()
	part := make([]int, n)
	if k <= 1 || n == 0 {
		return part
	}
	if k > n {
		k = n
	}
	for i := range part {
		part[i] = -1
	}
	// The size target is recomputed per shard from what is left to
	// assign, so rounding never starves the trailing shards (a fixed
	// ceil(n/k) target can fill k-1 shards and leave the last empty).
	shard, size, assigned := 0, 0, 0
	target := (n + k - 1) / k
	queue := make([]int, 0, target)
	next := 0 // lowest candidate seed; only ever advances
	for assigned < n {
		var u int
		if len(queue) > 0 {
			u = queue[0]
			queue = queue[1:]
			if part[u] != -1 {
				continue
			}
		} else {
			for part[next] != -1 {
				next++
			}
			u = next
		}
		part[u] = shard
		assigned++
		size++
		if size >= target && shard < k-1 {
			shard++
			size = 0
			target = (n - assigned + (k - shard) - 1) / (k - shard)
			queue = queue[:0]
			continue
		}
		for p := 1; p <= g.Degree(u); p++ {
			if v, _, ok := g.Neighbor(u, p); ok && part[v] == -1 {
				queue = append(queue, v)
			}
		}
	}
	return part
}

// EdgeCut counts the edges whose endpoints land on different shards under
// the given partition — the cross-shard traffic a sharded simulation pays
// window synchronization for.
func EdgeCut(g *Graph, part []int) int {
	cut := 0
	for _, e := range g.Edges() {
		if part[e.U] != part[e.V] {
			cut++
		}
	}
	return cut
}
