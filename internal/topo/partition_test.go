package topo

import "testing"

// checkPartition asserts the structural invariants of any valid
// partition: every node assigned, shard ids dense in [0,k'), no shard
// empty, and determinism across calls.
func checkPartition(t *testing.T, g *Graph, k int) []int {
	t.Helper()
	part := Partition(g, k)
	if len(part) != g.NumNodes() {
		t.Fatalf("partition length %d, want %d", len(part), g.NumNodes())
	}
	want := k
	if want > g.NumNodes() {
		want = g.NumNodes()
	}
	if want < 1 {
		want = 1
	}
	sizes := make([]int, want)
	for v, s := range part {
		if s < 0 || s >= want {
			t.Fatalf("node %d assigned out-of-range shard %d (k=%d)", v, s, k)
		}
		sizes[s]++
	}
	if g.NumNodes() > 0 {
		for s, sz := range sizes {
			if sz == 0 {
				t.Fatalf("shard %d empty (k=%d, n=%d)", s, k, g.NumNodes())
			}
		}
	}
	again := Partition(g, k)
	for v := range part {
		if part[v] != again[v] {
			t.Fatalf("partition not deterministic at node %d", v)
		}
	}
	return part
}

func TestPartitionInvariants(t *testing.T) {
	ft, err := FatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	isp, err := ISP(16, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*Graph{
		"ring":    Ring(20),
		"line":    Line(7),
		"tree":    Tree(50, 2),
		"grid":    Grid(8, 8),
		"fattree": ft,
		"isp":     isp,
		"single":  Line(1),
	}
	for name, g := range graphs {
		for _, k := range []int{1, 2, 3, 4, 8, 100} {
			t.Run(name, func(t *testing.T) { checkPartition(t, g, k) })
		}
	}
}

// TestPartitionLocality: BFS growth must beat a round-robin assignment on
// topologies with locality — the whole point of the greedy partitioner.
func TestPartitionLocality(t *testing.T) {
	g := Ring(64)
	part := checkPartition(t, g, 4)
	cut := EdgeCut(g, part)
	// A ring split into 4 contiguous arcs cuts exactly 4 edges; allow a
	// little slack for target rounding but nothing near round-robin's 64.
	if cut > 8 {
		t.Fatalf("ring(64)/4 edge cut %d, want contiguous arcs (<= 8)", cut)
	}
	rr := make([]int, g.NumNodes())
	for v := range rr {
		rr[v] = v % 4
	}
	if rrCut := EdgeCut(g, rr); cut >= rrCut {
		t.Fatalf("BFS cut %d not better than round-robin cut %d", cut, rrCut)
	}
}

func TestPartitionBalance(t *testing.T) {
	g := Grid(10, 10)
	part := checkPartition(t, g, 4)
	sizes := make([]int, 4)
	for _, s := range part {
		sizes[s]++
	}
	for s, sz := range sizes {
		if sz > 25+13 || sz < 25-13 {
			t.Fatalf("shard %d size %d, want near 25: %v", s, sz, sizes)
		}
	}
}

func TestClos(t *testing.T) {
	g, err := Clos(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 20 || g.NumEdges() != 64 {
		t.Fatalf("clos(4,16): %d nodes %d edges, want 20/64", g.NumNodes(), g.NumEdges())
	}
	for l := 0; l < 16; l++ {
		if g.Degree(4+l) != 4 {
			t.Fatalf("leaf %d degree %d, want 4", l, g.Degree(4+l))
		}
	}
	for s := 0; s < 4; s++ {
		if g.Degree(s) != 16 {
			t.Fatalf("spine %d degree %d, want 16", s, g.Degree(s))
		}
	}
	if _, err := Clos(0, 3); err == nil {
		t.Fatal("Clos(0,3) accepted")
	}
}

func TestISP(t *testing.T) {
	g, err := ISP(20, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Fatalf("isp(20,10): %d nodes, want 200", g.NumNodes())
	}
	if !connected(g) {
		t.Fatal("isp(20,10) not connected")
	}
	// Determinism for a fixed seed.
	h, _ := ISP(20, 10, 7)
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("isp not deterministic: %d vs %d edges", g.NumEdges(), h.NumEdges())
	}
	for i, e := range g.Edges() {
		if h.Edges()[i] != e {
			t.Fatalf("isp not deterministic at edge %d", i)
		}
	}
	// Degenerate shapes still connect.
	for _, c := range [][2]int{{1, 1}, {1, 5}, {2, 1}, {3, 2}, {5, 1}} {
		g, err := ISP(c[0], c[1], 1)
		if err != nil {
			t.Fatalf("isp%v: %v", c, err)
		}
		if !connected(g) {
			t.Fatalf("isp%v not connected", c)
		}
	}
	if _, err := ISP(0, 1, 0); err == nil {
		t.Fatal("ISP(0,1) accepted")
	}
}

// connected reports graph connectivity by BFS from node 0.
func connected(g *Graph) bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for p := 1; p <= g.Degree(u); p++ {
			if v, _, ok := g.Neighbor(u, p); ok && !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == n
}
