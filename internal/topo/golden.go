package topo

// This file holds the plain-Go reference implementations used as test
// oracles: a faithful simulation of the paper's Algorithm 1 (the SmartSouth
// DFS template), reachability, and an articulation-point finder for the
// critical-node service.

// Hop is one in-band message crossing a link.
type Hop struct {
	From, FromPort int
	To, ToPort     int
}

// Traversal is the outcome of the golden Algorithm-1 simulation.
type Traversal struct {
	Hops        []Hop
	FirstVisits []int       // nodes in first-visit order; the root is first
	Parent      map[int]int // DFS parent port per visited non-root node
	Completed   bool        // the trigger packet returned to the root
	LostAt      *Hop        // set when a blackhole swallowed the packet
}

// PortPredicate reports a property of the directed port (u, p), e.g. "is
// this port failed" or "does this direction silently drop".
type PortPredicate func(u, p int) bool

// Never is the PortPredicate that always reports false.
func Never(int, int) bool { return false }

// GoldenDFS simulates Algorithm 1 of the paper on g, starting at root.
// portDead marks detectably-failed ports (fast-failover skips them);
// blackhole marks directed crossings that silently swallow the packet
// (liveness does NOT detect them — that is the point of the blackhole
// detection service).
//
// The simulation mirrors the pseudo code line by line: on first visit a
// node stores its parent port and probes ports in increasing order,
// skipping failed ports and the parent; expected returns (in == cur)
// advance to the next port; unexpected arrivals bounce straight back; when
// the port counter passes the degree the packet is returned to the parent,
// and the root finishing means termination.
func GoldenDFS(g *Graph, root int, portDead, blackhole PortPredicate) *Traversal {
	tr := &Traversal{Parent: make(map[int]int)}
	n := g.NumNodes()
	if n == 0 || root < 0 || root >= n {
		return tr
	}
	par := make([]int, n)
	cur := make([]int, n)

	// advance implements lines 12-19: starting from candidate port
	// `from`, find the next live non-parent port, or fall back to the
	// parent port (0 at the root, which means Finish).
	advance := func(i, from int) int {
		out := from
		if out == g.Degree(i)+1 {
			return par[i]
		}
		for portDead(i, out) || out == par[i] {
			out++
			if out == g.Degree(i)+1 {
				return par[i]
			}
		}
		return out
	}

	tr.FirstVisits = append(tr.FirstVisits, root)
	u := root
	out := advance(root, 1)
	cur[root] = out
	if out == 0 {
		// Isolated root or all ports failed: the traversal trivially
		// completes without sending anything.
		tr.Completed = true
		return tr
	}

	// 4E+2 is the exact worst case; anything above it is a bug.
	limit := 4*g.NumEdges() + 2
	for step := 0; step <= limit; step++ {
		v, vp, ok := g.Neighbor(u, out)
		if !ok {
			// advance never selects a non-existent port; ports 1..deg
			// are always connected in this model.
			panic("topo: golden DFS selected an unconnected port")
		}
		hop := Hop{From: u, FromPort: out, To: v, ToPort: vp}
		tr.Hops = append(tr.Hops, hop)
		if blackhole(u, out) {
			tr.LostAt = &hop
			return tr
		}

		in := vp
		var next int
		switch {
		case cur[v] == 0: // first visit (line 5)
			par[v] = in
			tr.FirstVisits = append(tr.FirstVisits, v)
			tr.Parent[v] = in
			next = advance(v, 1)
		case in == cur[v]: // expected return (line 7)
			next = advance(v, cur[v]+1)
		default: // unexpected: bounce (lines 9-11), cur unchanged
			u, out = v, in
			continue
		}
		cur[v] = next
		if next == 0 {
			// Only the root has parent 0: Finish (lines 24-25).
			tr.Completed = true
			return tr
		}
		u, out = v, next
	}
	// Exceeded the theoretical bound: report as incomplete.
	return tr
}

// Reachable returns the set of nodes reachable from root over ports for
// which portDead is false (checked in both directions).
func Reachable(g *Graph, root int, portDead PortPredicate) map[int]bool {
	seen := map[int]bool{root: true}
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for p := 1; p <= g.Degree(u); p++ {
			v, vp, _ := g.Neighbor(u, p)
			if portDead(u, p) || portDead(v, vp) || seen[v] {
				continue
			}
			seen[v] = true
			queue = append(queue, v)
		}
	}
	return seen
}

// Connected reports whether the whole graph is one component.
func Connected(g *Graph) bool {
	if g.NumNodes() == 0 {
		return true
	}
	return len(Reachable(g, 0, Never)) == g.NumNodes()
}

// ArticulationPoints returns the set of cut vertices of g (assumed
// connected is NOT required; the classic DFS low-link algorithm is run per
// component). This is the oracle for the critical-node service.
func ArticulationPoints(g *Graph) map[int]bool {
	n := g.NumNodes()
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
		disc[i] = -1
	}
	cut := make(map[int]bool)
	timer := 0

	// Iterative DFS to survive large graphs.
	type frame struct{ u, pi int }
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		rootChildren := 0
		stack := []frame{{u: s, pi: 0}}
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.u
			if f.pi < g.Degree(u) {
				f.pi++
				v, _, _ := g.Neighbor(u, f.pi)
				if disc[v] == -1 {
					parent[v] = u
					if u == s {
						rootChildren++
					}
					disc[v] = timer
					low[v] = timer
					timer++
					stack = append(stack, frame{u: v, pi: 0})
				} else if v != parent[u] && disc[v] < low[u] {
					low[u] = disc[v]
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[u]; p != -1 {
				if low[u] < low[p] {
					low[p] = low[u]
				}
				if p != s && low[u] >= disc[p] {
					cut[p] = true
				}
			}
		}
		if rootChildren > 1 {
			cut[s] = true
		}
	}
	return cut
}

// Metrics summarises a topology's shape, for characterising the families
// used in the evaluation.
type Metrics struct {
	Nodes, Edges int
	MinDegree    int
	MeanDegree   float64
	MaxDegree    int
	Diameter     int // -1 when disconnected
}

// Measure computes the metrics (diameter by BFS from every node).
func Measure(g *Graph) Metrics {
	n := g.NumNodes()
	m := Metrics{Nodes: n, Edges: g.NumEdges(), MaxDegree: g.MaxDegree()}
	if n == 0 {
		return m
	}
	m.MinDegree = g.Degree(0)
	total := 0
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		total += d
		if d < m.MinDegree {
			m.MinDegree = d
		}
	}
	m.MeanDegree = float64(total) / float64(n)

	dist := make([]int, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for p := 1; p <= g.Degree(u); p++ {
				v, _, _ := g.Neighbor(u, p)
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for _, d := range dist {
			if d == -1 {
				m.Diameter = -1
				return m
			}
			if d > m.Diameter {
				m.Diameter = d
			}
		}
	}
	return m
}

// BFSPaths returns, for every node reachable from dst, the port to take
// toward dst (next-hop routing table keyed by node). Used by the baseline
// controller's shortest-path forwarding.
func BFSPaths(g *Graph, dst int) map[int]int {
	next := make(map[int]int)
	seen := map[int]bool{dst: true}
	queue := []int{dst}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for p := 1; p <= g.Degree(u); p++ {
			v, vp, _ := g.Neighbor(u, p)
			if seen[v] {
				continue
			}
			seen[v] = true
			next[v] = vp // from v, the port toward u (and on to dst)
			queue = append(queue, v)
		}
	}
	return next
}
