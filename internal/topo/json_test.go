package topo

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	for name, g := range map[string]*Graph{
		"ring":  Ring(8),
		"star":  Star(5),
		"tree":  Tree(2, 3),
		"empty": NewGraph(3),
	} {
		raw, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Graph
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if back.NumNodes() != g.NumNodes() {
			t.Errorf("%s: %d nodes, want %d", name, back.NumNodes(), g.NumNodes())
		}
		// Edge replay must reproduce the exact port numbering.
		if !reflect.DeepEqual(back.Edges(), g.Edges()) {
			t.Errorf("%s: edges changed:\n  %v\n  %v", name, back.Edges(), g.Edges())
		}
		for u := 0; u < g.NumNodes(); u++ {
			for p := 1; p <= g.Degree(u); p++ {
				v1, p1, ok1 := g.Neighbor(u, p)
				v2, p2, ok2 := back.Neighbor(u, p)
				if v1 != v2 || p1 != p2 || ok1 != ok2 {
					t.Errorf("%s: neighbor(%d,%d) = (%d,%d,%v), want (%d,%d,%v)",
						name, u, p, v2, p2, ok2, v1, p1, ok1)
				}
			}
		}
	}
}

func TestGraphJSONRejectsBadEdges(t *testing.T) {
	var g Graph
	for name, raw := range map[string]string{
		"out of range": `{"nodes":2,"edges":[[0,5]]}`,
		"self loop":    `{"nodes":2,"edges":[[1,1]]}`,
		"duplicate":    `{"nodes":2,"edges":[[0,1],[1,0]]}`,
		"negative":     `{"nodes":-1,"edges":[]}`,
	} {
		if err := json.Unmarshal([]byte(raw), &g); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
