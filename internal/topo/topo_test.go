package topo

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddEdgeAssignsConsecutivePorts(t *testing.T) {
	g := NewGraph(3)
	e1 := g.MustAddEdge(0, 1)
	e2 := g.MustAddEdge(0, 2)
	if e1.PU != 1 || e1.PV != 1 || e2.PU != 2 || e2.PV != 1 {
		t.Errorf("ports: %+v %+v", e1, e2)
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 {
		t.Errorf("degrees: %d %d", g.Degree(0), g.Degree(1))
	}
	if v, vp, ok := g.Neighbor(0, 2); !ok || v != 2 || vp != 1 {
		t.Errorf("Neighbor(0,2) = %d,%d,%v", v, vp, ok)
	}
	if g.PortTo(2, 0) != 1 || g.PortTo(1, 2) != 0 {
		t.Error("PortTo wrong")
	}
}

func TestAddEdgeRejectsLoopsAndDuplicates(t *testing.T) {
	g := NewGraph(2)
	if _, err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	g.MustAddEdge(0, 1)
	if _, err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := g.AddEdge(0, 5); err == nil {
		t.Error("out-of-range accepted")
	}
}

// portsBijective checks the fundamental invariant: leaving u via p and
// coming back via the reported reverse port returns to (u, p).
func portsBijective(t *testing.T, g *Graph) {
	t.Helper()
	for u := 0; u < g.NumNodes(); u++ {
		for p := 1; p <= g.Degree(u); p++ {
			v, vp, ok := g.Neighbor(u, p)
			if !ok {
				t.Fatalf("port (%d,%d) unconnected", u, p)
			}
			bu, bp, ok := g.Neighbor(v, vp)
			if !ok || bu != u || bp != p {
				t.Fatalf("port bijection broken at (%d,%d)", u, p)
			}
		}
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name  string
		g     *Graph
		nodes int
		edges int
	}{
		{"line", Line(10), 10, 9},
		{"ring", Ring(10), 10, 10},
		{"star", Star(10), 10, 9},
		{"tree", Tree(15, 2), 15, 14},
		{"grid", Grid(4, 5), 20, 31},
		{"random", RandomConnected(30, 12, 1), 30, 41},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.g.NumNodes() != c.nodes || c.g.NumEdges() != c.edges {
				t.Fatalf("n=%d m=%d, want %d/%d", c.g.NumNodes(), c.g.NumEdges(), c.nodes, c.edges)
			}
			if !Connected(c.g) {
				t.Error("not connected")
			}
			portsBijective(t, c.g)
		})
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a := RandomConnected(25, 10, 42)
	b := RandomConnected(25, 10, 42)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("different sizes")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestFatTree(t *testing.T) {
	g, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 20 { // 4 core + 8 agg + 8 edge
		t.Fatalf("nodes = %d, want 20", g.NumNodes())
	}
	if g.NumEdges() != 32 { // 16 core-agg + 16 agg-edge
		t.Fatalf("edges = %d, want 32", g.NumEdges())
	}
	if !Connected(g) {
		t.Error("fat-tree not connected")
	}
	portsBijective(t, g)
	if _, err := FatTree(3); err == nil {
		t.Error("odd arity accepted")
	}
}

func TestGoldenDFSCompleteCoverage(t *testing.T) {
	for _, g := range []*Graph{Line(8), Ring(9), Tree(13, 3), Grid(4, 4), RandomConnected(20, 15, 7)} {
		tr := GoldenDFS(g, 0, Never, Never)
		if !tr.Completed {
			t.Fatal("traversal incomplete")
		}
		if len(tr.FirstVisits) != g.NumNodes() {
			t.Fatalf("visited %d of %d nodes", len(tr.FirstVisits), g.NumNodes())
		}
		want := 4*g.NumEdges() - 2*g.NumNodes() + 2
		if len(tr.Hops) != want {
			t.Fatalf("hops = %d, want 4E-2n+2 = %d", len(tr.Hops), want)
		}
	}
}

func TestGoldenDFSSingleNode(t *testing.T) {
	g := NewGraph(1)
	tr := GoldenDFS(g, 0, Never, Never)
	if !tr.Completed || len(tr.Hops) != 0 {
		t.Errorf("single node: completed=%v hops=%d", tr.Completed, len(tr.Hops))
	}
}

func TestGoldenDFSWithFailedLinks(t *testing.T) {
	g := Ring(6)
	// Fail the link between 2 and 3 (both directions, as a link failure
	// would be seen by both endpoints' liveness).
	p23 := g.PortTo(2, 3)
	p32 := g.PortTo(3, 2)
	dead := func(u, p int) bool { return (u == 2 && p == p23) || (u == 3 && p == p32) }
	tr := GoldenDFS(g, 0, dead, Never)
	if !tr.Completed {
		t.Fatal("traversal should survive a failed link on a ring")
	}
	if len(tr.FirstVisits) != 6 {
		t.Fatalf("visited %d nodes, want all 6 (ring minus one edge is a path)", len(tr.FirstVisits))
	}
}

func TestGoldenDFSBlackholeSwallows(t *testing.T) {
	g := Line(4)
	bh := func(u, p int) bool { return u == 1 && p == g.PortTo(1, 2) }
	tr := GoldenDFS(g, 0, Never, bh)
	if tr.Completed {
		t.Fatal("traversal must die at the blackhole")
	}
	if tr.LostAt == nil || tr.LostAt.From != 1 || tr.LostAt.To != 2 {
		t.Fatalf("LostAt = %+v", tr.LostAt)
	}
}

// Property: on random connected graphs the golden DFS from a random root
// visits every node and uses exactly 4E-2n+2 messages.
func TestQuickGoldenDFS(t *testing.T) {
	check := func(seed int64, nRaw, extraRaw uint8) bool {
		n := 2 + int(nRaw%40)
		extra := int(extraRaw % 30)
		g := RandomConnected(n, extra, seed)
		root := int(uint64(seed) % uint64(n))
		tr := GoldenDFS(g, root, Never, Never)
		return tr.Completed &&
			len(tr.FirstVisits) == n &&
			len(tr.Hops) == 4*g.NumEdges()-2*n+2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// bruteForceCut decides criticality by deleting the node and checking
// whether the remainder stays connected.
func bruteForceCut(g *Graph, v int) bool {
	if g.NumNodes() <= 2 {
		return false
	}
	dead := func(u, p int) bool {
		if u == v {
			return true
		}
		w, _, _ := g.Neighbor(u, p)
		return w == v
	}
	start := 0
	if start == v {
		start = 1
	}
	reach := Reachable(g, start, dead)
	return len(reach) != g.NumNodes()-1
}

func TestArticulationPointsAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := RandomConnected(14, int(seed%8), seed)
		cut := ArticulationPoints(g)
		for v := 0; v < g.NumNodes(); v++ {
			if cut[v] != bruteForceCut(g, v) {
				t.Fatalf("seed %d node %d: tarjan=%v brute=%v", seed, v, cut[v], bruteForceCut(g, v))
			}
		}
	}
}

func TestArticulationPointsKnownShapes(t *testing.T) {
	// Every interior node of a line is a cut vertex; no ring node is.
	cut := ArticulationPoints(Line(5))
	for v := 0; v < 5; v++ {
		want := v >= 1 && v <= 3
		if cut[v] != want {
			t.Errorf("line node %d: cut=%v want %v", v, cut[v], want)
		}
	}
	if len(ArticulationPoints(Ring(6))) != 0 {
		t.Error("ring has no cut vertices")
	}
	cut = ArticulationPoints(Star(5))
	if !cut[0] || len(cut) != 1 {
		t.Errorf("star: cut=%v, want only the centre", cut)
	}
}

func TestBFSPaths(t *testing.T) {
	g := Grid(3, 3)
	dst := 8
	next := BFSPaths(g, dst)
	if len(next) != 8 {
		t.Fatalf("routes for %d nodes, want 8", len(next))
	}
	// Following next-hops from every node must reach dst within n hops.
	for start := 0; start < 9; start++ {
		if start == dst {
			continue
		}
		u := start
		for hops := 0; u != dst; hops++ {
			if hops > 9 {
				t.Fatalf("routing loop from %d", start)
			}
			p, ok := next[u]
			if !ok {
				t.Fatalf("no route at %d", u)
			}
			u, _, _ = g.Neighbor(u, p)
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(60, 2, 7)
	if g.NumNodes() != 60 || !Connected(g) {
		t.Fatalf("n=%d connected=%v", g.NumNodes(), Connected(g))
	}
	portsBijective(t, g)
	// Edge count: 1 initial + ~2 per node after the first two.
	if g.NumEdges() < 59 || g.NumEdges() > 2*60 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	// Heavy tail: the maximum degree should well exceed the mean.
	mean := 2 * g.NumEdges() / g.NumNodes()
	if g.MaxDegree() < 2*mean {
		t.Errorf("max degree %d vs mean %d: no preferential attachment visible", g.MaxDegree(), mean)
	}
	// Determinism.
	h := BarabasiAlbert(60, 2, 7)
	if h.NumEdges() != g.NumEdges() {
		t.Error("not deterministic")
	}
	for i, e := range g.Edges() {
		if h.Edges()[i] != e {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestWaxman(t *testing.T) {
	g := Waxman(50, 0.4, 0.2, 11)
	if g.NumNodes() != 50 || !Connected(g) {
		t.Fatalf("n=%d connected=%v", g.NumNodes(), Connected(g))
	}
	portsBijective(t, g)
	if g.NumEdges() < 49 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	// Determinism.
	h := Waxman(50, 0.4, 0.2, 11)
	if h.NumEdges() != g.NumEdges() {
		t.Error("not deterministic")
	}
	// Higher alpha densifies.
	dense := Waxman(50, 0.9, 0.5, 11)
	if dense.NumEdges() <= g.NumEdges() {
		t.Errorf("alpha 0.9 gave %d edges vs %d", dense.NumEdges(), g.NumEdges())
	}
}

// TestTraversalOnNewFamilies: the compiled template works on the
// internet-like topologies too (sanity across generator families).
func TestGoldenOnNewFamilies(t *testing.T) {
	for _, g := range []*Graph{BarabasiAlbert(40, 2, 3), Waxman(40, 0.4, 0.2, 3)} {
		tr := GoldenDFS(g, 0, Never, Never)
		if !tr.Completed || len(tr.FirstVisits) != g.NumNodes() {
			t.Fatalf("golden DFS failed on family graph: %v %d", tr.Completed, len(tr.FirstVisits))
		}
	}
}

func TestMeasure(t *testing.T) {
	m := Measure(Ring(6))
	if m.Nodes != 6 || m.Edges != 6 || m.MinDegree != 2 || m.MaxDegree != 2 ||
		m.MeanDegree != 2 || m.Diameter != 3 {
		t.Fatalf("ring metrics: %+v", m)
	}
	m = Measure(Line(5))
	if m.Diameter != 4 || m.MinDegree != 1 {
		t.Fatalf("line metrics: %+v", m)
	}
	m = Measure(Star(5))
	if m.Diameter != 2 || m.MaxDegree != 4 {
		t.Fatalf("star metrics: %+v", m)
	}
	// Disconnected: two isolated nodes.
	m = Measure(NewGraph(2))
	if m.Diameter != -1 {
		t.Fatalf("disconnected diameter: %+v", m)
	}
}

func TestDOT(t *testing.T) {
	g := Line(3)
	out := g.DOT("line")
	for _, want := range []string{`graph "line"`, "0 -- 1", "1 -- 2", "taillabel=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestReachable(t *testing.T) {
	g := Line(5)
	dead := func(u, p int) bool { return u == 2 && p == g.PortTo(2, 3) }
	r := Reachable(g, 0, dead)
	if len(r) != 3 || r[3] || r[4] {
		t.Errorf("reachable = %v, want {0,1,2}", r)
	}
}
