// Package topo provides port-numbered undirected graphs, topology
// generators, and plain-Go reference ("golden") algorithms. The golden
// algorithms are used only as test oracles and baselines; the data plane
// never calls them.
//
//simlint:deterministic
package topo

import (
	"fmt"
	"strings"
)

// half is one endpoint's view of an edge: the neighbour node and the
// neighbour's port for the reverse direction.
type half struct {
	peer     int
	peerPort int
}

// Edge is an undirected edge with the port numbers on both endpoints.
type Edge struct {
	U, V   int // node IDs, U < V by construction order is NOT guaranteed
	PU, PV int // port of the edge at U and at V (1-based)
}

// Graph is a simple undirected graph whose nodes have consecutively
// numbered ports 1..Degree(v), exactly the model OpenFlow switches expose.
// Node IDs are 0..NumNodes-1.
type Graph struct {
	adj   [][]half // adj[u][p-1] is the half edge at port p of u
	edges []Edge
}

// NewGraph returns a graph with n isolated nodes.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]half, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns all edges in insertion order. Callers must not mutate.
func (g *Graph) Edges() []Edge { return g.edges }

// Degree returns the number of ports of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns the largest degree in the graph (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	d := 0
	for u := range g.adj {
		if len(g.adj[u]) > d {
			d = len(g.adj[u])
		}
	}
	return d
}

// AddEdge connects u and v, assigning the next free port on each side, and
// returns the resulting edge. Self-loops and duplicate edges are rejected:
// the SmartSouth model (like the paper) assumes a simple graph.
func (g *Graph) AddEdge(u, v int) (Edge, error) {
	if u == v {
		return Edge{}, fmt.Errorf("topo: self-loop at node %d", u)
	}
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return Edge{}, fmt.Errorf("topo: edge (%d,%d) out of range", u, v)
	}
	for _, h := range g.adj[u] {
		if h.peer == v {
			return Edge{}, fmt.Errorf("topo: duplicate edge (%d,%d)", u, v)
		}
	}
	pu := len(g.adj[u]) + 1
	pv := len(g.adj[v]) + 1
	g.adj[u] = append(g.adj[u], half{peer: v, peerPort: pv})
	g.adj[v] = append(g.adj[v], half{peer: u, peerPort: pu})
	e := Edge{U: u, V: v, PU: pu, PV: pv}
	g.edges = append(g.edges, e)
	return e, nil
}

// MustAddEdge is AddEdge for generators with known-good inputs.
func (g *Graph) MustAddEdge(u, v int) Edge {
	e, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return e
}

// Neighbor returns the node and its port reached by leaving u via port p,
// or ok=false if p is not a connected port of u.
func (g *Graph) Neighbor(u, p int) (v, vport int, ok bool) {
	if u < 0 || u >= len(g.adj) || p < 1 || p > len(g.adj[u]) {
		return 0, 0, false
	}
	h := g.adj[u][p-1]
	return h.peer, h.peerPort, true
}

// PortTo returns the port of u that leads to v, or 0 if they are not
// adjacent.
func (g *Graph) PortTo(u, v int) int {
	for p, h := range g.adj[u] {
		if h.peer == v {
			return p + 1
		}
	}
	return 0
}

// HasEdge reports adjacency.
func (g *Graph) HasEdge(u, v int) bool { return g.PortTo(u, v) != 0 }

// DOT renders the graph in Graphviz format with port numbers as edge
// labels, for visualisation and debugging.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n  node [shape=circle];\n", name)
	for _, e := range g.edges {
		fmt.Fprintf(&b, "  %d -- %d [taillabel=%d, headlabel=%d];\n", e.U, e.V, e.PU, e.PV)
	}
	b.WriteString("}\n")
	return b.String()
}
