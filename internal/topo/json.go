package topo

import (
	"encoding/json"
	"fmt"
)

// graphJSON is the wire form of a Graph: the node count and the edges in
// insertion order. Port numbers are not serialized — AddEdge assigns
// them deterministically from edge order, so replaying the edge list
// reproduces the exact port numbering of the original graph. That
// property is what makes the encoding safe to feed to tools (oflint)
// that resolve ports against compiled programs.
type graphJSON struct {
	Nodes int      `json:"nodes"`
	Edges [][2]int `json:"edges"`
}

// MarshalJSON encodes the graph as {"nodes": n, "edges": [[u,v], ...]}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	gj := graphJSON{Nodes: g.NumNodes(), Edges: make([][2]int, 0, g.NumEdges())}
	for _, e := range g.edges {
		gj.Edges = append(gj.Edges, [2]int{e.U, e.V})
	}
	return json.Marshal(gj)
}

// UnmarshalJSON rebuilds the graph by replaying the edge list, restoring
// the original port numbering.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var gj graphJSON
	if err := json.Unmarshal(data, &gj); err != nil {
		return err
	}
	if gj.Nodes < 0 {
		return fmt.Errorf("topo: negative node count %d", gj.Nodes)
	}
	ng := NewGraph(gj.Nodes)
	for _, e := range gj.Edges {
		if _, err := ng.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	*g = *ng
	return nil
}
