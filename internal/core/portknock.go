package core

import (
	"fmt"

	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// EthKnock carries knock packets; EthGuarded carries traffic to the
// protected service.
const (
	EthKnock   = 0x880C
	EthGuarded = 0x880D
)

// MaxKnockCode bounds knock codes (1..MaxKnockCode); the code field is
// sized for it.
const MaxKnockCode = 15

// PortKnock guards a service behind a secret knock sequence — the
// canonical keyed-state application of the stateful-SDN line of work, and
// the sharpest illustration of the paper's Table-2 contrast outside the
// traversal services:
//
// Under the stateful backend the guard switch holds a state table keyed by
// client id. Each correct knock advances the client's state machine one
// step at wire speed; a wrong knock resets it; once the full sequence has
// been seen the client's guarded traffic is delivered — all with zero
// controller messages.
//
// Under OF13 the switch has nowhere to keep per-client progress, so every
// knock is punted to the controller (one packet-in each), which tracks the
// sequence in Process and installs a per-client allow rule (one flow-mod)
// when it completes. Same service definition, same observable behaviour,
// but the control loop runs through the controller.
type PortKnock struct {
	G     *topo.Graph
	L     *Layout
	Guard int
	Seq   []uint32
	Prog  *Program

	FClient openflow.Field
	FCode   openflow.Field

	t0       int
	progress map[uint32]int // of13: per-client knock progress
	cursor   int            // of13: packet-ins consumed by Process
	ctl      ControlPlane
	be       Backend
}

// InstallPortKnock compiles and installs the knock guard at node guard
// with the given secret sequence.
func InstallPortKnock(c ControlPlane, g *topo.Graph, slot int, guard int, seq []uint32, opts ...InstallOption) (*PortKnock, error) {
	if guard < 0 || guard >= g.NumNodes() {
		return nil, fmt.Errorf("core: guard node %d out of range", guard)
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("core: empty knock sequence")
	}
	for _, code := range seq {
		if code < 1 || code > MaxKnockCode {
			return nil, fmt.Errorf("core: knock code %d outside 1..%d", code, MaxKnockCode)
		}
	}

	cfg := resolveInstall(opts)
	// Port knocking never traverses, so it skips the DFS layout entirely:
	// the packet carries only the client id and the knock code under both
	// backends. The backend difference is all in rules and messages.
	l := &Layout{G: g}
	pk := &PortKnock{
		G: g, L: l, Guard: guard, Seq: seq, ctl: c, be: cfg.Backend,
		FClient:  l.Alloc("client", 8),
		FCode:    l.Alloc("code", openflow.BitsFor(MaxKnockCode)),
		progress: make(map[uint32]int),
	}
	t0, _, _ := Slot(slot)
	pk.t0 = t0

	p := newProgram("portknock", slot, g, l)

	ethKnock := openflow.MatchEth(EthKnock)
	ethGuarded := openflow.MatchEth(EthGuarded)

	// Both traffic classes ride destination forwarding toward the guard.
	next := topo.BFSPaths(g, guard)
	for node, port := range next {
		for _, m := range []struct {
			match openflow.Match
			tag   string
		}{{ethKnock, "knock"}, {ethGuarded, "guarded"}} {
			p.AddFlow(node, 0, &openflow.FlowEntry{
				Priority: 100, Match: m.match,
				Actions: []openflow.Action{openflow.Output{Port: port}},
				Goto:    openflow.NoGoto,
				Cookie:  fmt.Sprintf("portknock/n%d/%s-to-guard", node, m.tag),
			})
		}
	}
	for _, m := range []struct {
		match openflow.Match
		tag   string
	}{{ethKnock, "knock"}, {ethGuarded, "guarded"}} {
		p.AddFlow(guard, 0, &openflow.FlowEntry{
			Priority: 100, Match: m.match, Goto: t0,
			Cookie: fmt.Sprintf("portknock/n%d/%s-dispatch", guard, m.tag),
		})
	}

	if cfg.Backend.Stateful() {
		// The guard's EFSM, keyed by client id: state s = number of
		// consecutive correct knocks, state len(seq) = open. State 0 keeps
		// the "fresh flow" meaning the state store requires.
		p.SetStateKey(guard, t0, []openflow.Field{pk.FClient})
		open := uint64(len(seq))
		for s, code := range seq {
			nextState := uint64(s + 1)
			p.AddState(guard, t0, &openflow.StateEntry{
				Priority: 300,
				State:    uint64(s),
				Match:    ethKnock.WithField(pk.FCode, uint64(code)),
				SetState: &nextState,
				Goto:     openflow.NoGoto,
				Cookie:   fmt.Sprintf("portknock/n%d/step%d", guard, s),
			})
		}
		zero := uint64(0)
		p.AddState(guard, t0, &openflow.StateEntry{
			Priority: 200, AnyState: true, Match: ethKnock,
			SetState: &zero, Goto: openflow.NoGoto,
			Cookie: fmt.Sprintf("portknock/n%d/reset", guard),
		})
		p.AddState(guard, t0, &openflow.StateEntry{
			Priority: 150, State: open, Match: ethGuarded,
			Actions: []openflow.Action{openflow.Output{Port: openflow.PortSelf}},
			Goto:    openflow.NoGoto,
			Cookie:  fmt.Sprintf("portknock/n%d/open", guard),
		})
		p.AddState(guard, t0, &openflow.StateEntry{
			Priority: 100, AnyState: true, Match: ethGuarded,
			Goto:   openflow.NoGoto,
			Cookie: fmt.Sprintf("portknock/n%d/deny", guard),
		})
	} else {
		// OF13: punt every knock; deny guarded traffic until Process has
		// installed the client's allow rule.
		p.AddFlow(guard, t0, &openflow.FlowEntry{
			Priority: 300, Match: ethKnock,
			Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
			Goto:    openflow.NoGoto,
			Cookie:  fmt.Sprintf("portknock/n%d/punt", guard),
		})
		p.AddFlow(guard, t0, &openflow.FlowEntry{
			Priority: 100, Match: ethGuarded,
			Goto:   openflow.NoGoto,
			Cookie: fmt.Sprintf("portknock/n%d/deny", guard),
		})
	}
	if err := installProgram(c, p); err != nil {
		return nil, err
	}
	pk.Prog = p
	return pk, nil
}

// Knock sends one knock packet for client id from switch from.
func (pk *PortKnock) Knock(from int, id, code uint32, at network.Time) {
	pkt := pk.L.NewPacket(EthKnock)
	pkt.Store(pk.FClient, uint64(id))
	pkt.Store(pk.FCode, uint64(code))
	pk.ctl.InjectHost(from, pkt, at)
}

// SendData sends one guarded data packet for client id from switch from.
// It is delivered to the protected service at the guard only if the
// client's knock sequence is complete.
func (pk *PortKnock) SendData(from int, id uint32, payload []byte, at network.Time) {
	pkt := pk.L.NewPacket(EthGuarded)
	pkt.Store(pk.FClient, uint64(id))
	pkt.Payload = payload
	pk.ctl.InjectHost(from, pkt, at)
}

// Process runs the OF13 controller assist: it consumes the punted knock
// packet-ins, advances each client's progress exactly as the stateful
// EFSM would, and installs a per-client allow rule when a sequence
// completes. It returns the ids opened this call. Under the stateful
// backend there is nothing to do and it returns nil.
func (pk *PortKnock) Process() []uint32 {
	if pk.be.Stateful() {
		return nil
	}
	var opened []uint32
	inbox := pk.ctl.Inbox()
	for ; pk.cursor < len(inbox); pk.cursor++ {
		pi := inbox[pk.cursor]
		if pi.Pkt.EthType != EthKnock || pi.Switch != pk.Guard {
			continue
		}
		id := uint32(pi.Pkt.Load(pk.FClient))
		code := uint32(pi.Pkt.Load(pk.FCode))
		s := pk.progress[id]
		if s < len(pk.Seq) && code == pk.Seq[s] {
			pk.progress[id] = s + 1
			if s+1 == len(pk.Seq) {
				pk.allow(id)
				opened = append(opened, id)
			}
		} else {
			pk.progress[id] = 0
		}
	}
	return opened
}

// allow installs the per-client open rule (the OF13 flow-mod).
func (pk *PortKnock) allow(id uint32) {
	p := openflow.NewProgram("portknock-allow", pk.Prog.Slot)
	p.Transient = true
	p.TagBytes = pk.L.TagBytes()
	p.Ensure(pk.Guard, pk.G.Degree(pk.Guard))
	p.AddFlow(pk.Guard, pk.t0, &openflow.FlowEntry{
		Priority: 200,
		Match:    openflow.MatchEth(EthGuarded).WithField(pk.FClient, uint64(id)),
		Actions:  []openflow.Action{openflow.Output{Port: openflow.PortSelf}},
		Goto:     openflow.NoGoto,
		Cookie:   fmt.Sprintf("portknock/n%d/allow-c%d", pk.Guard, id),
	})
	pk.ctl.InstallProgram(p)
}

// Open reports whether client id's knock sequence is currently complete —
// read from the guard's state table under the stateful backend, from the
// controller's progress map under OF13.
func (pk *PortKnock) Open(id uint32) bool {
	if pk.be.Stateful() {
		v, ok := pk.ctl.ReadState(pk.Guard, pk.t0, uint64(id))
		return ok && v == uint64(len(pk.Seq))
	}
	return pk.progress[id] == len(pk.Seq)
}
