package core

import (
	"testing"
	"testing/quick"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/topo"
)

func priocastRig(t *testing.T, g *topo.Graph, groups map[uint32][]PrioMember) (*Priocast, *network.Network, *controller.Controller, *[]delivery) {
	t.Helper()
	net := network.New(g, network.Options{})
	c := controller.New(net)
	p, err := InstallPriocast(c, g, 0, groups)
	if err != nil {
		t.Fatal(err)
	}
	return p, net, c, captureSelf(net)
}

func TestPriocastPicksHighestPriority(t *testing.T) {
	g := topo.Grid(4, 4)
	p, net, c, got := priocastRig(t, g, map[uint32][]PrioMember{
		9: {{Node: 3, Prio: 2}, {Node: 12, Prio: 7}, {Node: 15, Prio: 5}},
	})
	p.Send(0, 9, []byte("x"), 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || (*got)[0].sw != 12 {
		t.Fatalf("delivered at %v, want node 12 (prio 7)", *got)
	}
	if c.Stats.RuntimeMsgs() != 0 {
		t.Errorf("out-band msgs = %d, want 0 on success", c.Stats.RuntimeMsgs())
	}
	// Two traversals bound the in-band cost: 2*(4E-2n+2).
	if max := 2 * (4*g.NumEdges() - 2*g.NumNodes() + 2); net.InBandCount(EthPriocast) > max {
		t.Errorf("in-band = %d > %d", net.InBandCount(EthPriocast), max)
	}
}

func TestPriocastRootIsWinner(t *testing.T) {
	g := topo.Ring(6)
	p, net, _, got := priocastRig(t, g, map[uint32][]PrioMember{
		1: {{Node: 0, Prio: 9}, {Node: 3, Prio: 4}},
	})
	p.Send(0, 1, nil, 0) // the injecting root has the best priority
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || (*got)[0].sw != 0 {
		t.Fatalf("delivered at %v, want root 0", *got)
	}
}

func TestPriocastRootIsOnlyMember(t *testing.T) {
	g := topo.Line(4)
	p, net, _, got := priocastRig(t, g, map[uint32][]PrioMember{
		1: {{Node: 2, Prio: 1}},
	})
	p.Send(2, 1, nil, 0)
	net.Run()
	if len(*got) != 1 || (*got)[0].sw != 2 {
		t.Fatalf("delivered at %v, want node 2", *got)
	}
}

func TestPriocastNoReceiverReports(t *testing.T) {
	g := topo.Line(5)
	p, net, c, got := priocastRig(t, g, map[uint32][]PrioMember{
		1: {{Node: 4, Prio: 3}},
	})
	if err := net.SetLinkDown(3, 4, true); err != nil {
		t.Fatal(err)
	}
	p.Send(0, 1, nil, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatalf("unexpected delivery %v", *got)
	}
	if !p.FailureReported() {
		t.Error("expected a no-receiver report")
	}
	if c.Stats.PacketIns != 1 {
		t.Errorf("packet-ins = %d, want 1", c.Stats.PacketIns)
	}
}

func TestPriocastEqualPrioritiesDeliverToOne(t *testing.T) {
	g := topo.Ring(8)
	p, net, _, got := priocastRig(t, g, map[uint32][]PrioMember{
		1: {{Node: 2, Prio: 5}, {Node: 6, Prio: 5}},
	})
	p.Send(0, 1, nil, 0)
	net.Run()
	if len(*got) != 1 {
		t.Fatalf("deliveries = %d, want exactly 1", len(*got))
	}
	if sw := (*got)[0].sw; sw != 2 && sw != 6 {
		t.Errorf("delivered at %d, want 2 or 6", sw)
	}
}

func TestPriocastValidation(t *testing.T) {
	g := topo.Line(3)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	cases := []map[uint32][]PrioMember{
		{1: {{Node: 9, Prio: 1}}},
		{1: {{Node: 0, Prio: 0}}},
		{1: {{Node: 0, Prio: MaxPrio + 1}}},
		{1: {{Node: 0, Prio: 1}, {Node: 0, Prio: 2}}},
	}
	for i, gs := range cases {
		if _, err := InstallPriocast(c, g, 0, gs); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Property: priocast delivers to a reachable member of maximum priority
// among reachable members; with none reachable it reports failure.
func TestQuickPriocastMaxPriority(t *testing.T) {
	check := func(seed int64, nRaw, extraRaw, srcRaw uint8, prioRaw [3]uint8) bool {
		n := 4 + int(nRaw%10)
		g := topo.RandomConnected(n, int(extraRaw%8), seed)
		src := int(srcRaw) % n

		// Three members at pseudo-random distinct nodes.
		var members []PrioMember
		used := map[int]bool{}
		for i, pr := range prioRaw {
			node := (src + 1 + i*2 + int(pr)) % n
			if used[node] {
				continue
			}
			used[node] = true
			members = append(members, PrioMember{Node: node, Prio: 1 + int(pr%MaxPrio)})
		}
		if len(members) == 0 {
			return true
		}

		net := network.New(g, network.Options{})
		c := controller.New(net)
		p, err := InstallPriocast(c, g, 0, map[uint32][]PrioMember{3: members})
		if err != nil {
			return false
		}
		got := captureSelf(net)
		p.Send(src, 3, nil, 0)
		if _, err := net.Run(); err != nil {
			return false
		}

		best := 0
		for _, m := range members {
			if m.Prio > best {
				best = m.Prio
			}
		}
		if len(*got) != 1 {
			return false
		}
		deliveredAt := (*got)[0].sw
		for _, m := range members {
			if m.Node == deliveredAt {
				return m.Prio == best
			}
		}
		return false
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
