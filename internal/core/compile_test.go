package core

import (
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
	"smartsouth/internal/verify"
)

// TestAllServiceProgramsCheckClean compiles every service and statically
// checks the emitted program: CheckProgram must pass (no Err findings)
// on the declarative IR itself, before any switch sees a rule.
func TestAllServiceProgramsCheckClean(t *testing.T) {
	g := topo.RandomConnected(10, 6, 3)
	net := network.New(g, network.Options{})
	c := controller.New(net)

	var programs []*Program
	collect := func(name string, p *Program, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p == nil {
			t.Fatalf("%s: no program recorded", name)
		}
		programs = append(programs, p)
	}

	tr, err := InstallTraversal(c, g, 0)
	collect("traversal", tr.Prog, err)
	snap, err := InstallSnapshot(c, g, 1)
	collect("snapshot", snap.Prog, err)
	any, err := InstallAnycast(c, g, 2, map[uint32][]int{1: {3}})
	collect("anycast", any.Prog, err)
	prio, err := InstallPriocast(c, g, 3, map[uint32][]PrioMember{2: {{Node: 4, Prio: 5}}})
	collect("priocast", prio.Prog, err)
	cr, err := InstallCritical(c, g, 4)
	collect("critical", cr.Prog, err)
	bhc, err := InstallBlackholeCounter(c, g, 5)
	collect("blackhole-counter", bhc.Prog, err)
	bht, err := InstallBlackholeTTL(c, g, 7)
	collect("blackhole-ttl", bht.Prog, err)
	pl, err := InstallPktLoss(c, g, 8, nil)
	collect("pktloss", pl.Prog, err)
	cc, err := InstallChaincast(c, g, 9, [][]int{{2}, {7}})
	collect("chaincast", cc.Prog, err)
	split, err := InstallSnapshotSplit(c, g, 11, 8)
	collect("snapsplit", split.Prog, err)

	for _, p := range programs {
		issues := verify.CheckProgram(p, verify.Options{SkipShadowing: true})
		for _, iss := range issues {
			if iss.Severity == verify.Err {
				t.Errorf("program %q: %s", p.Service, iss)
			}
		}
		if p.FlowCount() == 0 {
			t.Errorf("program %q is empty", p.Service)
		}
	}

	// The controller retained exactly these programs, in install order.
	got := c.Programs()
	if len(got) != len(programs) {
		t.Fatalf("controller retains %d programs, want %d", len(got), len(programs))
	}
	for i := range got {
		if got[i].Service != programs[i].Service {
			t.Errorf("retained[%d] = %q, want %q", i, got[i].Service, programs[i].Service)
		}
	}
}

// TestCompileMemoizationMatchesDirect compiles the same uniform template
// with and without per-degree memoization: the programs must be identical
// entry for entry.
func TestCompileMemoizationMatchesDirect(t *testing.T) {
	g := topo.RandomConnected(14, 9, 7)
	l := NewLayout(g)
	t0, tFin, gb := Slot(0)
	build := func(noMemo bool) *Program {
		tmpl := &Template{
			G: g, L: l, Eth: EthTraversal, T0: t0, TFin: tFin, GroupBase: gb,
			Hooks:  Hooks{Finish: finishToController, Uniform: true},
			noMemo: noMemo,
		}
		p := newProgram("traversal", 0, g, l)
		if err := tmpl.Compile(p); err != nil {
			t.Fatal(err)
		}
		return p
	}
	memo, direct := build(false), build(true)
	if memo.FlowCount() != direct.FlowCount() || memo.GroupCount() != direct.GroupCount() {
		t.Fatalf("memo %d/%d entries, direct %d/%d",
			memo.FlowCount(), memo.GroupCount(), direct.FlowCount(), direct.GroupCount())
	}
	for _, id := range direct.SwitchIDs() {
		ms, ds := memo.At(id), direct.At(id)
		for i := range ds.Flows {
			me, de := ms.Flows[i].Entry, ds.Flows[i].Entry
			if ms.Flows[i].Table != ds.Flows[i].Table || me.Priority != de.Priority ||
				me.Cookie != de.Cookie || me.Match.String() != de.Match.String() ||
				len(me.Actions) != len(de.Actions) || me.Goto != de.Goto {
				t.Fatalf("switch %d flow %d: memo %v, direct %v", id, i, me, de)
			}
		}
		for i := range ds.Groups {
			if ms.Groups[i].ID != ds.Groups[i].ID || len(ms.Groups[i].Buckets) != len(ds.Groups[i].Buckets) {
				t.Fatalf("switch %d group %d diverges", id, i)
			}
		}
	}
}

// BenchmarkCompile measures the compile-once/retarget-many memoization win
// on a large regular topology, where every node shares one degree class.
func BenchmarkCompile(b *testing.B) {
	g := topo.Ring(400)
	l := NewLayout(g)
	t0, tFin, gb := Slot(0)
	for _, mode := range []struct {
		name   string
		noMemo bool
	}{{"memoized", false}, {"direct", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tmpl := &Template{
					G: g, L: l, Eth: EthTraversal, T0: t0, TFin: tFin, GroupBase: gb,
					Hooks:  Hooks{Finish: finishToController, Uniform: true},
					noMemo: mode.noMemo,
				}
				p := openflow.NewProgram("bench", 0)
				for n := 0; n < g.NumNodes(); n++ {
					p.Ensure(n, g.Degree(n))
				}
				if err := tmpl.Compile(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
