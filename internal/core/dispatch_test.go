package core

import (
	"math/rand"
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// linearRef is the reference Lookup: first match over the table's
// entries in match order (priority desc, insertion asc).
func linearRef(ft *openflow.FlowTable, p *openflow.Packet) *openflow.FlowEntry {
	for _, e := range ft.Entries() {
		if e.Match.Matches(p) {
			return e
		}
	}
	return nil
}

// TestCompiledDispatchMatchesLinearBothBackends lowers real programs
// with both backends, then replays random packets through every
// installed flow table, asserting the compiled matcher picks exactly the
// entry the linear reference scan picks. This is the end-to-end
// counterpart of the white-box fuzz in internal/openflow: the tables
// here are the ones the compiler actually emits (per-port state rules,
// group indirections, punt rules), not synthetic ones.
func TestCompiledDispatchMatchesLinearBothBackends(t *testing.T) {
	bothBackends(t, func(t *testing.T, be Backend) {
		g := topo.RandomConnected(12, 8, 3)
		net := network.New(g, network.Options{})
		c := controller.New(net)
		if _, err := InstallSnapshot(c, g, 0, WithBackend(be)); err != nil {
			t.Fatal(err)
		}
		if _, err := InstallTraversal(c, g, 1, WithBackend(be)); err != nil {
			t.Fatal(err)
		}

		r := rand.New(rand.NewSource(7))
		eths := []uint16{EthSnapshot, EthTraversal, 0x7777}
		ports := []int{openflow.PortController, 1, 2, 3, 4, 5}
		tables, lookups := 0, 0
		for sw := 0; sw < net.NumSwitches(); sw++ {
			s := net.Switch(sw)
			for _, id := range s.TableIDs() {
				ft := s.Table(id)
				if ft.Len() == 0 {
					continue
				}
				if !ft.Compiled() {
					t.Fatalf("%s: switch %d table %d not compiled after install", be.Name(), sw, id)
				}
				tables++
				for i := 0; i < 200; i++ {
					p := openflow.NewPacket(eths[r.Intn(len(eths))], 8)
					p.InPort = ports[r.Intn(len(ports))]
					p.TTL = uint8(r.Intn(3))
					r.Read(p.Tag)
					want := linearRef(ft, p)
					if got := ft.Lookup(p); got != want {
						t.Fatalf("%s: switch %d table %d pkt %d: compiled chose %v, reference %v (eth=%#x in=%d tag=%x)",
							be.Name(), sw, id, i, got, want, p.EthType, p.InPort, p.Tag)
					}
					lookups++
				}
			}
		}
		if tables == 0 || lookups == 0 {
			t.Fatalf("%s: no compiled tables exercised", be.Name())
		}
	})
}
