package core

import (
	"fmt"

	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// Backend is one lowering of the backend-neutral service definitions onto
// a concrete data-plane target. The services (snapshot, anycast,
// blackhole, …) describe *what* runs in the network — a Template with
// hooks plus service-specific rules; a Backend decides *how* the DFS
// machinery is encoded:
//
//   - OF13 is the paper's encoding: the traversal position travels in
//     packet tag bits (per-node par/cur fields) and the port scan runs in
//     fast-failover advance groups. Stateless switches, O(n log n) tag
//     bits, O(Δ²) group entries per node.
//   - Stateful is the OpenState/Open-Packet-Processor encoding: per-node
//     (par, cur) lives in switch state tables and every Algorithm-1 case
//     becomes one EFSM transition. O(1) tag bits, no advance groups; in
//     exchange, port failover is no longer packet-time (transitions pick
//     the next port statically) and traversal state must be reset between
//     runs.
//
// A backend is chosen once, at Deploy time, and threaded to every
// Install* call; both backends compile every service from the same
// definition.
type Backend interface {
	// Name is the stable CLI/config identifier ("of13", "stateful").
	Name() string
	// Stateful reports whether programs of this backend contain state
	// tables (and therefore cannot cross an OpenFlow 1.3 wire).
	Stateful() bool
	// NewLayout allocates the packet tag layout this backend needs for
	// the DFS machinery; services add their own fields on top.
	NewLayout(g *topo.Graph) *Layout
	// Lower compiles a service template into the program.
	Lower(t *Template, p *openflow.Program) error
}

type of13Backend struct{}

func (of13Backend) Name() string                    { return "of13" }
func (of13Backend) Stateful() bool                  { return false }
func (of13Backend) NewLayout(g *topo.Graph) *Layout { return NewLayout(g) }
func (of13Backend) Lower(t *Template, p *openflow.Program) error {
	return t.Compile(p)
}

type statefulBackend struct{}

func (statefulBackend) Name() string                    { return "stateful" }
func (statefulBackend) Stateful() bool                  { return true }
func (statefulBackend) NewLayout(g *topo.Graph) *Layout { return NewStatefulLayout(g) }
func (statefulBackend) Lower(t *Template, p *openflow.Program) error {
	return t.CompileStateful(p)
}

// OF13 lowers services onto stateless OpenFlow 1.3 flow/group entries
// (the default, byte-identical to the pre-backend compiler).
var OF13 Backend = of13Backend{}

// Stateful lowers services onto state tables with EFSM transitions.
var Stateful Backend = statefulBackend{}

// Backends lists every available backend, in preference order.
func Backends() []Backend { return []Backend{OF13, Stateful} }

// BackendByName resolves a CLI/config backend identifier.
func BackendByName(name string) (Backend, error) {
	for _, be := range Backends() {
		if be.Name() == name {
			return be, nil
		}
	}
	return nil, fmt.Errorf("core: unknown backend %q (have of13, stateful)", name)
}

// InstallOption tunes one Install* call. The zero set of options is the
// pre-backend behaviour: OF13 lowering.
type InstallOption func(*installCfg)

type installCfg struct {
	Backend Backend
}

// WithBackend selects the lowering backend for an Install* call; the
// deployment layer threads the backend chosen at Deploy time through it.
func WithBackend(be Backend) InstallOption {
	return func(c *installCfg) {
		if be != nil {
			c.Backend = be
		}
	}
}

func resolveInstall(opts []InstallOption) installCfg {
	cfg := installCfg{Backend: OF13}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}
