package core

import (
	"encoding/binary"
	"testing"
)

// FuzzDecodeRecords hardens the snapshot decoder against corrupted or
// adversarial record traces: it must error or return, never panic —
// important because the trace arrives from the (untrusted) network.
func FuzzDecodeRecords(f *testing.F) {
	// Seed: a legitimate short trace (root, out, node, out, bounce, up).
	legit := []uint32{
		encRec(recNode, 0, 0),
		encRec(recOut, 0, 1),
		encRec(recNode, 1, 1),
		encRec(recOut, 0, 2),
		encRec(recBounce, 0, 2),
		encRec(recUp, 0, 0),
	}
	buf := make([]byte, 4*len(legit))
	for i, l := range legit {
		binary.BigEndian.PutUint32(buf[4*i:], l)
	}
	f.Add(buf)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, b []byte) {
		labels := make([]uint32, len(b)/4)
		for i := range labels {
			labels[i] = binary.BigEndian.Uint32(b[4*i:])
		}
		res, err := DecodeRecords(labels)
		if err == nil && res == nil {
			t.Fatal("nil result without error")
		}
	})
}
