package core

import (
	"fmt"

	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// Critical implements §3.4: a node checks in the data plane whether its
// removal would partition the network (i.e. whether it is an articulation
// point), e.g. before being switched off for maintenance or energy saving.
//
// Mechanism: the controller triggers the traversal at the node under test
// (the DFS root). The root remembers its first out-port in firstPort.
// Every node sets the packet's toParent bit when returning to its DFS
// parent and every parent clears it after inspection. If the root ever
// receives toParent=1 on a port other than firstPort, a second subtree
// chose the root as its parent — which only happens when the root bridges
// otherwise-disconnected parts — so the root reports "critical" and stops.
// If the traversal completes without that, the root reports "not
// critical". Cost: 2 out-of-band messages, one DFS sweep in-band.
type Critical struct {
	G      *topo.Graph
	L      *Layout
	Tmpl   *Template
	Prog   *Program
	FFirst openflow.Field
	FToPar openflow.Field
	FVerd  openflow.Field
	ctl    ControlPlane
	be     Backend
}

// Verdict values carried in the report packet's verdict field.
const (
	verdictNone        = 0
	verdictCritical    = 1
	verdictNotCritical = 2
)

// InstallCritical compiles and installs the critical-node service; any
// node can subsequently be asked to check itself.
func InstallCritical(c ControlPlane, g *topo.Graph, slot int, opts ...InstallOption) (*Critical, error) {
	cfg := resolveInstall(opts)
	l := cfg.Backend.NewLayout(g)
	cr := &Critical{
		G: g, L: l, ctl: c, be: cfg.Backend,
		FFirst: l.Alloc("first_port", openflow.BitsFor(uint64(g.MaxDegree()))),
		FToPar: l.Alloc("to_parent", 1),
		FVerd:  l.Alloc("verdict", 2),
	}
	t0, tFin, gb := Slot(slot)
	cr.Tmpl = &Template{
		G: g, L: l, Eth: EthCritical, T0: t0, TFin: tFin, GroupBase: gb,
		Hooks: Hooks{
			// The root records its first out-port.
			SendNext: func(node, s, par, out int) []openflow.Action {
				if par == 0 && s == 1 {
					return []openflow.Action{openflow.SetField{F: cr.FFirst, Value: uint64(out)}}
				}
				return nil
			},
			// Returning to the parent raises toParent.
			SendParent: func(node, par int) []openflow.Action {
				return []openflow.Action{openflow.SetField{F: cr.FToPar, Value: 1}}
			},
			// Expected returns inspect toParent. Non-root parents just
			// clear it. The root compares the port to firstPort: a
			// toParent return on any other port is the criticality
			// witness.
			FromCur: func(node, cur, par int) []Variant {
				if par != 0 {
					return []Variant{{
						Match: []openflow.FieldMatch{{F: cr.FToPar, Value: 1}},
						Do:    []openflow.Action{openflow.SetField{F: cr.FToPar, Value: 0}},
					}}
				}
				d := cr.G.Degree(node)
				var vs []Variant
				for w := 1; w <= d; w++ {
					if w == cur {
						// The firstPort subtree returning: expected.
						vs = append(vs, Variant{
							Match: []openflow.FieldMatch{
								{F: cr.FToPar, Value: 1}, {F: cr.FFirst, Value: uint64(w)}},
							Do: []openflow.Action{openflow.SetField{F: cr.FToPar, Value: 0}},
						})
						continue
					}
					vs = append(vs, Variant{
						Match: []openflow.FieldMatch{
							{F: cr.FToPar, Value: 1}, {F: cr.FFirst, Value: uint64(w)}},
						Terminal: true,
						Do: []openflow.Action{
							openflow.SetField{F: cr.FVerd, Value: verdictCritical},
							openflow.Output{Port: openflow.PortController},
						},
					})
				}
				return vs
			},
			// Traversal completed without a witness: not critical.
			Finish: func(node int) []openflow.Action {
				return []openflow.Action{
					openflow.SetField{F: cr.FVerd, Value: verdictNotCritical},
					openflow.Output{Port: openflow.PortController},
				}
			},
			// Hooks depend only on degree and port arguments (the state
			// fields FFirst/FToPar/FVerd are shared across nodes).
			Uniform: true,
		},
	}
	p := newProgram("critical", slot, g, l)
	if err := cfg.Backend.Lower(cr.Tmpl, p); err != nil {
		return nil, err
	}
	if err := installProgram(c, p); err != nil {
		return nil, err
	}
	cr.Prog = p
	return cr, nil
}

// Check asks node to test its own criticality (one out-of-band message).
func (cr *Critical) Check(node int, at network.Time) {
	resetStateful(cr.ctl, cr.be, cr.Prog)
	cr.ctl.PacketOut(node, openflow.PortController, cr.L.NewPacket(cr.Tmpl.Eth), at)
}

// Verdict scans the controller inbox for this service's report. ok is
// false while no report has arrived.
func (cr *Critical) Verdict() (critical, ok bool) {
	for _, pi := range cr.ctl.Inbox() {
		if pi.Pkt.EthType != cr.Tmpl.Eth {
			continue
		}
		switch pi.Pkt.Load(cr.FVerd) {
		case verdictCritical:
			return true, true
		case verdictNotCritical:
			return false, true
		}
	}
	return false, false
}

// String describes the service for diagnostics.
func (cr *Critical) String() string {
	return fmt.Sprintf("critical-node service on %d nodes", cr.G.NumNodes())
}
