package core

import (
	"fmt"

	"smartsouth/internal/openflow"
)

// SmartCounter is the paper's §3.3 construction: a small counter stored
// *in the switch* that the pipeline itself can read and update — something
// plain OpenFlow statistics counters cannot do. It is a SELECT group with
// round-robin bucket selection: bucket j's only action writes the constant
// j into a designated packet field, so applying the group performs
// fetch-and-increment — the pre-increment value lands in the field, where
// subsequent flow tables can match it. The counter wraps at its modulus.
type SmartCounter struct {
	Switch  int
	GroupID uint32
	// Field receives the fetched (pre-increment) value.
	Field openflow.Field
	// Modulus is the number of buckets; values run 0..Modulus-1.
	Modulus int
}

// CompileSmartCounter builds one smart counter into a program. Applying
// openflow.Group{ID: sc.GroupID} anywhere in the pipeline is the
// fetch-and-increment. numPorts records the switch's port count for the
// pre-install static check.
func CompileSmartCounter(p *Program, sw, numPorts int, groupID uint32, field openflow.Field, modulus int) (*SmartCounter, error) {
	if modulus < 2 {
		return nil, fmt.Errorf("core: smart counter modulus must be >= 2, got %d", modulus)
	}
	if max := int(field.Max()); modulus-1 > max {
		return nil, fmt.Errorf("core: modulus %d does not fit field %s", modulus, field)
	}
	sc := &SmartCounter{Switch: sw, GroupID: groupID, Field: field, Modulus: modulus}
	p.Ensure(sw, numPorts)
	p.AddGroup(sw, sc.groupEntry())
	return sc, nil
}

// InstallSmartCounter compiles a standalone smart counter into a transient
// single-group program and installs it.
func InstallSmartCounter(c ControlPlane, sw int, groupID uint32, field openflow.Field, modulus int) (*SmartCounter, error) {
	p := openflow.NewProgram("smart-counter", int(groupID>>20))
	p.Transient = true
	sc, err := CompileSmartCounter(p, sw, 0, groupID, field, modulus)
	if err != nil {
		return nil, err
	}
	c.InstallProgram(p)
	return sc, nil
}

// groupEntry builds the counter's round-robin SELECT group: bucket j
// writes j into the field.
func (sc *SmartCounter) groupEntry() *openflow.GroupEntry {
	buckets := make([]openflow.Bucket, sc.Modulus)
	for j := 0; j < sc.Modulus; j++ {
		buckets[j] = openflow.Bucket{Actions: []openflow.Action{
			openflow.SetField{F: sc.Field, Value: uint64(j)},
		}}
	}
	return &openflow.GroupEntry{ID: sc.GroupID, Type: openflow.GroupSelectRR, Buckets: buckets}
}

// FetchInc returns the action that performs the fetch-and-increment.
func (sc *SmartCounter) FetchInc() openflow.Action { return openflow.Group{ID: sc.GroupID} }

// Value reads the counter out of band (tests and controller resets only —
// the data plane can only learn it through the fetched field). It returns
// -1 when the control plane cannot read group state.
func (sc *SmartCounter) Value(c ControlPlane) int {
	return c.GroupCounter(sc.Switch, sc.GroupID)
}

// Reset sets the counter to zero by re-sending the group in a transient
// program: a real controller would send OFPGC_MODIFY, which resets bucket
// state.
func (sc *SmartCounter) Reset(c ControlPlane) {
	p := openflow.NewProgram("smart-counter-reset", int(sc.GroupID>>20))
	p.Transient = true
	p.Ensure(sc.Switch, 0)
	p.AddGroup(sc.Switch, sc.groupEntry())
	c.InstallProgram(p)
}
