package core

import (
	"fmt"

	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// PrioMember is one priocast receiver with its priority (higher wins).
type PrioMember struct {
	Node int
	Prio int
}

// Priocast implements the priority-anycast extension of §3.2 with two
// traversal phases carried in the packet's ternary start field:
//
// Phase 1 (start=1) sweeps the whole network; every reachable member
// whose priority beats the packet's current best (opt_val) writes itself
// into opt_id/opt_val — compiled as one rule variant per (group, smaller
// opt_val) pair, the flow-table field-comparison technique. The root
// records its first out-port in firstPort.
//
// Phase 2 (start=2) replays the traversal from firstPort; the recorded
// winner exits to SELF when the packet reaches it. Non-root nodes detect
// the phase switch by a packet arriving on their parent port while their
// cur field equals par (they had finished phase 1).
//
// Out-of-band cost: zero on success; one report if no member is reachable.
type Priocast struct {
	G       *topo.Graph
	L       *Layout
	Tmpl    *Template
	Prog    *Program
	FGid    openflow.Field
	FOptID  openflow.Field // winner node + 1; 0 = none
	FOptVal openflow.Field
	FFirst  openflow.Field
	Groups  map[uint32][]PrioMember
	ctl     ControlPlane
	be      Backend
}

// MaxPrio bounds member priorities (value 1..MaxPrio); the opt_val field
// is sized for it.
const MaxPrio = 15

// InstallPriocast compiles and installs the priocast service.
func InstallPriocast(c ControlPlane, g *topo.Graph, slot int, groups map[uint32][]PrioMember, opts ...InstallOption) (*Priocast, error) {
	for gid, ms := range groups {
		seen := map[int]bool{}
		for _, m := range ms {
			if m.Node < 0 || m.Node >= g.NumNodes() {
				return nil, fmt.Errorf("core: priocast member %d out of range", m.Node)
			}
			if m.Prio < 1 || m.Prio > MaxPrio {
				return nil, fmt.Errorf("core: priority %d outside 1..%d", m.Prio, MaxPrio)
			}
			if seen[m.Node] {
				return nil, fmt.Errorf("core: node %d listed twice in group %d", m.Node, gid)
			}
			seen[m.Node] = true
		}
	}

	cfg := resolveInstall(opts)
	l := cfg.Backend.NewLayout(g)
	p := &Priocast{
		G: g, L: l, Groups: groups, ctl: c, be: cfg.Backend,
		FGid:    l.Alloc("gid", 16),
		FOptID:  l.Alloc("opt_id", openflow.BitsFor(uint64(g.NumNodes()))),
		FOptVal: l.Alloc("opt_val", openflow.BitsFor(MaxPrio)),
		FFirst:  l.Alloc("first_port", openflow.BitsFor(uint64(g.MaxDegree()))),
	}
	t0, tFin, gb := Slot(slot)

	memberships := make(map[int][]struct {
		gid  uint32
		prio int
	})
	for gid, ms := range groups {
		for _, m := range ms {
			memberships[m.Node] = append(memberships[m.Node], struct {
				gid  uint32
				prio int
			}{gid, m.Prio})
		}
	}

	p.Tmpl = &Template{
		G: g, L: l, Eth: EthPriocast, T0: t0, TFin: tFin, GroupBase: gb,
		Hooks: Hooks{
			// Record the root's first out-port for the phase-2 restart.
			SendNext: func(node, s, par, out int) []openflow.Action {
				if par == 0 && s == 1 {
					return []openflow.Action{openflow.SetField{F: p.FFirst, Value: uint64(out)}}
				}
				return nil
			},
			// Phase-1 member update: if this node's priority for the
			// packet's group beats opt_val, become the current best.
			FirstVisit: func(node, in int) []Variant {
				var vs []Variant
				for _, mb := range memberships[node] {
					for w := 0; w < mb.prio; w++ {
						vs = append(vs, Variant{
							Match: []openflow.FieldMatch{
								{F: p.FGid, Value: uint64(mb.gid)},
								{F: p.FOptVal, Value: uint64(w)},
							},
							Do: []openflow.Action{
								openflow.SetField{F: p.FOptVal, Value: uint64(mb.prio)},
								openflow.SetField{F: p.FOptID, Value: uint64(node + 1)},
							},
						})
					}
				}
				return vs
			},
			// Not Uniform: FirstVisit compiles this node's group
			// memberships into the rules.
		},
	}
	prog := newProgram("priocast", slot, g, l)
	if err := cfg.Backend.Lower(p.Tmpl, prog); err != nil {
		return nil, err
	}

	stateful := cfg.Backend.Stateful()
	eth := openflow.MatchEth(EthPriocast)
	for i := 0; i < g.NumNodes(); i++ {
		d := g.Degree(i)
		S := l.Start

		// Phase 2, winner exit: outranks everything else.
		addT0Rule(prog, cfg.Backend, i, t0, &openflow.FlowEntry{
			Priority: PrioService + 20,
			Match:    eth.WithField(S, 2).WithField(p.FOptID, uint64(i+1)),
			Actions:  []openflow.Action{openflow.Output{Port: openflow.PortSelf}},
			Goto:     openflow.NoGoto,
			Cookie:   fmt.Sprintf("priocast/n%d/winner", i),
		})
		if stateful {
			// Phase 2 under the stateful backend. A finish-table flow rule
			// cannot write switch state, so the root keeps state 0 through
			// phase 2 and the phase-2 restart outputs the recorded first
			// port directly; elevated-priority transitions then advance the
			// root's scan purely on the return port (a DFS probe always
			// returns on the port it left by), declining to touch state so
			// a later run still finds the root in its start state.
			B := openflow.BitsFor(uint64(d))
			st := func(par, cur int) uint64 { return uint64(par)<<B | uint64(cur) }
			// Phase-2 entry at a finished non-root node: restart the scan
			// from port 1, exactly what AdvGroup(i, 1, par) does under OF13.
			for par := 1; par <= d; par++ {
				next := 0
				for k := 1; k <= d; k++ {
					if k != par {
						next = k
						break
					}
				}
				out, set := par, st(par, par)
				if next > 0 {
					out, set = next, st(par, next)
				}
				sv := set
				prog.AddState(i, t0, &openflow.StateEntry{
					Priority: PrioService + 10,
					State:    st(par, par),
					Match:    eth.WithField(S, 2).WithInPort(par),
					Actions:  []openflow.Action{openflow.Output{Port: out}},
					SetState: &sv, Goto: openflow.NoGoto,
					Cookie: fmt.Sprintf("priocast/n%d/phase2-entry-p%d", i, par),
				})
			}
			// Root phase-2 advance: the first_port field doubles as the
			// root's scan cursor (the tFin restart rule cannot write switch
			// state, so the cursor rides in the packet — the same job of13's
			// cur bits do). A return on the cursor port advances the scan; an
			// arrival on any other port is a cross-edge probe from inside a
			// subtree and bounces, mirroring of13's PrioNew rule at the root.
			for k := 1; k <= d; k++ {
				e := &openflow.StateEntry{
					Priority: PrioFirst + 100,
					Match:    eth.WithField(S, 2).WithInPort(k).WithField(p.FFirst, uint64(k)),
					Goto:     openflow.NoGoto,
					Cookie:   fmt.Sprintf("priocast/n%d/phase2-root-in%d", i, k),
				}
				if k < d {
					e.Actions = []openflow.Action{
						openflow.SetField{F: p.FFirst, Value: uint64(k + 1)},
						openflow.Output{Port: k + 1},
					}
				} else {
					e.Goto = tFin
				}
				prog.AddState(i, t0, e)
			}
			prog.AddState(i, t0, &openflow.StateEntry{
				Priority: PrioFirst + 50,
				Match:    eth.WithField(S, 2),
				Actions:  []openflow.Action{openflow.Output{Port: openflow.PortInPort}},
				Goto:     openflow.NoGoto,
				Cookie:   fmt.Sprintf("priocast/n%d/phase2-root-bounce", i),
			})
		} else {
			// Phase-2 entry: packet from the parent while finished — restart
			// this node's scan from port 1.
			P, C := l.Par[i], l.Cur[i]
			for par := 1; par <= d; par++ {
				prog.AddFlow(i, t0, &openflow.FlowEntry{
					Priority: PrioService + 10,
					Match: eth.WithField(S, 2).WithInPort(par).
						WithField(P, uint64(par)).WithField(C, uint64(par)),
					Actions: []openflow.Action{openflow.Group{ID: p.Tmpl.AdvGroup(i, 1, par)}},
					Goto:    tFin,
					Cookie:  fmt.Sprintf("priocast/n%d/phase2-entry-p%d", i, par),
				})
			}
		}

		finBase := eth
		if !stateful {
			finBase = eth.WithField(l.Cur[i], 0).WithField(l.Par[i], 0)
		}
		// Phase-1 finish at a member root that beats the recorded best:
		// the root itself is the winner; deliver locally.
		for _, mb := range memberships[i] {
			for w := 0; w < mb.prio; w++ {
				prog.AddFlow(i, tFin, &openflow.FlowEntry{
					Priority: PrioFinish + 60,
					Match: finBase.WithField(S, 1).
						WithField(p.FGid, uint64(mb.gid)).WithField(p.FOptVal, uint64(w)),
					Actions: []openflow.Action{openflow.Output{Port: openflow.PortSelf}},
					Goto:    openflow.NoGoto,
					Cookie:  fmt.Sprintf("priocast/n%d/root-wins-g%d-w%d", i, mb.gid, w),
				})
			}
		}
		// Phase-1 finish with no receiver at all: report to controller.
		prog.AddFlow(i, tFin, &openflow.FlowEntry{
			Priority: PrioFinish + 50,
			Match:    finBase.WithField(S, 1).WithField(p.FOptID, 0),
			Actions:  []openflow.Action{openflow.Output{Port: openflow.PortController}},
			Goto:     openflow.NoGoto,
			Cookie:   fmt.Sprintf("priocast/n%d/no-receiver", i),
		})
		// Phase-1 finish, winner elsewhere: flip to phase 2 and restart
		// the traversal from the recorded first port. Under the stateful
		// backend the restart outputs the first port directly (the root's
		// phase-2 transitions above take over from the return).
		for k := 1; k <= d; k++ {
			restart := []openflow.Action{openflow.SetField{F: S, Value: 2}}
			if stateful {
				restart = append(restart, openflow.Output{Port: k})
			} else {
				restart = append(restart, openflow.Group{ID: p.Tmpl.AdvGroup(i, k, 0)})
			}
			prog.AddFlow(i, tFin, &openflow.FlowEntry{
				Priority: PrioFinish + 30,
				Match:    finBase.WithField(S, 1).WithField(p.FFirst, uint64(k)),
				Actions:  restart,
				Goto:     openflow.NoGoto,
				Cookie:   fmt.Sprintf("priocast/n%d/phase2-start-k%d", i, k),
			})
		}
		// Phase-2 finish without delivery: the winner became unreachable.
		prog.AddFlow(i, tFin, &openflow.FlowEntry{
			Priority: PrioFinish + 20,
			Match:    finBase.WithField(S, 2),
			Actions:  []openflow.Action{openflow.Output{Port: openflow.PortController}},
			Goto:     openflow.NoGoto,
			Cookie:   fmt.Sprintf("priocast/n%d/phase2-failed", i),
		})
	}
	if err := installProgram(c, prog); err != nil {
		return nil, err
	}
	p.Prog = prog
	return p, nil
}

// Send injects a priocast message at switch from (in-band host traffic).
func (p *Priocast) Send(from int, gid uint32, payload []byte, at network.Time) {
	resetStateful(p.ctl, p.be, p.Prog)
	pkt := p.L.NewPacket(p.Tmpl.Eth)
	pkt.Store(p.FGid, uint64(gid))
	pkt.Payload = payload
	p.ctl.InjectHost(from, pkt, at)
}

// FailureReported reports whether the controller received a priocast
// failure notice (no receiver, or winner unreachable in phase 2).
func (p *Priocast) FailureReported() bool {
	for _, pi := range p.ctl.Inbox() {
		if pi.Pkt.EthType == p.Tmpl.Eth {
			return true
		}
	}
	return false
}
