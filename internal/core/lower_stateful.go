package core

import (
	"fmt"

	"smartsouth/internal/openflow"
)

// CompileStateful lowers the template onto the stateful backend: per node,
// the (par, cur) pair of Algorithm 1 moves from packet tag bits into a
// keyless state table at T0, and every case of the algorithm becomes one
// EFSM transition (state condition + packet match -> actions + set-state).
//
// Encoding, per node i with degree d and B = BitsFor(d):
//
//	state = par<<B | cur
//
// State 0 doubles as "never visited" and "root finished": a non-root node
// always has par >= 1, so par<<B|cur > 0 whenever it holds DFS position,
// and the root's exhaust transition deliberately returns to 0 so a second
// trigger can start over without a state reset at the root. All other
// nodes keep their final (par, par) state after a run — re-triggering a
// stateful service requires ControlPlane.ResetState first.
//
// The port scan of the fast-failover advance groups is resolved at compile
// time instead: each transition directly names the next port to probe.
// Without link failures this picks exactly the port the first live FF
// bucket would have picked, so traversal order and message counts match
// the OF13 backend; under failures the stateful plane has no packet-time
// failover (the paper's trade-off for O(1) tag bits and zero groups).
func (t *Template) CompileStateful(p *openflow.Program) error {
	if err := t.validate(); err != nil {
		return err
	}
	if !t.L.Stateful() {
		return fmt.Errorf("core: CompileStateful requires a stateful layout (use NewStatefulLayout)")
	}
	if t.L.TagBytes() > p.TagBytes {
		p.TagBytes = t.L.TagBytes()
	}
	for node := 0; node < t.G.NumNodes(); node++ {
		p.Ensure(node, t.G.Degree(node))
		t.compileNodeStateful(p, node)
	}
	return nil
}

func (t *Template) compileNodeStateful(p *openflow.Program, i int) {
	d := t.G.Degree(i)
	B := openflow.BitsFor(uint64(d))
	S := t.L.Start
	if t.StateStart.Valid() {
		S = t.StateStart
	}
	base := openflow.MatchEth(t.Eth)
	st := func(par, cur int) uint64 { return uint64(par)<<B | uint64(cur) }

	// Dispatcher: identical to the OF13 lowering — table 0 is an ordinary
	// flow table under both backends.
	disp := base
	for _, fm := range t.DispatchFields {
		disp = disp.WithMasked(fm.F, fm.Value, fm.Mask)
	}
	p.AddFlow(i, 0, &openflow.FlowEntry{
		Priority: 100, Match: disp, Goto: t.T0,
		Cookie: fmt.Sprintf("svc%04x/dispatch", t.Eth),
	})

	// advance resolves Send_next_neighbor statically: the first port in
	// s..d that is not the parent, else back to the parent, else (root)
	// into the finish table. Mirrors the FF advance-group bucket order.
	advance := func(s, par int) (cont []openflow.Action, set *uint64, gotoT int) {
		gotoT = openflow.NoGoto
		if t.Hooks.DeferOutput {
			gotoT = t.TFin
		}
		for k := s; k <= d; k++ {
			if k == par {
				continue
			}
			var acts []openflow.Action
			if t.Hooks.SendNext != nil {
				acts = append(acts, t.Hooks.SendNext(i, s, par, k)...)
			}
			if t.Hooks.DeferOutput {
				acts = append(acts, openflow.SetField{F: t.Hooks.OutField, Value: uint64(k)})
				if t.Hooks.UpField.Valid() {
					acts = append(acts, openflow.SetField{F: t.Hooks.UpField, Value: 0})
				}
			} else {
				acts = append(acts, openflow.Output{Port: k})
			}
			v := st(par, k)
			return acts, &v, gotoT
		}
		if par >= 1 {
			var acts []openflow.Action
			if t.Hooks.SendParent != nil {
				acts = append(acts, t.Hooks.SendParent(i, par)...)
			}
			if t.Hooks.DeferOutput {
				acts = append(acts, openflow.SetField{F: t.Hooks.OutField, Value: uint64(par)})
				if t.Hooks.UpField.Valid() {
					acts = append(acts, openflow.SetField{F: t.Hooks.UpField, Value: 1})
				}
			} else {
				acts = append(acts, openflow.Output{Port: par})
			}
			v := st(par, par)
			return acts, &v, gotoT
		}
		// Root exhausted every port: back to state 0, fall into the finish
		// table (the OF13 root-fallback bucket's cur := 0, par = 0 case).
		var acts []openflow.Action
		if t.Hooks.DeferOutput {
			acts = append(acts, openflow.SetField{F: t.Hooks.OutField, Value: 0})
		}
		zero := uint64(0)
		return acts, &zero, t.TFin
	}

	// emit installs a base transition plus its variants, with the same
	// folding discipline as the OF13 emit: unconditional variants merge
	// into the base actions, Terminal variants replace the continuation
	// (and then neither forward nor change state).
	emit := func(prio int, anyState bool, state, mask uint64, m openflow.Match,
		pre, cont []openflow.Action, set *uint64, gotoT int, vs []Variant, cookie string) {
		var conditional []Variant
		for _, v := range vs {
			if len(v.Match) == 0 && !v.Terminal {
				pre = append(append([]openflow.Action{}, pre...), v.Do...)
			} else {
				conditional = append(conditional, v)
			}
		}
		vs = conditional
		all := append(append([]openflow.Action{}, pre...), cont...)
		p.AddState(i, t.T0, &openflow.StateEntry{
			Priority: prio, AnyState: anyState, State: state, StateMask: mask,
			Match: m, Actions: all, SetState: set, Goto: gotoT, Cookie: cookie,
		})
		for vi, v := range vs {
			vm := m
			for _, fm := range v.Match {
				vm = vm.WithMasked(fm.F, fm.Value, fm.Mask)
			}
			e := &openflow.StateEntry{
				Priority: prio + 1 + vi, AnyState: anyState, State: state, StateMask: mask,
				Match: vm, Cookie: fmt.Sprintf("%s/v%d", cookie, vi),
			}
			if v.Terminal {
				e.Actions = append([]openflow.Action{}, v.Do...)
				e.Goto = openflow.NoGoto
			} else {
				e.Actions = append(append(append([]openflow.Action{}, pre...), v.Do...), cont...)
				e.SetState = set
				e.Goto = gotoT
			}
			p.AddState(i, t.T0, e)
		}
	}

	// Start: pkt.start = 0 in state 0 — this switch becomes the DFS root.
	rootActs := []openflow.Action{openflow.SetField{F: S, Value: 1}}
	if t.Hooks.RootStart != nil {
		rootActs = append(rootActs, t.Hooks.RootStart(i)...)
	}
	cont, set, g := advance(1, 0)
	emit(PrioStart, false, 0, 0, base.WithField(S, 0), rootActs, cont, set, g, nil,
		fmt.Sprintf("svc%04x/n%d/start", t.Eth, i))

	// First visit: state 0, one transition per ingress port — the parent
	// is recorded in the state word instead of a packet field.
	for q := 1; q <= d; q++ {
		var vs []Variant
		if t.Hooks.FirstVisit != nil {
			vs = t.Hooks.FirstVisit(i, q)
		}
		cont, set, g := advance(1, q)
		emit(PrioFirst, false, 0, 0, base.WithInPort(q), nil, cont, set, g, vs,
			fmt.Sprintf("svc%04x/n%d/first-in%d", t.Eth, i, q))
	}

	seenHook := t.Hooks.Bounce
	if t.Hooks.BounceSplit {
		seenHook = t.Hooks.BounceSeen
	}
	callHook := func(h func(int, int) []Variant, node, in int) []Variant {
		if h == nil {
			return nil
		}
		return h(node, in)
	}
	inPort := []openflow.Action{openflow.Output{Port: openflow.PortInPort}}

	// Finished state (cur = par >= 1): bounce every arrival, keep state.
	for pp := 1; pp <= d; pp++ {
		if t.Hooks.BouncePerIn {
			for q := 1; q <= d; q++ {
				emit(PrioFinished, false, st(pp, pp), 0, base.WithInPort(q),
					nil, inPort, nil, openflow.NoGoto,
					callHook(seenHook, i, q),
					fmt.Sprintf("svc%04x/n%d/done-p%d-in%d", t.Eth, i, pp, q))
			}
			continue
		}
		emit(PrioFinished, false, st(pp, pp), 0, base,
			nil, inPort, nil, openflow.NoGoto,
			callHook(seenHook, i, openflow.AnyPort),
			fmt.Sprintf("svc%04x/n%d/done-p%d", t.Eth, i, pp))
	}

	// Expected return (in = cur): one transition per (cur, par) pair, the
	// state condition replacing the OF13 rule's two tag-field matches.
	for q := 1; q <= d; q++ {
		for pp := 0; pp <= d; pp++ {
			if pp == q {
				continue // cur = par is the finished state above
			}
			var vs []Variant
			if t.Hooks.FromCur != nil {
				vs = t.Hooks.FromCur(i, q, pp)
			}
			cont, set, g := advance(q+1, pp)
			emit(PrioExpected, false, st(pp, q), 0, base.WithInPort(q), nil, cont, set, g, vs,
				fmt.Sprintf("svc%04x/n%d/ret-c%d-p%d", t.Eth, i, q, pp))
		}
	}

	// Unexpected arrivals. The in < cur comparison masks the cur half of
	// the state word, so it needs one transition per (in, cur) pair but no
	// longer depends on par.
	if t.Hooks.BounceSplit {
		curMask := uint64(1)<<B - 1
		for q := 1; q <= d; q++ {
			for cv := q + 1; cv <= d; cv++ {
				emit(PrioSeen, false, uint64(cv), curMask, base.WithInPort(q),
					nil, inPort, nil, openflow.NoGoto,
					callHook(t.Hooks.BounceSeen, i, q),
					fmt.Sprintf("svc%04x/n%d/seen-in%d-c%d", t.Eth, i, q, cv))
			}
			emit(PrioNew, true, 0, 0, base.WithInPort(q),
				nil, inPort, nil, openflow.NoGoto,
				callHook(t.Hooks.BounceNew, i, q),
				fmt.Sprintf("svc%04x/n%d/new-in%d", t.Eth, i, q))
		}
	} else if t.Hooks.BouncePerIn {
		for q := 1; q <= d; q++ {
			emit(PrioNew, true, 0, 0, base.WithInPort(q),
				nil, inPort, nil, openflow.NoGoto,
				callHook(t.Hooks.Bounce, i, q),
				fmt.Sprintf("svc%04x/n%d/bounce-in%d", t.Eth, i, q))
		}
	} else {
		emit(PrioNew, true, 0, 0, base,
			nil, inPort, nil, openflow.NoGoto,
			callHook(t.Hooks.Bounce, i, openflow.AnyPort),
			fmt.Sprintf("svc%04x/n%d/bounce", t.Eth, i))
	}

	// Finish table: only reachable via the root-exhaust transition (or,
	// for DeferOutput services, with OutField = 0 after the service's own
	// higher-priority finish rules declined), so the state-dependent
	// C=0 ∧ P=0 guard of the OF13 lowering is unnecessary here.
	var fin []openflow.Action
	if t.Hooks.Finish != nil {
		fin = t.Hooks.Finish(i)
	}
	p.AddFlow(i, t.TFin, &openflow.FlowEntry{
		Priority: PrioFinish, Match: base,
		Actions: fin, Goto: openflow.NoGoto,
		Cookie: fmt.Sprintf("svc%04x/n%d/finish", t.Eth, i),
	})
}
