package core

import (
	"fmt"

	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// EthLoadMap is the load-inference service EtherType.
const EthLoadMap = 0x880A

// LoadMap realizes the paper's closing remark — "the smart counter concept
// introduced in this paper may also be used to infer network loads" — as a
// working service. Every switch port carries a smart counter ticked by
// received data packets. A SmartSouth traversal then sweeps the network;
// on each arrival the receiving switch fetches the port's counter and
// *records the fetched value into the packet* by matching it against
// enumerated rules that push a constant label (the flow-table trick for
// copying a field into the label stack). The root finally punts the packet
// to the controller, which decodes a per-port load map of the entire
// network — two out-of-band messages total.
type LoadMap struct {
	G    *topo.Graph
	L    *Layout
	Tmpl *Template
	Prog *Program
	// Counters[node][port-1] is the per-port ingress data counter.
	Counters [][]*SmartCounter
	// Modulus is the counter size: loads are reported modulo this value.
	Modulus int

	FDst  openflow.Field
	FPort openflow.Field
	FVal  openflow.Field

	ctl ControlPlane
	be  Backend
}

// loadModulus is the counter size; loads are inferred modulo 32.
const loadModulus = 32

func encLoad(node, port, val int) uint32 {
	return uint32(node&0xFFF)<<16 | uint32(port&0xFF)<<8 | uint32(val&0xFF)
}

func decLoad(label uint32) (node, port, val int) {
	return int(label >> 16 & 0xFFF), int(label >> 8 & 0xFF), int(label & 0xFF)
}

// InstallLoadMap compiles and installs the load-inference service,
// including destination-based forwarding for EthData traffic. It must not
// share a network with PktLoss (both own the EthData ingress rules).
func InstallLoadMap(c ControlPlane, g *topo.Graph, slot int, opts ...InstallOption) (*LoadMap, error) {
	cfg := resolveInstall(opts)
	l := cfg.Backend.NewLayout(g)
	lm := &LoadMap{
		G: g, L: l, ctl: c, Modulus: loadModulus, be: cfg.Backend,
		FDst:  l.Alloc("dst", openflow.BitsFor(uint64(g.NumNodes()))),
		FPort: l.Alloc("sample_port", openflow.BitsFor(uint64(g.MaxDegree()))),
		FVal:  l.Alloc("sample_val", openflow.BitsFor(loadModulus-1)),
	}
	base := 1 + slot*10
	preT, recT, t0, tFin, fwdT := base, base+1, base+2, base+3, base+4
	gb := uint32(slot) << 20
	ctrGID := func(port int) uint32 { return gb + 0x80000 + uint32(port) }

	prog := newProgram("loadmap", slot, g, l)

	lm.Counters = make([][]*SmartCounter, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		for p := 1; p <= g.Degree(i); p++ {
			sc, err := CompileSmartCounter(prog, i, g.Degree(i), ctrGID(p), lm.FVal, loadModulus)
			if err != nil {
				return nil, err
			}
			lm.Counters[i] = append(lm.Counters[i], sc)
		}
	}

	lm.Tmpl = &Template{
		G: g, L: l, Eth: EthLoadMap, T0: t0, TFin: tFin, GroupBase: gb,
		Hooks: Hooks{Finish: finishToController, Uniform: true},
	}
	if err := cfg.Backend.Lower(lm.Tmpl, prog); err != nil {
		return nil, err
	}

	ethLM := openflow.MatchEth(EthLoadMap)
	ethData := openflow.MatchEth(EthData)
	for i := 0; i < g.NumNodes(); i++ {
		d := g.Degree(i)

		// Monitor dispatch: sample the ingress counter, then record.
		prog.AddFlow(i, 0, &openflow.FlowEntry{
			Priority: 101, Match: ethLM, Goto: preT,
			Cookie: fmt.Sprintf("loadmap/n%d/dispatch", i),
		})
		for q := 1; q <= d; q++ {
			prog.AddFlow(i, preT, &openflow.FlowEntry{
				Priority: 200, Match: ethLM.WithInPort(q),
				Actions: []openflow.Action{
					openflow.SetField{F: lm.FPort, Value: uint64(q)},
					openflow.Group{ID: ctrGID(q)},
				},
				Goto:   recT,
				Cookie: fmt.Sprintf("loadmap/n%d/sample-in%d", i, q),
			})
		}
		prog.AddFlow(i, preT, &openflow.FlowEntry{
			Priority: 100, Match: ethLM, Goto: t0,
			Cookie: fmt.Sprintf("loadmap/n%d/inject", i),
		})

		// Record table: enumerate (port, value) pairs and push the
		// matching constant label — the data plane "copies" the fetched
		// counter into the packet.
		for q := 1; q <= d; q++ {
			for x := 0; x < loadModulus; x++ {
				prog.AddFlow(i, recT, &openflow.FlowEntry{
					Priority: 200,
					Match:    ethLM.WithField(lm.FPort, uint64(q)).WithField(lm.FVal, uint64(x)),
					Actions:  []openflow.Action{openflow.PushLabel{Value: encLoad(i, q, x)}},
					Goto:     t0,
					Cookie:   fmt.Sprintf("loadmap/n%d/rec-p%d-v%d", i, q, x),
				})
			}
		}

		// Data plane: ingress counting plus destination forwarding.
		for q := 1; q <= d; q++ {
			prog.AddFlow(i, 0, &openflow.FlowEntry{
				Priority: 90, Match: ethData.WithInPort(q),
				Actions: []openflow.Action{openflow.Group{ID: ctrGID(q)}},
				Goto:    fwdT,
				Cookie:  fmt.Sprintf("loadmap/n%d/data-rx-in%d", i, q),
			})
		}
		prog.AddFlow(i, 0, &openflow.FlowEntry{
			Priority: 80, Match: ethData, Goto: fwdT,
			Cookie: fmt.Sprintf("loadmap/n%d/data-inject", i),
		})
		prog.AddFlow(i, fwdT, &openflow.FlowEntry{
			Priority: 200, Match: ethData.WithField(lm.FDst, uint64(i)),
			Actions: []openflow.Action{openflow.Output{Port: openflow.PortSelf}},
			Goto:    openflow.NoGoto,
			Cookie:  fmt.Sprintf("loadmap/n%d/data-local", i),
		})
	}
	for dst := 0; dst < g.NumNodes(); dst++ {
		next := topo.BFSPaths(g, dst)
		for node, port := range next {
			prog.AddFlow(node, fwdT, &openflow.FlowEntry{
				Priority: 100, Match: ethData.WithField(lm.FDst, uint64(dst)),
				Actions: []openflow.Action{openflow.Output{Port: port}},
				Goto:    openflow.NoGoto,
				Cookie:  fmt.Sprintf("loadmap/n%d/data-to-%d", node, dst),
			})
		}
	}
	if err := installProgram(c, prog); err != nil {
		return nil, err
	}
	lm.Prog = prog
	return lm, nil
}

// SendData injects one data packet at switch from addressed to switch to.
func (lm *LoadMap) SendData(from, to int, at network.Time) {
	pkt := lm.L.NewPacket(EthData)
	pkt.Store(lm.FDst, uint64(to))
	lm.ctl.InjectHost(from, pkt, at)
}

// Monitor launches the load-collection traversal from root.
func (lm *LoadMap) Monitor(root int, at network.Time) {
	resetStateful(lm.ctl, lm.be, lm.Prog)
	lm.ctl.PacketOut(root, openflow.PortController, lm.L.NewPacket(EthLoadMap), at)
}

// PortLoad identifies a sampled port.
type PortLoad struct {
	Node int
	Port int
}

// Loads decodes the collected load map: data packets received per port,
// modulo the counter size. For ports crossed several times by the monitor
// the first sample is kept (later samples are inflated by the monitor's
// own fetches). done reports whether the report packet arrived.
func (lm *LoadMap) Loads() (loads map[PortLoad]int, done bool) {
	for _, pi := range lm.ctl.Inbox() {
		if pi.Pkt.EthType != EthLoadMap {
			continue
		}
		loads = make(map[PortLoad]int)
		for _, lab := range pi.Pkt.Labels {
			node, port, val := decLoad(lab)
			key := PortLoad{Node: node, Port: port}
			if _, dup := loads[key]; !dup {
				loads[key] = val
			}
		}
		return loads, true
	}
	return nil, false
}
