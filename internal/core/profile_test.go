package core

import (
	"strings"
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// TestSnapshotLocalReportDeliversInBand exercises the §3 remark: the
// completion report goes to a server on the root's local port, so the
// whole snapshot — request excluded — is in-band.
func TestSnapshotLocalReportDeliversInBand(t *testing.T) {
	g := topo.Ring(6)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	s, err := InstallSnapshotLocal(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var report *openflow.Packet
	net.OnSelf = func(sw int, pkt *openflow.Packet) {
		if sw == 2 {
			report = pkt
		}
	}
	s.Trigger(2, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if report == nil {
		t.Fatal("no local report")
	}
	res, err := DecodeRecords(report.Labels)
	if err != nil || len(res.Nodes) != 6 || len(res.Edges) != 6 {
		t.Fatalf("decoded %v (%v)", res, err)
	}
	// Zero packet-ins: the monitoring loop is complete without the
	// controller channel.
	if c.Stats.PacketIns != 0 {
		t.Errorf("packet-ins = %d, want 0", c.Stats.PacketIns)
	}
}

// TestRuleHitProfile uses the per-entry hardware counters to verify the
// traversal exercises exactly the rules Algorithm 1 predicts: every
// non-root node's first-visit rule fires once, the root's start rule
// fires once, and total expected-return hits equal the number of advances.
func TestRuleHitProfile(t *testing.T) {
	g := topo.RandomConnected(12, 8, 13)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	tr, err := InstallTraversal(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Trigger(0, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if !tr.Completed() {
		t.Fatal("incomplete")
	}

	hits := func(sw int, substr string) (total uint64) {
		for _, tid := range net.Switch(sw).TableIDs() {
			for _, e := range net.Switch(sw).Table(tid).Entries() {
				if strings.Contains(e.Cookie, substr) {
					total += e.Packets
				}
			}
		}
		return total
	}

	for v := 0; v < g.NumNodes(); v++ {
		wantStart := uint64(0)
		if v == 0 {
			wantStart = 1
		}
		if got := hits(v, "/start"); got != wantStart {
			t.Errorf("node %d start hits = %d, want %d", v, got, wantStart)
		}
		wantFirst := uint64(1)
		if v == 0 {
			wantFirst = 0
		}
		if got := hits(v, "/first-in"); got != wantFirst {
			t.Errorf("node %d first-visit hits = %d, want %d", v, got, wantFirst)
		}
		// Each node advances exactly Degree times minus the parent skip:
		// expected returns = number of ports it probed itself. Root
		// probes all deg ports; non-root probes deg-1 (skipping parent).
		wantRet := uint64(g.Degree(v))
		if v != 0 {
			wantRet = uint64(g.Degree(v) - 1)
		}
		if got := hits(v, "/ret-"); got != wantRet {
			t.Errorf("node %d expected-return hits = %d, want %d", v, got, wantRet)
		}
		// The finish rule fires exactly once, at the root.
		if got := hits(v, "/finish"); got != wantStart {
			t.Errorf("node %d finish hits = %d, want %d", v, got, wantStart)
		}
	}
}

// TestForgedTagCanLoopForever documents an honest negative result the
// paper does not discuss: SmartSouth trusts the packet tag. A forged tag
// that marks two adjacent nodes as "finished" (cur = par pointing at each
// other) makes both bounce the packet back and forth indefinitely — an
// in-band amplification hazard. The simulator's event limit catches it;
// a deployment would need ingress tag validation or a hop limit.
func TestForgedTagCanLoopForever(t *testing.T) {
	g := topo.Line(2)
	net := network.New(g, network.Options{MaxSteps: 5_000})
	c := controller.New(net)
	tr, err := InstallTraversal(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Forge: both endpoints finished, cur=par=1 (their mutual ports),
	// traversal already started.
	pkt := tr.L.NewPacket(EthTraversal)
	pkt.Store(tr.L.Start, 1)
	pkt.Store(tr.L.Par[0], 1)
	pkt.Store(tr.L.Cur[0], 1)
	pkt.Store(tr.L.Par[1], 1)
	pkt.Store(tr.L.Cur[1], 1)
	net.Inject(0, 1, pkt, 0) // as if arriving from the link
	_, err = net.Run()
	if err == nil {
		t.Fatal("expected the event limit to stop the forged-tag loop")
	}
	if _, ok := err.(network.ErrEventLimit); !ok {
		t.Fatalf("wrong error: %v", err)
	}
}
