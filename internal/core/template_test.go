package core

import (
	"testing"
	"testing/quick"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// runTraversal installs the bare template on a fresh network, triggers it
// at root, and returns the recorded hops plus completion state.
func runTraversal(t *testing.T, g *topo.Graph, root int, prep func(*network.Network)) ([]network.Hop, bool) {
	t.Helper()
	net := network.New(g, network.Options{})
	c := controller.New(net)
	tr, err := InstallTraversal(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if prep != nil {
		prep(net)
	}
	var hops []network.Hop
	net.OnHop = func(h network.Hop, _ *openflow.Packet, _ bool) { hops = append(hops, h) }
	tr.Trigger(root, 0)
	if _, err := net.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return hops, tr.Completed()
}

func sameHops(a []network.Hop, b []topo.Hop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompiledTraversalMatchesGoldenModel is the central fidelity check:
// the rules compiled by the template, executed by the generic OpenFlow
// pipeline, must reproduce the golden Algorithm-1 simulation hop for hop.
func TestCompiledTraversalMatchesGoldenModel(t *testing.T) {
	shapes := map[string]*topo.Graph{
		"line":    topo.Line(7),
		"ring":    topo.Ring(8),
		"star":    topo.Star(6),
		"tree":    topo.Tree(10, 2),
		"grid":    topo.Grid(3, 4),
		"random":  topo.RandomConnected(15, 10, 3),
		"random2": topo.RandomConnected(24, 30, 9),
	}
	for name, g := range shapes {
		t.Run(name, func(t *testing.T) {
			for root := 0; root < g.NumNodes(); root += 3 {
				golden := topo.GoldenDFS(g, root, topo.Never, topo.Never)
				hops, done := runTraversal(t, g, root, nil)
				if !done {
					t.Fatalf("root %d: no completion report", root)
				}
				if !sameHops(hops, golden.Hops) {
					t.Fatalf("root %d: %d hops vs golden %d; first divergence: compiled %v",
						root, len(hops), len(golden.Hops), firstDiff(hops, golden.Hops))
				}
			}
		})
	}
}

func firstDiff(a []network.Hop, b []topo.Hop) any {
	for i := range a {
		if i >= len(b) {
			return a[i]
		}
		if a[i] != b[i] {
			return []any{i, a[i], b[i]}
		}
	}
	return "length"
}

// Property: compiled execution equals the golden model on random
// connected graphs with random roots.
func TestQuickCompiledEqualsGolden(t *testing.T) {
	check := func(seed int64, nRaw, extraRaw uint8) bool {
		n := 2 + int(nRaw%18)
		g := topo.RandomConnected(n, int(extraRaw%12), seed)
		root := int(uint64(seed) % uint64(n))
		golden := topo.GoldenDFS(g, root, topo.Never, topo.Never)

		net := network.New(g, network.Options{})
		c := controller.New(net)
		tr, err := InstallTraversal(c, g, 0)
		if err != nil {
			return false
		}
		var hops []network.Hop
		net.OnHop = func(h network.Hop, _ *openflow.Packet, _ bool) { hops = append(hops, h) }
		tr.Trigger(root, 0)
		if _, err := net.Run(); err != nil {
			return false
		}
		return tr.Completed() && sameHops(hops, golden.Hops)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTraversalMessageComplexity verifies the Table-2 in-band message
// count: a full sweep costs 4E - 2n + 2 link crossings.
func TestTraversalMessageComplexity(t *testing.T) {
	for _, g := range []*topo.Graph{topo.Ring(10), topo.Grid(4, 4), topo.RandomConnected(20, 14, 1)} {
		hops, done := runTraversal(t, g, 0, nil)
		if !done {
			t.Fatal("incomplete")
		}
		want := 4*g.NumEdges() - 2*g.NumNodes() + 2
		if len(hops) != want {
			t.Errorf("hops = %d, want %d", len(hops), want)
		}
	}
}

// TestTraversalSurvivesPreExistingFailures checks the fast-failover
// robustness: links failed *before* the trigger (no recompilation, no
// controller action) are routed around, and the traversal still covers
// the root's connected component.
func TestTraversalSurvivesPreExistingFailures(t *testing.T) {
	g := topo.Grid(4, 4)
	fails := [][2]int{{0, 1}, {5, 6}, {10, 14}}
	dead := func(u, p int) bool {
		v, _, _ := g.Neighbor(u, p)
		for _, f := range fails {
			if (u == f[0] && v == f[1]) || (u == f[1] && v == f[0]) {
				return true
			}
		}
		return false
	}
	golden := topo.GoldenDFS(g, 0, dead, topo.Never)
	if !golden.Completed {
		t.Fatal("golden model says the component is unreachable — bad test setup")
	}
	hops, done := runTraversal(t, g, 0, func(net *network.Network) {
		for _, f := range fails {
			if err := net.SetLinkDown(f[0], f[1], true); err != nil {
				t.Fatal(err)
			}
		}
	})
	if !done {
		t.Fatal("traversal did not survive link failures")
	}
	if !sameHops(hops, golden.Hops) {
		t.Fatalf("diverged from golden under failures: %v", firstDiff(hops, golden.Hops))
	}
	if len(golden.FirstVisits) != len(topo.Reachable(g, 0, dead)) {
		t.Error("golden coverage mismatch")
	}
}

// Property: with random pre-existing link failures, the compiled
// traversal still matches the golden model hop for hop (fast failover is
// part of Algorithm 1's compiled form, not an afterthought).
func TestQuickCompiledEqualsGoldenUnderFailures(t *testing.T) {
	check := func(seed int64, nRaw, extraRaw, killRaw uint8) bool {
		n := 3 + int(nRaw%14)
		g := topo.RandomConnected(n, int(extraRaw%10), seed)
		root := int(uint64(seed) % uint64(n))

		net := network.New(g, network.Options{})
		c := controller.New(net)
		tr, err := InstallTraversal(c, g, 0)
		if err != nil {
			return false
		}
		dead := map[[2]int]bool{}
		for k := int(killRaw % 4); k > 0; k-- {
			e := g.Edges()[(int(killRaw)*7+k*3)%g.NumEdges()]
			if err := net.SetLinkDown(e.U, e.V, true); err != nil {
				return false
			}
			dead[[2]int{e.U, e.V}] = true
		}
		deadPred := func(u, p int) bool {
			v, _, _ := g.Neighbor(u, p)
			return dead[[2]int{u, v}] || dead[[2]int{v, u}]
		}
		golden := topo.GoldenDFS(g, root, deadPred, topo.Never)

		var hops []network.Hop
		net.OnHop = func(h network.Hop, _ *openflow.Packet, _ bool) { hops = append(hops, h) }
		tr.Trigger(root, 0)
		if _, err := net.Run(); err != nil {
			return false
		}
		return tr.Completed() == golden.Completed && sameHops(hops, golden.Hops)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestTraversalDisconnectedComponent: when failures split the network,
// the traversal covers the root's side and still reports completion.
func TestTraversalPartitionedStillCompletes(t *testing.T) {
	g := topo.Line(6)
	_, done := runTraversal(t, g, 0, func(net *network.Network) {
		if err := net.SetLinkDown(2, 3, true); err != nil {
			t.Fatal(err)
		}
	})
	if !done {
		t.Fatal("partitioned traversal must still complete on the root side")
	}
}

// TestTriggerAtEveryRootIndependently: a second traversal (fresh packet)
// works after the first completed, since all per-node state lives in the
// packet, not the switches.
func TestBackToBackTraversals(t *testing.T) {
	g := topo.Ring(6)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	tr, err := InstallTraversal(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Trigger(0, 0)
	tr.Trigger(3, network.Time(1_000_000)) // well after the first finishes
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	reports := 0
	for _, pi := range c.Inbox() {
		if pi.Pkt.EthType == EthTraversal {
			reports++
		}
	}
	if reports != 2 {
		t.Fatalf("reports = %d, want 2 (state must live in the packet)", reports)
	}
}

func TestLayoutAllocations(t *testing.T) {
	g := topo.Star(5) // centre degree 4, leaves degree 1
	l := NewLayout(g)
	if l.Start.Bits != 2 {
		t.Error("start width")
	}
	if l.Par[0].Bits != 3 || l.Cur[0].Bits != 3 { // values 0..4 need 3 bits
		t.Errorf("centre fields %d/%d bits, want 3", l.Par[0].Bits, l.Cur[0].Bits)
	}
	if l.Par[1].Bits != 1 { // values 0..1
		t.Errorf("leaf par %d bits, want 1", l.Par[1].Bits)
	}
	f := l.Alloc("gid", 16)
	if f.Bits != 16 || f.Off != l.TagBits()-16 {
		t.Error("alloc placement")
	}
	// Fields must not overlap: set every field to its max and read back.
	pkt := l.NewPacket(EthTraversal)
	all := append([]openflow.Field{l.Start, f}, append(l.Par, l.Cur...)...)
	for _, fl := range all {
		pkt.Store(fl, fl.Max())
	}
	for _, fl := range all {
		if pkt.Load(fl) != fl.Max() {
			t.Fatalf("field %s overlaps another", fl)
		}
	}
}

func TestSlotAssignments(t *testing.T) {
	t0a, tfa, gba := Slot(0)
	t0b, tfb, gbb := Slot(1)
	if t0a < 1 || tfa <= t0a || t0b <= tfa || tfb <= t0b || gba == gbb {
		t.Errorf("slot overlap: %d %d %d %d %d %d", t0a, tfa, t0b, tfb, gba, gbb)
	}
}

func TestTemplateValidation(t *testing.T) {
	g := topo.Line(2)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	bad := &Template{G: g, L: NewLayout(g), Eth: 1, T0: 0, TFin: 1}
	if err := bad.Install(c); err == nil {
		t.Error("T0=0 accepted")
	}
	other := topo.Line(3)
	bad2 := &Template{G: g, L: NewLayout(other), Eth: 1, T0: 1, TFin: 2}
	if err := bad2.Install(c); err == nil {
		t.Error("foreign layout accepted")
	}
}
