package core

import (
	"testing"
	"testing/quick"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

func chainRig(t *testing.T, g *topo.Graph, chain [][]int) (*Chaincast, *network.Network, *controller.Controller, *[]delivery) {
	t.Helper()
	net := network.New(g, network.Options{})
	c := controller.New(net)
	cc, err := InstallChaincast(c, g, 0, chain)
	if err != nil {
		t.Fatal(err)
	}
	return cc, net, c, captureSelf(net)
}

func memberOf(sw int, group []int) bool {
	for _, m := range group {
		if m == sw {
			return true
		}
	}
	return false
}

func TestChaincastVisitsStagesInOrder(t *testing.T) {
	g := topo.Grid(4, 4)
	chain := [][]int{{5, 10}, {3}, {12, 15}}
	cc, net, c, got := chainRig(t, g, chain)
	cc.Send(0, []byte("chained"), 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != len(chain) {
		t.Fatalf("deliveries = %v, want one per stage", *got)
	}
	for s, d := range *got {
		if !memberOf(d.sw, chain[s]) {
			t.Errorf("stage %d delivered at %d, not a member of %v", s, d.sw, chain[s])
		}
		if string(d.pkt.Payload) != "chained" {
			t.Errorf("stage %d payload %q", s, d.pkt.Payload)
		}
	}
	if c.Stats.RuntimeMsgs() != 0 {
		t.Errorf("out-band msgs = %d, want 0", c.Stats.RuntimeMsgs())
	}
	// Bounded by one sweep per stage.
	if max := 3 * (4*g.NumEdges() - 2*g.NumNodes() + 2); net.InBandCount(EthChaincast) > max {
		t.Errorf("in-band = %d > %d", net.InBandCount(EthChaincast), max)
	}
}

func TestChaincastSameNodeConsecutiveStages(t *testing.T) {
	g := topo.Ring(6)
	chain := [][]int{{3}, {3}, {5}}
	cc, net, _, got := chainRig(t, g, chain)
	cc.Send(0, nil, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 3 || (*got)[0].sw != 3 || (*got)[1].sw != 3 || (*got)[2].sw != 5 {
		t.Fatalf("deliveries = %v, want [3 3 5]", *got)
	}
}

func TestChaincastSourceIsFirstMember(t *testing.T) {
	g := topo.Line(4)
	chain := [][]int{{1}, {3}}
	cc, net, _, got := chainRig(t, g, chain)
	cc.Send(1, nil, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 || (*got)[0].sw != 1 || (*got)[1].sw != 3 {
		t.Fatalf("deliveries = %v, want [1 3]", *got)
	}
}

func TestChaincastRoutesAroundFailures(t *testing.T) {
	g := topo.Ring(8)
	chain := [][]int{{4}, {0}}
	cc, net, _, got := chainRig(t, g, chain)
	// Cut the short path to 4 and the short way back.
	if err := net.SetLinkDown(1, 2, true); err != nil {
		t.Fatal(err)
	}
	cc.Send(0, nil, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 || (*got)[0].sw != 4 || (*got)[1].sw != 0 {
		t.Fatalf("deliveries = %v, want [4 0]", *got)
	}
}

func TestChaincastStageUnreachableStops(t *testing.T) {
	g := topo.Line(5)
	chain := [][]int{{1}, {4}, {0}}
	cc, net, _, got := chainRig(t, g, chain)
	if err := net.SetLinkDown(2, 3, true); err != nil { // stage-1 member 4 unreachable
		t.Fatal(err)
	}
	cc.Send(0, nil, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || (*got)[0].sw != 1 {
		t.Fatalf("deliveries = %v, want only stage 0 at node 1", *got)
	}
}

func TestChaincastValidation(t *testing.T) {
	g := topo.Line(3)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	if _, err := InstallChaincast(c, g, 0, nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := InstallChaincast(c, g, 0, [][]int{{}}); err == nil {
		t.Error("empty stage accepted")
	}
	if _, err := InstallChaincast(c, g, 0, [][]int{{9}}); err == nil {
		t.Error("out-of-range member accepted")
	}
}

// Property: on random graphs with random 2-stage chains, exactly one
// member per stage is visited, in order.
func TestQuickChaincast(t *testing.T) {
	check := func(seed int64, nRaw, extraRaw, aRaw, bRaw, srcRaw uint8) bool {
		n := 4 + int(nRaw%10)
		g := topo.RandomConnected(n, int(extraRaw%8), seed)
		chain := [][]int{{int(aRaw) % n}, {int(bRaw) % n}}
		src := int(srcRaw) % n

		net := network.New(g, network.Options{})
		c := controller.New(net)
		cc, err := InstallChaincast(c, g, 0, chain)
		if err != nil {
			return false
		}
		var got []int
		net.OnSelf = func(sw int, _ *openflow.Packet) { got = append(got, sw) }
		cc.Send(src, nil, 0)
		if _, err := net.Run(); err != nil {
			return false
		}
		return len(got) == 2 && got[0] == chain[0][0] && got[1] == chain[1][0]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
