package core

import (
	"fmt"
	"strings"

	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// Rule priorities within a service's entry table. Services may install
// their own pre-rules at PrioService and above (e.g. the anycast receiver
// exit); the template owns everything below.
//
// The relative order encodes Algorithm 1:
//
//	start (pkt.start=0)          -> the switch becomes the DFS root
//	first visit (cur=0)          -> record parent, probe first port
//	finished (cur=par, par>=1)   -> the paper's "act as if in < cur" case
//	expected return (in=cur)     -> advance to the next port
//	seen bounce (in < cur)       -> unexpected arrival on an already
//	                                probed port
//	new bounce (any other in)    -> unexpected arrival, bounce back
const (
	PrioService  = 10000
	PrioStart    = 9000
	PrioFirst    = 8000
	PrioFinished = 7500
	PrioExpected = 7000
	PrioSeen     = 6000
	PrioNew      = 5000
	PrioFinish   = 1000 // in the finish table
)

// Variant is a conditional refinement of a template rule: an extra set of
// match criteria plus extra actions. The compiler emits the base rule and,
// above it, one rule per variant carrying base+extra matches and actions.
// A Terminal variant replaces the rule's forwarding continuation entirely
// (used e.g. when the critical-node service decides and reports instead of
// continuing the traversal).
type Variant struct {
	Match    []openflow.FieldMatch
	Do       []openflow.Action
	Terminal bool
}

// Hooks are the service-specific functions of Table 1. Every hook may be
// nil. Hooks run at *compile time* and return the constant actions (or
// match-refined rule variants) to install; nothing here executes per
// packet.
type Hooks struct {
	// RootStart runs when the trigger packet starts the traversal at this
	// node (pkt.start = 0).
	RootStart func(node int) []openflow.Action
	// FirstVisit corresponds to First_visit(): node saw the packet for
	// the first time, arriving on port in.
	FirstVisit func(node, in int) []Variant
	// FromCur corresponds to Visit_from_cur(): the packet returned on the
	// expected port cur while the packet's parent field for this node
	// holds par (0 at the root).
	FromCur func(node, cur, par int) []Variant
	// BounceSplit selects the two-case Visit_not_from_cur() treatment the
	// snapshot service needs (in < cur versus the rest). When false, a
	// single Bounce hook handles all unexpected arrivals.
	BounceSplit bool
	// BouncePerIn enumerates the ingress port on every bounce rule
	// (including the finished-state rules), so bounce hooks receive a
	// concrete port instead of openflow.AnyPort. Costs O(Δ) extra rules
	// per node; the packet-loss monitor needs it to tick the egress
	// counter of the port it bounces out of.
	BouncePerIn bool
	// Bounce corresponds to Visit_not_from_cur() (BounceSplit == false).
	// in is openflow.AnyPort on wildcard-ingress rules.
	Bounce func(node, in int) []Variant
	// BounceSeen handles unexpected arrivals on a port the node has
	// already probed itself (in < cur, or cur = par). in is
	// openflow.AnyPort on the wildcard finished-state rules.
	BounceSeen func(node, in int) []Variant
	// BounceNew handles unexpected arrivals on a not-yet-probed port.
	BounceNew func(node, in int) []Variant
	// SendNext corresponds to Send_next_neighbor(): actions placed in the
	// fast-failover bucket that forwards via port out, in the group
	// parameterised by (scan-start s, parent par).
	SendNext func(node, s, par, out int) []openflow.Action
	// SendParent corresponds to Send_parent().
	SendParent func(node, par int) []openflow.Action
	// Finish corresponds to Finish(): the root completed the traversal.
	Finish func(node int) []openflow.Action

	// DeferOutput changes the advance groups so that buckets *select* the
	// output port (writing it into OutField) without emitting the packet;
	// the rule's goto into the finish table then decides what to do —
	// typically after matching a fetched smart-counter value. The service
	// must install finish-table rules that Output{OutField's value}; the
	// root's finish sets OutField to 0. Bounce rules still emit directly.
	DeferOutput bool
	OutField    openflow.Field
	// UpField, when valid under the stateful backend, is a 1-bit packet
	// field the lowering sets to 1 on parent-return advances and 0 on
	// child advances. DeferOutput services whose finish-table rules need
	// to tell the two apart use it: under OF13 they match the packet's
	// par field against OutField, but the stateful backend keeps par in
	// switch state where a finish-table flow rule cannot see it.
	UpField openflow.Field

	// Uniform declares that every hook's output depends only on the node's
	// degree and the port/state arguments — never on the node id itself
	// (no node-id constants in pushed labels, match values or actions).
	// The compiler then memoizes rule blocks per degree: one representative
	// node per degree is compiled in full and every other node of the same
	// degree receives a copy with only its per-node state fields and rule
	// cookies rewritten. On regular topologies this turns an O(n·Δ²)
	// compile into O(Δ²) + O(n·Δ) copying.
	Uniform bool
}

// Template compiles Algorithm 1 for every node of a graph into flow and
// group entries. A service instance owns an EtherType, a block of table
// IDs and a group-ID base so that several services coexist on one switch.
type Template struct {
	G *topo.Graph
	L *Layout
	// Eth is the service EtherType; table 0 dispatches on it.
	Eth uint16
	// T0 is the service's entry table, TFin the finish table. T0 must be
	// >= 1 (table 0 belongs to the dispatcher) and TFin > T0.
	T0, TFin int
	// GroupBase offsets this service's group IDs on every switch.
	GroupBase uint32
	Hooks     Hooks

	// StateStart / StatePar / StateCur override the DFS state fields
	// (defaults: L.Start, L.Par, L.Cur). Multi-stage services allocate
	// one state set per stage via Layout.NewStage.
	StateStart openflow.Field
	StatePar   []openflow.Field
	StateCur   []openflow.Field
	// DispatchFields adds criteria to the table-0 dispatcher rule, so
	// several templates sharing an EtherType (e.g. chaincast stages) can
	// demultiplex on a stage field.
	DispatchFields []openflow.FieldMatch

	// noMemo disables the per-degree memoization even for Uniform hooks;
	// the compile benchmark uses it to measure the win.
	noMemo bool
}

// stateFields resolves the effective DFS state fields for node i.
func (t *Template) stateFields(i int) (S, P, C openflow.Field) {
	S, P, C = t.L.Start, t.L.Par[i], t.L.Cur[i]
	if t.StateStart.Valid() {
		S = t.StateStart
	}
	if t.StatePar != nil {
		P = t.StatePar[i]
	}
	if t.StateCur != nil {
		C = t.StateCur[i]
	}
	return S, P, C
}

// AdvGroup returns the ID of node's fast-failover advance group that
// scans ports s, s+1, …, Δ (skipping par) and falls back to the parent.
// Group IDs only need to be unique per switch.
func (t *Template) AdvGroup(node, s, par int) uint32 {
	d := t.G.Degree(node)
	return t.GroupBase + uint32(s*(d+2)+par)
}

// nodeBlock is the compiled rule block of one node: every flow rule and
// group entry the template produces for it. Blocks are the unit of the
// per-degree memoization — a block compiled for a representative node can
// be re-targeted to any other node of the same degree.
type nodeBlock struct {
	node   int
	flows  []openflow.FlowRule
	groups []*openflow.GroupEntry
}

func (b *nodeBlock) addFlow(table int, e *openflow.FlowEntry) {
	b.flows = append(b.flows, openflow.FlowRule{Table: table, Entry: e})
}

func (b *nodeBlock) addGroup(g *openflow.GroupEntry) {
	b.groups = append(b.groups, g)
}

// Compile compiles the template for every node of the graph into the
// program (the paper's offline stage, minus installation). With
// Hooks.Uniform set, nodes sharing a degree share one compiled block,
// re-targeted per node by rewriting state fields and cookies.
func (t *Template) Compile(p *openflow.Program) error {
	if err := t.validate(); err != nil {
		return err
	}
	if t.L.TagBytes() > p.TagBytes {
		p.TagBytes = t.L.TagBytes()
	}
	memo := map[int]*nodeBlock{}
	for node := 0; node < t.G.NumNodes(); node++ {
		d := t.G.Degree(node)
		p.Ensure(node, d)
		var b *nodeBlock
		if t.Hooks.Uniform && !t.noMemo {
			if rep, ok := memo[d]; ok {
				b = t.retarget(rep, node)
			} else {
				b = t.compileNode(node)
				memo[d] = b
			}
		} else {
			b = t.compileNode(node)
		}
		for _, fr := range b.flows {
			p.AddFlow(node, fr.Table, fr.Entry)
		}
		for _, g := range b.groups {
			p.AddGroup(node, g)
		}
	}
	return nil
}

func (t *Template) validate() error {
	if t.T0 < 1 || t.TFin <= t.T0 {
		return fmt.Errorf("core: invalid table block T0=%d TFin=%d", t.T0, t.TFin)
	}
	if t.L == nil || t.L.G != t.G {
		return fmt.Errorf("core: layout does not belong to this graph")
	}
	if t.Hooks.DeferOutput && !t.Hooks.OutField.Valid() {
		return fmt.Errorf("core: DeferOutput requires a valid OutField")
	}
	return nil
}

// Install compiles the template into a standalone program and hands it to
// the control plane in one batch. Services that add their own rules
// compose Compile into a shared service program instead.
func (t *Template) Install(c ControlPlane) error {
	p := openflow.NewProgram(fmt.Sprintf("svc%04x", t.Eth), (t.T0-1)/10)
	if err := t.Compile(p); err != nil {
		return err
	}
	c.InstallProgram(p)
	return nil
}

// retarget produces node's block from a representative block of the same
// degree: per-node DFS state fields are remapped (the layout gives every
// node its own Par/Cur bits) and the node id inside rule cookies is
// rewritten. Everything else — group IDs, priorities, port constants — is
// degree-determined and carried over as-is; Hooks.Uniform is the caller's
// promise that no other node-specific constant exists.
func (t *Template) retarget(rep *nodeBlock, node int) *nodeBlock {
	_, repP, repC := t.stateFields(rep.node)
	_, nodeP, nodeC := t.stateFields(node)
	fm := map[openflow.Field]openflow.Field{repP: nodeP, repC: nodeC}
	oldTag := fmt.Sprintf("/n%d/", rep.node)
	newTag := fmt.Sprintf("/n%d/", node)

	out := &nodeBlock{node: node}
	out.flows = make([]openflow.FlowRule, len(rep.flows))
	for i, fr := range rep.flows {
		ne := *fr.Entry
		ne.Cookie = strings.ReplaceAll(ne.Cookie, oldTag, newTag)
		if len(ne.Match.Fields) > 0 {
			fs := make([]openflow.FieldMatch, len(ne.Match.Fields))
			copy(fs, ne.Match.Fields)
			for j := range fs {
				if nf, ok := fm[fs[j].F]; ok {
					fs[j].F = nf
				}
			}
			ne.Match.Fields = fs
		}
		ne.Actions = remapActions(ne.Actions, fm)
		out.flows[i] = openflow.FlowRule{Table: fr.Table, Entry: &ne}
	}
	out.groups = make([]*openflow.GroupEntry, len(rep.groups))
	for i, g := range rep.groups {
		ng := &openflow.GroupEntry{ID: g.ID, Type: g.Type, Buckets: make([]openflow.Bucket, len(g.Buckets))}
		for j, bk := range g.Buckets {
			ng.Buckets[j] = openflow.Bucket{WatchPort: bk.WatchPort, Actions: remapActions(bk.Actions, fm)}
		}
		out.groups[i] = ng
	}
	return out
}

// remapActions rewrites SetField targets through fm. SetField is the only
// action kind that names a tag field, so the remap is complete by
// construction.
func remapActions(acts []openflow.Action, fm map[openflow.Field]openflow.Field) []openflow.Action {
	out := make([]openflow.Action, len(acts))
	for i, a := range acts {
		if sf, ok := a.(openflow.SetField); ok {
			if nf, ok := fm[sf.F]; ok {
				sf.F = nf
			}
			out[i] = sf
			continue
		}
		out[i] = a
	}
	return out
}

func (t *Template) compileNode(i int) *nodeBlock {
	b := &nodeBlock{node: i}
	d := t.G.Degree(i)
	S, P, C := t.stateFields(i)
	base := openflow.MatchEth(t.Eth)

	// Dispatcher: table 0 demultiplexes the service EtherType (plus any
	// extra dispatch criteria, e.g. a chain-stage field).
	disp := base
	for _, fm := range t.DispatchFields {
		disp = disp.WithMasked(fm.F, fm.Value, fm.Mask)
	}
	b.addFlow(0, &openflow.FlowEntry{
		Priority: 100, Match: disp, Goto: t.T0,
		Cookie: fmt.Sprintf("svc%04x/dispatch", t.Eth),
	})

	// Advance groups: for every scan start s and parent value par, probe
	// ports s..d in order, skipping par and dead ports (fast failover),
	// then fall back to the parent (par >= 1) or finish (par = 0, root).
	for s := 1; s <= d+1; s++ {
		for par := 0; par <= d; par++ {
			var buckets []openflow.Bucket
			for k := s; k <= d; k++ {
				if k == par {
					continue
				}
				var acts []openflow.Action
				if t.Hooks.SendNext != nil {
					acts = append(acts, t.Hooks.SendNext(i, s, par, k)...)
				}
				acts = append(acts, openflow.SetField{F: C, Value: uint64(k)})
				if t.Hooks.DeferOutput {
					acts = append(acts, openflow.SetField{F: t.Hooks.OutField, Value: uint64(k)})
				} else {
					acts = append(acts, openflow.Output{Port: k})
				}
				buckets = append(buckets, openflow.Bucket{WatchPort: k, Actions: acts})
			}
			if par >= 1 {
				var acts []openflow.Action
				if t.Hooks.SendParent != nil {
					acts = append(acts, t.Hooks.SendParent(i, par)...)
				}
				acts = append(acts, openflow.SetField{F: C, Value: uint64(par)})
				if t.Hooks.DeferOutput {
					acts = append(acts, openflow.SetField{F: t.Hooks.OutField, Value: uint64(par)})
				} else {
					acts = append(acts, openflow.Output{Port: par})
				}
				buckets = append(buckets, openflow.Bucket{WatchPort: openflow.WatchNone, Actions: acts})
			} else {
				// Root fallback: mark finished (cur := 0); the entry
				// rule's goto into the finish table picks it up.
				acts := []openflow.Action{openflow.SetField{F: C, Value: 0}}
				if t.Hooks.DeferOutput {
					acts = append(acts, openflow.SetField{F: t.Hooks.OutField, Value: 0})
				}
				buckets = append(buckets, openflow.Bucket{WatchPort: openflow.WatchNone, Actions: acts})
			}
			b.addGroup(&openflow.GroupEntry{ID: t.AdvGroup(i, s, par), Type: openflow.GroupFF, Buckets: buckets})
		}
	}

	// emit installs a base rule plus its variants.
	emit := func(table, prio int, m openflow.Match, pre []openflow.Action,
		cont []openflow.Action, gotoT int, vs []Variant, cookie string) {
		// A variant with no extra match criteria is unconditional: fold
		// its actions into the base rule (and, transitively, into every
		// conditional variant) instead of emitting a shadowing rule.
		var conditional []Variant
		for _, v := range vs {
			if len(v.Match) == 0 && !v.Terminal {
				pre = append(append([]openflow.Action{}, pre...), v.Do...)
			} else {
				conditional = append(conditional, v)
			}
		}
		vs = conditional
		all := append(append([]openflow.Action{}, pre...), cont...)
		b.addFlow(table, &openflow.FlowEntry{
			Priority: prio, Match: m, Actions: all, Goto: gotoT, Cookie: cookie,
		})
		for vi, v := range vs {
			vm := m
			for _, fm := range v.Match {
				vm = vm.WithMasked(fm.F, fm.Value, fm.Mask)
			}
			var acts []openflow.Action
			g := gotoT
			if v.Terminal {
				acts = append([]openflow.Action{}, v.Do...)
				g = openflow.NoGoto
			} else {
				acts = append(append(append([]openflow.Action{}, pre...), v.Do...), cont...)
			}
			b.addFlow(table, &openflow.FlowEntry{
				Priority: prio + 1 + vi, Match: vm, Actions: acts, Goto: g,
				Cookie: fmt.Sprintf("%s/v%d", cookie, vi),
			})
		}
	}

	// Start rule: pkt.start = 0 — this switch becomes the DFS root.
	var rootActs []openflow.Action
	rootActs = append(rootActs, openflow.SetField{F: S, Value: 1})
	if t.Hooks.RootStart != nil {
		rootActs = append(rootActs, t.Hooks.RootStart(i)...)
	}
	emit(t.T0, PrioStart, base.WithField(S, 0), rootActs,
		[]openflow.Action{openflow.Group{ID: t.AdvGroup(i, 1, 0)}}, t.TFin, nil,
		fmt.Sprintf("svc%04x/n%d/start", t.Eth, i))

	// First visit: cur = 0, one rule per ingress port, because set-field
	// can only write immediates — the packet's parent field is set to the
	// constant q of the matching rule.
	for q := 1; q <= d; q++ {
		var vs []Variant
		if t.Hooks.FirstVisit != nil {
			vs = t.Hooks.FirstVisit(i, q)
		}
		emit(t.T0, PrioFirst, base.WithInPort(q).WithField(C, 0),
			[]openflow.Action{openflow.SetField{F: P, Value: uint64(q)}},
			[]openflow.Action{openflow.Group{ID: t.AdvGroup(i, 1, q)}}, t.TFin, vs,
			fmt.Sprintf("svc%04x/n%d/first-in%d", t.Eth, i, q))
	}

	// seenHook resolves which hook covers "already seen" arrivals.
	seenHook := t.Hooks.Bounce
	if t.Hooks.BounceSplit {
		seenHook = t.Hooks.BounceSeen
	}
	callHook := func(h func(int, int) []Variant, node, in int) []Variant {
		if h == nil {
			return nil
		}
		return h(node, in)
	}

	// Finished state (cur = par >= 1): every arrival is treated like the
	// "already seen" bounce, per the paper's cur=par remark.
	for p := 1; p <= d; p++ {
		m := base.WithField(C, uint64(p)).WithField(P, uint64(p))
		if t.Hooks.BouncePerIn {
			for q := 1; q <= d; q++ {
				emit(t.T0, PrioFinished, m.WithInPort(q),
					nil, []openflow.Action{openflow.Output{Port: openflow.PortInPort}}, openflow.NoGoto,
					callHook(seenHook, i, q),
					fmt.Sprintf("svc%04x/n%d/done-p%d-in%d", t.Eth, i, p, q))
			}
			continue
		}
		emit(t.T0, PrioFinished, m,
			nil, []openflow.Action{openflow.Output{Port: openflow.PortInPort}}, openflow.NoGoto,
			callHook(seenHook, i, openflow.AnyPort),
			fmt.Sprintf("svc%04x/n%d/done-p%d", t.Eth, i, p))
	}

	// Expected return (in = cur): advance to cur+1. One rule per
	// (cur, parent-value) pair, since the next advance group depends on
	// the parent.
	for q := 1; q <= d; q++ {
		for p := 0; p <= d; p++ {
			if p == q {
				continue // cur = par is the finished state above
			}
			var vs []Variant
			if t.Hooks.FromCur != nil {
				vs = t.Hooks.FromCur(i, q, p)
			}
			emit(t.T0, PrioExpected,
				base.WithInPort(q).WithField(C, uint64(q)).WithField(P, uint64(p)),
				nil, []openflow.Action{openflow.Group{ID: t.AdvGroup(i, q+1, p)}}, t.TFin, vs,
				fmt.Sprintf("svc%04x/n%d/ret-c%d-p%d", t.Eth, i, q, p))
		}
	}

	// Unexpected arrivals. With BounceSplit, arrivals on an already
	// probed port (in < cur) are distinguished from the rest by
	// enumerating (in, cur) pairs — the flow-table comparison technique
	// of the paper's reference [2].
	if t.Hooks.BounceSplit {
		for q := 1; q <= d; q++ {
			for cv := q + 1; cv <= d; cv++ {
				emit(t.T0, PrioSeen, base.WithInPort(q).WithField(C, uint64(cv)),
					nil, []openflow.Action{openflow.Output{Port: openflow.PortInPort}}, openflow.NoGoto,
					callHook(t.Hooks.BounceSeen, i, q),
					fmt.Sprintf("svc%04x/n%d/seen-in%d-c%d", t.Eth, i, q, cv))
			}
			emit(t.T0, PrioNew, base.WithInPort(q),
				nil, []openflow.Action{openflow.Output{Port: openflow.PortInPort}}, openflow.NoGoto,
				callHook(t.Hooks.BounceNew, i, q),
				fmt.Sprintf("svc%04x/n%d/new-in%d", t.Eth, i, q))
		}
	} else if t.Hooks.BouncePerIn {
		for q := 1; q <= d; q++ {
			emit(t.T0, PrioNew, base.WithInPort(q),
				nil, []openflow.Action{openflow.Output{Port: openflow.PortInPort}}, openflow.NoGoto,
				callHook(t.Hooks.Bounce, i, q),
				fmt.Sprintf("svc%04x/n%d/bounce-in%d", t.Eth, i, q))
		}
	} else {
		emit(t.T0, PrioNew, base, nil,
			[]openflow.Action{openflow.Output{Port: openflow.PortInPort}}, openflow.NoGoto,
			callHook(t.Hooks.Bounce, i, openflow.AnyPort),
			fmt.Sprintf("svc%04x/n%d/bounce", t.Eth, i))
	}

	// Finish table: reached by goto after every advance; fires only when
	// the advance group's root fallback set cur := 0 (and par = 0, i.e.
	// this node is the root).
	var fin []openflow.Action
	if t.Hooks.Finish != nil {
		fin = t.Hooks.Finish(i)
	}
	b.addFlow(t.TFin, &openflow.FlowEntry{
		Priority: PrioFinish,
		Match:    base.WithField(C, 0).WithField(P, 0),
		Actions:  fin, Goto: openflow.NoGoto,
		Cookie: fmt.Sprintf("svc%04x/n%d/finish", t.Eth, i),
	})
	return b
}
