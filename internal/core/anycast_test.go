package core

import (
	"testing"
	"testing/quick"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

type delivery struct {
	sw  int
	pkt *openflow.Packet
}

func captureSelf(net *network.Network) *[]delivery {
	var ds []delivery
	net.OnSelf = func(sw int, pkt *openflow.Packet) { ds = append(ds, delivery{sw, pkt}) }
	return &ds
}

func TestAnycastDeliversToAMember(t *testing.T) {
	g := topo.Grid(4, 4)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	members := map[uint32][]int{7: {10, 15}}
	a, err := InstallAnycast(c, g, 0, members)
	if err != nil {
		t.Fatal(err)
	}
	got := captureSelf(net)

	a.Send(0, 7, []byte("hello"), 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(*got))
	}
	d := (*got)[0]
	if d.sw != 10 && d.sw != 15 {
		t.Errorf("delivered at %d, want a member of {10,15}", d.sw)
	}
	if string(d.pkt.Payload) != "hello" {
		t.Errorf("payload = %q", d.pkt.Payload)
	}
	// Zero out-of-band messages (Table 2).
	if c.Stats.RuntimeMsgs() != 0 {
		t.Errorf("out-band msgs = %d, want 0", c.Stats.RuntimeMsgs())
	}
	// In-band bounded by a full sweep.
	if max := 4*g.NumEdges() - 2*g.NumNodes() + 2; net.InBandCount(EthAnycast) > max {
		t.Errorf("in-band msgs = %d > full sweep %d", net.InBandCount(EthAnycast), max)
	}
}

func TestAnycastSourceIsMember(t *testing.T) {
	g := topo.Ring(5)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	a, err := InstallAnycast(c, g, 0, map[uint32][]int{1: {2}})
	if err != nil {
		t.Fatal(err)
	}
	got := captureSelf(net)
	a.Send(2, 1, nil, 0)
	net.Run()
	if len(*got) != 1 || (*got)[0].sw != 2 {
		t.Fatalf("deliveries = %v", *got)
	}
	if net.InBandCount(EthAnycast) != 0 {
		t.Errorf("in-band msgs = %d, want 0 (local exit)", net.InBandCount(EthAnycast))
	}
}

func TestAnycastNoMemberReachable(t *testing.T) {
	g := topo.Line(6)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	a, err := InstallAnycast(c, g, 0, map[uint32][]int{3: {5}})
	if err != nil {
		t.Fatal(err)
	}
	got := captureSelf(net)
	// Partition member 5 away from the source.
	if err := net.SetLinkDown(2, 3, true); err != nil {
		t.Fatal(err)
	}
	a.Send(0, 3, nil, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatalf("unexpected delivery %v", *got)
	}
	// Unknown gid behaves the same way: full sweep, then dropped.
	a.Send(0, 999, nil, 1_000_000)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatal("unknown group must not deliver")
	}
}

func TestAnycastRoutesAroundFailures(t *testing.T) {
	g := topo.Ring(8)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	a, err := InstallAnycast(c, g, 0, map[uint32][]int{1: {4}})
	if err != nil {
		t.Fatal(err)
	}
	got := captureSelf(net)
	// Break the short way round; the sweep must reach 4 the other way.
	if err := net.SetLinkDown(1, 2, true); err != nil {
		t.Fatal(err)
	}
	a.Send(0, 1, nil, 0)
	net.Run()
	if len(*got) != 1 || (*got)[0].sw != 4 {
		t.Fatalf("deliveries = %v, want node 4", *got)
	}
}

func TestAnycastMultipleGroupsCoexist(t *testing.T) {
	g := topo.Grid(3, 3)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	a, err := InstallAnycast(c, g, 0, map[uint32][]int{1: {8}, 2: {6}})
	if err != nil {
		t.Fatal(err)
	}
	got := captureSelf(net)
	a.Send(0, 1, nil, 0)
	a.Send(0, 2, nil, 1_000_000)
	net.Run()
	if len(*got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(*got))
	}
	seen := map[int]bool{}
	for _, d := range *got {
		seen[d.sw] = true
	}
	if !seen[8] || !seen[6] {
		t.Errorf("delivered at %v, want {8, 6}", seen)
	}
}

func TestAnycastRejectsBadMember(t *testing.T) {
	g := topo.Line(3)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	if _, err := InstallAnycast(c, g, 0, map[uint32][]int{1: {99}}); err == nil {
		t.Error("out-of-range member accepted")
	}
}

// Property: anycast delivers iff some member is reachable from the
// source, and always to a member.
func TestQuickAnycastDeliversIffReachable(t *testing.T) {
	check := func(seed int64, nRaw, extraRaw, srcRaw, memRaw uint8) bool {
		n := 3 + int(nRaw%12)
		g := topo.RandomConnected(n, int(extraRaw%8), seed)
		src := int(srcRaw) % n
		member := int(memRaw) % n

		net := network.New(g, network.Options{})
		c := controller.New(net)
		a, err := InstallAnycast(c, g, 0, map[uint32][]int{5: {member}})
		if err != nil {
			return false
		}
		// Fail a pseudo-random link to sometimes partition the graph.
		var dead topo.PortPredicate = topo.Never
		if seed%2 == 0 && g.NumEdges() > 0 {
			e := g.Edges()[int(uint64(seed>>3)%uint64(g.NumEdges()))]
			if err := net.SetLinkDown(e.U, e.V, true); err != nil {
				return false
			}
			dead = func(u, p int) bool {
				v, _, _ := g.Neighbor(u, p)
				return (u == e.U && v == e.V) || (u == e.V && v == e.U)
			}
		}
		got := captureSelf(net)
		a.Send(src, 5, nil, 0)
		if _, err := net.Run(); err != nil {
			return false
		}
		reachable := topo.Reachable(g, src, dead)[member]
		if reachable {
			return len(*got) == 1 && (*got)[0].sw == member
		}
		return len(*got) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
