package core

import (
	"testing"
	"testing/quick"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/topo"
)

// checkNode runs the critical-node service for one node on a fresh
// network and returns the verdict.
func checkNode(t *testing.T, g *topo.Graph, node int) (critical bool, c *controller.Controller, net *network.Network) {
	t.Helper()
	net = network.New(g, network.Options{})
	c = controller.New(net)
	cr, err := InstallCritical(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	cr.Check(node, 0)
	if _, err := net.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	crit, ok := cr.Verdict()
	if !ok {
		t.Fatalf("node %d: no verdict", node)
	}
	return crit, c, net
}

func TestCriticalKnownShapes(t *testing.T) {
	// Line: interior nodes critical, endpoints not.
	line := topo.Line(5)
	for v := 0; v < 5; v++ {
		want := v >= 1 && v <= 3
		if got, _, _ := checkNode(t, line, v); got != want {
			t.Errorf("line node %d: critical=%v, want %v", v, got, want)
		}
	}
	// Ring: nobody is critical.
	ring := topo.Ring(6)
	for v := 0; v < 6; v++ {
		if got, _, _ := checkNode(t, ring, v); got {
			t.Errorf("ring node %d reported critical", v)
		}
	}
	// Star: only the centre is critical.
	star := topo.Star(6)
	for v := 0; v < 6; v++ {
		want := v == 0
		if got, _, _ := checkNode(t, star, v); got != want {
			t.Errorf("star node %d: critical=%v, want %v", v, got, want)
		}
	}
}

func TestCriticalAgainstOracleOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := topo.RandomConnected(12, int(seed%6), seed)
		oracle := topo.ArticulationPoints(g)
		for v := 0; v < g.NumNodes(); v++ {
			if got, _, _ := checkNode(t, g, v); got != oracle[v] {
				t.Errorf("seed %d node %d: got %v, oracle %v", seed, v, got, oracle[v])
			}
		}
	}
}

func TestCriticalTable2Complexity(t *testing.T) {
	g := topo.RandomConnected(16, 10, 4)
	// Pick a non-critical node so the sweep runs to completion (the
	// worst case for message counts).
	oracle := topo.ArticulationPoints(g)
	node := -1
	for v := 0; v < g.NumNodes(); v++ {
		if !oracle[v] {
			node = v
			break
		}
	}
	if node == -1 {
		t.Skip("no non-critical node in this graph")
	}
	_, c, net := checkNode(t, g, node)
	if c.Stats.RuntimeMsgs() != 2 {
		t.Errorf("out-band msgs = %d, want 2 (request + verdict)", c.Stats.RuntimeMsgs())
	}
	want := 4*g.NumEdges() - 2*g.NumNodes() + 2
	if got := net.InBandCount(EthCritical); got != want {
		t.Errorf("in-band msgs = %d, want %d", got, want)
	}
}

func TestCriticalStopsEarlyOnDetection(t *testing.T) {
	// On a long line, checking node 1 detects criticality as soon as the
	// far subtree returns — the report must arrive and the sweep not
	// continue past detection.
	g := topo.Line(10)
	crit, c, _ := checkNode(t, g, 1)
	if !crit {
		t.Fatal("node 1 of a line is critical")
	}
	if c.Stats.RuntimeMsgs() != 2 {
		t.Errorf("out-band msgs = %d, want 2", c.Stats.RuntimeMsgs())
	}
}

// Property: the data-plane verdict equals the articulation-point oracle.
func TestQuickCriticalMatchesOracle(t *testing.T) {
	check := func(seed int64, nRaw, extraRaw, vRaw uint8) bool {
		n := 3 + int(nRaw%10)
		g := topo.RandomConnected(n, int(extraRaw%6), seed)
		v := int(vRaw) % n
		oracle := topo.ArticulationPoints(g)

		net := network.New(g, network.Options{})
		c := controller.New(net)
		cr, err := InstallCritical(c, g, 0)
		if err != nil {
			return false
		}
		cr.Check(v, 0)
		if _, err := net.Run(); err != nil {
			return false
		}
		crit, ok := cr.Verdict()
		return ok && crit == oracle[v]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCriticalWithFailedLinks: criticality is evaluated on the *live*
// topology — a node that is critical only because of a failed link is
// correctly reported.
func TestCriticalWithFailedLinks(t *testing.T) {
	// Ring: nobody critical. Fail one link: the ring becomes a line and
	// interior nodes become critical.
	g := topo.Ring(6)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	cr, err := InstallCritical(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkDown(2, 3, true); err != nil {
		t.Fatal(err)
	}
	cr.Check(0, 0) // node 0 is interior on the line 3-4-5-0-1-2
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	crit, ok := cr.Verdict()
	if !ok || !crit {
		t.Errorf("crit=%v ok=%v, want true/true on the degraded ring", crit, ok)
	}
}
