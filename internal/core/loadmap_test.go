package core

import (
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/topo"
)

func loadmapRig(t *testing.T, g *topo.Graph) (*LoadMap, *network.Network, *controller.Controller) {
	t.Helper()
	net := network.New(g, network.Options{})
	c := controller.New(net)
	lm, err := InstallLoadMap(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	return lm, net, c
}

func TestLoadMapMatchesGroundTruth(t *testing.T) {
	g := topo.Grid(3, 3)
	lm, net, c := loadmapRig(t, g)

	// A known traffic matrix, small enough not to wrap the counters.
	flows := []struct{ from, to, count int }{
		{0, 8, 5}, {8, 0, 3}, {2, 6, 4}, {3, 5, 2},
	}
	var at network.Time
	for _, f := range flows {
		for i := 0; i < f.count; i++ {
			lm.SendData(f.from, f.to, at)
			at += 50_000
		}
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}

	lm.Monitor(0, at+1_000_000)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	loads, done := lm.Loads()
	if !done {
		t.Fatal("no load report")
	}

	// The inferred map must cover every port, and the summed inferred
	// loads must equal the total number of data-packet link crossings
	// (the simulator's ground truth, minus the monitor's own crossings —
	// each port's first sample is taken before the monitor inflates it).
	totalInferred := 0
	for _, v := range loads {
		totalInferred += v
	}
	totalData := 0
	for _, l := range net.Links() {
		totalData += l.StatsAB.Delivered + l.StatsBA.Delivered
	}
	// Subtract monitor crossings (EthLoadMap) from the link ground truth:
	monitorCrossings := net.InBandCount(EthLoadMap) // all delivered (no failures)
	if totalInferred != totalData-monitorCrossings {
		t.Errorf("inferred total %d, ground truth data crossings %d",
			totalInferred, totalData-monitorCrossings)
	}
	if len(loads) != 2*g.NumEdges() {
		t.Errorf("sampled %d ports, want %d", len(loads), 2*g.NumEdges())
	}
	if c.Stats.RuntimeMsgs() != 2 {
		t.Errorf("out-band msgs = %d, want 2", c.Stats.RuntimeMsgs())
	}
}

func TestLoadMapIdleNetworkAllZero(t *testing.T) {
	g := topo.Ring(6)
	lm, net, _ := loadmapRig(t, g)
	lm.Monitor(0, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	loads, done := lm.Loads()
	if !done {
		t.Fatal("no report")
	}
	for pl, v := range loads {
		if v != 0 {
			t.Errorf("idle port %v reports load %d", pl, v)
		}
	}
}

func TestLoadMapSpecificPath(t *testing.T) {
	// On a line the route is unambiguous: traffic 0->3 loads exactly the
	// rightward ports.
	g := topo.Line(4)
	lm, net, _ := loadmapRig(t, g)
	var at network.Time
	for i := 0; i < 6; i++ {
		lm.SendData(0, 3, at)
		at += 50_000
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	lm.Monitor(0, at+1_000_000)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	loads, done := lm.Loads()
	if !done {
		t.Fatal("no report")
	}
	for hop := 0; hop < 3; hop++ {
		rx := PortLoad{Node: hop + 1, Port: g.PortTo(hop+1, hop)}
		if loads[rx] != 6 {
			t.Errorf("port %v load = %d, want 6", rx, loads[rx])
		}
		// Reverse direction carried nothing.
		back := PortLoad{Node: hop, Port: g.PortTo(hop, hop+1)}
		if loads[back] != 0 {
			t.Errorf("port %v load = %d, want 0", back, loads[back])
		}
	}
}

func TestLoadMapCodec(t *testing.T) {
	for _, c := range [][3]int{{0, 1, 0}, {511, 7, 31}, {4095, 255, 255}} {
		n, p, v := decLoad(encLoad(c[0], c[1], c[2]))
		if n != c[0] || p != c[1] || v != c[2] {
			t.Errorf("codec %v -> %d %d %d", c, n, p, v)
		}
	}
}
