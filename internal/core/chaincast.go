package core

import (
	"fmt"

	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// EthChaincast is the chaincast service EtherType.
const EthChaincast = 0x8809

// Chaincast implements the service-chaining extension sketched in §3.2:
// "Anycasts can easily be chained, in the sense that sequences of
// middleboxes can be specified which need to be traversed."
//
// A chain is an ordered list of node groups (e.g. firewalls, then DPI
// boxes, then the egress proxies). The packet performs one SmartSouth
// anycast sweep per stage: when it reaches any member of the current
// stage's group, a copy is delivered to the local middlebox, the packet's
// stage counter advances, and a *fresh* traversal for the next stage
// starts from that member — each stage has its own start/par/cur state in
// the tag, so stages never interfere. The whole chain needs zero
// controller messages and at most stages·(4E−2n+2) in-band messages.
type Chaincast struct {
	G      *topo.Graph
	L      *Layout
	Chain  [][]int
	FStage openflow.Field
	Stages []*Template
	Prog   *Program
	ctl    ControlPlane
	be     Backend
}

// InstallChaincast compiles and installs a chaincast over the given chain
// of middlebox groups. It consumes one service slot per stage, starting
// at slotBase.
func InstallChaincast(c ControlPlane, g *topo.Graph, slotBase int, chain [][]int, opts ...InstallOption) (*Chaincast, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("core: empty chain")
	}
	for s, members := range chain {
		if len(members) == 0 {
			return nil, fmt.Errorf("core: chain stage %d has no members", s)
		}
		for _, m := range members {
			if m < 0 || m >= g.NumNodes() {
				return nil, fmt.Errorf("core: chain stage %d member %d out of range", s, m)
			}
		}
	}

	cfg := resolveInstall(opts)
	l := cfg.Backend.NewLayout(g)
	cc := &Chaincast{
		G: g, L: l, Chain: chain, ctl: c, be: cfg.Backend,
		FStage: l.Alloc("stage", openflow.BitsFor(uint64(len(chain)))),
	}

	// Stage 0 uses the layout's base DFS state; later stages allocate
	// their own.
	type state struct {
		start    openflow.Field
		par, cur []openflow.Field
	}
	states := []state{{l.Start, l.Par, l.Cur}}
	for s := 1; s < len(chain); s++ {
		st, par, cur := l.NewStage(fmt.Sprintf("s%d", s))
		states = append(states, state{st, par, cur})
	}

	p := newProgram("chaincast", slotBase, g, l)
	p.Slots = len(chain)

	// One template per stage, dispatched on (EthType, stage).
	var t0s []int
	for s := range chain {
		t0, tFin, gb := Slot(slotBase + s)
		t0s = append(t0s, t0)
		tmpl := &Template{
			G: g, L: l, Eth: EthChaincast, T0: t0, TFin: tFin, GroupBase: gb,
			StateStart:     states[s].start,
			StatePar:       states[s].par,
			StateCur:       states[s].cur,
			DispatchFields: []openflow.FieldMatch{{F: cc.FStage, Value: uint64(s)}},
			Hooks:          Hooks{Uniform: true},
		}
		if err := cfg.Backend.Lower(tmpl, p); err != nil {
			return nil, err
		}
		cc.Stages = append(cc.Stages, tmpl)
	}

	// Member exit/advance rules: deliver a copy to the local middlebox
	// and, unless this is the last stage, hand the packet straight into
	// the next stage's entry table with the stage counter bumped.
	for s, members := range chain {
		for _, m := range members {
			actions := []openflow.Action{openflow.Output{Port: openflow.PortSelf}}
			gotoT := openflow.NoGoto
			if s+1 < len(chain) {
				actions = append(actions, openflow.SetField{F: cc.FStage, Value: uint64(s + 1)})
				gotoT = t0s[s+1]
			}
			addT0Rule(p, cfg.Backend, m, t0s[s], &openflow.FlowEntry{
				Priority: PrioService,
				Match:    openflow.MatchEth(EthChaincast),
				Actions:  actions,
				Goto:     gotoT,
				Cookie:   fmt.Sprintf("chaincast/n%d/stage%d", m, s),
			})
		}
	}
	if err := installProgram(c, p); err != nil {
		return nil, err
	}
	cc.Prog = p
	return cc, nil
}

// NumSlots returns how many service slots the chain consumed.
func (cc *Chaincast) NumSlots() int { return len(cc.Chain) }

// Send injects a chain packet at switch from (in-band host traffic). The
// packet will visit one member of every stage group, in order.
func (cc *Chaincast) Send(from int, payload []byte, at network.Time) {
	resetStateful(cc.ctl, cc.be, cc.Prog)
	pkt := cc.L.NewPacket(EthChaincast)
	pkt.Payload = payload
	cc.ctl.InjectHost(from, pkt, at)
}
