package core

import (
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// TestMidTraversalFailureKillsUnsupervisedRun documents the paper's
// limitation: a link failing *while the traversal is in flight* can
// swallow or strand the trigger packet, so no report arrives.
func TestMidTraversalFailureKillsUnsupervisedRun(t *testing.T) {
	g := topo.Ring(8)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	tr, err := InstallTraversal(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The sweep reaches link 4-5 after several hops; kill it while the
	// packet is past it so the return path dies.
	if err := net.ScheduleLinkDown(4, 5, true, 5_500); err != nil {
		t.Fatal(err)
	}
	tr.Trigger(0, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Completed() {
		t.Skip("timing did not strand the packet on this topology")
	}
	// No report: exactly the failure mode the supervisor handles.
}

// TestSupervisorRecoversFromMidTraversalFailure verifies the retry
// mitigation: after the failure settles, a fresh attempt completes and
// reports the degraded-but-connected topology.
func TestSupervisorRecoversFromMidTraversalFailure(t *testing.T) {
	g := topo.Ring(8)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	snap, err := InstallSnapshot(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ScheduleLinkDown(4, 5, true, 5_500); err != nil {
		t.Fatal(err)
	}
	res, attempts, err := Supervisor{}.SnapshotWithRetry(snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Logf("completed in %d attempt(s) — failure may not have hit mid-flight", attempts)
	}
	// The final snapshot reflects the post-failure network: all 8 nodes
	// (a ring minus one link is a path), 7 links.
	if len(res.Nodes) != 8 || len(res.Edges) != 7 {
		t.Fatalf("snapshot %d nodes %d edges, want 8/7", len(res.Nodes), len(res.Edges))
	}
	if res.HasEdge(4, 5) {
		t.Error("failed link still reported")
	}
}

func TestSupervisorTraversalAndCritical(t *testing.T) {
	g := topo.Grid(3, 3)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	tr, err := InstallTraversal(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := InstallCritical(c, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if attempts, err := (Supervisor{}).TraversalWithRetry(tr, 0); err != nil || attempts != 1 {
		t.Fatalf("healthy traversal: attempts=%d err=%v", attempts, err)
	}
	crit, attempts, err := Supervisor{}.CriticalWithRetry(cr, 4)
	if err != nil || attempts != 1 || crit {
		t.Fatalf("critical: %v/%d/%v", crit, attempts, err)
	}
}

// TestSupervisorGivesUp: when the trigger is always swallowed (a
// blackhole right at the root), the supervisor reports failure after its
// attempt budget instead of hanging.
func TestSupervisorGivesUp(t *testing.T) {
	g := topo.Line(3)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	tr, err := InstallTraversal(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Root 0 has one port; a blackhole there swallows every attempt.
	if err := net.SetBlackhole(0, 1, false); err != nil {
		t.Fatal(err)
	}
	s := Supervisor{MaxAttempts: 3}
	attempts, err := s.TraversalWithRetry(tr, 0)
	if err == nil {
		t.Fatal("expected failure")
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
}

// TestScheduledRepair: a link failing and coming back mid-run behaves
// sanely (liveness restored, next sweep uses it again).
func TestScheduledRepair(t *testing.T) {
	g := topo.Ring(6)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	snap, err := InstallSnapshot(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ScheduleLinkDown(2, 3, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.ScheduleLinkDown(2, 3, false, 1_000_000); err != nil {
		t.Fatal(err)
	}
	// First snapshot sees the degraded ring; second sees it healed.
	res1, _, err := Supervisor{}.SnapshotWithRetry(snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Advance past the repair.
	net.Inject(0, openflow.PortController, openflow.NewPacket(0xFFFF, 1), 1_000_001)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	c.ClearInbox()
	snap.Trigger(0, net.Sim.Now()+1)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	res2, err := snap.Collect()
	if err != nil || res2 == nil {
		t.Fatal("second snapshot failed")
	}
	if len(res1.Edges) != 5 || len(res2.Edges) != 6 {
		t.Errorf("edges: degraded %d (want 5), healed %d (want 6)", len(res1.Edges), len(res2.Edges))
	}
}
