package core

import (
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/topo"
)

// TestConcurrentSnapshotsDoNotInterfere launches several snapshot
// traversals at the same instant from different roots. All per-traversal
// state lives in the packets (the switches are stateless for this
// service), so the concurrent sweeps must all return exact snapshots.
func TestConcurrentSnapshotsDoNotInterfere(t *testing.T) {
	g := topo.RandomConnected(14, 10, 21)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	s, err := InstallSnapshot(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	roots := []int{0, 5, 9}
	for _, r := range roots {
		s.Trigger(r, 0) // all at t=0: the traversals interleave in flight
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	reports := 0
	for _, pi := range c.Inbox() {
		if pi.Pkt.EthType != EthSnapshot {
			continue
		}
		reports++
		res, err := DecodeRecords(pi.Pkt.Labels)
		if err != nil {
			t.Fatalf("report %d: %v", reports, err)
		}
		if len(res.Nodes) != g.NumNodes() || len(res.Edges) != g.NumEdges() {
			t.Errorf("report %d: %d nodes %d edges, want %d/%d",
				reports, len(res.Nodes), len(res.Edges), g.NumNodes(), g.NumEdges())
		}
	}
	if reports != len(roots) {
		t.Fatalf("reports = %d, want %d", reports, len(roots))
	}
}

// TestConcurrentMixedServices runs a snapshot, an anycast and a critical
// check simultaneously on one network; all three must succeed.
func TestConcurrentMixedServices(t *testing.T) {
	g := topo.Grid(3, 4)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	s, err := InstallSnapshot(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := InstallAnycast(c, g, 1, map[uint32][]int{1: {11}})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := InstallCritical(c, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := captureSelf(net)

	s.Trigger(0, 0)
	a.Send(3, 1, nil, 0)
	cr.Check(6, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}

	if res, err := s.Collect(); err != nil || res == nil || len(res.Edges) != g.NumEdges() {
		t.Errorf("snapshot: %v %v", res, err)
	}
	if len(*got) != 1 || (*got)[0].sw != 11 {
		t.Errorf("anycast deliveries: %v", *got)
	}
	if crit, ok := cr.Verdict(); !ok || crit {
		t.Errorf("criticality: %v %v (grid interior is never critical)", crit, ok)
	}
}

// TestCountersAreSharedState documents the flip side: the smart-counter
// blackhole detector keeps state in the switches, so two detection rounds
// must not overlap — the second round's counters are polluted by the
// first. ResetCounters restores correctness.
func TestCountersAreSharedState(t *testing.T) {
	g := topo.Ring(6)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	b, err := InstallBlackholeCounter(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1, healthy.
	b.Detect(0, 0, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if _, found, done := b.Outcome(); !done || found {
		t.Fatal("round 1 should be healthy")
	}
	// Round 2 without reset: counters are dirty but healthy detection
	// still works (values only grow past 1, never back to it).
	c.ClearInbox()
	b.Detect(0, net.Sim.Now()+1, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if _, found, done := b.Outcome(); !done || found {
		t.Error("round 2 without reset should still report healthy")
	}
	// After reset a planted hole is found again.
	b.ResetCounters()
	c.ClearInbox()
	if err := net.SetBlackhole(2, 3, false); err != nil {
		t.Fatal(err)
	}
	b.Detect(0, net.Sim.Now()+1, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if _, found, done := b.Outcome(); !done || !found {
		t.Error("round 3 after reset missed the hole")
	}
}
