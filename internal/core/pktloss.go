package core

import (
	"fmt"

	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// EthData marks host data traffic counted by the packet-loss monitor.
const EthData = 0x0800

// PktLoss implements the packet-loss monitoring extension of §3.3. Every
// switch port carries two *families* of smart counters — one for packets
// received, one for packets transmitted — with pairwise distinct prime
// moduli. Data-plane forwarding rules tick the egress counters, ingress
// rules tick the ingress counters. A SmartSouth monitoring traversal then
// walks the network: before every send it fetches the egress counters into
// the packet, and on every arrival the receiver fetches its ingress
// counters and compares, per prime, via enumerated equality rules. Any
// mismatch means packets vanished on that directed link and is punted to
// the controller.
//
// A single counter of modulus p misses losses that are ≡ 0 (mod p); using
// several distinct primes shrinks the false-negative rate to losses
// divisible by their product (the paper's suggestion).
type PktLoss struct {
	G      *topo.Graph
	L      *Layout
	Tmpl   *Template
	Prog   *Program
	Primes []int

	// CIn[node][port-1][j] / COut[node][port-1][j] are the per-port
	// ingress/egress counters for prime j.
	CIn, COut [][][]*SmartCounter

	FDst  openflow.Field   // data packet destination
	FPort openflow.Field   // report: ingress port of the mismatching link
	FVOut []openflow.Field // carried egress counter values, one per prime
	FVIn  []openflow.Field // fetched ingress counter values

	ctl ControlPlane
	be  Backend
}

// DefaultPrimes is the counter-size set used when none is given.
var DefaultPrimes = []int{7, 11, 13}

// InstallPktLoss compiles and installs the monitor, including destination
// based shortest-path forwarding (with egress/ingress counting) for
// EthData traffic. It occupies the slot's whole table block.
func InstallPktLoss(c ControlPlane, g *topo.Graph, slot int, primes []int, opts ...InstallOption) (*PktLoss, error) {
	if len(primes) == 0 {
		primes = append([]int(nil), DefaultPrimes...)
	}
	for _, p := range primes {
		if p < 2 || p > 64 {
			return nil, fmt.Errorf("core: prime modulus %d out of range", p)
		}
	}
	if len(primes) > 3 {
		return nil, fmt.Errorf("core: at most 3 prime counters per port (table block size), got %d", len(primes))
	}

	cfg := resolveInstall(opts)
	l := cfg.Backend.NewLayout(g)
	pl := &PktLoss{
		G: g, L: l, Primes: primes, ctl: c, be: cfg.Backend,
		FDst:  l.Alloc("dst", openflow.BitsFor(uint64(g.NumNodes()))),
		FPort: l.Alloc("report_port", openflow.BitsFor(uint64(g.MaxDegree()))),
	}
	for j, p := range primes {
		pl.FVOut = append(pl.FVOut, l.Alloc(fmt.Sprintf("v_out%d", j), openflow.BitsFor(uint64(p-1))))
		pl.FVIn = append(pl.FVIn, l.Alloc(fmt.Sprintf("v_in%d", j), openflow.BitsFor(uint64(p-1))))
	}

	base := 1 + slot*10
	preT := base
	cmpT := func(j int) int { return base + 1 + j } // one table per prime
	t0 := base + 1 + len(primes)
	tFin := t0 + 1
	fwdT := tFin + 1
	gb := uint32(slot) << 20
	inGID := func(port, j int) uint32 { return gb + 0x80000 + uint32(port*8+j) }
	outGID := func(port, j int) uint32 { return gb + 0xC0000 + uint32(port*8+j) }

	prog := newProgram("pktloss", slot, g, l)

	// Counters.
	pl.CIn = make([][][]*SmartCounter, g.NumNodes())
	pl.COut = make([][][]*SmartCounter, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		d := g.Degree(i)
		pl.CIn[i] = make([][]*SmartCounter, d)
		pl.COut[i] = make([][]*SmartCounter, d)
		for p := 1; p <= d; p++ {
			for j, prime := range primes {
				in, err := CompileSmartCounter(prog, i, d, inGID(p, j), pl.FVIn[j], prime)
				if err != nil {
					return nil, err
				}
				out, err := CompileSmartCounter(prog, i, d, outGID(p, j), pl.FVOut[j], prime)
				if err != nil {
					return nil, err
				}
				pl.CIn[i][p-1] = append(pl.CIn[i][p-1], in)
				pl.COut[i][p-1] = append(pl.COut[i][p-1], out)
			}
		}
	}

	fetchOut := func(port int) []openflow.Action {
		var acts []openflow.Action
		for j := range primes {
			acts = append(acts, openflow.Group{ID: outGID(port, j)})
		}
		return acts
	}
	fetchIn := func(port int) []openflow.Action {
		var acts []openflow.Action
		for j := range primes {
			acts = append(acts, openflow.Group{ID: inGID(port, j)})
		}
		return acts
	}

	// Monitoring traversal: every send fetches the egress counters;
	// every arrival fetches ingress counters and runs the comparison
	// chain (pre-table + one table per prime) before normal processing.
	pl.Tmpl = &Template{
		G: g, L: l, Eth: EthPktLoss, T0: t0, TFin: tFin, GroupBase: gb,
		Hooks: Hooks{
			SendNext: func(node, s, par, out int) []openflow.Action {
				return fetchOut(out)
			},
			SendParent: func(node, par int) []openflow.Action {
				return fetchOut(par)
			},
			BouncePerIn: true,
			Bounce: func(node, in int) []Variant {
				if in == openflow.AnyPort {
					return nil
				}
				return []Variant{{Do: fetchOut(in)}}
			},
			Finish: func(int) []openflow.Action {
				// Completion report with report_port = 0.
				return []openflow.Action{
					openflow.SetField{F: pl.FPort, Value: 0},
					openflow.Output{Port: openflow.PortController},
				}
			},
			// The counter group-ids depend on ports only, never nodes.
			Uniform: true,
		},
	}
	if err := cfg.Backend.Lower(pl.Tmpl, prog); err != nil {
		return nil, err
	}

	ethPL := openflow.MatchEth(EthPktLoss)
	ethData := openflow.MatchEth(EthData)
	for i := 0; i < g.NumNodes(); i++ {
		d := g.Degree(i)

		// Monitor dispatch through the comparison chain.
		prog.AddFlow(i, 0, &openflow.FlowEntry{
			Priority: 101, Match: ethPL, Goto: preT,
			Cookie: fmt.Sprintf("pktloss/n%d/dispatch", i),
		})
		for q := 1; q <= d; q++ {
			acts := []openflow.Action{openflow.SetField{F: pl.FPort, Value: uint64(q)}}
			acts = append(acts, fetchIn(q)...)
			prog.AddFlow(i, preT, &openflow.FlowEntry{
				Priority: 200, Match: ethPL.WithInPort(q),
				Actions: acts, Goto: cmpT(0),
				Cookie: fmt.Sprintf("pktloss/n%d/rx-in%d", i, q),
			})
		}
		// Injected trigger (no ingress port): skip the comparison chain.
		prog.AddFlow(i, preT, &openflow.FlowEntry{
			Priority: 100, Match: ethPL, Goto: t0,
			Cookie: fmt.Sprintf("pktloss/n%d/inject", i),
		})

		// Comparison chain: per prime, equality passes on; any miss is a
		// loss report (and the walk continues so every link is checked).
		for j, prime := range primes {
			next := cmpT(j + 1)
			if j == len(primes)-1 {
				next = t0
			}
			for x := 0; x < prime; x++ {
				prog.AddFlow(i, cmpT(j), &openflow.FlowEntry{
					Priority: 200,
					Match:    ethPL.WithField(pl.FVOut[j], uint64(x)).WithField(pl.FVIn[j], uint64(x)),
					Goto:     next,
					Cookie:   fmt.Sprintf("pktloss/n%d/cmp%d-eq%d", i, j, x),
				})
			}
			prog.AddFlow(i, cmpT(j), &openflow.FlowEntry{
				Priority: 100, Match: ethPL,
				Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
				Goto:    next,
				Cookie:  fmt.Sprintf("pktloss/n%d/cmp%d-mismatch", i, j),
			})
		}

		// Data plane: ingress counting, then destination forwarding with
		// egress counting.
		for q := 1; q <= d; q++ {
			prog.AddFlow(i, 0, &openflow.FlowEntry{
				Priority: 90, Match: ethData.WithInPort(q),
				Actions: fetchIn(q), Goto: fwdT,
				Cookie: fmt.Sprintf("pktloss/n%d/data-rx-in%d", i, q),
			})
		}
		prog.AddFlow(i, 0, &openflow.FlowEntry{
			Priority: 80, Match: ethData, Goto: fwdT,
			Cookie: fmt.Sprintf("pktloss/n%d/data-inject", i),
		})
		prog.AddFlow(i, fwdT, &openflow.FlowEntry{
			Priority: 200, Match: ethData.WithField(pl.FDst, uint64(i)),
			Actions: []openflow.Action{openflow.Output{Port: openflow.PortSelf}},
			Goto:    openflow.NoGoto,
			Cookie:  fmt.Sprintf("pktloss/n%d/data-local", i),
		})
	}
	// Shortest-path next hops per destination.
	for dst := 0; dst < g.NumNodes(); dst++ {
		next := topo.BFSPaths(g, dst)
		for node, port := range next {
			acts := append(fetchOut(port), openflow.Output{Port: port})
			prog.AddFlow(node, fwdT, &openflow.FlowEntry{
				Priority: 100, Match: ethData.WithField(pl.FDst, uint64(dst)),
				Actions: acts, Goto: openflow.NoGoto,
				Cookie: fmt.Sprintf("pktloss/n%d/data-to-%d", node, dst),
			})
		}
	}
	if err := installProgram(c, prog); err != nil {
		return nil, err
	}
	pl.Prog = prog
	return pl, nil
}

// SendData injects one data packet at switch from addressed to switch to.
func (pl *PktLoss) SendData(from, to int, at network.Time) {
	pkt := pl.L.NewPacket(EthData)
	pkt.Store(pl.FDst, uint64(to))
	pl.ctl.InjectHost(from, pkt, at)
}

// Monitor launches one monitoring traversal from root (one out-of-band
// message; the completion report is the second).
func (pl *PktLoss) Monitor(root int, at network.Time) {
	resetStateful(pl.ctl, pl.be, pl.Prog)
	pl.ctl.PacketOut(root, openflow.PortController, pl.L.NewPacket(EthPktLoss), at)
}

// LossReport names a directed link with detected loss: packets entering
// Switch on Port (i.e. sent by Peer) went missing.
type LossReport struct {
	Switch int
	Port   int
	Peer   int
}

// Reports decodes and deduplicates the monitor's loss reports; done tells
// whether the traversal's completion report has arrived.
func (pl *PktLoss) Reports() (losses []LossReport, done bool) {
	seen := map[[2]int]bool{}
	for _, pi := range pl.ctl.Inbox() {
		if pi.Pkt.EthType != EthPktLoss {
			continue
		}
		port := int(pi.Pkt.Load(pl.FPort))
		if port == 0 {
			done = true
			continue
		}
		key := [2]int{pi.Switch, port}
		if seen[key] {
			continue
		}
		seen[key] = true
		r := LossReport{Switch: pi.Switch, Port: port, Peer: -1}
		if v, _, ok := pl.G.Neighbor(pi.Switch, port); ok {
			r.Peer = v
		}
		losses = append(losses, r)
	}
	return losses, done
}
