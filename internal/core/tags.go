// Package core implements SmartSouth, the paper's contribution: a compiler
// that turns the in-band DFS traversal template (Algorithm 1) and the four
// case-study services — snapshot, anycast/priocast, blackhole detection and
// critical-node detection — into ordinary OpenFlow 1.3 flow and group
// entries, executed by the generic pipeline of package openflow.
//
// Nothing in this package runs at packet-processing time: it only *emits
// rules*. All runtime behaviour is carried out by the dumb match-action
// pipeline, which is exactly the paper's point.
package core

import (
	"fmt"

	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// Layout allocates the packet tag bit layout for one service instance:
// the global start field, the per-node parent/current-port fields of
// Algorithm 1, and any service-specific fields requested with Alloc.
//
// Per node i the fields hold values 0..Degree(i), where 0 means "unset"
// (and, for the parent field of the root, "my parent is the requester").
// The DFS part therefore costs sum_i 2*ceil(log2(deg_i+1)) bits — the
// O(n log n) bits of the paper's Table 2 footnote.
type Layout struct {
	G *topo.Graph

	// Start is the global traversal-phase field: 0 = not started,
	// 1 = first traversal, 2 = second traversal (priocast phase two).
	Start openflow.Field
	// Par[i] and Cur[i] are node i's pkt.v_i.par / pkt.v_i.cur.
	Par, Cur []openflow.Field

	nextBit int
}

// NewLayout builds the base layout for a graph.
func NewLayout(g *topo.Graph) *Layout {
	l := &Layout{G: g}
	l.Start = l.Alloc("start", 2)
	n := g.NumNodes()
	l.Par = make([]openflow.Field, n)
	l.Cur = make([]openflow.Field, n)
	for i := 0; i < n; i++ {
		bits := openflow.BitsFor(uint64(g.Degree(i)))
		l.Par[i] = l.Alloc(fmt.Sprintf("v%d.par", i), bits)
		l.Cur[i] = l.Alloc(fmt.Sprintf("v%d.cur", i), bits)
	}
	return l
}

// NewStatefulLayout builds the layout the stateful backend uses: only the
// global start field is carried in the packet — the per-node parent and
// current-port values of Algorithm 1 live in switch state tables, so Par
// and Cur stay nil. This is the Table-2 tag-bit collapse: O(n log n)
// packet bits become O(1).
func NewStatefulLayout(g *topo.Graph) *Layout {
	l := &Layout{G: g}
	l.Start = l.Alloc("start", 2)
	return l
}

// Stateful reports whether this layout keeps the DFS position in switch
// state rather than in packet tag bits.
func (l *Layout) Stateful() bool { return l.Par == nil }

// NewStage allocates an additional, independent set of DFS state fields
// (a start field plus per-node par/cur), so multi-stage services like
// chaincast can run several traversals over one packet without the stages
// trampling each other's state. On a stateful layout only the stage start
// field is allocated — each stage owns its own state tables, so no
// per-node packet bits are needed.
func (l *Layout) NewStage(tag string) (start openflow.Field, par, cur []openflow.Field) {
	start = l.Alloc(tag+".start", 2)
	if l.Stateful() {
		return start, nil, nil
	}
	n := l.G.NumNodes()
	par = make([]openflow.Field, n)
	cur = make([]openflow.Field, n)
	for i := 0; i < n; i++ {
		bits := openflow.BitsFor(uint64(l.G.Degree(i)))
		par[i] = l.Alloc(fmt.Sprintf("%s.v%d.par", tag, i), bits)
		cur[i] = l.Alloc(fmt.Sprintf("%s.v%d.cur", tag, i), bits)
	}
	return start, par, cur
}

// Alloc reserves a fresh service field of the given width.
func (l *Layout) Alloc(name string, bits int) openflow.Field {
	f := openflow.Field{Name: name, Off: l.nextBit, Bits: bits}
	l.nextBit += bits
	return f
}

// TagBits returns the allocated tag size in bits.
func (l *Layout) TagBits() int { return l.nextBit }

// TagBytes returns the tag size in bytes, rounded up.
func (l *Layout) TagBytes() int { return (l.nextBit + 7) / 8 }

// NewPacket returns a fresh, all-zero trigger packet for this layout.
func (l *Layout) NewPacket(ethType uint16) *openflow.Packet {
	return openflow.NewPacket(ethType, l.TagBytes())
}
