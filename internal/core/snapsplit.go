package core

import (
	"fmt"

	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// EthSnapSplit is the EtherType of the splitting snapshot service.
const EthSnapSplit = 0x880B

// SnapshotSplit implements the paper's §3.1 remark in the data plane:
//
//	"If the snapshot of a large network does not fit into a single
//	packet, data plane mechanisms can be implemented to split a packet
//	into multiple smaller ones. All we have to do is to track the amount
//	of data gathered so far (e.g. using special counter) and, when
//	needed, we send the packet to the controller."
//
// The record counter is a packet field incremented by the classic
// flow-table trick (one rule per counter value); when a *safe* record push
// would reach the budget, the rule emits a copy of the packet — carrying
// the records gathered so far — to the controller and then strips exactly
// that many labels off the live packet (a constant list of pop actions per
// counter value), so the traversal continues with an empty record stack.
//
// "Safe" pushes are the record kinds that are never popped again
// (NODE, BOUNCE, UP); OUT records may be cancelled by the receiver's pop,
// so fragments never break between an OUT record and its possible pop —
// which also guarantees the counter stays within budget+2.
//
// The requester simply concatenates the fragments (they arrive in order
// on the controller channel) with the final report and feeds the result
// to the ordinary snapshot decoder.
type SnapshotSplit struct {
	G      *topo.Graph
	L      *Layout
	Tmpl   *Template
	Prog   *Program
	Budget int
	FCnt   openflow.Field
	FOut   openflow.Field
	FUp    openflow.Field // stateful backend only: 1 = parent return
	ctl    ControlPlane
	be     Backend
}

// InstallSnapshotSplit compiles and installs the splitting snapshot with
// the given per-fragment record budget (>= 4).
func InstallSnapshotSplit(c ControlPlane, g *topo.Graph, slot, budget int, opts ...InstallOption) (*SnapshotSplit, error) {
	if budget < 4 {
		return nil, fmt.Errorf("core: snapshot budget must be >= 4, got %d", budget)
	}
	cfg := resolveInstall(opts)
	l := cfg.Backend.NewLayout(g)
	s := &SnapshotSplit{
		G: g, L: l, ctl: c, Budget: budget, be: cfg.Backend,
		FCnt: l.Alloc("rec_cnt", openflow.BitsFor(uint64(budget+2))),
		FOut: l.Alloc("out_port", openflow.BitsFor(uint64(g.MaxDegree()))),
	}
	if cfg.Backend.Stateful() {
		// The finish-table up-k rules cannot read the parent out of switch
		// state, so the lowering flags parent returns in a packet bit.
		s.FUp = l.Alloc("up", 1)
	}
	t0, tFin, gb := Slot(slot)

	// safePush returns the variants for a record push at a safe site:
	// for every possible counter value, push the record, and either
	// increment the counter or — when the budget is reached — flush a
	// fragment to the controller and strip the live packet.
	safePush := func(label uint32) []Variant {
		var vs []Variant
		for x := 0; x <= budget+1; x++ {
			do := []openflow.Action{openflow.PushLabel{Value: label}}
			if x+1 >= budget {
				do = append(do, openflow.Output{Port: openflow.PortController})
				for j := 0; j < x+1; j++ {
					do = append(do, openflow.PopLabel{})
				}
				do = append(do, openflow.SetField{F: s.FCnt, Value: 0})
			} else {
				do = append(do, openflow.SetField{F: s.FCnt, Value: uint64(x + 1)})
			}
			vs = append(vs, Variant{
				Match: []openflow.FieldMatch{{F: s.FCnt, Value: uint64(x)}},
				Do:    do,
			})
		}
		return vs
	}

	s.Tmpl = &Template{
		G: g, L: l, Eth: EthSnapSplit, T0: t0, TFin: tFin, GroupBase: gb,
		Hooks: Hooks{
			DeferOutput: true, OutField: s.FOut, UpField: s.FUp,
			RootStart: func(node int) []openflow.Action {
				return []openflow.Action{
					openflow.PushLabel{Value: encRec(recNode, node, 0)},
					openflow.SetField{F: s.FCnt, Value: 1},
				}
			},
			FirstVisit: func(node, in int) []Variant {
				return safePush(encRec(recNode, node, in))
			},
			BounceSplit: true,
			BounceSeen: func(node, in int) []Variant {
				// Cancel the sender's OUT record (it is still on top of
				// the stack: OUT sites never flush) and decrement.
				var vs []Variant
				for x := 1; x <= budget+2; x++ {
					vs = append(vs, Variant{
						Match: []openflow.FieldMatch{{F: s.FCnt, Value: uint64(x)}},
						Do: []openflow.Action{
							openflow.PopLabel{},
							openflow.SetField{F: s.FCnt, Value: uint64(x - 1)},
						},
					})
				}
				return vs
			},
			BounceNew: func(node, in int) []Variant {
				return safePush(encRec(recBounce, node, in))
			},
			Finish: finishToController,
			// Not Uniform: the pushed NODE/BOUNCE records embed the node
			// id, so rule blocks differ between same-degree nodes.
		},
	}
	p := newProgram("snapsplit", slot, g, l)
	if err := cfg.Backend.Lower(s.Tmpl, p); err != nil {
		return nil, err
	}

	// Deferred-output decision table: parent returns (out_port equals the
	// packet's parent field under OF13, the up flag under the stateful
	// backend) push an UP record (safe site), everything else is an
	// advance pushing an OUT record (never flushed).
	eth := openflow.MatchEth(EthSnapSplit)
	for i := 0; i < g.NumNodes(); i++ {
		d := g.Degree(i)
		for k := 1; k <= d; k++ {
			for x := 0; x <= budget+1; x++ {
				// Parent return: push UP, maybe flush, then forward.
				var acts []openflow.Action
				acts = append(acts, openflow.PushLabel{Value: encRec(recUp, 0, 0)})
				if x+1 >= budget {
					acts = append(acts, openflow.Output{Port: openflow.PortController})
					for j := 0; j < x+1; j++ {
						acts = append(acts, openflow.PopLabel{})
					}
					acts = append(acts, openflow.SetField{F: s.FCnt, Value: 0})
				} else {
					acts = append(acts, openflow.SetField{F: s.FCnt, Value: uint64(x + 1)})
				}
				acts = append(acts, openflow.Output{Port: k})
				upMatch := eth.WithField(s.FOut, uint64(k))
				if cfg.Backend.Stateful() {
					upMatch = upMatch.WithField(s.FUp, 1)
				} else {
					upMatch = upMatch.WithField(l.Par[i], uint64(k))
				}
				p.AddFlow(i, tFin, &openflow.FlowEntry{
					Priority: PrioFinish + 60,
					Match:    upMatch.WithField(s.FCnt, uint64(x)),
					Actions:  acts, Goto: openflow.NoGoto,
					Cookie: fmt.Sprintf("snapsplit/n%d/up-k%d-x%d", i, k, x),
				})

				// Advance: push OUT and increment, never flush.
				p.AddFlow(i, tFin, &openflow.FlowEntry{
					Priority: PrioFinish + 40,
					Match:    eth.WithField(s.FOut, uint64(k)).WithField(s.FCnt, uint64(x)),
					Actions: []openflow.Action{
						openflow.PushLabel{Value: encRec(recOut, 0, k)},
						openflow.SetField{F: s.FCnt, Value: uint64(x + 1)},
						openflow.Output{Port: k},
					},
					Goto:   openflow.NoGoto,
					Cookie: fmt.Sprintf("snapsplit/n%d/out-k%d-x%d", i, k, x),
				})
			}
		}
	}
	if err := installProgram(c, p); err != nil {
		return nil, err
	}
	s.Prog = p
	return s, nil
}

// Trigger requests a split snapshot starting at switch root.
func (s *SnapshotSplit) Trigger(root int, at network.Time) {
	resetStateful(s.ctl, s.be, s.Prog)
	s.ctl.PacketOut(root, openflow.PortController, s.L.NewPacket(s.Tmpl.Eth), at)
}

// Collect concatenates the fragments and the final report in arrival
// order and decodes them. fragments reports how many packets the snapshot
// was split into (including the final one).
func (s *SnapshotSplit) Collect() (res *Result, fragments int, err error) {
	var labels []uint32
	for _, pi := range s.ctl.Inbox() {
		if pi.Pkt.EthType != s.Tmpl.Eth {
			continue
		}
		fragments++
		labels = append(labels, pi.Pkt.Labels...)
	}
	if fragments == 0 {
		return nil, 0, nil
	}
	res, err = DecodeRecords(labels)
	return res, fragments, err
}

// MaxFragmentRecords returns the largest label count any fragment may
// carry (budget plus the OUT/UP records in flight).
func (s *SnapshotSplit) MaxFragmentRecords() int { return s.Budget + 2 }
