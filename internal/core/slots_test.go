package core

import "testing"

func TestSlotLayoutConstants(t *testing.T) {
	for slot := 0; slot < 5; slot++ {
		t0, tFin, gBase := Slot(slot)
		if t0 != 1+slot*10 || tFin != 2+slot*10 || gBase != uint32(slot)<<20 {
			t.Fatalf("Slot(%d) = (%d,%d,%d): layout convention changed", slot, t0, tFin, gBase)
		}
		tLo, tHi := SlotTables(slot)
		if tLo != t0 || tHi != t0+TablesPerSlot {
			t.Fatalf("SlotTables(%d) = [%d,%d)", slot, tLo, tHi)
		}
		gLo, gHi := SlotGroups(slot)
		if gLo != gBase || gHi != uint32(slot+1)<<GroupBitsPerSlot {
			t.Fatalf("SlotGroups(%d) = [%d,%d)", slot, gLo, gHi)
		}
		// Round trips.
		for tb := tLo; tb < tHi; tb++ {
			if SlotOfTable(tb) != slot {
				t.Fatalf("SlotOfTable(%d) = %d, want %d", tb, SlotOfTable(tb), slot)
			}
		}
		if SlotOfGroup(gLo) != slot || SlotOfGroup(gHi-1) != slot {
			t.Fatalf("SlotOfGroup round trip broken for slot %d", slot)
		}
	}
	if SlotOfTable(0) != -1 {
		t.Fatal("table 0 is shared, not owned by a slot")
	}
}

func TestSlotAllocator(t *testing.T) {
	a := NewSlotAllocator(0)
	if a.Next() != 0 || a.Next() != 1 {
		t.Fatal("sequential allocation broken")
	}
	if base := a.Reserve(3); base != 2 {
		t.Fatalf("Reserve(3) = %d, want 2", base)
	}
	if a.Peek() != 5 {
		t.Fatalf("Peek = %d, want 5 after reserving through slot 4", a.Peek())
	}
	if a.Reserve(0) != 5 || a.Next() != 6 {
		t.Fatal("Reserve(<1) must consume one slot")
	}
}
