package core

import (
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// finishToController is the minimal Finish hook: punt the trigger packet
// to the controller as the completion report.
func finishToController(int) []openflow.Action {
	return []openflow.Action{openflow.Output{Port: openflow.PortController}}
}

// Default EtherTypes for the service instances. They only need to be
// distinct per network; use the With… options to override.
const (
	EthTraversal = 0x8801
	EthSnapshot  = 0x8802
	EthAnycast   = 0x8803
	EthPriocast  = 0x8804
	EthBlackhole = 0x8805
	EthCritical  = 0x8806
	EthPktLoss   = 0x8807
)

// Traversal is the bare SmartSouth template: an in-band DFS sweep whose
// only service behaviour is reporting completion to the controller. It
// doubles as a data-plane liveness check ("did the trigger packet come
// back?") and as the substrate the tests validate against the golden
// model.
type Traversal struct {
	G    *topo.Graph
	L    *Layout
	Tmpl *Template
	Prog *Program
	ctl  ControlPlane
	be   Backend
}

// InstallTraversal compiles the bare template at the given service slot
// into a program, statically checks it, and installs it.
func InstallTraversal(c ControlPlane, g *topo.Graph, slot int, opts ...InstallOption) (*Traversal, error) {
	cfg := resolveInstall(opts)
	l := cfg.Backend.NewLayout(g)
	t0, tFin, gb := Slot(slot)
	tr := &Traversal{G: g, L: l, ctl: c, be: cfg.Backend}
	tr.Tmpl = &Template{
		G: g, L: l, Eth: EthTraversal, T0: t0, TFin: tFin, GroupBase: gb,
		Hooks: Hooks{Finish: finishToController, Uniform: true},
	}
	p := newProgram("traversal", slot, g, l)
	if err := cfg.Backend.Lower(tr.Tmpl, p); err != nil {
		return nil, err
	}
	if err := installProgram(c, p); err != nil {
		return nil, err
	}
	tr.Prog = p
	return tr, nil
}

// Trigger injects the trigger packet at switch root (one out-of-band
// message). The traversal starts there.
func (tr *Traversal) Trigger(root int, at network.Time) {
	resetStateful(tr.ctl, tr.be, tr.Prog)
	pkt := tr.L.NewPacket(tr.Tmpl.Eth)
	tr.ctl.PacketOut(root, openflow.PortController, pkt, at)
}

// Completed reports whether a finish report for this service has arrived
// at the controller.
func (tr *Traversal) Completed() bool {
	for _, pi := range tr.ctl.Inbox() {
		if pi.Pkt.EthType == tr.Tmpl.Eth {
			return true
		}
	}
	return false
}
