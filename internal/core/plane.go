package core

import (
	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
)

// ControlPlane is everything a SmartSouth service needs from its control
// plane: rule installation (the offline stage), packet injection and
// packet-in collection (the runtime stage), and the few switch-state
// queries controller applications legitimately have (port status arrives
// via OFPT_PORT_STATUS in a real deployment).
//
// Two implementations exist: controller.Controller installs rules by
// direct calls into the simulated switches, and remote.Fabric drives the
// same switches through binary OpenFlow 1.3 over TCP (package ofconn).
// Services behave identically on both — that is tested.
type ControlPlane interface {
	// InstallProgram applies a compiled program: every flow rule, state
	// transition and group entry it holds, batched per switch. This is the
	// only install path; services compile to a Program and install it in
	// one shot.
	InstallProgram(p *openflow.Program)
	// ResetState clears the per-flow state stores of the given state
	// tables on every switch (an OpenState state-mod DELETE of all keys),
	// leaving the transition entries installed. Services compiled by the
	// stateful backend call it before re-triggering a traversal, since
	// their DFS state lives in the switches rather than in the packet.
	ResetState(tables ...int)
	// ReadState reads the state of one flow key in a state table on
	// switch sw (an OpenState state-stats request). The second result is
	// false when the switch has no such state table — notably on control
	// planes that cannot install state tables at all.
	ReadState(sw, table int, key uint64) (uint64, bool)
	// PacketOut injects a packet at sw for pipeline processing at time at.
	PacketOut(sw, inPort int, pkt *openflow.Packet, at network.Time)
	// InjectHost injects in-band host traffic at sw (not a controller
	// message; anycast senders are hosts, not the controller).
	InjectHost(sw int, pkt *openflow.Packet, at network.Time)
	// Inbox returns the packet-ins received so far.
	Inbox() []controller.PacketIn
	// ClearInbox empties the inbox.
	ClearInbox()
	// RunNetwork processes the data plane to quiescence (driver loops
	// like the TTL binary search need synchronous rounds).
	RunNetwork() (int, error)
	// Now returns the current network time.
	Now() network.Time
	// PortLive reports switch port status (OFPT_PORT_STATUS view).
	PortLive(sw, port int) bool
	// GroupCounter reads a round-robin group's bucket pointer for
	// diagnostics; implementations without access return -1.
	GroupCounter(sw int, id uint32) int
	// Programs returns the retained (non-transient) programs, install
	// order. The deployment layer derives uninstall ranges and per-service
	// hit counters from them.
	Programs() []*openflow.Program
	// DropPrograms forgets retained programs covering the slot, after the
	// deployment layer has cleared their rules.
	DropPrograms(slot int)
}

// The local controller satisfies the interface.
var _ ControlPlane = (*controller.Controller)(nil)
