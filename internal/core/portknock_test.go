package core

import (
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/topo"
)

// runKnocks plays a knock sequence from a client node and settles the
// network, running the OF13 controller assist after each settle the way a
// real controller would handle its packet-in queue.
func runKnocks(t *testing.T, net *network.Network, pk *PortKnock, from int, id uint32, codes []uint32) {
	t.Helper()
	for _, code := range codes {
		pk.Knock(from, id, code, net.Sim.Now()+1)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		pk.Process()
	}
}

func TestPortKnockE2E(t *testing.T) {
	bothBackends(t, func(t *testing.T, be Backend) {
		g := topo.Grid(3, 4)
		net := network.New(g, network.Options{})
		c := controller.New(net)
		seq := []uint32{3, 1, 4}
		pk, err := InstallPortKnock(c, g, 0, 11, seq, WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		got := captureSelf(net)

		// Closed by default: guarded traffic is dropped at the guard.
		pk.SendData(0, 7, []byte("early"), 0)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		if len(*got) != 0 {
			t.Fatalf("guarded packet delivered before any knock")
		}
		if pk.Open(7) {
			t.Fatal("client 7 open before any knock")
		}

		// A wrong code mid-sequence resets progress.
		runKnocks(t, net, pk, 0, 7, []uint32{3, 1, 9})
		if pk.Open(7) {
			t.Fatal("client 7 open after a wrong knock")
		}
		pk.SendData(0, 7, nil, net.Sim.Now()+1)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		if len(*got) != 0 {
			t.Fatalf("guarded packet delivered after a wrong knock")
		}

		// The full sequence opens the guard for this client only.
		runKnocks(t, net, pk, 0, 7, seq)
		if !pk.Open(7) {
			t.Fatal("client 7 not open after the full sequence")
		}
		if pk.Open(8) {
			t.Fatal("client 8 open without knocking")
		}
		pk.SendData(0, 7, []byte("hello"), net.Sim.Now()+1)
		pk.SendData(5, 8, []byte("intruder"), net.Sim.Now()+1)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		if len(*got) != 1 {
			t.Fatalf("deliveries = %d, want only client 7's packet", len(*got))
		}
		if d := (*got)[0]; d.sw != 11 || string(d.pkt.Payload) != "hello" {
			t.Errorf("delivered %q at %d, want %q at the guard 11", d.pkt.Payload, d.sw, "hello")
		}
	})
}

// TestPortKnockMessageContrast pins the Table-2 point: the stateful guard
// runs the whole handshake with zero controller messages, while OF13 pays
// one packet-in per knock plus one flow-mod for the allow rule.
func TestPortKnockMessageContrast(t *testing.T) {
	seq := []uint32{2, 5}
	run := func(be Backend) (*controller.Controller, *PortKnock, *network.Network) {
		g := topo.Line(4)
		net := network.New(g, network.Options{})
		c := controller.New(net)
		pk, err := InstallPortKnock(c, g, 0, 3, seq, WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		installs := c.Stats.InstallMsgs
		for _, code := range seq {
			pk.Knock(0, 1, code, net.Sim.Now()+1)
			if _, err := net.Run(); err != nil {
				t.Fatal(err)
			}
			pk.Process()
		}
		c.Stats.InstallMsgs -= installs // runtime installs only
		return c, pk, net
	}

	c, pk, _ := run(Stateful)
	if got := c.Stats.PacketIns + c.Stats.InstallMsgs + c.Stats.PacketOuts; got != 0 {
		t.Errorf("stateful handshake cost %d controller messages, want 0", got)
	}
	if !pk.Open(1) { // costs one state-stats pair, checked after the count
		t.Fatal("stateful: client not open")
	}

	c, pk, _ = run(OF13)
	if !pk.Open(1) {
		t.Fatal("of13: client not open")
	}
	if c.Stats.PacketIns != len(seq) {
		t.Errorf("of13 packet-ins = %d, want one per knock (%d)", c.Stats.PacketIns, len(seq))
	}
	if c.Stats.InstallMsgs == 0 {
		t.Error("of13 opened the guard without a flow-mod")
	}
}

func TestPortKnockReknockCloses(t *testing.T) {
	// Stateful semantics: a knock from an open client re-enters the EFSM
	// (the any-state reset), so a lone wrong knock closes the door again.
	g := topo.Line(3)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	pk, err := InstallPortKnock(c, g, 0, 2, []uint32{6}, WithBackend(Stateful))
	if err != nil {
		t.Fatal(err)
	}
	runKnocks(t, net, pk, 0, 1, []uint32{6})
	if !pk.Open(1) {
		t.Fatal("not open after correct knock")
	}
	runKnocks(t, net, pk, 0, 1, []uint32{2})
	if pk.Open(1) {
		t.Fatal("still open after wrong knock")
	}
}
