package core

import (
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/topo"
)

func pktlossRig(t *testing.T, g *topo.Graph, primes []int) (*PktLoss, *network.Network, *controller.Controller) {
	t.Helper()
	net := network.New(g, network.Options{})
	c := controller.New(net)
	pl, err := InstallPktLoss(c, g, 0, primes)
	if err != nil {
		t.Fatal(err)
	}
	return pl, net, c
}

func TestPktLossDataForwardingAndCounting(t *testing.T) {
	g := topo.Line(4)
	pl, net, _ := pktlossRig(t, g, []int{7})
	got := captureSelf(net)
	for i := 0; i < 3; i++ {
		pl.SendData(0, 3, network.Time(i)*10_000)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 3 || (*got)[0].sw != 3 {
		t.Fatalf("deliveries: %v", *got)
	}
	// Counters along the path ticked 3 times: node 1's ingress on the
	// port toward 0, and node 0's egress.
	p01 := g.PortTo(0, 1)
	p10 := g.PortTo(1, 0)
	if v := pl.COut[0][p01-1][0].Value(pl.ctl); v != 3 {
		t.Errorf("egress counter at 0 = %d, want 3", v)
	}
	if v := pl.CIn[1][p10-1][0].Value(pl.ctl); v != 3 {
		t.Errorf("ingress counter at 1 = %d, want 3", v)
	}
}

func TestPktLossHealthyMonitorReportsNothing(t *testing.T) {
	g := topo.Grid(3, 3)
	pl, net, c := pktlossRig(t, g, []int{7, 11})
	// Background traffic in several directions.
	at := network.Time(0)
	for i := 0; i < 8; i++ {
		pl.SendData(i%4, 8-(i%4), at)
		at += 100_000
	}
	pl.Monitor(0, at+1_000_000)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	losses, done := pl.Reports()
	if !done {
		t.Fatal("monitor did not complete")
	}
	if len(losses) != 0 {
		t.Fatalf("false positives: %v", losses)
	}
	// Out-of-band: 1 trigger + 1 completion.
	if c.Stats.RuntimeMsgs() != 2 {
		t.Errorf("out-band msgs = %d, want 2", c.Stats.RuntimeMsgs())
	}
	wantInBand := 4*g.NumEdges() - 2*g.NumNodes() + 2
	if got := net.InBandCount(EthPktLoss); got != wantInBand {
		t.Errorf("monitor in-band = %d, want %d", got, wantInBand)
	}
}

// loseExactly drops exactly k data packets on the directed link u->v by
// opening a blackhole window, then restores the link.
func loseExactly(t *testing.T, pl *PktLoss, net *network.Network, src, dst, u, v, k int, at *network.Time) {
	t.Helper()
	if err := net.SetBlackhole(u, v, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		pl.SendData(src, dst, *at)
		*at += 100_000
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkDown(u, v, false); err != nil { // both directions back up
		t.Fatal(err)
	}
}

func TestPktLossDetectsLoss(t *testing.T) {
	g := topo.Line(4)
	pl, net, _ := pktlossRig(t, g, []int{7, 11})
	at := network.Time(0)
	// 3 good packets, then lose exactly 4 on 1->2, then 2 more good.
	for i := 0; i < 3; i++ {
		pl.SendData(0, 3, at)
		at += 100_000
	}
	loseExactly(t, pl, net, 0, 3, 1, 2, 4, &at)
	for i := 0; i < 2; i++ {
		pl.SendData(0, 3, at)
		at += 100_000
	}
	pl.Monitor(0, at+1_000_000)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	losses, done := pl.Reports()
	if !done {
		t.Fatal("monitor did not complete")
	}
	if len(losses) != 1 {
		t.Fatalf("losses = %v, want exactly the 1->2 direction", losses)
	}
	r := losses[0]
	if r.Switch != 2 || r.Peer != 1 {
		t.Errorf("report %v, want loss entering switch 2 from 1", r)
	}
}

func TestPktLossFalseNegativeAndPrimeRescue(t *testing.T) {
	// Losing exactly 7 packets is invisible to a single mod-7 counter —
	// and caught once an 11-sized counter is added (the paper's distinct
	// prime sizes suggestion).
	run := func(primes []int) int {
		g := topo.Line(3)
		pl, net, _ := pktlossRig(t, g, primes)
		at := network.Time(0)
		loseExactly(t, pl, net, 0, 2, 0, 1, 7, &at)
		pl.Monitor(0, at+1_000_000)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		losses, done := pl.Reports()
		if !done {
			t.Fatal("monitor did not complete")
		}
		return len(losses)
	}
	if n := run([]int{7}); n != 0 {
		t.Errorf("mod-7 counter alone should miss a loss of 7 (false negative), got %d reports", n)
	}
	if n := run([]int{7, 11}); n != 1 {
		t.Errorf("adding a mod-11 counter should catch the loss of 7, got %d reports", n)
	}
}

func TestPktLossReverseDirection(t *testing.T) {
	g := topo.Ring(5)
	pl, net, _ := pktlossRig(t, g, []int{7, 11})
	at := network.Time(0)
	// Lose 2 packets flowing 2 -> 1 (the reverse of the monitor's first
	// sweep direction on this ring); src and dst are adjacent so the
	// shortest path is exactly the lossy link.
	loseExactly(t, pl, net, 2, 1, 2, 1, 2, &at)
	pl.Monitor(0, at+1_000_000)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	losses, done := pl.Reports()
	if !done || len(losses) != 1 {
		t.Fatalf("losses=%v done=%v", losses, done)
	}
	if losses[0].Switch != 1 || losses[0].Peer != 2 {
		t.Errorf("report %v, want loss entering 1 from 2", losses[0])
	}
}

func TestPktLossMultipleLossyLinks(t *testing.T) {
	g := topo.Grid(3, 3)
	pl, net, _ := pktlossRig(t, g, []int{7, 11})
	at := network.Time(0)
	loseExactly(t, pl, net, 1, 2, 1, 2, 3, &at)
	loseExactly(t, pl, net, 7, 8, 7, 8, 2, &at)
	pl.Monitor(0, at+1_000_000)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	losses, done := pl.Reports()
	if !done {
		t.Fatal("monitor did not complete")
	}
	want := map[[2]int]bool{{2, 1}: true, {8, 7}: true} // (switch, peer)
	if len(losses) != 2 {
		t.Fatalf("losses = %v, want 2 links", losses)
	}
	for _, r := range losses {
		if !want[[2]int{r.Switch, r.Peer}] {
			t.Errorf("unexpected report %v", r)
		}
	}
}

func TestPktLossValidation(t *testing.T) {
	g := topo.Line(2)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	if _, err := InstallPktLoss(c, g, 0, []int{1}); err == nil {
		t.Error("modulus 1 accepted")
	}
	if _, err := InstallPktLoss(c, g, 0, []int{3, 5, 7, 11}); err == nil {
		t.Error("4 primes accepted (table block overflow)")
	}
}
