package core

import (
	"testing"
	"testing/quick"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/topo"
)

// runSnapshot installs the service, triggers at root, runs, and decodes.
func runSnapshot(t *testing.T, g *topo.Graph, root int, prep func(*network.Network)) (*Result, *network.Network, *controller.Controller) {
	t.Helper()
	net := network.New(g, network.Options{})
	c := controller.New(net)
	s, err := InstallSnapshot(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if prep != nil {
		prep(net)
	}
	s.Trigger(root, 0)
	if _, err := net.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	res, err := s.Collect()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return res, net, c
}

// checkSnapshotExact verifies the decoded snapshot equals the graph.
func checkSnapshotExact(t *testing.T, g *topo.Graph, res *Result) {
	t.Helper()
	if res == nil {
		t.Fatal("no snapshot report")
	}
	if len(res.Nodes) != g.NumNodes() {
		t.Fatalf("nodes = %d, want %d", len(res.Nodes), g.NumNodes())
	}
	if len(res.Edges) != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", len(res.Edges), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !res.HasEdge(e.U, e.V) {
			t.Fatalf("missing edge %d-%d", e.U, e.V)
		}
	}
	// Port annotations must match the real topology.
	for _, e := range res.Edges {
		v, vp, ok := g.Neighbor(e.U, e.PU)
		if !ok || v != e.V || vp != e.PV {
			t.Fatalf("edge %+v has wrong port annotation", e)
		}
	}
}

func TestSnapshotExactOnShapes(t *testing.T) {
	shapes := map[string]*topo.Graph{
		"line":   topo.Line(6),
		"ring":   topo.Ring(7),
		"star":   topo.Star(6),
		"grid":   topo.Grid(3, 4),
		"random": topo.RandomConnected(18, 14, 11),
	}
	for name, g := range shapes {
		t.Run(name, func(t *testing.T) {
			res, _, _ := runSnapshot(t, g, 0, nil)
			checkSnapshotExact(t, g, res)
		})
	}
}

func TestSnapshotFromEveryRoot(t *testing.T) {
	g := topo.RandomConnected(12, 9, 2)
	for root := 0; root < g.NumNodes(); root++ {
		res, _, _ := runSnapshot(t, g, root, nil)
		checkSnapshotExact(t, g, res)
	}
}

// Property: snapshots of random connected graphs are exact.
func TestQuickSnapshotExact(t *testing.T) {
	check := func(seed int64, nRaw, extraRaw uint8) bool {
		n := 2 + int(nRaw%15)
		g := topo.RandomConnected(n, int(extraRaw%10), seed)
		root := int(uint64(seed) % uint64(n))

		net := network.New(g, network.Options{})
		c := controller.New(net)
		s, err := InstallSnapshot(c, g, 0)
		if err != nil {
			return false
		}
		s.Trigger(root, 0)
		if _, err := net.Run(); err != nil {
			return false
		}
		res, err := s.Collect()
		if err != nil || res == nil {
			return false
		}
		if len(res.Nodes) != n || len(res.Edges) != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !res.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotUnderFailures: failed links are routed around and the
// snapshot reports exactly the live subtopology reachable from the root.
func TestSnapshotUnderFailures(t *testing.T) {
	g := topo.Grid(4, 4)
	fails := [][2]int{{1, 2}, {5, 9}, {14, 15}}
	res, _, _ := runSnapshot(t, g, 0, func(net *network.Network) {
		for _, f := range fails {
			if err := net.SetLinkDown(f[0], f[1], true); err != nil {
				t.Fatal(err)
			}
		}
	})
	if res == nil {
		t.Fatal("no report")
	}
	dead := func(u, p int) bool {
		v, _, _ := g.Neighbor(u, p)
		for _, f := range fails {
			if (u == f[0] && v == f[1]) || (u == f[1] && v == f[0]) {
				return true
			}
		}
		return false
	}
	reach := topo.Reachable(g, 0, dead)
	if len(res.Nodes) != len(reach) {
		t.Fatalf("snapshot nodes = %d, reachable = %d", len(res.Nodes), len(reach))
	}
	// Live edges between reachable nodes must all be present; failed
	// edges must be absent.
	wantEdges := 0
	for _, e := range g.Edges() {
		failed := false
		for _, f := range fails {
			if (e.U == f[0] && e.V == f[1]) || (e.U == f[1] && e.V == f[0]) {
				failed = true
			}
		}
		if failed {
			if res.HasEdge(e.U, e.V) {
				t.Errorf("failed edge %d-%d present in snapshot", e.U, e.V)
			}
			continue
		}
		if reach[e.U] && reach[e.V] {
			wantEdges++
			if !res.HasEdge(e.U, e.V) {
				t.Errorf("live edge %d-%d missing", e.U, e.V)
			}
		}
	}
	if len(res.Edges) != wantEdges {
		t.Errorf("edges = %d, want %d", len(res.Edges), wantEdges)
	}
}

// TestSnapshotTable2Complexity: 2 out-of-band messages (1 request O(1) +
// 1 report O(E)), and ~4E-2n in-band messages of size O(E).
func TestSnapshotTable2Complexity(t *testing.T) {
	g := topo.RandomConnected(20, 15, 5)
	_, net, c := runSnapshot(t, g, 0, nil)
	if c.Stats.PacketOuts != 1 || c.Stats.PacketIns != 1 {
		t.Errorf("out-band msgs: %d out + %d in, want 1+1", c.Stats.PacketOuts, c.Stats.PacketIns)
	}
	wantInBand := 4*g.NumEdges() - 2*g.NumNodes() + 2
	if got := net.InBandCount(EthSnapshot); got != wantInBand {
		t.Errorf("in-band msgs = %d, want %d", got, wantInBand)
	}
	// The report message carries O(E) records: between E and 4E labels.
	var reportLabels int
	for _, pi := range c.Inbox() {
		reportLabels = len(pi.Pkt.Labels)
	}
	if reportLabels < g.NumEdges() || reportLabels > 4*g.NumEdges() {
		t.Errorf("report carries %d labels for E=%d", reportLabels, g.NumEdges())
	}
}

func TestDecodeRecordsRejectsGarbage(t *testing.T) {
	if _, err := DecodeRecords([]uint32{encRec(recUp, 0, 0)}); err == nil {
		t.Error("UP-at-root accepted")
	}
	if _, err := DecodeRecords([]uint32{0xF0000000}); err == nil {
		t.Error("unknown record type accepted")
	}
}

func TestRecordCodec(t *testing.T) {
	for _, c := range [][3]int{{recNode, 0, 0}, {recOut, 0, 17}, {recBounce, 16383, 16383}, {recUp, 0, 0}} {
		typ, node, port := decRec(encRec(c[0], c[1], c[2]))
		if typ != c[0] || node != c[1] || port != c[2] {
			t.Errorf("codec %v -> %d %d %d", c, typ, node, port)
		}
	}
}
