package core

import (
	"math"
	"testing"
	"testing/quick"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// plantHole marks the directed crossing u->v (and optionally v->u) as a
// silent blackhole and returns the matching golden-model predicate.
func plantHole(t *testing.T, net *network.Network, g *topo.Graph, u, v int, bidir bool) topo.PortPredicate {
	t.Helper()
	if err := net.SetBlackhole(u, v, bidir); err != nil {
		t.Fatal(err)
	}
	return func(a, p int) bool {
		b, _, _ := g.Neighbor(a, p)
		if a == u && b == v {
			return true
		}
		return bidir && a == v && b == u
	}
}

func TestBlackholeTTLLocates(t *testing.T) {
	cases := []struct {
		name string
		g    *topo.Graph
		u, v int
	}{
		{"line-mid", topo.Line(6), 2, 3},
		{"ring", topo.Ring(8), 5, 6},
		{"grid", topo.Grid(3, 4), 5, 6},
		{"random", topo.RandomConnected(14, 10, 6), 3, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.g.HasEdge(tc.u, tc.v) {
				// Pick any edge incident to u instead.
				vv, _, _ := tc.g.Neighbor(tc.u, 1)
				tc.v = vv
			}
			net := network.New(tc.g, network.Options{})
			c := controller.New(net)
			b, err := InstallBlackholeTTL(c, tc.g, 0)
			if err != nil {
				t.Fatal(err)
			}
			hole := plantHole(t, net, tc.g, tc.u, tc.v, false)
			golden := topo.GoldenDFS(tc.g, 0, topo.Never, hole)
			if golden.LostAt == nil {
				t.Fatal("bad test: golden traversal survived")
			}
			rep, err := b.Locate(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if rep == nil {
				t.Fatal("no blackhole located")
			}
			if rep.Switch != golden.LostAt.From || rep.Port != golden.LostAt.FromPort {
				t.Errorf("located (%d,%d), want (%d,%d)",
					rep.Switch, rep.Port, golden.LostAt.From, golden.LostAt.FromPort)
			}
		})
	}
}

func TestBlackholeTTLHealthyReportsNone(t *testing.T) {
	g := topo.Grid(3, 3)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	b, err := InstallBlackholeTTL(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Locate(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatalf("false positive: %v", rep)
	}
}

func TestBlackholeTTLMessageComplexity(t *testing.T) {
	g := topo.RandomConnected(12, 8, 3)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	b, err := InstallBlackholeTTL(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	plantHole(t, net, g, 3, int(mustNeighbor(g, 3)), false)
	if _, err := b.Locate(0, 0); err != nil {
		t.Fatal(err)
	}
	// Binary search over [1, 4E+2]: ~log2(4E) probes, each at most one
	// packet-out plus one packet-in.
	bound := 2*(int(math.Ceil(math.Log2(float64(4*g.NumEdges()+2))))+2) + 2
	if c.Stats.RuntimeMsgs() > bound {
		t.Errorf("out-band msgs = %d, want <= 2 log E + c = %d", c.Stats.RuntimeMsgs(), bound)
	}
}

func mustNeighbor(g *topo.Graph, u int) int {
	v, _, ok := g.Neighbor(u, 1)
	if !ok {
		panic("no neighbor")
	}
	return v
}

// Property: the TTL detector localises a randomly planted unidirectional
// blackhole at exactly the golden model's loss point.
func TestQuickBlackholeTTL(t *testing.T) {
	check := func(seed int64, nRaw, extraRaw, edgeRaw uint8, rev bool) bool {
		n := 4 + int(nRaw%8)
		g := topo.RandomConnected(n, int(extraRaw%6), seed)
		e := g.Edges()[int(edgeRaw)%g.NumEdges()]
		u, v := e.U, e.V
		if rev {
			u, v = v, u
		}
		net := network.New(g, network.Options{})
		c := controller.New(net)
		b, err := InstallBlackholeTTL(c, g, 0)
		if err != nil {
			return false
		}
		if err := net.SetBlackhole(u, v, false); err != nil {
			return false
		}
		hole := func(a, p int) bool {
			bb, _, _ := g.Neighbor(a, p)
			return a == u && bb == v
		}
		golden := topo.GoldenDFS(g, 0, topo.Never, hole)
		rep, err := b.Locate(0, 0)
		if err != nil {
			return false
		}
		if golden.LostAt == nil {
			return rep == nil
		}
		return rep != nil && rep.Switch == golden.LostAt.From && rep.Port == golden.LostAt.FromPort
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func counterRig(t *testing.T, g *topo.Graph) (*BlackholeCounter, *network.Network, *controller.Controller) {
	t.Helper()
	net := network.New(g, network.Options{})
	c := controller.New(net)
	b, err := InstallBlackholeCounter(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b, net, c
}

func TestBlackholeCounterHealthy(t *testing.T) {
	g := topo.Grid(3, 3)
	b, net, c := counterRig(t, g)
	b.Detect(0, 0, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	rep, found, done := b.Outcome()
	if !done || found || rep != nil {
		t.Fatalf("outcome: rep=%v found=%v done=%v, want healthy completion", rep, found, done)
	}
	// Table 2: exactly 3 out-of-band messages (2 triggers + 1 report).
	if c.Stats.RuntimeMsgs() != 3 {
		t.Errorf("out-band msgs = %d, want 3", c.Stats.RuntimeMsgs())
	}
	// After the dance every used port counter is at least 2 — that is the
	// invariant the detector relies on (checker +1 may apply on top, and
	// the dance leaves healthy ports at 2..4).
	for i := 0; i < g.NumNodes(); i++ {
		for p := 1; p <= g.Degree(i); p++ {
			if v := b.Counters[i][p-1].Value(c); v < 2 {
				t.Errorf("counter (%d,%d) = %d, want >= 2 after a healthy round", i, p, v)
			}
		}
	}
}

func TestBlackholeCounterLocates(t *testing.T) {
	for _, bidir := range []bool{false, true} {
		g := topo.Grid(3, 4)
		b, net, c := counterRig(t, g)
		plantHole(t, net, g, 5, 6, bidir)
		b.Detect(0, 0, 0)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		rep, found, done := b.Outcome()
		if !done || !found || rep == nil {
			t.Fatalf("bidir=%v: no detection (rep=%v found=%v done=%v)", bidir, rep, found, done)
		}
		// The checker reports whichever stranded counter it meets first in
		// DFS order — i.e. one endpoint of the planted link.
		okFwd := rep.Switch == 5 && rep.Peer == 6
		okRev := rep.Switch == 6 && rep.Peer == 5
		if !okFwd && !okRev {
			t.Errorf("bidir=%v: located %v, want an endpoint of link 5-6", bidir, rep)
		}
		if c.Stats.RuntimeMsgs() != 3 {
			t.Errorf("bidir=%v: out-band msgs = %d, want 3", bidir, c.Stats.RuntimeMsgs())
		}
	}
}

func TestBlackholeCounterReverseDirectionHole(t *testing.T) {
	// Plant the hole on the *echo* direction: the dance's bounce-back is
	// swallowed, which a plain one-way probe would never notice.
	g := topo.Line(5)
	b, net, _ := counterRig(t, g)
	// Traversal from 0 crosses 2->3 forward; kill 3->2 instead.
	if err := net.SetBlackhole(3, 2, false); err != nil {
		t.Fatal(err)
	}
	b.Detect(0, 0, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	rep, found, done := b.Outcome()
	if !done || !found {
		t.Fatal("reverse-direction blackhole not detected")
	}
	// The stranded counter sits at switch 2 (its echo never returned).
	if rep.Switch != 2 {
		t.Errorf("reported switch %d, want 2", rep.Switch)
	}
	if rep.Peer != 3 {
		t.Errorf("reported peer %d, want 3", rep.Peer)
	}
}

func TestBlackholeCounterInBandLinear(t *testing.T) {
	// In-band cost must stay O(E): dance <= 6E-2n+2, checker <= 4E-2n+2.
	g := topo.RandomConnected(16, 12, 7)
	b, net, _ := counterRig(t, g)
	b.Detect(0, 0, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if _, _, done := b.Outcome(); !done {
		t.Fatal("no outcome")
	}
	e, n := g.NumEdges(), g.NumNodes()
	dance := net.InBandCount(EthBlackhole)
	check := net.InBandCount(EthBlackholeChk)
	if dance > 6*e-2*n+2 {
		t.Errorf("dance in-band = %d > 6E-2n+2 = %d", dance, 6*e-2*n+2)
	}
	if check != 4*e-2*n+2 {
		t.Errorf("checker in-band = %d, want 4E-2n+2 = %d", check, 4*e-2*n+2)
	}
}

func TestBlackholeCounterResetAndRerun(t *testing.T) {
	g := topo.Ring(6)
	b, net, c := counterRig(t, g)
	plantHole(t, net, g, 2, 3, false)
	b.Detect(0, 0, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := b.Outcome(); !found {
		t.Fatal("first round missed the hole")
	}
	// Repair the link, reset, and rerun: healthy verdict.
	if err := net.SetLinkDown(2, 3, false); err != nil { // resets both directions to up
		t.Fatal(err)
	}
	b.ResetCounters()
	c.ClearInbox()
	b.Detect(0, net.Sim.Now()+1, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	rep, found, done := b.Outcome()
	if !done || found {
		t.Fatalf("after repair: rep=%v found=%v done=%v, want healthy", rep, found, done)
	}
}

// Property: the smart-counter detector reports the golden loss point for
// random holes in random graphs.
func TestQuickBlackholeCounter(t *testing.T) {
	check := func(seed int64, nRaw, extraRaw, edgeRaw uint8, rev bool) bool {
		n := 4 + int(nRaw%8)
		g := topo.RandomConnected(n, int(extraRaw%6), seed)
		e := g.Edges()[int(edgeRaw)%g.NumEdges()]
		u, v := e.U, e.V
		if rev {
			u, v = v, u
		}
		net := network.New(g, network.Options{})
		c := controller.New(net)
		b, err := InstallBlackholeCounter(c, g, 0)
		if err != nil {
			return false
		}
		if err := net.SetBlackhole(u, v, false); err != nil {
			return false
		}
		b.Detect(0, 0, 0)
		if _, err := net.Run(); err != nil {
			return false
		}
		rep, found, done := b.Outcome()
		if !done || !found || rep == nil {
			return false
		}
		// The reported port must be one endpoint of the planted link.
		okFwd := rep.Switch == u && rep.Peer == v
		okRev := rep.Switch == v && rep.Peer == u
		return okFwd || okRev
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSmartCounterPrimitive(t *testing.T) {
	g := topo.Line(2)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	l := NewLayout(g)
	f := l.Alloc("ctr", 3)
	sc, err := InstallSmartCounter(c, 0, 99, f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InstallSmartCounter(c, 0, 98, f, 2000); err == nil {
		t.Error("oversized modulus accepted")
	}
	if _, err := InstallSmartCounter(c, 0, 97, f, 1); err == nil {
		t.Error("modulus 1 accepted")
	}
	// Drive the counter through the pipeline: each fetch writes the
	// pre-increment value into the field.
	sw := net.Switch(0)
	for want := 0; want < 12; want++ {
		pkt := l.NewPacket(0x9999)
		res := sw.Execute(pkt, []openflow.Action{sc.FetchInc(), openflow.Output{Port: openflow.PortSelf}})
		if len(res.Emissions) != 1 {
			t.Fatal("no emission")
		}
		if got := res.Emissions[0].Pkt.Load(f); got != uint64(want%5) {
			t.Fatalf("fetch %d read %d, want %d", want, got, want%5)
		}
	}
	if sc.Value(c) != 12%5 {
		t.Errorf("stored counter = %d, want %d", sc.Value(c), 12%5)
	}
	sc.Reset(c)
	if sc.Value(c) != 0 {
		t.Error("reset failed")
	}
}
