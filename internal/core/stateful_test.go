package core

import (
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/telemetry"
	"smartsouth/internal/topo"
)

// Cross-backend parity: without link failures the stateful lowering's
// static port scan picks exactly the ports the OF13 fast-failover groups
// would, so every service must produce the same observable result — and
// the same in-band message count — from one definition on both backends.

func bothBackends(t *testing.T, f func(t *testing.T, be Backend)) {
	t.Helper()
	for _, be := range Backends() {
		t.Run(be.Name(), func(t *testing.T) { f(t, be) })
	}
}

func TestStatefulTraversalCompletes(t *testing.T) {
	for _, g := range []*topo.Graph{topo.Line(5), topo.Ring(8), topo.Grid(3, 4), topo.RandomConnected(16, 12, 3)} {
		net := network.New(g, network.Options{})
		c := controller.New(net)
		tr, err := InstallTraversal(c, g, 0, WithBackend(Stateful))
		if err != nil {
			t.Fatal(err)
		}
		tr.Trigger(0, 0)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		if !tr.Completed() {
			t.Fatalf("stateful traversal did not complete on %d nodes", g.NumNodes())
		}
		// The Table-2 in-band bound holds exactly: 4E - 2n + 2 crossings.
		want := 4*g.NumEdges() - 2*g.NumNodes() + 2
		if got := net.InBandCount(EthTraversal); got != want {
			t.Errorf("in-band msgs = %d, want %d", got, want)
		}
	}
}

// TestStatefulTraversalReTrigger: the DFS state persists in the switches
// after a run; Trigger must reset it so a second sweep works — from any
// root, not just the first one.
func TestStatefulTraversalReTrigger(t *testing.T) {
	g := topo.Grid(3, 3)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	tr, err := InstallTraversal(c, g, 0, WithBackend(Stateful))
	if err != nil {
		t.Fatal(err)
	}
	for run, root := range []int{0, 4, 8} {
		tr.Trigger(root, net.Sim.Now()+1)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		if got := len(c.Inbox()); got != run+1 {
			t.Fatalf("run %d from root %d: %d completion reports, want %d", run, root, got, run+1)
		}
	}
}

func TestStatefulSnapshotParity(t *testing.T) {
	shapes := map[string]*topo.Graph{
		"line":   topo.Line(6),
		"ring":   topo.Ring(7),
		"star":   topo.Star(6),
		"grid":   topo.Grid(3, 4),
		"random": topo.RandomConnected(18, 14, 11),
	}
	for name, g := range shapes {
		t.Run(name, func(t *testing.T) {
			var inBand [2]int
			for i, be := range Backends() {
				net := network.New(g, network.Options{})
				c := controller.New(net)
				s, err := InstallSnapshot(c, g, 0, WithBackend(be))
				if err != nil {
					t.Fatal(err)
				}
				s.Trigger(0, 0)
				if _, err := net.Run(); err != nil {
					t.Fatal(err)
				}
				res, err := s.Collect()
				if err != nil {
					t.Fatalf("%s: decode: %v", be.Name(), err)
				}
				checkSnapshotExact(t, g, res)
				inBand[i] = net.InBandCount(EthSnapshot)
			}
			if inBand[0] != inBand[1] {
				t.Errorf("in-band msgs differ: of13 %d, stateful %d", inBand[0], inBand[1])
			}
		})
	}
}

func TestStatefulAnycastParity(t *testing.T) {
	bothBackends(t, func(t *testing.T, be Backend) {
		g := topo.Grid(4, 4)
		net := network.New(g, network.Options{})
		c := controller.New(net)
		a, err := InstallAnycast(c, g, 0, map[uint32][]int{7: {10, 15}}, WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		got := captureSelf(net)
		a.Send(0, 7, []byte("hello"), 0)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		if len(*got) != 1 {
			t.Fatalf("deliveries = %d, want 1", len(*got))
		}
		if d := (*got)[0]; d.sw != 10 && d.sw != 15 {
			t.Errorf("delivered at %d, want a member of {10,15}", d.sw)
		}
		if c.Stats.RuntimeMsgs() != 0 {
			t.Errorf("out-band msgs = %d, want 0", c.Stats.RuntimeMsgs())
		}
		// Successive sends keep working (the stateful backend resets its
		// sweep state per send).
		a.Send(3, 7, []byte("again"), net.Sim.Now()+1)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		if len(*got) != 2 {
			t.Fatalf("second send: deliveries = %d, want 2", len(*got))
		}
	})
}

func TestStatefulPriocastParity(t *testing.T) {
	bothBackends(t, func(t *testing.T, be Backend) {
		g := topo.RandomConnected(12, 8, 5)
		net := network.New(g, network.Options{})
		c := controller.New(net)
		members := map[uint32][]PrioMember{3: {{Node: 2, Prio: 4}, {Node: 9, Prio: 9}, {Node: 5, Prio: 1}}}
		p, err := InstallPriocast(c, g, 0, members, WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		got := captureSelf(net)
		p.Send(0, 3, []byte("prio"), 0)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		if len(*got) != 1 {
			t.Fatalf("deliveries = %d, want exactly 1", len(*got))
		}
		if d := (*got)[0]; d.sw != 9 {
			t.Errorf("delivered at %d, want the highest-priority member 9", d.sw)
		}
		if p.FailureReported() {
			t.Error("unexpected failure report")
		}
		if c.Stats.RuntimeMsgs() != 0 {
			t.Errorf("out-band msgs = %d, want 0", c.Stats.RuntimeMsgs())
		}
	})
}

func TestStatefulPriocastRootWins(t *testing.T) {
	bothBackends(t, func(t *testing.T, be Backend) {
		g := topo.Ring(6)
		net := network.New(g, network.Options{})
		c := controller.New(net)
		members := map[uint32][]PrioMember{1: {{Node: 2, Prio: 9}, {Node: 4, Prio: 3}}}
		p, err := InstallPriocast(c, g, 0, members, WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		got := captureSelf(net)
		p.Send(2, 1, nil, 0)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		if len(*got) != 1 || (*got)[0].sw != 2 {
			t.Fatalf("deliveries = %v, want exactly one at the root member 2", *got)
		}
	})
}

func TestStatefulCriticalParity(t *testing.T) {
	bothBackends(t, func(t *testing.T, be Backend) {
		// On a line every inner node is critical, the ends are not.
		g := topo.Line(5)
		for node := 0; node < g.NumNodes(); node++ {
			net := network.New(g, network.Options{})
			c := controller.New(net)
			cr, err := InstallCritical(c, g, 0, WithBackend(be))
			if err != nil {
				t.Fatal(err)
			}
			cr.Check(node, 0)
			if _, err := net.Run(); err != nil {
				t.Fatal(err)
			}
			critical, ok := cr.Verdict()
			if !ok {
				t.Fatalf("node %d: no verdict", node)
			}
			want := node != 0 && node != g.NumNodes()-1
			if critical != want {
				t.Errorf("node %d: critical = %v, want %v", node, critical, want)
			}
		}
	})
}

func TestStatefulChaincastParity(t *testing.T) {
	bothBackends(t, func(t *testing.T, be Backend) {
		g := topo.Grid(3, 4)
		net := network.New(g, network.Options{})
		c := controller.New(net)
		cc, err := InstallChaincast(c, g, 0, [][]int{{4}, {11}, {0}}, WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		got := captureSelf(net)
		cc.Send(6, []byte("chain"), 0)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		if len(*got) != 3 {
			t.Fatalf("deliveries = %d, want one per stage", len(*got))
		}
		for i, want := range []int{4, 11, 0} {
			if (*got)[i].sw != want {
				t.Errorf("stage %d delivered at %d, want %d", i, (*got)[i].sw, want)
			}
		}
	})
}

func TestStatefulSnapshotSplitParity(t *testing.T) {
	bothBackends(t, func(t *testing.T, be Backend) {
		g := topo.RandomConnected(14, 10, 7)
		net := network.New(g, network.Options{})
		c := controller.New(net)
		s, err := InstallSnapshotSplit(c, g, 0, 8, WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		s.Trigger(0, 0)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		res, fragments, err := s.Collect()
		if err != nil {
			t.Fatal(err)
		}
		checkSnapshotExact(t, g, res)
		if fragments < 2 {
			t.Errorf("fragments = %d, want a real split", fragments)
		}
	})
}

func TestStatefulBlackholeTTLParity(t *testing.T) {
	bothBackends(t, func(t *testing.T, be Backend) {
		g := topo.Grid(3, 4)
		net := network.New(g, network.Options{})
		c := controller.New(net)
		b, err := InstallBlackholeTTL(c, g, 0, WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		// Healthy network: no report.
		rep, err := b.Locate(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rep != nil {
			t.Fatalf("healthy network reported %v", rep)
		}
		// Silent drop on 5->6: locate it.
		if err := net.SetBlackhole(5, 6, true); err != nil {
			t.Fatal(err)
		}
		rep, err = b.Locate(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rep == nil {
			t.Fatal("blackhole not found")
		}
		if !(rep.Switch == 5 && rep.Peer == 6) && !(rep.Switch == 6 && rep.Peer == 5) {
			t.Errorf("located %v, want link 5-6", rep)
		}
	})
}

func TestStatefulBlackholeCounterParity(t *testing.T) {
	bothBackends(t, func(t *testing.T, be Backend) {
		g := topo.Ring(8)
		net := network.New(g, network.Options{})
		c := controller.New(net)
		b, err := InstallBlackholeCounter(c, g, 0, WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.SetBlackhole(3, 4, true); err != nil {
			t.Fatal(err)
		}
		b.Detect(0, 0, 0)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		rep, found, done := b.Outcome()
		if !done || !found {
			t.Fatalf("done=%v found=%v", done, found)
		}
		if !(rep.Switch == 3 && rep.Peer == 4) && !(rep.Switch == 4 && rep.Peer == 3) {
			t.Errorf("located %v, want link 3-4", rep)
		}
	})
}

func TestStatefulPktLossParity(t *testing.T) {
	bothBackends(t, func(t *testing.T, be Backend) {
		g := topo.Ring(6)
		net := network.New(g, network.Options{})
		c := controller.New(net)
		pl, err := InstallPktLoss(c, g, 0, nil, WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		pl.Monitor(0, 0)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		losses, done := pl.Reports()
		if !done {
			t.Fatal("no completion report")
		}
		if len(losses) != 0 {
			t.Errorf("healthy network reported losses %v", losses)
		}
	})
}

func TestStatefulLoadMapParity(t *testing.T) {
	bothBackends(t, func(t *testing.T, be Backend) {
		g := topo.Line(4)
		net := network.New(g, network.Options{})
		c := controller.New(net)
		lm, err := InstallLoadMap(c, g, 0, WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			lm.SendData(0, 3, network.Time(i)*10)
		}
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		lm.Monitor(0, net.Sim.Now()+1)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		loads, done := lm.Loads()
		if !done {
			t.Fatal("no load report")
		}
		// Each inner hop of 0->1->2->3 received 3 data packets.
		if got := loads[PortLoad{Node: 3, Port: 1}]; got != 3 {
			t.Errorf("load at node 3 port 1 = %d, want 3", got)
		}
	})
}

// TestStatefulTagBitsCollapse pins the Table-2 headline: the stateful
// backend needs O(1) packet tag bits where OF13 needs O(n log n), and it
// installs strictly fewer entries (transitions replace both the rules and
// the advance-group buckets) while sending zero group-mods.
func TestStatefulTagBitsCollapse(t *testing.T) {
	g := topo.Ring(20)
	if of13, st := NewLayout(g).TagBits(), NewStatefulLayout(g).TagBits(); st >= of13 {
		t.Errorf("stateful layout uses %d tag bits, of13 %d — want a collapse", st, of13)
	}

	for _, install := range []struct {
		name string
		f    func(c ControlPlane, be Backend) (*Program, error)
	}{
		{"traversal", func(c ControlPlane, be Backend) (*Program, error) {
			s, err := InstallTraversal(c, g, 0, WithBackend(be))
			if err != nil {
				return nil, err
			}
			return s.Prog, nil
		}},
		{"snapshot", func(c ControlPlane, be Backend) (*Program, error) {
			s, err := InstallSnapshot(c, g, 0, WithBackend(be))
			if err != nil {
				return nil, err
			}
			return s.Prog, nil
		}},
		{"anycast", func(c ControlPlane, be Backend) (*Program, error) {
			s, err := InstallAnycast(c, g, 0, map[uint32][]int{1: {2}}, WithBackend(be))
			if err != nil {
				return nil, err
			}
			return s.Prog, nil
		}},
	} {
		t.Run(install.name, func(t *testing.T) {
			var entries [2]int
			var groups [2]int
			for i, be := range Backends() {
				net := network.New(g, network.Options{})
				c := controller.New(net)
				p, err := install.f(c, be)
				if err != nil {
					t.Fatal(err)
				}
				entries[i] = p.FlowCount() + p.GroupCount() + p.StateCount()
				groups[i] = p.GroupCount()
			}
			if entries[1] >= entries[0] {
				t.Errorf("stateful installs %d entries, of13 %d — want strictly fewer", entries[1], entries[0])
			}
			if groups[1] != 0 {
				t.Errorf("stateful installs %d advance groups, want 0", groups[1])
			}
		})
	}
}

// TestStatefulProgramRejectedRemotely: state tables cannot cross an
// OpenFlow 1.3 wire, and the pre-install check must keep dual-use of a
// table id (flow entries shadowed by a state table) out of the plane.
func TestStatefulLowerRequiresStatefulLayout(t *testing.T) {
	g := topo.Ring(4)
	l := NewLayout(g)
	tm := &Template{G: g, L: l, Eth: EthTraversal, T0: 1, TFin: 2}
	if err := tm.CompileStateful(openflow.NewProgram("x", 0)); err == nil {
		t.Error("CompileStateful accepted an OF13 layout")
	}
}

// TestStateCommitTelemetry: Run's telemetry flush publishes committed
// state-table writes; a traversal on the stateful backend must record
// some, and the tag-carried of13 backend must record none.
func TestStateCommitTelemetry(t *testing.T) {
	bothBackends(t, func(t *testing.T, be Backend) {
		g := topo.Ring(8)
		net := network.New(g, network.Options{})
		c := controller.New(net)
		tr, err := InstallTraversal(c, g, 0, WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		before := telemetry.M.StateCommits.Load()
		tr.Trigger(0, 0)
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		d := telemetry.M.StateCommits.Load() - before
		if be.Stateful() && d == 0 {
			t.Error("stateful traversal recorded no state commits")
		}
		if !be.Stateful() && d != 0 {
			t.Errorf("of13 traversal recorded %d state commits, want 0", d)
		}
	})
}
