package core

import (
	"testing"
	"testing/quick"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/topo"
)

func runSplitSnapshot(t *testing.T, g *topo.Graph, root, budget int) (*Result, int, *controller.Controller, *network.Network) {
	t.Helper()
	net := network.New(g, network.Options{})
	c := controller.New(net)
	s, err := InstallSnapshotSplit(c, g, 0, budget)
	if err != nil {
		t.Fatal(err)
	}
	s.Trigger(root, 0)
	if _, err := net.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Per-fragment size bound.
	for _, pi := range c.Inbox() {
		if pi.Pkt.EthType == EthSnapSplit && len(pi.Pkt.Labels) > s.MaxFragmentRecords() {
			t.Fatalf("fragment carries %d labels, budget allows %d",
				len(pi.Pkt.Labels), s.MaxFragmentRecords())
		}
	}
	res, frags, err := s.Collect()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return res, frags, c, net
}

func TestSnapshotSplitExactAndBounded(t *testing.T) {
	g := topo.RandomConnected(24, 20, 5)
	res, frags, _, _ := runSplitSnapshot(t, g, 0, 8)
	if res == nil {
		t.Fatal("no snapshot")
	}
	checkSnapshotExact(t, g, res)
	// With E=44 edges the full record trace far exceeds one 8-record
	// fragment: splitting must actually happen.
	if frags < 4 {
		t.Errorf("fragments = %d, expected several at budget 8", frags)
	}
}

func TestSnapshotSplitSingleFragmentWhenSmall(t *testing.T) {
	g := topo.Line(3)
	res, frags, _, _ := runSplitSnapshot(t, g, 0, 64)
	if res == nil {
		t.Fatal("no snapshot")
	}
	checkSnapshotExact(t, g, res)
	if frags != 1 {
		t.Errorf("fragments = %d, want 1 (everything fits)", frags)
	}
}

func TestSnapshotSplitOutBandScalesWithFragments(t *testing.T) {
	g := topo.Grid(4, 4)
	_, frags, c, _ := runSplitSnapshot(t, g, 0, 6)
	// Out-of-band = 1 trigger + one packet-in per fragment.
	if c.Stats.PacketOuts != 1 || c.Stats.PacketIns != frags {
		t.Errorf("outs=%d ins=%d frags=%d", c.Stats.PacketOuts, c.Stats.PacketIns, frags)
	}
}

func TestSnapshotSplitUnderFailures(t *testing.T) {
	g := topo.Grid(4, 4)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	s, err := InstallSnapshotSplit(c, g, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkDown(5, 6, true); err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkDown(9, 10, true); err != nil {
		t.Fatal(err)
	}
	s.Trigger(0, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	res, _, err := s.Collect()
	if err != nil || res == nil {
		t.Fatalf("collect: %v %v", res, err)
	}
	if len(res.Nodes) != g.NumNodes() { // grid stays connected
		t.Errorf("nodes = %d, want %d", len(res.Nodes), g.NumNodes())
	}
	if res.HasEdge(5, 6) || res.HasEdge(9, 10) {
		t.Error("failed links must not be reported")
	}
	if len(res.Edges) != g.NumEdges()-2 {
		t.Errorf("edges = %d, want %d", len(res.Edges), g.NumEdges()-2)
	}
}

func TestSnapshotSplitBudgetValidation(t *testing.T) {
	g := topo.Line(2)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	if _, err := InstallSnapshotSplit(c, g, 0, 3); err == nil {
		t.Error("budget 3 accepted")
	}
}

// Property: split snapshots decode to the exact topology for random
// graphs, roots and budgets.
func TestQuickSnapshotSplit(t *testing.T) {
	check := func(seed int64, nRaw, extraRaw, budgetRaw uint8) bool {
		n := 3 + int(nRaw%12)
		g := topo.RandomConnected(n, int(extraRaw%10), seed)
		budget := 4 + int(budgetRaw%12)
		root := int(uint64(seed) % uint64(n))

		net := network.New(g, network.Options{})
		c := controller.New(net)
		s, err := InstallSnapshotSplit(c, g, 0, budget)
		if err != nil {
			return false
		}
		s.Trigger(root, 0)
		if _, err := net.Run(); err != nil {
			return false
		}
		res, frags, err := s.Collect()
		if err != nil || res == nil || frags == 0 {
			return false
		}
		if len(res.Nodes) != n || len(res.Edges) != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !res.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
