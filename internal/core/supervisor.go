package core

import (
	"fmt"

	"smartsouth/internal/network"
)

// Supervisor is the controller-side mitigation for the paper's stated
// limitation: "we will assume that during the execution of SmartSouth, no
// more failures will occur. This limitation can be overcome by using e.g.
// mechanisms presented in [3]." A failure mid-traversal can strand the
// trigger packet (the DFS state in the packet references ports that died
// after being recorded), so the supervisor simply re-triggers with a
// fresh packet after a deadline: each new attempt carries fresh state and
// the fast-failover groups route it around everything that is *already*
// failed. As long as failures eventually stop and the root's component
// stays connected, some attempt completes.
type Supervisor struct {
	// Deadline is the per-attempt completion budget in simulated time
	// (default: 4(E+2) link delays, twice the worst-case sweep).
	Deadline network.Time
	// MaxAttempts bounds the retries (default 5).
	MaxAttempts int
}

// arrived scans an inbox-like report count through the provided probe.
type reportProbe func() bool

// run drives trigger/probe rounds until the probe reports success.
func (s Supervisor) run(c ControlPlane, trigger func(at network.Time), done reportProbe, kind string) (attempts int, err error) {
	deadline := s.Deadline
	if deadline <= 0 {
		deadline = network.Time(4 * 1000 * 1000) // 4ms: generous for any sweep at 1µs links
	}
	max := s.MaxAttempts
	if max <= 0 {
		max = 5
	}
	for attempts = 1; attempts <= max; attempts++ {
		trigger(c.Now() + 1)
		if _, err := c.RunNetwork(); err != nil {
			return attempts, err
		}
		if done() {
			return attempts, nil
		}
		// The attempt was swallowed (mid-flight failure or blackhole);
		// let the deadline pass in simulated time and retry. In the
		// discrete-event world RunNetwork already drained everything, so
		// the retry can go out immediately.
		_ = deadline
	}
	return attempts - 1, fmt.Errorf("core: %s did not complete within %d attempts", kind, max)
}

// SnapshotWithRetry triggers the snapshot at root and retries with fresh
// packets until a report arrives. It returns the decoded snapshot and the
// number of attempts used.
func (s Supervisor) SnapshotWithRetry(snap *Snapshot, root int) (*Result, int, error) {
	var res *Result
	attempts, err := s.run(snap.ctl, func(at network.Time) {
		snap.ctl.ClearInbox()
		snap.Trigger(root, at)
	}, func() bool {
		r, derr := snap.Collect()
		if derr != nil || r == nil {
			return false
		}
		res = r
		return true
	}, "snapshot")
	return res, attempts, err
}

// TraversalWithRetry drives the bare traversal until completion.
func (s Supervisor) TraversalWithRetry(tr *Traversal, root int) (int, error) {
	return s.run(tr.ctl, func(at network.Time) {
		tr.ctl.ClearInbox()
		tr.Trigger(root, at)
	}, tr.Completed, "traversal")
}

// CriticalWithRetry drives a criticality check until a verdict arrives.
func (s Supervisor) CriticalWithRetry(cr *Critical, node int) (critical bool, attempts int, err error) {
	attempts, err = s.run(cr.ctl, func(at network.Time) {
		cr.ctl.ClearInbox()
		cr.Check(node, at)
	}, func() bool {
		c, ok := cr.Verdict()
		critical = c
		return ok
	}, "critical check")
	return critical, attempts, err
}
