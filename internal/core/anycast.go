package core

import (
	"fmt"

	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// Anycast implements §3.2: deliver a packet to *any* member of a receiver
// group, with zero controller interaction. Every node carries one rule per
// group it belongs to, matching the packet's gid field and exiting to the
// SELF port; non-members execute the SmartSouth traversal, so the packet
// sweeps the network until it reaches a reachable member. If no member is
// reachable the traversal completes at the root and the packet is dropped
// (still zero out-of-band messages, per Table 2).
type Anycast struct {
	G      *topo.Graph
	L      *Layout
	Tmpl   *Template
	Prog   *Program
	FGid   openflow.Field
	Groups map[uint32][]int // gid -> member nodes
	ctl    ControlPlane
	be     Backend
}

// InstallAnycast compiles the anycast service with the given group
// membership into a program, statically checks it, and installs it.
func InstallAnycast(c ControlPlane, g *topo.Graph, slot int, groups map[uint32][]int, opts ...InstallOption) (*Anycast, error) {
	cfg := resolveInstall(opts)
	l := cfg.Backend.NewLayout(g)
	a := &Anycast{
		G: g, L: l, FGid: l.Alloc("gid", 16), Groups: groups, ctl: c, be: cfg.Backend,
	}
	t0, tFin, gb := Slot(slot)
	a.Tmpl = &Template{
		G: g, L: l, Eth: EthAnycast, T0: t0, TFin: tFin, GroupBase: gb,
		Hooks: Hooks{Uniform: true},
	}
	p := newProgram("anycast", slot, g, l)
	if err := cfg.Backend.Lower(a.Tmpl, p); err != nil {
		return nil, err
	}
	// Receiver exit rules: the "simple test at the beginning of the
	// template". They outrank every traversal rule, so a member delivers
	// locally whether the packet is starting, visiting, or bouncing.
	for gid, members := range groups {
		for _, m := range members {
			if m < 0 || m >= g.NumNodes() {
				return nil, fmt.Errorf("core: anycast member %d out of range", m)
			}
			addT0Rule(p, cfg.Backend, m, t0, &openflow.FlowEntry{
				Priority: PrioService,
				Match:    openflow.MatchEth(EthAnycast).WithField(a.FGid, uint64(gid)),
				Actions:  []openflow.Action{openflow.Output{Port: openflow.PortSelf}},
				Goto:     openflow.NoGoto,
				Cookie:   fmt.Sprintf("anycast/n%d/gid%d/self", m, gid),
			})
		}
	}
	if err := installProgram(c, p); err != nil {
		return nil, err
	}
	a.Prog = p
	return a, nil
}

// NewMessage builds an anycast packet for the group, carrying payload.
func (a *Anycast) NewMessage(gid uint32, payload []byte) *openflow.Packet {
	pkt := a.L.NewPacket(a.Tmpl.Eth)
	pkt.Store(a.FGid, uint64(gid))
	pkt.Payload = payload
	return pkt
}

// Send injects an anycast message at switch from — in-band host traffic,
// not a controller message.
func (a *Anycast) Send(from int, gid uint32, payload []byte, at network.Time) {
	resetStateful(a.ctl, a.be, a.Prog)
	a.ctl.InjectHost(from, a.NewMessage(gid, payload), at)
}
