package core

import (
	"fmt"

	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// Snapshot implements §3.1: an in-band topology snapshot. The trigger
// packet performs the SmartSouth DFS while pushing label records of every
// node and link it discovers; the root finally punts the packet — records
// and all — to the requester. Unlike out-of-band discovery, it needs
// connectivity to only one switch and no knowledge of the topology.
//
// Record scheme (each record is one 32-bit pushed label):
//
//	NODE(j, q)   pushed on first visit of j via its port q: "a new node j,
//	             reached by the last OUT edge, entered at port q". The
//	             root pushes NODE(root, 0) when the traversal starts.
//	OUT(k)       pushed just before leaving the current node via port k.
//	BOUNCE(j, q) pushed when a probe reaches an already-visited node j on
//	             a port q it has not probed itself yet: records the far
//	             end of a non-tree edge.
//	UP           pushed when returning to the DFS parent.
//
// When a probe arrives on a port the receiver has already probed itself
// (in < cur, or cur = par), the receiver *pops* the sender's OUT record
// instead of pushing — the edge was recorded when the receiver probed it —
// so every edge is recorded exactly once. This is the paper's split of
// Visit_not_from_cur.
type Snapshot struct {
	G    *topo.Graph
	L    *Layout
	Tmpl *Template
	Prog *Program
	ctl  ControlPlane
	be   Backend
}

// Record types (top 4 bits of the label).
const (
	recNode   = 1
	recOut    = 2
	recBounce = 3
	recUp     = 4
)

// encRec packs a record into a 32-bit label: 4 bits type, 14 bits node,
// 14 bits port. Networks up to 16384 nodes/ports fit, far beyond the
// paper's "few hundred nodes".
func encRec(typ, node, port int) uint32 {
	return uint32(typ)<<28 | uint32(node&0x3FFF)<<14 | uint32(port&0x3FFF)
}

func decRec(label uint32) (typ, node, port int) {
	return int(label >> 28), int(label >> 14 & 0x3FFF), int(label & 0x3FFF)
}

// InstallSnapshot compiles and installs the snapshot service, reporting
// to the controller channel.
func InstallSnapshot(c ControlPlane, g *topo.Graph, slot int, opts ...InstallOption) (*Snapshot, error) {
	return installSnapshot(c, g, slot, openflow.PortController, opts)
}

// InstallSnapshotLocal is InstallSnapshot with the completion report
// delivered to the root switch's local port instead of the controller
// channel — the paper's remark that "all out-of-band messages can be sent
// in-band to any server connected to the first node of the traversal,
// thereby allowing complete in-band monitoring". Capture the report via
// Network.OnSelf and decode its labels with DecodeRecords.
func InstallSnapshotLocal(c ControlPlane, g *topo.Graph, slot int, opts ...InstallOption) (*Snapshot, error) {
	return installSnapshot(c, g, slot, openflow.PortSelf, opts)
}

func installSnapshot(c ControlPlane, g *topo.Graph, slot, reportPort int, opts []InstallOption) (*Snapshot, error) {
	cfg := resolveInstall(opts)
	l := cfg.Backend.NewLayout(g)
	t0, tFin, gb := Slot(slot)
	s := &Snapshot{G: g, L: l, ctl: c, be: cfg.Backend}
	s.Tmpl = &Template{
		G: g, L: l, Eth: EthSnapshot, T0: t0, TFin: tFin, GroupBase: gb,
		Hooks: Hooks{
			RootStart: func(node int) []openflow.Action {
				return []openflow.Action{openflow.PushLabel{Value: encRec(recNode, node, 0)}}
			},
			FirstVisit: func(node, in int) []Variant {
				return []Variant{{Do: []openflow.Action{
					openflow.PushLabel{Value: encRec(recNode, node, in)}}}}
			},
			BounceSplit: true,
			BounceSeen: func(node, in int) []Variant {
				return []Variant{{Do: []openflow.Action{openflow.PopLabel{}}}}
			},
			BounceNew: func(node, in int) []Variant {
				return []Variant{{Do: []openflow.Action{
					openflow.PushLabel{Value: encRec(recBounce, node, in)}}}}
			},
			SendNext: func(node, s, par, out int) []openflow.Action {
				return []openflow.Action{openflow.PushLabel{Value: encRec(recOut, 0, out)}}
			},
			SendParent: func(node, par int) []openflow.Action {
				return []openflow.Action{openflow.PushLabel{Value: encRec(recUp, 0, 0)}}
			},
			Finish: func(int) []openflow.Action {
				return []openflow.Action{openflow.Output{Port: reportPort}}
			},
			// Not Uniform: the pushed records embed the node id, so rule
			// blocks cannot be shared between same-degree nodes.
		},
	}
	p := newProgram("snapshot", slot, g, l)
	if err := cfg.Backend.Lower(s.Tmpl, p); err != nil {
		return nil, err
	}
	if err := installProgram(c, p); err != nil {
		return nil, err
	}
	s.Prog = p
	return s, nil
}

// Trigger requests a snapshot by injecting the trigger packet at switch
// root — the single O(1) out-of-band request message of Table 2.
func (s *Snapshot) Trigger(root int, at network.Time) {
	resetStateful(s.ctl, s.be, s.Prog)
	s.ctl.PacketOut(root, openflow.PortController, s.L.NewPacket(s.Tmpl.Eth), at)
}

// Result is a decoded snapshot.
type Result struct {
	Nodes map[int]bool
	Edges []topo.Edge
}

// HasEdge reports whether the snapshot contains the link u-v.
func (r *Result) HasEdge(u, v int) bool {
	for _, e := range r.Edges {
		if (e.U == u && e.V == v) || (e.U == v && e.V == u) {
			return true
		}
	}
	return false
}

// Collect scans the controller inbox for the completed snapshot packet
// and decodes it. It returns nil if no report has arrived (e.g. the
// network has not been run yet, or the trigger was lost).
func (s *Snapshot) Collect() (*Result, error) {
	for _, pi := range s.ctl.Inbox() {
		if pi.Pkt.EthType == s.Tmpl.Eth {
			return DecodeRecords(pi.Pkt.Labels)
		}
	}
	return nil, nil
}

// DecodeRecords replays a record trace into the discovered topology. The
// requester runs this; it is ordinary (control-plane) Go code. A trace of
// L records describes at most L/2 edges and node ids fit in 14 bits, so
// the decoder sizes its containers up front and keys edge dedup by the
// packed node pair — decoding allocates a fixed handful of containers
// however long the trace is (it runs once per monitoring round, directly
// after every sweep).
func DecodeRecords(labels []uint32) (*Result, error) {
	maxNode := 0
	for _, lab := range labels {
		if node := int(lab >> 14 & 0x3FFF); node > maxNode {
			maxNode = node
		}
	}
	res := &Result{
		Nodes: make(map[int]bool, maxNode+1),
		Edges: make([]topo.Edge, 0, len(labels)/2),
	}
	seen := make(map[uint32]struct{}, len(labels)/2)
	addEdge := func(u, pu, v, pv int) {
		k := uint32(u)<<14 | uint32(v)
		if v < u {
			k = uint32(v)<<14 | uint32(u)
		}
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			res.Edges = append(res.Edges, topo.Edge{U: u, PU: pu, V: v, PV: pv})
		}
	}

	pos, lastOut := -1, 0
	parent := make([]int32, maxNode+1) // 1+parent id; 0 = unknown
	for idx, lab := range labels {
		typ, node, port := decRec(lab)
		switch typ {
		case recNode:
			res.Nodes[node] = true
			if pos == -1 {
				// The root record.
				pos = node
				continue
			}
			addEdge(pos, lastOut, node, port)
			parent[node] = int32(pos) + 1
			pos = node
		case recOut:
			lastOut = port
		case recBounce:
			res.Nodes[node] = true
			addEdge(pos, lastOut, node, port)
		case recUp:
			p := -1
			if pos >= 0 {
				p = int(parent[pos]) - 1
			}
			if p < 0 {
				return nil, fmt.Errorf("core: record %d: UP at root or unknown parent of %d", idx, pos)
			}
			pos = p
		default:
			return nil, fmt.Errorf("core: record %d: unknown type %d", idx, typ)
		}
	}
	return res, nil
}
