package core

import (
	"fmt"

	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
	"smartsouth/internal/verify"
)

// Program is the declarative compile artifact every service produces; see
// openflow.Program. The alias keeps service code and callers in one
// vocabulary without forcing a dependency direction.
type Program = openflow.Program

// newProgram starts a service program covering every node of the graph
// (port counts recorded for the static check) with the layout's tag
// budget, so the pre-install check can bound tag fields.
func newProgram(service string, slot int, g *topo.Graph, l *Layout) *Program {
	p := openflow.NewProgram(service, slot)
	p.TagBytes = l.TagBytes()
	for i := 0; i < g.NumNodes(); i++ {
		p.Ensure(i, g.Degree(i))
	}
	return p
}

// ProgramGater is an optional ControlPlane extension: a control plane
// (or a decorator around one) that wants to veto program installations
// implements it, and installProgram consults it after the per-program
// static check. The deployment layer uses this to run the network-wide
// symbolic analysis (internal/analysis) as an opt-in install gate
// without core depending on the analyzer.
type ProgramGater interface {
	// GateProgram returns a non-nil error to reject the program before
	// any of its rules reach a switch.
	GateProgram(p *Program) error
}

// addT0Rule installs a service rule in a template's entry table. Under
// OF13 the entry table is an ordinary flow table; under the stateful
// backend it is the node's state table, where a flow entry would be
// unreachable — the rule becomes an equivalent any-state transition (same
// priority, match, actions and goto; no state change).
func addT0Rule(p *Program, be Backend, sw, table int, e *openflow.FlowEntry) {
	if be != nil && be.Stateful() {
		p.AddState(sw, table, &openflow.StateEntry{
			Priority: e.Priority, AnyState: true,
			Match: e.Match, Actions: e.Actions, Goto: e.Goto, Cookie: e.Cookie,
		})
		return
	}
	p.AddFlow(sw, table, e)
}

// resetStateful clears the DFS state tables of a stateful-backed service
// before a re-trigger: unlike the OF13 lowering, whose traversal position
// lives in the packet and vanishes with it, the stateful lowering leaves
// every non-root node in its final (par, par) state after a run. The
// reset is a no-op (and costs no messages) while the tables are still
// empty, so a service's first trigger is unaffected.
func resetStateful(c ControlPlane, be Backend, p *Program) {
	if be == nil || !be.Stateful() || p == nil {
		return
	}
	if ts := p.StateTables(); len(ts) > 0 {
		c.ResetState(ts...)
	}
}

// installProgram statically checks a compiled program and, only if it is
// free of hard errors, hands it to the control plane. This is the single
// choke point between compilation and live switches: no service rule
// reaches a switch without passing verification first. Shadowing analysis
// is skipped here — it is O(rules²) and only ever yields warnings; the
// deployment-level Verify still runs it on demand.
//
// Transient programs (modify-style re-sends of state an installed
// program owns) skip the gate: they are not new deployments, and the
// gate's composition model already accounts for their owner.
func installProgram(c ControlPlane, p *Program) error {
	issues := verify.Errors(verify.CheckProgram(p, verify.Options{SkipShadowing: true}))
	if len(issues) > 0 {
		return fmt.Errorf("core: program %q rejected by pre-install check: %s (%d issues)",
			p.Service, issues[0], len(issues))
	}
	if g, ok := c.(ProgramGater); ok && !p.Transient {
		if err := g.GateProgram(p); err != nil {
			return fmt.Errorf("core: program %q rejected by deployment gate: %w", p.Service, err)
		}
	}
	c.InstallProgram(p)
	return nil
}
