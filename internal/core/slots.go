package core

import "smartsouth/internal/openflow"

// Slot layout. Every deployed service occupies one or more *slots*, each
// slot owning a contiguous block of flow-table IDs and a group-ID range,
// so services compose on the same switches without colliding. Table 0 is
// shared (it holds the per-EtherType steering rules); slot s owns tables
// [SlotTableBase + s*TablesPerSlot, SlotTableBase + (s+1)*TablesPerSlot)
// and groups [s << GroupBitsPerSlot, (s+1) << GroupBitsPerSlot).
const (
	// SlotTableBase is the first table ID owned by slot 0 (table 0 is the
	// shared steering table).
	SlotTableBase = 1
	// TablesPerSlot is the table-ID stride between slots.
	TablesPerSlot = 10
	// GroupBitsPerSlot is the width of the per-slot group-ID space: slot s
	// owns group IDs with the slot number in the bits above it.
	GroupBitsPerSlot = 20
)

// Slot returns conventional table/group assignments for the slot-th
// service on a network (slot 0, 1, 2, …): the service's first table, its
// finish table, and the base of its group-ID range.
func Slot(slot int) (t0, tFin int, groupBase uint32) {
	t0 = SlotTableBase + slot*TablesPerSlot
	return t0, t0 + 1, uint32(slot) << GroupBitsPerSlot
}

// SlotTables returns the half-open table-ID range [lo, hi) owned by slot.
func SlotTables(slot int) (lo, hi int) {
	return SlotTableBase + slot*TablesPerSlot, SlotTableBase + (slot+1)*TablesPerSlot
}

// SlotGroups returns the half-open group-ID range [lo, hi) owned by slot.
func SlotGroups(slot int) (lo, hi uint32) {
	return uint32(slot) << GroupBitsPerSlot, uint32(slot+1) << GroupBitsPerSlot
}

// SlotOfTable returns the slot owning a table ID, or -1 for the shared
// table 0 (and any ID below the slot region).
func SlotOfTable(table int) int {
	if table < SlotTableBase {
		return -1
	}
	return (table - SlotTableBase) / TablesPerSlot
}

// SlotOfGroup returns the slot owning a group ID.
func SlotOfGroup(id uint32) int { return int(id >> GroupBitsPerSlot) }

// SlotAllocator hands out service slots sequentially. It replaces the
// ad-hoc nextSlot counters the deployment facades used to keep: services
// that span several slots (chaincast: one per chain stage; monitor: the
// watchdog plus its inner snapshot) reserve a range in one call.
type SlotAllocator struct {
	next int
}

// NewSlotAllocator returns an allocator whose next slot is first.
func NewSlotAllocator(first int) *SlotAllocator {
	return &SlotAllocator{next: first}
}

// Next reserves and returns a single slot.
func (a *SlotAllocator) Next() int { return a.Reserve(1) }

// Reserve reserves n consecutive slots (n < 1 is treated as 1) and
// returns the first.
func (a *SlotAllocator) Reserve(n int) int {
	if n < 1 {
		n = 1
	}
	s := a.next
	a.next += n
	return s
}

// Peek returns the next slot without reserving it.
func (a *SlotAllocator) Peek() int { return a.next }

// SlotSpan reports how many slots a compiled program occupies, for
// allocators replaying a retained program set.
func SlotSpan(p *openflow.Program) int {
	if p.Slots < 1 {
		return 1
	}
	return p.Slots
}
