package core

import (
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/topo"
)

// Degenerate topologies must not break the compiler or the pipeline.

func TestSingleNodeNetwork(t *testing.T) {
	g := topo.NewGraph(1)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	tr, err := InstallTraversal(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Trigger(0, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	// A root with no ports finishes immediately and reports.
	if !tr.Completed() {
		t.Fatal("isolated root must still report completion")
	}
	if net.TotalInBand() != 0 {
		t.Errorf("in-band msgs = %d, want 0", net.TotalInBand())
	}
}

func TestTwoNodeSnapshot(t *testing.T) {
	g := topo.Line(2)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	s, err := InstallSnapshot(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Trigger(1, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Collect()
	if err != nil || res == nil {
		t.Fatal("no snapshot")
	}
	if len(res.Nodes) != 2 || len(res.Edges) != 1 {
		t.Fatalf("%d nodes %d edges", len(res.Nodes), len(res.Edges))
	}
	// 2 crossings on the single edge.
	if net.InBandCount(EthSnapshot) != 2 {
		t.Errorf("in-band = %d, want 2", net.InBandCount(EthSnapshot))
	}
}

func TestRootWithAllPortsDead(t *testing.T) {
	g := topo.Star(4)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	s, err := InstallSnapshot(c, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if err := net.SetLinkDown(0, i, true); err != nil {
			t.Fatal(err)
		}
	}
	s.Trigger(0, 0)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Collect()
	if err != nil || res == nil {
		t.Fatal("isolated root must still report")
	}
	if len(res.Nodes) != 1 || len(res.Edges) != 0 {
		t.Fatalf("snapshot of isolated root: %d nodes %d edges", len(res.Nodes), len(res.Edges))
	}
}

func TestPriocastMultipleGroupsIndependent(t *testing.T) {
	g := topo.Grid(3, 3)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	p, err := InstallPriocast(c, g, 0, map[uint32][]PrioMember{
		1: {{Node: 2, Prio: 9}, {Node: 6, Prio: 1}},
		2: {{Node: 6, Prio: 9}, {Node: 2, Prio: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := captureSelf(net)
	p.Send(0, 1, nil, 0)
	p.Send(0, 2, nil, 5_000_000)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 || (*got)[0].sw != 2 || (*got)[1].sw != 6 {
		t.Fatalf("deliveries = %v, want [2 6] (per-group winners)", *got)
	}
}

func TestAnycastOverlappingGroupsSameNode(t *testing.T) {
	g := topo.Ring(5)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	a, err := InstallAnycast(c, g, 0, map[uint32][]int{1: {3}, 2: {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	got := captureSelf(net)
	a.Send(0, 1, nil, 0)
	a.Send(0, 2, nil, 5_000_000)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 {
		t.Fatalf("deliveries = %v", *got)
	}
	if (*got)[0].sw != 3 {
		t.Errorf("group 1 delivered at %d", (*got)[0].sw)
	}
	if sw := (*got)[1].sw; sw != 3 && sw != 4 {
		t.Errorf("group 2 delivered at %d", sw)
	}
}
