package core

import (
	"fmt"

	"smartsouth/internal/controller"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// EthBlackholeChk is the EtherType of the second (checker) traversal of
// the smart-counter blackhole detector.
const EthBlackholeChk = 0x8808

// Report names a suspected blackhole: the directed port (Switch, Port)
// whose transmissions vanish, and the link peer if known.
type Report struct {
	Switch int
	Port   int
	Peer   int // -1 when the topology view cannot resolve it
}

func (r Report) String() string {
	return fmt.Sprintf("blackhole at switch %d port %d (toward %d)", r.Switch, r.Port, r.Peer)
}

// ---------------------------------------------------------------------------
// Variant 1 (§3.3): TTL binary search.
// ---------------------------------------------------------------------------

// BlackholeTTL localises a silent packet-dropping link by running DFS
// probes with increasing TTL budgets. Every switch visit decrements the
// TTL; at zero the packet is punted to the controller instead of being
// forwarded. A probe that neither expires nor completes was swallowed, so
// binary search over the TTL finds the exact hop where packets die, and
// the last expiry report (switch identity plus the packet's DFS state)
// identifies the edge about to be crossed. Cost: ~2 log E out-of-band
// messages, a partial traversal in-band per probe.
type BlackholeTTL struct {
	G     *topo.Graph
	L     *Layout
	Tmpl  *Template
	Prog  *Program
	FKind openflow.Field // 1 = TTL expiry report, 2 = completion report
	ctl   ControlPlane
	be    Backend
}

const (
	reportExpiry   = 1
	reportComplete = 2
)

// InstallBlackholeTTL compiles and installs the TTL-probing detector.
func InstallBlackholeTTL(c ControlPlane, g *topo.Graph, slot int, opts ...InstallOption) (*BlackholeTTL, error) {
	cfg := resolveInstall(opts)
	l := cfg.Backend.NewLayout(g)
	b := &BlackholeTTL{G: g, L: l, ctl: c, be: cfg.Backend, FKind: l.Alloc("report_kind", 2)}
	base := 1 + slot*10
	preT, t0, tFin := base, base+1, base+2
	b.Tmpl = &Template{
		G: g, L: l, Eth: EthBlackhole, T0: t0, TFin: tFin, GroupBase: uint32(slot) << 20,
		Hooks: Hooks{
			Finish: func(int) []openflow.Action {
				return []openflow.Action{
					openflow.SetField{F: b.FKind, Value: reportComplete},
					openflow.Output{Port: openflow.PortController},
				}
			},
			// The hooks write shared fields only, never the node id.
			Uniform: true,
		},
	}
	p := newProgram("blackhole-ttl", slot, g, l)
	if err := cfg.Backend.Lower(b.Tmpl, p); err != nil {
		return nil, err
	}
	eth := openflow.MatchEth(EthBlackhole)
	for i := 0; i < g.NumNodes(); i++ {
		// Steer the service through the TTL pre-table (overrides the
		// template's dispatcher by priority).
		p.AddFlow(i, 0, &openflow.FlowEntry{
			Priority: 101, Match: eth, Goto: preT,
			Cookie: fmt.Sprintf("bh-ttl/n%d/dispatch", i),
		})
		p.AddFlow(i, preT, &openflow.FlowEntry{
			Priority: 200, Match: eth.WithTTL(0),
			Actions: []openflow.Action{
				openflow.SetField{F: b.FKind, Value: reportExpiry},
				openflow.Output{Port: openflow.PortController},
			},
			Goto:   openflow.NoGoto,
			Cookie: fmt.Sprintf("bh-ttl/n%d/expired", i),
		})
		p.AddFlow(i, preT, &openflow.FlowEntry{
			Priority: 100, Match: eth,
			Actions: []openflow.Action{openflow.DecTTL{}},
			Goto:    t0,
			Cookie:  fmt.Sprintf("bh-ttl/n%d/dec", i),
		})
	}
	if err := installProgram(c, p); err != nil {
		return nil, err
	}
	b.Prog = p
	return b, nil
}

// probeOutcome classifies one probe.
type probeOutcome int

const (
	probeSilent probeOutcome = iota
	probeExpired
	probeCompleted
)

// probe sends one trigger with the given TTL budget and runs the network
// to quiescence.
func (b *BlackholeTTL) probe(root int, ttl int) (probeOutcome, controller.PacketIn, error) {
	resetStateful(b.ctl, b.be, b.Prog)
	before := len(b.ctl.Inbox())
	pkt := b.L.NewPacket(EthBlackhole)
	pkt.TTL = uint8(ttl)
	b.ctl.PacketOut(root, openflow.PortController, pkt, b.ctl.Now())
	if _, err := b.ctl.RunNetwork(); err != nil {
		return probeSilent, controller.PacketIn{}, err
	}
	for _, pi := range b.ctl.Inbox()[before:] {
		if pi.Pkt.EthType != EthBlackhole {
			continue
		}
		switch pi.Pkt.Load(b.FKind) {
		case reportExpiry:
			return probeExpired, pi, nil
		case reportComplete:
			return probeCompleted, pi, nil
		}
	}
	return probeSilent, controller.PacketIn{}, nil
}

// Locate runs the binary search from the given root. It returns nil when
// no blackhole exists on the traversal. maxHops bounds the search; pass 0
// for the worst-case bound 4E+2 (which must fit the 8-bit TTL — larger
// networks need probing from several roots or a wider TTL stack; see
// DESIGN.md).
func (b *BlackholeTTL) Locate(root, maxHops int) (*Report, error) {
	if maxHops <= 0 {
		maxHops = 4*b.G.NumEdges() + 2
	}
	if maxHops > 255 {
		maxHops = 255
	}
	out, _, err := b.probe(root, maxHops)
	if err != nil {
		return nil, err
	}
	switch out {
	case probeCompleted:
		return nil, nil // healthy
	case probeExpired:
		return nil, fmt.Errorf("core: traversal longer than maxHops=%d", maxHops)
	}
	// probe(t) is silent iff the fatal hop index h* <= t; find h*.
	lo, hi := 0, maxHops // lo: not silent, hi: silent
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		out, _, err := b.probe(root, mid)
		if err != nil {
			return nil, err
		}
		if out == probeSilent {
			hi = mid
		} else {
			lo = mid
		}
	}
	// The probe with TTL = h*-1 expires at the switch about to send the
	// fatal hop; its packet state tells us which port comes next.
	out, pi, err := b.probe(root, hi-1)
	if err != nil {
		return nil, err
	}
	if out != probeExpired {
		return nil, fmt.Errorf("core: inconsistent probe outcome %d at ttl %d", out, hi-1)
	}
	port := b.nextPort(pi.Switch, pi.Pkt)
	rep := &Report{Switch: pi.Switch, Port: port, Peer: -1}
	if v, _, ok := b.G.Neighbor(pi.Switch, port); ok {
		rep.Peer = v
	}
	return rep, nil
}

// nextPort replays one step of Algorithm 1 at switch s from the reported
// packet state — exactly what the controller application does with its
// topology and port-status view. Under the stateful backend the DFS
// position is not in the packet; the controller reads the expiry switch's
// state table instead (one extra out-of-band read per located blackhole).
func (b *BlackholeTTL) nextPort(s int, pkt *openflow.Packet) int {
	d := b.G.Degree(s)
	var par, cur int
	if b.L.Stateful() {
		v, _ := b.ctl.ReadState(s, b.Tmpl.T0, 0)
		B := openflow.BitsFor(uint64(d))
		par, cur = int(v>>B), int(v&(uint64(1)<<B-1))
	} else {
		par = int(pkt.Load(b.L.Par[s]))
		cur = int(pkt.Load(b.L.Cur[s]))
	}
	advance := func(from, p int) int {
		out := from
		for out <= d {
			if out != p && b.ctl.PortLive(s, out) {
				return out
			}
			out++
		}
		return p
	}
	switch {
	case pkt.Load(b.L.Start) == 0:
		return advance(1, 0)
	case cur == 0:
		return advance(1, pkt.InPort)
	case pkt.InPort == cur && cur != par:
		return advance(cur+1, par)
	default:
		return pkt.InPort // bounce
	}
}

// ---------------------------------------------------------------------------
// Variant 2 (§3.3): smart counters, two traversals, 3 out-of-band messages.
// ---------------------------------------------------------------------------

// BlackholeCounter is the paper's preferred detector. Every switch port
// carries a smart counter. The first traversal "dances" over each link the
// first time it is used — forward, back, forward — so both port counters of
// a healthy link reach at least 2, while a silent failure in either
// direction strands some port counter at exactly 1 (and kills the
// traversal right there). After twice the maximum network delay the
// controller releases a second traversal that fetch-and-increments each
// port counter before using the port: reading 1 means the port faces the
// blackhole, and its description is punted to the controller.
//
// Total out-of-band cost: two triggers plus one report — O(1), independent
// of where the failure is, versus O(E) for controller-driven probing.
type BlackholeCounter struct {
	G *topo.Graph
	L *Layout
	// A is the dance traversal, B the checker traversal.
	A, B     *Template
	Prog     *Program
	FRepeat  openflow.Field
	FCtr     openflow.Field
	FOut     openflow.Field
	Counters [][]*SmartCounter // [node][port-1]
	ctl      ControlPlane
	be       Backend
}

// counterModulus is the smart-counter size. Port counts during one
// detection round stay below 6, so 8 avoids wrap-around entirely.
const counterModulus = 8

// InstallBlackholeCounter compiles and installs the smart-counter
// detector. It occupies the slot's whole table block (pre-table, dance
// tables, checker tables).
func InstallBlackholeCounter(c ControlPlane, g *topo.Graph, slot int, opts ...InstallOption) (*BlackholeCounter, error) {
	cfg := resolveInstall(opts)
	l := cfg.Backend.NewLayout(g)
	b := &BlackholeCounter{
		G: g, L: l, ctl: c, be: cfg.Backend,
		FRepeat: l.Alloc("repeat", 2),
		FCtr:    l.Alloc("ctr_val", openflow.BitsFor(counterModulus-1)),
		FOut:    l.Alloc("out_port", openflow.BitsFor(uint64(g.MaxDegree()))),
	}
	base := 1 + slot*10
	preT, t0A, tFinA := base, base+1, base+2
	t0B, tFinB := base+4, base+5
	gb := uint32(slot) << 20
	ctrGID := func(port int) uint32 { return gb + 0x80000 + uint32(port) }

	prog := newProgram("blackhole-ctr", slot, g, l)

	// Per-port smart counters, shared by both traversals.
	b.Counters = make([][]*SmartCounter, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		b.Counters[i] = make([]*SmartCounter, g.Degree(i))
		for p := 1; p <= g.Degree(i); p++ {
			sc, err := CompileSmartCounter(prog, i, g.Degree(i), ctrGID(p), b.FCtr, counterModulus)
			if err != nil {
				return nil, err
			}
			b.Counters[i][p-1] = sc
		}
	}

	fetch := func(port int) openflow.Action { return openflow.Group{ID: ctrGID(port)} }

	// Dance traversal (A).
	b.A = &Template{
		G: g, L: l, Eth: EthBlackhole, T0: t0A, TFin: tFinA, GroupBase: gb,
		Hooks: Hooks{
			DeferOutput: true, OutField: b.FOut,
			SendNext: func(node, s, par, out int) []openflow.Action {
				return []openflow.Action{fetch(out)}
			},
			// Returns to the parent fetch too: it refreshes the fetched
			// value to the (>= 2) tree-edge count so the stale value of a
			// previous advance cannot trigger a spurious dance.
			SendParent: func(node, par int) []openflow.Action {
				return []openflow.Action{fetch(par)}
			},
			Bounce: func(node, in int) []Variant {
				return []Variant{{Do: []openflow.Action{openflow.SetField{F: b.FRepeat, Value: 0}}}}
			},
			// A healthy dance traversal ends silently at the root; only
			// the checker reports.

			// fetch(out) depends on the port only; counters share the
			// degree-determined group-id scheme across nodes.
			Uniform: true,
		},
	}
	if err := cfg.Backend.Lower(b.A, prog); err != nil {
		return nil, err
	}

	// Checker traversal (B).
	b.B = &Template{
		G: g, L: l, Eth: EthBlackholeChk, T0: t0B, TFin: tFinB, GroupBase: gb + 0x40000,
		Hooks: Hooks{
			DeferOutput: true, OutField: b.FOut,
			SendNext: func(node, s, par, out int) []openflow.Action {
				return []openflow.Action{fetch(out)}
			},
			SendParent: func(node, par int) []openflow.Action {
				return []openflow.Action{fetch(par)}
			},
			Finish: func(int) []openflow.Action {
				// Completion with out_port=0: "no blackhole found".
				return []openflow.Action{openflow.Output{Port: openflow.PortController}}
			},
			Uniform: true,
		},
	}
	if err := cfg.Backend.Lower(b.B, prog); err != nil {
		return nil, err
	}

	ethA := openflow.MatchEth(EthBlackhole)
	ethB := openflow.MatchEth(EthBlackholeChk)
	for i := 0; i < g.NumNodes(); i++ {
		d := g.Degree(i)

		// Dance pre-table: echo/resend/absorb the three dance messages
		// before any traversal processing. Overrides A's dispatcher.
		prog.AddFlow(i, 0, &openflow.FlowEntry{
			Priority: 101, Match: ethA, Goto: preT,
			Cookie: fmt.Sprintf("bh-ctr/n%d/dispatch", i),
		})
		for q := 1; q <= d; q++ {
			prog.AddFlow(i, preT, &openflow.FlowEntry{
				Priority: 300, Match: ethA.WithInPort(q).WithField(b.FRepeat, 3),
				Actions: []openflow.Action{fetch(q),
					openflow.SetField{F: b.FRepeat, Value: 2},
					openflow.Output{Port: openflow.PortInPort}},
				Goto:   openflow.NoGoto,
				Cookie: fmt.Sprintf("bh-ctr/n%d/dance-echo-in%d", i, q),
			})
			prog.AddFlow(i, preT, &openflow.FlowEntry{
				Priority: 300, Match: ethA.WithInPort(q).WithField(b.FRepeat, 2),
				Actions: []openflow.Action{fetch(q),
					openflow.SetField{F: b.FRepeat, Value: 1},
					openflow.Output{Port: openflow.PortInPort}},
				Goto:   openflow.NoGoto,
				Cookie: fmt.Sprintf("bh-ctr/n%d/dance-resend-in%d", i, q),
			})
			prog.AddFlow(i, preT, &openflow.FlowEntry{
				Priority: 290, Match: ethA.WithInPort(q).WithField(b.FRepeat, 1),
				Actions: []openflow.Action{fetch(q),
					openflow.SetField{F: b.FRepeat, Value: 0}},
				Goto:   t0A,
				Cookie: fmt.Sprintf("bh-ctr/n%d/dance-done-in%d", i, q),
			})
		}
		prog.AddFlow(i, preT, &openflow.FlowEntry{
			Priority: 100, Match: ethA, Goto: t0A,
			Cookie: fmt.Sprintf("bh-ctr/n%d/plain", i),
		})

		// Dance decision table (A's finish table): a fetched value of 0
		// means this directed edge is fresh — dance it; otherwise plain.
		for k := 1; k <= d; k++ {
			prog.AddFlow(i, tFinA, &openflow.FlowEntry{
				Priority: PrioFinish + 60,
				Match:    ethA.WithField(b.FOut, uint64(k)).WithField(b.FCtr, 0),
				Actions: []openflow.Action{
					openflow.SetField{F: b.FRepeat, Value: 3},
					openflow.Output{Port: k}},
				Goto:   openflow.NoGoto,
				Cookie: fmt.Sprintf("bh-ctr/n%d/dance-start-k%d", i, k),
			})
			prog.AddFlow(i, tFinA, &openflow.FlowEntry{
				Priority: PrioFinish + 40,
				Match:    ethA.WithField(b.FOut, uint64(k)),
				Actions: []openflow.Action{
					openflow.SetField{F: b.FRepeat, Value: 0},
					openflow.Output{Port: k}},
				Goto:   openflow.NoGoto,
				Cookie: fmt.Sprintf("bh-ctr/n%d/plain-k%d", i, k),
			})
		}

		// Checker decision table (B's finish table): a fetched value of 1
		// marks the blackhole port — report it; otherwise forward.
		for k := 1; k <= d; k++ {
			prog.AddFlow(i, tFinB, &openflow.FlowEntry{
				Priority: PrioFinish + 60,
				Match:    ethB.WithField(b.FOut, uint64(k)).WithField(b.FCtr, 1),
				Actions:  []openflow.Action{openflow.Output{Port: openflow.PortController}},
				Goto:     openflow.NoGoto,
				Cookie:   fmt.Sprintf("bh-ctr/n%d/report-k%d", i, k),
			})
			prog.AddFlow(i, tFinB, &openflow.FlowEntry{
				Priority: PrioFinish + 40,
				Match:    ethB.WithField(b.FOut, uint64(k)),
				Actions:  []openflow.Action{openflow.Output{Port: k}},
				Goto:     openflow.NoGoto,
				Cookie:   fmt.Sprintf("bh-ctr/n%d/fwd-k%d", i, k),
			})
		}
	}
	if err := installProgram(c, prog); err != nil {
		return nil, err
	}
	b.Prog = prog
	return b, nil
}

// Detect launches the two traversals from root: the dance immediately, the
// checker after guard (use 0 for an automatic twice-the-worst-case-delay
// guard). Run the network afterwards and call Outcome.
func (b *BlackholeCounter) Detect(root int, at, guard network.Time) {
	if guard <= 0 {
		// Worst case: ~6E dance crossings at the default 1µs link delay,
		// doubled for safety (the paper's "twice the maximum delay").
		guard = network.Time(12*(b.G.NumEdges()+2)) * 1000
	}
	resetStateful(b.ctl, b.be, b.Prog)
	b.ctl.PacketOut(root, openflow.PortController, b.L.NewPacket(EthBlackhole), at)
	b.ctl.PacketOut(root, openflow.PortController, b.L.NewPacket(EthBlackholeChk), at+guard)
}

// Outcome scans the controller inbox for the checker's verdict. found
// reports whether a blackhole was located; done reports whether any
// verdict (including "network healthy") has arrived.
func (b *BlackholeCounter) Outcome() (rep *Report, found, done bool) {
	for _, pi := range b.ctl.Inbox() {
		if pi.Pkt.EthType != EthBlackholeChk {
			continue
		}
		port := int(pi.Pkt.Load(b.FOut))
		if port == 0 {
			return nil, false, true // completed: healthy
		}
		r := &Report{Switch: pi.Switch, Port: port, Peer: -1}
		if v, _, ok := b.G.Neighbor(pi.Switch, port); ok {
			r.Peer = v
		}
		return r, true, true
	}
	return nil, false, false
}

// ResetCounters zeroes every smart counter (offline group-mods), preparing
// a fresh detection round.
func (b *BlackholeCounter) ResetCounters() {
	for _, row := range b.Counters {
		for _, sc := range row {
			sc.Reset(b.ctl)
		}
	}
}
