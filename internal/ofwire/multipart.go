package ofwire

import (
	"encoding/binary"
	"fmt"
)

// Multipart message types.
const (
	TypeMultipartRequest = 18
	TypeMultipartReply   = 19

	// OFPMP_GROUP: group statistics.
	mpGroup = MultipartGroup
)

// Multipart kinds (exported for dispatch).
const (
	// MultipartFlow identifies OFPMP_FLOW messages.
	MultipartFlow = 1
	// MultipartGroup identifies OFPMP_GROUP messages.
	MultipartGroup = 6
)

const mpFlow = MultipartFlow

// FlowStat is one flow entry's statistics in a table-stats reply: the
// entry's priority, its cookie (the FNV-64 hash of the human-readable
// cookie string, as installed), and its packet counter.
type FlowStat struct {
	Priority int
	Cookie   uint64
	Packets  uint64
}

// MarshalFlowStatsRequest encodes an OFPMP_FLOW request for every entry
// of one table.
func MarshalFlowStatsRequest(xid uint32, table int) []byte {
	body := make([]byte, 8+8)
	binary.BigEndian.PutUint16(body[0:], mpFlow)
	body[8] = uint8(table)
	return message(TypeMultipartRequest, xid, body)
}

// ParseFlowStatsRequest decodes the request body, returning the table id.
func ParseFlowStatsRequest(body []byte) (int, error) {
	if len(body) < 16 {
		return 0, fmt.Errorf("ofwire: short flow-stats request (%d bytes)", len(body))
	}
	if typ := binary.BigEndian.Uint16(body[0:]); typ != mpFlow {
		return 0, fmt.Errorf("ofwire: unsupported multipart type %d", typ)
	}
	return int(body[8]), nil
}

// MarshalFlowStatsReply encodes an OFPMP_FLOW reply: a fixed 18-byte
// record per entry (priority + cookie + packet count).
func MarshalFlowStatsReply(xid uint32, stats []FlowStat) []byte {
	body := make([]byte, 8+18*len(stats))
	binary.BigEndian.PutUint16(body[0:], mpFlow)
	for i, s := range stats {
		rec := body[8+18*i:]
		binary.BigEndian.PutUint16(rec[0:], uint16(s.Priority))
		binary.BigEndian.PutUint64(rec[2:], s.Cookie)
		binary.BigEndian.PutUint64(rec[10:], s.Packets)
	}
	return body2msg(xid, body)
}

func body2msg(xid uint32, body []byte) []byte { return message(TypeMultipartReply, xid, body) }

// ParseFlowStatsReply decodes a flow-stats reply body.
func ParseFlowStatsReply(body []byte) ([]FlowStat, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("ofwire: short flow-stats reply")
	}
	if typ := binary.BigEndian.Uint16(body[0:]); typ != mpFlow {
		return nil, fmt.Errorf("ofwire: unsupported multipart type %d", typ)
	}
	recs := body[8:]
	if len(recs)%18 != 0 {
		return nil, fmt.Errorf("ofwire: flow-stats reply length %d not a record multiple", len(recs))
	}
	out := make([]FlowStat, 0, len(recs)/18)
	for off := 0; off < len(recs); off += 18 {
		out = append(out, FlowStat{
			Priority: int(binary.BigEndian.Uint16(recs[off:])),
			Cookie:   binary.BigEndian.Uint64(recs[off+2:]),
			Packets:  binary.BigEndian.Uint64(recs[off+10:]),
		})
	}
	return out, nil
}

// MultipartKind peeks the multipart type of a request/reply body.
func MultipartKind(body []byte) (uint16, error) {
	if len(body) < 2 {
		return 0, fmt.Errorf("ofwire: short multipart body")
	}
	return binary.BigEndian.Uint16(body[0:]), nil
}

// GroupStats is the decoded per-group statistics: one packet counter per
// bucket (ofp_bucket_counter). For a round-robin SELECT group the bucket
// counters let the controller recover the smart-counter value out of
// band: value = sum(bucket packets) mod bucket count.
type GroupStats struct {
	ID            uint32
	BucketPackets []uint64
}

// Value returns the recovered round-robin pointer.
func (gs GroupStats) Value() int {
	if len(gs.BucketPackets) == 0 {
		return 0
	}
	var total uint64
	for _, p := range gs.BucketPackets {
		total += p
	}
	return int(total % uint64(len(gs.BucketPackets)))
}

// MarshalGroupStatsRequest encodes an OFPMP_GROUP multipart request for
// one group.
func MarshalGroupStatsRequest(xid, groupID uint32) []byte {
	body := make([]byte, 8+8)
	binary.BigEndian.PutUint16(body[0:], mpGroup)
	binary.BigEndian.PutUint32(body[8:], groupID)
	return message(TypeMultipartRequest, xid, body)
}

// ParseGroupStatsRequest decodes the request body, returning the group id.
func ParseGroupStatsRequest(body []byte) (uint32, error) {
	if len(body) < 16 {
		return 0, fmt.Errorf("ofwire: short multipart request (%d bytes)", len(body))
	}
	if typ := binary.BigEndian.Uint16(body[0:]); typ != mpGroup {
		return 0, fmt.Errorf("ofwire: unsupported multipart type %d", typ)
	}
	return binary.BigEndian.Uint32(body[8:]), nil
}

// MarshalGroupStatsReply encodes an OFPMP_GROUP multipart reply carrying
// one group's statistics.
func MarshalGroupStatsReply(xid uint32, gs GroupStats) []byte {
	// Multipart header (8) + ofp_group_stats (40) + bucket counters.
	statsLen := 40 + 16*len(gs.BucketPackets)
	body := make([]byte, 8+statsLen)
	binary.BigEndian.PutUint16(body[0:], mpGroup)
	st := body[8:]
	binary.BigEndian.PutUint16(st[0:], uint16(statsLen))
	binary.BigEndian.PutUint32(st[4:], gs.ID)
	var total uint64
	for _, p := range gs.BucketPackets {
		total += p
	}
	binary.BigEndian.PutUint64(st[16:], total) // packet_count
	for i, p := range gs.BucketPackets {
		binary.BigEndian.PutUint64(st[40+16*i:], p)
	}
	return message(TypeMultipartReply, xid, body)
}

// ParseGroupStatsReply decodes a reply body.
func ParseGroupStatsReply(body []byte) (GroupStats, error) {
	if len(body) < 8 {
		return GroupStats{}, fmt.Errorf("ofwire: short multipart reply")
	}
	if typ := binary.BigEndian.Uint16(body[0:]); typ != mpGroup {
		return GroupStats{}, fmt.Errorf("ofwire: unsupported multipart type %d", typ)
	}
	st := body[8:]
	if len(st) < 40 {
		return GroupStats{}, fmt.Errorf("ofwire: short group stats")
	}
	statsLen := int(binary.BigEndian.Uint16(st[0:]))
	if statsLen < 40 || statsLen > len(st) || (statsLen-40)%16 != 0 {
		return GroupStats{}, fmt.Errorf("ofwire: bad group stats length %d", statsLen)
	}
	gs := GroupStats{ID: binary.BigEndian.Uint32(st[4:])}
	for off := 40; off < statsLen; off += 16 {
		gs.BucketPackets = append(gs.BucketPackets, binary.BigEndian.Uint64(st[off:]))
	}
	return gs, nil
}
