package ofwire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"smartsouth/internal/openflow"
)

func TestHeaderRoundTrip(t *testing.T) {
	msg := Hello(42)
	h, err := ParseHeader(msg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != Version || h.Type != TypeHello || h.XID != 42 || int(h.Length) != len(msg) {
		t.Fatalf("header %+v", h)
	}
	if _, err := ParseHeader(msg[:4]); err == nil {
		t.Error("short header accepted")
	}
}

func TestEchoAndFeatures(t *testing.T) {
	e := EchoRequest(7, []byte("ping"))
	h, _ := ParseHeader(e)
	if h.Type != TypeEchoRequest || !bytes.Equal(e[HeaderLen:], []byte("ping")) {
		t.Error("echo encoding")
	}
	fr := FeaturesReply(9, Features{DatapathID: 0xABCD, NumBuffers: 0, NumTables: 64})
	f, err := ParseFeaturesReply(fr[HeaderLen:])
	if err != nil || f.DatapathID != 0xABCD || f.NumTables != 64 {
		t.Fatalf("features %+v err %v", f, err)
	}
}

// entriesEquivalent compares flow entries up to the cookie (which becomes
// a hash on the wire).
func entriesEquivalent(a, b *openflow.FlowEntry) bool {
	if a.Priority != b.Priority || a.Goto != b.Goto {
		return false
	}
	if a.Match.InPort != b.Match.InPort || a.Match.EthType != b.Match.EthType || a.Match.TTL != b.Match.TTL {
		return false
	}
	if len(a.Match.Fields) != len(b.Match.Fields) {
		return false
	}
	for i := range a.Match.Fields {
		fa, fb := a.Match.Fields[i], b.Match.Fields[i]
		fa.F.Name, fb.F.Name = "", ""
		if !reflect.DeepEqual(fa, fb) {
			return false
		}
	}
	return actionsEquivalent(a.Actions, b.Actions)
}

func actionsEquivalent(a, b []openflow.Action) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if sf, ok := x.(openflow.SetField); ok {
			sf.F.Name = ""
			x = sf
		}
		if sf, ok := y.(openflow.SetField); ok {
			sf.F.Name = ""
			y = sf
		}
		if !reflect.DeepEqual(x, y) {
			return false
		}
	}
	return true
}

func sampleField(rng *rand.Rand) openflow.Field {
	return openflow.Field{Off: rng.Intn(200), Bits: 1 + rng.Intn(48)}
}

func sampleMatch(rng *rand.Rand) openflow.Match {
	m := openflow.MatchAll()
	if rng.Intn(2) == 0 {
		m.InPort = 1 + rng.Intn(32)
	}
	if rng.Intn(2) == 0 {
		m.EthType = int(uint16(rng.Uint32()))
	}
	if rng.Intn(3) == 0 {
		m.TTL = rng.Intn(256)
	}
	for i := rng.Intn(4); i > 0; i-- {
		f := sampleField(rng)
		fm := openflow.FieldMatch{F: f, Value: rng.Uint64() & f.Max()}
		if rng.Intn(3) == 0 {
			fm.Mask = rng.Uint64() & f.Max()
			if fm.Mask == 0 || fm.Mask == f.Max() {
				fm.Mask = 0 // exact
			}
		}
		m.Fields = append(m.Fields, fm)
	}
	return m
}

func sampleActions(rng *rand.Rand) []openflow.Action {
	var acts []openflow.Action
	for i := rng.Intn(6); i > 0; i-- {
		switch rng.Intn(6) {
		case 0:
			ports := []int{1 + rng.Intn(32), openflow.PortController, openflow.PortSelf, openflow.PortInPort}
			acts = append(acts, openflow.Output{Port: ports[rng.Intn(len(ports))]})
		case 1:
			f := sampleField(rng)
			acts = append(acts, openflow.SetField{F: f, Value: rng.Uint64() & f.Max()})
		case 2:
			acts = append(acts, openflow.PushLabel{Value: rng.Uint32() & 0xFFFFF})
		case 3:
			acts = append(acts, openflow.PopLabel{})
		case 4:
			acts = append(acts, openflow.DecTTL{})
		case 5:
			acts = append(acts, openflow.Group{ID: rng.Uint32() % 1000})
		}
	}
	return acts
}

func TestQuickFlowModRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := &openflow.FlowEntry{
			Priority: rng.Intn(1 << 16),
			Match:    sampleMatch(rng),
			Actions:  sampleActions(rng),
			Goto:     openflow.NoGoto,
			Cookie:   "test/rule",
		}
		if rng.Intn(2) == 0 {
			e.Goto = rng.Intn(250)
		}
		table := rng.Intn(250)
		msg, err := MarshalFlowMod(77, table, e)
		if err != nil {
			return false
		}
		h, err := ParseHeader(msg)
		if err != nil || h.Type != TypeFlowMod || int(h.Length) != len(msg) {
			return false
		}
		fm, err := ParseFlowMod(msg[HeaderLen:])
		if err != nil {
			return false
		}
		return fm.Table == table && entriesEquivalent(e, fm.Entry)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickGroupModRoundTrip(t *testing.T) {
	types := []openflow.GroupType{openflow.GroupAll, openflow.GroupIndirect, openflow.GroupFF, openflow.GroupSelectRR}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := &openflow.GroupEntry{
			ID:   rng.Uint32() % 100000,
			Type: types[rng.Intn(len(types))],
		}
		for i := rng.Intn(5); i > 0; i-- {
			b := openflow.Bucket{WatchPort: openflow.WatchNone, Actions: sampleActions(rng)}
			if rng.Intn(2) == 0 {
				b.WatchPort = 1 + rng.Intn(32)
			}
			g.Buckets = append(g.Buckets, b)
		}
		msg, err := MarshalGroupMod(3, g)
		if err != nil {
			return false
		}
		got, err := ParseGroupMod(msg[HeaderLen:])
		if err != nil {
			return false
		}
		if got.ID != g.ID || got.Type != g.Type || len(got.Buckets) != len(g.Buckets) {
			return false
		}
		for i := range g.Buckets {
			if got.Buckets[i].WatchPort != g.Buckets[i].WatchPort {
				return false
			}
			if !actionsEquivalent(got.Buckets[i].Actions, g.Buckets[i].Actions) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickPacketRoundTrip(t *testing.T) {
	check := func(tag []byte, labels []uint32, payload []byte, eth uint16, ttl uint8) bool {
		if len(tag) > 1000 || len(labels) > 100 || len(payload) > 1000 {
			return true
		}
		p := &openflow.Packet{EthType: eth, TTL: ttl, Tag: tag, Labels: labels, Payload: payload}
		q, err := UnmarshalPacket(MarshalPacket(p))
		if err != nil {
			return false
		}
		if q.EthType != eth || q.TTL != ttl {
			return false
		}
		return bytes.Equal(q.Tag, tag) &&
			reflect.DeepEqual(append([]uint32{}, q.Labels...), append([]uint32{}, labels...)) &&
			bytes.Equal(q.Payload, payload)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPacketOutInRoundTrip(t *testing.T) {
	pkt := openflow.NewPacket(0x8801, 12)
	pkt.Store(openflow.Field{Off: 3, Bits: 9}, 301)
	pkt.PushLabel(0xBEEF)
	pkt.Payload = []byte("data")

	po := PacketOut{InPort: openflow.PortController, Actions: []openflow.Action{openflow.Output{Port: 2}}, Pkt: pkt}
	msg, err := MarshalPacketOut(5, po)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePacketOut(msg[HeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if got.InPort != po.InPort || len(got.Actions) != 1 {
		t.Fatalf("packet-out %+v", got)
	}
	if got.Pkt.EthType != pkt.EthType || !bytes.Equal(got.Pkt.Tag, pkt.Tag) ||
		len(got.Pkt.Labels) != 1 || got.Pkt.Labels[0] != 0xBEEF {
		t.Fatalf("packet-out pkt %+v", got.Pkt)
	}

	pi := PacketIn{InPort: 3, Pkt: pkt}
	msg2 := MarshalPacketIn(6, pi)
	got2, err := ParsePacketIn(msg2[HeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if got2.InPort != 3 || got2.Pkt.EthType != pkt.EthType || string(got2.Pkt.Payload) != "data" {
		t.Fatalf("packet-in %+v", got2)
	}

	// Controller-port packet-in (no in_port OXM).
	msg3 := MarshalPacketIn(7, PacketIn{InPort: openflow.PortController, Pkt: pkt})
	got3, err := ParsePacketIn(msg3[HeaderLen:])
	if err != nil || got3.InPort != openflow.PortController {
		t.Fatalf("packet-in controller: %+v %v", got3, err)
	}
}

func TestFlowAndGroupStatsRoundTrip(t *testing.T) {
	stats := []FlowStat{
		{Priority: 9000, Cookie: CookieHash("a"), Packets: 3},
		{Priority: 5, Cookie: CookieHash("b"), Packets: 0},
	}
	msg := MarshalFlowStatsReply(4, stats)
	got, err := ParseFlowStatsReply(msg[HeaderLen:])
	if err != nil || !reflect.DeepEqual(got, stats) {
		t.Fatalf("flow stats round-trip: %v (%v)", got, err)
	}
	req := MarshalFlowStatsRequest(9, 7)
	if table, err := ParseFlowStatsRequest(req[HeaderLen:]); err != nil || table != 7 {
		t.Fatalf("flow stats request: %d %v", table, err)
	}

	gs := GroupStats{ID: 12, BucketPackets: []uint64{5, 5, 4, 4}}
	if gs.Value() != 18%4 {
		t.Errorf("recovered value %d", gs.Value())
	}
	gmsg := MarshalGroupStatsReply(2, gs)
	got2, err := ParseGroupStatsReply(gmsg[HeaderLen:])
	if err != nil || !reflect.DeepEqual(got2, gs) {
		t.Fatalf("group stats round-trip: %v (%v)", got2, err)
	}
	greq := MarshalGroupStatsRequest(3, 12)
	if id, err := ParseGroupStatsRequest(greq[HeaderLen:]); err != nil || id != 12 {
		t.Fatalf("group stats request: %d %v", id, err)
	}
	// Kind dispatch.
	if k, _ := MultipartKind(msg[HeaderLen:]); k != MultipartFlow {
		t.Error("flow kind")
	}
	if k, _ := MultipartKind(gmsg[HeaderLen:]); k != MultipartGroup {
		t.Error("group kind")
	}
}

func TestPortStatusRoundTrip(t *testing.T) {
	for _, ps := range []PortStatus{{Port: 3, Up: true}, {Port: 7, Up: false}} {
		msg := MarshalPortStatus(5, ps)
		h, _ := ParseHeader(msg)
		if h.Type != TypePortStatus {
			t.Fatal("wrong type")
		}
		got, err := ParsePortStatus(msg[HeaderLen:])
		if err != nil || got != ps {
			t.Fatalf("round-trip %+v -> %+v (%v)", ps, got, err)
		}
	}
	if _, err := ParsePortStatus(make([]byte, 5)); err == nil {
		t.Error("short port-status accepted")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := ParseFlowMod(make([]byte, 10)); err == nil {
		t.Error("short flow-mod accepted")
	}
	if _, err := ParseGroupMod(make([]byte, 3)); err == nil {
		t.Error("short group-mod accepted")
	}
	if _, err := UnmarshalPacket([]byte{1, 2}); err == nil {
		t.Error("short packet accepted")
	}
	if _, err := ParsePacketOut(make([]byte, 5)); err == nil {
		t.Error("short packet-out accepted")
	}
	// Flow-mod with a non-ADD command.
	e := &openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll(), Goto: openflow.NoGoto}
	msg, _ := MarshalFlowMod(1, 0, e)
	msg[HeaderLen+17] = 3 // OFPFC_DELETE
	if _, err := ParseFlowMod(msg[HeaderLen:]); err == nil {
		t.Error("unsupported command accepted")
	}
}

// TestRealServiceRulesSurviveTheWire marshals every rule and group the
// snapshot compiler emits for a switch, parses them back, and checks the
// reconstructed entries are semantically identical — the encoder must
// cover everything the compiler can produce.
func TestRealServiceRulesSurviveTheWire(t *testing.T) {
	// Build entries via a tiny fake controller: capture installs.
	type install struct {
		table int
		e     *openflow.FlowEntry
	}
	// Use a scratch network to compile a real service.
	// (Import cycle prevents using package core here directly in a
	// focused way; instead craft representative entries, including the
	// deep variants: masked matches, FF buckets with chained groups.)
	f1 := openflow.Field{Off: 2, Bits: 2}
	f2 := openflow.Field{Off: 4, Bits: 11}
	entries := []install{
		{0, &openflow.FlowEntry{Priority: 100, Match: openflow.MatchEth(0x8802), Goto: 1, Cookie: "dispatch"}},
		{1, &openflow.FlowEntry{Priority: 9000, Match: openflow.MatchEth(0x8802).WithField(f1, 0),
			Actions: []openflow.Action{
				openflow.SetField{F: f1, Value: 1},
				openflow.PushLabel{Value: 0x1003},
				openflow.Group{ID: 7},
			}, Goto: 2, Cookie: "start"}},
		{1, &openflow.FlowEntry{Priority: 8000, Match: openflow.MatchEth(0x8802).WithInPort(2).WithField(f2, 0),
			Actions: []openflow.Action{
				openflow.SetField{F: f2, Value: 2},
				openflow.PopLabel{},
				openflow.Output{Port: openflow.PortInPort},
			}, Goto: openflow.NoGoto, Cookie: "first"}},
		{1, &openflow.FlowEntry{Priority: 200, Match: openflow.MatchEth(0x8805).WithTTL(0),
			Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
			Goto:    openflow.NoGoto, Cookie: "expired"}},
	}
	for i, in := range entries {
		msg, err := MarshalFlowMod(uint32(i), in.table, in.e)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		fm, err := ParseFlowMod(msg[HeaderLen:])
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if fm.Table != in.table || !entriesEquivalent(in.e, fm.Entry) {
			t.Fatalf("entry %d not equivalent after round-trip:\n  in:  %v\n  out: %v", i, in.e, fm.Entry)
		}
	}

	g := &openflow.GroupEntry{ID: 9, Type: openflow.GroupFF, Buckets: []openflow.Bucket{
		{WatchPort: 1, Actions: []openflow.Action{openflow.Group{ID: 100}, openflow.SetField{F: f2, Value: 1}, openflow.Output{Port: 1}}},
		{WatchPort: openflow.WatchNone, Actions: []openflow.Action{openflow.SetField{F: f2, Value: 0}}},
	}}
	msg, err := MarshalGroupMod(1, g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseGroupMod(msg[HeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 9 || got.Type != openflow.GroupFF || len(got.Buckets) != 2 ||
		got.Buckets[0].WatchPort != 1 || got.Buckets[1].WatchPort != openflow.WatchNone {
		t.Fatalf("group round-trip: %+v", got)
	}
}
