package ofwire

import (
	"bytes"
	"testing"

	"smartsouth/internal/openflow"
)

func TestBatchRoundTrip(t *testing.T) {
	var subs [][]byte
	for i := 0; i < 5; i++ {
		e := &openflow.FlowEntry{
			Priority: 100 + i,
			Match:    openflow.MatchEth(0x8801).WithInPort(i + 1),
			Actions:  []openflow.Action{openflow.Output{Port: 1}},
			Goto:     openflow.NoGoto,
			Cookie:   "batch/test",
		}
		sub, err := MarshalFlowMod(uint32(i), 3, e)
		if err != nil {
			t.Fatalf("MarshalFlowMod: %v", err)
		}
		subs = append(subs, sub)
	}

	xid := uint32(100)
	batches := MarshalBatches(func() uint32 { xid++; return xid }, subs)
	if len(batches) != 1 {
		t.Fatalf("got %d batches, want 1", len(batches))
	}
	h, err := ParseHeader(batches[0])
	if err != nil || h.Type != TypeBatch {
		t.Fatalf("header = %+v, err %v", h, err)
	}
	got, err := ParseBatch(batches[0][HeaderLen:])
	if err != nil {
		t.Fatalf("ParseBatch: %v", err)
	}
	if len(got) != len(subs) {
		t.Fatalf("got %d sub-messages, want %d", len(got), len(subs))
	}
	for i := range subs {
		if !bytes.Equal(got[i], subs[i]) {
			t.Fatalf("sub-message %d does not round-trip", i)
		}
	}
	// Sub-messages must parse back into the original entries.
	fm, err := ParseFlowMod(got[2][HeaderLen:])
	if err != nil || fm.Table != 3 || fm.Entry.Priority != 102 {
		t.Fatalf("embedded flow-mod = %+v, err %v", fm, err)
	}
}

func TestBatchSplitsAtSizeCap(t *testing.T) {
	sub := message(TypeFlowMod, 0, make([]byte, 1024))
	var subs [][]byte
	total := 0
	for total <= MaxBatchBody { // guarantee an overflow into a second batch
		subs = append(subs, sub)
		total += len(sub)
	}
	n := uint32(0)
	batches := MarshalBatches(func() uint32 { n++; return n }, subs)
	if len(batches) < 2 {
		t.Fatalf("got %d batches, want >= 2 for %d bytes of sub-messages", len(batches), total)
	}
	parsed := 0
	for _, b := range batches {
		if len(b) > HeaderLen+MaxBatchBody {
			t.Fatalf("batch of %d bytes exceeds cap", len(b))
		}
		got, err := ParseBatch(b[HeaderLen:])
		if err != nil {
			t.Fatalf("ParseBatch: %v", err)
		}
		parsed += len(got)
	}
	if parsed != len(subs) {
		t.Fatalf("round-tripped %d sub-messages, want %d", parsed, len(subs))
	}
}

func TestParseBatchRejectsTruncation(t *testing.T) {
	sub := message(TypeFlowMod, 7, make([]byte, 32))
	if _, err := ParseBatch(sub[:len(sub)-4]); err == nil {
		t.Fatalf("truncated batch body parsed without error")
	}
}
