package ofwire

import (
	"testing"

	"smartsouth/internal/openflow"
)

// The fuzz targets assert that no crafted input can panic the parsers —
// a controller must survive a byzantine switch and vice versa. Under
// plain `go test` the seed corpus runs; `go test -fuzz` explores further.

func FuzzParseFlowMod(f *testing.F) {
	e := &openflow.FlowEntry{
		Priority: 5,
		Match:    openflow.MatchEth(0x8801).WithInPort(1).WithField(openflow.Field{Off: 3, Bits: 7}, 42),
		Actions:  []openflow.Action{openflow.PushLabel{Value: 9}, openflow.Output{Port: 2}},
		Goto:     4,
	}
	msg, _ := MarshalFlowMod(1, 2, e)
	f.Add(msg[HeaderLen:])
	f.Add([]byte{})
	f.Add(make([]byte, 40))
	f.Fuzz(func(t *testing.T, body []byte) {
		fm, err := ParseFlowMod(body)
		if err == nil && fm.Entry == nil {
			t.Fatal("nil entry without error")
		}
	})
}

func FuzzParseGroupMod(f *testing.F) {
	g := &openflow.GroupEntry{ID: 3, Type: openflow.GroupFF, Buckets: []openflow.Bucket{
		{WatchPort: 1, Actions: []openflow.Action{openflow.Output{Port: 1}}},
	}}
	msg, _ := MarshalGroupMod(1, g)
	f.Add(msg[HeaderLen:])
	f.Add(make([]byte, 8))
	f.Fuzz(func(t *testing.T, body []byte) {
		_, _ = ParseGroupMod(body)
	})
}

func FuzzParsePacketOut(f *testing.F) {
	pkt := openflow.NewPacket(0x8801, 4)
	pkt.PushLabel(7)
	msg, _ := MarshalPacketOut(1, PacketOut{InPort: 1, Pkt: pkt})
	f.Add(msg[HeaderLen:])
	f.Fuzz(func(t *testing.T, body []byte) {
		_, _ = ParsePacketOut(body)
	})
}

func FuzzParsePacketIn(f *testing.F) {
	pkt := openflow.NewPacket(0x8801, 4)
	f.Add(MarshalPacketIn(1, PacketIn{InPort: 2, Pkt: pkt})[HeaderLen:])
	f.Fuzz(func(t *testing.T, body []byte) {
		_, _ = ParsePacketIn(body)
	})
}

func FuzzUnmarshalPacket(f *testing.F) {
	pkt := openflow.NewPacket(0x8801, 9)
	pkt.PushLabel(1)
	pkt.Payload = []byte("xyz")
	f.Add(MarshalPacket(pkt))
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := UnmarshalPacket(b)
		if err == nil {
			// A successful parse must re-marshal without panicking.
			_ = MarshalPacket(p)
		}
	})
}

func FuzzParseHeader(f *testing.F) {
	f.Add(Hello(1))
	f.Fuzz(func(t *testing.T, b []byte) {
		_, _ = ParseHeader(b)
	})
}
