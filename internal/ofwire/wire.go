// Package ofwire implements the OpenFlow 1.3 wire encoding for the subset
// of the protocol SmartSouth needs: HELLO/ECHO/FEATURES/BARRIER session
// messages, FLOW_MOD and GROUP_MOD for the offline installation stage, and
// PACKET_OUT / PACKET_IN for the runtime stage.
//
// Standard match fields (in_port, eth_type) and actions (output, group,
// push/pop MPLS, set mpls_label, dec ttl) use their OpenFlow 1.3 binary
// layouts. SmartSouth's bit-addressed tag fields ride in experimenter OXM
// TLVs (class 0xFFFF), exactly how a real deployment would carry extended
// match fields; the paper's NoviKit target advertises "full support for
// extended match fields".
//
// Byte order is big-endian network order throughout, per the spec.
package ofwire

import (
	"encoding/binary"
	"fmt"

	"smartsouth/internal/openflow"
)

// Version is the OpenFlow version byte (1.3).
const Version = 0x04

// Message types (ofp_type).
const (
	TypeHello           = 0
	TypeError           = 1
	TypeEchoRequest     = 2
	TypeEchoReply       = 3
	TypeFeaturesRequest = 5
	TypeFeaturesReply   = 6
	TypePacketIn        = 10
	TypePortStatus      = 12
	TypePacketOut       = 13
	TypeFlowMod         = 14
	TypeGroupMod        = 15
	TypeBarrierRequest  = 20
	TypeBarrierReply    = 21
)

// Reserved OpenFlow port numbers used on the wire.
const (
	ofppInPort     = 0xfffffff8
	ofppController = 0xfffffffd
	ofppLocal      = 0xfffffffe
	ofppAny        = 0xffffffff
	// OFPCML_NO_BUFFER: send the complete packet to the controller.
	noBuffer = 0xffff
	// OFP_NO_BUFFER buffer id.
	ofpNoBuffer = 0xffffffff
)

// Header is the 8-byte ofp_header.
type Header struct {
	Version uint8
	Type    uint8
	Length  uint16
	XID     uint32
}

// HeaderLen is the encoded header size.
const HeaderLen = 8

func (h Header) marshal(b []byte) {
	b[0] = h.Version
	b[1] = h.Type
	binary.BigEndian.PutUint16(b[2:], h.Length)
	binary.BigEndian.PutUint32(b[4:], h.XID)
}

// ParseHeader decodes an ofp_header.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("ofwire: short header (%d bytes)", len(b))
	}
	h := Header{
		Version: b[0],
		Type:    b[1],
		Length:  binary.BigEndian.Uint16(b[2:]),
		XID:     binary.BigEndian.Uint32(b[4:]),
	}
	if h.Length < HeaderLen {
		return Header{}, fmt.Errorf("ofwire: header length %d < %d", h.Length, HeaderLen)
	}
	return h, nil
}

// message assembles header+body, fixing up the length.
func message(typ uint8, xid uint32, body []byte) []byte {
	out := make([]byte, HeaderLen+len(body))
	Header{Version: Version, Type: typ, Length: uint16(HeaderLen + len(body)), XID: xid}.marshal(out)
	copy(out[HeaderLen:], body)
	return out
}

// Hello returns an OFPT_HELLO.
func Hello(xid uint32) []byte { return message(TypeHello, xid, nil) }

// EchoRequest returns an OFPT_ECHO_REQUEST carrying payload.
func EchoRequest(xid uint32, payload []byte) []byte {
	return message(TypeEchoRequest, xid, payload)
}

// EchoReply returns the matching OFPT_ECHO_REPLY.
func EchoReply(xid uint32, payload []byte) []byte {
	return message(TypeEchoReply, xid, payload)
}

// FeaturesRequest returns an OFPT_FEATURES_REQUEST.
func FeaturesRequest(xid uint32) []byte { return message(TypeFeaturesRequest, xid, nil) }

// Features is the decoded OFPT_FEATURES_REPLY body.
type Features struct {
	DatapathID uint64
	NumBuffers uint32
	NumTables  uint8
}

// FeaturesReply encodes an OFPT_FEATURES_REPLY.
func FeaturesReply(xid uint32, f Features) []byte {
	body := make([]byte, 24)
	binary.BigEndian.PutUint64(body[0:], f.DatapathID)
	binary.BigEndian.PutUint32(body[8:], f.NumBuffers)
	body[12] = f.NumTables
	return message(TypeFeaturesReply, xid, body)
}

// ParseFeaturesReply decodes a features-reply body.
func ParseFeaturesReply(body []byte) (Features, error) {
	if len(body) < 24 {
		return Features{}, fmt.Errorf("ofwire: short features reply (%d)", len(body))
	}
	return Features{
		DatapathID: binary.BigEndian.Uint64(body[0:]),
		NumBuffers: binary.BigEndian.Uint32(body[8:]),
		NumTables:  body[12],
	}, nil
}

// BarrierRequest returns an OFPT_BARRIER_REQUEST.
func BarrierRequest(xid uint32) []byte { return message(TypeBarrierRequest, xid, nil) }

// BarrierReply returns an OFPT_BARRIER_REPLY.
func BarrierReply(xid uint32) []byte { return message(TypeBarrierReply, xid, nil) }

// PortStatus is a decoded OFPT_PORT_STATUS: the switch tells the
// controller that a port's liveness changed.
type PortStatus struct {
	Port int
	Up   bool
}

// MarshalPortStatus encodes an OFPT_PORT_STATUS (reason MODIFY, with the
// subset of ofp_port this implementation models: port_no and the
// OFPPS_LINK_DOWN state bit).
func MarshalPortStatus(xid uint32, ps PortStatus) []byte {
	body := make([]byte, 8+16)
	body[0] = 2 // OFPPR_MODIFY
	binary.BigEndian.PutUint32(body[8:], uint32(ps.Port))
	state := uint32(0)
	if !ps.Up {
		state = 1 // OFPPS_LINK_DOWN
	}
	binary.BigEndian.PutUint32(body[20:], state)
	return message(TypePortStatus, xid, body)
}

// ParsePortStatus decodes a port-status body.
func ParsePortStatus(body []byte) (PortStatus, error) {
	if len(body) < 24 {
		return PortStatus{}, fmt.Errorf("ofwire: short port-status (%d bytes)", len(body))
	}
	return PortStatus{
		Port: int(binary.BigEndian.Uint32(body[8:])),
		Up:   binary.BigEndian.Uint32(body[20:])&1 == 0,
	}, nil
}

// Error encodes an OFPT_ERROR with type/code and optional data.
func Error(xid uint32, errType, errCode uint16, data []byte) []byte {
	body := make([]byte, 4+len(data))
	binary.BigEndian.PutUint16(body[0:], errType)
	binary.BigEndian.PutUint16(body[2:], errCode)
	copy(body[4:], data)
	return message(TypeError, xid, body)
}

// ---------------------------------------------------------------------------
// Port number mapping
// ---------------------------------------------------------------------------

func portToWire(p int) uint32 {
	switch p {
	case openflow.PortController:
		return ofppController
	case openflow.PortSelf:
		return ofppLocal
	case openflow.PortInPort:
		return ofppInPort
	case openflow.PortDrop:
		return ofppAny // no standard drop port; OFPP_ANY is never forwarded
	default:
		return uint32(p)
	}
}

func portFromWire(p uint32) int {
	switch p {
	case ofppController:
		return openflow.PortController
	case ofppLocal:
		return openflow.PortSelf
	case ofppInPort:
		return openflow.PortInPort
	case ofppAny:
		return openflow.PortDrop
	default:
		return int(p)
	}
}

func pad8(n int) int { return (n + 7) &^ 7 }
