package ofwire

import "fmt"

// TypeBatch is a batched installation message: its body is a concatenation
// of complete, individually framed flow-mod/group-mod messages that the
// switch applies in order. It plays the role of OpenFlow 1.4's bundle
// (OFPT_BUNDLE_ADD_MESSAGE, type 34) collapsed into a single message —
// the whole point is to pay one control-channel message per switch per
// program instead of one per rule.
const TypeBatch = 34

// MaxBatchBody caps a batch message's body size. The ofp_header length
// field is a uint16, so a single message can never exceed 65535 bytes;
// staying well under leaves room and keeps any one write bounded. Programs
// larger than this are split into several batch messages.
const MaxBatchBody = 32 * 1024

// MarshalBatches frames the given sub-messages (each already a complete
// header+body message) into as few batch messages as possible, splitting
// whenever MaxBatchBody would be exceeded. nextXID is called once per
// produced batch. A sub-message larger than MaxBatchBody gets a batch of
// its own (sub-messages are flow/group mods, far below the cap in
// practice).
func MarshalBatches(nextXID func() uint32, subs [][]byte) [][]byte {
	var out [][]byte
	var cur []byte
	flush := func() {
		if len(cur) > 0 {
			out = append(out, message(TypeBatch, nextXID(), cur))
			cur = nil
		}
	}
	for _, sub := range subs {
		if len(cur) > 0 && len(cur)+len(sub) > MaxBatchBody {
			flush()
		}
		cur = append(cur, sub...)
	}
	flush()
	return out
}

// ParseBatch splits a batch body back into its framed sub-messages. Each
// returned slice is one complete message (header included).
func ParseBatch(body []byte) ([][]byte, error) {
	var subs [][]byte
	for off := 0; off < len(body); {
		h, err := ParseHeader(body[off:])
		if err != nil {
			return nil, fmt.Errorf("ofwire: batch sub-message at offset %d: %w", off, err)
		}
		end := off + int(h.Length)
		if end > len(body) {
			return nil, fmt.Errorf("ofwire: batch sub-message at offset %d truncated (%d > %d)", off, end, len(body))
		}
		subs = append(subs, body[off:end])
		off = end
	}
	return subs, nil
}
