package ofwire

import (
	"encoding/binary"
	"fmt"

	"smartsouth/internal/openflow"
)

// MarshalPacket encodes a model packet as frame bytes for the data field
// of packet-out/packet-in messages. The frame layout is:
//
//	ethType(2) ttl(1) tagLen(2) tag... labelCount(2) labels(4 each)...
//	payloadLen(2) payload...
//
// Real SmartSouth frames would be an Ethernet header, an MPLS label stack
// and the tag bytes; this flat layout carries the same information and
// keeps Size() accounting consistent.
func MarshalPacket(p *openflow.Packet) []byte {
	out := make([]byte, 0, 9+len(p.Tag)+4*len(p.Labels)+len(p.Payload))
	var b2 [2]byte
	binary.BigEndian.PutUint16(b2[:], p.EthType)
	out = append(out, b2[:]...)
	out = append(out, p.TTL)
	binary.BigEndian.PutUint16(b2[:], uint16(len(p.Tag)))
	out = append(out, b2[:]...)
	out = append(out, p.Tag...)
	binary.BigEndian.PutUint16(b2[:], uint16(len(p.Labels)))
	out = append(out, b2[:]...)
	for _, l := range p.Labels {
		var b4 [4]byte
		binary.BigEndian.PutUint32(b4[:], l)
		out = append(out, b4[:]...)
	}
	binary.BigEndian.PutUint16(b2[:], uint16(len(p.Payload)))
	out = append(out, b2[:]...)
	out = append(out, p.Payload...)
	return out
}

// UnmarshalPacket decodes a frame produced by MarshalPacket.
func UnmarshalPacket(b []byte) (*openflow.Packet, error) {
	if len(b) < 7 {
		return nil, fmt.Errorf("ofwire: short packet frame (%d bytes)", len(b))
	}
	p := &openflow.Packet{}
	p.EthType = binary.BigEndian.Uint16(b[0:])
	p.TTL = b[2]
	tagLen := int(binary.BigEndian.Uint16(b[3:]))
	b = b[5:]
	if len(b) < tagLen+2 {
		return nil, fmt.Errorf("ofwire: truncated tag")
	}
	p.Tag = append([]byte(nil), b[:tagLen]...)
	b = b[tagLen:]
	nLabels := int(binary.BigEndian.Uint16(b[0:]))
	b = b[2:]
	if len(b) < 4*nLabels+2 {
		return nil, fmt.Errorf("ofwire: truncated labels")
	}
	for i := 0; i < nLabels; i++ {
		p.Labels = append(p.Labels, binary.BigEndian.Uint32(b[4*i:]))
	}
	b = b[4*nLabels:]
	payLen := int(binary.BigEndian.Uint16(b[0:]))
	b = b[2:]
	if len(b) < payLen {
		return nil, fmt.Errorf("ofwire: truncated payload")
	}
	if payLen > 0 {
		p.Payload = append([]byte(nil), b[:payLen]...)
	}
	return p, nil
}

// PacketOut is a decoded OFPT_PACKET_OUT.
type PacketOut struct {
	InPort  int
	Actions []openflow.Action
	Pkt     *openflow.Packet
}

// MarshalPacketOut encodes an OFPT_PACKET_OUT carrying the packet and an
// action list (empty actions mean "run the pipeline from table 0", which
// this implementation models with a special TABLE output action).
func MarshalPacketOut(xid uint32, po PacketOut) ([]byte, error) {
	acts, err := encodeActions(po.Actions)
	if err != nil {
		return nil, err
	}
	body := make([]byte, 16)
	binary.BigEndian.PutUint32(body[0:], ofpNoBuffer)
	binary.BigEndian.PutUint32(body[4:], portToWire(po.InPort))
	binary.BigEndian.PutUint16(body[8:], uint16(len(acts)))
	body = append(body, acts...)
	body = append(body, MarshalPacket(po.Pkt)...)
	return message(TypePacketOut, xid, body), nil
}

// ParsePacketOut decodes a packet-out body.
func ParsePacketOut(body []byte) (PacketOut, error) {
	if len(body) < 16 {
		return PacketOut{}, fmt.Errorf("ofwire: short packet-out")
	}
	po := PacketOut{InPort: portFromWire(binary.BigEndian.Uint32(body[4:]))}
	alen := int(binary.BigEndian.Uint16(body[8:]))
	if len(body) < 16+alen {
		return PacketOut{}, fmt.Errorf("ofwire: truncated packet-out actions")
	}
	acts, err := parseActions(body[16 : 16+alen])
	if err != nil {
		return PacketOut{}, err
	}
	po.Actions = acts
	pkt, err := UnmarshalPacket(body[16+alen:])
	if err != nil {
		return PacketOut{}, err
	}
	po.Pkt = pkt
	return po, nil
}

// PacketIn is a decoded OFPT_PACKET_IN.
type PacketIn struct {
	InPort int
	Pkt    *openflow.Packet
}

// MarshalPacketIn encodes an OFPT_PACKET_IN (reason OFPR_ACTION) with the
// ingress port in the OXM match, per the 1.3 spec.
func MarshalPacketIn(xid uint32, pi PacketIn) []byte {
	data := MarshalPacket(pi.Pkt)
	body := make([]byte, 16)
	binary.BigEndian.PutUint32(body[0:], ofpNoBuffer)
	binary.BigEndian.PutUint16(body[4:], uint16(len(data)))
	body[6] = 1 // OFPR_ACTION
	m := openflow.MatchAll()
	if pi.InPort != openflow.PortController {
		m.InPort = pi.InPort
	}
	body = appendMatch(body, m)
	body = append(body, 0, 0) // pad
	body = append(body, data...)
	return message(TypePacketIn, xid, body)
}

// ParsePacketIn decodes a packet-in body.
func ParsePacketIn(body []byte) (PacketIn, error) {
	if len(body) < 16 {
		return PacketIn{}, fmt.Errorf("ofwire: short packet-in")
	}
	m, consumed, err := parseMatch(body[16:])
	if err != nil {
		return PacketIn{}, err
	}
	rest := body[16+consumed:]
	if len(rest) < 2 {
		return PacketIn{}, fmt.Errorf("ofwire: truncated packet-in pad")
	}
	pkt, err := UnmarshalPacket(rest[2:])
	if err != nil {
		return PacketIn{}, err
	}
	in := openflow.PortController
	if m.InPort != openflow.AnyPort {
		in = m.InPort
	}
	pkt.InPort = in
	return PacketIn{InPort: in, Pkt: pkt}, nil
}
