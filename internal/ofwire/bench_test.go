package ofwire

import (
	"testing"

	"smartsouth/internal/openflow"
)

func benchEntry() *openflow.FlowEntry {
	f1 := openflow.Field{Off: 2, Bits: 11}
	f2 := openflow.Field{Off: 13, Bits: 4}
	return &openflow.FlowEntry{
		Priority: 7000,
		Match:    openflow.MatchEth(0x8802).WithInPort(3).WithField(f1, 99).WithField(f2, 3),
		Actions: []openflow.Action{
			openflow.PushLabel{Value: 0x1234},
			openflow.SetField{F: f1, Value: 5},
			openflow.Group{ID: 42},
		},
		Goto:   2,
		Cookie: "bench/rule",
	}
}

func BenchmarkMarshalFlowMod(b *testing.B) {
	e := benchEntry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalFlowMod(uint32(i), 1, e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseFlowMod(b *testing.B) {
	msg, _ := MarshalFlowMod(1, 1, benchEntry())
	body := msg[HeaderLen:]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseFlowMod(body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketCodec(b *testing.B) {
	pkt := openflow.NewPacket(0x8802, 64)
	for i := 0; i < 32; i++ {
		pkt.PushLabel(uint32(i))
	}
	pkt.Payload = make([]byte, 256)
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MarshalPacket(pkt)
		}
	})
	data := MarshalPacket(pkt)
	b.Run("unmarshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := UnmarshalPacket(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}
