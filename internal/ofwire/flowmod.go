package ofwire

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"smartsouth/internal/openflow"
)

// Instruction type codes.
const (
	instrGotoTable    = 1
	instrApplyActions = 4
)

// FlowMod couples a decoded flow-mod's table with its entry.
type FlowMod struct {
	Table int
	Entry *openflow.FlowEntry
}

// CookieHash maps the human-readable cookie string to its numeric wire
// form (FNV-64a). Entries decoded from the wire carry synthetic
// "wire-%016x" cookies embedding the original number; CookieHash
// recovers it, so stats report the same cookie whether the entry was
// installed locally or over the wire.
func CookieHash(cookie string) uint64 {
	var v uint64
	if n, err := fmt.Sscanf(cookie, "wire-%016x", &v); n == 1 && err == nil {
		return v
	}
	h := fnv.New64a()
	h.Write([]byte(cookie))
	return h.Sum64()
}

// MarshalFlowMod encodes an OFPT_FLOW_MOD (command ADD) installing e into
// the given table. The human-readable cookie string travels as its FNV-64
// hash (the wire cookie is numeric); decoded entries carry a synthetic
// cookie.
func MarshalFlowMod(xid uint32, table int, e *openflow.FlowEntry) ([]byte, error) {
	body := make([]byte, 40)
	binary.BigEndian.PutUint64(body[0:], CookieHash(e.Cookie)) // cookie
	// cookie_mask zero.
	body[16] = uint8(table)
	body[17] = 0 // OFPFC_ADD
	binary.BigEndian.PutUint16(body[22:], uint16(e.Priority))
	binary.BigEndian.PutUint32(body[24:], ofpNoBuffer)
	binary.BigEndian.PutUint32(body[28:], ofppAny) // out_port
	binary.BigEndian.PutUint32(body[32:], ofppAny) // out_group

	body = appendMatch(body, e.Match)

	// Instructions: apply-actions (if any) + goto-table (if any).
	if len(e.Actions) > 0 {
		acts, err := encodeActions(e.Actions)
		if err != nil {
			return nil, err
		}
		ih := make([]byte, 8)
		binary.BigEndian.PutUint16(ih[0:], instrApplyActions)
		binary.BigEndian.PutUint16(ih[2:], uint16(8+len(acts)))
		body = append(body, ih...)
		body = append(body, acts...)
	}
	if e.Goto != openflow.NoGoto {
		ih := make([]byte, 8)
		binary.BigEndian.PutUint16(ih[0:], instrGotoTable)
		binary.BigEndian.PutUint16(ih[2:], 8)
		ih[4] = uint8(e.Goto)
		body = append(body, ih...)
	}
	return message(TypeFlowMod, xid, body), nil
}

// ParseFlowMod decodes a flow-mod body (the bytes after the header).
func ParseFlowMod(body []byte) (FlowMod, error) {
	if len(body) < 40 {
		return FlowMod{}, fmt.Errorf("ofwire: short flow-mod (%d bytes)", len(body))
	}
	cookie := binary.BigEndian.Uint64(body[0:])
	table := int(body[16])
	if cmd := body[17]; cmd != 0 {
		return FlowMod{}, fmt.Errorf("ofwire: unsupported flow-mod command %d", cmd)
	}
	e := &openflow.FlowEntry{
		Priority: int(binary.BigEndian.Uint16(body[22:])),
		Goto:     openflow.NoGoto,
		Cookie:   fmt.Sprintf("wire-%016x", cookie),
	}
	rest := body[40:]
	m, consumed, err := parseMatch(rest)
	if err != nil {
		return FlowMod{}, err
	}
	e.Match = m
	rest = rest[consumed:]
	for len(rest) > 0 {
		if len(rest) < 8 {
			return FlowMod{}, fmt.Errorf("ofwire: truncated instruction")
		}
		typ := binary.BigEndian.Uint16(rest[0:])
		ilen := int(binary.BigEndian.Uint16(rest[2:]))
		if ilen < 8 || ilen > len(rest) {
			return FlowMod{}, fmt.Errorf("ofwire: instruction length %d out of range", ilen)
		}
		switch typ {
		case instrGotoTable:
			e.Goto = int(rest[4])
		case instrApplyActions:
			acts, err := parseActions(rest[8:ilen])
			if err != nil {
				return FlowMod{}, err
			}
			e.Actions = acts
		default:
			return FlowMod{}, fmt.Errorf("ofwire: unsupported instruction %d", typ)
		}
		rest = rest[ilen:]
	}
	return FlowMod{Table: table, Entry: e}, nil
}

// MarshalGroupMod encodes an OFPT_GROUP_MOD (command ADD).
func MarshalGroupMod(xid uint32, g *openflow.GroupEntry) ([]byte, error) {
	body := make([]byte, 8)
	// command(2)=ADD, type(1), pad(1), group_id(4)
	var gtype uint8
	switch g.Type {
	case openflow.GroupAll:
		gtype = 0
	case openflow.GroupSelectRR:
		gtype = 1 // OFPGT_SELECT with round-robin policy
	case openflow.GroupIndirect:
		gtype = 2
	case openflow.GroupFF:
		gtype = 3
	default:
		return nil, fmt.Errorf("ofwire: unsupported group type %v", g.Type)
	}
	body[2] = gtype
	binary.BigEndian.PutUint32(body[4:], g.ID)
	for _, b := range g.Buckets {
		acts, err := encodeActions(b.Actions)
		if err != nil {
			return nil, err
		}
		bk := make([]byte, 16)
		binary.BigEndian.PutUint16(bk[0:], uint16(16+len(acts)))
		binary.BigEndian.PutUint16(bk[2:], 1) // weight
		watch := uint32(ofppAny)
		if b.WatchPort != openflow.WatchNone {
			watch = uint32(b.WatchPort)
		}
		binary.BigEndian.PutUint32(bk[4:], watch)
		binary.BigEndian.PutUint32(bk[8:], ofppAny) // watch_group
		body = append(body, bk...)
		body = append(body, acts...)
	}
	return message(TypeGroupMod, xid, body), nil
}

// ParseGroupMod decodes a group-mod body.
func ParseGroupMod(body []byte) (*openflow.GroupEntry, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("ofwire: short group-mod")
	}
	if cmd := binary.BigEndian.Uint16(body[0:]); cmd != 0 {
		return nil, fmt.Errorf("ofwire: unsupported group-mod command %d", cmd)
	}
	g := &openflow.GroupEntry{ID: binary.BigEndian.Uint32(body[4:])}
	switch body[2] {
	case 0:
		g.Type = openflow.GroupAll
	case 1:
		g.Type = openflow.GroupSelectRR
	case 2:
		g.Type = openflow.GroupIndirect
	case 3:
		g.Type = openflow.GroupFF
	default:
		return nil, fmt.Errorf("ofwire: unknown group type %d", body[2])
	}
	rest := body[8:]
	for len(rest) > 0 {
		if len(rest) < 16 {
			return nil, fmt.Errorf("ofwire: truncated bucket")
		}
		blen := int(binary.BigEndian.Uint16(rest[0:]))
		if blen < 16 || blen > len(rest) {
			return nil, fmt.Errorf("ofwire: bucket length %d out of range", blen)
		}
		watch := binary.BigEndian.Uint32(rest[4:])
		bk := openflow.Bucket{WatchPort: openflow.WatchNone}
		if watch != ofppAny {
			bk.WatchPort = int(watch)
		}
		acts, err := parseActions(rest[16:blen])
		if err != nil {
			return nil, err
		}
		bk.Actions = acts
		g.Buckets = append(g.Buckets, bk)
		rest = rest[blen:]
	}
	return g, nil
}
