package ofwire

import (
	"encoding/binary"
	"fmt"

	"smartsouth/internal/openflow"
)

// OXM classes and basic-class field codes used here.
const (
	oxmClassBasic        = 0x8000
	oxmClassExperimenter = 0xFFFF

	oxmbInPort    = 0  // 4 bytes
	oxmbEthType   = 5  // 2 bytes
	oxmbMplsLabel = 34 // 4 bytes (20 significant bits)

	// Experimenter field codes (private to this implementation).
	expTagField = 1 // bit-addressed tag field match
	expTTL      = 2 // exact TTL match

	// experimenterID identifies the SmartSouth experimenter space.
	experimenterID = 0x5353534F // "SSSO"
)

// oxmHeader packs class/field/hasmask/length.
func oxmHeader(b []byte, class uint16, field uint8, hasMask bool, payloadLen int) {
	binary.BigEndian.PutUint16(b[0:], class)
	fb := field << 1
	if hasMask {
		fb |= 1
	}
	b[2] = fb
	b[3] = uint8(payloadLen)
}

// appendMatch encodes an ofp_match (type OXM) with padding to 8 bytes.
func appendMatch(out []byte, m openflow.Match) []byte {
	var oxms []byte
	if m.InPort != openflow.AnyPort {
		f := make([]byte, 4+4)
		oxmHeader(f, oxmClassBasic, oxmbInPort, false, 4)
		binary.BigEndian.PutUint32(f[4:], portToWire(m.InPort))
		oxms = append(oxms, f...)
	}
	if m.EthType != openflow.AnyEthType {
		f := make([]byte, 4+2)
		oxmHeader(f, oxmClassBasic, oxmbEthType, false, 2)
		binary.BigEndian.PutUint16(f[4:], uint16(m.EthType))
		oxms = append(oxms, f...)
	}
	if m.TTL != openflow.AnyTTL {
		// Experimenter: expID(4) + ttl(1).
		f := make([]byte, 4+4+1)
		oxmHeader(f, oxmClassExperimenter, expTTL, false, 5)
		binary.BigEndian.PutUint32(f[4:], experimenterID)
		f[8] = uint8(m.TTL)
		oxms = append(oxms, f...)
	}
	for _, fm := range m.Fields {
		oxms = append(oxms, encodeTagOXM(fm)...)
	}

	// ofp_match header: type(2)=1, length(2) covers header+oxms, then pad.
	mlen := 4 + len(oxms)
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint16(hdr[0:], 1) // OFPMT_OXM
	binary.BigEndian.PutUint16(hdr[2:], uint16(mlen))
	out = append(out, hdr...)
	out = append(out, oxms...)
	for i := mlen; i < pad8(mlen); i++ {
		out = append(out, 0)
	}
	return out
}

// encodeTagOXM encodes a tag-field match as an experimenter OXM:
// expID(4) off(2) bits(2) value(8) [mask(8)].
func encodeTagOXM(fm openflow.FieldMatch) []byte {
	hasMask := fm.Mask != 0 && fm.Mask != fm.F.Max()
	plen := 4 + 2 + 2 + 8
	if hasMask {
		plen += 8
	}
	f := make([]byte, 4+plen)
	oxmHeader(f, oxmClassExperimenter, expTagField, hasMask, plen)
	binary.BigEndian.PutUint32(f[4:], experimenterID)
	binary.BigEndian.PutUint16(f[8:], uint16(fm.F.Off))
	binary.BigEndian.PutUint16(f[10:], uint16(fm.F.Bits))
	binary.BigEndian.PutUint64(f[12:], fm.Value)
	if hasMask {
		binary.BigEndian.PutUint64(f[20:], fm.Mask)
	}
	return f
}

// parseMatch decodes an ofp_match, returning the match and the total
// consumed length (including padding).
func parseMatch(b []byte) (openflow.Match, int, error) {
	m := openflow.MatchAll()
	if len(b) < 4 {
		return m, 0, fmt.Errorf("ofwire: short match")
	}
	if typ := binary.BigEndian.Uint16(b[0:]); typ != 1 {
		return m, 0, fmt.Errorf("ofwire: unsupported match type %d", typ)
	}
	mlen := int(binary.BigEndian.Uint16(b[2:]))
	if mlen < 4 || pad8(mlen) > len(b) {
		return m, 0, fmt.Errorf("ofwire: match length %d out of range", mlen)
	}
	oxms := b[4:mlen]
	for len(oxms) > 0 {
		if len(oxms) < 4 {
			return m, 0, fmt.Errorf("ofwire: truncated OXM header")
		}
		class := binary.BigEndian.Uint16(oxms[0:])
		field := oxms[2] >> 1
		hasMask := oxms[2]&1 == 1
		plen := int(oxms[3])
		if len(oxms) < 4+plen {
			return m, 0, fmt.Errorf("ofwire: truncated OXM payload")
		}
		payload := oxms[4 : 4+plen]
		switch {
		case class == oxmClassBasic && field == oxmbInPort:
			if plen != 4 {
				return m, 0, fmt.Errorf("ofwire: bad in_port OXM length %d", plen)
			}
			m.InPort = portFromWire(binary.BigEndian.Uint32(payload))
		case class == oxmClassBasic && field == oxmbEthType:
			if plen != 2 {
				return m, 0, fmt.Errorf("ofwire: bad eth_type OXM length %d", plen)
			}
			m.EthType = int(binary.BigEndian.Uint16(payload))
		case class == oxmClassExperimenter && field == expTTL:
			if plen != 5 || binary.BigEndian.Uint32(payload) != experimenterID {
				return m, 0, fmt.Errorf("ofwire: bad TTL OXM")
			}
			m.TTL = int(payload[4])
		case class == oxmClassExperimenter && field == expTagField:
			want := 16
			if hasMask {
				want += 8
			}
			if plen != want || binary.BigEndian.Uint32(payload) != experimenterID {
				return m, 0, fmt.Errorf("ofwire: bad tag OXM (len %d)", plen)
			}
			fm := openflow.FieldMatch{
				F: openflow.Field{
					Off:  int(binary.BigEndian.Uint16(payload[4:])),
					Bits: int(binary.BigEndian.Uint16(payload[6:])),
				},
				Value: binary.BigEndian.Uint64(payload[8:]),
			}
			if hasMask {
				fm.Mask = binary.BigEndian.Uint64(payload[16:])
			}
			m.Fields = append(m.Fields, fm)
		default:
			return m, 0, fmt.Errorf("ofwire: unsupported OXM class %#x field %d", class, field)
		}
		oxms = oxms[4+plen:]
	}
	return m, pad8(mlen), nil
}
