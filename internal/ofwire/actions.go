package ofwire

import (
	"encoding/binary"
	"fmt"

	"smartsouth/internal/openflow"
)

// Action type codes (ofp_action_type).
const (
	actOutput   = 0
	actPushMPLS = 19
	actPopMPLS  = 20
	actDecNwTTL = 24
	actGroup    = 22
	actSetField = 25
	etherMPLS   = 0x8847
)

// encodeActions serialises an action list. PushLabel expands to
// PUSH_MPLS + SET_FIELD(mpls_label), the idiom real pipelines use.
func encodeActions(acts []openflow.Action) ([]byte, error) {
	var out []byte
	for _, a := range acts {
		switch act := a.(type) {
		case openflow.Output:
			b := make([]byte, 16)
			binary.BigEndian.PutUint16(b[0:], actOutput)
			binary.BigEndian.PutUint16(b[2:], 16)
			binary.BigEndian.PutUint32(b[4:], portToWire(act.Port))
			binary.BigEndian.PutUint16(b[8:], noBuffer)
			out = append(out, b...)
		case openflow.Group:
			b := make([]byte, 8)
			binary.BigEndian.PutUint16(b[0:], actGroup)
			binary.BigEndian.PutUint16(b[2:], 8)
			binary.BigEndian.PutUint32(b[4:], act.ID)
			out = append(out, b...)
		case openflow.DecTTL:
			b := make([]byte, 8)
			binary.BigEndian.PutUint16(b[0:], actDecNwTTL)
			binary.BigEndian.PutUint16(b[2:], 8)
			out = append(out, b...)
		case openflow.PopLabel:
			b := make([]byte, 8)
			binary.BigEndian.PutUint16(b[0:], actPopMPLS)
			binary.BigEndian.PutUint16(b[2:], 8)
			binary.BigEndian.PutUint16(b[4:], etherMPLS)
			out = append(out, b...)
		case openflow.PushLabel:
			b := make([]byte, 8)
			binary.BigEndian.PutUint16(b[0:], actPushMPLS)
			binary.BigEndian.PutUint16(b[2:], 8)
			binary.BigEndian.PutUint16(b[4:], etherMPLS)
			out = append(out, b...)
			out = append(out, encodeSetMPLSLabel(act.Value)...)
		case openflow.SetField:
			oxm := encodeTagOXM(openflow.FieldMatch{F: act.F, Value: act.Value})
			total := pad8(4 + len(oxm))
			b := make([]byte, total)
			binary.BigEndian.PutUint16(b[0:], actSetField)
			binary.BigEndian.PutUint16(b[2:], uint16(total))
			copy(b[4:], oxm)
			out = append(out, b...)
		default:
			return nil, fmt.Errorf("ofwire: unsupported action %T", a)
		}
	}
	return out, nil
}

func encodeSetMPLSLabel(v uint32) []byte {
	oxm := make([]byte, 4+4)
	oxmHeader(oxm, oxmClassBasic, oxmbMplsLabel, false, 4)
	binary.BigEndian.PutUint32(oxm[4:], v)
	total := pad8(4 + len(oxm))
	b := make([]byte, total)
	binary.BigEndian.PutUint16(b[0:], actSetField)
	binary.BigEndian.PutUint16(b[2:], uint16(total))
	copy(b[4:], oxm)
	return b
}

// parseActions decodes an action list of exactly blen bytes.
func parseActions(b []byte) ([]openflow.Action, error) {
	var acts []openflow.Action
	pendingPush := false
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("ofwire: truncated action header")
		}
		typ := binary.BigEndian.Uint16(b[0:])
		alen := int(binary.BigEndian.Uint16(b[2:]))
		if alen < 8 || alen > len(b) {
			return nil, fmt.Errorf("ofwire: action length %d out of range", alen)
		}
		body := b[4:alen]
		switch typ {
		case actOutput:
			if len(body) < 8 {
				return nil, fmt.Errorf("ofwire: short output action")
			}
			acts = append(acts, openflow.Output{Port: portFromWire(binary.BigEndian.Uint32(body))})
		case actGroup:
			acts = append(acts, openflow.Group{ID: binary.BigEndian.Uint32(body)})
		case actDecNwTTL:
			acts = append(acts, openflow.DecTTL{})
		case actPopMPLS:
			acts = append(acts, openflow.PopLabel{})
		case actPushMPLS:
			if pendingPush {
				// Two pushes in a row: the first had no label set-field;
				// materialise it with label 0.
				acts = append(acts, openflow.PushLabel{Value: 0})
			}
			pendingPush = true
		case actSetField:
			class := binary.BigEndian.Uint16(body[0:])
			field := body[2] >> 1
			plen := int(body[3])
			if len(body) < 4+plen {
				return nil, fmt.Errorf("ofwire: truncated set-field OXM")
			}
			payload := body[4 : 4+plen]
			switch {
			case class == oxmClassBasic && field == oxmbMplsLabel:
				if !pendingPush {
					return nil, fmt.Errorf("ofwire: set mpls_label without push_mpls")
				}
				if plen != 4 {
					return nil, fmt.Errorf("ofwire: bad mpls_label length %d", plen)
				}
				acts = append(acts, openflow.PushLabel{Value: binary.BigEndian.Uint32(payload)})
				pendingPush = false
			case class == oxmClassExperimenter && field == expTagField:
				if pendingPush {
					return nil, fmt.Errorf("ofwire: push_mpls not followed by label set-field")
				}
				if plen != 16 || binary.BigEndian.Uint32(payload) != experimenterID {
					return nil, fmt.Errorf("ofwire: bad tag set-field")
				}
				acts = append(acts, openflow.SetField{
					F: openflow.Field{
						Off:  int(binary.BigEndian.Uint16(payload[4:])),
						Bits: int(binary.BigEndian.Uint16(payload[6:])),
					},
					Value: binary.BigEndian.Uint64(payload[8:]),
				})
			default:
				return nil, fmt.Errorf("ofwire: unsupported set-field class %#x field %d", class, field)
			}
		default:
			return nil, fmt.Errorf("ofwire: unsupported action type %d", typ)
		}
		if typ != actPushMPLS && typ != actSetField && pendingPush {
			return nil, fmt.Errorf("ofwire: push_mpls not followed by label set-field")
		}
		b = b[alen:]
	}
	if pendingPush {
		acts = append(acts, openflow.PushLabel{Value: 0})
	}
	return acts, nil
}
