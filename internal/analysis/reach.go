package analysis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"smartsouth/internal/openflow"
	"smartsouth/internal/verify"
)

// reach computes symbolic reachability network-wide. Seeds model every
// way a packet enters the fabric: for each switch with dispatch rules,
// one seed per dispatched EtherType injected as the controller would
// (zeroed tag, TTL 255, in-port = controller). EtherTypes listed in
// Options.HostEthTypes are additionally seeded with an unconstrained
// (Top) tag, modelling host-originated traffic. The walk follows
// emissions across topology links; a revisit of a (switch, in-port,
// state) node on the current path is a forwarding loop, and a state
// with no matching rule (or dropped mid-service without having been
// emitted) is a blackhole.
func (a *analyzer) reach() {
	host := make(map[uint16]bool, len(a.opts.HostEthTypes))
	for _, et := range a.opts.HostEthTypes {
		host[et] = true
	}
	for _, id := range a.switchIDs() {
		cs := a.switches[id]
		for _, et := range dispatchEthTypes(cs) {
			a.explore(id, newSymPacket(et, openflow.PortController, false), nil)
			if host[et] {
				a.explore(id, newSymPacket(et, openflow.PortController, true), nil)
			}
		}
	}
}

// dispatchEthTypes collects the EtherTypes a composed switch
// demultiplexes in table 0, in rule order.
func dispatchEthTypes(cs *compSwitch) []uint16 {
	seen := map[uint16]bool{}
	var out []uint16
	for _, r := range cs.tables[0] {
		if r.entry.Match.EthType == openflow.AnyEthType {
			continue
		}
		et := uint16(r.entry.Match.EthType)
		if !seen[et] {
			seen[et] = true
			out = append(out, et)
		}
	}
	return out
}

const (
	colorGray  int8 = 1
	colorBlack int8 = 2
)

// explore walks the transition graph depth-first from one (switch,
// state) node. A node is a full configuration: the packet class plus the
// state store of every state table the walk has written — for a stateful
// backend the discriminating DFS state lives in the switches, and keying
// on the packet alone would report every bounce transition as a loop.
// The pipeline is deterministic in the configuration, so finished nodes
// are memoized globally; nodes on the current path are marked gray, and
// reaching a gray node means the fabric forwards this packet class
// forever.
func (a *analyzer) explore(sw int, σ *symPacket, st stateStore) {
	key := "s" + strconv.Itoa(sw) + "|" + σ.key() + st.digest()
	switch a.color[key] {
	case colorGray:
		a.reportLoop(sw, σ, key)
		return
	case colorBlack:
		return
	}
	a.states++
	if a.states > a.opts.maxStates() {
		if !a.budgetHit {
			a.budgetHit = true
			a.add(Finding{
				Kind: KindBudget, Severity: verify.Warn, Switch: -1, Table: -1, Slot: -1,
				Detail: fmt.Sprintf("state budget %d exhausted: reachability verdicts are incomplete", a.opts.maxStates()),
			})
		}
		a.color[key] = colorBlack
		return
	}
	a.color[key] = colorGray
	a.stack = append(a.stack, hop{key: key, sw: sw, in: σ.inPort})

	for _, end := range a.pipelineAt(sw, σ, st) {
		a.classifyEnd(sw, σ, end)
		for _, em := range end.emits {
			switch {
			case em.port == openflow.PortController, em.port == openflow.PortSelf:
				// Delivered out of the fabric: controller or local host.
			case em.port >= 1:
				v, vport, ok := a.g.Neighbor(sw, em.port)
				if !ok {
					svc, slot := a.owner(σ.eth)
					a.add(Finding{
						Kind: KindBlackhole, Severity: verify.Err,
						Service: svc, Slot: slot, Switch: sw, Table: -1,
						Detail: fmt.Sprintf("packet (%s) emitted on port %d, which has no link", em.pkt, em.port),
					})
					continue
				}
				// Each emission continues under the path's end-of-pipeline
				// store: the walk models one packet in flight at a time
				// (concurrent copies interleaving state commits are outside
				// the model; see docs/ANALYSIS.md).
				np := em.pkt.clone()
				np.inPort = vport
				a.explore(v, np, end.store)
			}
		}
	}

	a.stack = a.stack[:len(a.stack)-1]
	a.color[key] = colorBlack
}

// classifyEnd turns one pipeline outcome into blackhole findings.
func (a *analyzer) classifyEnd(sw int, σ *symPacket, end pathEnd) {
	svc, slot := a.owner(σ.eth)
	switch {
	case end.missTable == 0 && !end.matched:
		// No rule at all for this packet. For a forwarded packet that is
		// a silent drop mid-flight; a controller-injected seed always
		// matches its own dispatch rule, so in-port filters are the only
		// way to get here from a seed.
		if σ.inPort == openflow.PortController {
			return
		}
		a.add(Finding{
			Kind: KindBlackhole, Severity: verify.Err,
			Service: svc, Slot: slot, Switch: sw, Table: 0,
			Detail: fmt.Sprintf("forwarded packet (%s) matches no rule: silently dropped", σ),
		})
	case end.missTable > 0 && len(end.emits) == 0 && !end.dropped:
		// Entered the service pipeline, then fell off a goto chain
		// without emitting anything or explicitly dropping.
		a.add(Finding{
			Kind: KindBlackhole, Severity: verify.Err,
			Service: svc, Slot: slot, Switch: sw, Table: end.missTable,
			Detail: fmt.Sprintf("packet (%s) dropped mid-service: no matching rule in table %d and nothing emitted", σ, end.missTable),
		})
	}
	// A miss after an emission is the normal goto-to-finish pattern; an
	// explicit drop is intended behaviour. Neither is reported.
}

// reportLoop emits a loop finding describing the cycle from the current
// walk stack.
func (a *analyzer) reportLoop(sw int, σ *symPacket, key string) {
	svc, slot := a.owner(σ.eth)
	start := 0
	for i, h := range a.stack {
		if h.key == key {
			start = i
			break
		}
	}
	var cyc []string
	for _, h := range a.stack[start:] {
		cyc = append(cyc, fmt.Sprintf("sw%d[in%d]", h.sw, h.in))
	}
	cyc = append(cyc, fmt.Sprintf("sw%d[in%d]", sw, σ.inPort))
	a.add(Finding{
		Kind: KindLoop, Severity: verify.Err,
		Service: svc, Slot: slot, Switch: sw, Table: -1,
		Detail: fmt.Sprintf("forwarding loop: %s revisits state (%s)", strings.Join(cyc, " -> "), σ),
	})
}

// deadRules reports rules no reachable packet class hit, network-wide —
// flow rules and state-table transitions alike.
func (a *analyzer) deadRules() {
	for _, id := range a.switchIDs() {
		cs := a.switches[id]
		for _, t := range tableIDs(cs) {
			for _, r := range cs.tables[t] {
				if r.hit {
					continue
				}
				a.add(Finding{
					Kind: KindDeadRule, Severity: verify.Info,
					Service: r.prog.Service, Slot: r.prog.Slot,
					Switch: id, Table: t, Cookie: r.entry.Cookie,
					Detail: "no symbolically reachable packet hits this rule (expected for fault-recovery paths)",
				})
			}
		}
		for _, t := range stateTableIDs(cs) {
			for _, r := range cs.states[t].entries {
				if r.hit {
					continue
				}
				a.add(Finding{
					Kind: KindDeadRule, Severity: verify.Info,
					Service: r.prog.Service, Slot: r.prog.Slot,
					Switch: id, Table: t, Cookie: r.entry.Cookie,
					Detail: "no symbolically reachable packet fires this transition (expected for fault-recovery paths)",
				})
			}
		}
	}
}

func tableIDs(cs *compSwitch) []int {
	ids := make([]int, 0, len(cs.tables))
	for t := range cs.tables {
		ids = append(ids, t)
	}
	sort.Ints(ids)
	return ids
}

func stateTableIDs(cs *compSwitch) []int {
	ids := make([]int, 0, len(cs.states))
	for t := range cs.states {
		ids = append(ids, t)
	}
	sort.Ints(ids)
	return ids
}
