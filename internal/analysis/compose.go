package analysis

import (
	"fmt"
	"sort"
	"strings"

	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
	"smartsouth/internal/verify"
)

// compRule is one flow rule in the composed per-switch view, with the
// program it came from (its provenance) and a hit mark set by the
// reachability walk.
type compRule struct {
	prog  *openflow.Program
	table int
	entry *openflow.FlowEntry
	hit   bool
}

// compGroup is one group entry with its owning program.
type compGroup struct {
	prog *openflow.Program
	g    *openflow.GroupEntry
}

// compState is one state-table transition entry in the composed view,
// with provenance and a hit mark like compRule.
type compState struct {
	prog  *openflow.Program
	entry *openflow.StateEntry
	hit   bool
}

// compStateTable is the composed view of one stateful stage. A state
// table is owned by exactly one program (cross-program merges are a
// KindStateClash error), so prog is the owner and key its flow key.
type compStateTable struct {
	prog    *openflow.Program
	key     []openflow.Field
	entries []*compState // priority desc, program order on ties
}

// compSwitch is the composition of every program's share for one
// switch: what the switch's tables, state tables and group table would
// hold after all programs are installed.
type compSwitch struct {
	id       int
	numPorts int
	tables   map[int][]*compRule // priority desc, program order on ties
	states   map[int]*compStateTable
	groups   map[uint32]*compGroup
}

// analyzer holds the composed deployment and accumulates findings.
type analyzer struct {
	progs []*openflow.Program
	g     *topo.Graph
	opts  Options

	switches map[int]*compSwitch
	ethOwner map[uint16]*openflow.Program // dispatch EtherType -> first owning program

	findings []Finding

	// reachability walk state
	color     map[string]int8 // 0 unvisited, 1 on stack, 2 done
	stack     []hop
	states    int
	budgetHit bool
}

// hop is one frame of the reachability walk, for loop diagnostics.
type hop struct {
	key string
	sw  int
	in  int
}

func newAnalyzer(progs []*openflow.Program, g *topo.Graph, opts Options) *analyzer {
	a := &analyzer{
		progs:    progs,
		g:        g,
		opts:     opts,
		switches: make(map[int]*compSwitch),
		ethOwner: make(map[uint16]*openflow.Program),
		color:    make(map[string]int8),
	}
	a.compose()
	return a
}

// compose merges every program's per-switch share, detecting group-ID
// clashes as it goes.
func (a *analyzer) compose() {
	for _, p := range a.progs {
		for _, id := range p.SwitchIDs() {
			sp := p.At(id)
			cs := a.switches[id]
			if cs == nil {
				cs = &compSwitch{
					id:       id,
					numPorts: sp.NumPorts,
					tables:   make(map[int][]*compRule),
					states:   make(map[int]*compStateTable),
					groups:   make(map[uint32]*compGroup),
				}
				a.switches[id] = cs
			}
			for i := range sp.Flows {
				fr := &sp.Flows[i]
				cs.tables[fr.Table] = append(cs.tables[fr.Table],
					&compRule{prog: p, table: fr.Table, entry: fr.Entry})
				if fr.Table == 0 && fr.Entry.Match.EthType != openflow.AnyEthType {
					et := uint16(fr.Entry.Match.EthType)
					if _, ok := a.ethOwner[et]; !ok {
						a.ethOwner[et] = p
					}
				}
			}
			for si := range sp.States {
				ts := &sp.States[si]
				cst := cs.states[ts.Table]
				if cst != nil && cst.prog != p {
					a.add(Finding{
						Kind: KindStateClash, Severity: verify.Err,
						Service: p.Service, Slot: p.Slot, Switch: id, Table: ts.Table,
						Detail: fmt.Sprintf("state table %d already installed by service %q: one EFSM per table", ts.Table, cst.prog.Service),
					})
					continue
				}
				if cst == nil {
					cst = &compStateTable{prog: p, key: ts.Key}
					cs.states[ts.Table] = cst
				}
				for _, e := range ts.Entries {
					cst.entries = append(cst.entries, &compState{prog: p, entry: e})
				}
			}
			for _, g := range sp.Groups {
				if prev, ok := cs.groups[g.ID]; ok && prev.prog != p {
					a.add(Finding{
						Kind: KindGroupCollision, Severity: verify.Err,
						Service: p.Service, Slot: p.Slot, Switch: id, Table: -1,
						Detail: fmt.Sprintf("group %d already installed by service %q", g.ID, prev.prog.Service),
					})
					continue
				}
				cs.groups[g.ID] = &compGroup{prog: p, g: g}
			}
		}
	}
	// Order every composed table like a live FlowTable would: priority
	// descending, first-installed first on ties (programs install in
	// deployment order).
	for _, cs := range a.switches {
		for _, rules := range cs.tables {
			sort.SliceStable(rules, func(i, j int) bool {
				return rules[i].entry.Priority > rules[j].entry.Priority
			})
		}
		for _, cst := range cs.states {
			sort.SliceStable(cst.entries, func(i, j int) bool {
				return cst.entries[i].entry.Priority > cst.entries[j].entry.Priority
			})
		}
	}
	a.dualUse()
}

// dualUse flags flow rules installed into a table another program claims
// as a state table: at execution time the state table wins the table ID
// outright, so the flow rules can never match. Same-program dual use is
// package verify's per-switch finding; here only the cross-program case
// is a composition defect.
func (a *analyzer) dualUse() {
	type pair struct {
		table int
		prog  *openflow.Program
	}
	seen := map[pair]bool{}
	for _, id := range a.switchIDs() {
		cs := a.switches[id]
		for t, cst := range cs.states {
			for _, r := range cs.tables[t] {
				if r.prog == cst.prog || seen[pair{t, r.prog}] {
					continue
				}
				seen[pair{t, r.prog}] = true
				a.add(Finding{
					Kind: KindStateClash, Severity: verify.Err,
					Service: r.prog.Service, Slot: r.prog.Slot, Switch: id, Table: t,
					Cookie: r.entry.Cookie,
					Detail: fmt.Sprintf("flow rules in table %d are dead: service %q claims it as a state table, which wins the table ID at execution", t, cst.prog.Service),
				})
			}
		}
	}
}

func (a *analyzer) add(f Finding) { a.findings = append(a.findings, f) }

// switchIDs returns the composed switches in ascending order.
func (a *analyzer) switchIDs() []int {
	ids := make([]int, 0, len(a.switches))
	for id := range a.switches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// owner returns the program owning an EtherType's dispatch, for
// provenance on packet-walk findings.
func (a *analyzer) owner(eth uint16) (service string, slot int) {
	if p, ok := a.ethOwner[eth]; ok {
		return p.Service, p.Slot
	}
	return "", -1
}

// span returns the number of slots a program occupies, treating an
// unset Slots as 1 (hand-built programs may leave it zero).
func span(p *openflow.Program) int {
	if p.Slots < 1 {
		return 1
	}
	return p.Slots
}

// cookiePrefix extracts the service prefix of a rule cookie — the part
// before the first '/', which uninstall-by-cookie-prefix operates on.
func cookiePrefix(cookie string) string {
	if i := strings.IndexByte(cookie, '/'); i >= 0 {
		return cookie[:i]
	}
	return cookie
}

// conflicts runs every cross-service composition check.
func (a *analyzer) conflicts() {
	a.slotConflicts()
	a.cookieConflicts()
	a.ruleConflicts()
	if a.opts.SlotTables != nil || a.opts.SlotGroups != nil {
		a.slotDiscipline()
	}
}

// slotConflicts flags pairs of programs whose slot ranges intersect.
func (a *analyzer) slotConflicts() {
	for i, p := range a.progs {
		for _, q := range a.progs[i+1:] {
			if p.Slot < q.Slot+span(q) && q.Slot < p.Slot+span(p) {
				a.add(Finding{
					Kind: KindSlotCollision, Severity: verify.Err,
					Service: q.Service, Slot: q.Slot, Switch: -1, Table: -1,
					Detail: fmt.Sprintf("slots [%d,%d) collide with service %q slots [%d,%d)",
						q.Slot, q.Slot+span(q), p.Service, p.Slot, p.Slot+span(p)),
				})
			}
		}
	}
}

// cookieConflicts flags programs sharing a cookie prefix: deleting one
// service by cookie prefix would tear down the other's rules too.
func (a *analyzer) cookieConflicts() {
	prefixes := make([]map[string]bool, len(a.progs))
	for i, p := range a.progs {
		prefixes[i] = make(map[string]bool)
		for _, id := range p.SwitchIDs() {
			sp := p.At(id)
			for _, fr := range sp.Flows {
				prefixes[i][cookiePrefix(fr.Entry.Cookie)] = true
			}
			for _, ts := range sp.States {
				for _, e := range ts.Entries {
					prefixes[i][cookiePrefix(e.Cookie)] = true
				}
			}
		}
	}
	for i, p := range a.progs {
		for j, q := range a.progs[i+1:] {
			for pre := range prefixes[i] {
				if prefixes[i+1+j][pre] {
					a.add(Finding{
						Kind: KindCookieCollision, Severity: verify.Warn,
						Service: q.Service, Slot: q.Slot, Switch: -1, Table: -1,
						Detail: fmt.Sprintf("cookie prefix %q shared with service %q", pre, p.Service),
					})
				}
			}
		}
	}
}

// ruleConflicts scans every composed table for cross-program rule
// interactions: overlapping matches at equal priority (install-order
// dependent behaviour, an error) and cross-program shadowing (one
// service silently disabling another's rule, a warning).
func (a *analyzer) ruleConflicts() {
	for _, id := range a.switchIDs() {
		cs := a.switches[id]
		var tids []int
		for t := range cs.tables {
			tids = append(tids, t)
		}
		sort.Ints(tids)
		for _, t := range tids {
			rules := cs.tables[t]
			for i, lo := range rules {
				for _, hi := range rules[:i] {
					if hi.prog == lo.prog {
						continue
					}
					if hi.entry.Priority == lo.entry.Priority {
						if hi.entry.Match.Overlaps(lo.entry.Match) {
							a.add(Finding{
								Kind: KindOverlap, Severity: verify.Err,
								Service: lo.prog.Service, Slot: lo.prog.Slot,
								Switch: id, Table: t, Cookie: lo.entry.Cookie,
								Detail: fmt.Sprintf("overlaps rule %q of service %q at equal priority %d: winner depends on install order",
									hi.entry.Cookie, hi.prog.Service, lo.entry.Priority),
							})
						}
						continue
					}
					if hi.entry.Match.Covers(lo.entry.Match) {
						a.add(Finding{
							Kind: KindCrossShadow, Severity: verify.Warn,
							Service: lo.prog.Service, Slot: lo.prog.Slot,
							Switch: id, Table: t, Cookie: lo.entry.Cookie,
							Detail: fmt.Sprintf("shadowed by rule %q of service %q (priority %d > %d)",
								hi.entry.Cookie, hi.prog.Service, hi.entry.Priority, lo.entry.Priority),
						})
						break // one report per shadowed rule
					}
				}
			}
		}
	}
}

// slotDiscipline checks that every rule and group sits inside the
// table/group ranges its program's slots own (table 0 is shared).
func (a *analyzer) slotDiscipline() {
	for _, p := range a.progs {
		for _, id := range p.SwitchIDs() {
			sp := p.At(id)
			if a.opts.SlotTables != nil {
				for _, fr := range sp.Flows {
					if fr.Table == 0 || tableInSlots(fr.Table, p, a.opts.SlotTables) {
						continue
					}
					a.add(Finding{
						Kind: KindSlotViolation, Severity: verify.Warn,
						Service: p.Service, Slot: p.Slot, Switch: id, Table: fr.Table,
						Cookie: fr.Entry.Cookie,
						Detail: fmt.Sprintf("rule in table %d outside slots [%d,%d)", fr.Table, p.Slot, p.Slot+span(p)),
					})
				}
				for _, ts := range sp.States {
					if ts.Table == 0 || tableInSlots(ts.Table, p, a.opts.SlotTables) {
						continue
					}
					a.add(Finding{
						Kind: KindSlotViolation, Severity: verify.Warn,
						Service: p.Service, Slot: p.Slot, Switch: id, Table: ts.Table,
						Detail: fmt.Sprintf("state table %d outside slots [%d,%d)", ts.Table, p.Slot, p.Slot+span(p)),
					})
				}
			}
			if a.opts.SlotGroups != nil {
				for _, g := range sp.Groups {
					if groupInSlots(g.ID, p, a.opts.SlotGroups) {
						continue
					}
					a.add(Finding{
						Kind: KindSlotViolation, Severity: verify.Warn,
						Service: p.Service, Slot: p.Slot, Switch: id, Table: -1,
						Detail: fmt.Sprintf("group %d outside slots [%d,%d)", g.ID, p.Slot, p.Slot+span(p)),
					})
				}
			}
		}
	}
}

func tableInSlots(table int, p *openflow.Program, ranges func(int) (int, int)) bool {
	for s := p.Slot; s < p.Slot+span(p); s++ {
		lo, hi := ranges(s)
		if table >= lo && table < hi {
			return true
		}
	}
	return false
}

func groupInSlots(id uint32, p *openflow.Program, ranges func(int) (uint32, uint32)) bool {
	for s := p.Slot; s < p.Slot+span(p); s++ {
		lo, hi := ranges(s)
		if id >= lo && id < hi {
			return true
		}
	}
	return false
}
