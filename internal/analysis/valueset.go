package analysis

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// maxEnum bounds the size of an explicit value set. Restricting Top by a
// masked criterion that leaves more than log2(maxEnum) bits free stays
// Top instead of enumerating — the abstraction over-approximates rather
// than blowing up.
const maxEnum = 64

// ValueSet is the abstract domain for one packet field: either Top
// (every value the field width allows) or a small explicit set of
// values. Tag fields in compiled programs are narrow (node IDs, port
// numbers, small counters), so explicit sets stay tiny in practice and
// the analysis is exact on them; Top only appears for host-controlled
// packets and wide masked matches.
type ValueSet struct {
	top  bool
	vals []uint64 // sorted ascending, unique
}

// Top returns the set of all values.
func Top() ValueSet { return ValueSet{top: true} }

// Singleton returns the set {v}.
func Singleton(v uint64) ValueSet { return ValueSet{vals: []uint64{v}} }

// SetOf returns the set of the given values, deduplicated.
func SetOf(vs ...uint64) ValueSet {
	out := append([]uint64(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return ValueSet{vals: out[:w]}
}

// IsTop reports whether the set is the full domain.
func (s ValueSet) IsTop() bool { return s.top }

// Empty reports whether the set holds no value.
func (s ValueSet) Empty() bool { return !s.top && len(s.vals) == 0 }

// Single returns the sole element, if the set is a singleton.
func (s ValueSet) Single() (uint64, bool) {
	if !s.top && len(s.vals) == 1 {
		return s.vals[0], true
	}
	return 0, false
}

// Contains reports membership. Top contains everything.
func (s ValueSet) Contains(v uint64) bool {
	if s.top {
		return true
	}
	i := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= v })
	return i < len(s.vals) && s.vals[i] == v
}

// Values returns the explicit elements (nil for Top).
func (s ValueSet) Values() []uint64 { return s.vals }

// Map applies f to every element. Top maps to Top: the image of an
// unknown value is unknown.
func (s ValueSet) Map(f func(uint64) uint64) ValueSet {
	if s.top {
		return s
	}
	out := make([]uint64, len(s.vals))
	for i, v := range s.vals {
		out[i] = f(v)
	}
	return SetOf(out...)
}

// RestrictMask intersects the set with the criterion v&mask ==
// value&mask over a field whose width mask is widthMask. Restricting
// Top enumerates the satisfying values when few enough bits stay free,
// and soundly stays Top otherwise.
func (s ValueSet) RestrictMask(value, mask, widthMask uint64) ValueSet {
	if mask == 0 {
		return s
	}
	if s.top {
		free := widthMask &^ mask
		if bits.OnesCount64(free) > 6 { // 2^6 == maxEnum
			return s
		}
		base := value & mask
		var vals []uint64
		for sub := uint64(0); ; sub = (sub - free) & free {
			vals = append(vals, base|sub)
			if sub == free {
				break
			}
		}
		return SetOf(vals...)
	}
	var out []uint64
	for _, v := range s.vals {
		if v&mask == value&mask {
			out = append(out, v)
		}
	}
	return ValueSet{vals: out}
}

// RestrictTo intersects the set with {v}.
func (s ValueSet) RestrictTo(v uint64) ValueSet {
	if s.Contains(v) {
		return Singleton(v)
	}
	return ValueSet{}
}

// AllSatisfy reports whether every element satisfies the masked
// criterion. Top satisfies only the trivial (zero-mask) criterion.
func (s ValueSet) AllSatisfy(value, mask uint64) bool {
	if mask == 0 {
		return true
	}
	if s.top {
		return false
	}
	for _, v := range s.vals {
		if v&mask != value&mask {
			return false
		}
	}
	return len(s.vals) > 0
}

// AllEqual reports whether the set is exactly {v}.
func (s ValueSet) AllEqual(v uint64) bool {
	single, ok := s.Single()
	return ok && single == v
}

// Key returns a canonical string for state hashing.
func (s ValueSet) Key() string {
	if s.top {
		return "T"
	}
	parts := make([]string, len(s.vals))
	for i, v := range s.vals {
		parts[i] = fmt.Sprintf("%x", v)
	}
	return strings.Join(parts, ",")
}

func (s ValueSet) String() string {
	if s.top {
		return "⊤"
	}
	return "{" + s.Key() + "}"
}
