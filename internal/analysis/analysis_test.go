package analysis_test

import (
	"strings"
	"testing"

	"smartsouth/internal/analysis"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
	"smartsouth/internal/verify"
)

// ethA/ethB are fixture EtherTypes outside the real services' range.
const (
	ethA = 0x8901
	ethB = 0x8902
)

func findingsOf(fs []analysis.Finding, kind analysis.Kind) []analysis.Finding {
	var out []analysis.Finding
	for _, f := range fs {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

// TestCrossProgramPriorityConflict builds two programs that install
// overlapping matches at the same priority in the same table of the same
// switch — the behaviour then depends on install order, which the
// analyzer must flag as an error with both services named.
func TestCrossProgramPriorityConflict(t *testing.T) {
	g := topo.Line(2)

	mk := func(name string, slot int, cookie string) *openflow.Program {
		p := openflow.NewProgram(name, slot)
		p.Slots = 1
		sp := p.Ensure(0, g.Degree(0))
		_ = sp
		p.AddFlow(0, 0, &openflow.FlowEntry{
			Priority: 100, Match: openflow.MatchEth(ethA), Goto: openflow.NoGoto,
			Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
			Cookie:  cookie,
		})
		return p
	}
	p1 := mk("svc-one", 0, "one/dispatch")
	p2 := mk("svc-two", 1, "two/dispatch")

	fs := analysis.CheckDeployment([]*openflow.Program{p1, p2}, g, analysis.Options{})
	conflicts := findingsOf(fs, analysis.KindOverlap)
	if len(conflicts) != 1 {
		t.Fatalf("want exactly 1 overlap conflict, got %d: %v", len(conflicts), fs)
	}
	c := conflicts[0]
	if c.Severity != verify.Err {
		t.Errorf("overlap severity = %v, want Err", c.Severity)
	}
	if c.Switch != 0 || c.Table != 0 {
		t.Errorf("overlap provenance sw=%d t=%d, want sw=0 t=0", c.Switch, c.Table)
	}
	if c.Service != "svc-two" || c.Cookie != "two/dispatch" {
		t.Errorf("overlap blames %q/%q, want the later program svc-two/two/dispatch", c.Service, c.Cookie)
	}
	if !strings.Contains(c.Detail, "svc-one") {
		t.Errorf("overlap detail does not name the other service: %s", c.Detail)
	}
}

// TestSlotAndGroupAndCookieCollisions drives the remaining composition
// checks: two programs claiming the same slot, the same group ID on one
// switch, and the same cookie prefix.
func TestSlotAndGroupAndCookieCollisions(t *testing.T) {
	g := topo.Line(2)

	p1 := openflow.NewProgram("first", 0)
	sp := p1.Ensure(0, g.Degree(0))
	_ = sp
	p1.AddGroup(0, &openflow.GroupEntry{ID: 7, Type: openflow.GroupIndirect,
		Buckets: []openflow.Bucket{{Actions: []openflow.Action{openflow.Output{Port: 1}}}}})
	p1.AddFlow(0, 0, &openflow.FlowEntry{Priority: 100, Match: openflow.MatchEth(ethA),
		Goto: openflow.NoGoto, Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
		Cookie: "svc0001/dispatch"})

	p2 := openflow.NewProgram("second", 0) // same slot!
	p2.Ensure(0, g.Degree(0))
	p2.AddGroup(0, &openflow.GroupEntry{ID: 7, Type: openflow.GroupIndirect, // same group ID!
		Buckets: []openflow.Bucket{{Actions: []openflow.Action{openflow.Output{Port: 1}}}}})
	p2.AddFlow(0, 0, &openflow.FlowEntry{Priority: 90, Match: openflow.MatchEth(ethB),
		Goto: openflow.NoGoto, Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
		Cookie: "svc0001/probe"}) // same cookie prefix!

	fs := analysis.CheckDeployment([]*openflow.Program{p1, p2}, g, analysis.Options{})

	if got := findingsOf(fs, analysis.KindSlotCollision); len(got) != 1 {
		t.Errorf("slot collisions = %v, want exactly 1", got)
	} else if got[0].Severity != verify.Err || got[0].Service != "second" {
		t.Errorf("slot collision = %+v, want Err blaming 'second'", got[0])
	}
	if got := findingsOf(fs, analysis.KindGroupCollision); len(got) != 1 {
		t.Errorf("group collisions = %v, want exactly 1", got)
	} else if got[0].Switch != 0 || !strings.Contains(got[0].Detail, "first") {
		t.Errorf("group collision = %+v, want sw0 naming 'first'", got[0])
	}
	if got := findingsOf(fs, analysis.KindCookieCollision); len(got) != 1 {
		t.Errorf("cookie collisions = %v, want exactly 1", got)
	} else if !strings.Contains(got[0].Detail, "svc0001") {
		t.Errorf("cookie collision = %+v, want prefix svc0001 named", got[0])
	}
}

// TestForwardingLoopOnRing builds a tag encoding that loops on Ring(4):
// every switch forwards the EtherType out port 1 unconditionally, so the
// packet ping-pongs between neighbours forever with an unchanged state.
func TestForwardingLoopOnRing(t *testing.T) {
	g := topo.Ring(4)
	p := openflow.NewProgram("loopy", 0)
	for sw := 0; sw < g.NumNodes(); sw++ {
		p.Ensure(sw, g.Degree(sw))
		p.AddFlow(sw, 0, &openflow.FlowEntry{
			Priority: 100, Match: openflow.MatchEth(ethA), Goto: openflow.NoGoto,
			Actions: []openflow.Action{openflow.Output{Port: 1}},
			Cookie:  "loopy/fwd",
		})
	}

	fs := analysis.CheckDeployment([]*openflow.Program{p}, g, analysis.Options{})
	loops := findingsOf(fs, analysis.KindLoop)
	if len(loops) == 0 {
		t.Fatalf("no loop detected: %v", fs)
	}
	l := loops[0]
	if l.Severity != verify.Err {
		t.Errorf("loop severity = %v, want Err", l.Severity)
	}
	if l.Service != "loopy" || l.Slot != 0 {
		t.Errorf("loop provenance = %q slot %d, want loopy slot 0", l.Service, l.Slot)
	}
	if !strings.Contains(l.Detail, "->") {
		t.Errorf("loop detail has no cycle path: %s", l.Detail)
	}
	// No blackholes: the packet never dies, it just never stops.
	if bh := findingsOf(fs, analysis.KindBlackhole); len(bh) != 0 {
		t.Errorf("unexpected blackholes: %v", bh)
	}
}

// starBlackholeFixture builds the seeded-defect star broadcast: the
// center forwards to every leaf, but no leaf has a rule for the
// EtherType, so every forwarded packet is silently dropped.
func starBlackholeFixture(g *topo.Graph) *openflow.Program {
	p := openflow.NewProgram("bcast", 0)
	p.Ensure(0, g.Degree(0))
	var outs []openflow.Action
	for port := 1; port <= g.Degree(0); port++ {
		outs = append(outs, openflow.Output{Port: port})
	}
	p.AddFlow(0, 0, &openflow.FlowEntry{
		Priority: 100, Match: openflow.MatchEth(ethB), Goto: openflow.NoGoto,
		Actions: outs, Cookie: "bcast/fanout",
	})
	// The leaves get NO rules — the seeded defect.
	return p
}

// TestBlackholeOnStar asserts the missing-leaf-rule star broadcast is
// reported as one table-0 blackhole per leaf.
func TestBlackholeOnStar(t *testing.T) {
	g := topo.Star(4) // center 0, leaves 1..3
	p := starBlackholeFixture(g)

	fs := analysis.CheckDeployment([]*openflow.Program{p}, g, analysis.Options{})
	bhs := findingsOf(fs, analysis.KindBlackhole)
	if len(bhs) != 3 {
		t.Fatalf("want 3 blackholes (one per leaf), got %d: %v", len(bhs), fs)
	}
	leaves := map[int]bool{}
	for _, f := range bhs {
		if f.Severity != verify.Err {
			t.Errorf("blackhole severity = %v, want Err", f.Severity)
		}
		if f.Table != 0 {
			t.Errorf("blackhole table = %d, want 0 (table-0 miss)", f.Table)
		}
		if f.Service != "bcast" {
			t.Errorf("blackhole provenance = %q, want bcast", f.Service)
		}
		leaves[f.Switch] = true
	}
	for leaf := 1; leaf <= 3; leaf++ {
		if !leaves[leaf] {
			t.Errorf("leaf %d not reported", leaf)
		}
	}
	if loops := findingsOf(fs, analysis.KindLoop); len(loops) != 0 {
		t.Errorf("unexpected loops: %v", loops)
	}
}

// TestMidServiceBlackhole seeds the other blackhole class: the dispatch
// rule sends the packet into a slot table where no rule matches it.
func TestMidServiceBlackhole(t *testing.T) {
	g := topo.Line(2)
	f := openflow.Field{Name: "state", Off: 0, Bits: 4}
	p := openflow.NewProgram("halfpipe", 0)
	p.Ensure(0, g.Degree(0))
	p.AddFlow(0, 0, &openflow.FlowEntry{
		Priority: 100, Match: openflow.MatchEth(ethA), Goto: 1, Cookie: "halfpipe/dispatch",
	})
	// Table 1 only handles state=5; the injected zero-tag packet misses.
	p.AddFlow(0, 1, &openflow.FlowEntry{
		Priority: 10, Match: openflow.MatchEth(ethA).WithField(f, 5), Goto: openflow.NoGoto,
		Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
		Cookie:  "halfpipe/stage",
	})

	fs := analysis.CheckDeployment([]*openflow.Program{p}, g, analysis.Options{})
	bhs := findingsOf(fs, analysis.KindBlackhole)
	if len(bhs) != 1 {
		t.Fatalf("want 1 mid-service blackhole, got %d: %v", len(bhs), fs)
	}
	if bhs[0].Table != 1 || bhs[0].Switch != 0 || bhs[0].Severity != verify.Err {
		t.Errorf("blackhole = %+v, want Err at sw0 table 1", bhs[0])
	}
}

// TestCleanDeploymentNoFindings: two well-behaved programs on disjoint
// EtherTypes, slots and cookie prefixes produce no findings at all.
func TestCleanDeploymentNoFindings(t *testing.T) {
	g := topo.Line(2)
	mk := func(name string, slot int, eth uint16) *openflow.Program {
		p := openflow.NewProgram(name, slot)
		for sw := 0; sw < g.NumNodes(); sw++ {
			p.Ensure(sw, g.Degree(sw))
			p.AddFlow(sw, 0, &openflow.FlowEntry{
				Priority: 100, Match: openflow.MatchEth(eth), Goto: openflow.NoGoto,
				Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
				Cookie:  name + "/punt",
			})
		}
		return p
	}
	fs := analysis.CheckDeployment(
		[]*openflow.Program{mk("alpha", 0, ethA), mk("beta", 1, ethB)},
		g, analysis.Options{})
	if len(fs) != 0 {
		t.Fatalf("clean deployment produced findings: %v", fs)
	}
}

// TestDeadRuleReporting: an unreachable rule is reported only when the
// option is on, at Info severity.
func TestDeadRuleReporting(t *testing.T) {
	g := topo.Line(2)
	f := openflow.Field{Name: "state", Off: 0, Bits: 4}
	p := openflow.NewProgram("svc", 0)
	p.Ensure(0, g.Degree(0))
	p.AddFlow(0, 0, &openflow.FlowEntry{
		Priority: 100, Match: openflow.MatchEth(ethA), Goto: openflow.NoGoto,
		Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
		Cookie:  "svc/live",
	})
	// state=9 never occurs: the injected tag is zero and nothing sets it.
	p.AddFlow(0, 0, &openflow.FlowEntry{
		Priority: 200, Match: openflow.MatchEth(ethA).WithField(f, 9), Goto: openflow.NoGoto,
		Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
		Cookie:  "svc/dead",
	})

	fs := analysis.CheckDeployment([]*openflow.Program{p}, g, analysis.Options{})
	if dead := findingsOf(fs, analysis.KindDeadRule); len(dead) != 0 {
		t.Errorf("dead rules reported without opt-in: %v", dead)
	}
	fs = analysis.CheckDeployment([]*openflow.Program{p}, g, analysis.Options{ReportDeadRules: true})
	dead := findingsOf(fs, analysis.KindDeadRule)
	if len(dead) != 1 || dead[0].Cookie != "svc/dead" || dead[0].Severity != verify.Info {
		t.Fatalf("dead rules = %v, want exactly svc/dead at Info", dead)
	}
}

// TestSlotDiscipline: with the slot geometry provided, a rule outside
// its program's table range is flagged.
func TestSlotDiscipline(t *testing.T) {
	g := topo.Line(2)
	p := openflow.NewProgram("stray", 0)
	p.Ensure(0, g.Degree(0))
	p.AddFlow(0, 99, &openflow.FlowEntry{ // table 99 belongs to slot 9
		Priority: 10, Match: openflow.MatchEth(ethA), Goto: openflow.NoGoto,
		Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
		Cookie:  "stray/rule",
	})
	opts := analysis.Options{
		SlotTables: func(slot int) (int, int) { return 1 + slot*10, 1 + (slot+1)*10 },
	}
	fs := analysis.CheckDeployment([]*openflow.Program{p}, g, opts)
	if got := findingsOf(fs, analysis.KindSlotViolation); len(got) != 1 || got[0].Table != 99 {
		t.Fatalf("slot violations = %v, want exactly 1 at table 99", got)
	}
}

// dfsFixture compiles by hand the minimal 2-node "traversal": inject at
// either node, bounce off the far node with a mark, finish at the root.
func dfsFixture(g *topo.Graph, withBounce bool) *openflow.Program {
	f := openflow.Field{Name: "mark", Off: 0, Bits: 1}
	p := openflow.NewProgram("minidfs", 0)
	for sw := 0; sw < g.NumNodes(); sw++ {
		p.Ensure(sw, g.Degree(sw))
		p.AddFlow(sw, 0, &openflow.FlowEntry{ // finish: marked packet returns
			Priority: 10, Match: openflow.MatchEth(ethA).WithField(f, 1), Goto: openflow.NoGoto,
			Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
			Cookie:  "minidfs/finish",
		})
		if withBounce {
			p.AddFlow(sw, 0, &openflow.FlowEntry{ // bounce: mark and return
				Priority: 5, Match: openflow.MatchEth(ethA).WithInPort(1).WithField(f, 0), Goto: openflow.NoGoto,
				Actions: []openflow.Action{openflow.SetField{F: f, Value: 1}, openflow.Output{Port: openflow.PortInPort}},
				Cookie:  "minidfs/bounce",
			})
		}
		p.AddFlow(sw, 0, &openflow.FlowEntry{ // start: fresh trigger
			Priority: 1, Match: openflow.MatchEth(ethA), Goto: openflow.NoGoto,
			Actions: []openflow.Action{openflow.Output{Port: 1}},
			Cookie:  "minidfs/start",
		})
	}
	return p
}

func TestProveDFSHolds(t *testing.T) {
	g := topo.Line(2)
	fs := analysis.ProveDFS(dfsFixture(g, true), g, analysis.Options{})
	if len(fs) != 0 {
		t.Fatalf("invariant should hold on Line(2): %v", fs)
	}
}

func TestProveDFSViolation(t *testing.T) {
	g := topo.Line(2)
	fs := analysis.ProveDFS(dfsFixture(g, false), g, analysis.Options{})
	errs := analysis.Errors(fs)
	if len(errs) == 0 {
		t.Fatalf("missing bounce rule must break the invariant: %v", fs)
	}
	for _, f := range errs {
		if f.Kind != analysis.KindDFS {
			t.Errorf("finding kind = %s, want %s", f.Kind, analysis.KindDFS)
		}
	}
}
