package analysis

import (
	"fmt"
	"sort"
	"strconv"

	"smartsouth/internal/openflow"
)

// fkey identifies a tag field by its bit geometry. Matching operates on
// bits, so two criteria with the same offset and width constrain the
// same thing regardless of diagnostic name. The analysis treats
// distinct geometries as independent (the compiler allocates
// non-overlapping fields per service, and packets only traverse their
// own service's rules — see docs/ANALYSIS.md for the limits).
type fkey struct {
	off, bits int
}

func keyOfField(f openflow.Field) fkey { return fkey{off: f.Off, bits: f.Bits} }

// fieldSet is a small ordered association of tag fields to value sets,
// sorted by (off, bits). A slice beats a map here: states hold a handful
// of fields, cloning is the hot path (one allocation and a memmove), and
// the canonical key needs sorted iteration anyway.
type fieldSet []fentry

type fentry struct {
	k fkey
	v ValueSet
}

func (fs fieldSet) get(k fkey) (ValueSet, bool) {
	for i := range fs {
		if fs[i].k == k {
			return fs[i].v, true
		}
	}
	return ValueSet{}, false
}

// set inserts or replaces in place, keeping the order.
func (fs fieldSet) set(k fkey, v ValueSet) fieldSet {
	i := 0
	for i < len(fs) && (fs[i].k.off < k.off || (fs[i].k.off == k.off && fs[i].k.bits < k.bits)) {
		i++
	}
	if i < len(fs) && fs[i].k == k {
		fs[i].v = v
		return fs
	}
	fs = append(fs, fentry{})
	copy(fs[i+1:], fs[i:])
	fs[i] = fentry{k: k, v: v}
	return fs
}

// symPacket is the abstract state of one packet class: a concrete
// EtherType and ingress port, a value set for the TTL, and a value set
// per constrained tag field. Absent fields default to Singleton(0) —
// controller-injected triggers carry a zeroed tag — unless wild is set,
// in which case they default to Top (host-originated packets).
//
// The label stack is deliberately NOT part of the state: no match can
// observe it, so pipeline behaviour is identical for any stack contents
// and excluding it keeps the loop check exact for label-pushing
// encodings (snapshot would otherwise never revisit a state).
type symPacket struct {
	eth    uint16
	inPort int
	wild   bool
	ttl    ValueSet
	fields fieldSet
}

func newSymPacket(eth uint16, inPort int, wild bool) *symPacket {
	return &symPacket{
		eth:    eth,
		inPort: inPort,
		wild:   wild,
		ttl:    Singleton(255),
	}
}

func (p *symPacket) clone() *symPacket {
	q := &symPacket{eth: p.eth, inPort: p.inPort, wild: p.wild, ttl: p.ttl}
	if len(p.fields) > 0 {
		q.fields = append(make(fieldSet, 0, len(p.fields)), p.fields...)
	}
	return q
}

// field returns the value set of a tag field, applying the default for
// unconstrained fields.
func (p *symPacket) field(f openflow.Field) ValueSet {
	if s, ok := p.fields.get(keyOfField(f)); ok {
		return s
	}
	if p.wild {
		return Top()
	}
	return Singleton(0)
}

// key returns the canonical state identity used for loop detection and
// memoization: switch-independent packet state only.
func (p *symPacket) key() string {
	var b []byte
	b = append(b, 'e')
	b = strconv.AppendUint(b, uint64(p.eth), 16)
	b = append(b, '|', 'i')
	b = strconv.AppendInt(b, int64(p.inPort), 10)
	b = append(b, '|', 't')
	b = append(b, p.ttl.Key()...)
	if p.wild {
		b = append(b, '|', 'w')
	}
	for _, fe := range p.fields { // already sorted by (off, bits)
		b = append(b, '|', 'f')
		b = strconv.AppendInt(b, int64(fe.k.off), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(fe.k.bits), 10)
		b = append(b, '=')
		b = append(b, fe.v.Key()...)
	}
	return string(b)
}

func (p *symPacket) String() string {
	s := fmt.Sprintf("eth=%#04x in=%d ttl=%s", p.eth, p.inPort, p.ttl)
	for _, fe := range p.fields {
		s += fmt.Sprintf(" tag[%d:%d]=%s", fe.k.off, fe.k.off+fe.k.bits, fe.v)
	}
	return s
}

// restrict intersects the packet state with a match, returning the
// restricted state and whether the intersection is non-empty (i.e.
// whether some concretization of p satisfies m). The result aliases p
// when the match imposes no new constraint; callers must treat it as
// immutable (action execution is copy-on-write, so this holds).
func restrict(p *symPacket, m openflow.Match) (*symPacket, bool) {
	if m.InPort != openflow.AnyPort && m.InPort != p.inPort {
		return nil, false
	}
	if m.EthType != openflow.AnyEthType && m.EthType != int(p.eth) {
		return nil, false
	}
	q := p
	cloned := false
	mut := func() *symPacket {
		if !cloned {
			q = p.clone()
			cloned = true
		}
		return q
	}
	if m.TTL != openflow.AnyTTL {
		ts := p.ttl.RestrictTo(uint64(m.TTL))
		if ts.Empty() {
			return nil, false
		}
		mut().ttl = ts
	}
	for _, fm := range m.Fields {
		cur := q.field(fm.F)
		next := cur.RestrictMask(fm.Value, fm.AcceptedMask(), fm.F.Max())
		if next.Empty() {
			return nil, false
		}
		p2 := mut()
		p2.fields = p2.fields.set(keyOfField(fm.F), next)
	}
	return q, true
}

// coveredBy reports whether every concretization of p satisfies m — the
// cutoff that makes the priority scan exact for concrete states: the
// first covering rule consumes the whole state, so lower-priority rules
// are not explored.
func coveredBy(p *symPacket, m openflow.Match) bool {
	if m.InPort != openflow.AnyPort && m.InPort != p.inPort {
		return false
	}
	if m.EthType != openflow.AnyEthType && m.EthType != int(p.eth) {
		return false
	}
	if m.TTL != openflow.AnyTTL && !p.ttl.AllEqual(uint64(m.TTL)) {
		return false
	}
	for _, fm := range m.Fields {
		if !p.field(fm.F).AllSatisfy(fm.Value, fm.AcceptedMask()) {
			return false
		}
	}
	return true
}

// storeCell addresses one state-store record: a state table on a switch
// plus the flow-key class of the packet ("" for keyless tables, the
// concatenated key for a concrete packet, "T" when any key field is
// symbolic — every unknown flow is merged into one cell).
type storeCell struct {
	sw, table int
	key       string
}

// stateStore is the walk's view of every state table's store: the cells
// written so far, absent meaning state 0 ("fresh" — the same default the
// live StateTable reads). Stores are immutable; with returns a copy, so
// branches and walk frames share them freely. The digest participates in
// the walk key: the discriminating state of a stateful backend lives in
// the switches, not the packet, and excluding it would make every DFS
// bounce look like a forwarding loop.
type stateStore map[storeCell]uint64

func (s stateStore) get(c storeCell) uint64 { return s[c] }

// with returns a store with cell c set to v. Writing the default state
// removes the cell, keeping the representation canonical for digests.
func (s stateStore) with(c storeCell, v uint64) stateStore {
	if s[c] == v {
		return s
	}
	ns := make(stateStore, len(s)+1)
	for k, ov := range s {
		ns[k] = ov
	}
	if v == 0 {
		delete(ns, c)
	} else {
		ns[c] = v
	}
	return ns
}

// digest renders the store canonically for walk keys: sorted non-zero
// cells. An empty store digests to "" so walks over pure flow-rule
// deployments key exactly as before.
func (s stateStore) digest() string {
	if len(s) == 0 {
		return ""
	}
	cells := make([]storeCell, 0, len(s))
	for c := range s {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.sw != b.sw {
			return a.sw < b.sw
		}
		if a.table != b.table {
			return a.table < b.table
		}
		return a.key < b.key
	})
	var b []byte
	for _, c := range cells {
		b = append(b, '|', 'S')
		b = strconv.AppendInt(b, int64(c.sw), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(c.table), 10)
		b = append(b, '.')
		b = append(b, c.key...)
		b = append(b, '=')
		b = strconv.AppendUint(b, s[c], 16)
	}
	return string(b)
}

// cellFor computes the store cell a packet class reads in a state table.
// The key is concrete when every key field of the packet is a singleton;
// otherwise the class collapses to the shared symbolic cell "T" — a
// deliberate merge (all unknown flows share one state machine) that
// keeps the walk finite; see docs/ANALYSIS.md.
func cellFor(sw, table int, key []openflow.Field, p *symPacket) storeCell {
	var b []byte
	for _, f := range key {
		v, ok := p.field(f).Single()
		if !ok {
			return storeCell{sw: sw, table: table, key: "T"}
		}
		b = strconv.AppendUint(b, v, 16)
		b = append(b, '.')
	}
	return storeCell{sw: sw, table: table, key: string(b)}
}

// symEmit is one packet class leaving a switch on a port.
type symEmit struct {
	port int
	pkt  *symPacket
}

// pathEnd is the outcome of one execution path through a composed
// pipeline: the emissions along it, whether any rule matched, whether an
// explicit drop was executed, the table of a definite miss (-1 when the
// path ended normally), and the state store as of the end of the path
// (committed transitions included).
type pathEnd struct {
	emits     []symEmit
	matched   bool
	dropped   bool
	missTable int
	store     stateStore
}

// branch threads mutable state through symbolic action execution; forks
// (round-robin groups) multiply branches.
type branch struct {
	pkt     *symPacket
	emits   []symEmit
	dropped bool
	store   stateStore
}

func (b branch) forkPkt() branch {
	nb := branch{pkt: b.pkt.clone(), dropped: b.dropped, store: b.store}
	nb.emits = append(nb.emits, b.emits...)
	return nb
}

// symGroupDepth bounds group chaining, mirroring the pipeline model.
const symGroupDepth = 8

// pipelineAt symbolically executes the composed pipeline of switch sw
// on state σ under state store st. A switch no program installs rules on
// behaves as an empty pipeline: a definite table-0 miss.
func (a *analyzer) pipelineAt(sw int, σ *symPacket, st stateStore) []pathEnd {
	cs := a.switches[sw]
	if cs == nil {
		return []pathEnd{{missTable: 0, store: st}}
	}
	return a.runPipeline(cs, σ, st)
}

// runPipeline symbolically executes the composed pipeline of cs on
// state σ from table 0, returning every execution path's outcome.
func (a *analyzer) runPipeline(cs *compSwitch, σ *symPacket, st stateStore) []pathEnd {
	var out []pathEnd
	a.runTable(cs, 0, branch{pkt: σ, store: st}, false, &out)
	return out
}

func (a *analyzer) runTable(cs *compSwitch, table int, b branch, matched bool, out *[]pathEnd) {
	// A stateful stage claims its table ID outright, mirroring the switch
	// pipeline (flow rules composed into the same table are dead; the
	// dual-use check reports them).
	if cst := cs.states[table]; cst != nil && len(cst.entries) > 0 {
		a.runStateTable(cs, cst, table, b, matched, out)
		return
	}
	rules := cs.tables[table]
	anyMatch := false
	for _, r := range rules {
		σ2, ok := restrict(b.pkt, r.entry.Match)
		if !ok {
			continue
		}
		anyMatch = true
		r.hit = true
		nb := branch{pkt: σ2, dropped: b.dropped, store: b.store}
		nb.emits = append(nb.emits, b.emits...)
		for _, br := range a.applyActions(cs, r.entry.Actions, nb, 0) {
			if r.entry.Goto != openflow.NoGoto && r.entry.Goto > table {
				a.runTable(cs, r.entry.Goto, br, true, out)
			} else {
				*out = append(*out, pathEnd{emits: br.emits, matched: true, dropped: br.dropped, missTable: -1, store: br.store})
			}
		}
		if coveredBy(b.pkt, r.entry.Match) {
			return // rule consumes the whole state: scan is complete
		}
	}
	if !anyMatch {
		*out = append(*out, pathEnd{emits: b.emits, matched: matched, dropped: b.dropped, missTable: table, store: b.store})
	}
	// A partial residual (some rules matched subsets but none covered the
	// state) is over-approximated away; see docs/ANALYSIS.md.
}

// runStateTable symbolically executes one stateful stage. The flow's
// current state is read from the walk's store — concrete by
// construction, since transitions only write concrete values — so the
// state half of every transition is decided exactly and only the packet
// half can fork. A miss absorbs the packet where it stands, exactly as
// the switch pipeline breaks on a state-table miss.
func (a *analyzer) runStateTable(cs *compSwitch, cst *compStateTable, table int, b branch, matched bool, out *[]pathEnd) {
	cell := cellFor(cs.id, table, cst.key, b.pkt)
	cur := b.store.get(cell)
	anyMatch := false
	for _, r := range cst.entries {
		if !r.entry.MatchesState(cur) {
			continue
		}
		σ2, ok := restrict(b.pkt, r.entry.Match)
		if !ok {
			continue
		}
		anyMatch = true
		r.hit = true
		nb := branch{pkt: σ2, dropped: b.dropped, store: b.store}
		if r.entry.SetState != nil {
			nb.store = b.store.with(cell, *r.entry.SetState)
		}
		nb.emits = append(nb.emits, b.emits...)
		for _, br := range a.applyActions(cs, r.entry.Actions, nb, 0) {
			if r.entry.Goto != openflow.NoGoto && r.entry.Goto > table {
				a.runTable(cs, r.entry.Goto, br, true, out)
			} else {
				*out = append(*out, pathEnd{emits: br.emits, matched: true, dropped: br.dropped, missTable: -1, store: br.store})
			}
		}
		if coveredBy(b.pkt, r.entry.Match) {
			return // transition consumes the whole packet class
		}
	}
	if !anyMatch {
		*out = append(*out, pathEnd{emits: b.emits, matched: matched, dropped: b.dropped, missTable: table, store: b.store})
	}
}

// applyActions executes an action list symbolically on branch b,
// returning the resulting branches (one unless a round-robin group
// forks).
func (a *analyzer) applyActions(cs *compSwitch, acts []openflow.Action, b branch, depth int) []branch {
	branches := []branch{b}
	for _, act := range acts {
		var next []branch
		for _, br := range branches {
			next = append(next, a.applyAction(cs, act, br, depth)...)
		}
		branches = next
	}
	return branches
}

func (a *analyzer) applyAction(cs *compSwitch, act openflow.Action, b branch, depth int) []branch {
	switch ac := act.(type) {
	case openflow.Output:
		port := ac.Port
		if port == openflow.PortInPort {
			port = b.pkt.inPort
		}
		if port == openflow.PortDrop {
			b.dropped = true
			return []branch{b}
		}
		b.emits = append(b.emits, symEmit{port: port, pkt: b.pkt.clone()})
		return []branch{b}
	case openflow.SetField:
		b.pkt = b.pkt.clone()
		b.pkt.fields = b.pkt.fields.set(keyOfField(ac.F), Singleton(ac.Value&ac.F.Max()))
		return []branch{b}
	case openflow.DecTTL:
		b.pkt = b.pkt.clone()
		b.pkt.ttl = b.pkt.ttl.Map(func(v uint64) uint64 {
			if v > 0 {
				return v - 1
			}
			return 0
		})
		return []branch{b}
	case openflow.Group:
		return a.applyGroup(cs, ac.ID, b, depth)
	default:
		// PushLabel / PopLabel: the label stack is invisible to matching.
		return []branch{b}
	}
}

// applyGroup executes a group entry symbolically. The analysis models a
// fault-free network: every port is live, so a fast-failover group
// always takes its first bucket. A round-robin SELECT group's counter
// is unknown, so every bucket is a possible branch.
func (a *analyzer) applyGroup(cs *compSwitch, id uint32, b branch, depth int) []branch {
	cg := cs.groups[id]
	if cg == nil || depth >= symGroupDepth {
		// Missing groups are package verify's finding; chaining depth is
		// bounded like the pipeline model. Both drop the packet here.
		return []branch{b}
	}
	g := cg.g
	switch g.Type {
	case openflow.GroupAll:
		// Each bucket runs on its own copy; only its emissions survive.
		// The packet itself continues unchanged past the group action.
		outer := []branch{b}
		for i := range g.Buckets {
			var next []branch
			for _, ob := range outer {
				sub := a.applyActions(cs, g.Buckets[i].Actions,
					branch{pkt: ob.pkt.clone(), store: ob.store}, depth+1)
				for _, sb := range sub {
					nb := branch{pkt: ob.pkt, dropped: ob.dropped || sb.dropped, store: ob.store}
					nb.emits = append(nb.emits, ob.emits...)
					nb.emits = append(nb.emits, sb.emits...)
					next = append(next, nb)
				}
			}
			outer = next
		}
		return outer
	case openflow.GroupIndirect, openflow.GroupFF:
		if len(g.Buckets) == 0 {
			return []branch{b}
		}
		// Fault-free: the first FF bucket's watch port is live.
		return a.applyActions(cs, g.Buckets[0].Actions, b, depth+1)
	case openflow.GroupSelectRR:
		var out []branch
		for i := range g.Buckets {
			out = append(out, a.applyActions(cs, g.Buckets[i].Actions, b.forkPkt(), depth+1)...)
		}
		if len(out) == 0 {
			return []branch{b}
		}
		return out
	}
	return []branch{b}
}
