package analysis_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"smartsouth/internal/analysis"
	"smartsouth/internal/controller"
	"smartsouth/internal/core"
	"smartsouth/internal/network"
	"smartsouth/internal/topo"
	"smartsouth/internal/verify"
)

// paperDeployment compiles the four paper services side by side on g,
// returning their programs exactly as a production deployment would hold
// them.
func paperDeployment(t *testing.T, g *topo.Graph) []*core.Program {
	t.Helper()
	net := network.New(g, network.Options{})
	c := controller.New(net)
	if _, err := core.InstallSnapshot(c, g, 0); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if _, err := core.InstallAnycast(c, g, 1, map[uint32][]int{1: {0, 5}, 2: {10}}); err != nil {
		t.Fatalf("anycast: %v", err)
	}
	if _, err := core.InstallBlackholeCounter(c, g, 2); err != nil {
		t.Fatalf("blackhole-counter: %v", err)
	}
	if _, err := core.InstallCritical(c, g, 3); err != nil {
		t.Fatalf("critical: %v", err)
	}
	return c.Programs()
}

func paperOptions() analysis.Options {
	return analysis.Options{
		HostEthTypes: []uint16{core.EthData},
		SlotTables:   core.SlotTables,
		SlotGroups:   core.SlotGroups,
	}
}

// TestPaperServicesOnRing20 is the headline smoke check: the full paper
// deployment — snapshot, anycast, blackhole counter and critical-node
// detection sharing Ring(20) — analyses clean. Zero errors, and the warn
// count is pinned so regressions in either the services or the analyzer
// surface here.
func TestPaperServicesOnRing20(t *testing.T) {
	g := topo.Ring(20)
	progs := paperDeployment(t, g)
	if len(progs) != 4 {
		t.Fatalf("expected 4 retained programs, got %d", len(progs))
	}

	fs := analysis.CheckDeployment(progs, g, paperOptions())
	if errs := analysis.Errors(fs); len(errs) != 0 {
		for _, f := range errs {
			t.Errorf("unexpected error finding: %s", f)
		}
		t.Fatalf("%d error findings on a clean deployment", len(errs))
	}
	if warns := analysis.Warnings(fs); len(warns) != 0 {
		for _, f := range warns {
			t.Errorf("unexpected warn finding: %s", f)
		}
	}
}

// TestProveDFSOnRealSnapshot proves the traversal invariant for the
// actual compiled snapshot service — not a fixture — on topologies with
// and without back edges. Ring(8) has one back edge (crossed twice per
// direction: probe and bounce from each side); Tree(2,2) has none.
func TestProveDFSOnRealSnapshot(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *topo.Graph
	}{
		{"ring8", topo.Ring(8)},
		{"tree2x2", topo.Tree(2, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := network.New(tc.g, network.Options{})
			c := controller.New(net)
			if _, err := core.InstallSnapshot(c, tc.g, 0); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			for _, f := range analysis.ProveDFS(c.Programs()[0], tc.g, paperOptions()) {
				t.Errorf("invariant violation: %s", f)
			}
		})
	}
}

// TestFindingsJSONRoundTrip pins the wire shape oflint -json emits.
func TestFindingsJSONRoundTrip(t *testing.T) {
	g := topo.Star(4)
	prog := starBlackholeFixture(g)
	fs := analysis.CheckDeployment([]*core.Program{prog}, g, analysis.Options{})
	if len(fs) == 0 {
		t.Fatal("fixture produced no findings")
	}
	raw, err := json.Marshal(fs)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []analysis.Finding
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(fs, back) {
		t.Fatalf("round trip changed findings:\n  out: %v\n  in:  %v", fs, back)
	}
	if back[0].Severity != verify.Err {
		t.Errorf("severity did not survive the trip: %v", back[0].Severity)
	}
}
