// Package analysis statically checks a *deployment*: the set of compiled
// openflow.Programs destined for one fabric, against the concrete
// topology they will be installed on. Where package verify checks one
// program on one model switch, this package composes all programs per
// switch and reasons network-wide, without simulating a single packet:
//
//   - cross-service conflicts: overlapping matches at equal priority,
//     cross-program shadowing, slot-range and cookie-prefix collisions,
//     group-ID clashes;
//   - symbolic reachability: EtherType/tag-field value sets are walked
//     through pipelines and across links, reporting forwarding loops
//     (a (switch, in-port, tag-state) revisit), blackholes (a packet
//     with no matching rule, or dropped mid-service), and — opt-in —
//     rules no reachable packet can hit;
//   - the DFS traversal invariant: ProveDFS abstract-interprets the
//     compiled par/cur tag transitions and proves every edge is crossed
//     exactly once per direction and the trigger returns to its root.
//
// The symbolic domain and its limits are documented in docs/ANALYSIS.md.
package analysis

import (
	"fmt"
	"sort"

	"smartsouth/internal/verify"
)

// Kind classifies a finding.
type Kind string

const (
	// KindOverlap: two programs install overlapping matches at the same
	// priority in the same table — which rule wins depends on install
	// order.
	KindOverlap Kind = "conflict-overlap"
	// KindCrossShadow: a rule of one program covers a lower-priority
	// rule of another program in the same table, making it dead.
	KindCrossShadow Kind = "conflict-shadow"
	// KindSlotCollision: two programs claim overlapping slot ranges.
	KindSlotCollision Kind = "slot-collision"
	// KindSlotViolation: a program's rule or group lives outside the
	// table/group ranges its slot owns.
	KindSlotViolation Kind = "slot-violation"
	// KindCookieCollision: two programs share a cookie prefix, so
	// uninstall-by-cookie-prefix would tear down both.
	KindCookieCollision Kind = "cookie-collision"
	// KindGroupCollision: two programs install the same group ID on the
	// same switch.
	KindGroupCollision Kind = "group-collision"
	// KindStateClash: two programs install transitions into the same
	// state table, or one program's flow rules sit in a table another
	// program claims as a state table (the state table wins the table ID
	// at execution, silently disabling the flow rules).
	KindStateClash Kind = "state-collision"
	// KindLoop: a symbolic packet revisits a (switch, in-port,
	// tag-state), so the fabric forwards it forever.
	KindLoop Kind = "loop"
	// KindBlackhole: a symbolic packet reaches a switch with no
	// matching rule, or is dropped mid-service without being emitted.
	KindBlackhole Kind = "blackhole"
	// KindDeadRule: no symbolically reachable packet hits the rule
	// (reported only with Options.ReportDeadRules — bounce rules are
	// intentionally unreachable in a fault-free walk).
	KindDeadRule Kind = "dead-rule"
	// KindBudget: the exploration state budget was exhausted; the
	// reachability verdicts are incomplete.
	KindBudget Kind = "budget-exceeded"
	// KindDFS: the DFS traversal invariant does not hold (or could not
	// be proven) on the given topology.
	KindDFS Kind = "dfs-invariant"
)

// Finding is one analysis result with rule provenance: which service,
// slot and switch the offending state belongs to. Switch and Table are
// -1 for network-level findings.
type Finding struct {
	Kind     Kind            `json:"kind"`
	Severity verify.Severity `json:"severity"`
	Service  string          `json:"service,omitempty"`
	Slot     int             `json:"slot"`
	Switch   int             `json:"switch"`
	Table    int             `json:"table"`
	Cookie   string          `json:"cookie,omitempty"`
	Detail   string          `json:"detail"`
}

func (f Finding) String() string {
	where := "net"
	if f.Switch >= 0 {
		where = fmt.Sprintf("sw%d", f.Switch)
		if f.Table >= 0 {
			where += fmt.Sprintf("/t%d", f.Table)
		}
	}
	who := f.Service
	if who == "" {
		who = "?"
	}
	if f.Cookie != "" {
		who += "/" + f.Cookie
	}
	return fmt.Sprintf("[%s] %s %s (%s slot %d): %s", f.Severity, f.Kind, where, who, f.Slot, f.Detail)
}

// Errors filters findings of severity Err.
func Errors(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Severity == verify.Err {
			out = append(out, f)
		}
	}
	return out
}

// Warnings filters findings of severity Warn.
func Warnings(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Severity == verify.Warn {
			out = append(out, f)
		}
	}
	return out
}

// sortFindings orders most severe first, then by kind, switch, table and
// cookie so output is deterministic.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		return a.Cookie < b.Cookie
	})
}

// Options tunes a deployment check.
type Options struct {
	// HostEthTypes lists EtherTypes whose packets originate outside the
	// fabric (e.g. data traffic): their tag contents are analyzed as
	// unknown (Top) rather than controller-zeroed.
	HostEthTypes []uint16

	// ReportDeadRules adds Info findings for rules no reachable packet
	// hits. Off by default: fault-recovery rules (FF bounce paths) are
	// legitimately unreachable in the fault-free symbolic walk.
	ReportDeadRules bool

	// MaxStates bounds the number of distinct (switch, in-port, state)
	// nodes explored before the walk gives up with a KindBudget Warn.
	// Defaults to 200000.
	MaxStates int

	// SlotTables and SlotGroups, when set, give the table-ID and
	// group-ID ranges owned by a slot, enabling slot-discipline checks
	// (KindSlotViolation). The core package's geometry is passed in by
	// callers; the analyzer itself is layout-agnostic.
	SlotTables func(slot int) (lo, hi int)
	SlotGroups func(slot int) (lo, hi uint32)
}

func (o Options) maxStates() int {
	if o.MaxStates > 0 {
		return o.MaxStates
	}
	return 200000
}
