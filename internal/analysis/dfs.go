package analysis

import (
	"fmt"

	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
	"smartsouth/internal/verify"
)

// dirEdge is one direction of a topology edge, identified by the
// emitting switch and its port.
type dirEdge struct {
	sw, port int
}

// ProveDFS statically proves the paper's traversal invariant for a
// compiled DFS-template program on g: starting from every switch the
// program covers, the trigger packet crosses every live edge in both
// directions the same number of times — once per direction for tree
// edges (down, then up), twice for back edges (probe, then bounce, from
// each side) — never more, never less, and finally returns to the
// controller at its root. This is the paper's 4|E| message bound made
// exact. The proof abstract-interprets the compiled par/cur tag
// transitions with a concrete zero-tag trigger per root — exactly the
// state a controller injection produces — so the walk is deterministic
// and the edge-crossing counts are exact.
//
// An empty result means the invariant holds for every root. Forks in
// the abstract walk (a round-robin group, or a state matched by no
// single covering rule) make the walk nondeterministic; those return a
// Warn "cannot prove" finding rather than a spurious violation.
//
// ProveDFS applies to full-traversal services (the traversal template
// and snapshot); services that terminate early by design (anycast,
// critical-node) do not satisfy the invariant and should not be passed
// here.
func ProveDFS(p *openflow.Program, g *topo.Graph, opts Options) []Finding {
	a := newAnalyzer([]*openflow.Program{p}, g, opts)
	var findings []Finding
	for _, root := range p.SwitchIDs() {
		findings = append(findings, a.proveRoot(p, root)...)
	}
	sortFindings(findings)
	return findings
}

// proveRoot walks the deterministic trigger transition system from one
// root and checks the crossing counts and the final controller return.
func (a *analyzer) proveRoot(p *openflow.Program, root int) []Finding {
	var findings []Finding
	fail := func(sev verify.Severity, sw int, format string, args ...any) {
		findings = append(findings, Finding{
			Kind: KindDFS, Severity: sev,
			Service: p.Service, Slot: p.Slot, Switch: sw, Table: -1,
			Detail: fmt.Sprintf("root %d: %s", root, fmt.Sprintf(format, args...)),
		})
	}

	var eths []uint16
	if cs := a.switches[root]; cs != nil {
		eths = dispatchEthTypes(cs)
	}
	if len(eths) == 0 {
		fail(verify.Err, root, "no dispatch rule to inject the trigger into")
		return findings
	}
	eth := eths[0]

	type frame struct {
		sw    int
		pkt   *symPacket
		store stateStore
	}
	crossed := make(map[dirEdge]int)
	deliveredAtRoot := 0
	queue := []frame{{sw: root, pkt: newSymPacket(eth, openflow.PortController, false)}}
	visited := make(map[string]bool)
	steps := 0

	for len(queue) > 0 {
		steps++
		if steps > a.opts.maxStates() {
			fail(verify.Warn, -1, "cannot prove: walk exceeded %d steps (non-terminating encoding?)", a.opts.maxStates())
			return findings
		}
		fr := queue[0]
		queue = queue[1:]
		// The per-configuration transition is deterministic, so revisiting
		// a (switch, packet state, store) node means the walk is periodic:
		// the trigger loops and every edge on the cycle is crossed
		// infinitely often. The store is part of the node — the stateful
		// backend keeps the DFS state in the switches, and a bounce revisits
		// the same (switch, packet) under a different store by design.
		vkey := fmt.Sprintf("s%d|%s%s", fr.sw, fr.pkt.key(), fr.store.digest())
		if visited[vkey] {
			fail(verify.Err, fr.sw, "trigger re-enters state (%s) at sw%d: traversal loops instead of terminating", fr.pkt, fr.sw)
			return findings
		}
		visited[vkey] = true
		ends := a.pipelineAt(fr.sw, fr.pkt, fr.store)
		if len(ends) != 1 {
			fail(verify.Warn, fr.sw, "cannot prove: pipeline forks into %d paths at sw%d (state %s)", len(ends), fr.sw, fr.pkt)
			return findings
		}
		end := ends[0]
		if end.missTable == 0 && !end.matched {
			fail(verify.Err, fr.sw, "trigger (%s) matches no rule at sw%d", fr.pkt, fr.sw)
			continue
		}
		if end.missTable > 0 && len(end.emits) == 0 && !end.dropped {
			fail(verify.Err, fr.sw, "trigger (%s) dropped mid-service at sw%d table %d", fr.pkt, fr.sw, end.missTable)
			continue
		}
		for _, em := range end.emits {
			switch {
			case em.port == openflow.PortController:
				if fr.sw == root {
					deliveredAtRoot++
				}
			case em.port == openflow.PortSelf:
				// Local delivery; not part of the traversal.
			case em.port >= 1:
				v, vport, ok := a.g.Neighbor(fr.sw, em.port)
				if !ok {
					fail(verify.Err, fr.sw, "trigger emitted on port %d of sw%d, which has no link", em.port, fr.sw)
					continue
				}
				crossed[dirEdge{sw: fr.sw, port: em.port}]++
				np := em.pkt.clone()
				np.inPort = vport
				queue = append(queue, frame{sw: v, pkt: np, store: end.store})
			}
		}
	}

	for _, e := range a.g.Edges() {
		uv := crossed[dirEdge{sw: e.U, port: e.PU}]
		vu := crossed[dirEdge{sw: e.V, port: e.PV}]
		switch {
		case uv == 0 && vu == 0:
			fail(verify.Err, e.U, "edge %d--%d never crossed: the traversal does not discover it", e.U, e.V)
		case uv != vu:
			fail(verify.Err, e.U, "edge %d--%d crossed asymmetrically: %d times %d->%d but %d times %d->%d", e.U, e.V, uv, e.U, e.V, vu, e.V, e.U)
		case uv > 2:
			fail(verify.Err, e.U, "edge %d--%d crossed %d times per direction (a DFS needs at most 2: probe and bounce)", e.U, e.V, uv)
		}
	}
	if deliveredAtRoot == 0 {
		fail(verify.Err, root, "trigger never returned to the controller at the root")
	}
	return findings
}
