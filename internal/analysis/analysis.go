package analysis

import (
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// CheckDeployment statically analyzes a set of compiled programs
// against the topology they will be installed on, without simulating a
// packet. It composes the programs per switch and reports:
//
//   - cross-service conflicts (KindOverlap, KindCrossShadow,
//     KindSlotCollision, KindCookieCollision, KindGroupCollision, and —
//     when Options provides the slot geometry — KindSlotViolation);
//   - symbolic reachability defects (KindLoop, KindBlackhole, and with
//     Options.ReportDeadRules, KindDeadRule);
//   - KindBudget when the exploration budget is exhausted.
//
// Findings come back most severe first, each carrying the provenance
// (service, slot, switch, rule cookie) needed to act on it. An empty
// Errors(findings) means the deployment is safe to install under the
// analysis' fault-free model; see docs/ANALYSIS.md for what the model
// does and does not decide.
func CheckDeployment(progs []*openflow.Program, g *topo.Graph, opts Options) []Finding {
	a := newAnalyzer(progs, g, opts)
	a.conflicts()
	a.reach()
	if opts.ReportDeadRules {
		a.deadRules()
	}
	sortFindings(a.findings)
	return a.findings
}
