package analysis_test

import (
	"strings"
	"testing"

	"smartsouth/internal/analysis"
	"smartsouth/internal/controller"
	"smartsouth/internal/core"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
	"smartsouth/internal/verify"
)

// statefulDeployment compiles the paper services with the stateful XFSM
// backend side by side on g.
func statefulDeployment(t *testing.T, g *topo.Graph) []*core.Program {
	t.Helper()
	net := network.New(g, network.Options{})
	c := controller.New(net)
	be := core.WithBackend(core.Stateful)
	if _, err := core.InstallSnapshot(c, g, 0, be); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if _, err := core.InstallAnycast(c, g, 1, map[uint32][]int{1: {0, 5}, 2: {10}}, be); err != nil {
		t.Fatalf("anycast: %v", err)
	}
	if _, err := core.InstallBlackholeCounter(c, g, 2, be); err != nil {
		t.Fatalf("blackhole-counter: %v", err)
	}
	if _, err := core.InstallCritical(c, g, 3, be); err != nil {
		t.Fatalf("critical: %v", err)
	}
	return c.Programs()
}

// TestStatefulServicesOnRing20 is the stateful twin of the headline
// smoke check — and the load-bearing test for the configuration-keyed
// walk: the stateful backend keeps the DFS state in switch state tables,
// so a bounce legitimately revisits the same (switch, in-port, packet)
// under a different store. A walk keyed on the packet alone would report
// every traversal as a forwarding loop.
func TestStatefulServicesOnRing20(t *testing.T) {
	g := topo.Ring(20)
	progs := statefulDeployment(t, g)
	fs := analysis.CheckDeployment(progs, g, paperOptions())
	if errs := analysis.Errors(fs); len(errs) != 0 {
		for _, f := range errs {
			t.Errorf("unexpected error finding: %s", f)
		}
		t.Fatalf("%d error findings on a clean stateful deployment", len(errs))
	}
	if warns := analysis.Warnings(fs); len(warns) != 0 {
		for _, f := range warns {
			t.Errorf("unexpected warn finding: %s", f)
		}
	}
}

// TestPortKnockAnalyzesClean lints the knock guard under both backends,
// seeding the knock and guarded EtherTypes as host traffic so the keyed
// state table is exercised with a symbolic (unknown-client) flow key.
func TestPortKnockAnalyzesClean(t *testing.T) {
	for _, be := range core.Backends() {
		t.Run(be.Name(), func(t *testing.T) {
			g := topo.Grid(3, 4)
			net := network.New(g, network.Options{})
			c := controller.New(net)
			if _, err := core.InstallPortKnock(c, g, 0, 11, []uint32{3, 1, 4}, core.WithBackend(be)); err != nil {
				t.Fatal(err)
			}
			opts := paperOptions()
			opts.HostEthTypes = []uint16{core.EthKnock, core.EthGuarded}
			fs := analysis.CheckDeployment(c.Programs(), g, opts)
			if errs := analysis.Errors(fs); len(errs) != 0 {
				for _, f := range errs {
					t.Errorf("unexpected error finding: %s", f)
				}
			}
		})
	}
}

// TestProveDFSOnStatefulSnapshot proves the 4|E| traversal invariant for
// the stateful lowering: same walk as the OF13 proof, but the
// deterministic transition system now spans (packet, switch states).
func TestProveDFSOnStatefulSnapshot(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *topo.Graph
	}{
		{"ring8", topo.Ring(8)},
		{"tree2x2", topo.Tree(2, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := network.New(tc.g, network.Options{})
			c := controller.New(net)
			if _, err := core.InstallSnapshot(c, tc.g, 0, core.WithBackend(core.Stateful)); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			for _, f := range analysis.ProveDFS(c.Programs()[0], tc.g, paperOptions()) {
				t.Errorf("invariant violation: %s", f)
			}
		})
	}
}

// TestStateTableCollisions drives the composition checks specific to
// state tables: two programs writing transitions into the same table is
// an error, and flow rules composed into a table another program claims
// as a state table are dead (the state table wins the ID at execution).
func TestStateTableCollisions(t *testing.T) {
	g := topo.Line(2)
	next := uint64(1)

	mkState := func(name string, slot int) *openflow.Program {
		p := openflow.NewProgram(name, slot)
		p.Ensure(0, g.Degree(0))
		p.AddFlow(0, 0, &openflow.FlowEntry{
			Priority: 100, Match: openflow.MatchEth(ethA), Goto: 1,
			Cookie: name + "/dispatch",
		})
		p.AddState(0, 1, &openflow.StateEntry{
			Priority: 10, AnyState: true, Match: openflow.MatchEth(ethA),
			Actions:  []openflow.Action{openflow.Output{Port: openflow.PortController}},
			SetState: &next, Goto: openflow.NoGoto,
			Cookie: name + "/step",
		})
		return p
	}
	p1 := mkState("efsm-one", 0)
	p2 := mkState("efsm-two", 1) // same state table 1 on sw0!

	p3 := openflow.NewProgram("flows", 2)
	p3.Ensure(0, g.Degree(0))
	p3.AddFlow(0, 1, &openflow.FlowEntry{ // dead: table 1 is efsm-one's state table
		Priority: 5, Match: openflow.MatchEth(ethB), Goto: openflow.NoGoto,
		Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
		Cookie:  "flows/dead",
	})

	fs := analysis.CheckDeployment([]*openflow.Program{p1, p2, p3}, g, analysis.Options{})
	clashes := findingsOf(fs, analysis.KindStateClash)
	if len(clashes) != 2 {
		t.Fatalf("state clashes = %v, want exactly 2 (merge + dual use)", clashes)
	}
	for _, f := range clashes {
		if f.Severity != verify.Err {
			t.Errorf("state clash severity = %v, want Err", f.Severity)
		}
		if !strings.Contains(f.Detail, "efsm-one") {
			t.Errorf("clash does not name the owning service: %s", f.Detail)
		}
	}
}

// TestStatefulLoopDetected pins that the store-keyed walk still catches
// real loops: an EFSM whose only transition bounces the packet back out
// its ingress port without ever changing state ping-pongs forever — the
// configuration (packet, stores) genuinely repeats.
func TestStatefulLoopDetected(t *testing.T) {
	g := topo.Line(2)
	p := openflow.NewProgram("pingpong", 0)
	for sw := 0; sw < g.NumNodes(); sw++ {
		p.Ensure(sw, g.Degree(sw))
		p.AddFlow(sw, 0, &openflow.FlowEntry{
			Priority: 100, Match: openflow.MatchEth(ethA), Goto: 1,
			Cookie: "pingpong/dispatch",
		})
		p.AddState(sw, 1, &openflow.StateEntry{
			Priority: 10, AnyState: true, Match: openflow.MatchEth(ethA).WithInPort(1),
			Actions: []openflow.Action{openflow.Output{Port: openflow.PortInPort}},
			Goto:    openflow.NoGoto,
			Cookie:  "pingpong/bounce",
		})
		p.AddState(sw, 1, &openflow.StateEntry{
			Priority: 1, AnyState: true, Match: openflow.MatchEth(ethA),
			Actions: []openflow.Action{openflow.Output{Port: 1}},
			Goto:    openflow.NoGoto,
			Cookie:  "pingpong/start",
		})
	}
	fs := analysis.CheckDeployment([]*openflow.Program{p}, g, analysis.Options{})
	loops := findingsOf(fs, analysis.KindLoop)
	if len(loops) == 0 {
		t.Fatalf("no loop detected on a state-preserving ping-pong: %v", fs)
	}
	if loops[0].Severity != verify.Err || loops[0].Service != "pingpong" {
		t.Errorf("loop = %+v, want Err blaming pingpong", loops[0])
	}
}

// TestStateTableSlotViolation: with the slot geometry provided, a state
// table outside its program's table range is flagged like a stray rule.
func TestStateTableSlotViolation(t *testing.T) {
	g := topo.Line(2)
	p := openflow.NewProgram("strayefsm", 0)
	p.Ensure(0, g.Degree(0))
	p.AddState(0, 99, &openflow.StateEntry{ // table 99 belongs to slot 9
		Priority: 10, AnyState: true, Match: openflow.MatchEth(ethA),
		Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
		Goto:    openflow.NoGoto,
		Cookie:  "strayefsm/step",
	})
	opts := analysis.Options{
		SlotTables: func(slot int) (int, int) { return 1 + slot*10, 1 + (slot+1)*10 },
	}
	fs := analysis.CheckDeployment([]*openflow.Program{p}, g, opts)
	if got := findingsOf(fs, analysis.KindSlotViolation); len(got) != 1 || got[0].Table != 99 {
		t.Fatalf("slot violations = %v, want exactly 1 at table 99", got)
	}
}
