//go:build !race

package network

// raceEnabled reports whether the race detector is compiled in; see the
// race-tagged counterpart.
const raceEnabled = false
