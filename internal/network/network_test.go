package network

import (
	"testing"

	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

const testEth = 0x88B5

// installForwardAll makes every switch flood any packet out of port 1
// unless it arrived there, in which case it is dropped (enough plumbing to
// push a packet down a line).
func lineForwarding(n *Network) {
	for i := 0; i < n.NumSwitches(); i++ {
		sw := n.Switch(i)
		// Forward "rightwards": anything arriving on port 1 goes out the
		// highest port; port counting on a line: node 0 has port 1 to
		// node 1; interior nodes: port 1 left, port 2 right.
		if sw.NumPorts >= 2 {
			sw.AddFlow(0, &openflow.FlowEntry{Priority: 1,
				Match: openflow.MatchAll().WithInPort(1), Goto: openflow.NoGoto,
				Actions: []openflow.Action{openflow.Output{Port: 2}}, Cookie: "right"})
		} else if i != 0 {
			// Last node: deliver to self.
			sw.AddFlow(0, &openflow.FlowEntry{Priority: 1,
				Match: openflow.MatchAll().WithInPort(1), Goto: openflow.NoGoto,
				Actions: []openflow.Action{openflow.Output{Port: openflow.PortSelf}}, Cookie: "sink"})
		}
	}
}

func TestDeliveryAcrossALine(t *testing.T) {
	g := topo.Line(5)
	n := New(g, Options{})
	lineForwarding(n)

	var got []int
	n.OnSelf = func(sw int, pkt *openflow.Packet) { got = append(got, sw) }

	pkt := openflow.NewPacket(testEth, 2)
	// Inject at switch 0 as if arriving from a host on... node 0 has only
	// port 1; give it a direct send rule instead: process with InPort
	// that misses and use explicit injection at node 1.
	n.Inject(1, 1, pkt, 0)
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("delivered to %v, want [4]", got)
	}
	// 3 link crossings: 1->2, 2->3, 3->4.
	if n.InBandCount(testEth) != 3 {
		t.Errorf("in-band msgs = %d, want 3", n.InBandCount(testEth))
	}
	if n.Sim.Now() != 3*1000 {
		t.Errorf("clock = %d, want 3000 (3 hops at 1µs)", n.Sim.Now())
	}
}

func TestLinkDownUpdatesLivenessAndDrops(t *testing.T) {
	g := topo.Line(3)
	n := New(g, Options{})
	lineForwarding(n)
	if err := n.SetLinkDown(1, 2, true); err != nil {
		t.Fatal(err)
	}
	if n.Switch(1).PortLive(2) || n.Switch(2).PortLive(1) {
		t.Error("liveness should be down on both endpoints")
	}
	delivered := 0
	n.OnSelf = func(int, *openflow.Packet) { delivered++ }
	n.Inject(1, 1, openflow.NewPacket(testEth, 2), 0)
	n.Run()
	if delivered != 0 {
		t.Error("packet crossed a down link")
	}
	l := n.LinkBetween(1, 2)
	if l.StatsAB.Sent != 1 || l.StatsAB.Dropped != 1 || l.StatsAB.Delivered != 0 {
		t.Errorf("stats = %+v", l.StatsAB)
	}

	if err := n.SetLinkDown(1, 2, false); err != nil {
		t.Fatal(err)
	}
	if !n.Switch(1).PortLive(2) {
		t.Error("liveness should be restored")
	}
}

func TestBlackholeInvisibleToLiveness(t *testing.T) {
	g := topo.Line(3)
	n := New(g, Options{})
	lineForwarding(n)
	if err := n.SetBlackhole(1, 2, false); err != nil {
		t.Fatal(err)
	}
	if !n.Switch(1).PortLive(2) {
		t.Error("blackhole must not affect liveness")
	}
	hops := 0
	var lost bool
	n.OnHop = func(h Hop, _ *openflow.Packet, delivered bool) {
		hops++
		if !delivered {
			lost = h.From == 1 && h.To == 2
		}
	}
	n.Inject(1, 1, openflow.NewPacket(testEth, 2), 0)
	n.Run()
	if hops != 1 || !lost {
		t.Errorf("hops=%d lost=%v; want the single hop swallowed at 1->2", hops, lost)
	}
	// The reverse direction still works.
	l := n.LinkBetween(1, 2)
	if l.modeBA != LinkUp {
		t.Error("unidirectional blackhole changed the reverse direction")
	}
}

func TestLossyLinkDropsStatistically(t *testing.T) {
	g := topo.Line(2)
	n := New(g, Options{Seed: 7})
	// node 0 port 1 <-> node 1 port 1; bounce rule at node 1 sends back.
	n.Switch(1).AddFlow(0, &openflow.FlowEntry{Priority: 1,
		Match: openflow.MatchAll(), Goto: openflow.NoGoto,
		Actions: []openflow.Action{openflow.Output{Port: openflow.PortSelf}}, Cookie: "sink"})
	if err := n.SetLoss(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	n.OnSelf = func(int, *openflow.Packet) { delivered++ }
	const trials = 2000
	for i := 0; i < trials; i++ {
		n.Inject(0, openflow.PortController, openflow.NewPacket(testEth, 1), Time(i))
	}
	// Give node 0 a rule that forwards controller-injected packets.
	n.Switch(0).AddFlow(0, &openflow.FlowEntry{Priority: 1,
		Match: openflow.MatchAll(), Goto: openflow.NoGoto,
		Actions: []openflow.Action{openflow.Output{Port: 1}}, Cookie: "tx"})
	n.Run()
	if delivered < trials*35/100 || delivered > trials*65/100 {
		t.Errorf("delivered %d of %d with 50%% loss", delivered, trials)
	}
	l := n.LinkBetween(0, 1)
	if l.StatsAB.Sent != trials || l.StatsAB.Delivered != delivered {
		t.Errorf("stats %+v vs delivered=%d", l.StatsAB, delivered)
	}
}

func TestPacketInReachesController(t *testing.T) {
	g := topo.Line(2)
	n := New(g, Options{})
	n.Switch(0).AddFlow(0, &openflow.FlowEntry{Priority: 1,
		Match: openflow.MatchAll(), Goto: openflow.NoGoto,
		Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}}, Cookie: "punt"})
	var from int
	count := 0
	n.OnPacketIn = func(sw int, pkt *openflow.Packet) { from = sw; count++ }
	n.Inject(0, 1, openflow.NewPacket(testEth, 1), 0)
	n.Run()
	if count != 1 || from != 0 {
		t.Errorf("packet-in count=%d from=%d", count, from)
	}
	// Controller traffic is out-of-band: no in-band accounting.
	if n.TotalInBand() != 0 {
		t.Error("packet-in must not count as in-band")
	}
}

func TestEventLimitCatchesForwardingLoops(t *testing.T) {
	g := topo.Line(2)
	n := New(g, Options{MaxSteps: 500})
	for i := 0; i < 2; i++ {
		n.Switch(i).AddFlow(0, &openflow.FlowEntry{Priority: 1,
			Match: openflow.MatchAll(), Goto: openflow.NoGoto,
			Actions: []openflow.Action{openflow.Output{Port: openflow.PortInPort}}, Cookie: "pingpong"})
	}
	n.Inject(0, 1, openflow.NewPacket(testEth, 1), 0)
	if _, err := n.Run(); err == nil {
		t.Fatal("expected ErrEventLimit")
	} else if _, ok := err.(ErrEventLimit); !ok {
		t.Fatalf("wrong error type: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		g := topo.RandomConnected(10, 5, 3)
		n := New(g, Options{Seed: 9})
		for i := 0; i < n.NumSwitches(); i++ {
			sw := n.Switch(i)
			sw.AddFlow(0, &openflow.FlowEntry{Priority: 1,
				Match: openflow.MatchAll(), Goto: openflow.NoGoto,
				Actions: []openflow.Action{openflow.Output{Port: 1}}, Cookie: "p1"})
		}
		var hops []int
		n.OnHop = func(h Hop, _ *openflow.Packet, _ bool) { hops = append(hops, h.From*100+h.To) }
		n.Sim.MaxSteps = 200
		n.Inject(0, openflow.PortController, openflow.NewPacket(testEth, 1), 0)
		n.Run()
		return hops
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic run length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hop %d differs", i)
		}
	}
}

func TestResetAccounting(t *testing.T) {
	g := topo.Line(3)
	n := New(g, Options{})
	lineForwarding(n)
	n.Inject(1, 1, openflow.NewPacket(testEth, 1), 0)
	n.Run()
	if n.TotalInBand() == 0 {
		t.Fatal("expected traffic")
	}
	n.ResetAccounting()
	if n.TotalInBand() != 0 || n.LinkBetween(1, 2).StatsAB.Sent != 0 {
		t.Error("accounting not cleared")
	}
}
