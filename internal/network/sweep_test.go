package network

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// lineJob builds a line of the given size and walks one packet from node 0
// to the far end (on Line(n), an internal node's port 1 faces its lower
// neighbour and port 2 its upper one), returning the in-band message
// count — a self-contained simulation suitable for fanning out. The walk
// crosses every link once, so the expected count is size-1.
func lineJob(size int) (int, error) {
	g := topo.Line(size)
	n := New(g, Options{})
	for i := 0; i < n.NumSwitches(); i++ {
		n.Switch(i).AddFlow(0, &openflow.FlowEntry{
			Priority: 1, Match: openflow.MatchAll().WithInPort(1),
			Actions: []openflow.Action{openflow.Output{Port: 2}},
			Goto:    openflow.NoGoto, Cookie: "fwd",
		})
		n.Switch(i).AddFlow(0, &openflow.FlowEntry{
			Priority: 0, Match: openflow.MatchAll(),
			Actions: []openflow.Action{openflow.Output{Port: 1}},
			Goto:    openflow.NoGoto, Cookie: "start",
		})
	}
	pkt := openflow.NewPacket(0x0900, 0)
	n.Inject(0, openflow.PortController, pkt, 0)
	if _, err := n.Run(); err != nil {
		return 0, err
	}
	return n.TotalInBand(), nil
}

// TestSweepMatchesSequential fans a mixed-size batch of simulations across
// the worker pool and asserts every job's result is identical to the
// sequential reference — the correctness contract of the runner. Run under
// -race this also proves the jobs share no unsynchronised state (the
// packet freelist in particular).
func TestSweepMatchesSequential(t *testing.T) {
	sizes := []int{4, 8, 16, 32, 4, 8, 16, 32, 64, 5, 7, 9}

	seq := make([]int, len(sizes))
	if err := Sweep(len(sizes), 1, func(i int) error {
		v, err := lineJob(sizes[i])
		seq[i] = v
		return err
	}); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 2, 4, len(sizes) + 5} {
		par := make([]int, len(sizes))
		if err := Sweep(len(sizes), workers, func(i int) error {
			v, err := lineJob(sizes[i])
			par[i] = v
			return err
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range sizes {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d job %d: in-band %d, sequential %d",
					workers, i, par[i], seq[i])
			}
		}
	}
}

// TestSweepJoinsErrors checks that every failing job's error surfaces,
// regardless of which worker ran it.
func TestSweepJoinsErrors(t *testing.T) {
	err := Sweep(10, 3, func(i int) error {
		if i%4 == 0 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("want joined error, got nil")
	}
	for _, i := range []int{0, 4, 8} {
		if want := fmt.Sprintf("job %d failed", i); !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

// TestSweepZeroJobs exercises the degenerate edges.
func TestSweepZeroJobs(t *testing.T) {
	if err := Sweep(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := Sweep(1, -1, func(i int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("single job did not run")
	}
}

// reusableLine is the per-worker state of the SweepWith tests: one
// pre-built line network plus a count of the iterations it has served.
// Each measurement resets accounting, walks one packet end to end, and
// returns the in-band count — identical on every iteration precisely
// because the reset discipline works.
type reusableLine struct {
	n    *Network
	size int
	runs int
}

func newReusableLine(size int) *reusableLine {
	g := topo.Line(size)
	n := New(g, Options{})
	for i := 0; i < n.NumSwitches(); i++ {
		n.Switch(i).AddFlow(0, &openflow.FlowEntry{
			Priority: 1, Match: openflow.MatchAll().WithInPort(1),
			Actions: []openflow.Action{openflow.Output{Port: 2}},
			Goto:    openflow.NoGoto, Cookie: "fwd",
		})
		n.Switch(i).AddFlow(0, &openflow.FlowEntry{
			Priority: 0, Match: openflow.MatchAll(),
			Actions: []openflow.Action{openflow.Output{Port: 1}},
			Goto:    openflow.NoGoto, Cookie: "start",
		})
	}
	return &reusableLine{n: n, size: size}
}

func (r *reusableLine) measure() (int, error) {
	r.runs++
	r.n.ResetAccounting()
	r.n.Inject(0, openflow.PortController, openflow.NewPacket(0x0900, 0), r.n.Sim.Now())
	if _, err := r.n.Run(); err != nil {
		return 0, err
	}
	return r.n.TotalInBand(), nil
}

// TestSweepWithReusesState checks the amortization contract: every live
// worker builds its network exactly once, all iterations land on one of
// those networks, and the measurements still match a fresh-network
// sequential reference. Under -race this also proves per-worker states
// need no synchronisation of their own.
func TestSweepWithReusesState(t *testing.T) {
	const jobs, size = 16, 12
	want, err := lineJob(size)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		built := make([]*reusableLine, workers)
		out := make([]int, jobs)
		err := SweepWith(jobs, workers,
			func(w int) *reusableLine {
				if built[w] != nil {
					t.Errorf("worker %d built its state twice", w)
				}
				built[w] = newReusableLine(size)
				return built[w]
			},
			func(st *reusableLine, i int) error {
				v, err := st.measure()
				out[i] = v
				return err
			})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for w, st := range built {
			if st == nil {
				t.Fatalf("workers=%d: worker %d never built state", workers, w)
			}
			total += st.runs
		}
		if total != jobs {
			t.Fatalf("workers=%d: %d runs across states, want %d", workers, total, jobs)
		}
		for i, v := range out {
			if v != want {
				t.Fatalf("workers=%d job %d: in-band %d, fresh network %d", workers, i, v, want)
			}
		}
	}
}

// TestSweepWithJoinsErrors mirrors TestSweepJoinsErrors on the stateful
// variant: failures surface regardless of which worker's state ran them.
func TestSweepWithJoinsErrors(t *testing.T) {
	err := SweepWith(9, 2,
		func(w int) int { return w },
		func(_ int, i int) error {
			if i%3 == 0 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
	if err == nil {
		t.Fatal("want joined error, got nil")
	}
	for _, i := range []int{0, 3, 6} {
		if want := fmt.Sprintf("job %d failed", i); !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}
