package network

import (
	"testing"

	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

func TestLinkModeStrings(t *testing.T) {
	for m, want := range map[LinkMode]string{
		LinkUp: "up", LinkDown: "down", LinkBlackhole: "blackhole", LinkLossy: "lossy",
	} {
		if m.String() != want {
			t.Errorf("%d: %q", m, m.String())
		}
	}
}

func TestLinksAccessorAndErrors(t *testing.T) {
	g := topo.Ring(4)
	n := New(g, Options{})
	if len(n.Links()) != 4 {
		t.Errorf("links = %d", len(n.Links()))
	}
	if err := n.SetLinkDown(0, 2, true); err == nil {
		t.Error("non-adjacent SetLinkDown accepted")
	}
	if err := n.SetBlackhole(0, 2, false); err == nil {
		t.Error("non-adjacent SetBlackhole accepted")
	}
	if err := n.SetLoss(0, 2, 0.5); err == nil {
		t.Error("non-adjacent SetLoss accepted")
	}
	if err := n.ScheduleLinkDown(0, 2, true, 5); err == nil {
		t.Error("non-adjacent ScheduleLinkDown accepted")
	}
	if (ErrEventLimit{Steps: 5}).Error() == "" {
		t.Error("empty error string")
	}
}

func TestScheduledLinkDownFiresAtTime(t *testing.T) {
	g := topo.Line(2)
	n := New(g, Options{})
	if err := n.ScheduleLinkDown(0, 1, true, 500); err != nil {
		t.Fatal(err)
	}
	if !n.Switch(0).PortLive(1) {
		t.Fatal("port must still be up before the event fires")
	}
	// Drive time past the scheduled failure with a no-op injection.
	n.Inject(0, openflow.PortController, openflow.NewPacket(1, 1), 1_000)
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Switch(0).PortLive(1) {
		t.Error("scheduled failure did not fire")
	}
}

func TestReverseBlackholeDirectionSelection(t *testing.T) {
	g := topo.Line(2)
	n := New(g, Options{})
	// SetBlackhole(v, u): the caller names the transmit side; setting it
	// from the B-endpoint must blackhole B->A only.
	if err := n.SetBlackhole(1, 0, false); err != nil {
		t.Fatal(err)
	}
	l := n.LinkBetween(0, 1)
	if l.modeBA != LinkBlackhole || l.modeAB != LinkUp {
		t.Errorf("modes: AB=%v BA=%v", l.modeAB, l.modeBA)
	}
	// Bidirectional from the B side covers both.
	if err := n.SetBlackhole(1, 0, true); err != nil {
		t.Fatal(err)
	}
	if l.modeAB != LinkBlackhole {
		t.Error("bidirectional blackhole missed AB")
	}
}
