package network

import (
	"fmt"
	"math/rand"

	"smartsouth/internal/openflow"
	"smartsouth/internal/telemetry"
	"smartsouth/internal/topo"
)

// Hop mirrors topo.Hop for recorded in-band traversals.
type Hop = topo.Hop

// Options configures a Network.
type Options struct {
	// LinkDelay is the one-way latency of every link (default 1µs).
	LinkDelay Time
	// Seed seeds the loss process of lossy links.
	Seed int64
	// MaxSteps bounds events per Run (see Sim.MaxSteps).
	MaxSteps int
	// NoTelemetry disables the always-on instrumentation (per-event
	// counters, latency histograms, flight recorder) for this network.
	// The telemetry-off arm of the overhead benchmark uses it; everything
	// else should leave it false.
	NoTelemetry bool
	// FlightCap sizes the flight-recorder ring: 0 selects the default
	// capacity, negative disables the recorder while keeping the rest of
	// the telemetry on.
	FlightCap int
}

// ethCounter is one interned per-EtherType accounting slot. The hot path
// bumps these by index; the public map views are rebuilt on demand.
type ethCounter struct {
	eth   uint16
	msgs  int
	bytes int
}

// Network instantiates one openflow.Switch per graph node, one Link per
// edge, and moves packets between them under the discrete-event clock.
//
// Attachment points:
//   - OnPacketIn receives every packet a switch sends to PortController
//     (the out-of-band control channel; package controller counts these).
//   - OnSelf receives every packet delivered to PortSelf (the switch-local
//     host, e.g. an anycast receiver).
//   - OnHop, if set, observes every attempted link crossing, delivered or
//     not — the ground-truth trace tests compare against the golden model.
//
// Packet ownership: packets passed to OnPacketIn and OnSelf belong to the
// callback and may be retained. Packets seen by hop observers are only
// valid for the duration of the callback — the simulator recycles them
// once processed.
type Network struct {
	Sim   *Sim
	Graph *topo.Graph

	OnPacketIn func(sw int, pkt *openflow.Packet)
	OnSelf     func(sw int, pkt *openflow.Packet)
	OnHop      func(hop Hop, pkt *openflow.Packet, delivered bool)
	// OnPortChange observes port liveness flips — the information a real
	// switch reports with OFPT_PORT_STATUS.
	OnPortChange func(sw, port int, up bool)

	switches []*openflow.Switch
	links    []*Link // indexed like Graph.Edges()
	// portLinks[sw][port] is the link attached to (sw, port), nil for
	// unconnected ports — a dense replacement for the old (switch, port)
	// map, probed once per transmission.
	portLinks [][]*Link
	delay     Time
	execObs   []ExecObserver
	hopObs    []HopObserver

	// Batched execution scratch for this network's single-threaded event
	// loop: the execution context handed to ExecBatch, the packet and
	// Result views of the current batch, the flight-recorder slots claimed
	// for the batch, and the pre-execution observer clones. All are reset
	// and reused on every batch so the steady-state hop path does not
	// allocate.
	xc       *openflow.ExecContext
	batchIn  []*openflow.Packet
	batchRes []openflow.Result
	batchRec []*telemetry.FlightRecord
	batchPre []*openflow.Packet

	// Interned in-band accounting (the "in-band #msgs / size" columns of
	// Table 2). Every transmission attempt counts (a message swallowed by
	// a blackhole was still sent). lastIdx caches the slot of the most
	// recently counted EtherType: traversals send long runs of one type,
	// so the common case is a single comparison instead of a map probe.
	counters []ethCounter
	ethIdx   map[uint16]int
	lastIdx  int

	// Flight recorder and its per-EtherType tag decoders (telemetry.go);
	// nil/empty when telemetry is off. prevLookups/prevScanned remember
	// the switches' cumulative FlowTable scan stats at the last flush so
	// Run can publish deltas.
	flightDec []flightDecoder
	lastDec   int
	flight    *telemetry.Flight

	prevMatcher    uint64
	prevFallback   uint64
	prevScanned    uint64
	prevCommits    uint64
	prevFlightRecs uint64
}

// New builds a network for the graph.
func New(g *topo.Graph, opts Options) *Network {
	if opts.LinkDelay == 0 {
		opts.LinkDelay = 1000 // 1µs
	}
	n := &Network{
		Sim:    &Sim{MaxSteps: opts.MaxSteps},
		Graph:  g,
		delay:  opts.LinkDelay,
		ethIdx: make(map[uint16]int),
		xc:     openflow.NewExecContext(),
	}
	n.Sim.net = n
	if !opts.NoTelemetry {
		n.Sim.stats = &telemetry.SimLocal{}
		if opts.FlightCap >= 0 {
			n.flight = telemetry.NewFlight(opts.FlightCap)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	n.switches = make([]*openflow.Switch, g.NumNodes())
	n.portLinks = make([][]*Link, g.NumNodes())
	for i := range n.switches {
		n.switches[i] = openflow.NewSwitch(i, g.Degree(i))
		n.portLinks[i] = make([]*Link, g.Degree(i)+1)
	}
	for _, e := range g.Edges() {
		l := &Link{A: e.U, B: e.V, PortA: e.PU, PortB: e.PV, Delay: opts.LinkDelay,
			rng: rand.New(rand.NewSource(rng.Int63()))}
		n.links = append(n.links, l)
		n.portLinks[e.U][e.PU] = l
		n.portLinks[e.V][e.PV] = l
	}
	return n
}

// ExecObserver observes one pipeline execution: the switch that ran it,
// the ingress port, the packet as it arrived (pre-execution state), and
// the execution result, whose Steps/GroupSteps record the matched rules
// and group-bucket choices when structured recording is on.
type ExecObserver func(sw, inPort int, pkt *openflow.Packet, res *openflow.Result)

// HopObserver observes one attempted link crossing, delivered or not —
// the same signature as the legacy OnHop field.
type HopObserver func(hop Hop, pkt *openflow.Packet, delivered bool)

// ObserveExec registers an execution observer and turns on structured
// step recording on every switch. Unlike the OnHop/OnPacketIn fields,
// observers are additive: several subsystems (trace, metrics, tests) can
// watch the same network without clobbering each other.
func (n *Network) ObserveExec(fn ExecObserver) {
	n.execObs = append(n.execObs, fn)
	for _, sw := range n.switches {
		sw.Record = true
	}
}

// ObserveHops registers an additional hop observer. The legacy OnHop field
// keeps working; observers fire after it.
func (n *Network) ObserveHops(fn HopObserver) {
	n.hopObs = append(n.hopObs, fn)
}

// Switch returns the switch for node id.
func (n *Network) Switch(id int) *openflow.Switch { return n.switches[id] }

// NumSwitches returns the number of switches.
func (n *Network) NumSwitches() int { return len(n.switches) }

// linkAt returns the link attached to (sw, port), or nil.
func (n *Network) linkAt(sw, port int) *Link {
	pl := n.portLinks[sw]
	if port < 1 || port >= len(pl) {
		return nil
	}
	return pl[port]
}

// LinkBetween returns the link connecting u and v, or nil.
func (n *Network) LinkBetween(u, v int) *Link {
	p := n.Graph.PortTo(u, v)
	if p == 0 {
		return nil
	}
	return n.linkAt(u, p)
}

// Links returns all links, indexed like Graph.Edges().
func (n *Network) Links() []*Link { return n.links }

// refreshLiveness recomputes the port liveness of both link endpoints.
func (n *Network) refreshLiveness(l *Link) {
	up := l.liveFor()
	n.setPortLive(l.A, l.PortA, up)
	n.setPortLive(l.B, l.PortB, up)
}

func (n *Network) setPortLive(sw, port int, up bool) {
	if n.switches[sw].PortLive(port) == up {
		return
	}
	n.switches[sw].SetPortLive(port, up)
	if n.OnPortChange != nil {
		n.OnPortChange(sw, port, up)
	}
}

// SetLinkDown takes the u-v link down (both directions, visible to
// liveness) or back up.
func (n *Network) SetLinkDown(u, v int, down bool) error {
	l := n.LinkBetween(u, v)
	if l == nil {
		return fmt.Errorf("network: no link %d-%d", u, v)
	}
	mode := LinkUp
	if down {
		mode = LinkDown
	}
	l.modeAB, l.modeBA = mode, mode
	n.refreshLiveness(l)
	return nil
}

// SetBlackhole makes the u->v direction (and, if bidirectional, also
// v->u) silently drop everything while liveness stays up.
func (n *Network) SetBlackhole(u, v int, bidirectional bool) error {
	l := n.LinkBetween(u, v)
	if l == nil {
		return fmt.Errorf("network: no link %d-%d", u, v)
	}
	if u == l.A {
		l.modeAB = LinkBlackhole
		if bidirectional {
			l.modeBA = LinkBlackhole
		}
	} else {
		l.modeBA = LinkBlackhole
		if bidirectional {
			l.modeAB = LinkBlackhole
		}
	}
	n.refreshLiveness(l)
	return nil
}

// ScheduleLinkDown schedules a link failure (or repair) at simulation
// time at — the tool for studying failures *during* a traversal, which
// the paper's model excludes and delegates to controller-side retries.
func (n *Network) ScheduleLinkDown(u, v int, down bool, at Time) error {
	if n.LinkBetween(u, v) == nil {
		return fmt.Errorf("network: no link %d-%d", u, v)
	}
	n.Sim.At(at, func() { _ = n.SetLinkDown(u, v, down) })
	return nil
}

// SetLoss makes both directions of the u-v link drop packets independently
// with probability p.
func (n *Network) SetLoss(u, v int, p float64) error {
	l := n.LinkBetween(u, v)
	if l == nil {
		return fmt.Errorf("network: no link %d-%d", u, v)
	}
	l.modeAB, l.modeBA = LinkLossy, LinkLossy
	l.lossAB, l.lossBA = p, p
	n.refreshLiveness(l)
	return nil
}

// Inject schedules pkt to be processed by switch sw as if it arrived on
// inPort at time t. Use openflow.PortController as inPort for packet-outs.
// The caller keeps ownership of pkt: it is cloned at call time.
func (n *Network) Inject(sw int, inPort int, pkt *openflow.Packet, t Time) {
	if st := n.Sim.stats; st != nil {
		st.PoolGets++
	}
	n.Sim.schedule(t, event{kind: evProcess, sw: sw, port: inPort, pkt: pkt.ClonePooled()})
}

// InjectActions schedules an action-list packet-out at switch sw (an
// OFPT_PACKET_OUT that bypasses the tables), e.g. the LLDP probes of the
// baseline discovery app.
func (n *Network) InjectActions(sw int, actions []openflow.Action, pkt *openflow.Packet, t Time) {
	p := pkt.ClonePooled()
	n.Sim.At(t, func() {
		res := n.switches[sw].Execute(p, actions)
		if st := n.Sim.stats; st != nil {
			// The clone above, Execute's internal clone, and one per
			// emission — minus the emission that took the internal clone
			// itself when Execute reports it stolen.
			gets := 2 + uint64(len(res.Emissions))
			if res.StoleInput {
				gets--
			}
			st.PoolGets += gets
		}
		for _, ob := range n.execObs {
			ob(sw, openflow.PortController, p, &res)
		}
		n.dispatch(sw, &res)
		p.Release()
	})
}

// processBatch runs one batch of arrivals at a single switch through the
// pipeline (one ExecBatch call) and dispatches each result in arrival
// order, consuming the arrival packets: each is either forwarded onward
// as its result's stolen emission (the unicast fast path — the packet
// that arrived is the packet that leaves, no copy) or released here.
// Execution mutates arrivals in place, so anything that must see
// pre-execution state — the flight recorder's tag decode, the exec
// observers' packet view — is captured or cloned before ExecBatch runs.
// The emissions of each result are consumed synchronously by dispatch,
// so nothing outlives the call.
func (n *Network) processBatch(evs []event) {
	swID := evs[0].sw
	in := n.batchIn[:0]
	for i := range evs {
		p := evs[i].pkt
		p.InPort = evs[i].port
		in = append(in, p)
	}
	n.batchIn = in
	for cap(n.batchRes) < len(evs) {
		n.batchRes = append(n.batchRes[:cap(n.batchRes)], openflow.Result{})
	}
	res := n.batchRes[:len(evs)]

	st := n.Sim.stats
	var recs []*telemetry.FlightRecord
	if st != nil && n.flight != nil && len(in) <= n.flight.Cap() {
		// Claim one ring slot per arrival and decode the tag state straight
		// into it, before execution rewrites the packets in place: the
		// record documents the packet as it arrived. The result fields are
		// filled in after ExecBatch — and before dispatch claims any
		// further slots, so with the batch bounded by the ring capacity no
		// claimed slot can be recycled while it is still pending. A batch
		// larger than the whole ring (degenerate; the ring would retain
		// only its tail anyway) goes unrecorded.
		recs = n.batchRec[:0]
		at := int64(n.Sim.now)
		for _, p := range in {
			r := n.flight.Slot()
			r.At = at
			r.Kind = telemetry.FlightExec
			r.Sw = int16(swID)
			r.Port = int16(p.InPort)
			r.Eth = p.EthType
			if d := n.decoderFor(p.EthType); d != nil {
				r.NumTags = d.n
				r.NameIdx = d.nameIdx
				d.capture(swID, p.Tag, &r.Tags)
			}
			recs = append(recs, r)
		}
		n.batchRec = recs
	}
	if len(n.execObs) > 0 {
		// Observers are promised the pre-execution packet; clone only in
		// observed (traced/metered) runs so the plain hot path stays one
		// clone cheaper.
		pre := n.batchPre[:0]
		for _, p := range in {
			pre = append(pre, p.ClonePooled())
		}
		n.batchPre = pre
		if st != nil {
			st.PoolGets += uint64(len(pre))
		}
	}

	n.switches[swID].ExecBatch(n.xc, in, res)

	if recs != nil {
		// Complete every claimed exec record before dispatching anything:
		// dispatch records sends and deliveries, and its slot claims must
		// come after the batch's pending fills (see the claim loop above).
		for i := range recs {
			r := &res[i]
			rec := recs[i]
			rec.Matched = r.Matched
			n.flight.SetCookie(rec, r.LastCookie)
			rec.Group = r.LastGroup
			rec.Bucket = r.LastBucket
			recs[i] = nil
		}
	}
	for i := range evs {
		r := &res[i]
		if st != nil {
			// One pool clone per emission, minus the emission that took
			// the arriving packet itself (the unicast fast path; see
			// Result.StoleInput).
			gets := uint64(len(r.Emissions))
			if r.StoleInput {
				gets--
			}
			st.PoolGets += gets
		}
		for _, ob := range n.execObs {
			ob(swID, evs[i].port, n.batchPre[i], r)
		}
		n.dispatch(swID, r)
	}
	for i := range n.batchPre {
		n.batchPre[i].Release()
		n.batchPre[i] = nil
	}
	n.batchPre = n.batchPre[:0]
	for i := range in {
		// The batch owns the arrivals: release each unless execution
		// forwarded it onward as an emission, then drop the reference so
		// the scratch does not pin it.
		if !res[i].StoleInput {
			in[i].Release()
		}
		in[i] = nil
	}
	n.batchIn = in[:0]
}

// dispatch routes pipeline emissions to links, the controller, or the
// local host. It consumes the emission packets: every packet is either
// handed to an attachment callback (which takes ownership), scheduled for
// delivery (released after processing), or released here.
func (n *Network) dispatch(sw int, res *openflow.Result) {
	for _, em := range res.Emissions {
		switch {
		case em.Port == openflow.PortController:
			if n.OnPacketIn != nil {
				n.Sim.schedule(n.Sim.now, event{kind: evPacketIn, sw: sw, pkt: em.Pkt})
			} else {
				em.Pkt.Release()
			}
		case em.Port == openflow.PortSelf:
			if n.OnSelf != nil {
				n.Sim.schedule(n.Sim.now, event{kind: evSelf, sw: sw, pkt: em.Pkt})
			} else {
				em.Pkt.Release()
			}
		case em.Port >= 1:
			n.send(sw, em.Port, em.Pkt)
		default:
			em.Pkt.Release()
		}
	}
}

// countInBand bumps the interned per-EtherType transmission counters.
func (n *Network) countInBand(eth uint16, size int) {
	idx := n.lastIdx
	if idx >= len(n.counters) || n.counters[idx].eth != eth {
		var ok bool
		idx, ok = n.ethIdx[eth]
		if !ok {
			idx = len(n.counters)
			n.counters = append(n.counters, ethCounter{eth: eth})
			n.ethIdx[eth] = idx
		}
		n.lastIdx = idx
	}
	c := &n.counters[idx]
	c.msgs++
	c.bytes += size
}

// send puts a packet on the link attached to (sw, port), taking ownership
// of pkt.
func (n *Network) send(sw, port int, pkt *openflow.Packet) {
	l := n.linkAt(sw, port)
	if l == nil {
		// Unconnected port: frame disappears, like real hardware.
		pkt.Release()
		return
	}
	n.countInBand(pkt.EthType, pkt.Size())
	to, toPort, delivered := l.transmit(sw)
	if st := n.Sim.stats; st != nil {
		st.Hops++
		if !delivered {
			st.HopsDropped++
			// Only failed transmissions earn a ring entry: a delivered
			// hop is already visible as the receiving switch's exec
			// record, while a drop is precisely the event a post-mortem
			// needs and would otherwise be invisible.
			if n.flight != nil {
				r := n.flight.Slot()
				r.At = int64(n.Sim.now)
				r.Kind = telemetry.FlightSend
				r.Sw = int16(sw)
				r.Port = int16(port)
				r.To = int16(to)
				r.ToPort = int16(toPort)
				r.Eth = pkt.EthType
			}
		}
	}
	if n.OnHop != nil || len(n.hopObs) > 0 {
		h := Hop{From: sw, FromPort: port, To: to, ToPort: toPort}
		if n.OnHop != nil {
			n.OnHop(h, pkt, delivered)
		}
		for _, ob := range n.hopObs {
			ob(h, pkt, delivered)
		}
	}
	if !delivered {
		pkt.Release()
		return
	}
	n.Sim.schedule(n.Sim.now+l.Delay, event{kind: evProcess, sw: to, port: toPort, pkt: pkt})
}

// InBandMsgs returns the per-EtherType link-transmission counts as a map,
// rebuilt from the interned counters on every call. Use InBandCount for a
// single EtherType on a hot path.
func (n *Network) InBandMsgs() map[uint16]int {
	out := make(map[uint16]int, len(n.counters))
	for _, c := range n.counters {
		if c.msgs > 0 {
			out[c.eth] = c.msgs
		}
	}
	return out
}

// InBandBytes returns the per-EtherType transmitted byte counts as a map,
// rebuilt on every call. Use InBandSize for a single EtherType.
func (n *Network) InBandBytes() map[uint16]int {
	out := make(map[uint16]int, len(n.counters))
	for _, c := range n.counters {
		if c.msgs > 0 {
			out[c.eth] = c.bytes
		}
	}
	return out
}

// InBandCount returns the transmission count of one EtherType.
func (n *Network) InBandCount(eth uint16) int {
	if idx, ok := n.ethIdx[eth]; ok {
		return n.counters[idx].msgs
	}
	return 0
}

// InBandSize returns the transmitted bytes of one EtherType.
func (n *Network) InBandSize(eth uint16) int {
	if idx, ok := n.ethIdx[eth]; ok {
		return n.counters[idx].bytes
	}
	return 0
}

// TotalInBand sums message counts across all EtherTypes.
func (n *Network) TotalInBand() int {
	total := 0
	for _, c := range n.counters {
		total += c.msgs
	}
	return total
}

// ResetAccounting clears the in-band counters (link DirStats included) so
// an experiment can measure a single phase. The EtherType intern table
// survives — only the counts reset.
func (n *Network) ResetAccounting() {
	for i := range n.counters {
		n.counters[i].msgs = 0
		n.counters[i].bytes = 0
	}
	for _, l := range n.links {
		l.StatsAB = DirStats{}
		l.StatsBA = DirStats{}
	}
}
