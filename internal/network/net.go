package network

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"smartsouth/internal/openflow"
	"smartsouth/internal/telemetry"
	"smartsouth/internal/topo"
)

// Hop mirrors topo.Hop for recorded in-band traversals.
type Hop = topo.Hop

// Options configures a Network.
type Options struct {
	// LinkDelay is the one-way latency of every link (default 1µs).
	LinkDelay Time
	// Seed seeds the loss process of lossy links.
	Seed int64
	// MaxSteps bounds events per Run (see Sim.MaxSteps).
	MaxSteps int
	// NoTelemetry disables the always-on instrumentation (per-event
	// counters, latency histograms, flight recorder) for this network.
	// The telemetry-off arm of the overhead benchmark uses it; everything
	// else should leave it false.
	NoTelemetry bool
	// FlightCap sizes the flight-recorder ring: 0 selects the default
	// capacity, negative disables the recorder while keeping the rest of
	// the telemetry on.
	FlightCap int
	// Shards partitions the topology across this many shards, each owning
	// a subset of switches with its own event heap, execution scratch,
	// in-band counters and flight ring, synchronized by conservative time
	// windows (shard.go). <= 1 (the default) keeps the classic
	// single-loop simulator, whose behaviour is byte-identical to
	// pre-shard builds; > 1 is deterministic for any fixed shard count
	// but may order simultaneous independent events differently than the
	// single loop. Clamped to the node count.
	Shards int
	// Timeline, when positive, enables the causal traversal tracer with a
	// per-lane span ring of this capacity: every packet injected via
	// Inject gets a trace id, and every pipeline execution it or any of
	// its descendants flows through is recorded as a SpanRecord whose
	// Parent edge reconstructs the traversal tree (internal/trace builds
	// the trees, internal/dump renders them). Independent of NoTelemetry
	// so the overhead benchmark can isolate the tracer's cost. Zero (the
	// default) records nothing and keeps the hot path branch-predictable.
	Timeline int
}

// ethCounter is one interned per-EtherType accounting slot. The hot path
// bumps these by index; the public map views are rebuilt on demand.
type ethCounter struct {
	eth   uint16
	msgs  int
	bytes int
}

// Network instantiates one openflow.Switch per graph node, one Link per
// edge, and moves packets between them under the discrete-event clock.
//
// Attachment points:
//   - OnPacketIn receives every packet a switch sends to PortController
//     (the out-of-band control channel; package controller counts these).
//   - OnSelf receives every packet delivered to PortSelf (the switch-local
//     host, e.g. an anycast receiver).
//   - OnHop, if set, observes every attempted link crossing, delivered or
//     not — the ground-truth trace tests compare against the golden model.
//
// Packet ownership: packets passed to OnPacketIn and OnSelf belong to the
// callback and may be retained. Packets seen by hop observers are only
// valid for the duration of the callback — the simulator recycles them
// once processed.
type Network struct {
	Sim   *Sim
	Graph *topo.Graph

	OnPacketIn func(sw int, pkt *openflow.Packet)
	OnSelf     func(sw int, pkt *openflow.Packet)
	OnHop      func(hop Hop, pkt *openflow.Packet, delivered bool)
	// OnPortChange observes port liveness flips — the information a real
	// switch reports with OFPT_PORT_STATUS.
	OnPortChange func(sw, port int, up bool)

	switches []*openflow.Switch
	links    []*Link // indexed like Graph.Edges()
	// portLinks[sw][port] is the link attached to (sw, port), nil for
	// unconnected ports — a dense replacement for the old (switch, port)
	// map, probed once per transmission.
	portLinks [][]*Link
	delay     Time
	execObs   []ExecObserver
	hopObs    []HopObserver

	// Event loops. A single-loop network has exactly one lane (ctl); a
	// sharded one has one worker lane per shard plus the control lane
	// (lanes[len-1] == ctl, owning no switches). Sim aliases the control
	// lane's loop, so Sim.Now()/Sim.At keep their classic meaning.
	// shardOf maps each switch to its owning worker lane; lookahead is
	// the minimum cross-shard link delay — the conservative window width.
	// obsMu serializes the observer fan-out (hop/exec callbacks) across
	// worker lanes; single-loop runs never take it.
	lanes     []*lane
	ctl       *lane
	multi     bool
	shardOf   []int
	lookahead Time
	obsMu     sync.Mutex
	mergeBuf  []xev

	// Per-EtherType flight tag decoders (telemetry.go), shared read-only
	// by all lanes; each lane keeps its own ring and decoder cache. The
	// prev* fields remember the switches' cumulative scan stats at the
	// last flush so Run can publish deltas.
	flightDec []flightDecoder

	prevMatcher    uint64
	prevFallback   uint64
	prevScanned    uint64
	prevCommits    uint64
	prevFlightRecs uint64
	prevSpanRecs   uint64

	// traceSeq hands out traversal ids when timeline tracing is on. Only
	// Inject (a barrier-context call) bumps it, so no atomics.
	traceSeq uint32

	// spanCursor holds per-lane ring totals at the last DrainSpans call,
	// lazily sized on first drain.
	spanCursor []uint64
}

// New builds a network for the graph.
//
//simlint:barrier construction: lanes are not running yet
func New(g *topo.Graph, opts Options) *Network {
	if opts.LinkDelay == 0 {
		opts.LinkDelay = 1000 // 1µs
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	if nn := g.NumNodes(); nn > 0 && shards > nn {
		shards = nn
	}
	n := &Network{
		Graph: g,
		delay: opts.LinkDelay,
		multi: shards > 1,
	}
	nlanes := shards
	if n.multi {
		nlanes++ // dedicated control lane on top of the worker lanes
	}
	n.lanes = make([]*lane, nlanes)
	for i := range n.lanes {
		l := &lane{
			net:    n,
			id:     i,
			worker: n.multi && i < shards,
			xc:     openflow.NewExecContext(),
			ethIdx: make(map[uint16]int),
		}
		l.sim.lane = l
		if l.worker {
			l.out = make([][]xev, shards)
		}
		n.lanes[i] = l
	}
	n.ctl = n.lanes[nlanes-1]
	n.Sim = &n.ctl.sim
	n.Sim.MaxSteps = opts.MaxSteps
	if !opts.NoTelemetry {
		for _, l := range n.lanes {
			l.sim.stats = &telemetry.SimLocal{}
			if opts.FlightCap >= 0 {
				l.flight = telemetry.NewFlight(opts.FlightCap)
			}
		}
	}
	if opts.Timeline > 0 {
		// Deliberately independent of NoTelemetry: the tracer's own
		// overhead must be measurable with everything else off.
		for _, l := range n.lanes {
			l.spans = telemetry.NewSpans(opts.Timeline)
		}
	}
	telemetry.M.Shards.Set(int64(shards))
	rng := rand.New(rand.NewSource(opts.Seed))
	n.switches = make([]*openflow.Switch, g.NumNodes())
	n.portLinks = make([][]*Link, g.NumNodes())
	for i := range n.switches {
		n.switches[i] = openflow.NewSwitch(i, g.Degree(i))
		n.portLinks[i] = make([]*Link, g.Degree(i)+1)
	}
	for _, e := range g.Edges() {
		l := &Link{A: e.U, B: e.V, PortA: e.PU, PortB: e.PV, Delay: opts.LinkDelay,
			rngAB: rand.New(rand.NewSource(rng.Int63())),
			rngBA: rand.New(rand.NewSource(rng.Int63()))}
		n.links = append(n.links, l)
		n.portLinks[e.U][e.PU] = l
		n.portLinks[e.V][e.PV] = l
	}
	if n.multi {
		n.shardOf = topo.Partition(g, shards)
		n.lookahead = maxTime
		for _, l := range n.links {
			if n.shardOf[l.A] != n.shardOf[l.B] && l.Delay < n.lookahead {
				n.lookahead = l.Delay
			}
		}
		if n.lookahead < 1 {
			n.lookahead = 1 // zero-delay links would make windows empty
		}
	}
	return n
}

// Shards returns the number of worker shards the simulation runs on (1
// for the classic single-loop simulator).
func (n *Network) Shards() int {
	if !n.multi {
		return 1
	}
	return len(n.lanes) - 1
}

// ExecObserver observes one pipeline execution: the switch that ran it,
// the ingress port, the packet as it arrived (pre-execution state), and
// the execution result, whose Steps/GroupSteps record the matched rules
// and group-bucket choices when structured recording is on.
type ExecObserver func(sw, inPort int, pkt *openflow.Packet, res *openflow.Result)

// HopObserver observes one attempted link crossing, delivered or not —
// the same signature as the legacy OnHop field.
type HopObserver func(hop Hop, pkt *openflow.Packet, delivered bool)

// ObserveExec registers an execution observer and turns on structured
// step recording on every switch. Unlike the OnHop/OnPacketIn fields,
// observers are additive: several subsystems (trace, metrics, tests) can
// watch the same network without clobbering each other.
func (n *Network) ObserveExec(fn ExecObserver) {
	n.execObs = append(n.execObs, fn)
	for _, sw := range n.switches {
		sw.Record = true
	}
}

// ObserveHops registers an additional hop observer. The legacy OnHop field
// keeps working; observers fire after it.
func (n *Network) ObserveHops(fn HopObserver) {
	n.hopObs = append(n.hopObs, fn)
}

// Switch returns the switch for node id.
func (n *Network) Switch(id int) *openflow.Switch { return n.switches[id] }

// NumSwitches returns the number of switches.
func (n *Network) NumSwitches() int { return len(n.switches) }

// linkAt returns the link attached to (sw, port), or nil.
func (n *Network) linkAt(sw, port int) *Link {
	pl := n.portLinks[sw]
	if port < 1 || port >= len(pl) {
		return nil
	}
	return pl[port]
}

// LinkBetween returns the link connecting u and v, or nil.
func (n *Network) LinkBetween(u, v int) *Link {
	p := n.Graph.PortTo(u, v)
	if p == 0 {
		return nil
	}
	return n.linkAt(u, p)
}

// Links returns all links, indexed like Graph.Edges().
func (n *Network) Links() []*Link { return n.links }

// refreshLiveness recomputes the port liveness of both link endpoints.
func (n *Network) refreshLiveness(l *Link) {
	up := l.liveFor()
	n.setPortLive(l.A, l.PortA, up)
	n.setPortLive(l.B, l.PortB, up)
}

func (n *Network) setPortLive(sw, port int, up bool) {
	if n.switches[sw].PortLive(port) == up {
		return
	}
	n.switches[sw].SetPortLive(port, up)
	if n.OnPortChange != nil {
		n.OnPortChange(sw, port, up)
	}
}

// SetLinkDown takes the u-v link down (both directions, visible to
// liveness) or back up.
func (n *Network) SetLinkDown(u, v int, down bool) error {
	l := n.LinkBetween(u, v)
	if l == nil {
		return fmt.Errorf("network: no link %d-%d", u, v)
	}
	mode := LinkUp
	if down {
		mode = LinkDown
	}
	l.modeAB, l.modeBA = mode, mode
	n.refreshLiveness(l)
	return nil
}

// SetBlackhole makes the u->v direction (and, if bidirectional, also
// v->u) silently drop everything while liveness stays up.
func (n *Network) SetBlackhole(u, v int, bidirectional bool) error {
	l := n.LinkBetween(u, v)
	if l == nil {
		return fmt.Errorf("network: no link %d-%d", u, v)
	}
	if u == l.A {
		l.modeAB = LinkBlackhole
		if bidirectional {
			l.modeBA = LinkBlackhole
		}
	} else {
		l.modeBA = LinkBlackhole
		if bidirectional {
			l.modeAB = LinkBlackhole
		}
	}
	n.refreshLiveness(l)
	return nil
}

// ScheduleLinkDown schedules a link failure (or repair) at simulation
// time at — the tool for studying failures *during* a traversal, which
// the paper's model excludes and delegates to controller-side retries.
func (n *Network) ScheduleLinkDown(u, v int, down bool, at Time) error {
	if n.LinkBetween(u, v) == nil {
		return fmt.Errorf("network: no link %d-%d", u, v)
	}
	n.Sim.At(at, func() { _ = n.SetLinkDown(u, v, down) })
	return nil
}

// SetLoss makes both directions of the u-v link drop packets independently
// with probability p.
func (n *Network) SetLoss(u, v int, p float64) error {
	l := n.LinkBetween(u, v)
	if l == nil {
		return fmt.Errorf("network: no link %d-%d", u, v)
	}
	l.modeAB, l.modeBA = LinkLossy, LinkLossy
	l.lossAB, l.lossBA = p, p
	n.refreshLiveness(l)
	return nil
}

// Inject schedules pkt to be processed by switch sw as if it arrived on
// inPort at time t. Use openflow.PortController as inPort for packet-outs.
// The caller keeps ownership of pkt: it is cloned at call time. On a
// sharded network the event lands on the heap of the shard owning sw;
// Inject must only be called between runs or from control-lane callbacks
// (never from inside a window).
//
//simlint:barrier called between runs or before Run; no worker window is active
func (n *Network) Inject(sw int, inPort int, pkt *openflow.Packet, t Time) {
	l := n.laneFor(sw)
	if st := l.sim.stats; st != nil {
		st.PoolGets++
	}
	q := pkt.ClonePooled()
	if n.ctl.spans != nil && q.TraceID == 0 {
		// Every injection roots a new traversal trace (unless the caller
		// pre-assigned one, e.g. a resubmitted packet). SpanID 0 marks the
		// first execution's span as the trace root.
		n.traceSeq++
		q.TraceID = n.traceSeq
		q.SpanID = 0
	}
	l.sim.schedule(t, event{kind: evProcess, sw: sw, port: inPort, pkt: q})
}

// InjectActions schedules an action-list packet-out at switch sw (an
// OFPT_PACKET_OUT that bypasses the tables), e.g. the LLDP probes of the
// baseline discovery app.
func (n *Network) InjectActions(sw int, actions []openflow.Action, pkt *openflow.Packet, t Time) {
	p := pkt.ClonePooled()
	n.Sim.At(t, func() {
		res := n.switches[sw].Execute(p, actions)
		if st := n.Sim.stats; st != nil {
			// The clone above, Execute's internal clone, and one per
			// emission — minus the emission that took the internal clone
			// itself when Execute reports it stolen.
			gets := 2 + uint64(len(res.Emissions))
			if res.StoleInput {
				gets--
			}
			st.PoolGets += gets
		}
		for _, ob := range n.execObs {
			ob(sw, openflow.PortController, p, &res)
		}
		n.ctl.dispatch(sw, &res)
		p.Release()
	})
}

// SpanRecords returns the causal tracer's retained spans across all
// lanes, merged into simulation-time order, or nil when timeline tracing
// is off. The slice is a copy; internal/trace.BuildTraces reassembles it
// into per-traversal trees and internal/dump renders timelines.
//
//simlint:barrier post-run aggregation across parked lanes
func (n *Network) SpanRecords() []telemetry.SpanRecord {
	if n.ctl.spans == nil {
		return nil
	}
	rings := make([]*telemetry.Spans, len(n.lanes))
	for i, l := range n.lanes {
		rings[i] = l.spans
	}
	return telemetry.MergedSpans(rings)
}

// DrainSpans appends to dst the span records claimed since the previous
// call (all retained records on the first), interleaved across lanes
// into simulation-time order with ties keeping lane order — the same
// ordering contract as SpanRecords, but O(new records) per call instead
// of O(ring capacity), so a caller can harvest the timeline after every
// run without paying for a full re-merge. Records a lane ring evicted
// between drains are lost, exactly as they are from SpanRecords.
// Returns dst unchanged when timeline tracing is off.
//
//simlint:barrier post-run aggregation across parked lanes
func (n *Network) DrainSpans(dst []telemetry.SpanRecord) []telemetry.SpanRecord {
	if n.ctl.spans == nil {
		return dst
	}
	if n.spanCursor == nil {
		n.spanCursor = make([]uint64, len(n.lanes))
	}
	base := len(dst)
	for i, l := range n.lanes {
		dst = l.spans.AppendSince(dst, n.spanCursor[i])
		n.spanCursor[i] = l.spans.Total()
	}
	// Each lane's segment is already time-ordered (lane-local sim time is
	// monotone), so the concatenation only needs sorting when several
	// lanes interleave — checking first keeps the common single-lane
	// drain free of sort.SliceStable's reflection cost. A tie across the
	// boundary counts as ordered: both paths keep lane order on ties.
	fresh := dst[base:]
	for i := 1; i < len(fresh); i++ {
		if fresh[i].At < fresh[i-1].At {
			sort.SliceStable(fresh, func(i, j int) bool { return fresh[i].At < fresh[j].At })
			break
		}
	}
	return dst
}

// InBandMsgs returns the per-EtherType link-transmission counts as a map,
// rebuilt from the interned per-lane counters on every call. Use
// InBandCount for a single EtherType on a hot path.
//
//simlint:barrier post-run aggregation across parked lanes
func (n *Network) InBandMsgs() map[uint16]int {
	out := make(map[uint16]int)
	for _, l := range n.lanes {
		for _, c := range l.counters {
			if c.msgs > 0 {
				out[c.eth] += c.msgs
			}
		}
	}
	return out
}

// InBandBytes returns the per-EtherType transmitted byte counts as a map,
// rebuilt on every call. Use InBandSize for a single EtherType.
//
//simlint:barrier post-run aggregation across parked lanes
func (n *Network) InBandBytes() map[uint16]int {
	out := make(map[uint16]int)
	for _, l := range n.lanes {
		for _, c := range l.counters {
			if c.msgs > 0 {
				out[c.eth] += c.bytes
			}
		}
	}
	return out
}

// InBandCount returns the transmission count of one EtherType.
//
//simlint:barrier post-run aggregation across parked lanes
func (n *Network) InBandCount(eth uint16) int {
	total := 0
	for _, l := range n.lanes {
		if idx, ok := l.ethIdx[eth]; ok {
			total += l.counters[idx].msgs
		}
	}
	return total
}

// InBandSize returns the transmitted bytes of one EtherType.
//
//simlint:barrier post-run aggregation across parked lanes
func (n *Network) InBandSize(eth uint16) int {
	total := 0
	for _, l := range n.lanes {
		if idx, ok := l.ethIdx[eth]; ok {
			total += l.counters[idx].bytes
		}
	}
	return total
}

// TotalInBand sums message counts across all EtherTypes.
//
//simlint:barrier post-run aggregation across parked lanes
func (n *Network) TotalInBand() int {
	total := 0
	for _, l := range n.lanes {
		for _, c := range l.counters {
			total += c.msgs
		}
	}
	return total
}

// ResetAccounting clears the in-band counters (link DirStats included) so
// an experiment can measure a single phase. The EtherType intern tables
// survive — only the counts reset.
//
//simlint:barrier called between runs; no worker window is active
func (n *Network) ResetAccounting() {
	for _, l := range n.lanes {
		for i := range l.counters {
			l.counters[i].msgs = 0
			l.counters[i].bytes = 0
		}
	}
	for _, l := range n.links {
		l.StatsAB = DirStats{}
		l.StatsBA = DirStats{}
	}
}
