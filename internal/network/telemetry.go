package network

import (
	"io"
	"time"

	"smartsouth/internal/openflow"
	"smartsouth/internal/telemetry"
)

// FlightTagFields resolves the (up to three) tag fields decoded into
// flight-recorder records for one EtherType at one switch. The DFS state
// of a SmartSouth service is laid out per switch (par/cur live in
// switch-indexed field tables), hence the sw parameter. The returned
// array is by value, so resolution does not allocate.
type FlightTagFields func(sw int) [3]openflow.Field

// tagExtract is one precompiled narrow-field read: the (at most two)
// byte indices a ≤9-bit field spans, the right shift of the 16-bit
// window they form, and the width mask. Eight bytes instead of the 40 of
// an openflow.Field, and the extraction inlines to a handful of shifts —
// the record path never calls Field.Load.
type tagExtract struct {
	first uint16
	last  uint16
	shift uint8
	_     uint8
	mask  uint16
}

// load reads the field from a packet tag area; tags too short for the
// field read as zero, like Field.Load.
func (e *tagExtract) load(tag []byte) uint32 {
	if int(e.first) < len(tag) && int(e.last) < len(tag) {
		v := uint32(tag[e.first])<<8 | uint32(tag[e.last])
		return v >> e.shift & uint32(e.mask)
	}
	return 0
}

// flightDecoder is one registered EtherType -> tag-field mapping. The
// name set is interned in the Flight recorder; records carry its index.
// The per-switch resolvers are materialized at registration, so the
// record path is a slice index instead of a closure call: extBySw when
// every field is narrow enough for tagExtract (the always case for DFS
// state), fieldsBySw (with Field.Load) when any field is wider.
type flightDecoder struct {
	eth        uint16
	nameIdx    uint8
	n          uint8
	wide       bool
	extBySw    [][3]tagExtract
	fieldsBySw [][3]openflow.Field
}

// RegisterFlightTags registers named tag fields for packets of the given
// EtherType: every flight-recorder execution record for such packets
// carries the decoded values (e.g. the DFS start/par/cur state), which is
// what makes a post-mortem dump replayable. fields is evaluated once per
// switch now, not on the record path. Re-registering an EtherType
// replaces its decoder. No-op when the flight recorder is disabled.
//
//simlint:barrier registration happens before Run; lanes are idle
func (n *Network) RegisterFlightTags(eth uint16, names [3]string, fields FlightTagFields) {
	if n.ctl.flight == nil || fields == nil {
		return
	}
	var cnt uint8
	for _, nm := range names {
		if nm != "" {
			cnt++
		}
	}
	bySw := make([][3]openflow.Field, len(n.switches))
	wide := false
	for sw := range bySw {
		bySw[sw] = fields(sw)
		for i := uint8(0); i < cnt; i++ {
			if f := bySw[sw][i]; f.Bits > 9 || f.Bits < 1 || f.Off < 0 || (f.Off+f.Bits-1)>>3 > 0xFFFF {
				wide = true
			}
		}
	}
	// Intern the name set in every lane's ring. Registration order is the
	// same on each ring (this loop, every call), so the index agrees
	// across lanes and the shared decoder can carry a single nameIdx.
	var nameIdx uint8
	for _, l := range n.lanes {
		nameIdx = l.flight.RegisterTagNames(names)
	}
	d := flightDecoder{eth: eth, nameIdx: nameIdx, n: cnt, wide: wide}
	if wide {
		d.fieldsBySw = bySw
	} else {
		d.extBySw = make([][3]tagExtract, len(bySw))
		for sw := range bySw {
			for i := uint8(0); i < cnt; i++ {
				f := bySw[sw][i]
				first, last := f.Off>>3, (f.Off+f.Bits-1)>>3
				d.extBySw[sw][i] = tagExtract{
					first: uint16(first),
					last:  uint16(last),
					shift: uint8(16 - (f.Off + f.Bits - first*8)),
					mask:  uint16(1<<uint(f.Bits) - 1),
				}
			}
		}
	}
	for i := range n.flightDec {
		if n.flightDec[i].eth == eth {
			n.flightDec[i] = d
			return
		}
	}
	n.flightDec = append(n.flightDec, d)
}

// Flight returns the control lane's flight recorder, nil when telemetry
// or the recorder is disabled. On a sharded network each worker lane
// keeps its own ring as well; WriteFlightJSONL merges them.
//
//simlint:barrier post-run read of the control lane ring
func (n *Network) Flight() *telemetry.Flight { return n.ctl.flight }

// WriteFlightJSONL dumps the flight history as JSONL: the single ring of
// a classic network verbatim, or the per-lane rings of a sharded network
// merged by simulation time (ties keep lane order, so a deterministic run
// dumps deterministically).
//
//simlint:barrier post-run dump; all lanes are parked
func (n *Network) WriteFlightJSONL(w io.Writer) error {
	if n.ctl.flight == nil {
		return nil
	}
	if !n.multi {
		return n.ctl.flight.WriteJSONL(w)
	}
	rings := make([]*telemetry.Flight, 0, len(n.lanes))
	for _, l := range n.lanes {
		rings = append(rings, l.flight)
	}
	return telemetry.WriteMergedJSONL(w, rings)
}

// FlightNote appends a free-form marker record (phase boundary, oracle
// verdict, gate rejection) to the control lane's flight recorder, if
// enabled.
//
//simlint:barrier notes are recorded between runs on the control lane
func (n *Network) FlightNote(text string) {
	f := n.ctl.flight
	if f == nil {
		return
	}
	r := telemetry.FlightRecord{At: int64(n.Sim.now), Kind: telemetry.FlightNote, Sw: -1, Lane: uint8(n.ctl.id)}
	f.SetCookie(&r, text)
	f.Record(r)
}

// capture decodes the registered tag fields of one packet tag area into
// out — the pre-execution snapshot the flight record will carry. It runs
// before ExecBatch, while the arrival still holds the state it arrived
// with.
func (d *flightDecoder) capture(sw int, tag []byte, out *[3]uint32) {
	// Unrolled: d.n is at most 3 and almost always exactly 3.
	if !d.wide {
		e := &d.extBySw[sw]
		if d.n > 0 {
			out[0] = e[0].load(tag)
			if d.n > 1 {
				out[1] = e[1].load(tag)
				if d.n > 2 {
					out[2] = e[2].load(tag)
				}
			}
		}
	} else {
		f := &d.fieldsBySw[sw]
		for i := uint8(0); i < d.n; i++ {
			out[i] = uint32(f[i].Load(tag))
		}
	}
}

// Run drains the event queue and, unless telemetry is disabled, flushes
// the staged per-loop counters into the process-global metrics: the Run's
// simulated and wall-clock spans, the event/hop/pool counters, and the
// FlowTable scan deltas accumulated by the switches since the last flush.
// On a sharded network the drain is the conservative-window coordinator
// (runSharded) and every worker lane's staging is folded into the control
// lane's before the single flush.
//
//simlint:barrier drives the loop; workers only touch lanes inside the windows it hands out
func (n *Network) Run() (int, error) {
	run := n.Sim.Run
	if n.multi {
		run = n.runSharded
	}
	st := n.Sim.stats
	if st == nil {
		return run()
	}
	simStart := n.Sim.now
	//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
	wallStart := time.Now()
	steps, err := run()
	var agg openflow.ScanStats
	var cm uint64
	for _, sw := range n.switches {
		agg.Merge(sw.ScanStats())
		cm += sw.StateTransitions()
	}
	st.MatcherLookups += agg.MatcherLookups - n.prevMatcher
	st.FallbackLookups += agg.FallbackLookups - n.prevFallback
	st.FlowScanned += agg.Scanned - n.prevScanned
	st.StateCommits += cm - n.prevCommits
	n.prevMatcher, n.prevFallback = agg.MatcherLookups, agg.FallbackLookups
	n.prevScanned, n.prevCommits = agg.Scanned, cm
	for _, l := range n.lanes {
		if l != n.ctl && l.sim.stats != nil {
			st.MergeFrom(l.sim.stats)
		}
	}
	if n.ctl.flight != nil {
		// Record counts are derived from the rings' running totals here,
		// once per Run, so the record paths don't pay a counter bump.
		var t uint64
		for _, l := range n.lanes {
			t += l.flight.Total()
		}
		st.FlightRecords += t - n.prevFlightRecs
		n.prevFlightRecs = t
	}
	if n.ctl.spans != nil {
		// Same running-total pattern for the causal tracer's spans.
		var t uint64
		for _, l := range n.lanes {
			t += l.spans.Total()
		}
		st.SpanRecords += t - n.prevSpanRecs
		n.prevSpanRecs = t
	}
	//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
	st.FlushTo(telemetry.M, int64(n.Sim.now-simStart), time.Since(wallStart).Nanoseconds(), err != nil)
	return steps, err
}
