//go:build race

package network

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates on paths that are allocation-free in normal
// builds, so the alloc-guard tests skip themselves under -race.
const raceEnabled = true
