package network

import "smartsouth/internal/telemetry"

// Config is the resolved deployment configuration: the simulated-network
// knobs (Options) plus the observability knobs the deployment layer reads.
// It is produced by Resolve from a list of Option values.
type Config struct {
	Opts Options

	// TraceCap, when positive, asks the deployment to record pipeline
	// executions into a hop-trace ring buffer of this capacity.
	TraceCap int

	// Analysis asks the deployment to gate every program installation on
	// the network-wide static analysis: a program whose composition with
	// the already-installed programs yields an error-severity finding
	// (conflict, loop, blackhole) is rejected before any rule reaches a
	// switch.
	Analysis bool

	// Backend names the compile backend services are lowered with ("of13"
	// or "stateful"). Empty selects the deployment layer's default (the
	// SMARTSOUTH_BACKEND environment variable, then of13). The network
	// only transports the name; resolution lives with the deployment.
	Backend string
}

// Option configures a deployment. Two kinds of values satisfy it: the
// functional options below (WithSeed, WithTrace, …) and the legacy Options
// struct itself, which is accepted for compatibility and applied wholesale.
type Option interface {
	ApplyOption(*Config)
}

// ApplyOption makes the Options struct usable as an Option: it replaces
// the network knobs in one shot. This keeps every pre-functional-options
// call site (`Deploy(g, Options{Seed: 1})`) compiling unchanged.
func (o Options) ApplyOption(c *Config) { c.Opts = o }

type optionFunc func(*Config)

func (f optionFunc) ApplyOption(c *Config) { f(c) }

// WithSeed seeds the loss process of lossy links.
func WithSeed(seed int64) Option {
	return optionFunc(func(c *Config) { c.Opts.Seed = seed })
}

// WithLinkDelay sets the one-way latency of every link.
func WithLinkDelay(d Time) Option {
	return optionFunc(func(c *Config) { c.Opts.LinkDelay = d })
}

// WithEventLimit bounds the number of simulator events per Run call.
func WithEventLimit(n int) Option {
	return optionFunc(func(c *Config) { c.Opts.MaxSteps = n })
}

// WithTrace enables the per-packet hop trace with a ring buffer retaining
// the last cap pipeline executions. cap <= 0 leaves tracing off.
func WithTrace(cap int) Option {
	return optionFunc(func(c *Config) { c.TraceCap = cap })
}

// WithoutTelemetry disables the always-on instrumentation (per-event
// counters, latency histograms, flight recorder) for this deployment —
// the telemetry-off arm of the overhead benchmark.
func WithoutTelemetry() Option {
	return optionFunc(func(c *Config) { c.Opts.NoTelemetry = true })
}

// WithFlightCap sizes the flight-recorder ring: 0 keeps the default
// capacity, negative disables the recorder while keeping counters and
// histograms on.
func WithFlightCap(n int) Option {
	return optionFunc(func(c *Config) { c.Opts.FlightCap = n })
}

// WithTimeline enables the causal traversal tracer: every injected
// packet gets a trace id, every pipeline execution it (or any of its
// descendants) flows through becomes a span in a per-lane ring
// retaining the last cap spans (DefaultSpanCap when cap <= 0 — unlike
// WithTrace, any call opts in). Tracing is independent of
// WithoutTelemetry so the overhead benchmark can isolate its cost.
func WithTimeline(cap int) Option {
	return optionFunc(func(c *Config) {
		if cap <= 0 {
			cap = telemetry.DefaultSpanCap
		}
		c.Opts.Timeline = cap
	})
}

// WithBackend selects the compile backend services are lowered with:
// "of13" (flow/group entries, the default) or "stateful" (XFSM state
// tables). Empty defers to the SMARTSOUTH_BACKEND environment variable.
func WithBackend(name string) Option {
	return optionFunc(func(c *Config) { c.Backend = name })
}

// WithShards partitions the topology across n shards, each owning a
// subset of switches with its own event heap, counters and flight ring,
// synchronized by conservative time windows (see Options.Shards). n <= 1
// keeps the classic single-loop simulator.
func WithShards(n int) Option {
	return optionFunc(func(c *Config) { c.Opts.Shards = n })
}

// WithAnalysis gates every program installation on the network-wide
// static analysis (internal/analysis): conflicts with installed
// services, forwarding loops and blackholes reject the install.
func WithAnalysis() Option {
	return optionFunc(func(c *Config) { c.Analysis = true })
}

// Resolve folds a list of options into a Config. Options are applied in
// order, so later options win; a legacy Options struct resets all network
// knobs at once.
func Resolve(opts ...Option) Config {
	var c Config
	for _, o := range opts {
		if o != nil {
			o.ApplyOption(&c)
		}
	}
	return c
}
