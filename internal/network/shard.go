package network

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"smartsouth/internal/openflow"
	"smartsouth/internal/telemetry"
)

// maxTime is the largest representable simulation time; the window end of
// a shard with no cross-shard links.
const maxTime = Time(math.MaxInt64)

// lane is one event loop of the network: its heap (sim), its execution
// scratch, and its share of the accounting state. A single-loop network
// has exactly one lane, which doubles as the control lane; a sharded
// network has one worker lane per shard (each owning a subset of the
// switches) plus a dedicated control lane that owns no switches and runs
// only at window barriers. Everything a lane touches while its window
// runs is lane-local — scratch, counters, flight ring, telemetry staging,
// the owned switches and the rngs/stats of their outgoing link directions
// — which is what lets worker windows run on separate goroutines without
// locks on the hop path.
type lane struct {
	net    *Network
	id     int
	worker bool // a shard loop (runs concurrently); false for the control lane
	sim    Sim  //simlint:lanelocal

	// Batched execution scratch (see processBatch); reset and reused on
	// every batch so the steady-state hop path does not allocate.
	xc       *openflow.ExecContext     //simlint:lanelocal
	batchIn  []*openflow.Packet        //simlint:lanelocal
	batchRes []openflow.Result         //simlint:lanelocal
	batchRec []*telemetry.FlightRecord //simlint:lanelocal
	batchPre []*openflow.Packet        //simlint:lanelocal

	// Interned in-band accounting (the "in-band #msgs / size" columns of
	// Table 2). Every transmission attempt counts (a message swallowed by
	// a blackhole was still sent). lastIdx caches the slot of the most
	// recently counted EtherType: traversals send long runs of one type,
	// so the common case is a single comparison instead of a map probe.
	// The public map views aggregate across lanes.
	counters []ethCounter   //simlint:lanelocal
	ethIdx   map[uint16]int //simlint:lanelocal
	lastIdx  int            //simlint:lanelocal

	// Per-lane flight ring and decoder cache; the decoder table itself
	// (Network.flightDec) is shared read-only.
	flight  *telemetry.Flight //simlint:lanelocal
	lastDec int               //simlint:lanelocal

	// Causal tracer (Options.Timeline): the lane's span ring, its span-id
	// sequence (span ids are lane+1 in the high bits — see
	// telemetry.SpanRecord — so lanes never collide without atomics), and
	// the per-batch scratch of claimed slots awaiting their post-exec
	// fill. Nil/zero when tracing is off.
	spans     *telemetry.Spans        //simlint:lanelocal
	spanSeq   uint32                  //simlint:lanelocal
	batchSpan []*telemetry.SpanRecord //simlint:lanelocal

	// Cross-shard routing (worker lanes only). out[d] buffers deliveries
	// to shard d during a window; ctlOut buffers controller/self events.
	// Both are exchanged at the barrier.
	out    [][]xev //simlint:lanelocal
	ctlOut []xev   //simlint:lanelocal

	// Worker plumbing: the window-job channel of the lane's goroutine,
	// the events it processed in the last window, and a persistent event
	// tick used for telemetry sampling strides (so short windows do not
	// skew the sampled distributions).
	jobs       chan laneJob //simlint:lanelocal
	wprocessed int          //simlint:lanelocal
	ticks      uint64       //simlint:lanelocal

	// busyNs is the wall time the lane spent inside its last window,
	// measured by the worker goroutine and read by the coordinator at the
	// barrier — the raw input of the stall and load-imbalance series.
	busyNs int64 //simlint:lanelocal
}

// xev is one buffered cross-lane event: a delivery to another shard's
// switch or a controller/self handoff, exchanged at window barriers.
type xev struct {
	at   Time
	sw   int
	port int
	kind eventKind
	pkt  *openflow.Packet
}

// laneJob is one window assignment for a worker lane.
type laneJob struct {
	end    Time
	budget int
}

// laneFor returns the lane owning switch sw.
func (n *Network) laneFor(sw int) *lane {
	if !n.multi {
		return n.ctl
	}
	return n.lanes[n.shardOf[sw]]
}

// processBatch runs one batch of arrivals at a single switch through the
// pipeline (one ExecBatch call) and dispatches each result in arrival
// order, consuming the arrival packets: each is either forwarded onward
// as its result's stolen emission (the unicast fast path — the packet
// that arrived is the packet that leaves, no copy) or released here.
// Execution mutates arrivals in place, so anything that must see
// pre-execution state — the flight recorder's tag decode, the exec
// observers' packet view — is captured or cloned before ExecBatch runs.
// The emissions of each result are consumed synchronously by dispatch,
// so nothing outlives the call.
func (l *lane) processBatch(evs []event) {
	n := l.net
	swID := evs[0].sw
	in := l.batchIn[:0]
	for i := range evs {
		p := evs[i].pkt
		p.InPort = evs[i].port
		in = append(in, p)
	}
	l.batchIn = in
	for cap(l.batchRes) < len(evs) {
		l.batchRes = append(l.batchRes[:cap(l.batchRes)], openflow.Result{})
	}
	res := l.batchRes[:len(evs)]

	st := l.sim.stats
	var recs []*telemetry.FlightRecord
	if st != nil && l.flight != nil && len(in) <= l.flight.Cap() {
		// Claim one ring slot per arrival and decode the tag state straight
		// into it, before execution rewrites the packets in place: the
		// record documents the packet as it arrived. The result fields are
		// filled in after ExecBatch — and before dispatch claims any
		// further slots, so with the batch bounded by the ring capacity no
		// claimed slot can be recycled while it is still pending. A batch
		// larger than the whole ring (degenerate; the ring would retain
		// only its tail anyway) goes unrecorded.
		recs = l.batchRec[:0]
		at := int64(l.sim.now)
		for _, p := range in {
			r := l.flight.Slot()
			r.At = at
			r.Kind = telemetry.FlightExec
			r.Sw = int16(swID)
			r.Port = int16(p.InPort)
			r.Eth = p.EthType
			r.Lane = uint8(l.id)
			if d := l.decoderFor(p.EthType); d != nil {
				r.NumTags = d.n
				r.NameIdx = d.nameIdx
				d.capture(swID, p.Tag, &r.Tags)
			}
			recs = append(recs, r)
		}
		l.batchRec = recs
	}
	var spans []*telemetry.SpanRecord
	if l.spans != nil && len(in) <= l.spans.Cap() {
		// Causal tracer: claim one span per traced arrival (untraced
		// packets keep a nil placeholder so indices line up with res) and
		// re-stamp the packet's SpanID *before* execution — emissions are
		// cloned from the arrival while ExecBatch runs, so they inherit
		// this execution's span as their parent, which is the whole
		// parent→child edge mechanism. Same claim-before/fill-after
		// contract as the flight records above.
		spans = l.batchSpan[:0]
		at := int64(l.sim.now)
		for _, p := range in {
			if p.TraceID == 0 {
				spans = append(spans, nil)
				continue
			}
			l.spanSeq++
			id := uint64(l.id+1)<<32 | uint64(l.spanSeq)
			sp := l.spans.Slot()
			sp.Span = id
			sp.Parent = p.SpanID
			sp.At = at
			sp.Trace = p.TraceID
			sp.Sw = int32(swID)
			sp.Lane = int16(l.id)
			sp.Port = int16(p.InPort)
			sp.Eth = p.EthType
			p.SpanID = id
			spans = append(spans, sp)
		}
		l.batchSpan = spans
	}
	if len(n.execObs) > 0 {
		// Observers are promised the pre-execution packet; clone only in
		// observed (traced/metered) runs so the plain hot path stays one
		// clone cheaper.
		pre := l.batchPre[:0]
		for _, p := range in {
			pre = append(pre, p.ClonePooled())
		}
		l.batchPre = pre
		if st != nil {
			st.PoolGets += uint64(len(pre))
		}
	}

	n.switches[swID].ExecBatch(l.xc, in, res)

	if recs != nil {
		// Complete every claimed exec record before dispatching anything:
		// dispatch records sends and deliveries, and its slot claims must
		// come after the batch's pending fills (see the claim loop above).
		for i := range recs {
			r := &res[i]
			rec := recs[i]
			rec.Matched = r.Matched
			l.flight.SetCookie(rec, r.LastCookie)
			rec.Group = r.LastGroup
			rec.Bucket = r.LastBucket
			recs[i] = nil
		}
	}
	if spans != nil {
		// Fill the result half of each claimed span before dispatch, for
		// the same recycling reason as the flight records. (The aggregate
		// span count is published at Run end from the rings' totals, like
		// the flight-record count — no per-batch accounting here.)
		for i, sp := range spans {
			if sp == nil {
				continue
			}
			r := &res[i]
			sp.Matched = r.Matched
			if e := len(r.Emissions); e > 255 {
				sp.Emits = 255
			} else {
				sp.Emits = uint8(e)
			}
			spans[i] = nil
		}
		l.batchSpan = spans[:0]
	}
	for i := range evs {
		r := &res[i]
		if st != nil {
			// One pool clone per emission, minus the emission that took
			// the arriving packet itself (the unicast fast path; see
			// Result.StoleInput).
			gets := uint64(len(r.Emissions))
			if r.StoleInput {
				gets--
			}
			st.PoolGets += gets
		}
		if len(n.execObs) > 0 {
			if l.worker {
				n.obsMu.Lock()
			}
			for _, ob := range n.execObs {
				ob(swID, evs[i].port, l.batchPre[i], r)
			}
			if l.worker {
				n.obsMu.Unlock()
			}
		}
		l.dispatch(swID, r)
	}
	for i := range l.batchPre {
		l.batchPre[i].Release()
		l.batchPre[i] = nil
	}
	l.batchPre = l.batchPre[:0]
	for i := range in {
		// The batch owns the arrivals: release each unless execution
		// forwarded it onward as an emission, then drop the reference so
		// the scratch does not pin it.
		if !res[i].StoleInput {
			in[i].Release()
		}
		in[i] = nil
	}
	l.batchIn = in[:0]
}

// dispatch routes pipeline emissions to links, the controller, or the
// local host. It consumes the emission packets: every packet is either
// handed to an attachment callback (which takes ownership), scheduled for
// delivery (released after processing), buffered for a window barrier, or
// released here. Controller and self deliveries from a worker lane are
// barrier traffic: they execute on the control lane, which is the only
// lane allowed to touch shared state (controller inbox, link modes,
// installs).
func (l *lane) dispatch(sw int, res *openflow.Result) {
	n := l.net
	for _, em := range res.Emissions {
		switch {
		case em.Port == openflow.PortController:
			if n.OnPacketIn != nil {
				if l.worker {
					l.ctlOut = append(l.ctlOut, xev{at: l.sim.now, kind: evPacketIn, sw: sw, pkt: em.Pkt})
				} else {
					l.sim.schedule(l.sim.now, event{kind: evPacketIn, sw: sw, pkt: em.Pkt})
				}
			} else {
				em.Pkt.Release()
			}
		case em.Port == openflow.PortSelf:
			if n.OnSelf != nil {
				if l.worker {
					l.ctlOut = append(l.ctlOut, xev{at: l.sim.now, kind: evSelf, sw: sw, pkt: em.Pkt})
				} else {
					l.sim.schedule(l.sim.now, event{kind: evSelf, sw: sw, pkt: em.Pkt})
				}
			} else {
				em.Pkt.Release()
			}
		case em.Port >= 1:
			l.send(sw, em.Port, em.Pkt)
		default:
			em.Pkt.Release()
		}
	}
}

// countInBand bumps the interned per-EtherType transmission counters.
func (l *lane) countInBand(eth uint16, size int) {
	idx := l.lastIdx
	if idx >= len(l.counters) || l.counters[idx].eth != eth {
		var ok bool
		idx, ok = l.ethIdx[eth]
		if !ok {
			idx = len(l.counters)
			l.counters = append(l.counters, ethCounter{eth: eth})
			l.ethIdx[eth] = idx
		}
		l.lastIdx = idx
	}
	c := &l.counters[idx]
	c.msgs++
	c.bytes += size
}

// send puts a packet on the link attached to (sw, port), taking ownership
// of pkt. The transmit side of the link (mode, loss rng, direction stats)
// belongs to the sending switch's lane, so this needs no locks; only the
// observer fan-out is serialized across lanes.
func (l *lane) send(sw, port int, pkt *openflow.Packet) {
	n := l.net
	link := n.linkAt(sw, port)
	if link == nil {
		// Unconnected port: frame disappears, like real hardware.
		pkt.Release()
		return
	}
	l.countInBand(pkt.EthType, pkt.Size())
	to, toPort, delivered := link.transmit(sw)
	if st := l.sim.stats; st != nil {
		st.Hops++
		if !delivered {
			st.HopsDropped++
			// Only failed transmissions earn a ring entry: a delivered
			// hop is already visible as the receiving switch's exec
			// record, while a drop is precisely the event a post-mortem
			// needs and would otherwise be invisible.
			if l.flight != nil {
				r := l.flight.Slot()
				r.At = int64(l.sim.now)
				r.Kind = telemetry.FlightSend
				r.Sw = int16(sw)
				r.Port = int16(port)
				r.To = int16(to)
				r.ToPort = int16(toPort)
				r.Eth = pkt.EthType
				r.Lane = uint8(l.id)
			}
		}
	}
	if n.OnHop != nil || len(n.hopObs) > 0 {
		h := Hop{From: sw, FromPort: port, To: to, ToPort: toPort}
		if l.worker {
			n.obsMu.Lock()
		}
		if n.OnHop != nil {
			n.OnHop(h, pkt, delivered)
		}
		for _, ob := range n.hopObs {
			ob(h, pkt, delivered)
		}
		if l.worker {
			n.obsMu.Unlock()
		}
	}
	if !delivered {
		pkt.Release()
		return
	}
	at := l.sim.now + link.Delay
	ev := event{kind: evProcess, sw: to, port: toPort, pkt: pkt}
	switch {
	case l.worker:
		if d := n.shardOf[to]; d != l.id {
			// Cross-shard delivery: buffered, exchanged at the barrier.
			// Conservative windows guarantee at >= the window end, so the
			// receiver has not advanced past it.
			if st := l.sim.stats; st != nil {
				st.CutMsgs++
			}
			l.out[d] = append(l.out[d], xev{at: at, kind: evProcess, sw: to, port: toPort, pkt: pkt})
			return
		}
		l.sim.schedule(at, ev)
	case n.multi:
		// Control lane at a barrier (packet-outs, injections): workers are
		// parked, so delivering straight into the owner's heap is safe.
		n.lanes[n.shardOf[to]].sim.schedule(at, ev)
	default:
		l.sim.schedule(at, ev)
	}
}

// decoderFor returns the decoder of an EtherType, or nil. The last hit is
// cached per lane: traversals send long runs of one type, so the common
// case is a single comparison, like the in-band accounting intern table.
func (l *lane) decoderFor(eth uint16) *flightDecoder {
	dec := l.net.flightDec
	if i := l.lastDec; i < len(dec) && dec[i].eth == eth {
		return &dec[i]
	}
	for i := range dec {
		if dec[i].eth == eth {
			l.lastDec = i
			return &dec[i]
		}
	}
	return nil
}

// runWindow drains the lane's heap up to (but excluding) simulation time
// end, processing at most budget events, and returns the count processed.
// It is Sim.Run's loop restricted to a window: worker heaps only ever
// hold evProcess events (dispatch routes everything else through the
// control lane), so the kind switch collapses to the batch path. The
// telemetry sampling strides run off the lane's persistent tick counter
// so short windows do not skew the sampled distributions.
func (l *lane) runWindow(end Time, budget int) int {
	s := &l.sim
	st := s.stats
	processed := 0
	for len(s.events) > 0 && processed < budget {
		if s.events[0].at >= end {
			break
		}
		tick := l.ticks
		l.ticks++
		var t0 time.Time
		sampled := false
		histSample := false
		if st != nil && tick&7 == 0 {
			histSample = true
			st.ObserveHeapDepth(int64(len(s.events)))
			if tick&63 == 0 {
				//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
				t0 = time.Now()
				sampled = true
			}
		}
		e := s.pop()
		s.now = e.at
		if st != nil {
			st.Events[e.kind]++
			if histSample {
				st.QueueWait.Observe(int64(e.at - e.enq))
			}
		}
		if e.kind != evProcess {
			panic("network: non-process event on a worker lane")
		}
		// Drain the maximal run of process events for the same switch at
		// the same timestamp into one batch (see Sim.Run for why batching
		// preserves the event order). Equal timestamps are inside the
		// window by construction.
		b := append(s.batch[:0], e)
		for len(s.events) > 0 && processed+len(b) < budget {
			nx := &s.events[0]
			if nx.at != e.at || nx.kind != evProcess || nx.sw != e.sw {
				break
			}
			b = append(b, s.pop())
		}
		s.batch = b
		if st != nil && len(b) > 1 {
			st.Events[evProcess] += uint64(len(b) - 1)
		}
		l.processBatch(b)
		for i := range b {
			b[i] = event{}
		}
		processed += len(b)
		if sampled {
			//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
			st.HopWallNs.Observe(time.Since(t0).Nanoseconds())
		}
	}
	return processed
}

// ctlStep pops and executes one control-lane event. It runs only at
// window barriers, with every worker parked, so it may touch shared state
// freely: controller callbacks (which install rules and inject packets),
// scheduled link failures, packet-outs.
func (l *lane) ctlStep() {
	s := &l.sim
	st := s.stats
	tick := l.ticks
	l.ticks++
	var t0 time.Time
	sampled := false
	histSample := false
	if st != nil && tick&7 == 0 {
		histSample = true
		st.ObserveHeapDepth(int64(len(s.events)))
		if tick&63 == 0 {
			//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
			t0 = time.Now()
			sampled = true
		}
	}
	e := s.pop()
	s.now = e.at
	if st != nil {
		st.Events[e.kind]++
		if histSample {
			st.QueueWait.Observe(int64(e.at - e.enq))
		}
	}
	switch e.kind {
	case evFunc:
		e.fn()
	case evProcess:
		// The control lane owns no switches, so arrivals normally never
		// land here; handle one anyway (a single-event batch) so a stray
		// schedule degrades gracefully instead of dropping a packet.
		b := append(s.batch[:0], e)
		s.batch = b
		l.processBatch(b)
		b[0] = event{}
	case evPacketIn:
		if st != nil {
			st.PacketIns++
		}
		if n := l.net; n.OnPacketIn != nil {
			n.OnPacketIn(e.sw, e.pkt)
		}
	case evSelf:
		if st != nil {
			st.SelfDeliver++
		}
		if n := l.net; n.OnSelf != nil {
			n.OnSelf(e.sw, e.pkt)
		}
	}
	if sampled {
		//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
		st.HopWallNs.Observe(time.Since(t0).Nanoseconds())
	}
}

// runSharded is the multi-shard event loop: a conservative time-window
// coordinator over the worker lanes. Each iteration either executes one
// due control event (serially, with workers parked) or opens a window
// [tMin, W) — W = tMin + lookahead, capped at the next control event —
// and lets every worker with due events drain it concurrently. Because
// the lookahead is the minimum cross-shard link delay, a packet sent
// during a window arrives no earlier than the window end, so no shard
// ever receives an event in its past. At the barrier, buffered
// cross-shard deliveries are merged deterministically: concatenated in
// source-lane order and stable-sorted by timestamp, so the receiving
// heap assigns the same sequence numbers for any interleaving of the
// worker goroutines.
//
//simlint:barrier the coordinator: touches lane state only while every worker is parked between windows
func (n *Network) runSharded() (int, error) {
	limit := n.Sim.MaxSteps
	if limit == 0 {
		limit = defaultMaxSteps
	}
	workers := n.lanes[: len(n.lanes)-1 : len(n.lanes)-1]
	var wg sync.WaitGroup
	for _, l := range workers {
		l.jobs = make(chan laneJob, 1)
		// The channel is passed by value: the goroutine must not read the
		// lane field the cleanup below nils out.
		go func(l *lane, jobs <-chan laneJob) {
			for j := range jobs {
				if l.sim.stats != nil {
					//simlint:ignore determinism: wall-clock window timing feeds telemetry only, never the sim
					t0 := time.Now()
					l.wprocessed = l.runWindow(j.end, j.budget)
					//simlint:ignore determinism: wall-clock window timing feeds telemetry only, never the sim
					l.busyNs = time.Since(t0).Nanoseconds()
				} else {
					l.wprocessed = l.runWindow(j.end, j.budget)
				}
				wg.Done()
			}
		}(l, l.jobs)
	}
	defer func() {
		for _, l := range workers {
			close(l.jobs)
			l.jobs = nil
		}
	}()

	processed := 0
	var err error
	for {
		// The global frontier: the earliest pending event anywhere.
		tMin := maxTime
		any := false
		for _, l := range n.lanes {
			if len(l.sim.events) > 0 {
				if t := l.sim.events[0].at; !any || t < tMin {
					tMin, any = t, true
				}
			}
		}
		if !any {
			break
		}
		if processed >= limit {
			err = ErrEventLimit{Steps: processed}
			break
		}
		// Control events at the frontier run first, one at a time — each
		// may mutate shared state or schedule new work anywhere, so the
		// frontier is recomputed after every step.
		if cs := &n.ctl.sim; len(cs.events) > 0 && cs.events[0].at <= tMin {
			n.ctl.ctlStep()
			processed++
			continue
		}
		w := tMin + n.lookahead
		if w <= tMin {
			w = maxTime // lookahead overflowed the clock; window is unbounded
		}
		if cs := &n.ctl.sim; len(cs.events) > 0 && cs.events[0].at < w {
			// Never run a worker past a pending control action: it could
			// change link modes or tables the worker would observe.
			w = cs.events[0].at
		}
		budget := limit - processed
		active := 0
		for _, l := range workers {
			if len(l.sim.events) > 0 && l.sim.events[0].at < w {
				active++
			}
		}
		cst := n.ctl.sim.stats
		var wt0 time.Time
		if cst != nil {
			//simlint:ignore determinism: wall-clock barrier timing feeds telemetry only, never the sim
			wt0 = time.Now()
		}
		wg.Add(active)
		for _, l := range workers {
			if len(l.sim.events) > 0 && l.sim.events[0].at < w {
				l.jobs <- laneJob{end: w, budget: budget}
			}
		}
		wg.Wait()
		if cst != nil {
			// Window accounting runs on the coordinator with every worker
			// parked, staged into the control lane's SimLocal like every
			// other counter. A lane was active iff it processed something
			// (it got a job iff its head event was inside the window, and a
			// job always drains at least one event); its stall is the gap
			// between its own busy time and the wall span of the whole
			// barrier — the time it idled waiting for the slowest lane.
			//simlint:ignore determinism: wall-clock barrier timing feeds telemetry only, never the sim
			barrierNs := time.Since(wt0).Nanoseconds()
			cst.Windows++
			if w != maxTime {
				cst.WindowSimNs.Observe(int64(w - tMin))
			}
			var maxBusy int64
			for _, l := range workers {
				if l.wprocessed == 0 {
					continue
				}
				cst.LaneWindows++
				cst.LaneBusyNs += uint64(l.busyNs)
				if l.busyNs > maxBusy {
					maxBusy = l.busyNs
				}
				if stall := barrierNs - l.busyNs; stall > 0 {
					cst.BarrierStallNs.Observe(stall)
				}
			}
			cst.LaneBusyMaxNs += uint64(maxBusy)
		}
		for _, l := range workers {
			processed += l.wprocessed
			l.wprocessed = 0
			l.busyNs = 0
		}
		n.mergeWindow(workers)
	}

	if err == nil {
		// Align every lane clock to the latest one so Sim.Now() (the
		// control lane) reports the end of the run.
		end := n.ctl.sim.now
		for _, l := range workers {
			if l.sim.now > end {
				end = l.sim.now
			}
		}
		for _, l := range n.lanes {
			l.sim.now = end
		}
	}
	return processed, err
}

// mergeWindow exchanges the events buffered during one window: for each
// destination lane, the outboxes of every source lane are concatenated in
// lane order and stable-sorted by timestamp before scheduling, so the
// destination assigns sequence numbers in an order independent of how the
// worker goroutines interleaved.
//
//simlint:barrier runs at the window barrier with all workers parked
func (n *Network) mergeWindow(workers []*lane) {
	cst := n.ctl.sim.stats
	for d := range workers {
		buf := n.mergeBuf[:0]
		for _, src := range workers {
			o := src.out[d]
			buf = append(buf, o...)
			for i := range o {
				o[i] = xev{}
			}
			src.out[d] = o[:0]
		}
		if cst != nil && len(buf) > 0 {
			// Only non-empty merges are observed: the count of staged
			// deliveries is deterministic, and all-zero samples from idle
			// destinations would drown the distribution.
			cst.StagedDepth.Observe(int64(len(buf)))
		}
		n.scheduleMerged(&workers[d].sim, buf)
	}
	buf := n.mergeBuf[:0]
	for _, src := range workers {
		buf = append(buf, src.ctlOut...)
		for i := range src.ctlOut {
			src.ctlOut[i] = xev{}
		}
		src.ctlOut = src.ctlOut[:0]
	}
	if cst != nil && len(buf) > 0 {
		cst.StagedDepth.Observe(int64(len(buf)))
	}
	n.scheduleMerged(&n.ctl.sim, buf)
}

// scheduleMerged stable-sorts one destination's merged buffer by
// timestamp and schedules it, then scrubs the scratch so it does not pin
// packets.
func (n *Network) scheduleMerged(s *Sim, buf []xev) {
	sort.SliceStable(buf, func(i, j int) bool { return buf[i].at < buf[j].at })
	for i := range buf {
		x := &buf[i]
		s.schedule(x.at, event{kind: x.kind, sw: x.sw, port: x.port, pkt: x.pkt})
		*x = xev{}
	}
	n.mergeBuf = buf[:0]
}

// InstallBatch applies install to each of the given switches, grouped by
// owning shard and run concurrently across shards when the network is
// sharded (install must then be safe to call concurrently for switches of
// different shards — table materialization and dispatch compilation
// touch only the target switch). On a single-loop network — or when the
// runtime has a single CPU to offer, where goroutine fan-out is pure
// scheduling overhead — it simply runs in order, preserving the classic
// install sequence byte for byte.
func (n *Network) InstallBatch(ids []int, install func(id int)) {
	if !n.multi || len(ids) < 2 || runtime.GOMAXPROCS(0) == 1 {
		for _, id := range ids {
			install(id)
		}
		return
	}
	byShard := make(map[int][]int)
	for _, id := range ids {
		s := n.shardOf[id]
		byShard[s] = append(byShard[s], id)
	}
	var wg sync.WaitGroup
	//simlint:ignore determinism: per-shard groups run concurrently anyway; launch order is immaterial and installs within a shard keep slice order
	for _, group := range byShard {
		wg.Add(1)
		go func(group []int) {
			defer wg.Done()
			for _, id := range group {
				install(id)
			}
		}(group)
	}
	wg.Wait()
}
