package network

import (
	"errors"
	"fmt"
	"testing"

	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// lineRun pushes a burst of packets rightwards down a line under the
// given shard count and returns a digest of everything the network
// reports: delivery order at the sink, in-band accounting, and the final
// clock. Packets are injected at staggered switches and times so the
// shards genuinely overlap in simulation time.
func lineRun(t *testing.T, nodes, shards, packets int) string {
	t.Helper()
	g := topo.Line(nodes)
	n := New(g, Options{Shards: shards})
	lineForwarding(n)

	var deliveries []string
	n.OnSelf = func(sw int, pkt *openflow.Packet) {
		deliveries = append(deliveries, fmt.Sprintf("%d@%d", sw, n.Sim.Now()))
	}
	for i := 0; i < packets; i++ {
		src := 1 + i%(nodes-2)
		n.Inject(src, 1, openflow.NewPacket(testEth, 2), Time(i)*300)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("deliv=%v msgs=%d bytes=%d total=%d end=%d",
		deliveries, n.InBandCount(testEth), n.InBandSize(testEth), n.TotalInBand(), n.Sim.Now())
}

// TestShardedLineMatchesSingle pins the sharded engine's observable
// outputs — delivery sequence, Table-2 in-band accounting, final clock —
// to the classic single loop on a workload whose event order is
// shard-invariant (distinct delivery timestamps).
func TestShardedLineMatchesSingle(t *testing.T) {
	want := lineRun(t, 24, 1, 12)
	for _, shards := range []int{2, 3, 4, 8} {
		if got := lineRun(t, 24, shards, 12); got != want {
			t.Errorf("shards=%d diverged:\n got %s\nwant %s", shards, got, want)
		}
	}
}

// TestShardedRepeatable pins determinism for a fixed shard count: two
// identical sharded runs must agree byte for byte.
func TestShardedRepeatable(t *testing.T) {
	a := lineRun(t, 40, 4, 30)
	b := lineRun(t, 40, 4, 30)
	if a != b {
		t.Errorf("same-config sharded runs diverged:\n%s\n%s", a, b)
	}
}

// TestShardedPacketIn routes controller deliveries from worker lanes
// through the control lane and checks they all arrive, at the same
// simulation times as the single loop.
func TestShardedPacketIn(t *testing.T) {
	run := func(shards int) string {
		g := topo.Line(16)
		n := New(g, Options{Shards: shards})
		// Every switch punts arrivals on port 1 to the controller.
		for i := 1; i < n.NumSwitches(); i++ {
			n.Switch(i).AddFlow(0, &openflow.FlowEntry{Priority: 1,
				Match: openflow.MatchAll().WithInPort(1), Goto: openflow.NoGoto,
				Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}}, Cookie: "punt"})
		}
		var ins []string
		n.OnPacketIn = func(sw int, pkt *openflow.Packet) {
			ins = append(ins, fmt.Sprintf("%d@%d", sw, n.Sim.Now()))
		}
		for i := 1; i < 16; i++ {
			n.Inject(i, 1, openflow.NewPacket(testEth, 2), Time(i)*10)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v", ins)
	}
	want := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != want {
			t.Errorf("shards=%d packet-ins %s, want %s", shards, got, want)
		}
	}
}

// TestShardedScheduledLinkDown checks that a control event fencing the
// windows (a scheduled failure mid-run) takes effect at exactly its
// timestamp under any shard count: packets crossing the cut link before
// the failure arrive, later ones drop.
func TestShardedScheduledLinkDown(t *testing.T) {
	run := func(shards int) string {
		g := topo.Line(12)
		n := New(g, Options{Shards: shards})
		lineForwarding(n)
		delivered := 0
		n.OnSelf = func(int, *openflow.Packet) { delivered++ }
		// One packet every 2µs from node 1; the 5-6 link dies at 40µs.
		for i := 0; i < 20; i++ {
			n.Inject(1, 1, openflow.NewPacket(testEth, 2), Time(i)*2000)
		}
		if err := n.ScheduleLinkDown(5, 6, true, 40_000); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
		l := n.LinkBetween(5, 6)
		return fmt.Sprintf("deliv=%d sent=%d drop=%d end=%d",
			delivered, l.StatsAB.Sent, l.StatsAB.Dropped, n.Sim.Now())
	}
	want := run(1)
	for _, shards := range []int{2, 3, 4} {
		if got := run(shards); got != want {
			t.Errorf("shards=%d: %s, want %s", shards, got, want)
		}
	}
}

// TestShardedLossyLink exercises the per-direction loss rngs across
// shard counts: the loss *sequence* is seeded per direction, so the exact
// drop pattern is identical for every shard count at the same seed.
func TestShardedLossyLink(t *testing.T) {
	run := func(shards int) string {
		g := topo.Line(10)
		n := New(g, Options{Shards: shards, Seed: 11})
		lineForwarding(n)
		if err := n.SetLoss(4, 5, 0.5); err != nil {
			t.Fatal(err)
		}
		delivered := 0
		n.OnSelf = func(int, *openflow.Packet) { delivered++ }
		for i := 0; i < 40; i++ {
			n.Inject(1, 1, openflow.NewPacket(testEth, 2), Time(i)*5000)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
		l := n.LinkBetween(4, 5)
		return fmt.Sprintf("deliv=%d sent=%d drop=%d", delivered, l.StatsAB.Sent, l.StatsAB.Dropped)
	}
	want := run(1)
	if got := run(4); got != want {
		t.Errorf("shards=4: %s, want %s", got, want)
	}
}

// TestShardedEventLimit surfaces the step budget as ErrEventLimit under
// sharding too (the per-window budgets may overshoot by up to the shard
// count, but the error must still fire).
func TestShardedEventLimit(t *testing.T) {
	g := topo.Line(24)
	n := New(g, Options{Shards: 4, MaxSteps: 10})
	lineForwarding(n)
	for i := 0; i < 8; i++ {
		n.Inject(1+i, 1, openflow.NewPacket(testEth, 2), 0)
	}
	_, err := n.Run()
	var lim ErrEventLimit
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
}

// TestShardClamping: shard counts beyond the node count clamp, and 0/1
// keep the classic single loop.
func TestShardClamping(t *testing.T) {
	g := topo.Line(3)
	if n := New(g, Options{Shards: 64}); n.Shards() != 3 {
		t.Errorf("Shards() = %d, want 3 (clamped)", n.Shards())
	}
	for _, s := range []int{0, 1} {
		n := New(g, Options{Shards: s})
		if n.Shards() != 1 || n.multi {
			t.Errorf("Shards=%d: got %d lanes multi=%v, want single loop", s, n.Shards(), n.multi)
		}
	}
}

// TestShardedObserverSerialization registers a hop observer mutating
// unsynchronized state; the network must serialize the fan-out across
// worker lanes (this test is the -race probe for obsMu).
func TestShardedObserverSerialization(t *testing.T) {
	g := topo.Line(32)
	n := New(g, Options{Shards: 8})
	lineForwarding(n)
	hops := 0
	n.ObserveHops(func(Hop, *openflow.Packet, bool) { hops++ })
	for i := 0; i < 16; i++ {
		n.Inject(1+i, 1, openflow.NewPacket(testEth, 2), Time(i)*100)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if hops != n.TotalInBand() {
		t.Errorf("observer saw %d hops, accounting says %d", hops, n.TotalInBand())
	}
}
