package network

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"smartsouth/internal/telemetry"
)

// Sweep runs n independent jobs across a bounded worker pool and returns
// the join of their errors (nil when all succeed).
//
// Each job must be self-contained: build its own Network (or deployment),
// run it, and record results into caller-owned per-index storage. A
// Network and its Sim are single-goroutine structures — they must never be
// shared between jobs — but independent networks compose freely: the only
// process-global state on the hot path is the packet freelist, which is a
// sync.Pool and safe under concurrency. Within one job the simulation is
// exactly as deterministic as a sequential run; only the interleaving
// *between* jobs varies, which is unobservable as long as jobs do not
// share state.
//
// workers <= 0 selects GOMAXPROCS. With workers == 1 (or n == 1) the jobs
// run sequentially on the calling goroutine in index order, which is the
// reference behaviour parallel runs are compared against.
func Sweep(n, workers int, job func(i int) error) error {
	return SweepWith(n, workers,
		func(int) struct{} { return struct{}{} },
		func(_ struct{}, i int) error { return job(i) })
}

// SweepWith is Sweep with per-worker reusable state: each live worker
// calls newState once — typically building a deployed network plus
// whatever scratch the jobs need — and every job that worker picks up
// receives that same value. At 10k+ switches, building a network and
// installing its programs costs far more than running one measurement,
// so rebuilding per iteration makes setup dominate the sweep; one
// network per worker amortizes the setup across all iterations that
// worker executes.
//
// Jobs on one worker run sequentially, so mutating the state between
// iterations is safe as long as each job resets what it measures
// (accounting, runtime stats, inboxes) — the monitoring-loop idiom:
// reset, trigger, run, collect. Jobs must not assume which worker — and
// therefore which state value — a given index lands on: with more than
// one worker the assignment is a race by design, so any per-index output
// must depend only on the index, not on the state's history.
//
// newState receives the worker index w in [0, workers); the sequential
// path uses a single state built with w == 0.
func SweepWith[S any](n, workers int, newState func(w int) S, job func(st S, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	m := telemetry.M
	m.SweepRuns.Inc()
	m.SweepWorkers.Set(int64(workers))
	m.ResetSweepWorkers(workers)
	//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
	sweepStart := time.Now()
	if workers == 1 {
		st := newState(0)
		for i := 0; i < n; i++ {
			//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
			t0 := time.Now()
			errs[i] = job(st, i)
			//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
			m.NoteSweepJob(0, time.Since(t0).Nanoseconds())
		}
		//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
		m.SweepWallNs.Add(time.Since(sweepStart).Nanoseconds())
		return errors.Join(errs...)
	}
	// Dynamic work stealing via a shared counter: jobs vary wildly in cost
	// (a Ring(240) sweep dwarfs a Ring(20) one), so pre-partitioning the
	// index space would leave workers idle behind the largest stratum.
	// Per-worker busy time and job counts feed the utilization telemetry:
	// a worker whose busy time is far below the sweep wall time is idling
	// behind a straggler.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			st := newState(w)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
				t0 := time.Now()
				errs[i] = job(st, i)
				//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
				m.NoteSweepJob(w, time.Since(t0).Nanoseconds())
			}
		}(w)
	}
	wg.Wait()
	//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
	m.SweepWallNs.Add(time.Since(sweepStart).Nanoseconds())
	return errors.Join(errs...)
}
