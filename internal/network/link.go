package network

import "math/rand"

// LinkMode describes the health of one direction of a link.
type LinkMode int

const (
	// LinkUp delivers packets normally.
	LinkUp LinkMode = iota
	// LinkDown delivers nothing and is *visible* to port liveness: the
	// fast-failover groups on both endpoints skip the port.
	LinkDown
	// LinkBlackhole silently drops every packet while liveness still
	// reports the port as up — the paper's silent failure.
	LinkBlackhole
	// LinkLossy drops each packet independently with probability
	// LossProb, liveness up.
	LinkLossy
)

func (m LinkMode) String() string {
	switch m {
	case LinkUp:
		return "up"
	case LinkDown:
		return "down"
	case LinkBlackhole:
		return "blackhole"
	case LinkLossy:
		return "lossy"
	}
	return "?"
}

// DirStats counts traffic for one direction of a link; this is the
// simulator's ground truth that tests compare smart-counter readings
// against.
type DirStats struct {
	Sent      int // handed to the link by the transmitter
	Delivered int // arrived at the receiver
	Dropped   int // swallowed (blackhole or loss)
}

// Link is one undirected link between (A, PortA) and (B, PortB) with
// independent per-direction failure modes.
type Link struct {
	A, B         int // switch IDs
	PortA, PortB int
	Delay        Time

	// Per-direction loss rngs: each direction is drawn only by the shard
	// that owns its transmitting endpoint, so a sharded run never has two
	// goroutines sharing one generator.
	modeAB, modeBA LinkMode
	lossAB, lossBA float64
	rngAB, rngBA   *rand.Rand

	// StatsAB counts the A-to-B direction, StatsBA the reverse.
	StatsAB, StatsBA DirStats
}

// dirInfo resolves the transmit side: given the transmitting switch, the
// relevant mode, loss probability, stats and the receiving (switch, port).
func (l *Link) dir(from int) (mode *LinkMode, loss *float64, st *DirStats, rng *rand.Rand, to, toPort int) {
	if from == l.A {
		return &l.modeAB, &l.lossAB, &l.StatsAB, l.rngAB, l.B, l.PortB
	}
	return &l.modeBA, &l.lossBA, &l.StatsBA, l.rngBA, l.A, l.PortA
}

// transmit decides the fate of one packet sent by switch `from`:
// delivered reports whether it reaches the far side.
func (l *Link) transmit(from int) (to, toPort int, delivered bool) {
	mode, loss, st, rng, to, toPort := l.dir(from)
	st.Sent++
	switch *mode {
	case LinkDown:
		st.Dropped++
		return to, toPort, false
	case LinkBlackhole:
		st.Dropped++
		return to, toPort, false
	case LinkLossy:
		if rng.Float64() < *loss {
			st.Dropped++
			return to, toPort, false
		}
	}
	st.Delivered++
	return to, toPort, true
}

// liveFor reports whether the port at switch `sw` should be considered
// live. Only LinkDown is visible to liveness: blackholes and lossy links
// look healthy, per the paper's failure model.
func (l *Link) liveFor() bool {
	return l.modeAB != LinkDown && l.modeBA != LinkDown
}
