package network

import (
	"fmt"
	"testing"

	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// benchLinkCrossing is the shared body of the link-crossing benchmarks:
// one injection, one link crossing, one local delivery per iteration.
func benchLinkCrossing(b *testing.B, opts Options) {
	g := topo.Line(2)
	opts.MaxSteps = 1 << 30
	n := New(g, opts)
	for i := 0; i < 2; i++ {
		n.Switch(i).AddFlow(0, &openflow.FlowEntry{
			Priority: 1, Match: openflow.MatchAll().WithInPort(1),
			Actions: []openflow.Action{openflow.Output{Port: openflow.PortSelf}},
			Goto:    openflow.NoGoto, Cookie: "sink",
		})
		n.Switch(i).AddFlow(0, &openflow.FlowEntry{
			Priority: 0, Match: openflow.MatchAll(),
			Actions: []openflow.Action{openflow.Output{Port: 1}},
			Goto:    openflow.NoGoto, Cookie: "tx",
		})
	}
	pkt := openflow.NewPacket(1, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Inject(0, openflow.PortController, pkt, n.Sim.Now()+1)
		if _, err := n.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkCrossing measures raw simulator throughput. Telemetry is
// off so the number stays comparable to the committed baselines, which
// predate telemetry; BenchmarkLinkCrossingTelemetry measures the same
// loop with the always-on instrumentation.
func BenchmarkLinkCrossing(b *testing.B) {
	benchLinkCrossing(b, Options{NoTelemetry: true})
}

// BenchmarkLinkCrossingTelemetry is BenchmarkLinkCrossing with telemetry
// on. Each iteration is a full Inject+Run of only ~3 events, so the
// per-Run flush (two clock reads, counter and histogram publication,
// FlowTable scan deltas) dominates — this is the worst case for the
// always-on cost, not the steady-state per-event overhead, which
// BenchmarkTelemetryOverhead measures on a realistic traversal.
func BenchmarkLinkCrossingTelemetry(b *testing.B) {
	benchLinkCrossing(b, Options{})
}

// BenchmarkFanoutInjection stresses heap churn and dispatch cost: one
// injection per switch, each locally absorbed.
func BenchmarkFanoutInjection(b *testing.B) {
	for _, n := range []int{50, 200} {
		g := topo.RandomConnected(n, n/2, int64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := New(g, Options{})
			for i := 0; i < net.NumSwitches(); i++ {
				net.Switch(i).AddFlow(0, &openflow.FlowEntry{
					Priority: 1, Match: openflow.MatchAll(),
					Actions: []openflow.Action{openflow.Output{Port: openflow.PortSelf}},
					Goto:    openflow.NoGoto, Cookie: "sink",
				})
			}
			pkt := openflow.NewPacket(1, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for sw := 0; sw < net.NumSwitches(); sw++ {
					net.Inject(sw, openflow.PortController, pkt, net.Sim.Now()+1)
				}
				if _, err := net.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
