package network

import (
	"fmt"
	"testing"

	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// BenchmarkLinkCrossing measures raw simulator throughput: one injection,
// one link crossing, one local delivery.
func BenchmarkLinkCrossing(b *testing.B) {
	g := topo.Line(2)
	n := New(g, Options{MaxSteps: 1 << 30})
	for i := 0; i < 2; i++ {
		n.Switch(i).AddFlow(0, &openflow.FlowEntry{
			Priority: 1, Match: openflow.MatchAll().WithInPort(1),
			Actions: []openflow.Action{openflow.Output{Port: openflow.PortSelf}},
			Goto:    openflow.NoGoto, Cookie: "sink",
		})
		n.Switch(i).AddFlow(0, &openflow.FlowEntry{
			Priority: 0, Match: openflow.MatchAll(),
			Actions: []openflow.Action{openflow.Output{Port: 1}},
			Goto:    openflow.NoGoto, Cookie: "tx",
		})
	}
	pkt := openflow.NewPacket(1, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Inject(0, openflow.PortController, pkt, n.Sim.Now()+1)
		if _, err := n.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFanoutInjection stresses heap churn and dispatch cost: one
// injection per switch, each locally absorbed.
func BenchmarkFanoutInjection(b *testing.B) {
	for _, n := range []int{50, 200} {
		g := topo.RandomConnected(n, n/2, int64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := New(g, Options{})
			for i := 0; i < net.NumSwitches(); i++ {
				net.Switch(i).AddFlow(0, &openflow.FlowEntry{
					Priority: 1, Match: openflow.MatchAll(),
					Actions: []openflow.Action{openflow.Output{Port: openflow.PortSelf}},
					Goto:    openflow.NoGoto, Cookie: "sink",
				})
			}
			pkt := openflow.NewPacket(1, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for sw := 0; sw < net.NumSwitches(); sw++ {
					net.Inject(sw, openflow.PortController, pkt, net.Sim.Now()+1)
				}
				if _, err := net.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
