// Package network wires openflow switches together according to a topo
// graph and runs them under a deterministic discrete-event simulator:
// links with latency and failure modes (down, silent blackhole,
// probabilistic loss), controller and local-host attachment points, and
// exact per-EtherType message accounting — the measurement substrate for
// the paper's Table 2.
//
//simlint:deterministic
package network

import (
	"time"

	"smartsouth/internal/openflow"
	"smartsouth/internal/telemetry"
)

// Time is simulation time in nanoseconds.
type Time int64

// eventKind selects the typed payload of an event. The per-hop path
// (process, packet-in, self-delivery) uses typed records carrying switch,
// port and packet fields so that scheduling a hop allocates nothing; the
// generic callback kind remains for control-plane timers and scheduled
// topology changes, which are rare.
type eventKind uint8

const (
	// evFunc runs a generic callback (timers, scheduled link failures,
	// explicit action-list packet-outs).
	evFunc eventKind = iota
	// evProcess runs the pipeline of switch sw for pkt arriving on port.
	// The simulator owns every in-fabric packet between its emission and
	// its processing: afterwards the packet is either forwarded onward as
	// an emission (the unicast fast path consumes the arrival in place)
	// or released to the freelist.
	evProcess
	// evPacketIn delivers pkt to the network's OnPacketIn attachment (the
	// out-of-band controller channel). The callback takes ownership; the
	// controller recycles inbox packets when its inbox is cleared.
	evPacketIn
	// evSelf delivers pkt to OnSelf (the switch-local host). The callback
	// takes ownership.
	evSelf
)

// event is one scheduled occurrence. seq breaks ties so simultaneous
// events run in schedule order, keeping the simulation deterministic: the
// (at, seq) pair is a strict total order, so the pop sequence is the same
// for any correct heap implementation.
type event struct {
	at   Time
	enq  Time // schedule time, for the queue-wait telemetry
	seq  uint64
	kind eventKind
	sw   int
	port int
	pkt  *openflow.Packet
	fn   func()
}

func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Sim is a minimal deterministic discrete-event loop. The heap is
// hand-rolled over a plain event slice: container/heap would box every
// pushed event into an interface value, which is an allocation per
// scheduled hop.
type Sim struct {
	now    Time
	seq    uint64
	events []event

	// lane owns this Sim and receives the typed packet events; set by
	// network.New. A zero Sim still runs evFunc events.
	lane *lane

	// MaxSteps bounds the number of events processed per Run call, so a
	// miscompiled rule set that ping-pongs a packet forever surfaces as
	// ErrEventLimit instead of a hang. Zero means the default.
	MaxSteps int

	// batch is the scratch run of same-switch, same-timestamp process
	// events Run drains as one ExecBatch; reused across iterations.
	batch []event

	// stats is the telemetry scratchpad of this (single-goroutine) loop;
	// nil disables recording. Plain increments here, flushed into the
	// process-wide atomics by Network.Run at Run boundaries.
	stats *telemetry.SimLocal
}

// The typed event kinds double as telemetry kind indices; the two enums
// must stay aligned.
var _ = [1]struct{}{}[int(evFunc)-telemetry.KindFunc]
var _ = [1]struct{}{}[int(evProcess)-telemetry.KindProcess]
var _ = [1]struct{}{}[int(evPacketIn)-telemetry.KindPacketIn]
var _ = [1]struct{}{}[int(evSelf)-telemetry.KindSelf]

const defaultMaxSteps = 10_000_000

// Now returns the current simulation time.
func (s *Sim) Now() Time { return s.now }

// push inserts e into the heap (sift-up).
func (s *Sim) push(e event) {
	s.events = append(s.events, e)
	h := s.events
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum event (sift-down). The vacated tail
// slot is zeroed so the heap's backing array does not pin packets or
// closures after they run.
func (s *Sim) pop() event {
	h := s.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	s.events = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h[l].less(&h[min]) {
			min = l
		}
		if r < n && h[r].less(&h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// schedule enqueues a typed event at absolute time t (clamped to now for
// past times).
func (s *Sim) schedule(t Time, e event) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.at, e.seq, e.enq = t, s.seq, s.now
	s.push(e)
}

// At schedules fn to run at absolute time t (clamped to now for past
// times).
func (s *Sim) At(t Time, fn func()) {
	s.schedule(t, event{kind: evFunc, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// ErrEventLimit is returned by Run when the step budget is exhausted,
// which almost always means an installed rule set loops packets forever.
type ErrEventLimit struct{ Steps int }

func (e ErrEventLimit) Error() string { return "network: event limit exceeded" }

// Run processes events until the queue drains, returning the number of
// events processed, or ErrEventLimit if MaxSteps was hit.
func (s *Sim) Run() (int, error) {
	limit := s.MaxSteps
	if limit == 0 {
		limit = defaultMaxSteps
	}
	processed := 0
	st := s.stats
	for len(s.events) > 0 {
		if processed >= limit {
			return processed, ErrEventLimit{Steps: processed}
		}
		var t0 time.Time
		sampled := false
		histSample := false
		if st != nil {
			// The depth and queue-wait histograms are sampled 1-in-8
			// events: stride sampling preserves the distributions while
			// keeping the two Observe calls (~7ns together) off the
			// per-event budget. The counters stay exact. Wall-clock cost
			// is sampled more sparsely still (1-in-64) because each
			// sample costs two time.Now calls.
			if processed&7 == 0 {
				histSample = true
				st.ObserveHeapDepth(int64(len(s.events)))
				if processed&63 == 0 {
					//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
					t0 = time.Now()
					sampled = true
				}
			}
		}
		e := s.pop()
		s.now = e.at
		if st != nil {
			st.Events[e.kind]++
			if histSample {
				st.QueueWait.Observe(int64(e.at - e.enq))
			}
		}
		switch e.kind {
		case evFunc:
			e.fn()
		case evProcess:
			// Drain the maximal run of process events for the same switch
			// at the same timestamp into one batch. Pops come off in
			// (at, seq) order, so the batch preserves schedule order; and
			// because pipeline execution never schedules events (only
			// dispatch does, after the batch executes), running the batch
			// as exec-all-then-dispatch-in-order assigns exactly the same
			// event sequence numbers as one-at-a-time processing did —
			// batching is invisible to the determinism golden.
			b := append(s.batch[:0], e)
			for len(s.events) > 0 && processed+len(b) < limit {
				nx := &s.events[0]
				if nx.at != e.at || nx.kind != evProcess || nx.sw != e.sw {
					break
				}
				b = append(b, s.pop())
			}
			s.batch = b
			if st != nil && len(b) > 1 {
				st.Events[evProcess] += uint64(len(b) - 1)
			}
			// processBatch releases (or forwards) the batch packets; the
			// scratch only needs its references dropped.
			s.lane.processBatch(b)
			for i := range b {
				b[i] = event{}
			}
			processed += len(b) - 1
		case evPacketIn:
			if st != nil {
				st.PacketIns++
			}
			if n := s.lane.net; n.OnPacketIn != nil {
				n.OnPacketIn(e.sw, e.pkt)
			}
		case evSelf:
			if st != nil {
				st.SelfDeliver++
			}
			if n := s.lane.net; n.OnSelf != nil {
				n.OnSelf(e.sw, e.pkt)
			}
		}
		if sampled {
			//simlint:ignore determinism: wall-clock sample feeds telemetry only, never the sim
			st.HopWallNs.Observe(time.Since(t0).Nanoseconds())
		}
		processed++
	}
	return processed, nil
}
