// Package network wires openflow switches together according to a topo
// graph and runs them under a deterministic discrete-event simulator:
// links with latency and failure modes (down, silent blackhole,
// probabilistic loss), controller and local-host attachment points, and
// exact per-EtherType message accounting — the measurement substrate for
// the paper's Table 2.
package network

import "container/heap"

// Time is simulation time in nanoseconds.
type Time int64

// event is one scheduled callback. seq breaks ties so simultaneous events
// run in schedule order, keeping the simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Sim is a minimal deterministic discrete-event loop.
type Sim struct {
	now    Time
	seq    uint64
	events eventHeap
	steps  int

	// MaxSteps bounds the number of events processed per Run call, so a
	// miscompiled rule set that ping-pongs a packet forever surfaces as
	// ErrEventLimit instead of a hang. Zero means the default.
	MaxSteps int
}

const defaultMaxSteps = 10_000_000

// Now returns the current simulation time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run at absolute time t (clamped to now for past
// times).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// ErrEventLimit is returned by Run when the step budget is exhausted,
// which almost always means an installed rule set loops packets forever.
type ErrEventLimit struct{ Steps int }

func (e ErrEventLimit) Error() string { return "network: event limit exceeded" }

// Run processes events until the queue drains, returning the number of
// events processed, or ErrEventLimit if MaxSteps was hit.
func (s *Sim) Run() (int, error) {
	limit := s.MaxSteps
	if limit == 0 {
		limit = defaultMaxSteps
	}
	processed := 0
	for len(s.events) > 0 {
		if processed >= limit {
			return processed, ErrEventLimit{Steps: processed}
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
		processed++
	}
	return processed, nil
}
