package network

import (
	"testing"

	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

// TestSteadyHopPathZeroAlloc pins the zero-allocation property of the
// steady-state hop path: injection, event scheduling, pipeline execution,
// link crossing and local absorption must all run out of recycled memory
// (the packet freelist, the per-switch scratch context, the reusable
// Result and the event heap's backing array) once warm.
func TestSteadyHopPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; property is checked in non-race runs")
	}
	g := topo.Line(2)
	n := New(g, Options{})
	for i := 0; i < 2; i++ {
		n.Switch(i).AddFlow(0, &openflow.FlowEntry{
			Priority: 1, Match: openflow.MatchAll().WithInPort(1),
			Actions: []openflow.Action{openflow.Output{Port: openflow.PortSelf}},
			Goto:    openflow.NoGoto, Cookie: "sink",
		})
		n.Switch(i).AddFlow(0, &openflow.FlowEntry{
			Priority: 0, Match: openflow.MatchAll(),
			Actions: []openflow.Action{openflow.Output{Port: 1}},
			Goto:    openflow.NoGoto, Cookie: "tx",
		})
	}
	pkt := openflow.NewPacket(0x0900, 4)
	hop := func() {
		n.Inject(0, openflow.PortController, pkt, n.Sim.Now()+1)
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: grow the event heap, the scratch Result slices and the
	// packet freelist to steady state.
	for i := 0; i < 100; i++ {
		hop()
	}
	if avg := testing.AllocsPerRun(200, hop); avg != 0 {
		t.Errorf("steady-state hop path allocates %.1f allocs/op, want 0", avg)
	}
}
