package dump

import (
	"encoding/json"
	"fmt"
	"io"

	"smartsouth/internal/telemetry"
)

// The causal tracer's spans export in two shapes: Chrome trace-event
// JSON (WriteChromeTrace) for chrome://tracing and Perfetto, and plain
// JSONL (WriteSpanJSONL) for jq-style offline analysis. Both take the
// merged, time-ordered record slice Network.SpanRecords returns.

// chromeEvent is one trace-event object. The viewer maps pid→process
// row and tid→thread row; we map lanes to processes and switches to
// threads, so a sharded run renders as one swimlane block per shard
// with the traversal hopping between them.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders merged span records as a Chrome trace-event
// JSON array. Every span becomes a complete ("X") event; every
// parent→child edge that crosses a lane boundary additionally becomes a
// flow-event pair ("s" at the parent, "f" at the child), which the
// viewer draws as an arrow between the shard swimlanes — the cross-shard
// stitching made visible. Same-lane edges are left implicit (nesting on
// the time axis already shows them), which keeps the file small and
// makes flow events a direct count of cross-shard causality.
func WriteChromeTrace(w io.Writer, recs []telemetry.SpanRecord) error {
	bySpan := make(map[uint64]*telemetry.SpanRecord, len(recs))
	// earliestChild[s] is the At of span s's earliest child — the span's
	// visible duration (an execution "lasts" until its first consequence;
	// leaves get a nominal 1ns so they render).
	earliestChild := make(map[uint64]int64, len(recs))
	for i := range recs {
		r := &recs[i]
		bySpan[r.Span] = r
		if r.Parent != 0 {
			if at, ok := earliestChild[r.Parent]; !ok || r.At < at {
				earliestChild[r.Parent] = r.At
			}
		}
	}
	events := make([]chromeEvent, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		dur := int64(1)
		if at, ok := earliestChild[r.Span]; ok && at > r.At {
			dur = at - r.At
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("sw%d exec", r.Sw),
			Ph:   "X",
			Ts:   float64(r.At) / 1000.0,
			Dur:  float64(dur) / 1000.0,
			Pid:  int(r.Lane),
			Tid:  int(r.Sw),
			Args: map[string]any{
				"trace":   r.Trace,
				"span":    r.Span,
				"parent":  r.Parent,
				"port":    r.Port,
				"eth":     fmt.Sprintf("0x%04x", r.Eth),
				"matched": r.Matched,
				"emits":   r.Emits,
			},
		})
		if r.Parent == 0 {
			continue
		}
		p, ok := bySpan[r.Parent]
		if !ok || int(p.Lane) == int(r.Lane) {
			continue
		}
		// Cross-lane edge: a flow arrow from the parent's slice to ours.
		// The id must be unique per arrow; the child span id is (every
		// span has at most one parent).
		id := fmt.Sprintf("x%d", r.Span)
		events = append(events,
			chromeEvent{Name: "hop", Ph: "s", Cat: "xshard", ID: id,
				Ts: float64(p.At) / 1000.0, Pid: int(p.Lane), Tid: int(p.Sw)},
			chromeEvent{Name: "hop", Ph: "f", BP: "e", Cat: "xshard", ID: id,
				Ts: float64(r.At) / 1000.0, Pid: int(r.Lane), Tid: int(r.Sw)})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// spanJSON is the JSONL shape of one span record.
type spanJSON struct {
	At      int64  `json:"at"`
	Trace   uint32 `json:"trace"`
	Span    uint64 `json:"span"`
	Parent  uint64 `json:"parent"`
	Sw      int32  `json:"sw"`
	Lane    int16  `json:"lane"`
	Port    int16  `json:"port"`
	Eth     string `json:"eth"`
	Matched bool   `json:"matched"`
	Emits   uint8  `json:"emits"`
}

// WriteSpanJSONL dumps merged span records as one JSON object per line,
// in the slice's (simulation-time) order.
func WriteSpanJSONL(w io.Writer, recs []telemetry.SpanRecord) error {
	enc := json.NewEncoder(w)
	for i := range recs {
		r := &recs[i]
		if err := enc.Encode(spanJSON{
			At: r.At, Trace: r.Trace, Span: r.Span, Parent: r.Parent,
			Sw: r.Sw, Lane: r.Lane, Port: r.Port,
			Eth: fmt.Sprintf("0x%04x", r.Eth), Matched: r.Matched, Emits: r.Emits,
		}); err != nil {
			return err
		}
	}
	return nil
}
