package dump

import (
	"strings"
	"testing"

	"smartsouth/internal/controller"
	"smartsouth/internal/core"
	"smartsouth/internal/network"
	"smartsouth/internal/openflow"
	"smartsouth/internal/topo"
)

func TestSwitchDumpContainsEverything(t *testing.T) {
	sw := openflow.NewSwitch(3, 2)
	f := openflow.Field{Name: "x", Off: 0, Bits: 4}
	sw.AddFlow(0, &openflow.FlowEntry{
		Priority: 7, Match: openflow.MatchEth(0x8801).WithField(f, 2),
		Actions: []openflow.Action{openflow.SetField{F: f, Value: 1}, openflow.Output{Port: 1}},
		Goto:    4, Cookie: "my-rule",
	})
	sw.AddGroup(&openflow.GroupEntry{ID: 9, Type: openflow.GroupFF, Buckets: []openflow.Bucket{
		{WatchPort: 2, Actions: []openflow.Action{openflow.Output{Port: 2}}},
		{WatchPort: openflow.WatchNone, Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}}},
	}})

	out := Switch(sw)
	for _, want := range []string{
		"switch 3", "table 0", "my-rule", "goto:4", "x[0:4]=2",
		"set(x[0:4]:=1)", "output:1", "group 9 type=ff",
		"watch port 2", "watch always", "output:controller",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpOfRealService(t *testing.T) {
	g := topo.Line(3)
	net := network.New(g, network.Options{})
	c := controller.New(net)
	if _, err := core.InstallSnapshot(c, g, 0); err != nil {
		t.Fatal(err)
	}
	out := Switch(net.Switch(1))
	if !strings.Contains(out, "svc8802/n1/start") || !strings.Contains(out, "push(") {
		t.Errorf("service dump incomplete:\n%.400s", out)
	}
	sum := Summary([]*openflow.Switch{net.Switch(0), net.Switch(1), net.Switch(2)})
	if strings.Count(sum, "\n") != 3 {
		t.Errorf("summary:\n%s", sum)
	}
}

func TestEmptySwitchDump(t *testing.T) {
	sw := openflow.NewSwitch(0, 1)
	out := Switch(sw)
	if !strings.Contains(out, "0 flows, 0 groups") {
		t.Errorf("empty dump: %s", out)
	}
}
