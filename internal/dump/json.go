package dump

import (
	"encoding/json"
	"fmt"

	"smartsouth/internal/openflow"
)

// The JSON program encoding makes compiled programs a durable artifact:
// a controller can dump what it compiled, and offline tools (cmd/oflint)
// can analyze a deployment without running a controller. The encoding is
// a direct transliteration of the Program IR; actions are a tagged union
// on "op" so the set stays extensible without format versioning.

type programJSON struct {
	Service   string              `json:"service"`
	Slot      int                 `json:"slot"`
	Slots     int                 `json:"slots"`
	TagBytes  int                 `json:"tag_bytes,omitempty"`
	Transient bool                `json:"transient,omitempty"`
	Switches  []switchProgramJSON `json:"switches"`
}

type switchProgramJSON struct {
	Switch   int              `json:"switch"`
	NumPorts int              `json:"num_ports"`
	Flows    []flowRuleJSON   `json:"flows,omitempty"`
	States   []stateTableJSON `json:"state_tables,omitempty"`
	Groups   []groupJSON      `json:"groups,omitempty"`
}

// stateTableJSON carries one stateful stage: the table ID, the flow-key
// fields, and the EFSM transition entries.
type stateTableJSON struct {
	Table   int              `json:"table"`
	Key     []fieldJSON      `json:"key,omitempty"`
	Entries []stateEntryJSON `json:"entries"`
}

type stateEntryJSON struct {
	Priority  int          `json:"priority"`
	AnyState  bool         `json:"any_state,omitempty"`
	State     uint64       `json:"state,omitempty"`
	StateMask uint64       `json:"state_mask,omitempty"`
	Match     matchJSON    `json:"match"`
	Actions   []actionJSON `json:"actions,omitempty"`
	SetState  *uint64      `json:"set_state,omitempty"`
	Goto      *int         `json:"goto,omitempty"`
	Cookie    string       `json:"cookie,omitempty"`
}

type flowRuleJSON struct {
	Table    int          `json:"table"`
	Priority int          `json:"priority"`
	Match    matchJSON    `json:"match"`
	Actions  []actionJSON `json:"actions,omitempty"`
	// Goto is a pointer so a hand-written rule that omits it decodes as
	// NoGoto rather than as "goto table 0".
	Goto   *int   `json:"goto,omitempty"`
	Cookie string `json:"cookie,omitempty"`
}

// matchJSON keeps the IR's wildcard convention: -1 means "any" for
// in_port, eth_type and ttl.
type matchJSON struct {
	InPort  int              `json:"in_port"`
	EthType int              `json:"eth_type"`
	TTL     int              `json:"ttl"`
	Fields  []fieldMatchJSON `json:"fields,omitempty"`
}

type fieldMatchJSON struct {
	Field fieldJSON `json:"field"`
	Value uint64    `json:"value"`
	Mask  uint64    `json:"mask,omitempty"`
}

type fieldJSON struct {
	Name string `json:"name,omitempty"`
	Off  int    `json:"off"`
	Bits int    `json:"bits"`
}

type groupJSON struct {
	ID      uint32       `json:"id"`
	Type    string       `json:"type"`
	Buckets []bucketJSON `json:"buckets"`
}

type bucketJSON struct {
	WatchPort int          `json:"watch_port,omitempty"`
	Actions   []actionJSON `json:"actions,omitempty"`
}

// actionJSON is the tagged union over openflow.Action implementations.
// Exactly one op per object; fields beyond the op's own are rejected by
// decodeAction to catch hand-written typos.
type actionJSON struct {
	Op    string     `json:"op"`
	Port  *int       `json:"port,omitempty"`  // output
	Field *fieldJSON `json:"field,omitempty"` // set_field
	Value *uint64    `json:"value,omitempty"` // set_field
	Label *uint32    `json:"label,omitempty"` // push_label
	ID    *uint32    `json:"id,omitempty"`    // group
}

func encodeField(f openflow.Field) fieldJSON {
	return fieldJSON{Name: f.Name, Off: f.Off, Bits: f.Bits}
}

func decodeField(fj fieldJSON) openflow.Field {
	return openflow.Field{Name: fj.Name, Off: fj.Off, Bits: fj.Bits}
}

func encodeAction(a openflow.Action) (actionJSON, error) {
	switch ac := a.(type) {
	case openflow.Output:
		p := ac.Port
		return actionJSON{Op: "output", Port: &p}, nil
	case openflow.SetField:
		f, v := encodeField(ac.F), ac.Value
		return actionJSON{Op: "set_field", Field: &f, Value: &v}, nil
	case openflow.PushLabel:
		l := ac.Value
		return actionJSON{Op: "push_label", Label: &l}, nil
	case openflow.PopLabel:
		return actionJSON{Op: "pop_label"}, nil
	case openflow.DecTTL:
		return actionJSON{Op: "dec_ttl"}, nil
	case openflow.Group:
		id := ac.ID
		return actionJSON{Op: "group", ID: &id}, nil
	}
	return actionJSON{}, fmt.Errorf("dump: unencodable action %T", a)
}

func decodeAction(aj actionJSON) (openflow.Action, error) {
	switch aj.Op {
	case "output":
		if aj.Port == nil {
			return nil, fmt.Errorf("dump: output action without port")
		}
		return openflow.Output{Port: *aj.Port}, nil
	case "set_field":
		if aj.Field == nil || aj.Value == nil {
			return nil, fmt.Errorf("dump: set_field action without field or value")
		}
		return openflow.SetField{F: decodeField(*aj.Field), Value: *aj.Value}, nil
	case "push_label":
		if aj.Label == nil {
			return nil, fmt.Errorf("dump: push_label action without label")
		}
		return openflow.PushLabel{Value: *aj.Label}, nil
	case "pop_label":
		return openflow.PopLabel{}, nil
	case "dec_ttl":
		return openflow.DecTTL{}, nil
	case "group":
		if aj.ID == nil {
			return nil, fmt.Errorf("dump: group action without id")
		}
		return openflow.Group{ID: *aj.ID}, nil
	}
	return nil, fmt.Errorf("dump: unknown action op %q", aj.Op)
}

func encodeActions(as []openflow.Action) ([]actionJSON, error) {
	out := make([]actionJSON, 0, len(as))
	for _, a := range as {
		aj, err := encodeAction(a)
		if err != nil {
			return nil, err
		}
		out = append(out, aj)
	}
	return out, nil
}

func decodeActions(ajs []actionJSON) ([]openflow.Action, error) {
	if len(ajs) == 0 {
		return nil, nil
	}
	out := make([]openflow.Action, 0, len(ajs))
	for _, aj := range ajs {
		a, err := decodeAction(aj)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func groupTypeName(t openflow.GroupType) string { return t.String() }

func groupTypeFromName(s string) (openflow.GroupType, error) {
	for _, t := range []openflow.GroupType{
		openflow.GroupAll, openflow.GroupIndirect, openflow.GroupFF, openflow.GroupSelectRR,
	} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("dump: unknown group type %q", s)
}

// MarshalProgram encodes one compiled program as JSON.
func MarshalProgram(p *openflow.Program) ([]byte, error) {
	pj, err := encodeProgram(p)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(pj, "", "  ")
}

// UnmarshalProgram decodes one compiled program from JSON.
func UnmarshalProgram(data []byte) (*openflow.Program, error) {
	var pj programJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, err
	}
	return decodeProgram(pj)
}

// MarshalPrograms encodes a whole deployment — the retained programs of
// a control plane — as one JSON document.
func MarshalPrograms(progs []*openflow.Program) ([]byte, error) {
	pjs := make([]programJSON, 0, len(progs))
	for _, p := range progs {
		pj, err := encodeProgram(p)
		if err != nil {
			return nil, err
		}
		pjs = append(pjs, pj)
	}
	return json.MarshalIndent(pjs, "", "  ")
}

// UnmarshalPrograms decodes a deployment document. It accepts either a
// JSON array of programs or a single program object, so per-service and
// whole-deployment dumps load the same way.
func UnmarshalPrograms(data []byte) ([]*openflow.Program, error) {
	var pjs []programJSON
	if err := json.Unmarshal(data, &pjs); err != nil {
		var pj programJSON
		if err2 := json.Unmarshal(data, &pj); err2 != nil {
			return nil, err
		}
		pjs = []programJSON{pj}
	}
	progs := make([]*openflow.Program, 0, len(pjs))
	for _, pj := range pjs {
		p, err := decodeProgram(pj)
		if err != nil {
			return nil, err
		}
		progs = append(progs, p)
	}
	return progs, nil
}

func encodeProgram(p *openflow.Program) (programJSON, error) {
	pj := programJSON{
		Service: p.Service, Slot: p.Slot, Slots: p.Slots,
		TagBytes: p.TagBytes, Transient: p.Transient,
	}
	for _, id := range p.SwitchIDs() {
		sp := p.At(id)
		spj := switchProgramJSON{Switch: sp.Switch, NumPorts: sp.NumPorts}
		for _, fr := range sp.Flows {
			e := fr.Entry
			acts, err := encodeActions(e.Actions)
			if err != nil {
				return programJSON{}, err
			}
			fields := make([]fieldMatchJSON, 0, len(e.Match.Fields))
			for _, fm := range e.Match.Fields {
				fields = append(fields, fieldMatchJSON{
					Field: encodeField(fm.F), Value: fm.Value, Mask: fm.Mask,
				})
			}
			gt := e.Goto
			spj.Flows = append(spj.Flows, flowRuleJSON{
				Table: fr.Table, Priority: e.Priority,
				Match: matchJSON{
					InPort: e.Match.InPort, EthType: e.Match.EthType,
					TTL: e.Match.TTL, Fields: fields,
				},
				Actions: acts, Goto: &gt, Cookie: e.Cookie,
			})
		}
		for _, ts := range sp.States {
			tj := stateTableJSON{Table: ts.Table}
			for _, kf := range ts.Key {
				tj.Key = append(tj.Key, encodeField(kf))
			}
			for _, e := range ts.Entries {
				acts, err := encodeActions(e.Actions)
				if err != nil {
					return programJSON{}, err
				}
				fields := make([]fieldMatchJSON, 0, len(e.Match.Fields))
				for _, fm := range e.Match.Fields {
					fields = append(fields, fieldMatchJSON{
						Field: encodeField(fm.F), Value: fm.Value, Mask: fm.Mask,
					})
				}
				gt := e.Goto
				tj.Entries = append(tj.Entries, stateEntryJSON{
					Priority: e.Priority, AnyState: e.AnyState,
					State: e.State, StateMask: e.StateMask,
					Match: matchJSON{
						InPort: e.Match.InPort, EthType: e.Match.EthType,
						TTL: e.Match.TTL, Fields: fields,
					},
					Actions: acts, SetState: e.SetState, Goto: &gt, Cookie: e.Cookie,
				})
			}
			spj.States = append(spj.States, tj)
		}
		for _, g := range sp.Groups {
			gj := groupJSON{ID: g.ID, Type: groupTypeName(g.Type)}
			for _, b := range g.Buckets {
				acts, err := encodeActions(b.Actions)
				if err != nil {
					return programJSON{}, err
				}
				gj.Buckets = append(gj.Buckets, bucketJSON{WatchPort: b.WatchPort, Actions: acts})
			}
			spj.Groups = append(spj.Groups, gj)
		}
		pj.Switches = append(pj.Switches, spj)
	}
	return pj, nil
}

func decodeProgram(pj programJSON) (*openflow.Program, error) {
	p := openflow.NewProgram(pj.Service, pj.Slot)
	if pj.Slots != 0 {
		p.Slots = pj.Slots
	}
	p.TagBytes = pj.TagBytes
	p.Transient = pj.Transient
	for _, spj := range pj.Switches {
		p.Ensure(spj.Switch, spj.NumPorts)
		for _, frj := range spj.Flows {
			acts, err := decodeActions(frj.Actions)
			if err != nil {
				return nil, fmt.Errorf("switch %d table %d: %w", spj.Switch, frj.Table, err)
			}
			m := openflow.Match{
				InPort: frj.Match.InPort, EthType: frj.Match.EthType, TTL: frj.Match.TTL,
			}
			for _, fmj := range frj.Match.Fields {
				m.Fields = append(m.Fields, openflow.FieldMatch{
					F: decodeField(fmj.Field), Value: fmj.Value, Mask: fmj.Mask,
				})
			}
			gt := openflow.NoGoto
			if frj.Goto != nil {
				gt = *frj.Goto
			}
			p.AddFlow(spj.Switch, frj.Table, &openflow.FlowEntry{
				Priority: frj.Priority, Match: m, Actions: acts,
				Goto: gt, Cookie: frj.Cookie,
			})
		}
		for _, tj := range spj.States {
			var key []openflow.Field
			for _, kf := range tj.Key {
				key = append(key, decodeField(kf))
			}
			if key != nil {
				p.SetStateKey(spj.Switch, tj.Table, key)
			}
			for _, ej := range tj.Entries {
				acts, err := decodeActions(ej.Actions)
				if err != nil {
					return nil, fmt.Errorf("switch %d state table %d: %w", spj.Switch, tj.Table, err)
				}
				m := openflow.Match{
					InPort: ej.Match.InPort, EthType: ej.Match.EthType, TTL: ej.Match.TTL,
				}
				for _, fmj := range ej.Match.Fields {
					m.Fields = append(m.Fields, openflow.FieldMatch{
						F: decodeField(fmj.Field), Value: fmj.Value, Mask: fmj.Mask,
					})
				}
				gt := openflow.NoGoto
				if ej.Goto != nil {
					gt = *ej.Goto
				}
				var set *uint64
				if ej.SetState != nil {
					v := *ej.SetState
					set = &v
				}
				p.AddState(spj.Switch, tj.Table, &openflow.StateEntry{
					Priority: ej.Priority, AnyState: ej.AnyState,
					State: ej.State, StateMask: ej.StateMask,
					Match: m, Actions: acts, SetState: set, Goto: gt, Cookie: ej.Cookie,
				})
			}
		}
		for _, gj := range spj.Groups {
			gt, err := groupTypeFromName(gj.Type)
			if err != nil {
				return nil, fmt.Errorf("switch %d group %d: %w", spj.Switch, gj.ID, err)
			}
			ge := &openflow.GroupEntry{ID: gj.ID, Type: gt}
			for _, bj := range gj.Buckets {
				acts, err := decodeActions(bj.Actions)
				if err != nil {
					return nil, fmt.Errorf("switch %d group %d: %w", spj.Switch, gj.ID, err)
				}
				ge.Buckets = append(ge.Buckets, openflow.Bucket{WatchPort: bj.WatchPort, Actions: acts})
			}
			p.AddGroup(spj.Switch, ge)
		}
	}
	return p, nil
}
