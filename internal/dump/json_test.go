package dump

import (
	"reflect"
	"testing"

	"smartsouth/internal/openflow"
)

// buildRichProgram exercises every encodable construct: all match
// dimensions, all six action kinds, all four group types, multi-switch,
// multi-slot, transient.
func buildRichProgram() *openflow.Program {
	f := openflow.Field{Name: "st", Off: 3, Bits: 5}
	p := openflow.NewProgram("rich", 2)
	p.Slots = 2
	p.TagBytes = 4
	p.Transient = true

	p.Ensure(0, 3)
	p.AddFlow(0, 0, &openflow.FlowEntry{
		Priority: 101,
		Match:    openflow.MatchEth(0x8801).WithInPort(2).WithTTL(7).WithField(f, 9),
		Goto:     21,
		Cookie:   "rich/dispatch",
	})
	p.AddFlow(0, 21, &openflow.FlowEntry{
		Priority: 50,
		Match: openflow.Match{InPort: openflow.AnyPort, EthType: openflow.AnyEthType,
			TTL: openflow.AnyTTL, Fields: []openflow.FieldMatch{{F: f, Value: 4, Mask: 0x6}}},
		Actions: []openflow.Action{
			openflow.SetField{F: f, Value: 11},
			openflow.PushLabel{Value: 0xabcdef},
			openflow.PopLabel{},
			openflow.DecTTL{},
			openflow.Group{ID: 41},
			openflow.Output{Port: openflow.PortController},
		},
		Goto:   openflow.NoGoto,
		Cookie: "rich/work",
	})
	p.AddGroup(0, &openflow.GroupEntry{ID: 41, Type: openflow.GroupFF, Buckets: []openflow.Bucket{
		{WatchPort: 1, Actions: []openflow.Action{openflow.Output{Port: 1}}},
		{WatchPort: openflow.WatchNone, Actions: []openflow.Action{openflow.Output{Port: openflow.PortInPort}}},
	}})
	p.AddGroup(0, &openflow.GroupEntry{ID: 42, Type: openflow.GroupSelectRR, Buckets: []openflow.Bucket{
		{Actions: []openflow.Action{openflow.SetField{F: f, Value: 0}}},
		{Actions: []openflow.Action{openflow.SetField{F: f, Value: 1}}},
	}})

	// A keyed state table: exact-state, masked-state and any-state
	// transitions, with and without a state write.
	three := uint64(3)
	p.SetStateKey(0, 22, []openflow.Field{{Name: "cli", Off: 0, Bits: 9}})
	p.AddState(0, 22, &openflow.StateEntry{
		Priority: 30, State: 1, Match: openflow.MatchEth(0x8801),
		Actions:  []openflow.Action{openflow.Output{Port: 1}},
		SetState: &three, Goto: 23, Cookie: "rich/step",
	})
	p.AddState(0, 22, &openflow.StateEntry{
		Priority: 20, State: 2, StateMask: 0x6, Match: openflow.MatchAll(),
		Actions: []openflow.Action{openflow.DecTTL{}},
		Goto:    openflow.NoGoto, Cookie: "rich/masked",
	})
	p.AddState(0, 22, &openflow.StateEntry{
		Priority: 10, AnyState: true, Match: openflow.MatchAll(),
		Actions: []openflow.Action{openflow.Output{Port: openflow.PortDrop}},
		Goto:    openflow.NoGoto, Cookie: "rich/reset",
	})

	p.Ensure(5, 1)
	p.AddFlow(5, 0, &openflow.FlowEntry{
		Priority: 1, Match: openflow.MatchAll(), Goto: openflow.NoGoto,
		Actions: []openflow.Action{openflow.Output{Port: openflow.PortDrop}},
		Cookie:  "rich/sink",
	})
	p.AddGroup(5, &openflow.GroupEntry{ID: 43, Type: openflow.GroupAll, Buckets: []openflow.Bucket{
		{Actions: []openflow.Action{openflow.Output{Port: 1}}},
	}})
	p.AddGroup(5, &openflow.GroupEntry{ID: 44, Type: openflow.GroupIndirect, Buckets: []openflow.Bucket{
		{Actions: []openflow.Action{openflow.Output{Port: openflow.PortSelf}}},
	}})
	// A keyless state table: one global cell per switch.
	p.AddState(5, 11, &openflow.StateEntry{
		Priority: 5, AnyState: true, Match: openflow.MatchEth(0x8802),
		Actions: []openflow.Action{openflow.Output{Port: openflow.PortController}},
		Goto:    openflow.NoGoto, Cookie: "rich/global",
	})
	return p
}

func TestProgramJSONRoundTrip(t *testing.T) {
	p := buildRichProgram()
	raw, err := MarshalProgram(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	q, err := UnmarshalProgram(raw)
	if err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, raw)
	}

	if q.Service != p.Service || q.Slot != p.Slot || q.Slots != p.Slots ||
		q.TagBytes != p.TagBytes || q.Transient != p.Transient {
		t.Errorf("header changed: %+v vs %+v", q, p)
	}
	if !reflect.DeepEqual(q.SwitchIDs(), p.SwitchIDs()) {
		t.Fatalf("switch set changed: %v vs %v", q.SwitchIDs(), p.SwitchIDs())
	}
	for _, id := range p.SwitchIDs() {
		sp, sq := p.At(id), q.At(id)
		if sq.NumPorts != sp.NumPorts {
			t.Errorf("sw%d: num ports %d vs %d", id, sq.NumPorts, sp.NumPorts)
		}
		if len(sq.Flows) != len(sp.Flows) {
			t.Fatalf("sw%d: %d flows vs %d", id, len(sq.Flows), len(sp.Flows))
		}
		for i := range sp.Flows {
			ep, eq := sp.Flows[i].Entry, sq.Flows[i].Entry
			if sq.Flows[i].Table != sp.Flows[i].Table ||
				eq.Priority != ep.Priority || eq.Goto != ep.Goto || eq.Cookie != ep.Cookie ||
				!eq.Match.Equal(ep.Match) || !reflect.DeepEqual(eq.Actions, ep.Actions) {
				t.Errorf("sw%d flow %d changed:\n  %+v\n  %+v", id, i, eq, ep)
			}
		}
		if !reflect.DeepEqual(sq.Groups, sp.Groups) {
			t.Errorf("sw%d groups changed:\n  %+v\n  %+v", id, sq.Groups, sp.Groups)
		}
		if !reflect.DeepEqual(sq.States, sp.States) {
			t.Errorf("sw%d state tables changed:\n  %+v\n  %+v", id, sq.States, sp.States)
		}
	}

	// A second trip must be byte-identical: the encoding is canonical.
	raw2, err := MarshalProgram(q)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(raw) != string(raw2) {
		t.Errorf("encoding is not canonical:\n%s\n---\n%s", raw, raw2)
	}
}

func TestProgramsJSONListAndSingle(t *testing.T) {
	p := buildRichProgram()
	raw, err := MarshalPrograms([]*openflow.Program{p, p})
	if err != nil {
		t.Fatalf("marshal list: %v", err)
	}
	progs, err := UnmarshalPrograms(raw)
	if err != nil {
		t.Fatalf("unmarshal list: %v", err)
	}
	if len(progs) != 2 || progs[0].Service != "rich" {
		t.Fatalf("list decoded to %d programs", len(progs))
	}

	single, err := MarshalProgram(p)
	if err != nil {
		t.Fatalf("marshal single: %v", err)
	}
	progs, err = UnmarshalPrograms(single)
	if err != nil {
		t.Fatalf("unmarshal single as deployment: %v", err)
	}
	if len(progs) != 1 || progs[0].FlowCount() != p.FlowCount() {
		t.Fatalf("single-object deployment decoded to %d programs", len(progs))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"unknown op":     `{"service":"x","slot":0,"slots":1,"switches":[{"switch":0,"num_ports":1,"flows":[{"table":0,"priority":1,"match":{"in_port":-1,"eth_type":-1,"ttl":-1},"actions":[{"op":"teleport"}]}]}]}`,
		"output no port": `{"service":"x","slot":0,"slots":1,"switches":[{"switch":0,"num_ports":1,"flows":[{"table":0,"priority":1,"match":{"in_port":-1,"eth_type":-1,"ttl":-1},"actions":[{"op":"output"}]}]}]}`,
		"bad group type": `{"service":"x","slot":0,"slots":1,"switches":[{"switch":0,"num_ports":1,"groups":[{"id":1,"type":"mystery","buckets":[]}]}]}`,
	}
	for name, raw := range cases {
		if _, err := UnmarshalProgram([]byte(raw)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// FuzzProgramJSONRoundTrip checks the decode→encode pair is a
// canonicalization fixpoint on arbitrary input: whatever the decoder
// accepts, a second trip through it must reproduce byte-identically.
func FuzzProgramJSONRoundTrip(f *testing.F) {
	seed, err := MarshalProgram(buildRichProgram())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add(`{"service":"x","slot":0,"slots":1,"switches":[{"switch":0,"num_ports":1,"state_tables":[{"table":3,"entries":[{"priority":1,"any_state":true,"match":{"in_port":-1,"eth_type":-1,"ttl":-1},"set_state":7}]}]}]}`)
	f.Fuzz(func(t *testing.T, raw string) {
		p, err := UnmarshalProgram([]byte(raw))
		if err != nil {
			t.Skip()
		}
		enc, err := MarshalProgram(p)
		if err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		q, err := UnmarshalProgram(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v\n%s", err, enc)
		}
		enc2, err := MarshalProgram(q)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("encoding is not a fixpoint:\n%s\n---\n%s", enc, enc2)
		}
	})
}

func TestOmittedGotoIsNoGoto(t *testing.T) {
	raw := `{"service":"x","slot":0,"slots":1,"switches":[{"switch":0,"num_ports":1,"flows":[{"table":0,"priority":1,"match":{"in_port":-1,"eth_type":-1,"ttl":-1}}]}]}`
	p, err := UnmarshalProgram([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if g := p.At(0).Flows[0].Entry.Goto; g != openflow.NoGoto {
		t.Fatalf("omitted goto decoded as %d, want NoGoto", g)
	}
}
