// Package dump renders installed switch configurations as text — the
// operator-facing counterpart to package verify. Because every SmartSouth
// behaviour is an ordinary flow or group entry, the dump of a switch *is*
// the complete, inspectable specification of what it will do.
package dump

import (
	"fmt"
	"sort"
	"strings"

	"smartsouth/internal/metrics"
	"smartsouth/internal/openflow"
	"smartsouth/internal/trace"
)

// Switch renders one switch's tables and groups.
func Switch(sw *openflow.Switch) string {
	var b strings.Builder
	fmt.Fprintf(&b, "switch %d (%d ports, %d flows, %d groups, ~%d config bytes)\n",
		sw.ID, sw.NumPorts, sw.FlowEntryCount(), sw.GroupCount(), sw.ConfigBytes())

	for _, tid := range sw.TableIDs() {
		t := sw.Table(tid)
		fmt.Fprintf(&b, "  table %d (%d entries)\n", tid, t.Len())
		for _, e := range t.Entries() {
			gotoStr := ""
			if e.Goto != openflow.NoGoto {
				gotoStr = fmt.Sprintf(" goto:%d", e.Goto)
			}
			fmt.Fprintf(&b, "    [%5d] %s -> %s%s  #%s (hits %d)\n",
				e.Priority, e.Match, actionsString(e.Actions), gotoStr, e.Cookie, e.Packets)
		}
	}

	groups := sw.Groups()
	if len(groups) > 0 {
		fmt.Fprintf(&b, "  groups (%d)\n", len(groups))
		for _, g := range groups {
			fmt.Fprintf(&b, "    group %d type=%s\n", g.ID, g.Type)
			for i, bk := range g.Buckets {
				watch := "always"
				if bk.WatchPort != openflow.WatchNone {
					watch = fmt.Sprintf("port %d", bk.WatchPort)
				}
				fmt.Fprintf(&b, "      bucket %d (watch %s): %s\n", i, watch, actionsString(bk.Actions))
			}
		}
	}
	return b.String()
}

// Summary renders a one-line-per-switch overview of many switches.
func Summary(switches []*openflow.Switch) string {
	var b strings.Builder
	type row struct {
		id, flows, groups, bytes int
	}
	rows := make([]row, 0, len(switches))
	for _, sw := range switches {
		rows = append(rows, row{sw.ID, sw.FlowEntryCount(), sw.GroupCount(), sw.ConfigBytes()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	for _, r := range rows {
		fmt.Fprintf(&b, "switch %3d: %4d flows, %4d groups, %7d bytes\n", r.id, r.flows, r.groups, r.bytes)
	}
	return b.String()
}

// Program renders a compiled (not necessarily installed) program: the
// declarative IR a service compiler emits before installation. The same
// inspectability argument applies one stage earlier — the program is the
// complete specification of what installing it will do.
func Program(p *openflow.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %q slot %d (%d switches, %d flows, %d groups, ~%d config bytes)\n",
		p.Service, p.Slot, len(p.SwitchIDs()), p.FlowCount(), p.GroupCount(), p.Bytes())
	for _, id := range p.SwitchIDs() {
		sp := p.At(id)
		fmt.Fprintf(&b, "  switch %d (%d ports): %d flows, %d groups\n",
			id, sp.NumPorts, len(sp.Flows), len(sp.Groups))
		for _, fr := range sp.Flows {
			e := fr.Entry
			gotoStr := ""
			if e.Goto != openflow.NoGoto {
				gotoStr = fmt.Sprintf(" goto:%d", e.Goto)
			}
			fmt.Fprintf(&b, "    t%-2d [%5d] %s -> %s%s  #%s\n",
				fr.Table, e.Priority, e.Match, actionsString(e.Actions), gotoStr, e.Cookie)
		}
		for _, g := range sp.Groups {
			fmt.Fprintf(&b, "    group %d type=%s (%d buckets)\n", g.ID, g.Type, len(g.Buckets))
		}
	}
	return b.String()
}

// ProgramSummary renders a one-line-per-program overview: the installed
// service inventory as the control plane records it.
func ProgramSummary(ps []*openflow.Program) string {
	var b strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&b, "slot %2d %-14q %3d switches, %5d flows, %4d groups,", p.Slot, p.Service, len(p.SwitchIDs()), p.FlowCount(), p.GroupCount())
		if n := p.StateCount(); n > 0 {
			fmt.Fprintf(&b, " %4d state entries,", n)
		}
		fmt.Fprintf(&b, " %7d bytes\n", p.Bytes())
	}
	return b.String()
}

// Trace renders retained hop-trace events, one line per pipeline
// execution, in sequence order.
func Trace(events []trace.Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Metrics renders a per-service metrics snapshot as an aligned table plus
// (when present) the per-rule hit counters of each service.
func Metrics(snap []metrics.ServiceMetrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %4s %6s %6s %5s %8s %7s %7s %9s %10s\n",
		"service", "slot", "flows", "groups", "trig", "pktins", "inband", "ibytes", "outbytes", "wallclock")
	for _, m := range snap {
		fmt.Fprintf(&b, "%-14s %4d %6d %6d %5d %8d %7d %7d %9d %8dns\n",
			m.Service, m.Slot, m.FlowMods, m.GroupMods, m.TriggerPackets,
			m.PacketIns, m.InBandMsgs, m.InBandBytes, m.OutBandBytes, int64(m.WallClock))
	}
	for _, m := range snap {
		if len(m.RuleHits) == 0 && len(m.GroupHits) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s hits:\n", m.Service)
		b.WriteString(Hits(m.RuleHits, m.GroupHits))
	}
	return b.String()
}

// Hits renders rule-hit and group-bucket counters, skipping zero-hit
// entries (a deployed service's rule set is large; the interesting part
// is where packets actually went).
func Hits(rules []openflow.RuleHit, groups []openflow.GroupHit) string {
	var b strings.Builder
	for _, r := range rules {
		if r.Packets == 0 {
			continue
		}
		fmt.Fprintf(&b, "  sw %3d t%-3d [%5d] %-28s %6d pkts\n",
			r.Switch, r.Table, r.Priority, r.Cookie, r.Packets)
	}
	for _, g := range groups {
		if g.Packets == 0 {
			continue
		}
		fmt.Fprintf(&b, "  sw %3d group %d bucket %d %6d pkts\n",
			g.Switch, g.Group, g.Bucket, g.Packets)
	}
	return b.String()
}

func actionsString(acts []openflow.Action) string {
	if len(acts) == 0 {
		return "(none)"
	}
	parts := make([]string, len(acts))
	for i, a := range acts {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
