package openflow

import (
	"testing"
	"testing/quick"
)

func TestFieldLoadStoreRoundTrip(t *testing.T) {
	tag := make([]byte, 8)
	f := Field{Name: "x", Off: 5, Bits: 11}
	for _, v := range []uint64{0, 1, 2, 1023, 2047} {
		f.Store(tag, v)
		if got := f.Load(tag); got != v {
			t.Errorf("roundtrip %d: got %d", v, got)
		}
	}
}

func TestFieldTruncatesToWidth(t *testing.T) {
	tag := make([]byte, 4)
	f := Field{Off: 3, Bits: 4}
	f.Store(tag, 0xFF) // 255 truncates to low 4 bits = 15
	if got := f.Load(tag); got != 15 {
		t.Errorf("got %d, want 15", got)
	}
}

func TestFieldsDoNotInterfere(t *testing.T) {
	tag := make([]byte, 16)
	a := Field{Off: 0, Bits: 7}
	b := Field{Off: 7, Bits: 9}
	c := Field{Off: 16, Bits: 64}
	a.Store(tag, 99)
	b.Store(tag, 300)
	c.Store(tag, 0xDEADBEEFCAFEF00D)
	if a.Load(tag) != 99 || b.Load(tag) != 300 || c.Load(tag) != 0xDEADBEEFCAFEF00D {
		t.Errorf("fields interfered: a=%d b=%d c=%#x", a.Load(tag), b.Load(tag), c.Load(tag))
	}
	// Rewriting b must not disturb its neighbours.
	b.Store(tag, 0)
	if a.Load(tag) != 99 || c.Load(tag) != 0xDEADBEEFCAFEF00D {
		t.Error("rewriting b disturbed a or c")
	}
}

func TestFieldOutOfRangeReadsZeroWritesDropped(t *testing.T) {
	tag := make([]byte, 1)
	f := Field{Off: 4, Bits: 16} // extends past the 8-bit tag
	f.Store(tag, 0xFFFF)
	// Only the first 4 bits fit; the rest must read back as zero.
	if got := f.Load(tag); got != 0xF000 {
		t.Errorf("got %#x, want 0xF000", got)
	}
}

// Property: for random offsets/widths/values, Store followed by Load
// returns the value modulo the field width, and bits outside the field
// never change.
func TestQuickFieldRoundTrip(t *testing.T) {
	check := func(off uint8, bits uint8, v uint64, noise []byte) bool {
		f := Field{Off: int(off % 64), Bits: 1 + int(bits%64)}
		tag := make([]byte, 24)
		copy(tag, noise)
		before := append([]byte(nil), tag...)
		f.Store(tag, v)
		want := v
		if f.Bits < 64 {
			want &= (1 << uint(f.Bits)) - 1
		}
		if f.Load(tag) != want {
			return false
		}
		// Bits outside [Off, End) must be untouched.
		for pos := 0; pos < len(tag)*8; pos++ {
			if pos >= f.Off && pos < f.End() {
				continue
			}
			bi, sh := pos>>3, 7-uint(pos&7)
			if (tag[bi]>>sh)&1 != (before[bi]>>sh)&1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// loadBitwise is the reference extraction the Load fast path must agree
// with: one bit at a time, short tags reading as zero-padded.
func loadBitwise(f Field, tag []byte) uint64 {
	var v uint64
	for i := 0; i < f.Bits; i++ {
		pos := f.Off + i
		bi, sh := pos>>3, 7-uint(pos&7)
		v <<= 1
		if bi < len(tag) && tag[bi]>>sh&1 == 1 {
			v |= 1
		}
	}
	return v
}

// Property: the byte-wise Load fast path agrees with the bit-by-bit
// reference for every offset/width, including fields straddling byte
// boundaries and fields running past the end of a short tag.
func TestQuickFieldLoadMatchesBitwise(t *testing.T) {
	check := func(off uint8, bits uint8, noise []byte, tagLen uint8) bool {
		f := Field{Off: int(off % 80), Bits: 1 + int(bits%64)}
		tag := make([]byte, tagLen%16)
		copy(tag, noise)
		return f.Load(tag) == loadBitwise(f, tag)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct {
		max  uint64
		want int
	}{{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {255, 8}, {256, 9}}
	for _, c := range cases {
		if got := BitsFor(c.max); got != c.want {
			t.Errorf("BitsFor(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}
