package openflow

import (
	"fmt"
	"strings"
)

// AnyPort, AnyEthType and AnyTTL are wildcard values for the corresponding
// Match dimensions.
const (
	AnyPort    = -1
	AnyEthType = -1
	AnyTTL     = -1
)

// FieldMatch matches Value against a masked tag field: the entry matches
// when pkt(F) & Mask == Value & Mask. A zero Mask means an exact match on
// the full field width (the common case), so FieldMatch{F: f, Value: 3}
// reads naturally.
type FieldMatch struct {
	F     Field
	Value uint64
	Mask  uint64
}

func (m FieldMatch) mask() uint64 {
	if m.Mask == 0 {
		return m.F.Max()
	}
	return m.Mask
}

// Matches reports whether the packet satisfies the field criterion.
func (m FieldMatch) Matches(p *Packet) bool {
	k := m.mask()
	return p.Load(m.F)&k == m.Value&k
}

func (m FieldMatch) String() string {
	if m.Mask != 0 && m.Mask != m.F.Max() {
		return fmt.Sprintf("%s&%#x=%d", m.F, m.Mask, m.Value&m.Mask)
	}
	return fmt.Sprintf("%s=%d", m.F, m.Value)
}

// Match is the match part of a flow entry. The zero value matches every
// packet only if InPort, EthType and TTL are set to their Any* wildcards;
// use MatchAll for a true wildcard.
type Match struct {
	InPort  int // AnyPort or a physical port number
	EthType int // AnyEthType or a 16-bit EtherType
	TTL     int // AnyTTL or an exact TTL value (the OFPXMT nw_ttl match)
	Fields  []FieldMatch
}

// MatchAll returns a match with every dimension wildcarded.
func MatchAll() Match {
	return Match{InPort: AnyPort, EthType: AnyEthType, TTL: AnyTTL}
}

// MatchEth returns a match on EtherType only.
func MatchEth(ethType uint16) Match {
	m := MatchAll()
	m.EthType = int(ethType)
	return m
}

// WithInPort returns a copy of m additionally requiring the ingress port.
func (m Match) WithInPort(port int) Match {
	m.Fields = append([]FieldMatch(nil), m.Fields...)
	m.InPort = port
	return m
}

// WithTTL returns a copy of m additionally requiring an exact TTL.
func (m Match) WithTTL(ttl uint8) Match {
	m.Fields = append([]FieldMatch(nil), m.Fields...)
	m.TTL = int(ttl)
	return m
}

// WithField returns a copy of m additionally requiring f == v (full-width
// exact match).
func (m Match) WithField(f Field, v uint64) Match {
	fields := make([]FieldMatch, 0, len(m.Fields)+1)
	fields = append(fields, m.Fields...)
	m.Fields = append(fields, FieldMatch{F: f, Value: v})
	return m
}

// WithMasked returns a copy of m additionally requiring f & mask == v & mask.
func (m Match) WithMasked(f Field, v, mask uint64) Match {
	fields := make([]FieldMatch, 0, len(m.Fields)+1)
	fields = append(fields, m.Fields...)
	m.Fields = append(fields, FieldMatch{F: f, Value: v, Mask: mask})
	return m
}

// Matches reports whether the packet satisfies every criterion of m.
func (m Match) Matches(p *Packet) bool {
	if m.InPort != AnyPort && p.InPort != m.InPort {
		return false
	}
	if m.EthType != AnyEthType && int(p.EthType) != m.EthType {
		return false
	}
	if m.TTL != AnyTTL && int(p.TTL) != m.TTL {
		return false
	}
	for _, fm := range m.Fields {
		if !fm.Matches(p) {
			return false
		}
	}
	return true
}

// NumCriteria returns how many non-wildcard criteria the match carries;
// the synthetic flow-entry size model uses it (see EntryBytes).
func (m Match) NumCriteria() int {
	n := len(m.Fields)
	if m.InPort != AnyPort {
		n++
	}
	if m.EthType != AnyEthType {
		n++
	}
	if m.TTL != AnyTTL {
		n++
	}
	return n
}

func (m Match) String() string {
	var parts []string
	if m.InPort != AnyPort {
		parts = append(parts, fmt.Sprintf("in=%d", m.InPort))
	}
	if m.EthType != AnyEthType {
		parts = append(parts, fmt.Sprintf("eth=%#04x", m.EthType))
	}
	if m.TTL != AnyTTL {
		parts = append(parts, fmt.Sprintf("ttl=%d", m.TTL))
	}
	for _, fm := range m.Fields {
		parts = append(parts, fm.String())
	}
	if len(parts) == 0 {
		return "*"
	}
	return strings.Join(parts, ",")
}
