package openflow

import (
	"fmt"
	"sort"
)

// Emission is one packet leaving the switch on a port as a result of
// pipeline execution. Port is a physical port, PortController or PortSelf.
type Emission struct {
	Port int
	Pkt  *Packet
}

// Step records one matched flow entry during pipeline execution — the
// OF 1.3 rule-hit information (table, priority, cookie) plus the entry's
// action list, for the hop-trace layer. Steps are only collected when the
// switch has structured recording on (Switch.Record).
type Step struct {
	Table    int
	Priority int
	Cookie   string
	Actions  []Action
}

// GroupStep records one group-bucket decision during pipeline execution.
// Bucket is the index of the executed bucket, or -1 when no bucket ran
// (fast-failover group with no live bucket, or an uninstalled group).
type GroupStep struct {
	Group  uint32
	Type   GroupType
	Bucket int
}

// Result is the outcome of processing one packet through the pipeline.
type Result struct {
	// Emissions lists every packet copy the pipeline emitted, in action
	// execution order.
	Emissions []Emission
	// Matched reports whether any table matched; false means the packet
	// hit a table miss in table 0 (or a goto target) and was dropped.
	Matched bool
	// Trace is a human-readable execution log (rule cookies and group
	// bucket choices), populated only when the switch has tracing on.
	Trace []string
	// Steps lists the matched flow entries and GroupSteps the group-bucket
	// choices, in execution order; both are populated only when the switch
	// has structured recording on (Switch.Record).
	Steps      []Step
	GroupSteps []GroupStep

	// LastCookie is the cookie of the last matched flow entry, LastGroup
	// and LastBucket the last group-bucket decision (LastBucket -1 when
	// the group dropped the packet; LastGroup 0 when no group ran). These
	// are always populated — a few scalar stores per execution — so the
	// flight recorder can label records without Switch.Record's per-step
	// slice appends.
	LastCookie string
	LastGroup  uint32
	LastBucket int16

	// StoleInput reports that the last emission is the input packet
	// itself, not a clone: nothing mutated the packet after its final
	// Output, so execution transferred ownership instead of copying — the
	// unicast-forwarding fast path. The caller must then NOT release the
	// input (the emission owns it); every other emission is a pooled clone
	// as usual.
	StoleInput bool
}

// reset clears the result for reuse, keeping the backing arrays so a
// steady-state pipeline execution appends into already-grown slices.
func (r *Result) reset() {
	r.Emissions = r.Emissions[:0]
	r.Matched = false
	r.Trace = r.Trace[:0]
	r.Steps = r.Steps[:0]
	r.GroupSteps = r.GroupSteps[:0]
	r.LastCookie = ""
	r.LastGroup = 0
	r.LastBucket = 0
	r.StoleInput = false
}

// ExecContext threads pipeline state through action execution. One
// context serves a whole ExecBatch call: the tracing/record flags are
// hoisted from the switch once per batch, so the per-packet pipeline
// tests a local flag instead of chasing the switch pointer. Contexts are
// reusable across batches and switches; the zero value is ready to use
// (see NewExecContext).
type ExecContext struct {
	sw         *Switch
	res        *Result
	groupDepth int
	tracing    bool
	record     bool

	// pend is 1+index of the emission whose snapshot is deferred: the
	// emission still references the live packet it was emitted from, and
	// materialize() clones it only if something mutates the packet before
	// execution ends. 0 means no deferral. This is what lets the common
	// unicast hop — match, mutate, output, done — forward the arriving
	// packet without copying its tag and label stack.
	pend int
}

// NewExecContext returns a reusable execution context for ExecBatch. The
// simulator owns one per event loop; tests that call ExecBatch directly
// allocate their own.
func NewExecContext() *ExecContext { return &ExecContext{} }

// emit records an emission of p's current state. The clone is deferred:
// the emission references p itself until a later mutation (or another
// emission) forces the snapshot via materialize.
func (x *ExecContext) emit(port int, p *Packet) {
	x.materialize()
	x.res.Emissions = append(x.res.Emissions, Emission{Port: port, Pkt: p})
	x.pend = len(x.res.Emissions)
}

// materialize snapshots the deferred emission, if any. The referenced
// packet is still in its emission-time state — nothing has mutated it
// since, or this would already have run — so cloning now is equivalent to
// having cloned at emit time. Mutating actions call this before touching
// the packet.
func (x *ExecContext) materialize() {
	if x.pend > 0 {
		em := &x.res.Emissions[x.pend-1]
		em.Pkt = em.Pkt.ClonePooled()
		x.pend = 0
	}
}

// trace appends a formatted execution-log line. Callers must gate on
// x.tracing: the formatting arguments escape to the heap at the call
// site, so an unconditional call would put allocations back on the
// steady-state path even with tracing off.
func (x *ExecContext) trace(format string, args ...any) {
	x.res.Trace = append(x.res.Trace, fmt.Sprintf(format, args...))
}

// step records a group-bucket decision: the last one always (scalar
// stores), the full sequence when structured recording is on.
func (x *ExecContext) step(g *GroupEntry, bucket int) {
	x.res.LastGroup = g.ID
	x.res.LastBucket = int16(bucket)
	if x.record {
		x.res.GroupSteps = append(x.res.GroupSteps, GroupStep{Group: g.ID, Type: g.Type, Bucket: bucket})
	}
}

// maxGroupDepth bounds group-to-group recursion. OpenFlow forbids group
// chaining loops; a small fixed depth keeps a buggy configuration from
// hanging the simulator.
const maxGroupDepth = 8

// Switch is a single OpenFlow 1.3 switch: numbered flow tables, a group
// table, physical ports 1..NumPorts with liveness state, and per-port
// traffic counters. It executes rules; it has no knowledge of what the
// rules implement.
type Switch struct {
	ID       int
	NumPorts int

	// Tracing enables per-packet execution traces in Result.Trace.
	Tracing bool
	// Record enables structured step recording in Result.Steps and
	// Result.GroupSteps — the machine-readable counterpart of Tracing,
	// used by the hop-trace layer. Cheap (no string formatting), but off
	// by default so the hot path stays allocation-free.
	Record bool

	tables map[int]*FlowTable
	// tableList mirrors tables as a slice so ScanStats can aggregate
	// without a map iteration; tables are created lazily and never deleted,
	// so append-on-create keeps it exact.
	tableList []*FlowTable
	// dense is the hot-path table index: dense[id] aliases tables[id] for
	// small non-negative IDs (nil when absent), so the per-stage goto in
	// exec is an array load instead of a map probe. Table IDs beyond
	// denseTableMax (unused by the compiler) stay map-only.
	dense []*FlowTable
	// stateTables holds the stateful stages (EFSM transition tables). A
	// table ID names either a flow table or a state table; when both exist
	// the state table wins at execution time (and the verifier flags the
	// overlap as a configuration error).
	stateTables map[int]*StateTable
	stateList   []*StateTable
	// The group store is a pair of parallel arrays sorted by ID: group
	// sets are small (a few dozen per switch) and written only at install
	// time, so a binary search over a contiguous key array beats a map on
	// the per-hop path and gives ordered iteration for free.
	gids  []uint32
	gvals []*GroupEntry
	live  []bool // index 1..NumPorts

	// xc is the scratch execution context backing the single-packet
	// Receive/Execute wrappers. The batch path receives its context from
	// the caller (the network event loop owns one per simulator), so this
	// one only serves direct Switch API use, which is single-threaded.
	xc ExecContext

	// RxPackets / TxPackets count per-port traffic (ofp_port_stats).
	RxPackets []uint64
	TxPackets []uint64
}

// NewSwitch returns a switch with the given identifier and port count.
// All ports start live. Tables are created lazily on first use.
func NewSwitch(id, numPorts int) *Switch {
	live := make([]bool, numPorts+1)
	for i := 1; i <= numPorts; i++ {
		live[i] = true
	}
	return &Switch{
		ID:          id,
		NumPorts:    numPorts,
		tables:      make(map[int]*FlowTable),
		stateTables: make(map[int]*StateTable),
		live:        live,
		RxPackets:   make([]uint64, numPorts+1),
		TxPackets:   make([]uint64, numPorts+1),
	}
}

// denseTableMax bounds the dense table index; every ID the slot layout
// hands out is far below it.
const denseTableMax = 1024

// Table returns the flow table with the given ID, creating it if needed.
func (sw *Switch) Table(id int) *FlowTable {
	t, ok := sw.tables[id]
	if !ok {
		t = &FlowTable{ID: id}
		sw.tables[id] = t
		sw.tableList = append(sw.tableList, t)
		if id >= 0 && id < denseTableMax {
			for len(sw.dense) <= id {
				sw.dense = append(sw.dense, nil)
			}
			sw.dense[id] = t
		}
	}
	return t
}

// tableAt is exec's table accessor: an array load for compiler-assigned
// IDs, the map for exotic ones.
func (sw *Switch) tableAt(id int) *FlowTable {
	if uint(id) < uint(len(sw.dense)) {
		return sw.dense[id]
	}
	return sw.tables[id]
}

// ScanStats sums the cumulative dispatch counters across all tables. The
// network layer diffs it at Run boundaries to feed the process-wide
// telemetry. State tables have no compiled matcher; their lookups count
// as fallback-path.
func (sw *Switch) ScanStats() ScanStats {
	var agg ScanStats
	for _, t := range sw.tableList {
		agg.Merge(t.ScanStats())
	}
	for _, t := range sw.stateList {
		l, s := t.ScanStats()
		agg.FallbackLookups += l
		agg.Scanned += s
	}
	return agg
}

// CompileDispatch (re)compiles every flow table's matcher from its
// current entries — the third phase of an install (lower → verify →
// compile-dispatch), invoked by the install and uninstall paths after
// they finish mutating the tables. State tables are exact-match keyed
// already and need no compilation.
func (sw *Switch) CompileDispatch() {
	for _, t := range sw.tableList {
		t.Compile()
	}
}

// TableIDs returns the IDs of all non-empty tables — flow and state — in
// ascending order, without creating any (unlike Table).
func (sw *Switch) TableIDs() []int {
	var ids []int
	for id, t := range sw.tables {
		if t.Len() > 0 {
			ids = append(ids, id)
		}
	}
	for id, t := range sw.stateTables {
		if t.Len() > 0 {
			if ft, ok := sw.tables[id]; !ok || ft.Len() == 0 {
				ids = append(ids, id)
			}
		}
	}
	sort.Ints(ids)
	return ids
}

// StateTab returns the state table with the given ID, creating an empty
// keyless one if absent.
func (sw *Switch) StateTab(id int) *StateTable {
	t, ok := sw.stateTables[id]
	if !ok {
		t = NewStateTable(id, nil)
		sw.stateTables[id] = t
		sw.stateList = append(sw.stateList, t)
	}
	return t
}

// StateTableByID returns the state table with the given ID without
// creating it, or nil.
func (sw *Switch) StateTableByID(id int) *StateTable { return sw.stateTables[id] }

// StateTableIDs returns the IDs of all non-empty state tables, ascending.
func (sw *Switch) StateTableIDs() []int {
	var ids []int
	for id, t := range sw.stateTables {
		if t.Len() > 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// AddStateEntry installs a transition entry into state table id, setting
// the table's flow key on first use.
func (sw *Switch) AddStateEntry(id int, key []Field, e *StateEntry) {
	t := sw.StateTab(id)
	if t.Len() == 0 && len(key) > 0 {
		t.Key = key
	}
	t.Add(e)
}

// FindState returns the installed transition with the given cookie in
// state table id, or nil (the state-table counterpart of FindFlow).
func (sw *Switch) FindState(table int, cookie string) *StateEntry {
	t, ok := sw.stateTables[table]
	if !ok {
		return nil
	}
	return t.ByCookie(cookie)
}

// StateValue reads the current state of a flow key in state table id —
// the OpenState state-stats request a controller issues to inspect
// data-plane state (the TTL blackhole prober uses it under the stateful
// backend).
func (sw *Switch) StateValue(table int, key uint64) (uint64, bool) {
	t, ok := sw.stateTables[table]
	if !ok {
		return 0, false
	}
	return t.State(key), true
}

// ResetStateTable clears the state store of state table id, keeping its
// transitions. Missing tables are ignored.
func (sw *Switch) ResetStateTable(id int) {
	if t, ok := sw.stateTables[id]; ok {
		t.ResetState()
	}
}

// StateTransitions sums committed state writes across all state tables.
func (sw *Switch) StateTransitions() uint64 {
	var n uint64
	for _, t := range sw.stateList {
		n += t.Transitions
	}
	return n
}

// AddFlow installs a flow entry into table id.
func (sw *Switch) AddFlow(id int, e *FlowEntry) { sw.Table(id).Add(e) }

// FindFlow returns the installed entry with the given cookie in table id,
// or nil. Unlike Table, it never creates the table; the hit-counter layer
// uses it to map a retained Program's rules to their live counters.
func (sw *Switch) FindFlow(table int, cookie string) *FlowEntry {
	t, ok := sw.tables[table]
	if !ok {
		return nil
	}
	return t.ByCookie(cookie)
}

// groupPos returns the index of id in the sorted gids array, or the
// insertion point with found == false.
func (sw *Switch) groupPos(id uint32) (int, bool) {
	lo, hi := 0, len(sw.gids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sw.gids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(sw.gids) && sw.gids[lo] == id
}

// AddGroup installs a group entry, replacing any previous entry with the
// same ID (group-mod semantics).
func (sw *Switch) AddGroup(g *GroupEntry) {
	i, found := sw.groupPos(g.ID)
	if found {
		sw.gvals[i] = g
		return
	}
	sw.gids = append(sw.gids, 0)
	copy(sw.gids[i+1:], sw.gids[i:])
	sw.gids[i] = g.ID
	sw.gvals = append(sw.gvals, nil)
	copy(sw.gvals[i+1:], sw.gvals[i:])
	sw.gvals[i] = g
}

// GroupByID returns the installed group entry, or nil.
func (sw *Switch) GroupByID(id uint32) *GroupEntry {
	if i, found := sw.groupPos(id); found {
		return sw.gvals[i]
	}
	return nil
}

// RemoveGroup deletes a group entry (group-mod DELETE); missing groups
// are ignored, like OFPGC_DELETE.
func (sw *Switch) RemoveGroup(id uint32) {
	i, found := sw.groupPos(id)
	if !found {
		return
	}
	sw.gids = append(sw.gids[:i], sw.gids[i+1:]...)
	sw.gvals = append(sw.gvals[:i], sw.gvals[i+1:]...)
}

// RemoveGroupRange deletes every group with lo <= ID < hi, returning the
// count.
func (sw *Switch) RemoveGroupRange(lo, hi uint32) int {
	if hi < lo {
		return 0
	}
	i, _ := sw.groupPos(lo)
	j, _ := sw.groupPos(hi)
	removed := j - i
	sw.gids = append(sw.gids[:i], sw.gids[j:]...)
	sw.gvals = append(sw.gvals[:i], sw.gvals[j:]...)
	return removed
}

// ClearTable removes every entry of table id — flow entries, transition
// entries and the state store alike — returning the count.
func (sw *Switch) ClearTable(id int) int {
	n := 0
	if t, ok := sw.tables[id]; ok {
		n += t.Clear()
	}
	if t, ok := sw.stateTables[id]; ok {
		n += t.Clear()
	}
	return n
}

// Groups returns all installed group entries in ascending ID order.
func (sw *Switch) Groups() []*GroupEntry {
	out := make([]*GroupEntry, len(sw.gvals))
	copy(out, sw.gvals)
	return out
}

// stateTable is the pipeline's hot-path accessor: the len check is one
// field load, so a switch with no stateful stages (the of13 backend)
// never pays the per-stage map lookup.
func (sw *Switch) stateTable(table int) (*StateTable, bool) {
	if len(sw.stateTables) == 0 {
		return nil, false
	}
	st, ok := sw.stateTables[table]
	return st, ok
}

// PortLive reports the liveness of a physical port. Out-of-range ports are
// never live.
func (sw *Switch) PortLive(port int) bool {
	return port >= 1 && port <= sw.NumPorts && sw.live[port]
}

// SetPortLive sets the liveness of a physical port; the network layer
// calls it when a link goes down or comes back up. Any change invalidates
// the fast-failover groups' cached live-bucket choice — liveness flips
// are rare, so a blanket invalidation beats tracking watch ports.
func (sw *Switch) SetPortLive(port int, up bool) {
	if port >= 1 && port <= sw.NumPorts && sw.live[port] != up {
		sw.live[port] = up
		for _, g := range sw.gvals {
			g.ffLive = 0
		}
	}
}

func (sw *Switch) applyGroup(x *ExecContext, id uint32, p *Packet) {
	g := sw.GroupByID(id)
	if g == nil {
		if x.tracing {
			x.trace("group %d: not installed, drop", id)
		}
		x.res.LastGroup = id
		x.res.LastBucket = -1
		if x.record {
			x.res.GroupSteps = append(x.res.GroupSteps, GroupStep{Group: id, Bucket: -1})
		}
		return
	}
	if x.groupDepth >= maxGroupDepth {
		if x.tracing {
			x.trace("group %d: max chaining depth, drop", id)
		}
		return
	}
	x.groupDepth++
	g.apply(x, p)
	x.groupDepth--
}

// Receive runs one packet through the pipeline starting at table 0. The
// packet is cloned internally, so the caller's packet is never mutated.
// inPort is the ingress physical port (or PortController for a packet-out
// that requests pipeline processing). The returned Result is fresh and
// belongs to the caller. Receive is the thin single-packet wrapper over
// ExecBatch kept for tests and direct API use; the network's event loop
// batches executions per switch instead.
func (sw *Switch) Receive(pkt *Packet, inPort int) Result {
	p := pkt.ClonePooled()
	p.InPort = inPort
	in := [1]*Packet{p}
	out := [1]Result{}
	sw.ExecBatch(&sw.xc, in[:], out[:])
	if !out[0].StoleInput {
		p.Release()
	}
	return out[0]
}

// ExecBatch runs every packet of in through the pipeline in order,
// writing the outcome of in[i] into out[i] (each reset first, reusing its
// backing arrays). It is the one execution entry point: the event loop,
// the sweep runner and the single-packet wrapper all land here, and the
// tracing/record flags are hoisted into the context once per batch.
//
// Ownership: the input packets are mutated in place — each must carry its
// ingress port in Packet.InPort — and remain owned by the caller, which
// releases (or reuses) them after consuming the results, EXCEPT when a
// result reports StoleInput: its last emission then IS the input packet
// (ownership moved to the emission, which the caller hands off or
// releases as usual) and the input must not be released separately. All
// other emission packets are pool-backed clones owned by the caller: each
// must be handed off or released exactly once. The steady-state path
// allocates nothing.
//
//simlint:hotpath
func (sw *Switch) ExecBatch(x *ExecContext, in []*Packet, out []Result) {
	x.sw = sw
	x.tracing = sw.Tracing
	x.record = sw.Record
	for i, p := range in {
		sw.exec(x, p, &out[i])
	}
	x.sw, x.res = nil, nil
}

// exec runs one packet of a batch through the pipeline.
func (sw *Switch) exec(x *ExecContext, p *Packet, res *Result) {
	res.reset()
	x.res, x.groupDepth, x.pend = res, 0, 0
	if p.InPort >= 1 && p.InPort <= sw.NumPorts {
		sw.RxPackets[p.InPort]++
	}

	table := 0
	for {
		// A stateful stage claims its table ID outright: transitions are
		// looked up against (state, packet) and a matched entry may write
		// the flow's next state before the pipeline continues. The len
		// guard keeps pure-of13 switches off the map-lookup path.
		if st, ok := sw.stateTable(table); ok && st.Len() > 0 {
			key := st.FlowKey(p)
			se := st.Lookup(key, p)
			if se == nil {
				if x.tracing {
					x.trace("state table %d: miss", table)
				}
				break
			}
			res.Matched = true
			se.Packets++
			res.LastCookie = se.Cookie
			if x.tracing {
				x.trace("state table %d: hit %q (%s)", table, se.Cookie, se.StateCond())
			}
			if x.record {
				res.Steps = append(res.Steps, Step{
					Table: table, Priority: se.Priority, Cookie: se.Cookie, Actions: se.Actions,
				})
			}
			for _, a := range se.Actions {
				applyAction(x, a, p)
			}
			st.Commit(key, se)
			if se.Goto == NoGoto {
				break
			}
			if se.Goto <= table {
				if x.tracing {
					x.trace("state table %d: illegal backward goto %d, stop", table, se.Goto)
				}
				break
			}
			table = se.Goto
			continue
		}
		t := sw.tableAt(table)
		if t == nil {
			if x.tracing {
				x.trace("table %d: absent, miss", table)
			}
			break
		}
		e := t.Lookup(p)
		if e == nil {
			if x.tracing {
				x.trace("table %d: miss", table)
			}
			break
		}
		res.Matched = true
		e.Packets++
		res.LastCookie = e.Cookie
		if x.tracing {
			x.trace("table %d: hit %q", table, e.Cookie)
		}
		if x.record {
			res.Steps = append(res.Steps, Step{
				Table: table, Priority: e.Priority, Cookie: e.Cookie, Actions: e.Actions,
			})
		}
		for _, a := range e.Actions {
			applyAction(x, a, p)
		}
		if e.Goto == NoGoto {
			break
		}
		if e.Goto <= table {
			// OpenFlow mandates forward-only goto; treat violation as a
			// configuration bug and stop rather than loop.
			if x.tracing {
				x.trace("table %d: illegal backward goto %d, stop", table, e.Goto)
			}
			break
		}
		table = e.Goto
	}

	if x.pend > 0 {
		// The last emission still references the input packet and nothing
		// mutated it after the Output: transfer ownership to the emission
		// instead of cloning. The caller sees StoleInput and skips its
		// release of the input.
		res.StoleInput = true
		x.pend = 0
	}

	for _, em := range res.Emissions {
		if em.Port >= 1 && em.Port <= sw.NumPorts {
			sw.TxPackets[em.Port]++
		}
	}
}

// Execute runs an explicit action list against the packet without any
// table lookup — the semantics of an OFPT_PACKET_OUT carrying actions.
// The caller's packet is not mutated.
func (sw *Switch) Execute(pkt *Packet, actions []Action) Result {
	p := pkt.ClonePooled()
	res := Result{Matched: true}
	x := &ExecContext{sw: sw, res: &res, tracing: sw.Tracing, record: sw.Record}
	for _, a := range actions {
		applyAction(x, a, p)
	}
	stolen := x.pend > 0 // the last emission took the internal clone
	x.pend = 0
	for _, em := range res.Emissions {
		if em.Port >= 1 && em.Port <= sw.NumPorts {
			sw.TxPackets[em.Port]++
		}
	}
	if stolen {
		res.StoleInput = true
	} else {
		p.Release()
	}
	return res
}

// FlowEntryCount returns the total number of flow entries installed.
func (sw *Switch) FlowEntryCount() int {
	n := 0
	for _, t := range sw.tables {
		n += t.Len()
	}
	return n
}

// StateEntryCount returns the total number of transition entries
// installed across state tables.
func (sw *Switch) StateEntryCount() int {
	n := 0
	for _, t := range sw.stateTables {
		n += t.Len()
	}
	return n
}

// GroupCount returns the number of group entries installed.
func (sw *Switch) GroupCount() int { return len(sw.gids) }

// ConfigBytes estimates the total hardware footprint of the installed
// configuration (flow, state and group entries), for the rule-space
// experiment.
func (sw *Switch) ConfigBytes() int {
	n := 0
	for _, t := range sw.tables {
		n += t.Bytes()
	}
	for _, t := range sw.stateTables {
		n += t.Bytes()
	}
	for _, g := range sw.gvals {
		n += g.Bytes()
	}
	return n
}
