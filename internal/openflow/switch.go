package openflow

import (
	"fmt"
	"sort"
)

// Emission is one packet leaving the switch on a port as a result of
// pipeline execution. Port is a physical port, PortController or PortSelf.
type Emission struct {
	Port int
	Pkt  *Packet
}

// Step records one matched flow entry during pipeline execution — the
// OF 1.3 rule-hit information (table, priority, cookie) plus the entry's
// action list, for the hop-trace layer. Steps are only collected when the
// switch has structured recording on (Switch.Record).
type Step struct {
	Table    int
	Priority int
	Cookie   string
	Actions  []Action
}

// GroupStep records one group-bucket decision during pipeline execution.
// Bucket is the index of the executed bucket, or -1 when no bucket ran
// (fast-failover group with no live bucket, or an uninstalled group).
type GroupStep struct {
	Group  uint32
	Type   GroupType
	Bucket int
}

// Result is the outcome of processing one packet through the pipeline.
type Result struct {
	// Emissions lists every packet copy the pipeline emitted, in action
	// execution order.
	Emissions []Emission
	// Matched reports whether any table matched; false means the packet
	// hit a table miss in table 0 (or a goto target) and was dropped.
	Matched bool
	// Trace is a human-readable execution log (rule cookies and group
	// bucket choices), populated only when the switch has tracing on.
	Trace []string
	// Steps lists the matched flow entries and GroupSteps the group-bucket
	// choices, in execution order; both are populated only when the switch
	// has structured recording on (Switch.Record).
	Steps      []Step
	GroupSteps []GroupStep

	// LastCookie is the cookie of the last matched flow entry, LastGroup
	// and LastBucket the last group-bucket decision (LastBucket -1 when
	// the group dropped the packet; LastGroup 0 when no group ran). These
	// are always populated — a few scalar stores per execution — so the
	// flight recorder can label records without Switch.Record's per-step
	// slice appends.
	LastCookie string
	LastGroup  uint32
	LastBucket int16
}

// reset clears the result for reuse, keeping the backing arrays so a
// steady-state pipeline execution appends into already-grown slices.
func (r *Result) reset() {
	r.Emissions = r.Emissions[:0]
	r.Matched = false
	r.Trace = r.Trace[:0]
	r.Steps = r.Steps[:0]
	r.GroupSteps = r.GroupSteps[:0]
	r.LastCookie = ""
	r.LastGroup = 0
	r.LastBucket = 0
}

// ExecContext threads pipeline state through action execution.
type ExecContext struct {
	sw         *Switch
	res        *Result
	groupDepth int
}

func (x *ExecContext) emit(port int, p *Packet) {
	x.res.Emissions = append(x.res.Emissions, Emission{Port: port, Pkt: p.ClonePooled()})
}

func (x *ExecContext) trace(format string, args ...any) {
	if x.sw.Tracing {
		x.res.Trace = append(x.res.Trace, fmt.Sprintf(format, args...))
	}
}

// step records a group-bucket decision: the last one always (scalar
// stores), the full sequence when structured recording is on.
func (x *ExecContext) step(g *GroupEntry, bucket int) {
	x.res.LastGroup = g.ID
	x.res.LastBucket = int16(bucket)
	if x.sw.Record {
		x.res.GroupSteps = append(x.res.GroupSteps, GroupStep{Group: g.ID, Type: g.Type, Bucket: bucket})
	}
}

// maxGroupDepth bounds group-to-group recursion. OpenFlow forbids group
// chaining loops; a small fixed depth keeps a buggy configuration from
// hanging the simulator.
const maxGroupDepth = 8

// Switch is a single OpenFlow 1.3 switch: numbered flow tables, a group
// table, physical ports 1..NumPorts with liveness state, and per-port
// traffic counters. It executes rules; it has no knowledge of what the
// rules implement.
type Switch struct {
	ID       int
	NumPorts int

	// Tracing enables per-packet execution traces in Result.Trace.
	Tracing bool
	// Record enables structured step recording in Result.Steps and
	// Result.GroupSteps — the machine-readable counterpart of Tracing,
	// used by the hop-trace layer. Cheap (no string formatting), but off
	// by default so the hot path stays allocation-free.
	Record bool

	tables map[int]*FlowTable
	// tableList mirrors tables as a slice so ScanStats can aggregate
	// without a map iteration; tables are created lazily and never deleted,
	// so append-on-create keeps it exact.
	tableList []*FlowTable
	// stateTables holds the stateful stages (EFSM transition tables). A
	// table ID names either a flow table or a state table; when both exist
	// the state table wins at execution time (and the verifier flags the
	// overlap as a configuration error).
	stateTables map[int]*StateTable
	stateList   []*StateTable
	groups      map[uint32]*GroupEntry
	live        []bool // index 1..NumPorts

	// xc is the reusable execution context for ReceiveInto. A switch
	// processes one packet at a time (the simulator is single-threaded per
	// network), so a single scratch context per switch suffices and keeps
	// the hot path from allocating one per packet.
	xc ExecContext

	// RxPackets / TxPackets count per-port traffic (ofp_port_stats).
	RxPackets []uint64
	TxPackets []uint64
}

// NewSwitch returns a switch with the given identifier and port count.
// All ports start live. Tables are created lazily on first use.
func NewSwitch(id, numPorts int) *Switch {
	live := make([]bool, numPorts+1)
	for i := 1; i <= numPorts; i++ {
		live[i] = true
	}
	return &Switch{
		ID:          id,
		NumPorts:    numPorts,
		tables:      make(map[int]*FlowTable),
		stateTables: make(map[int]*StateTable),
		groups:      make(map[uint32]*GroupEntry),
		live:        live,
		RxPackets:   make([]uint64, numPorts+1),
		TxPackets:   make([]uint64, numPorts+1),
	}
}

// Table returns the flow table with the given ID, creating it if needed.
func (sw *Switch) Table(id int) *FlowTable {
	t, ok := sw.tables[id]
	if !ok {
		t = &FlowTable{ID: id}
		sw.tables[id] = t
		sw.tableList = append(sw.tableList, t)
	}
	return t
}

// ScanStats sums the cumulative FlowTable lookup and entries-probed
// counts across all tables. The network layer diffs it at Run boundaries
// to feed the process-wide telemetry.
func (sw *Switch) ScanStats() (lookups, scanned uint64) {
	for _, t := range sw.tableList {
		l, s := t.ScanStats()
		lookups += l
		scanned += s
	}
	for _, t := range sw.stateList {
		l, s := t.ScanStats()
		lookups += l
		scanned += s
	}
	return lookups, scanned
}

// TableIDs returns the IDs of all non-empty tables — flow and state — in
// ascending order, without creating any (unlike Table).
func (sw *Switch) TableIDs() []int {
	var ids []int
	for id, t := range sw.tables {
		if t.Len() > 0 {
			ids = append(ids, id)
		}
	}
	for id, t := range sw.stateTables {
		if t.Len() > 0 {
			if ft, ok := sw.tables[id]; !ok || ft.Len() == 0 {
				ids = append(ids, id)
			}
		}
	}
	sort.Ints(ids)
	return ids
}

// StateTab returns the state table with the given ID, creating an empty
// keyless one if absent.
func (sw *Switch) StateTab(id int) *StateTable {
	t, ok := sw.stateTables[id]
	if !ok {
		t = NewStateTable(id, nil)
		sw.stateTables[id] = t
		sw.stateList = append(sw.stateList, t)
	}
	return t
}

// StateTableByID returns the state table with the given ID without
// creating it, or nil.
func (sw *Switch) StateTableByID(id int) *StateTable { return sw.stateTables[id] }

// StateTableIDs returns the IDs of all non-empty state tables, ascending.
func (sw *Switch) StateTableIDs() []int {
	var ids []int
	for id, t := range sw.stateTables {
		if t.Len() > 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// AddStateEntry installs a transition entry into state table id, setting
// the table's flow key on first use.
func (sw *Switch) AddStateEntry(id int, key []Field, e *StateEntry) {
	t := sw.StateTab(id)
	if t.Len() == 0 && len(key) > 0 {
		t.Key = key
	}
	t.Add(e)
}

// FindState returns the installed transition with the given cookie in
// state table id, or nil (the state-table counterpart of FindFlow).
func (sw *Switch) FindState(table int, cookie string) *StateEntry {
	t, ok := sw.stateTables[table]
	if !ok {
		return nil
	}
	return t.ByCookie(cookie)
}

// StateValue reads the current state of a flow key in state table id —
// the OpenState state-stats request a controller issues to inspect
// data-plane state (the TTL blackhole prober uses it under the stateful
// backend).
func (sw *Switch) StateValue(table int, key uint64) (uint64, bool) {
	t, ok := sw.stateTables[table]
	if !ok {
		return 0, false
	}
	return t.State(key), true
}

// ResetStateTable clears the state store of state table id, keeping its
// transitions. Missing tables are ignored.
func (sw *Switch) ResetStateTable(id int) {
	if t, ok := sw.stateTables[id]; ok {
		t.ResetState()
	}
}

// StateTransitions sums committed state writes across all state tables.
func (sw *Switch) StateTransitions() uint64 {
	var n uint64
	for _, t := range sw.stateList {
		n += t.Transitions
	}
	return n
}

// AddFlow installs a flow entry into table id.
func (sw *Switch) AddFlow(id int, e *FlowEntry) { sw.Table(id).Add(e) }

// FindFlow returns the installed entry with the given cookie in table id,
// or nil. Unlike Table, it never creates the table; the hit-counter layer
// uses it to map a retained Program's rules to their live counters.
func (sw *Switch) FindFlow(table int, cookie string) *FlowEntry {
	t, ok := sw.tables[table]
	if !ok {
		return nil
	}
	return t.ByCookie(cookie)
}

// AddGroup installs a group entry, replacing any previous entry with the
// same ID (group-mod semantics).
func (sw *Switch) AddGroup(g *GroupEntry) { sw.groups[g.ID] = g }

// GroupByID returns the installed group entry, or nil.
func (sw *Switch) GroupByID(id uint32) *GroupEntry { return sw.groups[id] }

// RemoveGroup deletes a group entry (group-mod DELETE); missing groups
// are ignored, like OFPGC_DELETE.
func (sw *Switch) RemoveGroup(id uint32) { delete(sw.groups, id) }

// RemoveGroupRange deletes every group with lo <= ID < hi, returning the
// count.
func (sw *Switch) RemoveGroupRange(lo, hi uint32) int {
	removed := 0
	for id := range sw.groups {
		if id >= lo && id < hi {
			delete(sw.groups, id)
			removed++
		}
	}
	return removed
}

// ClearTable removes every entry of table id — flow entries, transition
// entries and the state store alike — returning the count.
func (sw *Switch) ClearTable(id int) int {
	n := 0
	if t, ok := sw.tables[id]; ok {
		n += t.Clear()
	}
	if t, ok := sw.stateTables[id]; ok {
		n += t.Clear()
	}
	return n
}

// Groups returns all installed group entries in ascending ID order.
func (sw *Switch) Groups() []*GroupEntry {
	ids := make([]uint32, 0, len(sw.groups))
	for id := range sw.groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*GroupEntry, len(ids))
	for i, id := range ids {
		out[i] = sw.groups[id]
	}
	return out
}

// stateTable is the pipeline's hot-path accessor: the len check is one
// field load, so a switch with no stateful stages (the of13 backend)
// never pays the per-stage map lookup.
func (sw *Switch) stateTable(table int) (*StateTable, bool) {
	if len(sw.stateTables) == 0 {
		return nil, false
	}
	st, ok := sw.stateTables[table]
	return st, ok
}

// PortLive reports the liveness of a physical port. Out-of-range ports are
// never live.
func (sw *Switch) PortLive(port int) bool {
	return port >= 1 && port <= sw.NumPorts && sw.live[port]
}

// SetPortLive sets the liveness of a physical port; the network layer
// calls it when a link goes down or comes back up.
func (sw *Switch) SetPortLive(port int, up bool) {
	if port >= 1 && port <= sw.NumPorts {
		sw.live[port] = up
	}
}

func (sw *Switch) applyGroup(x *ExecContext, id uint32, p *Packet) {
	g := sw.groups[id]
	if g == nil {
		if x.sw.Tracing {
			x.trace("group %d: not installed, drop", id)
		}
		x.res.LastGroup = id
		x.res.LastBucket = -1
		if sw.Record {
			x.res.GroupSteps = append(x.res.GroupSteps, GroupStep{Group: id, Bucket: -1})
		}
		return
	}
	if x.groupDepth >= maxGroupDepth {
		if x.sw.Tracing {
			x.trace("group %d: max chaining depth, drop", id)
		}
		return
	}
	x.groupDepth++
	g.apply(x, p)
	x.groupDepth--
}

// Receive runs one packet through the pipeline starting at table 0. The
// packet is cloned internally, so the caller's packet is never mutated.
// inPort is the ingress physical port (or PortController for a packet-out
// that requests pipeline processing). The returned Result is fresh and
// belongs to the caller; the network's event loop uses ReceiveInto with a
// reusable Result instead.
func (sw *Switch) Receive(pkt *Packet, inPort int) Result {
	var res Result
	sw.ReceiveInto(pkt, inPort, &res)
	return res
}

// ReceiveInto runs one packet through the pipeline, writing the outcome
// into res (which is reset first, reusing its backing arrays). Emission
// packets are pool-backed clones owned by the caller: each must be handed
// off or released exactly once. The steady-state path allocates nothing.
func (sw *Switch) ReceiveInto(pkt *Packet, inPort int, res *Result) {
	res.reset()
	if inPort >= 1 && inPort <= sw.NumPorts {
		sw.RxPackets[inPort]++
	}
	p := pkt.ClonePooled()
	p.InPort = inPort

	x := &sw.xc
	x.sw, x.res, x.groupDepth = sw, res, 0

	table := 0
	for {
		// A stateful stage claims its table ID outright: transitions are
		// looked up against (state, packet) and a matched entry may write
		// the flow's next state before the pipeline continues. The len
		// guard keeps pure-of13 switches off the map-lookup path.
		if st, ok := sw.stateTable(table); ok && st.Len() > 0 {
			key := st.FlowKey(p)
			se := st.Lookup(key, p)
			if se == nil {
				if x.sw.Tracing {
					x.trace("state table %d: miss", table)
				}
				break
			}
			res.Matched = true
			se.Packets++
			res.LastCookie = se.Cookie
			if x.sw.Tracing {
				x.trace("state table %d: hit %q (%s)", table, se.Cookie, se.StateCond())
			}
			if sw.Record {
				res.Steps = append(res.Steps, Step{
					Table: table, Priority: se.Priority, Cookie: se.Cookie, Actions: se.Actions,
				})
			}
			for _, a := range se.Actions {
				a.Apply(x, p)
			}
			st.Commit(key, se)
			if se.Goto == NoGoto {
				break
			}
			if se.Goto <= table {
				if x.sw.Tracing {
					x.trace("state table %d: illegal backward goto %d, stop", table, se.Goto)
				}
				break
			}
			table = se.Goto
			continue
		}
		t := sw.tables[table]
		if t == nil {
			if x.sw.Tracing {
				x.trace("table %d: absent, miss", table)
			}
			break
		}
		e := t.Lookup(p)
		if e == nil {
			if x.sw.Tracing {
				x.trace("table %d: miss", table)
			}
			break
		}
		res.Matched = true
		e.Packets++
		res.LastCookie = e.Cookie
		if x.sw.Tracing {
			x.trace("table %d: hit %q", table, e.Cookie)
		}
		if sw.Record {
			res.Steps = append(res.Steps, Step{
				Table: table, Priority: e.Priority, Cookie: e.Cookie, Actions: e.Actions,
			})
		}
		for _, a := range e.Actions {
			a.Apply(x, p)
		}
		if e.Goto == NoGoto {
			break
		}
		if e.Goto <= table {
			// OpenFlow mandates forward-only goto; treat violation as a
			// configuration bug and stop rather than loop.
			if x.sw.Tracing {
				x.trace("table %d: illegal backward goto %d, stop", table, e.Goto)
			}
			break
		}
		table = e.Goto
	}

	for _, em := range res.Emissions {
		if em.Port >= 1 && em.Port <= sw.NumPorts {
			sw.TxPackets[em.Port]++
		}
	}
	x.res = nil
	p.Release()
}

// Execute runs an explicit action list against the packet without any
// table lookup — the semantics of an OFPT_PACKET_OUT carrying actions.
// The caller's packet is not mutated.
func (sw *Switch) Execute(pkt *Packet, actions []Action) Result {
	p := pkt.ClonePooled()
	defer p.Release()
	res := Result{Matched: true}
	x := &ExecContext{sw: sw, res: &res}
	for _, a := range actions {
		a.Apply(x, p)
	}
	for _, em := range res.Emissions {
		if em.Port >= 1 && em.Port <= sw.NumPorts {
			sw.TxPackets[em.Port]++
		}
	}
	return res
}

// FlowEntryCount returns the total number of flow entries installed.
func (sw *Switch) FlowEntryCount() int {
	n := 0
	for _, t := range sw.tables {
		n += t.Len()
	}
	return n
}

// StateEntryCount returns the total number of transition entries
// installed across state tables.
func (sw *Switch) StateEntryCount() int {
	n := 0
	for _, t := range sw.stateTables {
		n += t.Len()
	}
	return n
}

// GroupCount returns the number of group entries installed.
func (sw *Switch) GroupCount() int { return len(sw.groups) }

// ConfigBytes estimates the total hardware footprint of the installed
// configuration (flow, state and group entries), for the rule-space
// experiment.
func (sw *Switch) ConfigBytes() int {
	n := 0
	for _, t := range sw.tables {
		n += t.Bytes()
	}
	for _, t := range sw.stateTables {
		n += t.Bytes()
	}
	for _, g := range sw.groups {
		n += g.Bytes()
	}
	return n
}
