package openflow

import (
	"fmt"
	"sort"
	"strings"
)

// NoGoto marks a flow entry that ends pipeline processing at this table.
const NoGoto = -1

// FlowEntry is one row of a flow table: a priority, a match, an
// apply-actions list and an optional goto-table instruction.
type FlowEntry struct {
	Priority int
	Match    Match
	Actions  []Action
	Goto     int // next table ID, or NoGoto

	// Cookie is a human-readable rule name used in traces and debugging;
	// it plays the role of the OpenFlow cookie.
	Cookie string

	// Packets counts how many packets hit this entry (the per-entry
	// counter every OpenFlow switch keeps). Note that the pipeline cannot
	// *match* on this counter — that limitation is exactly why the paper
	// introduces smart counters built from round-robin groups.
	Packets uint64

	// seq is the table-assigned insertion sequence number; together with
	// Priority it totally orders entries (priority desc, insertion asc),
	// which is what lets the dispatch index compare candidates from
	// different buckets. Assigned by FlowTable.Add — an entry therefore
	// belongs to at most one table, like a real ofp_flow_mod.
	seq uint64
}

func (e *FlowEntry) String() string {
	return fmt.Sprintf("prio=%d %s -> %d actions, goto=%d (%s)",
		e.Priority, e.Match, len(e.Actions), e.Goto, e.Cookie)
}

// EntryBytes estimates the hardware footprint of the entry in bytes, used
// by the rule-space experiment (claim C3 in DESIGN.md). The model follows
// the OpenFlow 1.3 wire format: a 56-byte ofp_flow_mod base, 8 bytes per
// OXM match criterion, and 8 bytes per action.
func (e *FlowEntry) EntryBytes() int {
	return 56 + 8*e.Match.NumCriteria() + 8*len(e.Actions)
}

// anyInPort is the bucket-key sentinel for entries that wildcard the
// ingress port. It cannot collide with a packet's InPort: reserved ports
// are small negative constants and physical ports are small positives.
const anyInPort = int32(-1 << 30)

// ftKey is the exact-match dispatch key of an entry: its EtherType plus,
// where present, its ingress port. Entries that wildcard the EtherType do
// not get a key and live on the wildcard list instead.
type ftKey struct {
	eth int32
	in  int32
}

// FlowTable is a priority-ordered set of flow entries. Lookup returns the
// highest-priority matching entry; ties are broken by insertion order,
// matching the "overlapping entries are unspecified, first-add wins"
// behaviour switches exhibit in practice.
//
// Internally the table keeps a dispatch index alongside the ordered entry
// list: entries with an exact EtherType are bucketed by (EtherType,
// InPort) — InPort collapsing to a wildcard slot when the entry does not
// constrain it — so a lookup probes two small buckets plus the wildcard
// list instead of scanning every entry. Every SmartSouth-compiled rule
// carries an exact EtherType, so the wildcard list is empty in practice
// and the probe cost is bounded by the handful of same-service,
// same-port rules.
type FlowTable struct {
	ID      int
	entries []*FlowEntry

	seq     uint64                 // next insertion sequence number
	buckets map[ftKey][]*FlowEntry // exact-EtherType dispatch index
	wild    []*FlowEntry           // entries with a wildcarded EtherType

	// version counts mutations (Add/RemoveIf/Clear). The compiled matcher
	// records the version it was built at, so staleness stays auditable,
	// but the per-packet path does not compare versions: cur caches the
	// matcher pointer while it is current and every mutator nils it, so a
	// mutated table transparently falls back to the bucket scan — one nil
	// check instead of a load-and-compare — until the install path
	// recompiles (see matcher.go).
	version uint64
	m       *matcher
	cur     *matcher // m while m.version == version, else nil

	// mlookups / flookups / scanned count Lookup calls served by the
	// compiled matcher, Lookup calls served by the fallback bucket scan,
	// and entries probed across both. scanned/(mlookups+flookups) is the
	// real fan-out of the dispatch path. Plain fields: a table belongs to
	// one switch and one simulator goroutine, like the rest of its state.
	mlookups uint64
	flookups uint64
	scanned  uint64
}

// keyOf classifies an entry for the dispatch index. ok is false when the
// entry wildcards the EtherType and must go on the wildcard list.
func keyOf(m Match) (k ftKey, ok bool) {
	if m.EthType == AnyEthType {
		return ftKey{}, false
	}
	k = ftKey{eth: int32(m.EthType), in: anyInPort}
	if m.InPort != AnyPort {
		k.in = int32(m.InPort)
	}
	return k, true
}

// insertOrdered places e into list keeping (priority desc, seq asc) order.
// Equal-priority entries are ordered by insertion sequence, so a bucket
// scan preserves first-add-wins exactly like the flat entry list.
func insertOrdered(list []*FlowEntry, e *FlowEntry) []*FlowEntry {
	i := sort.Search(len(list), func(i int) bool {
		if list[i].Priority != e.Priority {
			return list[i].Priority < e.Priority
		}
		return list[i].seq > e.seq
	})
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = e
	return list
}

// Add inserts an entry, keeping the table sorted by descending priority.
// The insertion point is found by binary search and equal-priority entries
// are inserted after existing ones, preserving first-add-wins lookup order
// without re-sorting the whole table on every install. The dispatch index
// is maintained incrementally.
func (t *FlowTable) Add(e *FlowEntry) {
	e.seq = t.seq
	t.seq++
	t.version++
	t.cur = nil
	i := sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].Priority < e.Priority
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e

	if k, ok := keyOf(e.Match); ok {
		if t.buckets == nil {
			t.buckets = make(map[ftKey][]*FlowEntry)
		}
		t.buckets[k] = insertOrdered(t.buckets[k], e)
	} else {
		t.wild = insertOrdered(t.wild, e)
	}
}

// byTableOrder is the table's total order: priority descending, ties
// broken by insertion sequence — exactly the order incremental Add
// maintains.
func byTableOrder(list []*FlowEntry) func(i, j int) bool {
	return func(i, j int) bool {
		if list[i].Priority != list[j].Priority {
			return list[i].Priority > list[j].Priority
		}
		return list[i].seq < list[j].seq
	}
}

// AddBatch installs a batch of entries as one mutation: sequence numbers
// follow slice order, then the flat list and each touched dispatch bucket
// are re-sorted once. Installing k entries into a table holding n this
// way costs O((n+k)·log(n+k)) instead of the O(k·(n+k)) element moves of
// k sorted inserts — the in-memory analogue of a batched flow-mod
// transaction versus k wire messages, and what keeps a 10k-switch
// program install linear in its rule count.
func (t *FlowTable) AddBatch(es []*FlowEntry) {
	if len(es) == 0 {
		return
	}
	if len(es) == 1 {
		t.Add(es[0])
		return
	}
	t.version++
	t.cur = nil
	var wildTouched bool
	touched := make(map[ftKey]struct{})
	for _, e := range es {
		e.seq = t.seq
		t.seq++
		if k, ok := keyOf(e.Match); ok {
			if t.buckets == nil {
				t.buckets = make(map[ftKey][]*FlowEntry)
			}
			t.buckets[k] = append(t.buckets[k], e)
			touched[k] = struct{}{}
		} else {
			t.wild = append(t.wild, e)
			wildTouched = true
		}
	}
	t.entries = append(t.entries, es...)
	sort.Slice(t.entries, byTableOrder(t.entries))
	//simlint:ignore determinism: each bucket is sorted independently; bucket visit order cannot affect any bucket's final order
	for k := range touched {
		sort.Slice(t.buckets[k], byTableOrder(t.buckets[k]))
	}
	if wildTouched {
		sort.Slice(t.wild, byTableOrder(t.wild))
	}
}

// firstMatch returns the first entry of list matching p, plus the number
// of entries probed. Lists are kept in (priority desc, seq asc) order, so
// the first match is the best of its list.
func firstMatch(list []*FlowEntry, p *Packet) (*FlowEntry, int) {
	for i, e := range list {
		if e.Match.Matches(p) {
			return e, i + 1
		}
	}
	return nil, len(list)
}

// better returns the entry that wins overall ordering: higher priority, or
// earlier insertion on a tie. Either argument may be nil.
func better(a, b *FlowEntry) *FlowEntry {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.Priority != b.Priority {
		if a.Priority > b.Priority {
			return a
		}
		return b
	}
	if a.seq <= b.seq {
		return a
	}
	return b
}

// Lookup returns the first matching entry, or nil for a table miss. A
// table whose compiled matcher is current dispatches through the decision
// tree; otherwise it probes the (EtherType, InPort) bucket, the
// (EtherType, any-port) bucket and the wildcard list — each internally
// ordered, so the best of the per-list first-matches is exactly the entry
// a full priority-ordered scan would have returned. Lookup does not
// allocate on either path.
//
//simlint:hotpath
func (t *FlowTable) Lookup(p *Packet) *FlowEntry {
	if m := t.cur; m != nil {
		e, probed := m.lookup(p)
		t.mlookups++
		t.scanned += uint64(probed)
		return e
	}
	var best *FlowEntry
	probed := 0
	if t.buckets != nil {
		var n int
		best, n = firstMatch(t.buckets[ftKey{eth: int32(p.EthType), in: int32(p.InPort)}], p)
		probed += n
		e, n := firstMatch(t.buckets[ftKey{eth: int32(p.EthType), in: anyInPort}], p)
		probed += n
		best = better(best, e)
	}
	e, n := firstMatch(t.wild, p)
	t.flookups++
	t.scanned += uint64(probed + n)
	return better(best, e)
}

// ScanStats is the cumulative dispatch accounting of a table (or, via
// Switch.ScanStats, a whole switch): how many Lookup calls the compiled
// matcher served, how many fell back to the linear bucket scan, and how
// many entries were probed across both paths. Reporting the two paths
// separately is what lets telemetry see a stale matcher bleeding lookups
// back onto the slow path instead of silently undercounting.
type ScanStats struct {
	MatcherLookups  uint64
	FallbackLookups uint64
	Scanned         uint64
}

// Lookups returns the total Lookup calls across both dispatch paths.
func (s ScanStats) Lookups() uint64 { return s.MatcherLookups + s.FallbackLookups }

// Merge accumulates o into s.
func (s *ScanStats) Merge(o ScanStats) {
	s.MatcherLookups += o.MatcherLookups
	s.FallbackLookups += o.FallbackLookups
	s.Scanned += o.Scanned
}

// ScanStats returns the table's cumulative dispatch counters.
func (t *FlowTable) ScanStats() ScanStats {
	return ScanStats{MatcherLookups: t.mlookups, FallbackLookups: t.flookups, Scanned: t.scanned}
}

// ByCookie returns the first entry with exactly the given cookie, or nil.
// SmartSouth cookies are unique per rule within a table, so this is the
// reverse mapping from a retained Program's declarative rules to their
// live hit counters.
func (t *FlowTable) ByCookie(cookie string) *FlowEntry {
	for _, e := range t.entries {
		if e.Cookie == cookie {
			return e
		}
	}
	return nil
}

// RemoveByCookiePrefix deletes every entry whose cookie starts with
// prefix (the OFPFC_DELETE-by-cookie-mask idiom), returning how many were
// removed.
func (t *FlowTable) RemoveByCookiePrefix(prefix string) int {
	return t.RemoveIf(func(e *FlowEntry) bool {
		return strings.HasPrefix(e.Cookie, prefix)
	})
}

// RemoveIf deletes every entry the predicate selects, returning the
// count. The compacted tail of the backing array is cleared so removed
// entries do not linger half-alive, and the dispatch index is rebuilt from
// the survivors.
func (t *FlowTable) RemoveIf(pred func(*FlowEntry) bool) int {
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if pred(e) {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	// Nil out the compaction tail: the backing array otherwise keeps the
	// removed entries (and their action lists) reachable indefinitely.
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = nil
	}
	t.entries = kept
	if removed > 0 {
		t.version++
		t.cur = nil
		t.reindex()
	}
	return removed
}

// reindex rebuilds the dispatch index from the (already ordered) entry
// list. Removal is a control-plane operation, so an O(n) rebuild is the
// simple way to keep the index exact.
func (t *FlowTable) reindex() {
	t.buckets = nil
	t.wild = nil
	for _, e := range t.entries {
		if k, ok := keyOf(e.Match); ok {
			if t.buckets == nil {
				t.buckets = make(map[ftKey][]*FlowEntry)
			}
			t.buckets[k] = append(t.buckets[k], e)
		} else {
			t.wild = append(t.wild, e)
		}
	}
}

// Clear removes every entry and drops the dispatch index.
func (t *FlowTable) Clear() int {
	n := len(t.entries)
	t.entries = nil
	t.buckets = nil
	t.wild = nil
	t.version++
	t.cur = nil
	return n
}

// Len returns the number of entries installed.
func (t *FlowTable) Len() int { return len(t.entries) }

// Entries returns the installed entries in match order. The returned slice
// is a copy, so callers cannot corrupt the table's priority order by
// mutating it; use Each to iterate without allocating.
func (t *FlowTable) Entries() []*FlowEntry {
	out := make([]*FlowEntry, len(t.entries))
	copy(out, t.entries)
	return out
}

// Each calls fn for every entry in match order until fn returns false.
// It does not allocate; dump and verify use it on their hot paths.
func (t *FlowTable) Each(fn func(*FlowEntry) bool) {
	for _, e := range t.entries {
		if !fn(e) {
			return
		}
	}
}

// Bytes sums the modelled hardware footprint of all entries.
func (t *FlowTable) Bytes() int {
	n := 0
	for _, e := range t.entries {
		n += e.EntryBytes()
	}
	return n
}
