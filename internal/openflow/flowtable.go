package openflow

import (
	"fmt"
	"sort"
)

// NoGoto marks a flow entry that ends pipeline processing at this table.
const NoGoto = -1

// FlowEntry is one row of a flow table: a priority, a match, an
// apply-actions list and an optional goto-table instruction.
type FlowEntry struct {
	Priority int
	Match    Match
	Actions  []Action
	Goto     int // next table ID, or NoGoto

	// Cookie is a human-readable rule name used in traces and debugging;
	// it plays the role of the OpenFlow cookie.
	Cookie string

	// Packets counts how many packets hit this entry (the per-entry
	// counter every OpenFlow switch keeps). Note that the pipeline cannot
	// *match* on this counter — that limitation is exactly why the paper
	// introduces smart counters built from round-robin groups.
	Packets uint64
}

func (e *FlowEntry) String() string {
	return fmt.Sprintf("prio=%d %s -> %d actions, goto=%d (%s)",
		e.Priority, e.Match, len(e.Actions), e.Goto, e.Cookie)
}

// EntryBytes estimates the hardware footprint of the entry in bytes, used
// by the rule-space experiment (claim C3 in DESIGN.md). The model follows
// the OpenFlow 1.3 wire format: a 56-byte ofp_flow_mod base, 8 bytes per
// OXM match criterion, and 8 bytes per action.
func (e *FlowEntry) EntryBytes() int {
	return 56 + 8*e.Match.NumCriteria() + 8*len(e.Actions)
}

// FlowTable is a priority-ordered set of flow entries. Lookup returns the
// highest-priority matching entry; ties are broken by insertion order,
// matching the "overlapping entries are unspecified, first-add wins"
// behaviour switches exhibit in practice.
type FlowTable struct {
	ID      int
	entries []*FlowEntry
}

// Add inserts an entry, keeping the table sorted by descending priority.
// The insertion point is found by binary search and equal-priority entries
// are inserted after existing ones, preserving first-add-wins lookup order
// without re-sorting the whole table on every install.
func (t *FlowTable) Add(e *FlowEntry) {
	i := sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].Priority < e.Priority
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
}

// Lookup returns the first matching entry, or nil for a table miss.
func (t *FlowTable) Lookup(p *Packet) *FlowEntry {
	for _, e := range t.entries {
		if e.Match.Matches(p) {
			return e
		}
	}
	return nil
}

// ByCookie returns the first entry with exactly the given cookie, or nil.
// SmartSouth cookies are unique per rule within a table, so this is the
// reverse mapping from a retained Program's declarative rules to their
// live hit counters.
func (t *FlowTable) ByCookie(cookie string) *FlowEntry {
	for _, e := range t.entries {
		if e.Cookie == cookie {
			return e
		}
	}
	return nil
}

// RemoveByCookiePrefix deletes every entry whose cookie starts with
// prefix (the OFPFC_DELETE-by-cookie-mask idiom), returning how many were
// removed.
func (t *FlowTable) RemoveByCookiePrefix(prefix string) int {
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if len(e.Cookie) >= len(prefix) && e.Cookie[:len(prefix)] == prefix {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	t.entries = kept
	return removed
}

// RemoveIf deletes every entry the predicate selects, returning the
// count.
func (t *FlowTable) RemoveIf(pred func(*FlowEntry) bool) int {
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if pred(e) {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	t.entries = kept
	return removed
}

// Clear removes every entry.
func (t *FlowTable) Clear() int {
	n := len(t.entries)
	t.entries = nil
	return n
}

// Len returns the number of entries installed.
func (t *FlowTable) Len() int { return len(t.entries) }

// Entries returns the installed entries in match order. The returned slice
// is a copy, so callers cannot corrupt the table's priority order by
// mutating it; use Each to iterate without allocating.
func (t *FlowTable) Entries() []*FlowEntry {
	out := make([]*FlowEntry, len(t.entries))
	copy(out, t.entries)
	return out
}

// Each calls fn for every entry in match order until fn returns false.
// It does not allocate; dump and verify use it on their hot paths.
func (t *FlowTable) Each(fn func(*FlowEntry) bool) {
	for _, e := range t.entries {
		if !fn(e) {
			return
		}
	}
}

// Bytes sums the modelled hardware footprint of all entries.
func (t *FlowTable) Bytes() int {
	n := 0
	for _, e := range t.entries {
		n += e.EntryBytes()
	}
	return n
}
