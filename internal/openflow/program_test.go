package openflow

import "testing"

func TestProgramMaterializeClonesState(t *testing.T) {
	p := NewProgram("test", 0)
	p.Ensure(0, 2)
	f := Field{Name: "f", Off: 0, Bits: 4}
	p.AddFlow(0, 0, &FlowEntry{
		Priority: 10, Match: MatchEth(0x8801),
		Actions: []Action{Group{ID: 7}}, Goto: NoGoto, Cookie: "test/n0/x",
	})
	p.AddGroup(0, &GroupEntry{ID: 7, Type: GroupSelectRR, Buckets: []Bucket{
		{Actions: []Action{SetField{F: f, Value: 0}}},
		{Actions: []Action{SetField{F: f, Value: 1}}},
	}})

	sw1 := NewSwitch(0, 2)
	sw2 := NewSwitch(0, 2)
	p.At(0).Materialize(sw1)
	p.At(0).Materialize(sw2)

	pkt := &Packet{EthType: 0x8801}
	sw1.Receive(pkt, PortController)

	// sw1's entry counter and group round-robin pointer moved; sw2 and the
	// program itself must be untouched.
	if got := sw1.Table(0).Entries()[0].Packets; got != 1 {
		t.Fatalf("sw1 entry packets = %d, want 1", got)
	}
	if got := sw2.Table(0).Entries()[0].Packets; got != 0 {
		t.Fatalf("sw2 entry packets = %d, want 0 (state shared with sw1)", got)
	}
	if got := p.At(0).Flows[0].Entry.Packets; got != 0 {
		t.Fatalf("program entry packets = %d, want 0 (state shared with switch)", got)
	}
	if v1, v2 := sw1.GroupByID(7).CounterValue(), sw2.GroupByID(7).CounterValue(); v1 != 1 || v2 != 0 {
		t.Fatalf("group counters = %d, %d; want 1, 0", v1, v2)
	}
}

func TestProgramAccountingMatchesSwitchWalk(t *testing.T) {
	p := NewProgram("test", 3)
	p.Ensure(1, 4)
	p.Ensure(2, 4)
	p.AddFlow(1, 0, &FlowEntry{Priority: 1, Match: MatchEth(0x8801), Goto: NoGoto})
	p.AddFlow(1, 5, &FlowEntry{Priority: 2, Match: MatchEth(0x8801).WithInPort(1), Goto: NoGoto})
	p.AddFlow(2, 0, &FlowEntry{Priority: 1, Match: MatchEth(0x8801), Goto: NoGoto})
	p.AddGroup(2, &GroupEntry{ID: 9, Type: GroupIndirect, Buckets: []Bucket{{Actions: []Action{Output{Port: 1}}}}})

	if p.FlowCount() != 3 || p.GroupCount() != 1 {
		t.Fatalf("counts = %d flows, %d groups; want 3, 1", p.FlowCount(), p.GroupCount())
	}
	if ids := p.SwitchIDs(); len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("SwitchIDs = %v", ids)
	}
	if !p.CoversSlot(3) || p.CoversSlot(2) || p.CoversSlot(4) {
		t.Fatalf("CoversSlot wrong for single-slot program at slot 3")
	}

	total := 0
	for _, id := range p.SwitchIDs() {
		sw := NewSwitch(id, p.At(id).NumPorts)
		p.At(id).Materialize(sw)
		total += sw.ConfigBytes()
	}
	if p.Bytes() != total {
		t.Fatalf("Program.Bytes = %d, switch walk = %d", p.Bytes(), total)
	}
}
