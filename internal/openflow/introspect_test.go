package openflow

import "testing"

var fA = Field{Name: "a", Off: 0, Bits: 4}
var fB = Field{Name: "b", Off: 4, Bits: 4}

func TestMatchCovers(t *testing.T) {
	eth := MatchEth(0x8801)
	cases := []struct {
		name string
		a, b Match
		want bool
	}{
		{"wildcard covers everything", MatchAll(), eth.WithInPort(2).WithField(fA, 3), true},
		{"eth covers eth+field", eth, eth.WithField(fA, 3), true},
		{"field value mismatch", eth.WithField(fA, 1), eth.WithField(fA, 2), false},
		{"same constraint", eth.WithField(fA, 2), eth.WithField(fA, 2), true},
		{"pinned port does not cover wildcard", eth.WithInPort(1), eth, false},
		{"masked covers exact", eth.WithMasked(fA, 0b10, 0b10), eth.WithField(fA, 0b11), true},
		{"exact does not cover masked", eth.WithField(fA, 0b11), eth.WithMasked(fA, 0b10, 0b10), false},
		{"ttl pin does not cover wildcard", eth.WithTTL(0), eth, false},
		{"different field not covered", eth.WithField(fA, 1), eth.WithField(fB, 1), false},
		{"different eth", MatchEth(0x8801), MatchEth(0x8802), false},
	}
	for _, c := range cases {
		if got := c.a.Covers(c.b); got != c.want {
			t.Errorf("%s: Covers(%s, %s) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestMatchOverlaps(t *testing.T) {
	eth := MatchEth(0x8801)
	cases := []struct {
		name string
		a, b Match
		want bool
	}{
		{"disjoint field values", eth.WithField(fA, 1), eth.WithField(fA, 2), false},
		{"disjoint ports", eth.WithInPort(1), eth.WithInPort(2), false},
		{"port vs wildcard", eth.WithInPort(1), eth, true},
		{"different fields overlap", eth.WithField(fA, 1), eth.WithField(fB, 2), true},
		{"masked compatible", eth.WithMasked(fA, 0b10, 0b10), eth.WithField(fA, 0b11), true},
		{"masked incompatible", eth.WithMasked(fA, 0b10, 0b10), eth.WithField(fA, 0b01), false},
		{"different eth disjoint", MatchEth(0x8801), MatchEth(0x8802), false},
		{"identical", eth.WithField(fA, 1), eth.WithField(fA, 1), true},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%s: Overlaps(%s, %s) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("%s (sym): Overlaps(%s, %s) = %v, want %v", c.name, c.b, c.a, got, c.want)
		}
	}
}

func TestMatchSameFootprintAndEqual(t *testing.T) {
	eth := MatchEth(0x8801)
	if !eth.WithField(fA, 1).SameFootprint(eth.WithField(fA, 2)) {
		t.Error("same dims, different values: want SameFootprint")
	}
	if eth.SameFootprint(eth.WithField(fA, 1)) {
		t.Error("broader rule: want !SameFootprint")
	}
	if eth.WithInPort(1).SameFootprint(eth) {
		t.Error("pinned vs wildcard port: want !SameFootprint")
	}
	if !eth.WithField(fA, 1).Equal(eth.WithField(fA, 1)) {
		t.Error("identical matches: want Equal")
	}
	if eth.Equal(eth.WithField(fA, 1)) {
		t.Error("broader vs narrower: want !Equal")
	}
}

func TestActionIntrospection(t *testing.T) {
	acts := []Action{
		SetField{F: fA, Value: 3},
		Output{Port: 2},
		Group{ID: 7},
		Output{Port: PortController},
		SetField{F: fB, Value: 1},
	}
	if got := OutputPorts(acts); len(got) != 2 || got[0] != 2 || got[1] != PortController {
		t.Errorf("OutputPorts = %v", got)
	}
	if got := GroupRefs(acts); len(got) != 1 || got[0] != 7 {
		t.Errorf("GroupRefs = %v", got)
	}
	if got := SetFieldTargets(acts); len(got) != 2 || got[0] != fA || got[1] != fB {
		t.Errorf("SetFieldTargets = %v", got)
	}
}

func TestDispatchEthTypes(t *testing.T) {
	entries := []*FlowEntry{
		{Match: MatchEth(0x8801)},
		{Match: MatchEth(0x8802)},
		{Match: MatchEth(0x8801)},
		{Match: MatchAll()},
	}
	got := DispatchEthTypes(entries)
	if len(got) != 2 || got[0] != 0x8801 || got[1] != 0x8802 {
		t.Errorf("DispatchEthTypes = %v", got)
	}
}
