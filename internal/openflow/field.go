// Package openflow models the OpenFlow 1.3 data plane: packets with a
// bit-addressable tag area and an MPLS-like label stack, priority-ordered
// flow tables with masked matching, the apply-actions/goto-table pipeline,
// and the group table with ALL, INDIRECT, FAST-FAILOVER and round-robin
// SELECT group types.
//
// The model is deliberately "dumb": it executes whatever match-action rules
// are installed and knows nothing about the SmartSouth services compiled on
// top of it (package core). This mirrors the paper's claim that the data
// plane remains formally verifiable: all behaviour is visible as ordinary
// flow and group entries.
//
//simlint:deterministic
package openflow

import "fmt"

// Field addresses a contiguous bit range inside a packet's tag area, in the
// spirit of an OXM experimenter match field. Offsets are in bits from the
// start of the tag, most-significant bit first within each byte. A Field is
// pure data: allocation of non-overlapping fields is the business of the
// compiler (see package core), not the switch.
type Field struct {
	Name string // diagnostic only; never used for matching
	Off  int    // bit offset into the tag area
	Bits int    // width in bits, 1..64
}

// Valid reports whether the field has a representable width.
func (f Field) Valid() bool { return f.Bits >= 1 && f.Bits <= 64 && f.Off >= 0 }

// End returns the bit offset one past the field.
func (f Field) End() int { return f.Off + f.Bits }

// Max returns the largest value the field can hold.
func (f Field) Max() uint64 {
	if f.Bits >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(f.Bits)) - 1
}

func (f Field) String() string {
	if f.Name != "" {
		return fmt.Sprintf("%s[%d:%d]", f.Name, f.Off, f.End())
	}
	return fmt.Sprintf("tag[%d:%d]", f.Off, f.End())
}

// Load extracts the field value from tag. Bits beyond the end of tag read
// as zero, so a short tag behaves like one padded with zero bytes.
//
// The first branch is the inlinable hot path for narrow fields (every
// field the compiler allocates for DFS state is well under 9 bits): a
// ≤9-bit field spans at most two bytes, read branch-free into a 16-bit
// window. When the field sits in a single byte, last == first duplicates
// that byte into the low half of the window, and the shift (≥8 in that
// case) discards it.
func (f Field) Load(tag []byte) uint64 {
	if first, last := f.Off>>3, (f.Off+f.Bits-1)>>3; f.Bits <= 9 && first >= 0 && last < len(tag) {
		v := uint64(tag[first])<<8 | uint64(tag[last])
		return v >> uint(16-(f.Off+f.Bits-first*8)) & (1<<uint(f.Bits) - 1)
	}
	return f.loadWide(tag)
}

func (f Field) loadWide(tag []byte) uint64 {
	first, last := f.Off>>3, (f.Off+f.Bits-1)>>3
	if f.Bits <= 57 && first >= 0 && last < len(tag) {
		// The spanned bytes (at most 8, since a ≤57-bit field straddles
		// ≤8 byte boundaries) fit a uint64 big-endian read.
		var v uint64
		for i := first; i <= last; i++ {
			v = v<<8 | uint64(tag[i])
		}
		v >>= uint((last+1)*8 - (f.Off + f.Bits))
		return v & (1<<uint(f.Bits) - 1)
	}
	var v uint64
	for i := 0; i < f.Bits; i++ {
		pos := f.Off + i
		byteIdx, bitIdx := pos>>3, 7-uint(pos&7)
		v <<= 1
		if byteIdx < len(tag) && tag[byteIdx]>>(bitIdx)&1 == 1 {
			v |= 1
		}
	}
	return v
}

// Store writes v into the field, truncating v to the field width. Writes
// beyond the end of tag are silently dropped (the switch cannot grow a
// packet); callers size the tag area when the packet is created.
func (f Field) Store(tag []byte, v uint64) {
	for i := f.Bits - 1; i >= 0; i-- {
		pos := f.Off + i
		byteIdx, bitIdx := pos>>3, 7-uint(pos&7)
		if byteIdx >= len(tag) {
			v >>= 1
			continue
		}
		if v&1 == 1 {
			tag[byteIdx] |= 1 << bitIdx
		} else {
			tag[byteIdx] &^= 1 << bitIdx
		}
		v >>= 1
	}
}

// BitsFor returns the number of bits needed to store values 0..max.
func BitsFor(max uint64) int {
	n := 1
	for max > 1 {
		max >>= 1
		n++
	}
	return n
}
