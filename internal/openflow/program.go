package openflow

import "sort"

// FlowRule pairs a flow entry with the table it belongs to. It is the unit
// a compiled Program stores per switch; the entry is still *declarative*
// state — nothing is installed until the program is materialized onto a
// switch.
type FlowRule struct {
	Table int
	Entry *FlowEntry
}

// StateTableSpec is one state table's share of a switch program: the
// table ID, the flow-key fields and the transition entries. Key fields
// are a per-table property (every transition of a table shares the key),
// so they live on the spec rather than on entries.
type StateTableSpec struct {
	Table   int
	Key     []Field
	Entries []*StateEntry
}

// SwitchProgram is one switch's share of a Program: every flow rule,
// state-table transition and group entry the service wants on that
// switch. NumPorts records the switch's port count so the program can be
// statically checked (port ranges, watch ports) without touching a live
// switch.
type SwitchProgram struct {
	Switch   int
	NumPorts int
	Flows    []FlowRule
	States   []StateTableSpec
	Groups   []*GroupEntry
}

// StateSpec returns the spec for state table id, creating it if absent.
func (sp *SwitchProgram) StateSpec(table int) *StateTableSpec {
	for i := range sp.States {
		if sp.States[i].Table == table {
			return &sp.States[i]
		}
	}
	sp.States = append(sp.States, StateTableSpec{Table: table})
	return &sp.States[len(sp.States)-1]
}

// StateBytes sums the modelled hardware footprint of the transitions.
func (sp *SwitchProgram) StateBytes() int {
	n := 0
	for _, ts := range sp.States {
		for _, e := range ts.Entries {
			n += e.EntryBytes()
		}
	}
	return n
}

// FlowBytes sums the modelled hardware footprint of the flow rules.
func (sp *SwitchProgram) FlowBytes() int {
	n := 0
	for _, r := range sp.Flows {
		n += r.Entry.EntryBytes()
	}
	return n
}

// GroupBytes sums the modelled hardware footprint of the group entries.
func (sp *SwitchProgram) GroupBytes() int {
	n := 0
	for _, g := range sp.Groups {
		n += g.Bytes()
	}
	return n
}

// Materialize installs the switch program onto a live switch. Entries and
// groups are cloned first: a Program is a reusable compile artifact, and
// runtime state (packet counters, round-robin pointers) must never be
// shared between the program and a deployment, or between two deployments
// of the same program.
func (sp *SwitchProgram) Materialize(sw *Switch) {
	for _, g := range sp.Groups {
		sw.AddGroup(g.Clone())
	}
	// Group the clones per table and install each group as one batch:
	// encounter order within a table is preserved, so the per-table
	// sequence numbers — and with them first-add-wins tie-breaking — come
	// out exactly as per-rule adds would assign them, at the batched cost
	// (see FlowTable.AddBatch).
	byTable := make(map[int][]*FlowEntry)
	var tables []int
	for _, r := range sp.Flows {
		ne := *r.Entry
		ne.Packets = 0
		if _, ok := byTable[r.Table]; !ok {
			tables = append(tables, r.Table)
		}
		byTable[r.Table] = append(byTable[r.Table], &ne)
	}
	for _, id := range tables {
		sw.Table(id).AddBatch(byTable[id])
	}
	for _, ts := range sp.States {
		for _, e := range ts.Entries {
			ne := *e
			ne.Packets = 0
			sw.AddStateEntry(ts.Table, ts.Key, &ne)
		}
	}
}

// Program is the declarative intermediate representation every SmartSouth
// service compiles to: a per-switch set of flow rules and group entries,
// tagged with the service name and the slot it occupies. Separating this
// from installation lets the pipeline verify a configuration before any
// rule is live, batch the wire installation per switch, and account for
// rule space (claim C3) without re-walking switches.
type Program struct {
	// Service is the service label, e.g. "snapshot" or "blackhole-ctr".
	Service string
	// Slot is the table/group slot the program occupies. Slots spans
	// multi-slot services (chaincast); single-slot programs have Slots=1.
	Slot  int
	Slots int
	// TagBytes is the tag budget the program's layout assumed; the static
	// checker uses it to detect out-of-bounds tag fields.
	TagBytes int
	// Transient marks modify-style programs (e.g. a smart-counter reset
	// re-sends an existing group). Control planes apply them but do not
	// retain them for accounting — the state they touch is already owned
	// by an installed program.
	Transient bool

	switches map[int]*SwitchProgram
}

// NewProgram returns an empty program for a service occupying one slot.
func NewProgram(service string, slot int) *Program {
	return &Program{
		Service:  service,
		Slot:     slot,
		Slots:    1,
		switches: make(map[int]*SwitchProgram),
	}
}

// CoversSlot reports whether the program occupies the given slot.
func (p *Program) CoversSlot(slot int) bool {
	return slot >= p.Slot && slot < p.Slot+p.Slots
}

// Ensure returns the switch program for sw, creating it with the given
// port count if absent.
func (p *Program) Ensure(sw, numPorts int) *SwitchProgram {
	sp, ok := p.switches[sw]
	if !ok {
		sp = &SwitchProgram{Switch: sw, NumPorts: numPorts}
		p.switches[sw] = sp
	}
	return sp
}

// At returns the switch program for sw, or nil if the program has no rules
// there.
func (p *Program) At(sw int) *SwitchProgram { return p.switches[sw] }

// AddFlow appends a flow rule for switch sw. The switch program must have
// been created with Ensure (so its port count is known).
func (p *Program) AddFlow(sw, table int, e *FlowEntry) {
	sp := p.switches[sw]
	if sp == nil {
		panic("openflow: Program.AddFlow before Ensure")
	}
	sp.Flows = append(sp.Flows, FlowRule{Table: table, Entry: e})
}

// AddGroup appends a group entry for switch sw.
func (p *Program) AddGroup(sw int, g *GroupEntry) {
	sp := p.switches[sw]
	if sp == nil {
		panic("openflow: Program.AddGroup before Ensure")
	}
	sp.Groups = append(sp.Groups, g)
}

// AddState appends a transition entry to state table on switch sw.
func (p *Program) AddState(sw, table int, e *StateEntry) {
	sp := p.switches[sw]
	if sp == nil {
		panic("openflow: Program.AddState before Ensure")
	}
	ts := sp.StateSpec(table)
	ts.Entries = append(ts.Entries, e)
}

// SetStateKey declares the flow-key fields of state table on switch sw.
// Programs that omit it get a keyless table: one global state per
// (switch, table).
func (p *Program) SetStateKey(sw, table int, key []Field) {
	sp := p.switches[sw]
	if sp == nil {
		panic("openflow: Program.SetStateKey before Ensure")
	}
	sp.StateSpec(table).Key = key
}

// SwitchIDs returns the switches the program touches, ascending.
func (p *Program) SwitchIDs() []int {
	ids := make([]int, 0, len(p.switches))
	for id := range p.switches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// FlowCount returns the total number of flow rules across all switches.
func (p *Program) FlowCount() int {
	n := 0
	for _, sp := range p.switches {
		n += len(sp.Flows)
	}
	return n
}

// GroupCount returns the total number of group entries across all
// switches.
func (p *Program) GroupCount() int {
	n := 0
	for _, sp := range p.switches {
		n += len(sp.Groups)
	}
	return n
}

// StateCount returns the total number of state-table transition entries
// across all switches.
func (p *Program) StateCount() int {
	n := 0
	for _, sp := range p.switches {
		for _, ts := range sp.States {
			n += len(ts.Entries)
		}
	}
	return n
}

// StateTables returns the IDs of every state table the program populates
// on any switch, ascending.
func (p *Program) StateTables() []int {
	seen := map[int]bool{}
	for _, sp := range p.switches {
		for _, ts := range sp.States {
			seen[ts.Table] = true
		}
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// RuleHit is the live hit counter of one flow rule a program installed:
// the OF 1.3 per-entry packet counter, read back per retained Program so
// per-service rule activity is measured rather than inferred.
type RuleHit struct {
	Switch   int    `json:"switch"`
	Table    int    `json:"table"`
	Priority int    `json:"priority"`
	Cookie   string `json:"cookie"`
	Packets  uint64 `json:"packets"`
}

// GroupHit is the live execution counter of one group bucket a program
// installed (ofp_bucket_counter).
type GroupHit struct {
	Switch  int    `json:"switch"`
	Group   uint32 `json:"group"`
	Bucket  int    `json:"bucket"`
	Packets uint64 `json:"packets"`
}

// HitCounters reads the live rule-hit and group-bucket counters of every
// rule this program installed, via the lookup function (switch id -> live
// switch). Rules are correlated by (table, cookie) and groups by ID —
// exactly what an OFPMP_FLOW / OFPMP_GROUP multipart request returns in a
// real deployment. Rules whose live entry is gone (e.g. uninstalled) are
// skipped; zero-hit rules and buckets are included.
func (p *Program) HitCounters(lookup func(sw int) *Switch) ([]RuleHit, []GroupHit) {
	var rules []RuleHit
	var groups []GroupHit
	for _, id := range p.SwitchIDs() {
		sw := lookup(id)
		if sw == nil {
			continue
		}
		sp := p.switches[id]
		for _, fr := range sp.Flows {
			live := sw.FindFlow(fr.Table, fr.Entry.Cookie)
			if live == nil {
				continue
			}
			rules = append(rules, RuleHit{
				Switch: id, Table: fr.Table, Priority: live.Priority,
				Cookie: live.Cookie, Packets: live.Packets,
			})
		}
		for _, ts := range sp.States {
			for _, e := range ts.Entries {
				live := sw.FindState(ts.Table, e.Cookie)
				if live == nil {
					continue
				}
				rules = append(rules, RuleHit{
					Switch: id, Table: ts.Table, Priority: live.Priority,
					Cookie: live.Cookie, Packets: live.Packets,
				})
			}
		}
		for _, g := range sp.Groups {
			live := sw.GroupByID(g.ID)
			if live == nil {
				continue
			}
			for b := range live.Buckets {
				groups = append(groups, GroupHit{
					Switch: id, Group: g.ID, Bucket: b, Packets: live.Buckets[b].Packets,
				})
			}
		}
	}
	return rules, groups
}

// Bytes estimates the total hardware footprint of the program using the
// same per-entry model as Switch.ConfigBytes, so rule-space numbers can be
// read off the compile artifact.
func (p *Program) Bytes() int {
	n := 0
	for _, sp := range p.switches {
		n += sp.FlowBytes() + sp.StateBytes() + sp.GroupBytes()
	}
	return n
}
