package openflow

import "slices"

// This file implements the compiled dispatch matcher: an immutable
// decision-tree built from a flow table's entries at install time.
//
// Shape. The tree keys a single flat index on (EtherType, InPort) — every
// node holds the complete candidate set for packets arriving with that
// pair, port-wildcard entries merged in — and then splits each node on
// the full-width-exact tag field that discriminates the most entries (for
// SmartSouth-compiled tables that is the per-service state byte, e.g. the
// C field of the snapshot service). A per-EtherType any-port node serves
// packets on ports no exact entry names, and entries that wildcard the
// EtherType live on a table-level wildcard list. Duplicating the (few)
// port-wildcard entries into every named port's node trades a little
// install-time memory for one probe on the hot path: the common lookup is
// one node probe plus one value probe, no cross-list merge. Entries the
// node cannot place under a value key fall through to its residual linear
// list. Every list is kept in (priority desc, insertion asc) order, so
// the best of the per-list first matches — combined with better() — is
// exactly the entry a full priority-ordered scan would return. This is
// the same correctness argument the (EtherType, InPort) bucket index
// already relies on, with one more keyed level.
//
// Criteria already tested by the path to a list are stripped from its
// entries, and what remains is compiled to crit records — bit range,
// mask resolved, value pre-masked — so a probe is a handful of loads
// with no method dispatch. The compiled lists, their criteria and the
// nodes themselves are packed into per-matcher arenas: a lookup's
// pointer chases land in a few contiguous allocations instead of
// per-node slices scattered across the heap, which matters once a sweep
// touches hundreds of switches and their caches are cold.
//
// Lifecycle. The matcher is immutable once built; FlowTable mutators bump
// the table's version instead of touching it. Lookup uses the matcher
// only while its compiled-at version matches the table, so a mutated
// table falls back to the (slower, always-correct) bucket scan until the
// install path recompiles it via Switch.CompileDispatch.

// crit is one residual field criterion in compiled form: the field
// reduced to its bit range, the mask resolved (a zero FieldMatch mask
// means full width), and the value pre-masked. bits == 0 marks the
// absence of a criterion (no valid field is zero-width).
type crit struct {
	off  int32
	bits int32
	val  uint64
	mask uint64
}

func makeCrit(fm FieldMatch) crit {
	k := fm.mask()
	return crit{off: int32(fm.F.Off), bits: int32(fm.F.Bits), val: fm.Value & k, mask: k}
}

func (c *crit) ok(p *Packet) bool {
	return (Field{Off: int(c.off), Bits: int(c.bits)}).Load(p.Tag)&c.mask == c.val
}

// mEntry is one flow entry reduced to the criteria the matcher's tree
// has not already tested on the way to its list. The first residual
// criterion sits inline (c0) so the common zero- and one-criterion
// probes never chase the extra slice.
type mEntry struct {
	e      *FlowEntry
	inPort int32 // anyInPort when unconstrained or keyed by the path
	ttl    int16 // -1 when wildcarded
	c0     crit
	extra  []crit
}

func (me *mEntry) matches(p *Packet) bool {
	if me.inPort != anyInPort && int(me.inPort) != p.InPort {
		return false
	}
	if me.ttl >= 0 && int16(p.TTL) != me.ttl {
		return false
	}
	if me.c0.bits == 0 {
		return true
	}
	if !me.c0.ok(p) {
		return false
	}
	for i := range me.extra {
		if !me.extra[i].ok(p) {
			return false
		}
	}
	return true
}

// mList is a (priority desc, insertion asc)-ordered list of reduced
// entries; the first match is the best of the list.
type mList []mEntry

func (l mList) first(p *Packet) (*FlowEntry, int) {
	for i := range l {
		if l[i].matches(p) {
			return l[i].e, i + 1
		}
	}
	return nil, len(l)
}

// mNode is the field-test node of one (EtherType, InPort) bucket: when
// split, the entries carrying a full-width exact match on the field at
// (foff, fbits) are keyed by their match value — in the parallel
// keys/lists arrays when the value set is small (a linear scan of a few
// uint64s beats a map probe), in vals otherwise — and resid holds the
// rest. residTop is the highest priority on resid, so a keyed hit that
// outranks all of resid skips the residual scan outright. The field is
// stored as a bare bit range (not a Field, whose diagnostic name would
// double the node's hot cache line).
type mNode struct {
	split    bool
	foff     int32
	fbits    int32
	keys     []uint64 // small splits: keys[i] selects lists[i]
	lists    []mList
	resid    mList
	residTop int
	vals     map[uint64]mList // large splits
}

func (nd *mNode) lookup(p *Packet) (*FlowEntry, int) {
	if !nd.split {
		return nd.resid.first(p)
	}
	v := (Field{Off: int(nd.foff), Bits: int(nd.fbits)}).Load(p.Tag)
	var keyed mList
	if nd.keys != nil {
		for i, k := range nd.keys {
			if k == v {
				keyed = nd.lists[i]
				break
			}
		}
	} else {
		keyed = nd.vals[v]
	}
	best, probed := keyed.first(p)
	if best != nil && (len(nd.resid) == 0 || best.Priority > nd.residTop) {
		// Every residual entry is outranked; ties still scan, since an
		// equal-priority residual entry could win on insertion order.
		return best, probed
	}
	e, n := nd.resid.first(p)
	return better(best, e), probed + n
}

// ethNode groups one exact EtherType's nodes: one per named ingress
// port (parallel ports/pvec arrays, first-seen order) plus the any-port
// node serving ports no exact entry names. any is nil when the
// EtherType has no port-wildcard entries.
type ethNode struct {
	eth   int32
	ports []int32
	pvec  []*mNode
	any   *mNode
}

// smallEthMax is the EtherType-set size up to which the matcher finds
// the ethNode by scanning the slice. Compiled tables carry one service
// EtherType, maybe two; only synthetic many-service tables spill into
// the index map.
const smallEthMax = 16

// matcher is the compiled dispatch tree of one FlowTable.
type matcher struct {
	version uint64 // FlowTable.version this matcher was compiled at
	eths    []ethNode
	ethIdx  map[int32]int32 // index into eths; nil while the set is small
	wild    mList           // entries with a wildcarded EtherType
}

func (m *matcher) ethAt(e int32) *ethNode {
	if m.ethIdx == nil {
		for i := range m.eths {
			if m.eths[i].eth == e {
				return &m.eths[i]
			}
		}
		return nil
	}
	if i, ok := m.ethIdx[e]; ok {
		return &m.eths[i]
	}
	return nil
}

// lookup returns the best matching entry and the number of entries
// probed. It never allocates.
//
//simlint:hotpath
func (m *matcher) lookup(p *Packet) (*FlowEntry, int) {
	var best *FlowEntry
	probed := 0
	if en := m.ethAt(int32(p.EthType)); en != nil {
		nd := en.any
		q := int32(p.InPort)
		for i, pq := range en.ports {
			if pq == q {
				nd = en.pvec[i]
				break
			}
		}
		if nd != nil {
			best, probed = nd.lookup(p)
		}
	}
	if len(m.wild) > 0 {
		e, n := m.wild.first(p)
		probed += n
		best = better(best, e)
	}
	return best, probed
}

// fkey identifies a tag bit range; Name is diagnostic only, so two fields
// with equal offsets and widths match identically and share a key.
type fkey struct{ off, bits int }

// exactOn returns the index of the first full-width exact FieldMatch on
// k in fields, or -1. Masked or partial-width criteria cannot key a value
// map (two different packet values can both satisfy them).
func exactOn(fields []FieldMatch, k fkey) int {
	for i, fm := range fields {
		if (fkey{fm.F.Off, fm.F.Bits}) == k && (fm.Mask == 0 || fm.Mask == fm.F.Max()) {
			return i
		}
	}
	return -1
}

// reduce builds the mEntry of e for a list whose path already tested the
// EtherType (ethKeyed), the ingress port (portKeyed), and optionally one
// field criterion (dropField >= 0, an index into e.Match.Fields).
func reduce(e *FlowEntry, portKeyed bool, dropField int) mEntry {
	me := mEntry{e: e, inPort: anyInPort, ttl: -1}
	if !portKeyed && e.Match.InPort != AnyPort {
		me.inPort = int32(e.Match.InPort)
	}
	if e.Match.TTL != AnyTTL {
		me.ttl = int16(e.Match.TTL)
	}
	n := 0
	for i, fm := range e.Match.Fields {
		if i == dropField {
			continue
		}
		c := makeCrit(fm)
		if n == 0 {
			me.c0 = c
		} else {
			me.extra = append(me.extra, c)
		}
		n++
	}
	return me
}

// buildNode compiles one (EtherType, InPort) node. list is in
// (priority desc, insertion asc) order; iterating in order keeps every
// produced sub-list ordered too.
func buildNode(list []*FlowEntry, portKeyed bool) *mNode {
	nd := &mNode{}
	// Pick the full-width-exact field covering the most entries.
	counts := make(map[fkey]int)
	var bestKey fkey
	bestCnt := 0
	for _, e := range list {
		seen := make(map[fkey]bool, len(e.Match.Fields))
		for _, fm := range e.Match.Fields {
			k := fkey{fm.F.Off, fm.F.Bits}
			if seen[k] || (fm.Mask != 0 && fm.Mask != fm.F.Max()) {
				continue
			}
			seen[k] = true
			counts[k]++
			if c := counts[k]; c > bestCnt {
				bestCnt, bestKey = c, k
			}
		}
	}
	// A split only pays when it actually carves the bucket up: with fewer
	// than two keyed entries the value map is pure overhead over the list.
	if bestCnt >= 2 && len(list) >= 3 {
		nd.split = true
		nd.vals = make(map[uint64]mList)
		for _, e := range list {
			if i := exactOn(e.Match.Fields, bestKey); i >= 0 {
				fm := e.Match.Fields[i]
				if nd.fbits == 0 {
					nd.foff, nd.fbits = int32(fm.F.Off), int32(fm.F.Bits)
				}
				v := fm.Value & fm.F.Max()
				nd.vals[v] = append(nd.vals[v], reduce(e, portKeyed, i))
			} else {
				nd.resid = append(nd.resid, reduce(e, portKeyed, -1))
			}
		}
		for i := range nd.resid {
			if p := nd.resid[i].e.Priority; i == 0 || p > nd.residTop {
				nd.residTop = p
			}
		}
		// Small value sets dodge the map: a linear scan over a handful of
		// keys is cheaper than hashing, and most compiled nodes key on a
		// low-cardinality state byte.
		if len(nd.vals) <= smallSplitMax {
			// Sorted keys make the compiled layout (and hence the probe
			// order and scan telemetry) identical run to run instead of
			// inheriting map iteration order.
			keys := make([]uint64, 0, len(nd.vals))
			for v := range nd.vals {
				keys = append(keys, v)
			}
			slices.Sort(keys)
			nd.keys = keys
			nd.lists = make([]mList, 0, len(keys))
			for _, v := range keys {
				nd.lists = append(nd.lists, nd.vals[v])
			}
			nd.vals = nil
		}
		return nd
	}
	for _, e := range list {
		nd.resid = append(nd.resid, reduce(e, portKeyed, -1))
	}
	return nd
}

// smallSplitMax is the value-set size up to which a split node keeps its
// keys in a scanned array instead of a map.
const smallSplitMax = 12

// compileMatcher builds the dispatch tree from entries (already in
// match order) for a table at the given version.
func compileMatcher(entries []*FlowEntry, version uint64) *matcher {
	m := &matcher{version: version}
	// Partition by exact EtherType, in order, remembering each type's
	// named ingress ports; entries without an exact EtherType go to the
	// wildcard list directly.
	type ethBucket struct {
		all   []*FlowEntry // this EtherType's entries, in match order
		ports []int32      // distinct exact ingress ports, first-seen order
	}
	byEth := make(map[int32]*ethBucket)
	var order []int32
	for _, e := range entries {
		k, ok := keyOf(e.Match)
		if !ok {
			m.wild = append(m.wild, reduce(e, false, -1))
			continue
		}
		b := byEth[k.eth]
		if b == nil {
			b = &ethBucket{}
			byEth[k.eth] = b
			order = append(order, k.eth)
		}
		b.all = append(b.all, e)
		if k.in != anyInPort {
			known := false
			for _, p := range b.ports {
				if p == k.in {
					known = true
					break
				}
			}
			if !known {
				b.ports = append(b.ports, k.in)
			}
		}
	}
	// Each named port's node holds that port's entries plus the EtherType's
	// port-wildcard entries, filtered out of the ordered list so the merge
	// stays in match order; the any-port node holds the wildcard entries
	// alone, for packets on unnamed ports.
	for _, eth := range order {
		b := byEth[eth]
		en := ethNode{eth: eth}
		var anyList []*FlowEntry
		for _, e := range b.all {
			if k, _ := keyOf(e.Match); k.in == anyInPort {
				anyList = append(anyList, e)
			}
		}
		for _, port := range b.ports {
			var list []*FlowEntry
			for _, e := range b.all {
				if k, _ := keyOf(e.Match); k.in == port || k.in == anyInPort {
					list = append(list, e)
				}
			}
			en.ports = append(en.ports, port)
			en.pvec = append(en.pvec, buildNode(list, true))
		}
		if len(anyList) > 0 {
			en.any = buildNode(anyList, false)
		}
		m.eths = append(m.eths, en)
	}
	if len(m.eths) > smallEthMax {
		m.ethIdx = make(map[int32]int32, len(m.eths))
		for i := range m.eths {
			m.ethIdx[m.eths[i].eth] = int32(i)
		}
	}
	m.pack()
	return m
}

// pack copies the matcher's nodes, lists and residual criteria into
// shared arenas. Build-time allocation patterns scatter them across the
// heap; packing puts everything a lookup chases into three contiguous
// blocks. The arena appends must never regrow — the counts below are
// exact — or earlier repacked slices would alias a stale backing array.
func (m *matcher) pack() {
	var nodes []*mNode
	for i := range m.eths {
		en := &m.eths[i]
		nodes = append(nodes, en.pvec...)
		if en.any != nil {
			nodes = append(nodes, en.any)
		}
	}
	nE, nC, nK := 0, 0, 0
	count := func(l mList) {
		nE += len(l)
		for i := range l {
			nC += len(l[i].extra)
		}
	}
	count(m.wild)
	for _, nd := range nodes {
		count(nd.resid)
		for _, l := range nd.lists {
			count(l)
		}
		//simlint:ignore determinism: pure size aggregation; addition is commutative
		for _, l := range nd.vals {
			count(l)
		}
		nK += len(nd.keys)
	}
	ents := make(mList, 0, nE)
	crits := make([]crit, 0, nC)
	keyArena := make([]uint64, 0, nK)
	listArena := make([]mList, 0, nK)
	re := func(l mList) mList {
		if len(l) == 0 {
			return nil
		}
		s := len(ents)
		ents = append(ents, l...)
		out := ents[s:len(ents):len(ents)]
		for i := range out {
			if n := len(out[i].extra); n > 0 {
				cs := len(crits)
				crits = append(crits, out[i].extra...)
				out[i].extra = crits[cs:len(crits):len(crits)]
			}
		}
		return out
	}
	m.wild = re(m.wild)
	arena := make([]mNode, len(nodes))
	for i, nd := range nodes {
		arena[i] = *nd
		a := &arena[i]
		a.resid = re(a.resid)
		for j := range a.lists {
			a.lists[j] = re(a.lists[j])
		}
		//simlint:ignore determinism: rewrites each keyed list in place; arena packing order affects locality only, never a match result
		for v, l := range a.vals {
			a.vals[v] = re(l)
		}
		if n := len(a.keys); n > 0 {
			s := len(keyArena)
			keyArena = append(keyArena, a.keys...)
			a.keys = keyArena[s:len(keyArena):len(keyArena)]
			s = len(listArena)
			listArena = append(listArena, a.lists...)
			a.lists = listArena[s:len(listArena):len(listArena)]
		}
	}
	// Point the index at the packed copies, in the same walk order that
	// filled nodes.
	idx := 0
	for i := range m.eths {
		en := &m.eths[i]
		for j := range en.pvec {
			en.pvec[j] = &arena[idx]
			idx++
		}
		if en.any != nil {
			en.any = &arena[idx]
			idx++
		}
	}
}

// Compile (re)builds the table's compiled matcher from the current
// entries. The matcher is immutable and versioned: any later mutation
// nils the cached pointer and sends Lookup back to the fallback scan
// until the next Compile. Install is an off-hot-path phase, so compile
// cost never taxes packet time.
func (t *FlowTable) Compile() {
	t.m = compileMatcher(t.entries, t.version)
	t.cur = t.m
}

// Compiled reports whether Lookup is currently served by the compiled
// matcher (a matcher exists and no mutation has outdated it).
func (t *FlowTable) Compiled() bool {
	return t.cur != nil
}
