package openflow

import (
	"fmt"
	"testing"
)

func BenchmarkFieldLoadStore(b *testing.B) {
	tag := make([]byte, 64)
	f := Field{Off: 137, Bits: 13}
	b.Run("store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Store(tag, uint64(i))
		}
	})
	b.Run("load", func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += f.Load(tag)
		}
		_ = sink
	})
}

func BenchmarkMatch(b *testing.B) {
	p := NewPacket(0x88B5, 32)
	p.InPort = 3
	f1 := Field{Off: 0, Bits: 8}
	f2 := Field{Off: 100, Bits: 5}
	p.Store(f1, 17)
	p.Store(f2, 9)
	m := MatchEth(0x88B5).WithInPort(3).WithField(f1, 17).WithField(f2, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Matches(p) {
			b.Fatal("must match")
		}
	}
}

// BenchmarkTableLookup measures lookup cost against table size — relevant
// because the SmartSouth compiler installs O(Δ²) rules per node.
func BenchmarkTableLookup(b *testing.B) {
	f := Field{Off: 0, Bits: 16}
	for _, size := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			t := &FlowTable{}
			for i := 0; i < size; i++ {
				t.Add(&FlowEntry{Priority: i, Match: MatchAll().WithField(f, uint64(i)), Goto: NoGoto})
			}
			p := NewPacket(1, 4)
			p.Store(f, uint64(size-1)) // highest priority: first checked
			worst := NewPacket(1, 4)
			worst.Store(f, 0) // lowest priority: last checked
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if t.Lookup(p) == nil || t.Lookup(worst) == nil {
					b.Fatal("lookup failed")
				}
			}
		})
	}
}

// BenchmarkTableLookupIndexed measures lookup with exact-EtherType rules —
// the shape every SmartSouth-compiled rule has — against how many services
// share the table. The table is compiled, as every installed table now is:
// the matcher keys the probe by (EtherType, InPort) and then by the
// discriminating field value, so the worst-case in-bucket scan collapses
// to a single candidate and cost stays flat as services multiply. The
// /fallback arm measures the same worst case on an uncompiled table (the
// bucket-scan path a mutated table drops back to).
func BenchmarkTableLookupIndexed(b *testing.B) {
	f := Field{Off: 0, Bits: 16}
	const rulesPerService = 16
	build := func(services int) *FlowTable {
		t := &FlowTable{}
		for s := 0; s < services; s++ {
			eth := uint16(0x0900 + s)
			for i := 0; i < rulesPerService; i++ {
				t.Add(&FlowEntry{Priority: i,
					Match: MatchEth(eth).WithInPort(1).WithField(f, uint64(i)),
					Goto:  NoGoto})
			}
		}
		return t
	}
	// Worst case within the bucket: the lowest-priority rule.
	probe := func(b *testing.B, t *FlowTable) {
		p := NewPacket(0x0900, 4)
		p.InPort = 1
		p.Store(f, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if t.Lookup(p) == nil {
				b.Fatal("lookup failed")
			}
		}
	}
	for _, services := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("services=%d", services), func(b *testing.B) {
			t := build(services)
			t.Compile()
			probe(b, t)
		})
	}
	b.Run("fallback/services=64", func(b *testing.B) {
		probe(b, build(64))
	})
}

// BenchmarkPipeline runs a 3-table pipeline with a fast-failover group,
// approximating one SmartSouth hop.
func BenchmarkPipeline(b *testing.B) {
	sw := NewSwitch(1, 8)
	fC := Field{Off: 0, Bits: 4}
	sw.AddGroup(&GroupEntry{ID: 1, Type: GroupFF, Buckets: []Bucket{
		{WatchPort: 3, Actions: []Action{SetField{F: fC, Value: 3}, Output{Port: 3}}},
		{WatchPort: WatchNone, Actions: []Action{Output{Port: 1}}},
	}})
	sw.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchEth(0x8801), Goto: 1, Cookie: "t0"})
	sw.AddFlow(1, &FlowEntry{Priority: 1, Match: MatchAll().WithInPort(2), Goto: 2, Cookie: "t1",
		Actions: []Action{SetField{F: fC, Value: 1}}})
	sw.AddFlow(2, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto, Cookie: "t2",
		Actions: []Action{Group{ID: 1}}})
	pkt := NewPacket(0x8801, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sw.Receive(pkt, 2)
		if len(res.Emissions) != 1 {
			b.Fatal("bad pipeline")
		}
	}
}

// BenchmarkSmartCounterGroup measures the fetch-and-increment primitive.
func BenchmarkSmartCounterGroup(b *testing.B) {
	sw := NewSwitch(1, 2)
	f := Field{Off: 0, Bits: 3}
	buckets := make([]Bucket, 8)
	for j := range buckets {
		buckets[j] = Bucket{Actions: []Action{SetField{F: f, Value: uint64(j)}}}
	}
	sw.AddGroup(&GroupEntry{ID: 1, Type: GroupSelectRR, Buckets: buckets})
	sw.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto,
		Actions: []Action{Group{ID: 1}}, Cookie: "ctr"})
	pkt := NewPacket(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Receive(pkt, 1)
	}
}

func BenchmarkPacketClone(b *testing.B) {
	p := NewPacket(1, 64)
	for i := 0; i < 32; i++ {
		p.PushLabel(uint32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Clone()
	}
}
