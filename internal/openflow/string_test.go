package openflow

import (
	"strings"
	"testing"
)

func TestActionStrings(t *testing.T) {
	f := Field{Name: "x", Off: 2, Bits: 3}
	cases := []struct {
		a    Action
		want string
	}{
		{Output{Port: 3}, "output:3"},
		{Output{Port: PortController}, "output:controller"},
		{Output{Port: PortSelf}, "output:self"},
		{Output{Port: PortInPort}, "output:in_port"},
		{Output{Port: PortDrop}, "output:drop"},
		{SetField{F: f, Value: 5}, "set(x[2:5]:=5)"},
		{PushLabel{Value: 0xAB}, "push(0xab)"},
		{PopLabel{}, "pop"},
		{DecTTL{}, "dec_ttl"},
		{Group{ID: 7}, "group:7"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("%T: %q, want %q", c.a, got, c.want)
		}
	}
}

func TestMatchAndFieldStrings(t *testing.T) {
	f := Field{Name: "gid", Off: 0, Bits: 16}
	anon := Field{Off: 3, Bits: 2}
	if got := MatchAll().String(); got != "*" {
		t.Errorf("wildcard match: %q", got)
	}
	m := MatchEth(0x8801).WithInPort(2).WithTTL(9).WithField(f, 4).WithMasked(anon, 1, 0b01)
	s := m.String()
	for _, want := range []string{"in=2", "eth=0x8801", "ttl=9", "gid[0:16]=4", "tag[3:5]&0x1=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("match string %q missing %q", s, want)
		}
	}
	if !strings.Contains(f.String(), "gid[0:16]") || !strings.Contains(anon.String(), "tag[3:5]") {
		t.Error("field strings")
	}
	if (Field{}).Valid() || !f.Valid() {
		t.Error("Valid()")
	}
	if (Field{Off: 0, Bits: 64}).Max() != ^uint64(0) {
		t.Error("64-bit max")
	}
}

func TestEntryGroupTypePacketStrings(t *testing.T) {
	e := &FlowEntry{Priority: 5, Match: MatchEth(1), Goto: 3, Cookie: "abc"}
	if s := e.String(); !strings.Contains(s, "prio=5") || !strings.Contains(s, "abc") {
		t.Errorf("entry string %q", s)
	}
	for typ, want := range map[GroupType]string{
		GroupAll: "all", GroupIndirect: "indirect", GroupFF: "ff", GroupSelectRR: "select-rr",
	} {
		if typ.String() != want {
			t.Errorf("group type %d: %q", typ, typ.String())
		}
	}
	p := NewPacket(0x8801, 4)
	if s := p.String(); !strings.Contains(s, "eth=0x8801") {
		t.Errorf("packet string %q", s)
	}
}

func TestTracingProducesReadableLog(t *testing.T) {
	sw := NewSwitch(1, 2)
	sw.Tracing = true
	sw.AddGroup(&GroupEntry{ID: 1, Type: GroupFF, Buckets: []Bucket{
		{WatchPort: 1, Actions: []Action{Output{Port: 1}}},
	}})
	sw.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: 1, Cookie: "hop1",
		Actions: []Action{Group{ID: 1}}})
	res := sw.Receive(NewPacket(1, 1), 2)
	joined := strings.Join(res.Trace, "\n")
	for _, want := range []string{`hit "hop1"`, "group 1 bucket 0", "table 1: absent"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q:\n%s", want, joined)
		}
	}
	// Missing group and depth-limit paths also trace.
	sw2 := NewSwitch(2, 1)
	sw2.Tracing = true
	sw2.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto, Cookie: "g",
		Actions: []Action{Group{ID: 99}}})
	res2 := sw2.Receive(NewPacket(1, 1), 1)
	if !strings.Contains(strings.Join(res2.Trace, "\n"), "not installed") {
		t.Error("missing-group trace")
	}
}

func TestSetCounterAndGroupBytes(t *testing.T) {
	g := &GroupEntry{ID: 1, Type: GroupSelectRR, Buckets: []Bucket{
		{Actions: []Action{SetField{F: Field{Off: 0, Bits: 2}, Value: 0}}},
		{Actions: []Action{SetField{F: Field{Off: 0, Bits: 2}, Value: 1}}},
	}}
	g.SetCounter(5)
	if g.CounterValue() != 1 { // 5 mod 2
		t.Errorf("counter = %d", g.CounterValue())
	}
	if got, want := g.Bytes(), 16+2*(16+8); got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
	empty := &GroupEntry{ID: 2}
	empty.SetCounter(3) // no buckets: must not panic
}

func TestTableIDsAndGroupsAccessors(t *testing.T) {
	sw := NewSwitch(1, 2)
	sw.AddFlow(5, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto})
	sw.AddFlow(2, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto})
	_ = sw.Table(9) // created but empty: must not appear
	ids := sw.TableIDs()
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 5 {
		t.Errorf("TableIDs = %v", ids)
	}
	sw.AddGroup(&GroupEntry{ID: 30})
	sw.AddGroup(&GroupEntry{ID: 10})
	gs := sw.Groups()
	if len(gs) != 2 || gs[0].ID != 10 || gs[1].ID != 30 {
		t.Errorf("Groups order: %v %v", gs[0].ID, gs[1].ID)
	}
	if es := sw.Table(2).Entries(); len(es) != 1 {
		t.Errorf("Entries = %d", len(es))
	}
}

func TestFieldMatchMaskedString(t *testing.T) {
	f := Field{Off: 0, Bits: 8}
	fm := FieldMatch{F: f, Value: 0xF3, Mask: 0x0F}
	if s := fm.String(); !strings.Contains(s, "&0xf=3") {
		t.Errorf("masked field match string: %q", s)
	}
}
