package openflow

import (
	"fmt"
	"sort"
	"strings"
)

// AnyState is the wildcard state condition: the entry matches regardless
// of the flow's current state (used for service rules that only look at
// packet fields, like the anycast receiver exit).
//
// A state table is the stateful-SDN primitive of OpenState / the Open
// Packet Processor line of work: per-flow-key state kept *in the switch*,
// consulted and updated at wire speed by EFSM transition entries. An
// entry matches on (state, packet fields) and executes (actions,
// set-state, goto) — no controller involvement per packet. SmartSouth's
// stateful backend lowers Algorithm 1 onto this primitive instead of
// carrying the DFS state in packet tag bits.

// StateEntry is one EFSM transition: match = (state condition, packet
// match), action = (action list, optional state write, goto).
type StateEntry struct {
	Priority int
	// AnyState makes the entry match every state; State/StateMask are
	// ignored.
	AnyState bool
	// State is the required state value. When StateMask is non-zero the
	// comparison is masked (cur & StateMask == State); a zero mask means
	// exact equality.
	State     uint64
	StateMask uint64
	// Match is the packet-field half of the transition's left side.
	Match Match
	// Actions run when the transition fires, with the same apply-actions
	// semantics as flow entries.
	Actions []Action
	// SetState, when non-nil, writes the flow's next state. Nil keeps the
	// current state (a read-only transition).
	SetState *uint64
	// Goto continues the pipeline in a later table (NoGoto stops).
	Goto   int
	Cookie string
	// Packets counts matches (ofp_flow_stats for the transition entry).
	Packets uint64

	seq int
}

// EntryBytes models the transition's hardware footprint with the same
// per-entry scheme as FlowEntry.EntryBytes, plus the state condition and
// the state write (8 bytes each, like one extra criterion and one extra
// action).
func (e *StateEntry) EntryBytes() int {
	n := 56 + 8*e.Match.NumCriteria() + 8*len(e.Actions) + 8
	if e.SetState != nil {
		n += 8
	}
	return n
}

// StateCond renders the state half of the match for traces and dumps.
func (e *StateEntry) StateCond() string {
	switch {
	case e.AnyState:
		return "state=*"
	case e.StateMask != 0:
		return fmt.Sprintf("state&%#x=%d", e.StateMask, e.State)
	}
	return fmt.Sprintf("state=%d", e.State)
}

func (e *StateEntry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s,%s", e.StateCond(), e.Match.String())
	if e.SetState != nil {
		fmt.Fprintf(&b, " ->state=%d", *e.SetState)
	}
	return b.String()
}

// MatchesState reports whether the entry's state condition accepts cur.
// Exported for the static analyzer, which mirrors Lookup symbolically.
func (e *StateEntry) MatchesState(cur uint64) bool { return e.matchesState(cur) }

// matchesState reports whether the entry's state condition accepts cur.
func (e *StateEntry) matchesState(cur uint64) bool {
	if e.AnyState {
		return true
	}
	if e.StateMask != 0 {
		return cur&e.StateMask == e.State
	}
	return cur == e.State
}

// StateTable is one stateful stage: a per-flow state store plus the
// transition entries that read and write it. The flow key is the
// concatenation of the Key fields read from the packet; an empty Key
// collapses the store to a single global state per (switch, table) —
// sufficient for the traversal services, whose state is per-node, not
// per-flow. Unknown keys read as state 0 ("default state" in OpenState
// terms), so the zero state must always mean "fresh".
type StateTable struct {
	ID  int
	Key []Field

	entries []*StateEntry
	state   map[uint64]uint64
	seq     int

	// Transitions counts committed state writes; lookups/scanned mirror
	// the FlowTable scan statistics for the telemetry layer.
	Transitions      uint64
	lookups, scanned uint64
}

// NewStateTable returns an empty state table with the given flow key.
func NewStateTable(id int, key []Field) *StateTable {
	return &StateTable{ID: id, Key: key, state: make(map[uint64]uint64)}
}

// Add inserts a transition entry, keeping entries sorted by descending
// priority (insertion order breaks ties, like FlowTable.Add).
func (t *StateTable) Add(e *StateEntry) {
	e.seq = t.seq
	t.seq++
	i := sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].Priority < e.Priority
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
}

// FlowKey computes the packet's flow key under this table's Key fields.
func (t *StateTable) FlowKey(p *Packet) uint64 {
	var key uint64
	for _, f := range t.Key {
		key = key<<uint(f.Bits) | p.Load(f)
	}
	return key
}

// State returns the current state for a flow key (0 when never written).
func (t *StateTable) State(key uint64) uint64 { return t.state[key] }

// Lookup returns the highest-priority transition whose state condition
// accepts the current state of the packet's flow and whose packet match
// accepts the packet, or nil on miss.
func (t *StateTable) Lookup(key uint64, p *Packet) *StateEntry {
	cur := t.state[key]
	t.lookups++
	for _, e := range t.entries {
		t.scanned++
		if e.matchesState(cur) && e.Match.Matches(p) {
			return e
		}
	}
	return nil
}

// Commit applies the transition's state write for the flow key, if any.
func (t *StateTable) Commit(key uint64, e *StateEntry) {
	if e.SetState == nil {
		return
	}
	t.state[key] = *e.SetState
	t.Transitions++
}

// ResetState clears the state store (OpenState state-mod DELETE of every
// key), leaving the transition entries installed. Services whose state
// encodes one traversal (the DFS templates) reset before re-triggering.
func (t *StateTable) ResetState() {
	for k := range t.state {
		delete(t.state, k)
	}
}

// ByCookie returns the installed transition with the given cookie, or nil.
func (t *StateTable) ByCookie(cookie string) *StateEntry {
	for _, e := range t.entries {
		if e.Cookie == cookie {
			return e
		}
	}
	return nil
}

// Entries returns the transitions in match order (priority descending).
func (t *StateTable) Entries() []*StateEntry { return t.entries }

// Len returns the number of installed transitions.
func (t *StateTable) Len() int { return len(t.entries) }

// Clear removes every transition and the whole state store.
func (t *StateTable) Clear() int {
	n := len(t.entries)
	t.entries = nil
	t.ResetState()
	return n
}

// Bytes sums the modelled hardware footprint: every transition entry plus
// 16 bytes per live state-store record.
func (t *StateTable) Bytes() int {
	n := 0
	for _, e := range t.entries {
		n += e.EntryBytes()
	}
	return n + 16*len(t.state)
}

// ScanStats returns cumulative lookup and entries-probed counts.
func (t *StateTable) ScanStats() (lookups, scanned uint64) {
	return t.lookups, t.scanned
}
