package openflow

import "fmt"

// Action is one OpenFlow action. Actions run in list order ("apply
// actions" semantics): an Output action emits a copy of the packet *as it
// is at that point*, so later SetFields do not retroactively change what
// was already sent. The copy is lazy — mutating actions call
// ExecContext.materialize before touching the packet, which snapshots a
// still-deferred emission — so an Output with no mutation after it (the
// overwhelmingly common rule shape) never copies at all.
type Action interface {
	// Apply executes the action against the packet within a pipeline
	// execution. Output-like actions record emissions on the context.
	Apply(x *ExecContext, p *Packet)
	String() string
}

// applyAction dispatches one action. The type switch devirtualizes the
// compiled-program action set — a matched concrete type turns the
// interface call into a direct, inlinable one — which the per-hop action
// loops (flow entries and group buckets) hit a few million times per
// sweep. Unlisted action types fall through to the interface call.
func applyAction(x *ExecContext, a Action, p *Packet) {
	switch t := a.(type) {
	case Output:
		t.Apply(x, p)
	case Group:
		t.Apply(x, p)
	case PushLabel:
		t.Apply(x, p)
	case SetField:
		t.Apply(x, p)
	case PopLabel:
		t.Apply(x, p)
	case DecTTL:
		t.Apply(x, p)
	default:
		//simlint:ignore hotpath: fallback for action types outside the compiled set; compiled programs always hit a devirtualized case above
		a.Apply(x, p)
	}
}

// Output emits the packet on a port. Physical ports are 1..NumPorts;
// PortController, PortSelf, PortInPort and PortDrop are reserved.
type Output struct{ Port int }

func (a Output) Apply(x *ExecContext, p *Packet) {
	port := a.Port
	if port == PortInPort {
		port = p.InPort
	}
	if port == PortDrop {
		return
	}
	x.emit(port, p)
}

func (a Output) String() string {
	switch a.Port {
	case PortController:
		return "output:controller"
	case PortSelf:
		return "output:self"
	case PortInPort:
		return "output:in_port"
	case PortDrop:
		return "output:drop"
	}
	return fmt.Sprintf("output:%d", a.Port)
}

// SetField writes a constant into a tag field (OFPAT_SET_FIELD). OpenFlow
// set-field can only write immediates — there is no copy-field in 1.3 —
// which is why the SmartSouth compiler enumerates one rule per in_port when
// it needs to record the ingress port into the tag.
type SetField struct {
	F     Field
	Value uint64
}

func (a SetField) Apply(x *ExecContext, p *Packet) { x.materialize(); p.Store(a.F, a.Value) }
func (a SetField) String() string                  { return fmt.Sprintf("set(%s:=%d)", a.F, a.Value) }

// PushLabel pushes a constant label onto the packet's label stack
// (push-MPLS followed by set-field on the label, collapsed into one
// action). The snapshot service records the traversal with it.
type PushLabel struct{ Value uint32 }

func (a PushLabel) Apply(x *ExecContext, p *Packet) { x.materialize(); p.PushLabel(a.Value) }
func (a PushLabel) String() string                  { return fmt.Sprintf("push(%#x)", a.Value) }

// PopLabel pops the top label (pop-MPLS). Popping an empty stack is a
// no-op, like popping a packet with no MPLS shim.
type PopLabel struct{}

func (a PopLabel) Apply(x *ExecContext, p *Packet) { x.materialize(); p.PopLabel() }
func (a PopLabel) String() string                  { return "pop" }

// DecTTL decrements the packet TTL (OFPAT_DEC_NW_TTL). At TTL zero it is a
// no-op; rules are expected to match TTL=0 explicitly and handle expiry,
// as the TTL blackhole detector does.
type DecTTL struct{}

func (a DecTTL) Apply(x *ExecContext, p *Packet) {
	if p.TTL > 0 {
		x.materialize()
		p.TTL--
	}
}
func (a DecTTL) String() string { return "dec_ttl" }

// Group hands the packet to a group-table entry (OFPAT_GROUP).
type Group struct{ ID uint32 }

func (a Group) Apply(x *ExecContext, p *Packet) { x.sw.applyGroup(x, a.ID, p) }
func (a Group) String() string                  { return fmt.Sprintf("group:%d", a.ID) }
