package openflow

import (
	"fmt"
	"sort"
	"testing"
)

func entry(prio int, cookie string) *FlowEntry {
	return &FlowEntry{Priority: prio, Cookie: cookie, Goto: NoGoto}
}

func cookies(t *FlowTable) []string {
	var out []string
	t.Each(func(e *FlowEntry) bool {
		out = append(out, e.Cookie)
		return true
	})
	return out
}

func TestAddKeepsDescendingPriorityAndInsertionOrder(t *testing.T) {
	ft := &FlowTable{ID: 0}
	ft.Add(entry(10, "a"))
	ft.Add(entry(30, "b"))
	ft.Add(entry(20, "c"))
	ft.Add(entry(30, "d")) // same priority as b: must sort after it
	ft.Add(entry(5, "e"))

	want := []string{"b", "d", "c", "a", "e"}
	got := cookies(ft)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}

	// First-add-wins on priority ties: a lookup that matches both b and d
	// must return b.
	p := &Packet{}
	if e := ft.Lookup(p); e == nil || e.Cookie != "b" {
		t.Fatalf("Lookup = %v, want cookie b", e)
	}
}

func TestEntriesReturnsDefensiveCopy(t *testing.T) {
	ft := &FlowTable{ID: 0}
	ft.Add(entry(1, "x"))
	ft.Add(entry(2, "y"))

	es := ft.Entries()
	es[0], es[1] = es[1], es[0] // caller scrambles its copy

	if got := cookies(ft); got[0] != "y" || got[1] != "x" {
		t.Fatalf("table order corrupted by caller mutation: %v", got)
	}
}

func TestRemoveByCookiePrefixEdgeCases(t *testing.T) {
	fill := func() *FlowTable {
		ft := &FlowTable{ID: 0}
		ft.Add(entry(3, "svc/a"))
		ft.Add(entry(2, "svc/b"))
		ft.Add(entry(1, "other"))
		return ft
	}

	ft := fill()
	if n := ft.RemoveByCookiePrefix("svc/"); n != 2 || ft.Len() != 1 {
		t.Fatalf("RemoveByCookiePrefix(svc/) = %d, len %d; want 2, 1", n, ft.Len())
	}

	// Empty prefix matches every cookie (delete-all).
	ft = fill()
	if n := ft.RemoveByCookiePrefix(""); n != 3 || ft.Len() != 0 {
		t.Fatalf("RemoveByCookiePrefix(\"\") = %d, len %d; want 3, 0", n, ft.Len())
	}

	// Prefix longer than any cookie matches nothing.
	ft = fill()
	if n := ft.RemoveByCookiePrefix("svc/a/deeper/than/any"); n != 0 || ft.Len() != 3 {
		t.Fatalf("long prefix removed %d entries, want 0", n)
	}

	// Removing from an empty table is a no-op.
	ft = &FlowTable{ID: 0}
	if n := ft.RemoveByCookiePrefix("svc/"); n != 0 {
		t.Fatalf("remove on empty table = %d, want 0", n)
	}
}

func TestRemoveIf(t *testing.T) {
	ft := &FlowTable{ID: 0}
	for i := 0; i < 6; i++ {
		ft.Add(entry(i, fmt.Sprintf("e%d", i)))
	}
	n := ft.RemoveIf(func(e *FlowEntry) bool { return e.Priority%2 == 0 })
	if n != 3 || ft.Len() != 3 {
		t.Fatalf("RemoveIf = %d, len %d; want 3, 3", n, ft.Len())
	}
	// Survivors keep descending priority order.
	got := cookies(ft)
	want := []string{"e5", "e3", "e1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("order after RemoveIf = %v, want %v", got, want)
	}
	if n := ft.RemoveIf(func(*FlowEntry) bool { return false }); n != 0 || ft.Len() != 3 {
		t.Fatalf("no-op RemoveIf changed the table")
	}
}

func TestClearThenReAdd(t *testing.T) {
	ft := &FlowTable{ID: 0}
	ft.Add(entry(1, "a"))
	ft.Add(entry(2, "b"))
	if n := ft.Clear(); n != 2 || ft.Len() != 0 {
		t.Fatalf("Clear = %d, len %d; want 2, 0", n, ft.Len())
	}
	if n := ft.Clear(); n != 0 {
		t.Fatalf("second Clear = %d, want 0", n)
	}
	ft.Add(entry(5, "c"))
	ft.Add(entry(9, "d"))
	if got := cookies(ft); fmt.Sprint(got) != fmt.Sprint([]string{"d", "c"}) {
		t.Fatalf("re-add after Clear gave order %v", got)
	}
}

func TestRemoveGroupRangeEdgeCases(t *testing.T) {
	sw := NewSwitch(0, 2)
	for _, id := range []uint32{10, 20, 30} {
		sw.AddGroup(&GroupEntry{ID: id, Type: GroupIndirect, Buckets: []Bucket{{}}})
	}

	// Empty range [lo, lo) removes nothing.
	if n := sw.RemoveGroupRange(20, 20); n != 0 || sw.GroupCount() != 3 {
		t.Fatalf("empty range removed %d groups", n)
	}
	// Inverted range removes nothing.
	if n := sw.RemoveGroupRange(30, 10); n != 0 || sw.GroupCount() != 3 {
		t.Fatalf("inverted range removed %d groups", n)
	}
	// Half-open: hi is excluded.
	if n := sw.RemoveGroupRange(10, 30); n != 2 || sw.GroupCount() != 1 {
		t.Fatalf("RemoveGroupRange(10,30) = %d, count %d; want 2, 1", n, sw.GroupCount())
	}
	if sw.GroupByID(30) == nil {
		t.Fatalf("group 30 should have survived [10,30)")
	}
	// Range over an empty table is a no-op.
	sw.RemoveGroupRange(0, ^uint32(0))
	if n := sw.RemoveGroupRange(0, ^uint32(0)); n != 0 {
		t.Fatalf("remove on empty group table = %d, want 0", n)
	}
}

// resortAdd is the pre-optimization Add: append then re-sort the whole
// table. Kept here so the benchmark records the before/after.
func resortAdd(t *FlowTable, e *FlowEntry) {
	t.entries = append(t.entries, e)
	sort.SliceStable(t.entries, func(i, j int) bool {
		return t.entries[i].Priority > t.entries[j].Priority
	})
}

func BenchmarkFlowTableInstall(b *testing.B) {
	const k = 2000
	prios := make([]int, k)
	for i := range prios {
		prios[i] = (i * 7919) % 1000 // deterministic scatter
	}
	b.Run("binary-insert", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			ft := &FlowTable{ID: 0}
			for _, p := range prios {
				ft.Add(&FlowEntry{Priority: p, Goto: NoGoto})
			}
		}
	})
	b.Run("resort", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			ft := &FlowTable{ID: 0}
			for _, p := range prios {
				resortAdd(ft, &FlowEntry{Priority: p, Goto: NoGoto})
			}
		}
	})
}
