package openflow

import "fmt"

// GroupType enumerates the OpenFlow 1.3 group types this model supports.
type GroupType int

const (
	// GroupAll executes every bucket on its own copy of the packet
	// (OFPGT_ALL).
	GroupAll GroupType = iota
	// GroupIndirect executes its single bucket (OFPGT_INDIRECT).
	GroupIndirect
	// GroupFF executes the first bucket whose watch port is live
	// (OFPGT_FF, fast failover). This is what makes SmartSouth robust to
	// link failures without any controller involvement.
	GroupFF
	// GroupSelectRR is a SELECT group with the optional round-robin
	// bucket selection policy of OpenFlow 1.3. Each execution advances a
	// pointer held *in the switch*, which is the entire basis of the
	// paper's smart counters: bucket k writes the constant k into a tag
	// field, so applying the group is a fetch-and-increment whose result
	// the rest of the pipeline can match on.
	GroupSelectRR
)

func (t GroupType) String() string {
	switch t {
	case GroupAll:
		return "all"
	case GroupIndirect:
		return "indirect"
	case GroupFF:
		return "ff"
	case GroupSelectRR:
		return "select-rr"
	}
	return fmt.Sprintf("grouptype(%d)", int(t))
}

// WatchNone marks a bucket that is always considered live.
const WatchNone = 0

// Bucket is one action bucket of a group. For fast-failover groups,
// WatchPort names the physical port whose liveness gates the bucket;
// WatchNone makes the bucket unconditionally live (used for terminal
// "give up / go to parent" buckets).
type Bucket struct {
	WatchPort int
	Actions   []Action

	// Packets counts executions of this bucket (ofp_bucket_counter). The
	// controller can read it with a group-stats multipart request; for a
	// round-robin SELECT group the bucket counters reveal the smart
	// counter's value out of band.
	Packets uint64
}

// GroupEntry is one group-table entry.
type GroupEntry struct {
	ID      uint32
	Type    GroupType
	Buckets []Bucket

	// rr is the round-robin pointer of a GroupSelectRR group — switch
	// state that survives between packets. It is the smart counter value.
	rr int

	// ffLive caches 1+index of the first live bucket of a GroupFF group,
	// so the steady-state failover path skips the liveness scan. 0 means
	// unknown; Switch.SetPortLive invalidates every group's cache on any
	// liveness flip (failovers are rare, packets are not).
	ffLive int16
}

// CounterValue exposes the round-robin pointer for tests and diagnostics.
// The data plane itself can only learn it through bucket side effects.
func (g *GroupEntry) CounterValue() int { return g.rr }

// SetCounter overwrites the round-robin pointer. The controller can do
// this out of band (a group-mod resets bucket state); tests use it too.
func (g *GroupEntry) SetCounter(v int) {
	if len(g.Buckets) > 0 {
		g.rr = v % len(g.Buckets)
	}
}

// Bytes estimates the hardware footprint of the group entry, mirroring the
// ofp_group_mod wire format: 16-byte base, 16 bytes per bucket header plus
// 8 bytes per action.
func (g *GroupEntry) Bytes() int {
	n := 16
	for _, b := range g.Buckets {
		n += 16 + 8*len(b.Actions)
	}
	return n
}

// Clone returns a copy of the group entry with fresh runtime state: bucket
// packet counters and the round-robin pointer are reset. Programs hand
// clones to switches so two deployments never share counter state.
func (g *GroupEntry) Clone() *GroupEntry {
	ng := &GroupEntry{ID: g.ID, Type: g.Type, Buckets: make([]Bucket, len(g.Buckets))}
	for i, b := range g.Buckets {
		ng.Buckets[i] = Bucket{WatchPort: b.WatchPort, Actions: b.Actions}
	}
	return ng
}

// apply executes the group against the packet per its type semantics.
func (g *GroupEntry) apply(x *ExecContext, p *Packet) {
	switch g.Type {
	case GroupAll:
		for i := range g.Buckets {
			c := p.ClonePooled()
			if x.tracing {
				x.trace("group %d bucket %d (all)", g.ID, i)
			}
			x.step(g, i)
			g.Buckets[i].Packets++
			for _, a := range g.Buckets[i].Actions {
				applyAction(x, a, c)
			}
			if x.pend > 0 && x.res.Emissions[x.pend-1].Pkt == c {
				// The bucket clone's final emission is still deferred:
				// hand the clone to the emission instead of snapshotting
				// and releasing it.
				x.pend = 0
			} else {
				c.Release()
			}
		}
	case GroupIndirect:
		if len(g.Buckets) > 0 {
			if x.tracing {
				x.trace("group %d bucket 0 (indirect)", g.ID)
			}
			x.step(g, 0)
			g.Buckets[0].Packets++
			for _, a := range g.Buckets[0].Actions {
				applyAction(x, a, p)
			}
		}
	case GroupFF:
		i := int(g.ffLive) - 1
		if i < 0 {
			for j := range g.Buckets {
				if w := g.Buckets[j].WatchPort; w == WatchNone || x.sw.PortLive(w) {
					i = j
					g.ffLive = int16(j + 1)
					break
				}
			}
		}
		if i < 0 {
			if x.tracing {
				x.trace("group %d: no live bucket, drop", g.ID)
			}
			x.step(g, -1)
			return
		}
		b := &g.Buckets[i]
		if x.tracing {
			x.trace("group %d bucket %d (ff, watch %d)", g.ID, i, b.WatchPort)
		}
		x.step(g, i)
		b.Packets++
		for _, a := range b.Actions {
			applyAction(x, a, p)
		}
	case GroupSelectRR:
		if len(g.Buckets) == 0 {
			return
		}
		i := g.rr
		g.rr = (g.rr + 1) % len(g.Buckets)
		if x.tracing {
			x.trace("group %d bucket %d (select-rr)", g.ID, i)
		}
		x.step(g, i)
		g.Buckets[i].Packets++
		for _, a := range g.Buckets[i].Actions {
			applyAction(x, a, p)
		}
	}
}
