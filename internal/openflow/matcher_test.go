package openflow

import (
	"fmt"
	"math/rand"
	"testing"
)

// refLookup is the reference semantics of Lookup: first match over the
// full entry list, which FlowTable keeps in (priority desc, insertion
// asc) order. Every dispatch structure — bucket index and compiled
// matcher alike — must agree with it on every packet.
func refLookup(t *FlowTable, p *Packet) *FlowEntry {
	for _, e := range t.entries {
		if e.Match.Matches(p) {
			return e
		}
	}
	return nil
}

// fuzzCfg shapes one random-table population so the generator can aim at
// specific matcher paths: small vs spilled EtherType sets, small-array vs
// map value splits, masked criteria that are forced onto residual lists,
// port-wildcard entries that get merged into every named port's node.
type fuzzCfg struct {
	name      string
	eths      int // distinct EtherTypes in play
	ports     int // distinct exact ingress ports in play
	entries   int
	values    int     // cardinality of the keyed field's values
	pWildEth  float64 // probability an entry wildcards the EtherType
	pWildPort float64 // probability an entry wildcards the ingress port
	pMasked   float64 // probability a field criterion is masked
	pTTL      float64 // probability an entry constrains the TTL
	pField2   float64 // probability of a second field criterion
}

var fuzzCfgs = []fuzzCfg{
	// The compiled-program shape: one service EtherType, port-keyed
	// entries over a low-cardinality state byte → small splits.
	{name: "compiled-shape", eths: 1, ports: 4, entries: 24, values: 5,
		pWildPort: 0.2, pField2: 0.5},
	// Enough distinct values to spill the split into the vals map.
	{name: "map-split", eths: 2, ports: 3, entries: 60, values: 40,
		pWildPort: 0.2, pField2: 0.3},
	// Enough EtherTypes to spill the matcher's eth index into a map.
	{name: "eth-spill", eths: smallEthMax + 8, ports: 2, entries: 120,
		values: 4, pWildPort: 0.3, pField2: 0.3},
	// Adversarial soup: wildcards, masks and TTL constraints everywhere,
	// exercising the wild list, the residual lists and the residTop skip.
	{name: "soup", eths: 3, ports: 4, entries: 80, values: 6,
		pWildEth: 0.15, pWildPort: 0.4, pMasked: 0.3, pTTL: 0.2, pField2: 0.6},
}

var fuzzFields = []Field{
	{Name: "S", Off: 0, Bits: 8},
	{Name: "C", Off: 8, Bits: 6},
	{Name: "W", Off: 14, Bits: 10},
}

func randMatch(r *rand.Rand, cfg fuzzCfg) Match {
	m := MatchAll()
	if r.Float64() >= cfg.pWildEth {
		m.EthType = 0x8800 + r.Intn(cfg.eths)
	}
	if r.Float64() >= cfg.pWildPort {
		m.InPort = 1 + r.Intn(cfg.ports)
	}
	if r.Float64() < cfg.pTTL {
		m.TTL = r.Intn(4)
	}
	nf := 1
	if r.Float64() < cfg.pField2 {
		nf = 2
	}
	for i := 0; i < nf; i++ {
		f := fuzzFields[(r.Intn(len(fuzzFields)))]
		fm := FieldMatch{F: f, Value: uint64(r.Intn(cfg.values))}
		if r.Float64() < cfg.pMasked {
			fm.Mask = uint64(r.Intn(int(f.Max()))) | 1
			fm.Value = uint64(r.Int63()) & fm.Mask
		}
		m.Fields = append(m.Fields, fm)
	}
	return m
}

func randFuzzTable(r *rand.Rand, cfg fuzzCfg) *FlowTable {
	t := &FlowTable{ID: 0}
	for i := 0; i < cfg.entries; i++ {
		t.Add(&FlowEntry{
			Priority: r.Intn(5), // deliberately collision-heavy
			Match:    randMatch(r, cfg),
			Cookie:   fmt.Sprintf("e%d", i),
			Goto:     NoGoto,
		})
	}
	return t
}

func randFuzzPacket(r *rand.Rand, cfg fuzzCfg) *Packet {
	p := NewPacket(uint16(0x8800+r.Intn(cfg.eths+1)), 3)
	p.InPort = 1 + r.Intn(cfg.ports+2) // sometimes a port no entry names
	p.TTL = uint8(r.Intn(5))
	r.Read(p.Tag)
	for _, f := range fuzzFields {
		if r.Intn(2) == 0 {
			p.Store(f, uint64(r.Intn(cfg.values)))
		}
	}
	return p
}

// TestMatcherDifferentialFuzz replays random packets through the
// compiled matcher, the fallback bucket scan and the reference linear
// scan on randomly generated tables, asserting all three pick the same
// entry — including priority ties, where insertion order decides.
func TestMatcherDifferentialFuzz(t *testing.T) {
	for _, cfg := range fuzzCfgs {
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(0); seed < 16; seed++ {
				r := rand.New(rand.NewSource(seed))
				ft := randFuzzTable(r, cfg)
				ft.Compile()
				if !ft.Compiled() {
					t.Fatalf("seed %d: table not compiled", seed)
				}
				for i := 0; i < 500; i++ {
					p := randFuzzPacket(r, cfg)
					want := refLookup(ft, p)
					if got, _ := ft.m.lookup(p); got != want {
						t.Fatalf("seed %d pkt %d: matcher chose %v, reference %v (pkt eth=%#x in=%d ttl=%d tag=%x)",
							seed, i, got, want, p.EthType, p.InPort, p.TTL, p.Tag)
					}
					if got := ft.Lookup(p); got != want {
						t.Fatalf("seed %d pkt %d: Lookup chose %v, reference %v", seed, i, got, want)
					}
				}
				// The same packets must agree on the fallback path too:
				// invalidate the cached matcher the way mutators do so
				// Lookup distrusts it.
				ft.version++
				ft.cur = nil
				r2 := rand.New(rand.NewSource(seed + 1000))
				for i := 0; i < 200; i++ {
					p := randFuzzPacket(r2, cfg)
					if got, want := ft.Lookup(p), refLookup(ft, p); got != want {
						t.Fatalf("seed %d pkt %d: fallback chose %v, reference %v", seed, i, got, want)
					}
				}
				st := ft.ScanStats()
				if st.MatcherLookups == 0 || st.FallbackLookups == 0 {
					t.Fatalf("seed %d: expected both dispatch paths exercised, got %+v", seed, st)
				}
			}
		})
	}
}

// TestMatcherObservesMutation pins the version-guard lifecycle: a
// post-compile edit must immediately divert Lookup to the fallback scan
// (which sees the edit), and the next rebuild must fold the edit into
// the matcher.
func TestMatcherObservesMutation(t *testing.T) {
	ft := &FlowTable{ID: 0}
	mk := func(prio int, cookie string) *FlowEntry {
		m := MatchEth(0x8801)
		m.InPort = 1
		return &FlowEntry{Priority: prio, Match: m, Cookie: cookie, Goto: NoGoto}
	}
	a := mk(1, "a")
	ft.Add(a)
	ft.Compile()
	p := NewPacket(0x8801, 2)
	p.InPort = 1

	if got := ft.Lookup(p); got != a {
		t.Fatalf("compiled lookup: got %v, want a", got)
	}
	if st := ft.ScanStats(); st.MatcherLookups != 1 || st.FallbackLookups != 0 {
		t.Fatalf("expected a matcher-path lookup, got %+v", st)
	}

	// Higher-priority add: the stale matcher must not serve it.
	b := mk(2, "b")
	ft.Add(b)
	if ft.Compiled() {
		t.Fatal("matcher still marked current after Add")
	}
	if got := ft.Lookup(p); got != b {
		t.Fatalf("post-add fallback lookup: got %v, want b", got)
	}
	if st := ft.ScanStats(); st.FallbackLookups != 1 {
		t.Fatalf("expected a fallback-path lookup, got %+v", st)
	}

	// Rebuild: the matcher must now serve the new entry.
	ft.Compile()
	if !ft.Compiled() {
		t.Fatal("matcher not current after Compile")
	}
	if got := ft.Lookup(p); got != b {
		t.Fatalf("recompiled lookup: got %v, want b", got)
	}

	// Removal through the same lifecycle.
	if n := ft.RemoveByCookiePrefix("b"); n != 1 {
		t.Fatalf("removed %d entries, want 1", n)
	}
	if ft.Compiled() {
		t.Fatal("matcher still marked current after removal")
	}
	if got := ft.Lookup(p); got != a {
		t.Fatalf("post-remove fallback lookup: got %v, want a", got)
	}
	ft.Compile()
	if got := ft.Lookup(p); got != a {
		t.Fatalf("recompiled post-remove lookup: got %v, want a", got)
	}
}

// TestCompileDispatchRecompilesAllTables pins the switch-level seam the
// install path uses: one CompileDispatch call must bring every table's
// matcher back in sync.
func TestCompileDispatchRecompilesAllTables(t *testing.T) {
	sw := NewSwitch(0, 4)
	for id := 0; id < 3; id++ {
		m := MatchEth(uint16(0x8800 + id))
		sw.Table(id).Add(&FlowEntry{Priority: 1, Match: m, Cookie: fmt.Sprintf("t%d", id), Goto: NoGoto})
	}
	sw.CompileDispatch()
	for id := 0; id < 3; id++ {
		if !sw.Table(id).Compiled() {
			t.Fatalf("table %d not compiled", id)
		}
	}
	sw.Table(1).Add(&FlowEntry{Priority: 2, Match: MatchEth(0x8801), Cookie: "new", Goto: NoGoto})
	if sw.Table(1).Compiled() {
		t.Fatal("table 1 matcher still current after mutation")
	}
	sw.CompileDispatch()
	for id := 0; id < 3; id++ {
		if !sw.Table(id).Compiled() {
			t.Fatalf("table %d not compiled after CompileDispatch", id)
		}
	}
}
