package openflow

import (
	"fmt"
	"sync"

	"smartsouth/internal/telemetry"
)

// Reserved output port numbers, mirroring the OFPP_* reserved ports of
// OpenFlow 1.3. Physical ports are numbered 1..NumPorts; 0 is never a valid
// physical port (SmartSouth uses parent==0 to mean "no parent").
const (
	// PortController sends the packet to the controller (packet-in).
	PortController = -1
	// PortSelf delivers the packet to the switch-local host/agent
	// (OFPP_LOCAL); anycast receivers are modelled this way.
	PortSelf = -2
	// PortInPort bounces the packet out of its ingress port (OFPP_IN_PORT).
	PortInPort = -3
	// PortDrop discards the packet explicitly.
	PortDrop = -4
)

// Packet is the unit the pipeline operates on.
//
// Header fields are reduced to the ones the SmartSouth compiler actually
// needs: an EtherType to demultiplex services, a TTL (used by the
// TTL-binary-search blackhole detector), a fixed-size tag area addressed by
// Field, and an MPLS-like label stack used by the snapshot service to
// record the traversal. Payload is opaque data ("the data section").
type Packet struct {
	EthType uint16
	TTL     uint8
	Tag     []byte
	Labels  []uint32 // label stack; the last element is the top
	Payload []byte

	// InPort is the ingress port at the switch currently processing the
	// packet. It is set by Switch.Receive, not by the sender.
	InPort int

	// TraceID and SpanID thread the causal tracer's identity through the
	// data plane: TraceID names the traversal (assigned at injection when
	// timeline tracing is on, zero otherwise), SpanID the most recent
	// pipeline execution the packet passed through (the parent of its next
	// execution's span). Both are plain scalars copied by the clone paths,
	// so the steady hop path stays allocation-free whether or not tracing
	// is enabled.
	TraceID uint32
	SpanID  uint64
}

// NewPacket returns a packet of the given EtherType with a zeroed tag area
// of tagBytes bytes.
func NewPacket(ethType uint16, tagBytes int) *Packet {
	return &Packet{EthType: ethType, TTL: 255, Tag: make([]byte, tagBytes)}
}

// Clone returns a deep copy of the packet. Group type ALL and the
// controller path use it so that downstream mutation cannot alias.
func (p *Packet) Clone() *Packet {
	q := &Packet{EthType: p.EthType, TTL: p.TTL, InPort: p.InPort,
		TraceID: p.TraceID, SpanID: p.SpanID}
	q.Tag = append([]byte(nil), p.Tag...)
	q.Labels = append([]uint32(nil), p.Labels...)
	q.Payload = append([]byte(nil), p.Payload...)
	return q
}

// pktPool is the process-wide packet freelist. Pooled packets keep their
// Tag/Labels/Payload backing arrays between uses, so a steady-state hop
// (clone at emission, clone at pipeline entry) recycles buffers instead of
// allocating. The pool is safe for concurrent use, which is what lets the
// parallel sweep runner share it across simulations. Gets and misses feed
// the process-wide telemetry so a scrape can tell whether the freelist is
// actually recycling (hit rate ~1) or degenerating into the allocator.
var pktPool = sync.Pool{New: func() any {
	telemetry.M.PoolMisses.Inc()
	return new(Packet)
}}

// ClonePooled returns a deep copy of p backed by the packet freelist.
//
// Ownership rules: the caller owns the clone and must either hand it off
// permanently (e.g. deliver it to user code, which may retain it — such
// packets are simply never released) or call Release exactly once when the
// packet is dead. Releasing a packet that anyone still references is a
// use-after-free-style bug: the pool will recycle and overwrite it.
//
//simlint:hotpath
func (p *Packet) ClonePooled() *Packet {
	//simlint:ignore hotpath: freelist-backed; a steady-state hop recycles, misses are counted
	q := pktPool.Get().(*Packet)
	q.EthType, q.TTL, q.InPort = p.EthType, p.TTL, p.InPort
	q.TraceID, q.SpanID = p.TraceID, p.SpanID
	q.Tag = append(q.Tag[:0], p.Tag...)
	q.Labels = append(q.Labels[:0], p.Labels...)
	q.Payload = append(q.Payload[:0], p.Payload...)
	return q
}

// Release returns a dead packet to the freelist. Only release packets you
// own (see ClonePooled); never release a packet delivered to a callback or
// stored in a Result you returned to a caller. Releasing a non-pooled
// packet is allowed — it just donates its buffers to the pool.
//
//simlint:hotpath
func (p *Packet) Release() {
	//simlint:ignore hotpath: freelist return; Put of a live pointer never allocates
	pktPool.Put(p)
}

// Size returns the wire size of the packet in bytes, used for the message
// size accounting of Table 2. A label costs 4 bytes (MPLS-like shim), and
// the fixed header is approximated by the usual 14-byte Ethernet frame
// header plus the TTL byte.
func (p *Packet) Size() int {
	return 14 + 1 + len(p.Tag) + 4*len(p.Labels) + len(p.Payload)
}

// Load reads a tag field.
func (p *Packet) Load(f Field) uint64 { return f.Load(p.Tag) }

// Store writes a tag field.
func (p *Packet) Store(f Field, v uint64) { f.Store(p.Tag, v) }

// PushLabel pushes onto the label stack.
func (p *Packet) PushLabel(v uint32) { p.Labels = append(p.Labels, v) }

// PopLabel pops the label stack, reporting whether a label was present.
func (p *Packet) PopLabel() (uint32, bool) {
	if len(p.Labels) == 0 {
		return 0, false
	}
	v := p.Labels[len(p.Labels)-1]
	p.Labels = p.Labels[:len(p.Labels)-1]
	return v, true
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt{eth=%#04x ttl=%d in=%d tag=%dB labels=%d payload=%dB}",
		p.EthType, p.TTL, p.InPort, len(p.Tag), len(p.Labels), len(p.Payload))
}
