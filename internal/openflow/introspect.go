package openflow

// Match and action introspection helpers. The static checkers (package
// verify, package analysis) reason about rules as data: which packets a
// match accepts, whether one match swallows another, which ports and
// groups an action list can reach. Those questions belong next to the
// match/action definitions, so the checkers share one exact semantics
// instead of each re-deriving it.

// AcceptedMask returns the effective mask of the criterion: the bits of
// the field a packet must pin to satisfy it (Mask, or the full field
// width when Mask is zero).
func (m FieldMatch) AcceptedMask() uint64 { return m.mask() }

// Accepts reports whether a field value satisfies the criterion.
func (m FieldMatch) Accepts(v uint64) bool {
	k := m.mask()
	return v&k == m.Value&k
}

// SameField reports whether two criteria constrain the same bit range of
// the tag. The diagnostic Name is ignored: matching operates on bits.
func (m FieldMatch) SameField(o FieldMatch) bool {
	return m.F.Off == o.F.Off && m.F.Bits == o.F.Bits
}

// Implies reports whether every field value accepted by m is also
// accepted by o, for criteria on the same bit range. Criteria on
// different bit ranges are incomparable and never imply each other.
func (m FieldMatch) Implies(o FieldMatch) bool {
	if !m.SameField(o) {
		return false
	}
	km, ko := m.mask(), o.mask()
	if ko&^km != 0 {
		return false // o pins a bit m leaves free
	}
	return m.Value&ko == o.Value&ko
}

// CompatibleWith reports whether some field value satisfies both
// criteria. Criteria on different bit ranges are conservatively
// compatible when their bit ranges overlap (the bit-level intersection is
// not computed) and trivially compatible when they are disjoint.
func (m FieldMatch) CompatibleWith(o FieldMatch) bool {
	if !m.SameField(o) {
		return true
	}
	common := m.mask() & o.mask()
	return m.Value&common == o.Value&common
}

// Covers reports whether every packet matching b also matches m — the
// exact shadow relation between two matches. It is complete for criteria
// with identical field geometry; constraints expressed through
// differently-shaped fields over the same bits are conservatively treated
// as not covered.
func (m Match) Covers(b Match) bool {
	if m.InPort != AnyPort && m.InPort != b.InPort {
		return false // b wildcard or different port: some b-packet escapes m
	}
	if m.EthType != AnyEthType && m.EthType != b.EthType {
		return false
	}
	if m.TTL != AnyTTL && m.TTL != b.TTL {
		return false
	}
	for _, fm := range m.Fields {
		if !fm.impliedBy(b.Fields) {
			return false
		}
	}
	return true
}

// impliedBy reports whether some b-side constraint implies fm.
func (fm FieldMatch) impliedBy(bs []FieldMatch) bool {
	for _, fb := range bs {
		if fb.Implies(fm) {
			return true
		}
	}
	return false
}

// Overlaps reports whether some packet can match both m and b. It is
// exact for criteria with identical field geometry; constraints on
// overlapping bit ranges with different geometry are conservatively
// reported as overlapping.
func (m Match) Overlaps(b Match) bool {
	if m.InPort != AnyPort && b.InPort != AnyPort && m.InPort != b.InPort {
		return false
	}
	if m.EthType != AnyEthType && b.EthType != AnyEthType && m.EthType != b.EthType {
		return false
	}
	if m.TTL != AnyTTL && b.TTL != AnyTTL && m.TTL != b.TTL {
		return false
	}
	for _, fm := range m.Fields {
		for _, fb := range b.Fields {
			if !fm.CompatibleWith(fb) {
				return false
			}
		}
	}
	return true
}

// SameFootprint reports whether m and b constrain exactly the same
// dimensions: the same wildcarded/pinned InPort, EthType and TTL status,
// and field criteria over the same bit ranges. Two rules with the same
// footprint differ only in the values they accept — the shape an
// accidental shadow takes, as opposed to a deliberately broader override
// rule that omits criteria.
func (m Match) SameFootprint(b Match) bool {
	if (m.InPort == AnyPort) != (b.InPort == AnyPort) {
		return false
	}
	if (m.EthType == AnyEthType) != (b.EthType == AnyEthType) {
		return false
	}
	if (m.TTL == AnyTTL) != (b.TTL == AnyTTL) {
		return false
	}
	if len(m.Fields) != len(b.Fields) {
		return false
	}
	for _, fm := range m.Fields {
		found := false
		for _, fb := range b.Fields {
			if fm.SameField(fb) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Equal reports whether the two matches accept exactly the same packets:
// they cover each other.
func (m Match) Equal(b Match) bool { return m.Covers(b) && b.Covers(m) }

// OutputPorts returns every port an Output action in the list emits on,
// in action order (including reserved ports).
func OutputPorts(acts []Action) []int {
	var out []int
	for _, a := range acts {
		if o, ok := a.(Output); ok {
			out = append(out, o.Port)
		}
	}
	return out
}

// GroupRefs returns every group ID referenced by a Group action in the
// list, in action order.
func GroupRefs(acts []Action) []uint32 {
	var out []uint32
	for _, a := range acts {
		if g, ok := a.(Group); ok {
			out = append(out, g.ID)
		}
	}
	return out
}

// SetFieldTargets returns the fields written by SetField actions in the
// list, in action order.
func SetFieldTargets(acts []Action) []Field {
	var out []Field
	for _, a := range acts {
		if sf, ok := a.(SetField); ok {
			out = append(out, sf.F)
		}
	}
	return out
}

// DispatchEthTypes collects the exact EtherTypes a set of flow rules
// demultiplexes on: every non-wildcard EthType appearing in a match. The
// deployment analyzer uses it to decide which symbolic packets to inject.
func DispatchEthTypes(entries []*FlowEntry) []uint16 {
	seen := map[uint16]bool{}
	var out []uint16
	for _, e := range entries {
		if e.Match.EthType == AnyEthType {
			continue
		}
		et := uint16(e.Match.EthType)
		if !seen[et] {
			seen[et] = true
			out = append(out, et)
		}
	}
	return out
}
