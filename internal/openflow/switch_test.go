package openflow

import "testing"

var fX = Field{Name: "x", Off: 0, Bits: 8}
var fY = Field{Name: "y", Off: 8, Bits: 8}

func testPacket() *Packet { return NewPacket(0x88B5, 4) }

func TestMatchSemantics(t *testing.T) {
	p := testPacket()
	p.InPort = 3
	p.Store(fX, 7)

	cases := []struct {
		name string
		m    Match
		want bool
	}{
		{"wildcard", MatchAll(), true},
		{"eth hit", MatchEth(0x88B5), true},
		{"eth miss", MatchEth(0x0800), false},
		{"inport hit", MatchAll().WithInPort(3), true},
		{"inport miss", MatchAll().WithInPort(4), false},
		{"field hit", MatchAll().WithField(fX, 7), true},
		{"field miss", MatchAll().WithField(fX, 8), false},
		{"masked hit", MatchAll().WithMasked(fX, 0x07, 0x03), true}, // low 2 bits = 3
		{"masked miss", MatchAll().WithMasked(fX, 0x00, 0x03), false},
		{"ttl hit", MatchAll().WithTTL(255), true},
		{"ttl miss", MatchAll().WithTTL(0), false},
		{"combined", MatchEth(0x88B5).WithInPort(3).WithField(fX, 7), true},
	}
	for _, c := range cases {
		if got := c.m.Matches(p); got != c.want {
			t.Errorf("%s: Matches=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestWithFieldDoesNotAliasParent(t *testing.T) {
	base := MatchEth(1).WithField(fX, 1)
	m1 := base.WithField(fY, 2)
	m2 := base.WithField(fY, 3)
	p := NewPacket(1, 4)
	p.Store(fX, 1)
	p.Store(fY, 2)
	if !m1.Matches(p) {
		t.Error("m1 should match")
	}
	if m2.Matches(p) {
		t.Error("m2 must not match (derived matches must not share field storage)")
	}
}

func TestFlowTablePriorityAndMiss(t *testing.T) {
	sw := NewSwitch(1, 4)
	sw.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto,
		Actions: []Action{Output{Port: 1}}, Cookie: "low"})
	sw.AddFlow(0, &FlowEntry{Priority: 10, Match: MatchAll().WithInPort(2), Goto: NoGoto,
		Actions: []Action{Output{Port: 3}}, Cookie: "high"})

	res := sw.Receive(testPacket(), 2)
	if len(res.Emissions) != 1 || res.Emissions[0].Port != 3 {
		t.Fatalf("want high-priority rule (port 3), got %+v", res.Emissions)
	}
	res = sw.Receive(testPacket(), 1)
	if len(res.Emissions) != 1 || res.Emissions[0].Port != 1 {
		t.Fatalf("want low rule (port 1), got %+v", res.Emissions)
	}

	// A packet of a different EthType still matches the wildcard; narrow
	// the low rule and verify table miss drops.
	sw2 := NewSwitch(2, 4)
	sw2.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchEth(0x0800), Goto: NoGoto, Cookie: "v4-only"})
	res = sw2.Receive(testPacket(), 1)
	if res.Matched || len(res.Emissions) != 0 {
		t.Fatalf("want unmatched drop, got %+v", res)
	}
}

func TestPipelineGotoAndApplyOrder(t *testing.T) {
	sw := NewSwitch(1, 4)
	// Table 0: set x:=5, output port 1 (with x=5), then goto table 2 which
	// sets x:=9 and outputs port 2. Apply-actions semantics: the copy on
	// port 1 must carry x=5, the copy on port 2 x=9.
	sw.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: 2, Cookie: "t0",
		Actions: []Action{SetField{F: fX, Value: 5}, Output{Port: 1}}})
	sw.AddFlow(2, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto, Cookie: "t2",
		Actions: []Action{SetField{F: fX, Value: 9}, Output{Port: 2}}})

	res := sw.Receive(testPacket(), 4)
	if len(res.Emissions) != 2 {
		t.Fatalf("want 2 emissions, got %d", len(res.Emissions))
	}
	if res.Emissions[0].Port != 1 || res.Emissions[0].Pkt.Load(fX) != 5 {
		t.Errorf("first emission: got port %d x=%d, want port 1 x=5",
			res.Emissions[0].Port, res.Emissions[0].Pkt.Load(fX))
	}
	if res.Emissions[1].Port != 2 || res.Emissions[1].Pkt.Load(fX) != 9 {
		t.Errorf("second emission: got port %d x=%d, want port 2 x=9",
			res.Emissions[1].Port, res.Emissions[1].Pkt.Load(fX))
	}
}

func TestBackwardGotoStops(t *testing.T) {
	sw := NewSwitch(1, 2)
	sw.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: 0, Cookie: "loop"})
	res := sw.Receive(testPacket(), 1) // must terminate
	if !res.Matched {
		t.Error("entry should have matched once")
	}
}

func TestOutputInPortAndDrop(t *testing.T) {
	sw := NewSwitch(1, 4)
	sw.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto, Cookie: "bounce",
		Actions: []Action{Output{Port: PortDrop}, Output{Port: PortInPort}}})
	res := sw.Receive(testPacket(), 3)
	if len(res.Emissions) != 1 || res.Emissions[0].Port != 3 {
		t.Fatalf("want bounce to port 3 only, got %+v", res.Emissions)
	}
}

func TestGroupFastFailover(t *testing.T) {
	sw := NewSwitch(1, 3)
	sw.AddGroup(&GroupEntry{ID: 7, Type: GroupFF, Buckets: []Bucket{
		{WatchPort: 1, Actions: []Action{Output{Port: 1}}},
		{WatchPort: 2, Actions: []Action{Output{Port: 2}}},
		{WatchPort: WatchNone, Actions: []Action{Output{Port: PortController}}},
	}})
	sw.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto,
		Actions: []Action{Group{ID: 7}}, Cookie: "ff"})

	if res := sw.Receive(testPacket(), 3); res.Emissions[0].Port != 1 {
		t.Fatalf("all live: want port 1, got %d", res.Emissions[0].Port)
	}
	sw.SetPortLive(1, false)
	if res := sw.Receive(testPacket(), 3); res.Emissions[0].Port != 2 {
		t.Fatalf("port1 down: want port 2, got %d", res.Emissions[0].Port)
	}
	sw.SetPortLive(2, false)
	if res := sw.Receive(testPacket(), 3); res.Emissions[0].Port != PortController {
		t.Fatalf("both down: want controller bucket, got %d", res.Emissions[0].Port)
	}
	sw.SetPortLive(1, true)
	if res := sw.Receive(testPacket(), 3); res.Emissions[0].Port != 1 {
		t.Fatalf("port1 back up: want port 1, got %d", res.Emissions[0].Port)
	}
}

func TestGroupSelectRoundRobinIsAFetchAndIncrement(t *testing.T) {
	sw := NewSwitch(1, 2)
	const k = 5
	buckets := make([]Bucket, k)
	for i := range buckets {
		buckets[i] = Bucket{Actions: []Action{SetField{F: fX, Value: uint64(i)}}}
	}
	sw.AddGroup(&GroupEntry{ID: 1, Type: GroupSelectRR, Buckets: buckets})
	sw.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto,
		Actions: []Action{Group{ID: 1}, Output{Port: 1}}, Cookie: "ctr"})

	// 12 packets through a 5-bucket counter: values 0,1,2,3,4,0,1,...
	for i := 0; i < 12; i++ {
		res := sw.Receive(testPacket(), 2)
		got := res.Emissions[0].Pkt.Load(fX)
		if got != uint64(i%k) {
			t.Fatalf("packet %d: counter value %d, want %d", i, got, i%k)
		}
	}
	if sw.GroupByID(1).CounterValue() != 12%k {
		t.Errorf("stored counter = %d, want %d", sw.GroupByID(1).CounterValue(), 12%k)
	}
}

func TestGroupAllClonesPerBucket(t *testing.T) {
	sw := NewSwitch(1, 2)
	sw.AddGroup(&GroupEntry{ID: 2, Type: GroupAll, Buckets: []Bucket{
		{Actions: []Action{SetField{F: fX, Value: 1}, Output{Port: 1}}},
		{Actions: []Action{Output{Port: 2}}},
	}})
	sw.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto,
		Actions: []Action{Group{ID: 2}}, Cookie: "all"})
	res := sw.Receive(testPacket(), 2)
	if len(res.Emissions) != 2 {
		t.Fatalf("want 2 emissions, got %d", len(res.Emissions))
	}
	if res.Emissions[0].Pkt.Load(fX) != 1 {
		t.Error("bucket 0 copy should carry x=1")
	}
	if res.Emissions[1].Pkt.Load(fX) != 0 {
		t.Error("bucket 1 copy must not see bucket 0's mutation")
	}
}

func TestGroupChainingDepthBounded(t *testing.T) {
	sw := NewSwitch(1, 2)
	// Two groups that invoke each other: must terminate by depth limit.
	sw.AddGroup(&GroupEntry{ID: 1, Type: GroupIndirect, Buckets: []Bucket{{Actions: []Action{Group{ID: 2}}}}})
	sw.AddGroup(&GroupEntry{ID: 2, Type: GroupIndirect, Buckets: []Bucket{{Actions: []Action{Group{ID: 1}}}}})
	sw.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto,
		Actions: []Action{Group{ID: 1}}, Cookie: "chain"})
	sw.Receive(testPacket(), 1) // must not hang or panic
}

func TestLabelsAndTTL(t *testing.T) {
	sw := NewSwitch(1, 2)
	sw.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto, Cookie: "rec",
		Actions: []Action{PushLabel{Value: 0xABC}, PushLabel{Value: 0xDEF}, PopLabel{}, DecTTL{}, Output{Port: 1}}})
	p := testPacket()
	p.TTL = 3
	res := sw.Receive(p, 2)
	out := res.Emissions[0].Pkt
	if len(out.Labels) != 1 || out.Labels[0] != 0xABC {
		t.Errorf("labels = %v, want [0xABC]", out.Labels)
	}
	if out.TTL != 2 {
		t.Errorf("TTL = %d, want 2", out.TTL)
	}
	if p.TTL != 3 {
		t.Error("caller's packet must not be mutated")
	}
}

func TestDecTTLAtZeroIsNoop(t *testing.T) {
	sw := NewSwitch(1, 1)
	sw.AddFlow(0, &FlowEntry{Priority: 1, Match: MatchAll(), Goto: NoGoto, Cookie: "d",
		Actions: []Action{DecTTL{}, Output{Port: 1}}})
	p := testPacket()
	p.TTL = 0
	res := sw.Receive(p, 1)
	if res.Emissions[0].Pkt.TTL != 0 {
		t.Error("TTL must stay 0")
	}
}

func TestCountersAndConfigBytes(t *testing.T) {
	sw := NewSwitch(1, 2)
	e := &FlowEntry{Priority: 1, Match: MatchEth(0x88B5).WithInPort(1), Goto: NoGoto,
		Actions: []Action{Output{Port: 2}}, Cookie: "fwd"}
	sw.AddFlow(0, e)
	for i := 0; i < 3; i++ {
		sw.Receive(testPacket(), 1)
	}
	if e.Packets != 3 {
		t.Errorf("entry counter = %d, want 3", e.Packets)
	}
	if sw.RxPackets[1] != 3 || sw.TxPackets[2] != 3 {
		t.Errorf("port counters rx=%d tx=%d, want 3/3", sw.RxPackets[1], sw.TxPackets[2])
	}
	if got, want := e.EntryBytes(), 56+8*2+8*1; got != want {
		t.Errorf("EntryBytes = %d, want %d", got, want)
	}
	if sw.ConfigBytes() <= 0 || sw.FlowEntryCount() != 1 {
		t.Error("config accounting broken")
	}
}

func TestPacketSizeModel(t *testing.T) {
	p := NewPacket(1, 10)
	p.PushLabel(1)
	p.PushLabel(2)
	p.Payload = []byte("abcde")
	if got, want := p.Size(), 14+1+10+8+5; got != want {
		t.Errorf("Size = %d, want %d", got, want)
	}
}
